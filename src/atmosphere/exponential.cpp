#include "atmosphere/exponential.hpp"

#include <array>
#include <cmath>

namespace cosmicdance::atmosphere {
namespace {

struct Band {
  double base_alt_km;
  double nominal_density;  // kg/m^3 at base_alt_km
  double scale_height_km;
};

// Vallado Table 8-4 (exponential atmospheric model).
constexpr std::array<Band, 28> kBands{{
    {0.0, 1.225, 7.249},
    {25.0, 3.899e-2, 6.349},
    {30.0, 1.774e-2, 6.682},
    {40.0, 3.972e-3, 7.554},
    {50.0, 1.057e-3, 8.382},
    {60.0, 3.206e-4, 7.714},
    {70.0, 8.770e-5, 6.549},
    {80.0, 1.905e-5, 5.799},
    {90.0, 3.396e-6, 5.382},
    {100.0, 5.297e-7, 5.877},
    {110.0, 9.661e-8, 7.263},
    {120.0, 2.438e-8, 9.473},
    {130.0, 8.484e-9, 12.636},
    {140.0, 3.845e-9, 16.149},
    {150.0, 2.070e-9, 22.523},
    {180.0, 5.464e-10, 29.740},
    {200.0, 2.789e-10, 37.105},
    {250.0, 7.248e-11, 45.546},
    {300.0, 2.418e-11, 53.628},
    {350.0, 9.518e-12, 53.298},
    {400.0, 3.725e-12, 58.515},
    {450.0, 1.585e-12, 60.828},
    {500.0, 6.967e-13, 63.822},
    {600.0, 1.454e-13, 71.835},
    {700.0, 3.614e-14, 88.667},
    {800.0, 1.170e-14, 124.64},
    {900.0, 5.245e-15, 181.05},
    {1000.0, 3.019e-15, 268.00},
}};

const Band& band_for(double altitude_km) noexcept {
  std::size_t i = kBands.size() - 1;
  while (i > 0 && altitude_km < kBands[i].base_alt_km) --i;
  return kBands[i];
}

}  // namespace

double density_kg_m3(double altitude_km) noexcept {
  if (altitude_km < 0.0) altitude_km = 0.0;
  const Band& band = band_for(altitude_km);
  return band.nominal_density *
         std::exp(-(altitude_km - band.base_alt_km) / band.scale_height_km);
}

double scale_height_km(double altitude_km) noexcept {
  if (altitude_km < 0.0) altitude_km = 0.0;
  return band_for(altitude_km).scale_height_km;
}

}  // namespace cosmicdance::atmosphere
