// Extension: in-orbit lifetime table (the lifetime literature the paper
// cites) — quiet-atmosphere decay lifetimes across altitude and ballistic
// coefficient, plus the let-die-and-replenish sanity check: an abandoned
// Starlink at 550 km deorbits passively within the ~5-year replacement
// cycle only when tumbling.
#include <iostream>

#include "atmosphere/lifetime.hpp"
#include "bench_common.hpp"
#include "io/table.hpp"

using namespace cosmicdance;

int main() {
  io::print_heading(std::cout,
                    "Quiet-atmosphere decay lifetime (days; '> cap' = stable)");
  io::TablePrinter table({"altitude_km", "B=0.004 (knife)", "B=0.02 (staging)",
                          "B=0.3 (tumbling)"});
  atmosphere::LifetimeConfig config;
  config.max_days = 80.0 * 365.25;
  for (const double altitude :
       {250.0, 300.0, 350.0, 400.0, 450.0, 500.0, 550.0, 600.0}) {
    std::vector<std::string> row{io::TablePrinter::num(altitude, 0)};
    for (const double ballistic : {0.004, 0.02, 0.3}) {
      const double days =
          atmosphere::decay_lifetime_days(altitude, ballistic, config);
      row.push_back(days >= config.max_days
                        ? std::string("> 80 yr")
                        : io::TablePrinter::num(days, 0));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  bench::note("reading: the ~5 km shell spacing matters because a tumbling");
  bench::note("casualty at 550 km spends months drifting down through the");
  bench::note("neighbouring shells; at the 350 km staging orbit everything");
  bench::note("is short-lived (the design intent), and at 210 km (Feb 2022)");
  bench::note("storm-time drag removes satellites within days.");
  return 0;
}
