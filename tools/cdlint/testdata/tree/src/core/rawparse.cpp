// cdlint corpus: seeded violations for rule `raw-parse` (R3).
#include <cstdlib>
#include <string>

double cell_value(const std::string& text) {
  double value = std::stod(text);
  value += atoi(text.c_str());
  return value;
}
