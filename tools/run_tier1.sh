#!/usr/bin/env bash
# Tier-1 CI gate: build + full ctest three times —
#   1. plain RelWithDebInfo over the whole suite,
#   2. ThreadSanitizer (COSMICDANCE_SANITIZE=thread) over the parallel exec
#      suite, which must be race-free for the deterministic-ordering
#      contract to mean anything,
#   3. ASan+UBSan (COSMICDANCE_SANITIZE=address) over the ingestion suites,
#      driving the malformed-record corpus through both parse policies so
#      buffer overreads in the fixed-column parsers surface here.
#
# Usage: tools/run_tier1.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== pass 1: plain build + full test suite =="
cmake -B build -S . -DCOSMICDANCE_SANITIZE=
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== pass 2: ThreadSanitizer build + parallel suite =="
cmake -B build-tsan -S . -DCOSMICDANCE_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target parallel_differential_test
# TSan halts with a non-zero exit on any race; no suppressions are used.
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R 'ParallelDifferential|ParallelForStress|ThreadPoolTest'

echo "== pass 3: ASan+UBSan build + malformed-record ingestion suite =="
cmake -B build-asan -S . -DCOSMICDANCE_SANITIZE=address
cmake --build build-asan -j "$JOBS" \
      --target ingestion_fuzz_test diag_test io_test tle_test tle2_test \
               timeutil_test spaceweather_test
# The fuzz suite feeds truncated / corrupted fixed-column records through
# every ingestion path; ASan+UBSan turns any column overread into a failure.
ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
      -R 'IngestionFuzz|Diag|ParseLog|DataQualityReport|Csv|Tle|DateTime|Wdc'

echo "== tier-1 gate: OK =="
