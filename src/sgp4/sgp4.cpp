// SGP4/SDP4 implementation following Vallado, Crawford, Hujsak & Kelso,
// "Revisiting Spacetrack Report #3" (AIAA 2006-6753) and the companion
// reference code.  Variable names intentionally mirror the reference so the
// math can be checked against the report term by term.
#include "sgp4/sgp4.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "timeutil/sidereal.hpp"

namespace cosmicdance::sgp4 {
namespace {

using units::kPi;
using units::kTwoPi;

constexpr double kX2o3 = 2.0 / 3.0;
// Julian date of the 1950 reference epoch used by the deep-space theory.
constexpr double kJd1950 = 2433281.5;

}  // namespace

std::string to_string(Sgp4Status status) {
  switch (status) {
    case Sgp4Status::kOk:
      return "ok";
    case Sgp4Status::kEccentricityOutOfRange:
      return "mean eccentricity out of range";
    case Sgp4Status::kMeanMotionNonPositive:
      return "mean motion non-positive";
    case Sgp4Status::kPerturbedEccentricityOutOfRange:
      return "perturbed eccentricity out of range";
    case Sgp4Status::kSemiLatusRectumNegative:
      return "semi-latus rectum negative";
    case Sgp4Status::kDecayed:
      return "satellite decayed (radius below Earth surface)";
  }
  return "unknown status";
}

Sgp4Propagator::Sgp4Propagator(const tle::Tle& tle, const orbit::GravityModel& gravity)
    : gravity_(gravity) {
  tle.validate();
  init(tle);
}

double Sgp4Propagator::recovered_semi_major_axis_km() const noexcept {
  return recovered_a_earth_radii_ * gravity_.radius_earth_km;
}

double Sgp4Propagator::recovered_altitude_km() const noexcept {
  return recovered_semi_major_axis_km() - gravity_.radius_earth_km;
}

orbit::StateVector Sgp4Propagator::propagate_minutes(double tsince_minutes) const {
  orbit::StateVector out;
  const Sgp4Status status = try_propagate_minutes(tsince_minutes, out);
  if (status != Sgp4Status::kOk) {
    throw PropagationError("sgp4 failed for catalog " +
                           std::to_string(catalog_number_) + " at tsince " +
                           std::to_string(tsince_minutes) + " min: " +
                           to_string(status));
  }
  return out;
}

orbit::StateVector Sgp4Propagator::propagate_jd(double jd) const {
  return propagate_minutes((jd - epoch_jd_) * units::kMinutesPerDay);
}

Sgp4Status Sgp4Propagator::try_propagate_minutes(double tsince_minutes,
                                                 orbit::StateVector& out) const noexcept {
  return run_sgp4(tsince_minutes, out);
}

void Sgp4Propagator::init(const tle::Tle& tle) {
  catalog_number_ = tle.catalog_number;
  epoch_jd_ = tle.epoch_jd;
  epoch1950_ = epoch_jd_ - kJd1950;

  bstar_ = tle.bstar;
  ecco_ = tle.eccentricity;
  inclo_ = units::deg2rad(tle.inclination_deg);
  nodeo_ = units::deg2rad(tle.raan_deg);
  argpo_ = units::deg2rad(tle.arg_perigee_deg);
  mo_ = units::deg2rad(tle.mean_anomaly_deg);
  no_ = tle.mean_motion_revday * kTwoPi / units::kMinutesPerDay;  // rad/min

  const double j2 = gravity_.j2;
  const double j4 = gravity_.j4;
  const double j3oj2 = gravity_.j3oj2;
  const double xke = gravity_.xke;
  const double radiusearthkm = gravity_.radius_earth_km;
  const double temp4 = 1.5e-12;

  const double ss = 78.0 / radiusearthkm + 1.0;
  const double qzms2t = std::pow((120.0 - 78.0) / radiusearthkm, 4.0);

  // ---------------------- initl: recover original mean motion -------------
  const double eccsq = ecco_ * ecco_;
  const double omeosq = 1.0 - eccsq;
  const double rteosq = std::sqrt(omeosq);
  const double cosio = std::cos(inclo_);
  const double cosio2 = cosio * cosio;

  const double ak = std::pow(xke / no_, kX2o3);
  const double d1 = 0.75 * j2 * (3.0 * cosio2 - 1.0) / (rteosq * omeosq);
  double del = d1 / (ak * ak);
  const double adel =
      ak * (1.0 - del * del - del * (1.0 / 3.0 + 134.0 * del * del / 81.0));
  del = d1 / (adel * adel);
  no_ = no_ / (1.0 + del);  // un-Kozai the mean motion

  const double ao = std::pow(xke / no_, kX2o3);
  const double sinio = std::sin(inclo_);
  const double po = ao * omeosq;
  const double con42 = 1.0 - 5.0 * cosio2;
  con41_ = -con42 - cosio2 - cosio2;
  const double posq = po * po;
  const double rp = ao * (1.0 - ecco_);
  method_ = 'n';
  gsto_ = timeutil::gmst_radians(epoch_jd_);
  recovered_a_earth_radii_ = ao;

  if (rp < 1.0) {
    throw PropagationError("element set has epoch perigee below Earth surface"
                           " (catalog " + std::to_string(catalog_number_) + ")");
  }

  // ------------------------- near-earth constants -------------------------
  isimp_ = 0;
  if (rp < 220.0 / radiusearthkm + 1.0) isimp_ = 1;
  double sfour = ss;
  double qzms24 = qzms2t;
  const double perige = (rp - 1.0) * radiusearthkm;
  if (perige < 156.0) {
    sfour = perige - 78.0;
    if (perige < 98.0) sfour = 20.0;
    qzms24 = std::pow((120.0 - sfour) / radiusearthkm, 4.0);
    sfour = sfour / radiusearthkm + 1.0;
  }
  const double pinvsq = 1.0 / posq;

  const double tsi = 1.0 / (ao - sfour);
  eta_ = ao * ecco_ * tsi;
  const double etasq = eta_ * eta_;
  const double eeta = ecco_ * eta_;
  const double psisq = std::fabs(1.0 - etasq);
  const double coef = qzms24 * std::pow(tsi, 4.0);
  const double coef1 = coef / std::pow(psisq, 3.5);
  const double cc2 =
      coef1 * no_ *
      (ao * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq)) +
       0.375 * j2 * tsi / psisq * con41_ *
           (8.0 + 3.0 * etasq * (8.0 + etasq)));
  cc1_ = bstar_ * cc2;
  double cc3 = 0.0;
  if (ecco_ > 1.0e-4) cc3 = -2.0 * coef * tsi * j3oj2 * no_ * sinio / ecco_;
  x1mth2_ = 1.0 - cosio2;
  cc4_ = 2.0 * no_ * coef1 * ao * omeosq *
         (eta_ * (2.0 + 0.5 * etasq) + ecco_ * (0.5 + 2.0 * etasq) -
          j2 * tsi / (ao * psisq) *
              (-3.0 * con41_ * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta)) +
               0.75 * x1mth2_ * (2.0 * etasq - eeta * (1.0 + etasq)) *
                   std::cos(2.0 * argpo_)));
  cc5_ = 2.0 * coef1 * ao * omeosq *
         (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);

  const double cosio4 = cosio2 * cosio2;
  const double temp1 = 1.5 * j2 * pinvsq * no_;
  const double temp2 = 0.5 * temp1 * j2 * pinvsq;
  const double temp3 = -0.46875 * j4 * pinvsq * pinvsq * no_;
  mdot_ = no_ + 0.5 * temp1 * rteosq * con41_ +
          0.0625 * temp2 * rteosq * (13.0 - 78.0 * cosio2 + 137.0 * cosio4);
  argpdot_ = -0.5 * temp1 * con42 +
             0.0625 * temp2 * (7.0 - 114.0 * cosio2 + 395.0 * cosio4) +
             temp3 * (3.0 - 36.0 * cosio2 + 49.0 * cosio4);
  const double xhdot1 = -temp1 * cosio;
  nodedot_ = xhdot1 + (0.5 * temp2 * (4.0 - 19.0 * cosio2) +
                       2.0 * temp3 * (3.0 - 7.0 * cosio2)) *
                          cosio;
  const double xpidot = argpdot_ + nodedot_;
  omgcof_ = bstar_ * cc3 * std::cos(argpo_);
  xmcof_ = 0.0;
  if (ecco_ > 1.0e-4) xmcof_ = -kX2o3 * coef * bstar_ / eeta;
  nodecf_ = 3.5 * omeosq * xhdot1 * cc1_;
  t2cof_ = 1.5 * cc1_;
  if (std::fabs(cosio + 1.0) > 1.5e-12) {
    xlcof_ = -0.25 * j3oj2 * sinio * (3.0 + 5.0 * cosio) / (1.0 + cosio);
  } else {
    xlcof_ = -0.25 * j3oj2 * sinio * (3.0 + 5.0 * cosio) / temp4;
  }
  aycof_ = -0.5 * j3oj2 * sinio;
  delmo_ = std::pow(1.0 + eta_ * std::cos(mo_), 3.0);
  sinmao_ = std::sin(mo_);
  x7thm1_ = 7.0 * cosio2 - 1.0;

  // --------------------- deep space initialization ------------------------
  if (kTwoPi / no_ >= 225.0) {
    method_ = 'd';
    isimp_ = 1;
    const double tc = 0.0;
    double inclm = inclo_;

    dscom(epoch1950_, ecco_, argpo_, tc, inclo_, nodeo_, no_);
    // The init-phase dpper call applies nothing (reference behaviour); the
    // stored long-period offsets peo..pho stay zero.
    double ep = ecco_;
    double inclp = inclo_;
    double nodep = nodeo_;
    double argpp = argpo_;
    double mp = mo_;
    dpper(0.0, /*init_phase=*/true, ep, inclp, nodep, argpp, mp);

    double argpm = 0.0;
    double nodem = 0.0;
    double mm = 0.0;
    double em = ecco_;
    double nm = no_;
    dsinit(tc, xpidot, eccsq, em, argpm, inclm, mm, nm, nodem);
  }

  // ------------------------ higher-order drag terms -----------------------
  if (isimp_ != 1) {
    const double cc1sq = cc1_ * cc1_;
    d2_ = 4.0 * ao * tsi * cc1sq;
    const double temp = d2_ * tsi * cc1_ / 3.0;
    d3_ = (17.0 * ao + sfour) * temp;
    d4_ = 0.5 * temp * ao * tsi * (221.0 * ao + 31.0 * sfour) * cc1_;
    t3cof_ = d2_ + 2.0 * cc1sq;
    t4cof_ = 0.25 * (3.0 * d3_ + cc1_ * (12.0 * d2_ + 10.0 * cc1sq));
    t5cof_ = 0.2 * (3.0 * d4_ + 12.0 * cc1_ * d3_ + 6.0 * d2_ * d2_ +
                    15.0 * cc1sq * (2.0 * d2_ + cc1sq));
  }

  // Exercise the model once at epoch so bad element sets fail fast.
  orbit::StateVector probe;
  const Sgp4Status status = run_sgp4(0.0, probe);
  if (status != Sgp4Status::kOk) {
    throw PropagationError("sgp4 init failed for catalog " +
                           std::to_string(catalog_number_) + ": " +
                           to_string(status));
  }
}

// ---------------------------------------------------------------------------
// dscom: deep-space common terms (lunar & solar geometry at epoch).
// ---------------------------------------------------------------------------
void Sgp4Propagator::dscom(double epoch1950, double ep, double argpp, double tc,
                           double inclp, double nodep, double np) {
  constexpr double zes = 0.01675;
  constexpr double zel = 0.05490;
  constexpr double c1ss = 2.9864797e-6;
  constexpr double c1l = 4.7968065e-7;
  constexpr double zsinis = 0.39785416;
  constexpr double zcosis = 0.91744867;
  constexpr double zcosgs = 0.1945905;
  constexpr double zsings = -0.98088458;

  const double nm = np;
  const double em = ep;
  snodm_ = std::sin(nodep);
  cnodm_ = std::cos(nodep);
  sinomm_ = std::sin(argpp);
  cosomm_ = std::cos(argpp);
  sinim_ = std::sin(inclp);
  cosim_ = std::cos(inclp);
  emsq_ = em * em;
  const double betasq = 1.0 - emsq_;
  rtemsq_ = std::sqrt(betasq);

  peo_ = 0.0;
  pinco_ = 0.0;
  plo_ = 0.0;
  pgho_ = 0.0;
  pho_ = 0.0;
  day_ = epoch1950 + 18261.5 + tc / 1440.0;
  const double xnodce = std::fmod(4.5236020 - 9.2422029e-4 * day_, kTwoPi);
  const double stem = std::sin(xnodce);
  const double ctem = std::cos(xnodce);
  const double zcosil = 0.91375164 - 0.03568096 * ctem;
  const double zsinil = std::sqrt(1.0 - zcosil * zcosil);
  const double zsinhl = 0.089683511 * stem / zsinil;
  const double zcoshl = std::sqrt(1.0 - zsinhl * zsinhl);
  gam_ = 5.8351514 + 0.0019443680 * day_;
  double zx = 0.39785416 * stem / zsinil;
  const double zy = zcoshl * ctem + 0.91744867 * zsinhl * stem;
  zx = std::atan2(zx, zy);
  zx = gam_ + zx - xnodce;
  const double zcosgl = std::cos(zx);
  const double zsingl = std::sin(zx);

  // ------------------------- do solar terms -------------------------------
  double zcosg = zcosgs;
  double zsing = zsings;
  double zcosi = zcosis;
  double zsini = zsinis;
  double zcosh = cnodm_;
  double zsinh = snodm_;
  double cc = c1ss;
  const double xnoi = 1.0 / nm;

  for (int lsflg = 1; lsflg <= 2; ++lsflg) {
    const double a1 = zcosg * zcosh + zsing * zcosi * zsinh;
    const double a3 = -zsing * zcosh + zcosg * zcosi * zsinh;
    const double a7 = -zcosg * zsinh + zsing * zcosi * zcosh;
    const double a8 = zsing * zsini;
    const double a9 = zsing * zsinh + zcosg * zcosi * zcosh;
    const double a10 = zcosg * zsini;
    const double a2 = cosim_ * a7 + sinim_ * a8;
    const double a4 = cosim_ * a9 + sinim_ * a10;
    const double a5 = -sinim_ * a7 + cosim_ * a8;
    const double a6 = -sinim_ * a9 + cosim_ * a10;

    const double x1 = a1 * cosomm_ + a2 * sinomm_;
    const double x2 = a3 * cosomm_ + a4 * sinomm_;
    const double x3 = -a1 * sinomm_ + a2 * cosomm_;
    const double x4 = -a3 * sinomm_ + a4 * cosomm_;
    const double x5 = a5 * sinomm_;
    const double x6 = a6 * sinomm_;
    const double x7 = a5 * cosomm_;
    const double x8 = a6 * cosomm_;

    z31_ = 12.0 * x1 * x1 - 3.0 * x3 * x3;
    z32_ = 24.0 * x1 * x2 - 6.0 * x3 * x4;
    z33_ = 12.0 * x2 * x2 - 3.0 * x4 * x4;
    z1_ = 3.0 * (a1 * a1 + a2 * a2) + z31_ * emsq_;
    z2_ = 6.0 * (a1 * a3 + a2 * a4) + z32_ * emsq_;
    z3_ = 3.0 * (a3 * a3 + a4 * a4) + z33_ * emsq_;
    z11_ = -6.0 * a1 * a5 + emsq_ * (-24.0 * x1 * x7 - 6.0 * x3 * x5);
    z12_ = -6.0 * (a1 * a6 + a3 * a5) +
           emsq_ * (-24.0 * (x2 * x7 + x1 * x8) - 6.0 * (x3 * x6 + x4 * x5));
    z13_ = -6.0 * a3 * a6 + emsq_ * (-24.0 * x2 * x8 - 6.0 * x4 * x6);
    z21_ = 6.0 * a2 * a5 + emsq_ * (24.0 * x1 * x5 - 6.0 * x3 * x7);
    z22_ = 6.0 * (a4 * a5 + a2 * a6) +
           emsq_ * (24.0 * (x2 * x5 + x1 * x6) - 6.0 * (x4 * x7 + x3 * x8));
    z23_ = 6.0 * a4 * a6 + emsq_ * (24.0 * x2 * x6 - 6.0 * x4 * x8);
    z1_ = z1_ + z1_ + betasq * z31_;
    z2_ = z2_ + z2_ + betasq * z32_;
    z3_ = z3_ + z3_ + betasq * z33_;
    s3_ = cc * xnoi;
    s2_ = -0.5 * s3_ / rtemsq_;
    s4_ = s3_ * rtemsq_;
    s1_ = -15.0 * em * s4_;
    s5_ = x1 * x3 + x2 * x4;
    s6_ = x2 * x3 + x1 * x4;
    s7_ = x2 * x4 - x1 * x3;

    if (lsflg == 1) {
      ss1_ = s1_;
      ss2_ = s2_;
      ss3_ = s3_;
      ss4_ = s4_;
      ss5_ = s5_;
      ss6_ = s6_;
      ss7_ = s7_;
      sz1_ = z1_;
      sz2_ = z2_;
      sz3_ = z3_;
      sz11_ = z11_;
      sz12_ = z12_;
      sz13_ = z13_;
      sz21_ = z21_;
      sz22_ = z22_;
      sz23_ = z23_;
      sz31_ = z31_;
      sz32_ = z32_;
      sz33_ = z33_;
      zcosg = zcosgl;
      zsing = zsingl;
      zcosi = zcosil;
      zsini = zsinil;
      zcosh = zcoshl * cnodm_ + zsinhl * snodm_;
      zsinh = snodm_ * zcoshl - cnodm_ * zsinhl;
      cc = c1l;
    }
  }

  zmol_ = std::fmod(4.7199672 + 0.22997150 * day_ - gam_, kTwoPi);
  zmos_ = std::fmod(6.2565837 + 0.017201977 * day_, kTwoPi);

  // ------------------------ do solar terms --------------------------------
  se2_ = 2.0 * ss1_ * ss6_;
  se3_ = 2.0 * ss1_ * ss7_;
  si2_ = 2.0 * ss2_ * sz12_;
  si3_ = 2.0 * ss2_ * (sz13_ - sz11_);
  sl2_ = -2.0 * ss3_ * sz2_;
  sl3_ = -2.0 * ss3_ * (sz3_ - sz1_);
  sl4_ = -2.0 * ss3_ * (-21.0 - 9.0 * emsq_) * zes;
  sgh2_ = 2.0 * ss4_ * sz32_;
  sgh3_ = 2.0 * ss4_ * (sz33_ - sz31_);
  sgh4_ = -18.0 * ss4_ * zes;
  sh2_ = -2.0 * ss2_ * sz22_;
  sh3_ = -2.0 * ss2_ * (sz23_ - sz21_);

  // ------------------------ do lunar terms --------------------------------
  ee2_ = 2.0 * s1_ * s6_;
  e3_ = 2.0 * s1_ * s7_;
  xi2_ = 2.0 * s2_ * z12_;
  xi3_ = 2.0 * s2_ * (z13_ - z11_);
  xl2_ = -2.0 * s3_ * z2_;
  xl3_ = -2.0 * s3_ * (z3_ - z1_);
  xl4_ = -2.0 * s3_ * (-21.0 - 9.0 * emsq_) * zel;
  xgh2_ = 2.0 * s4_ * z32_;
  xgh3_ = 2.0 * s4_ * (z33_ - z31_);
  xgh4_ = -18.0 * s4_ * zel;
  xh2_ = -2.0 * s2_ * z22_;
  xh3_ = -2.0 * s2_ * (z23_ - z21_);
}

// ---------------------------------------------------------------------------
// dpper: lunar-solar long-period periodic contributions.
// ---------------------------------------------------------------------------
void Sgp4Propagator::dpper(double t, bool init_phase, double& ep, double& inclp,
                           double& nodep, double& argpp, double& mp) const noexcept {
  constexpr double zns = 1.19459e-5;
  constexpr double zes = 0.01675;
  constexpr double znl = 1.5835218e-4;
  constexpr double zel = 0.05490;

  // --------------- calculate time varying periodics ----------------------
  double zm = zmos_ + zns * t;
  if (init_phase) zm = zmos_;
  double zf = zm + 2.0 * zes * std::sin(zm);
  double sinzf = std::sin(zf);
  double f2 = 0.5 * sinzf * sinzf - 0.25;
  double f3 = -0.5 * sinzf * std::cos(zf);
  const double ses = se2_ * f2 + se3_ * f3;
  const double sis = si2_ * f2 + si3_ * f3;
  const double sls = sl2_ * f2 + sl3_ * f3 + sl4_ * sinzf;
  const double sghs = sgh2_ * f2 + sgh3_ * f3 + sgh4_ * sinzf;
  const double shs = sh2_ * f2 + sh3_ * f3;

  zm = zmol_ + znl * t;
  if (init_phase) zm = zmol_;
  zf = zm + 2.0 * zel * std::sin(zm);
  sinzf = std::sin(zf);
  f2 = 0.5 * sinzf * sinzf - 0.25;
  f3 = -0.5 * sinzf * std::cos(zf);
  const double sel = ee2_ * f2 + e3_ * f3;
  const double sil = xi2_ * f2 + xi3_ * f3;
  const double sll = xl2_ * f2 + xl3_ * f3 + xl4_ * sinzf;
  const double sghl = xgh2_ * f2 + xgh3_ * f3 + xgh4_ * sinzf;
  const double shll = xh2_ * f2 + xh3_ * f3;

  double pe = ses + sel;
  double pinc = sis + sil;
  double pl = sls + sll;
  double pgh = sghs + sghl;
  double ph = shs + shll;

  if (!init_phase) {
    pe -= peo_;
    pinc -= pinco_;
    pl -= plo_;
    pgh -= pgho_;
    ph -= pho_;
    inclp += pinc;
    ep += pe;
    const double sinip = std::sin(inclp);
    const double cosip = std::cos(inclp);

    if (inclp >= 0.2) {
      ph /= sinip;
      pgh -= cosip * ph;
      argpp += pgh;
      nodep += ph;
      mp += pl;
    } else {
      // ---- apply periodics with Lyddane modification (low inclination) ---
      const double sinop = std::sin(nodep);
      const double cosop = std::cos(nodep);
      double alfdp = sinip * sinop;
      double betdp = sinip * cosop;
      const double dalf = ph * cosop + pinc * cosip * sinop;
      const double dbet = -ph * sinop + pinc * cosip * cosop;
      alfdp += dalf;
      betdp += dbet;
      nodep = std::fmod(nodep, kTwoPi);
      if (nodep < 0.0) nodep += kTwoPi;
      double xls = mp + argpp + cosip * nodep;
      const double dls = pl + pgh - pinc * nodep * sinip;
      xls += dls;
      const double xnoh = nodep;
      nodep = std::atan2(alfdp, betdp);
      if (nodep < 0.0) nodep += kTwoPi;
      if (std::fabs(xnoh - nodep) > kPi) {
        if (nodep < xnoh) nodep += kTwoPi;
        else nodep -= kTwoPi;
      }
      mp += pl;
      argpp = xls - mp - cosip * nodep;
    }
  }
}

// ---------------------------------------------------------------------------
// dsinit: deep-space secular rates and resonance initialisation.
// ---------------------------------------------------------------------------
void Sgp4Propagator::dsinit(double tc, double xpidot, double eccsq, double& em,
                            double& argpm, double& inclm, double& mm, double& nm,
                            double& nodem) {
  constexpr double q22 = 1.7891679e-6;
  constexpr double q31 = 2.1460748e-6;
  constexpr double q33 = 2.2123015e-7;
  constexpr double root22 = 1.7891679e-6;
  constexpr double root44 = 7.3636953e-9;
  constexpr double root54 = 2.1765803e-9;
  constexpr double rptim = 4.37526908801129966e-3;  // earth rotation, rad/min
  constexpr double root32 = 3.7393792e-7;
  constexpr double root52 = 1.1428639e-7;
  constexpr double znl = 1.5835218e-4;
  constexpr double zns = 1.19459e-5;

  // -------------------- deep space resonance flags ------------------------
  irez_ = 0;
  if (nm < 0.0052359877 && nm > 0.0034906585) irez_ = 1;
  if (nm >= 8.26e-3 && nm <= 9.24e-3 && em >= 0.5) irez_ = 2;

  // ------------------------ do solar terms --------------------------------
  const double ses = ss1_ * zns * ss5_;
  const double sis = ss2_ * zns * (sz11_ + sz13_);
  const double sls = -zns * ss3_ * (sz1_ + sz3_ - 14.0 - 6.0 * emsq_);
  const double sghs = ss4_ * zns * (sz31_ + sz33_ - 6.0);
  double shs = -zns * ss2_ * (sz21_ + sz23_);
  if (inclm < 5.2359877e-2 || inclm > kPi - 5.2359877e-2) shs = 0.0;
  if (sinim_ != 0.0) shs /= sinim_;
  const double sgs = sghs - cosim_ * shs;

  // ------------------------- do lunar terms -------------------------------
  dedt_ = ses + s1_ * znl * s5_;
  didt_ = sis + s2_ * znl * (z11_ + z13_);
  dmdt_ = sls - znl * s3_ * (z1_ + z3_ - 14.0 - 6.0 * emsq_);
  const double sghl = s4_ * znl * (z31_ + z33_ - 6.0);
  double shll = -znl * s2_ * (z21_ + z23_);
  if (inclm < 5.2359877e-2 || inclm > kPi - 5.2359877e-2) shll = 0.0;
  domdt_ = sgs + sghl;
  dnodt_ = shs;
  if (sinim_ != 0.0) {
    domdt_ -= cosim_ / sinim_ * shll;
    dnodt_ += shll / sinim_;
  }

  // At initialisation t = 0, so the secular updates (dedt*t etc.) vanish;
  // only theta is needed for the resonance phase angles below.
  const double theta = std::fmod(gsto_ + tc * rptim, kTwoPi);
  (void)em;
  (void)argpm;
  (void)nodem;
  (void)mm;
  (void)inclm;

  // -------------------- initialize the resonance terms --------------------
  if (irez_ != 0) {
    const double aonv = std::pow(nm / gravity_.xke, kX2o3);

    // ------------- geopotential resonance for 12-hour orbits --------------
    if (irez_ == 2) {
      const double cosisq = cosim_ * cosim_;
      const double emo = em;
      em = ecco_;
      const double emsqo = emsq_;
      emsq_ = eccsq;
      const double eoc = em * emsq_;
      const double g201 = -0.306 - (em - 0.64) * 0.440;

      double g211, g310, g322, g410, g422, g520, g521, g532, g533;
      if (em <= 0.65) {
        g211 = 3.616 - 13.2470 * em + 16.2900 * emsq_;
        g310 = -19.302 + 117.3900 * em - 228.4190 * emsq_ + 156.5910 * eoc;
        g322 = -18.9068 + 109.7927 * em - 214.6334 * emsq_ + 146.5816 * eoc;
        g410 = -41.122 + 242.6940 * em - 471.0940 * emsq_ + 313.9530 * eoc;
        g422 = -146.407 + 841.8800 * em - 1629.014 * emsq_ + 1083.4350 * eoc;
        g520 = -532.114 + 3017.977 * em - 5740.032 * emsq_ + 3708.2760 * eoc;
      } else {
        g211 = -72.099 + 331.819 * em - 508.738 * emsq_ + 266.724 * eoc;
        g310 = -346.844 + 1582.851 * em - 2415.925 * emsq_ + 1246.113 * eoc;
        g322 = -342.585 + 1554.908 * em - 2366.899 * emsq_ + 1215.972 * eoc;
        g410 = -1052.797 + 4758.686 * em - 7193.992 * emsq_ + 3651.957 * eoc;
        g422 = -3581.690 + 16178.110 * em - 24462.770 * emsq_ + 12422.520 * eoc;
        if (em > 0.715) {
          g520 = -5149.66 + 29936.92 * em - 54087.36 * emsq_ + 31324.56 * eoc;
        } else {
          g520 = 1464.74 - 4664.75 * em + 3763.64 * emsq_;
        }
      }
      if (em < 0.7) {
        g533 = -919.22770 + 4988.6100 * em - 9064.7700 * emsq_ + 5542.21 * eoc;
        g521 = -822.71072 + 4568.6173 * em - 8491.4146 * emsq_ + 4649.04 * eoc;
        g532 = -853.66600 + 4690.2500 * em - 8624.7700 * emsq_ + 5341.4 * eoc;
      } else {
        g533 = -37995.780 + 161616.52 * em - 229838.20 * emsq_ + 109377.94 * eoc;
        g521 = -51752.104 + 218913.95 * em - 309468.16 * emsq_ + 146349.42 * eoc;
        g532 = -40023.880 + 170470.89 * em - 242699.48 * emsq_ + 115605.82 * eoc;
      }

      const double sini2 = sinim_ * sinim_;
      const double f220 = 0.75 * (1.0 + 2.0 * cosim_ + cosisq);
      const double f221 = 1.5 * sini2;
      const double f321 =
          1.875 * sinim_ * (1.0 - 2.0 * cosim_ - 3.0 * cosisq);
      const double f322 =
          -1.875 * sinim_ * (1.0 + 2.0 * cosim_ - 3.0 * cosisq);
      const double f441 = 35.0 * sini2 * f220;
      const double f442 = 39.3750 * sini2 * sini2;
      const double f522 =
          9.84375 * sinim_ *
          (sini2 * (1.0 - 2.0 * cosim_ - 5.0 * cosisq) +
           0.33333333 * (-2.0 + 4.0 * cosim_ + 6.0 * cosisq));
      const double f523 =
          sinim_ * (4.92187512 * sini2 * (-2.0 - 4.0 * cosim_ + 10.0 * cosisq) +
                    6.56250012 * (1.0 + 2.0 * cosim_ - 3.0 * cosisq));
      const double f542 =
          29.53125 * sinim_ *
          (2.0 - 8.0 * cosim_ + cosisq * (-12.0 + 8.0 * cosim_ + 10.0 * cosisq));
      const double f543 =
          29.53125 * sinim_ *
          (-2.0 - 8.0 * cosim_ + cosisq * (12.0 + 8.0 * cosim_ - 10.0 * cosisq));

      const double xno2 = nm * nm;
      const double ainv2 = aonv * aonv;
      double temp1 = 3.0 * xno2 * ainv2;
      double temp = temp1 * root22;
      d2201_ = temp * f220 * g201;
      d2211_ = temp * f221 * g211;
      temp1 *= aonv;
      temp = temp1 * root32;
      d3210_ = temp * f321 * g310;
      d3222_ = temp * f322 * g322;
      temp1 *= aonv;
      temp = 2.0 * temp1 * root44;
      d4410_ = temp * f441 * g410;
      d4422_ = temp * f442 * g422;
      temp1 *= aonv;
      temp = temp1 * root52;
      d5220_ = temp * f522 * g520;
      d5232_ = temp * f523 * g532;
      temp = 2.0 * temp1 * root54;
      d5421_ = temp * f542 * g521;
      d5433_ = temp * f543 * g533;
      xlamo_ = std::fmod(mo_ + nodeo_ + nodeo_ - theta - theta, kTwoPi);
      xfact_ = mdot_ + dmdt_ + 2.0 * (nodedot_ + dnodt_ - rptim) - no_;
      em = emo;
      emsq_ = emsqo;
    }

    // -------------------- synchronous resonance terms ---------------------
    if (irez_ == 1) {
      const double g200 = 1.0 + emsq_ * (-2.5 + 0.8125 * emsq_);
      const double g310 = 1.0 + 2.0 * emsq_;
      const double g300 = 1.0 + emsq_ * (-6.0 + 6.60937 * emsq_);
      const double f220 = 0.75 * (1.0 + cosim_) * (1.0 + cosim_);
      const double f311 =
          0.9375 * sinim_ * sinim_ * (1.0 + 3.0 * cosim_) - 0.75 * (1.0 + cosim_);
      double f330 = 1.0 + cosim_;
      f330 = 1.875 * f330 * f330 * f330;
      del1_ = 3.0 * nm * nm * aonv * aonv;
      del2_ = 2.0 * del1_ * f220 * g200 * q22;
      del3_ = 3.0 * del1_ * f330 * g300 * q33 * aonv;
      del1_ = del1_ * f311 * g310 * q31 * aonv;
      xlamo_ = std::fmod(mo_ + nodeo_ + argpo_ - theta, kTwoPi);
      xfact_ = mdot_ + xpidot - rptim + dmdt_ + domdt_ + dnodt_ - no_;
    }

    // ------------ for sgp4, initialize the integrator -------------------
    xli_ = xlamo_;
    xni_ = no_;
    atime_ = 0.0;
    nm = no_;
  }
}

// ---------------------------------------------------------------------------
// dspace: deep-space secular effects and resonance integration at time t.
// ---------------------------------------------------------------------------
void Sgp4Propagator::dspace(double t, double tc, double& em, double& argpm,
                            double& inclm, double& mm, double& nodem,
                            double& nm) const noexcept {
  constexpr double fasx2 = 0.13130908;
  constexpr double fasx4 = 2.8843198;
  constexpr double fasx6 = 0.37448087;
  constexpr double g22 = 5.7686396;
  constexpr double g32 = 0.95240898;
  constexpr double g44 = 1.8014998;
  constexpr double g52 = 1.0508330;
  constexpr double g54 = 4.4108898;
  constexpr double rptim = 4.37526908801129966e-3;
  constexpr double stepp = 720.0;
  constexpr double stepn = -720.0;
  constexpr double step2 = 259200.0;

  // ----------- calculate deep space resonance effects -----------
  const double theta = std::fmod(gsto_ + tc * rptim, kTwoPi);
  em += dedt_ * t;
  inclm += didt_ * t;
  argpm += domdt_ * t;
  nodem += dnodt_ * t;
  mm += dmdt_ * t;

  // - update resonances: numerical (euler-maclaurin) integration -
  double ft = 0.0;
  if (irez_ != 0) {
    // Restart the integrator when t moved backwards past the cached state.
    if (atime_ == 0.0 || t * atime_ <= 0.0 || std::fabs(t) < std::fabs(atime_)) {
      atime_ = 0.0;
      xni_ = no_;
      xli_ = xlamo_;
    }
    const double delt = (t > 0.0) ? stepp : stepn;

    double xndt = 0.0;
    double xldot = 0.0;
    double xnddt = 0.0;
    bool integrating = true;
    while (integrating) {
      // ------------------- dot terms calculated -------------
      if (irez_ != 2) {
        // near-synchronous resonance terms
        xndt = del1_ * std::sin(xli_ - fasx2) +
               del2_ * std::sin(2.0 * (xli_ - fasx4)) +
               del3_ * std::sin(3.0 * (xli_ - fasx6));
        xldot = xni_ + xfact_;
        xnddt = del1_ * std::cos(xli_ - fasx2) +
                2.0 * del2_ * std::cos(2.0 * (xli_ - fasx4)) +
                3.0 * del3_ * std::cos(3.0 * (xli_ - fasx6));
        xnddt *= xldot;
      } else {
        // near half-day resonance terms
        const double xomi = argpo_ + argpdot_ * atime_;
        const double x2omi = xomi + xomi;
        const double x2li = xli_ + xli_;
        xndt = d2201_ * std::sin(x2omi + xli_ - g22) +
               d2211_ * std::sin(xli_ - g22) +
               d3210_ * std::sin(xomi + xli_ - g32) +
               d3222_ * std::sin(-xomi + xli_ - g32) +
               d4410_ * std::sin(x2omi + x2li - g44) +
               d4422_ * std::sin(x2li - g44) +
               d5220_ * std::sin(xomi + xli_ - g52) +
               d5232_ * std::sin(-xomi + xli_ - g52) +
               d5421_ * std::sin(xomi + x2li - g54) +
               d5433_ * std::sin(-xomi + x2li - g54);
        xldot = xni_ + xfact_;
        xnddt = d2201_ * std::cos(x2omi + xli_ - g22) +
                d2211_ * std::cos(xli_ - g22) +
                d3210_ * std::cos(xomi + xli_ - g32) +
                d3222_ * std::cos(-xomi + xli_ - g32) +
                d5220_ * std::cos(xomi + xli_ - g52) +
                d5232_ * std::cos(-xomi + xli_ - g52) +
                2.0 * (d4410_ * std::cos(x2omi + x2li - g44) +
                       d4422_ * std::cos(x2li - g44) +
                       d5421_ * std::cos(xomi + x2li - g54) +
                       d5433_ * std::cos(-xomi + x2li - g54));
        xnddt *= xldot;
      }

      // ----------------------- integrator -------------------
      if (std::fabs(t - atime_) >= stepp) {
        integrating = true;
      } else {
        ft = t - atime_;
        integrating = false;
      }
      if (integrating) {
        xli_ += xldot * delt + xndt * step2;
        xni_ += xndt * delt + xnddt * step2;
        atime_ += delt;
      }
    }

    nm = xni_ + xndt * ft + xnddt * ft * ft * 0.5;
    const double xl = xli_ + xldot * ft + xndt * ft * ft * 0.5;
    double dndt = 0.0;
    if (irez_ != 1) {
      mm = xl - 2.0 * nodem + 2.0 * theta;
      dndt = nm - no_;
    } else {
      mm = xl - nodem - argpm + theta;
      dndt = nm - no_;
    }
    nm = no_ + dndt;
  }
}

// ---------------------------------------------------------------------------
// run_sgp4: the propagation kernel (Vallado's sgp4()).
// ---------------------------------------------------------------------------
Sgp4Status Sgp4Propagator::run_sgp4(double tsince, orbit::StateVector& out) const noexcept {
  const double temp4 = 1.5e-12;
  const double xke = gravity_.xke;
  const double j2 = gravity_.j2;
  const double j3oj2 = gravity_.j3oj2;
  const double radiusearthkm = gravity_.radius_earth_km;
  const double vkmpersec = radiusearthkm * xke / 60.0;

  const double t = tsince;

  // ------- update for secular gravity and atmospheric drag -----
  const double xmdf = mo_ + mdot_ * t;
  const double argpdf = argpo_ + argpdot_ * t;
  const double nodedf = nodeo_ + nodedot_ * t;
  double argpm = argpdf;
  double mm = xmdf;
  const double t2 = t * t;
  double nodem = nodedf + nodecf_ * t2;
  double tempa = 1.0 - cc1_ * t;
  double tempe = bstar_ * cc4_ * t;
  double templ = t2cof_ * t2;

  if (isimp_ != 1) {
    const double delomg = omgcof_ * t;
    const double delmtemp = 1.0 + eta_ * std::cos(xmdf);
    const double delm = xmcof_ * (delmtemp * delmtemp * delmtemp - delmo_);
    const double temp = delomg + delm;
    mm = xmdf + temp;
    argpm = argpdf - temp;
    const double t3 = t2 * t;
    const double t4 = t3 * t;
    tempa = tempa - d2_ * t2 - d3_ * t3 - d4_ * t4;
    tempe = tempe + bstar_ * cc5_ * (std::sin(mm) - sinmao_);
    templ = templ + t3cof_ * t3 + t4 * (t4cof_ + t * t5cof_);
  }

  double nm = no_;
  double em = ecco_;
  double inclm = inclo_;
  if (method_ == 'd') {
    const double tc = t;
    dspace(t, tc, em, argpm, inclm, mm, nodem, nm);
  }

  if (nm <= 0.0) return Sgp4Status::kMeanMotionNonPositive;

  const double am = std::pow(xke / nm, kX2o3) * tempa * tempa;
  nm = xke / std::pow(am, 1.5);
  em -= tempe;

  if (em >= 1.0 || em < -0.001) return Sgp4Status::kEccentricityOutOfRange;
  if (em < 1.0e-6) em = 1.0e-6;

  mm += no_ * templ;
  double xlm = mm + argpm + nodem;

  nodem = std::fmod(nodem, kTwoPi);
  if (nodem < 0.0) nodem += kTwoPi;
  argpm = std::fmod(argpm, kTwoPi);
  xlm = std::fmod(xlm, kTwoPi);
  mm = std::fmod(xlm - argpm - nodem, kTwoPi);

  // ----------------- compute extra mean quantities -------------
  const double sinim = std::sin(inclm);
  const double cosim = std::cos(inclm);

  // -------------------- add lunar-solar periodics --------------
  double ep = em;
  double xincp = inclm;
  double argpp = argpm;
  double nodep = nodem;
  double mp = mm;
  double sinip = sinim;
  double cosip = cosim;
  double aycof = aycof_;
  double xlcof = xlcof_;
  double con41 = con41_;
  double x1mth2 = x1mth2_;
  double x7thm1 = x7thm1_;

  if (method_ == 'd') {
    dpper(t, /*init_phase=*/false, ep, xincp, nodep, argpp, mp);
    if (xincp < 0.0) {
      xincp = -xincp;
      nodep += kPi;
      argpp -= kPi;
    }
    if (ep < 0.0 || ep > 1.0) {
      return Sgp4Status::kPerturbedEccentricityOutOfRange;
    }
    // ------------ update the long-period coefficients -----------
    sinip = std::sin(xincp);
    cosip = std::cos(xincp);
    aycof = -0.5 * j3oj2 * sinip;
    if (std::fabs(cosip + 1.0) > 1.5e-12) {
      xlcof = -0.25 * j3oj2 * sinip * (3.0 + 5.0 * cosip) / (1.0 + cosip);
    } else {
      xlcof = -0.25 * j3oj2 * sinip * (3.0 + 5.0 * cosip) / temp4;
    }
  }

  // --------------------- long period periodics -----------------
  const double axnl = ep * std::cos(argpp);
  double temp = 1.0 / (am * (1.0 - ep * ep));
  const double aynl = ep * std::sin(argpp) + temp * aycof;
  const double xl = mp + argpp + nodep + temp * xlcof * axnl;

  // ------------------------ solve kepler's equation ------------
  const double u = std::fmod(xl - nodep, kTwoPi);
  double eo1 = u;
  double tem5 = 9999.9;
  double sineo1 = 0.0;
  double coseo1 = 0.0;
  int ktr = 1;
  while (std::fabs(tem5) >= 1.0e-12 && ktr <= 10) {
    sineo1 = std::sin(eo1);
    coseo1 = std::cos(eo1);
    tem5 = 1.0 - coseo1 * axnl - sineo1 * aynl;
    tem5 = (u - aynl * coseo1 + axnl * sineo1 - eo1) / tem5;
    if (std::fabs(tem5) >= 0.95) tem5 = tem5 > 0.0 ? 0.95 : -0.95;
    eo1 += tem5;
    ++ktr;
  }

  // ------------- short period preliminary quantities -----------
  const double ecose = axnl * coseo1 + aynl * sineo1;
  const double esine = axnl * sineo1 - aynl * coseo1;
  const double el2 = axnl * axnl + aynl * aynl;
  const double pl = am * (1.0 - el2);
  if (pl < 0.0) return Sgp4Status::kSemiLatusRectumNegative;

  const double rl = am * (1.0 - ecose);
  const double rdotl = std::sqrt(am) * esine / rl;
  const double rvdotl = std::sqrt(pl) / rl;
  const double betal = std::sqrt(1.0 - el2);
  temp = esine / (1.0 + betal);
  const double sinu = am / rl * (sineo1 - aynl - axnl * temp);
  const double cosu = am / rl * (coseo1 - axnl + aynl * temp);
  double su = std::atan2(sinu, cosu);
  const double sin2u = (cosu + cosu) * sinu;
  const double cos2u = 1.0 - 2.0 * sinu * sinu;
  temp = 1.0 / pl;
  const double temp1 = 0.5 * j2 * temp;
  const double temp2 = temp1 * temp;

  // -------------- update for short period periodics ------------
  if (method_ == 'd') {
    const double cosisq = cosip * cosip;
    con41 = 3.0 * cosisq - 1.0;
    x1mth2 = 1.0 - cosisq;
    x7thm1 = 7.0 * cosisq - 1.0;
  }
  const double mrt =
      rl * (1.0 - 1.5 * temp2 * betal * con41) + 0.5 * temp1 * x1mth2 * cos2u;
  su -= 0.25 * temp2 * x7thm1 * sin2u;
  const double xnode = nodep + 1.5 * temp2 * cosip * sin2u;
  const double xinc = xincp + 1.5 * temp2 * cosip * sinip * cos2u;
  const double mvt = rdotl - nm * temp1 * x1mth2 * sin2u / xke;
  const double rvdot = rvdotl + nm * temp1 * (x1mth2 * cos2u + 1.5 * con41) / xke;

  // --------------------- orientation vectors -------------------
  const double sinsu = std::sin(su);
  const double cossu = std::cos(su);
  const double snod = std::sin(xnode);
  const double cnod = std::cos(xnode);
  const double sini = std::sin(xinc);
  const double cosi = std::cos(xinc);
  const double xmx = -snod * cosi;
  const double xmy = cnod * cosi;
  const double ux = xmx * sinsu + cnod * cossu;
  const double uy = xmy * sinsu + snod * cossu;
  const double uz = sini * sinsu;
  const double vx = xmx * cossu - cnod * sinsu;
  const double vy = xmy * cossu - snod * sinsu;
  const double vz = sini * cossu;

  // ------------------- position and velocity (km, km/s) --------
  out.position_km = {mrt * ux * radiusearthkm, mrt * uy * radiusearthkm,
                     mrt * uz * radiusearthkm};
  out.velocity_kms = {(mvt * ux + rvdot * vx) * vkmpersec,
                      (mvt * uy + rvdot * vy) * vkmpersec,
                      (mvt * uz + rvdot * vz) * vkmpersec};

  if (mrt < 1.0) return Sgp4Status::kDecayed;
  return Sgp4Status::kOk;
}

}  // namespace cosmicdance::sgp4
