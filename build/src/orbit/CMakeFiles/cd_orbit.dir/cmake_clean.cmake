file(REMOVE_RECURSE
  "CMakeFiles/cd_orbit.dir/elements.cpp.o"
  "CMakeFiles/cd_orbit.dir/elements.cpp.o.d"
  "CMakeFiles/cd_orbit.dir/frames.cpp.o"
  "CMakeFiles/cd_orbit.dir/frames.cpp.o.d"
  "CMakeFiles/cd_orbit.dir/kepler.cpp.o"
  "CMakeFiles/cd_orbit.dir/kepler.cpp.o.d"
  "CMakeFiles/cd_orbit.dir/state.cpp.o"
  "CMakeFiles/cd_orbit.dir/state.cpp.o.d"
  "libcd_orbit.a"
  "libcd_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
