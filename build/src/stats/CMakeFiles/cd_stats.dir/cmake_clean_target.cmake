file(REMOVE_RECURSE
  "libcd_stats.a"
)
