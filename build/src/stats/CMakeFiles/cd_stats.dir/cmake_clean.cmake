file(REMOVE_RECURSE
  "CMakeFiles/cd_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/cd_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/cd_stats.dir/correlation.cpp.o"
  "CMakeFiles/cd_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/cd_stats.dir/descriptive.cpp.o"
  "CMakeFiles/cd_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/cd_stats.dir/ecdf.cpp.o"
  "CMakeFiles/cd_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/cd_stats.dir/histogram.cpp.o"
  "CMakeFiles/cd_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/cd_stats.dir/rolling.cpp.o"
  "CMakeFiles/cd_stats.dir/rolling.cpp.o.d"
  "libcd_stats.a"
  "libcd_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
