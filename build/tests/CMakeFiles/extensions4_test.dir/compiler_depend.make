# Empty compiler generated dependencies file for extensions4_test.
# This may be replaced when dependencies are built.
