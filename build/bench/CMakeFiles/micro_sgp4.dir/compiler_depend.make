# Empty compiler generated dependencies file for micro_sgp4.
# This may be replaced when dependencies are built.
