file(REMOVE_RECURSE
  "CMakeFiles/fig02_storm_duration.dir/fig02_storm_duration.cpp.o"
  "CMakeFiles/fig02_storm_duration.dir/fig02_storm_duration.cpp.o.d"
  "fig02_storm_duration"
  "fig02_storm_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_storm_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
