// cdlint — the CosmicDance project-invariant static-analysis pass.
//
//   cdlint [--root DIR] [--baseline FILE] [--threads N] [--json]
//          [--dump-index] [dir...]
//
// Walks `src/`, `tools/`, `bench/` and `tests/` under --root (default: the
// current directory) and runs the two-phase analysis in scan.hpp: per-file
// rules R1-R8 while each file is lexed into a project-index record, then
// the cross-file concurrency/determinism rules R9-R14 over the merged
// index.  Findings print one per line, sorted by (file, line, rule):
//
//   src/foo/bar.cpp:42: [rule-slug] message
//
// With --json, findings are emitted as a JSON object instead; --dump-index
// prints the serialized project index (for debugging and the scan tests)
// and reports no findings.  --threads N fans the file scan over the exec
// pool (0 = all hardware, 1 = serial); output is byte-identical at any
// value.  A baseline file (one `rule|path|normalized-line` entry per line,
// '#' comments) lets legacy findings be grandfathered while new ones fail;
// the committed baseline is empty and tier-1 pass 5 keeps it that way.
//
// Exit status: 0 no findings, 1 findings, 2 usage or I/O error.
#include <charconv>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "rules.hpp"
#include "scan.hpp"

namespace cdlint {
namespace {

struct Options {
  ScanOptions scan;
  std::string baseline;
  bool json = false;
  bool dump_index = false;
};

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Baseline entries are consumable: each suppresses one matching finding.
using Baseline = std::multiset<std::string>;

Baseline load_baseline(const std::string& path) {
  Baseline baseline;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cdlint: cannot open baseline file: " << path << "\n";
    std::exit(2);
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    baseline.insert(line.substr(first));
  }
  return baseline;
}

std::string baseline_key(const Finding& finding) {
  return finding.rule + "|" + finding.file + "|" + finding.raw;
}

Options parse_args(int argc, char** argv) {
  Options options;
  options.scan.dirs.clear();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* name) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "cdlint: " << name << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      options.scan.root = value("--root");
    } else if (arg == "--baseline") {
      options.baseline = value("--baseline");
    } else if (arg == "--threads") {
      const std::string text = value("--threads");
      int threads = -1;
      const auto [ptr, ec] = std::from_chars(
          text.data(), text.data() + text.size(), threads);
      if (ec != std::errc() || ptr != text.data() + text.size() ||
          threads < 0) {
        std::cerr << "cdlint: --threads requires a non-negative integer, got '"
                  << text << "'\n";
        std::exit(2);
      }
      options.scan.threads = threads;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--dump-index") {
      options.dump_index = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: cdlint [--root DIR] [--baseline FILE] "
                   "[--threads N] [--json] [--dump-index] [dir...]\n";
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cdlint: unknown option " << arg << "\n";
      std::exit(2);
    } else {
      options.scan.dirs.push_back(arg);
    }
  }
  if (options.scan.dirs.empty()) {
    options.scan.dirs = {"src", "tools", "bench", "tests"};
  }
  return options;
}

int run(const Options& options) {
  ScanResult result = scan_tree(options.scan);
  if (!result.error.empty()) {
    std::cerr << "cdlint: " << result.error << "\n";
    return 2;
  }

  if (options.dump_index) {
    std::cout << result.index.serialize();
    std::cerr << "cdlint: " << result.files_scanned
              << " files indexed\n";
    return 0;
  }

  Baseline baseline;
  if (!options.baseline.empty()) baseline = load_baseline(options.baseline);
  std::vector<Finding> findings;
  std::size_t baselined = 0;
  for (Finding& finding : result.findings) {
    const auto entry = baseline.find(baseline_key(finding));
    if (entry != baseline.end()) {
      baseline.erase(entry);
      ++baselined;
      continue;
    }
    findings.push_back(std::move(finding));
  }

  if (options.json) {
    std::cout << "{\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      std::cout << (i == 0 ? "\n" : ",\n")
                << "    {\"file\": \"" << json_escape(f.file)
                << "\", \"line\": " << f.line << ", \"rule\": \""
                << json_escape(f.rule) << "\", \"message\": \""
                << json_escape(f.message) << "\"}";
    }
    std::cout << (findings.empty() ? "]" : "\n  ]") << ",\n"
              << "  \"files_scanned\": " << result.files_scanned << ",\n"
              << "  \"baselined\": " << baselined << ",\n"
              << "  \"count\": " << findings.size() << "\n}\n";
  } else {
    for (const Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
  }
  std::cerr << "cdlint: " << result.files_scanned << " files, "
            << findings.size() << " finding(s)"
            << (baselined > 0
                    ? ", " + std::to_string(baselined) + " baselined"
                    : std::string())
            << "\n";
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace cdlint

int main(int argc, char** argv) {
  return cdlint::run(cdlint::parse_args(argc, argv));
}
