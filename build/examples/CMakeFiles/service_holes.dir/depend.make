# Empty dependencies file for service_holes.
# This may be replaced when dependencies are built.
