// Golden-file regression tests for the fig05_intensity_cdfs and
// fig07_superstorm data series: the committed CSVs under tests/golden/ pin
// the exact shapes those benches report, so an accidental change to the
// pipeline (cleaning rules, correlator windows, drag statistics, parallel
// scheduling) shows up as a cell-level diff rather than a silently shifted
// figure.  Comparison is epsilon-aware per numeric cell; text cells must
// match exactly.
//
// Regenerating after an *intentional* change:
//   COSMICDANCE_REGEN_GOLDEN=1 ./golden_figures_test
// then commit the rewritten files with the change that motivated them.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/export.hpp"
#include "core/pipeline.hpp"
#include "io/csv.hpp"
#include "io/parse.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"
#include "stats/ecdf.hpp"

#ifndef COSMICDANCE_GOLDEN_DIR
#error "build must define COSMICDANCE_GOLDEN_DIR"
#endif

namespace cosmicdance {
namespace {

constexpr double kAbsEpsilon = 1e-9;
constexpr double kRelEpsilon = 1e-7;

std::string golden_path(const char* name) {
  return std::string(COSMICDANCE_GOLDEN_DIR) + "/" + name;
}

bool regen_requested() {
  const char* env = std::getenv("COSMICDANCE_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// Epsilon-aware CSV comparison: numeric cells compare within
/// max(kAbsEpsilon, kRelEpsilon * |expected|); anything non-numeric must be
/// byte-identical.  Reports the first mismatching cell.
::testing::AssertionResult CsvMatchesGolden(
    const std::vector<io::CsvRow>& actual, const std::string& path) {
  const std::vector<io::CsvRow> expected = io::read_csv_file(path);
  if (actual.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << path << ": row count " << actual.size() << " vs golden "
           << expected.size();
  }
  for (std::size_t r = 0; r < expected.size(); ++r) {
    if (actual[r].size() != expected[r].size()) {
      return ::testing::AssertionFailure()
             << path << " row " << r << ": column count " << actual[r].size()
             << " vs golden " << expected[r].size();
    }
    for (std::size_t c = 0; c < expected[r].size(); ++c) {
      const std::string& a = actual[r][c];
      const std::string& e = expected[r][c];
      const std::optional<double> av = io::parse_double(a);
      const std::optional<double> ev = io::parse_double(e);
      if (av.has_value() && ev.has_value()) {
        const double tolerance =
            std::max(kAbsEpsilon, kRelEpsilon * std::fabs(*ev));
        if (std::fabs(*av - *ev) > tolerance) {
          return ::testing::AssertionFailure()
                 << path << " row " << r << " col " << c << ": " << a
                 << " vs golden " << e << " (|diff| "
                 << std::fabs(*av - *ev) << " > " << tolerance << ")";
        }
      } else if (a != e) {
        return ::testing::AssertionFailure()
               << path << " row " << r << " col " << c << ": '" << a
               << "' vs golden '" << e << "'";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

void check_or_regen(const std::vector<io::CsvRow>& actual, const char* name) {
  const std::string path = golden_path(name);
  if (regen_requested()) {
    io::write_csv_file(path, actual);
    GTEST_SKIP() << "regenerated " << path;
  }
  EXPECT_TRUE(CsvMatchesGolden(actual, path));
}

// ---- fig05: intensity-dependent altitude / drag change CDFs ---------------

TEST(GoldenFigures, Fig05IntensityCdfs) {
  const auto dst = spaceweather::DstGenerator(
                       spaceweather::DstGenerator::paper_window_2020_2024())
                       .generate();
  auto config = simulation::scenario::paper_window(&dst, 2, 30.0);
  auto catalog = simulation::ConstellationSimulator(config).run().catalog;
  const core::CosmicDance pipeline(dst, std::move(catalog));

  const double p80 = pipeline.dst_threshold_at_percentile(80.0);
  const double p95 = pipeline.dst_threshold_at_percentile(95.0);

  const auto quiet = pipeline.altitude_changes_for_quiet(p80, 30);
  ASSERT_FALSE(quiet.empty());
  check_or_regen(core::ecdf_csv(stats::Ecdf(quiet), "alt_change_km", 40),
                 "fig05a_quiet_altitude_cdf.csv");

  const auto storm = pipeline.altitude_changes_for_storms(p95);
  ASSERT_FALSE(storm.empty());
  check_or_regen(core::ecdf_csv(stats::Ecdf(storm), "alt_change_km", 40),
                 "fig05b_storm_altitude_cdf.csv");

  const auto drags = pipeline.drag_changes_for_storms(p95);
  ASSERT_FALSE(drags.empty());
  check_or_regen(core::ecdf_csv(stats::Ecdf(drags), "bstar_ratio", 40),
                 "fig05c_drag_change_cdf.csv");
}

// ---- fig07: May 2024 super-storm daily panel ------------------------------

TEST(GoldenFigures, Fig07SuperstormPanel) {
  const auto dst = spaceweather::DstGenerator(
                       spaceweather::DstGenerator::with_may_2024_superstorm())
                       .generate();
  auto config = simulation::scenario::may_2024(&dst, /*fleet_size=*/300);
  auto run = simulation::ConstellationSimulator(config).run();
  const core::CosmicDance pipeline(dst, std::move(run.catalog));

  const double start = timeutil::to_julian(timeutil::make_datetime(2024, 5, 1));
  const double end = timeutil::to_julian(timeutil::make_datetime(2024, 6, 1));
  const auto rows = core::superstorm_panel(pipeline.tracks(), dst, start, end,
                                           pipeline.config().num_threads);
  ASSERT_FALSE(rows.empty());
  check_or_regen(core::panel_csv(rows), "fig07_superstorm_panel.csv");
}

}  // namespace
}  // namespace cosmicdance
