#include "atmosphere/storm_density.hpp"

#include <algorithm>

#include "atmosphere/exponential.hpp"
#include "timeutil/hour_axis.hpp"

namespace cosmicdance::atmosphere {

double storm_enhancement_factor(double altitude_km, double dst_nt,
                                const StormDensityConfig& config) noexcept {
  const double excursion = -dst_nt - config.quiet_offset_nt;
  if (excursion <= 0.0) return 1.0;
  const double altitude_scale =
      std::clamp(altitude_km / config.reference_altitude_km, config.min_scale,
                 config.max_scale);
  return 1.0 + config.sensitivity_at_reference * altitude_scale * excursion / 100.0;
}

StormDensityModel::StormDensityModel(const spaceweather::DstIndex* dst,
                                     StormDensityConfig config)
    : dst_(dst), config_(config) {}

double StormDensityModel::factor(double altitude_km, double jd) const noexcept {
  if (dst_ == nullptr) return 1.0;
  const timeutil::HourIndex hour = timeutil::hour_index_from_julian(jd);
  if (!dst_->covers(hour)) return 1.0;
  return storm_enhancement_factor(altitude_km, dst_->at(hour), config_);
}

double StormDensityModel::density_kg_m3(double altitude_km, double jd) const noexcept {
  return atmosphere::density_kg_m3(altitude_km) * factor(altitude_km, jd);
}

}  // namespace cosmicdance::atmosphere
