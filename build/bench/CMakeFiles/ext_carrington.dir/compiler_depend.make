# Empty compiler generated dependencies file for ext_carrington.
# This may be replaced when dependencies are built.
