# Empty dependencies file for cd_spaceweather.
# This may be replaced when dependencies are built.
