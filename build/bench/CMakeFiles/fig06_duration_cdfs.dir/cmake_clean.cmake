file(REMOVE_RECURSE
  "CMakeFiles/fig06_duration_cdfs.dir/fig06_duration_cdfs.cpp.o"
  "CMakeFiles/fig06_duration_cdfs.dir/fig06_duration_cdfs.cpp.o.d"
  "fig06_duration_cdfs"
  "fig06_duration_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_duration_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
