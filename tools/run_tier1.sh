#!/usr/bin/env bash
# Tier-1 CI gate: build + full ctest —
#   1. plain RelWithDebInfo over the whole suite,
#   2. ThreadSanitizer (COSMICDANCE_SANITIZE=thread) over the parallel exec
#      suite, which must be race-free for the deterministic-ordering
#      contract to mean anything; the batch SGP4 suite rides along so a
#      shared propagator driven from many threads (the pure-kernel contract,
#      DESIGN.md §16) is under the same lens,
#   3. ASan+UBSan (COSMICDANCE_SANITIZE=address) over the ingestion suites,
#      driving the malformed-record corpus through both parse policies so
#      buffer overreads in the fixed-column parsers surface here, and the
#      delta-snapshot differential suite so the incremental path's chain
#      walking and replay run under the same lens.
#   4. observability smoke: the CLI with --metrics/--trace on the bundled
#      dataset (work counters must be bit-identical at --threads 1 vs 8,
#      per DESIGN.md §11) plus the micro_pipeline, micro_ingest and
#      micro_sgp4 telemetry passes, leaving build/BENCH_pipeline.json,
#      build/BENCH_ingest.json and build/BENCH_sgp4.json behind as CI
#      artifacts.  The sgp4 record must clear a positions/s floor with zero
#      non-kOk statuses and a bit-identical threads=1 vs threads=N grid
#      (the batch determinism contract, DESIGN.md §16).  The ingest record
#      must show a warm-cache hit (ingest.cache_hit == 1) and an
#      append-aware delta hit that parsed only a small tail
#      (ingest.delta_hit == 1, delta_tail_fraction < 5%), clear the
#      absolute ingestion floors (cold parse >= 2M records/s — 2x the
#      PR 9 baseline — and a warm snapshot load >= 3x the cold rate,
#      both min-of-reps so one noisy sample cannot flake the gate), and
#      tools/bench_compare.py diffs throughput against the previous
#      run's record when one exists — warn-only inside a 40% band, a
#      hard failure (exit 1) past it for the ingest and sgp4 records,
#      where a collapse that deep cannot be scheduler noise.  The pass then boots
#      cosmicdanced against the same dataset (DESIGN.md §15), sends one of
#      every query op plus a snapshot-swap reload, shuts it down cleanly,
#      and asserts the serve.requests / serve.errors / serve.reloads
#      counters in the daemon's --metrics-out dump; micro_serve hammers a
#      loopback daemon with concurrent clients across a mid-load reload
#      and must leave build/BENCH_serve.json behind showing >= 1000 q/s
#      with zero serve errors.
#   5. static analysis: cdlint v2 (the project-invariant lint, DESIGN.md
#      §12/§17) runs its parallel two-phase scan (--threads 4) and must
#      report zero non-baselined findings against the committed baseline,
#      which itself must stay empty of entries; the seeded corpus must keep
#      producing the golden findings so no rule -- per-file or cross-file
#      (R9-R14) -- can silently die, and micro_cdlint leaves
#      build/BENCH_cdlint.json behind tracking the gate's own files/s and
#      rule-evaluations/s with a warn-only trend diff against the previous
#      run.  clang-tidy and shellcheck run when installed and are skipped
#      (not failed) when not.
#
# Usage: tools/run_tier1.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
JOBS="${1:-$(nproc)}"

echo "== pass 1: plain build + full test suite =="
cmake -B build -S . -DCOSMICDANCE_SANITIZE=
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== pass 2: ThreadSanitizer build + parallel suite =="
cmake -B build-tsan -S . -DCOSMICDANCE_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" \
      --target parallel_differential_test serve_test sgp4_batch_test
# TSan halts with a non-zero exit on any race; no suppressions are used.
# The serve suites put the daemon's atomic snapshot swap (DESIGN.md §15)
# under the same lens: concurrent readers + reloads must be race-free.
# Sgp4ThreadSafety drives one shared deep-space propagator from many
# threads — the regression gate for the old mutable resonance-memo race.
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R 'ParallelDifferential|ParallelForStress|ThreadPoolTest|Serve|Sgp4ThreadSafety|BatchPropagator'

echo "== pass 3: ASan+UBSan build + malformed-record ingestion suite =="
cmake -B build-asan -S . -DCOSMICDANCE_SANITIZE=address
cmake --build build-asan -j "$JOBS" \
      --target ingestion_fuzz_test diag_test io_test tle_test tle2_test \
               timeutil_test spaceweather_test snapshot_test \
               delta_snapshot_test
# The fuzz suite feeds truncated / corrupted fixed-column records through
# every ingestion path; ASan+UBSan turns any column overread into a failure.
# snapshot_test drives the corrupted-snapshot failure matrix (truncation,
# bit flips, stale hashes) through the binary decoder under the same lens;
# delta_snapshot_test does the same for the append-aware incremental path
# (broken layer chains, forged appends, the append/compact fuzz loop).
ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
      -R 'IngestionFuzz|Diag|ParseLog|DataQualityReport|Csv|Tle|DateTime|Wdc|Snapshot|DeltaSnapshot'

echo "== pass 4: observability smoke (CLI metrics/trace + bench telemetry) =="
CLI=build/tools/cosmicdance
SMOKE=build/obs-smoke
rm -rf "$SMOKE"
mkdir -p "$SMOKE"
# data/sample ships only the Dst series; generate the matching catalog.
"$CLI" simulate --dst data/sample/dst.wdc --scenario paper \
       --per-batch 1 --cadence 120 --out "$SMOKE/catalog.tle"
"$CLI" analyze --dst data/sample/dst.wdc --tles "$SMOKE/catalog.tle" \
       --out-dir "$SMOKE/out1" --threads 1 \
       --metrics "$SMOKE/metrics_t1.json" --trace "$SMOKE/trace_t1.json"
"$CLI" analyze --dst data/sample/dst.wdc --tles "$SMOKE/catalog.tle" \
       --out-dir "$SMOKE/out8" --threads 8 \
       --metrics "$SMOKE/metrics_t8.json"
# Bench telemetry artifacts (benchmark suites themselves skipped via the
# nothing-matches filter; the instrumented passes still run).  The ingest
# record from the previous tier-1 run is kept as the comparison baseline.
build/bench/micro_pipeline --benchmark_filter='^$' \
       --bench-out build/BENCH_pipeline.json --threads 0
if [ -f build/BENCH_ingest.json ]; then
  cp build/BENCH_ingest.json build/BENCH_ingest.prev.json
fi
build/bench/micro_ingest --benchmark_filter='^$' \
       --bench-out build/BENCH_ingest.json --threads 0
# Trend diff against the previous run's record (first run on a fresh
# build dir has no baseline, so there is nothing to compare).  Drops
# inside the 40% band print WARN lines; anything past it is a real cliff
# and fails the gate.
if [ -f build/BENCH_ingest.prev.json ]; then
  python3 tools/bench_compare.py build/BENCH_ingest.prev.json \
          build/BENCH_ingest.json --fail-under=40
fi
# Batch SGP4 telemetry: the synthetic mixed fleet across the 60-day grid,
# once at full parallelism and once serially, with the grids compared
# bit-for-bit inside the bench (throughput.threads_identical).
if [ -f build/BENCH_sgp4.json ]; then
  cp build/BENCH_sgp4.json build/BENCH_sgp4.prev.json
fi
build/bench/micro_sgp4 --benchmark_filter='^$' \
       --bench-out build/BENCH_sgp4.json --threads 0
if [ -f build/BENCH_sgp4.prev.json ]; then
  python3 tools/bench_compare.py build/BENCH_sgp4.prev.json \
          build/BENCH_sgp4.json --fail-under=40
fi
# Serving daemon smoke (DESIGN.md §15): boot on an ephemeral port against
# the smoke dataset, send one of every query op plus a reload (which swaps
# the snapshot while the daemon serves), then a clean shutdown.  The
# daemon's exit status and its --metrics-out counter dump are both gated.
DAEMON=build/tools/cosmicdanced
rm -f "$SMOKE/port.txt"
"$DAEMON" --listen 127.0.0.1:0 --dst data/sample/dst.wdc \
          --tles "$SMOKE/catalog.tle" --cache-dir "$SMOKE/serve-cache" \
          --port-file "$SMOKE/port.txt" \
          --metrics-out "$SMOKE/daemon_metrics.json" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [ -s "$SMOKE/port.txt" ] && break
  sleep 0.1
done
if [ ! -s "$SMOKE/port.txt" ]; then
  echo "cosmicdanced never wrote its port file" >&2
  kill "$DAEMON_PID" 2>/dev/null || true
  exit 1
fi
for op in ping stats sat_series storm_summary envelope_cdf propagate \
          decay_summary quality_report reload metrics; do
  "$DAEMON" query --port-file "$SMOKE/port.txt" \
            --json "{\"op\":\"$op\"}" > "$SMOKE/serve_$op.json"
done
"$DAEMON" query --port-file "$SMOKE/port.txt" \
          --json '{"op":"shutdown"}' > /dev/null
wait "$DAEMON_PID"
# Serving load generator: concurrent clients with the real query mix and a
# snapshot swap mid-load; exits non-zero on any error or torn epoch and
# leaves build/BENCH_serve.json behind as the CI artifact.
build/bench/micro_serve --clients 8 --requests 500 --threads 0 \
       --bench-out build/BENCH_serve.json
python3 - "$SMOKE" <<'EOF'
import json, sys
smoke = sys.argv[1]
m1 = json.load(open(f"{smoke}/metrics_t1.json"))
m8 = json.load(open(f"{smoke}/metrics_t8.json"))
for report in (m1, m8):
    for key in ("counters", "scheduling", "gauges", "phases"):
        assert key in report, f"metrics JSON missing {key!r}"
assert m1["counters"], "no work counters recorded"
assert m1["counters"] == m8["counters"], (
    "work counters differ between --threads 1 and 8: "
    f"{m1['counters']} vs {m8['counters']}")
trace = json.load(open(f"{smoke}/trace_t1.json"))
assert trace["traceEvents"], "empty trace"
assert any(e.get("ph") == "X" for e in trace["traceEvents"]), \
    "trace has no complete events"
bench = json.load(open("build/BENCH_pipeline.json"))
for key in ("bench", "threads", "dataset", "throughput", "metrics"):
    assert key in bench, f"bench record missing {key!r}"
assert bench["metrics"]["phases"], "bench record has no phase timings"
ingest = json.load(open("build/BENCH_ingest.json"))
for key in ("bench", "threads", "dataset", "throughput", "metrics"):
    assert key in ingest, f"ingest bench record missing {key!r}"
# The telemetry pass runs cold -> warm -> append -> delta-warm against a
# fresh cache dir; the warm run must actually hit the snapshot (DESIGN.md
# §13) and the delta-warm run must extend it by parsing only the appended
# tail (DESIGN.md §14) or the incremental path is silently dead.
counters = ingest["metrics"]["counters"]
assert counters.get("ingest.cache_hit") == 1, (
    "warm ingest pass did not hit the snapshot cache: "
    f"{ {k: v for k, v in counters.items() if k.startswith(('ingest.', 'snapshot.'))} }")
assert counters.get("snapshot.written") == 1, "cold pass wrote no snapshot"
assert counters.get("ingest.delta_hit") == 1, (
    "delta-warm ingest pass did not take the append fast path: "
    f"{ {k: v for k, v in counters.items() if k.startswith(('ingest.', 'snapshot.'))} }")
assert counters.get("snapshot.delta_written") == 1, (
    "delta-warm pass persisted no delta layer")
tail_fraction = ingest["throughput"]["delta_tail_fraction"]
assert 0.0 < tail_fraction < 0.05, (
    f"delta-warm pass reparsed {tail_fraction:.1%} of the inputs; "
    "the incremental path must touch well under 5%")
# Absolute ingestion throughput floors (both rates are min-of-reps inside
# micro_ingest, so a single noisy sample cannot trip them).  The cold
# floor is 2x the PR 9 record on this machine (~1.02M records/s); the
# warm floor is the v3 parallel-snapshot contract: loading pre-parsed
# sections must beat reparsing the text by at least 3x.
cold_rate = ingest["throughput"]["tle_records_per_s"]
warm_rate = ingest["throughput"]["snapshot_records_per_s"]
assert cold_rate >= 2.0e6, (
    f"cold TLE parse at {cold_rate:,.0f} records/s is below the 2M floor "
    "(2x the PR 9 baseline)")
assert warm_rate >= 3.0 * cold_rate, (
    f"warm snapshot load at {warm_rate:,.0f} records/s is under 3x the "
    f"cold parse rate ({cold_rate:,.0f}); the v3 section decode has "
    "regressed")
# Batch SGP4 record (DESIGN.md §16): every fleet x grid cell must have
# propagated cleanly, the parallel and serial grids must be bit-identical,
# and the engine must clear the positions/s floor (set ~20x below the
# measured rate so only a real regression trips it).
sgp4 = json.load(open("build/BENCH_sgp4.json"))
for key in ("bench", "threads", "dataset", "throughput", "metrics"):
    assert key in sgp4, f"sgp4 bench record missing {key!r}"
sgp4_tp = sgp4["throughput"]
assert sgp4_tp.get("status_errors") == 0, (
    f"batch propagation hit non-kOk statuses: {sgp4_tp}")
assert sgp4_tp.get("threads_identical") == 1, (
    "parallel and serial batch grids differ; the determinism contract "
    f"is broken: {sgp4_tp}")
positions_per_s = sgp4_tp.get("positions_per_s", 0)
assert positions_per_s >= 100000, (
    f"batch SGP4 throughput {positions_per_s:.0f} positions/s is below "
    "the 100k floor")
# Daemon smoke: every query answered from a whole epoch, and the counter
# dump written at shutdown matches what was sent (8 query ops + shutdown,
# zero errors, exactly one snapshot swap).
ops = ("ping", "stats", "sat_series", "storm_summary", "envelope_cdf",
       "propagate", "decay_summary", "quality_report", "reload", "metrics")
for op in ops:
    response = json.load(open(f"{smoke}/serve_{op}.json"))
    assert response.get("ok") is True, f"{op} failed: {response}"
    if "epoch" in response:
        assert response["epoch"] == response["epoch_end"], (
            f"{op} response tore across epochs: {response['epoch']} vs "
            f"{response['epoch_end']}")
reload_epoch = json.load(open(f"{smoke}/serve_reload.json"))["epoch"]
assert reload_epoch == 2, f"reload did not swap the epoch: {reload_epoch}"
propagate = json.load(open(f"{smoke}/serve_propagate.json"))
assert propagate["samples"] == len(propagate["altitude_km"]), propagate
assert propagate["valid_samples"] >= 1, (
    f"propagate returned no valid altitude samples: {propagate}")
decay = json.load(open(f"{smoke}/serve_decay_summary.json"))
assert decay["satellites"] >= 1 and decay["fastest_decaying"], (
    f"decay_summary ranked no satellites: {decay}")
serve = json.load(open(f"{smoke}/daemon_metrics.json"))["counters"]
assert serve.get("serve.requests") == len(ops) + 1, (
    f"daemon counted {serve.get('serve.requests')} requests, "
    f"expected {len(ops) + 1}")
assert serve.get("serve.errors", 0) == 0, (
    f"daemon recorded serve errors: {serve}")
assert serve.get("serve.reloads") == 1, (
    f"daemon recorded {serve.get('serve.reloads')} reloads, expected 1")
# Serving bench record: the swap-under-load gate (micro_serve already
# failed hard on errors / torn epochs) plus the throughput floor.
record = json.load(open("build/BENCH_serve.json"))
for key in ("bench", "threads", "dataset", "throughput", "metrics"):
    assert key in record, f"serve bench record missing {key!r}"
qps = record["throughput"]["queries_per_s"]
assert qps >= 1000, f"serving throughput {qps:.0f} q/s is below 1000 q/s"
serve_bench = record["metrics"]["counters"]
assert serve_bench.get("serve.errors", 0) == 0, (
    f"micro_serve recorded serve errors: {serve_bench}")
assert serve_bench.get("serve.reloads") == 1, (
    "micro_serve did not swap the snapshot mid-load")
print(f"observability smoke OK: {len(m1['counters'])} work counters "
      f"bit-identical across thread counts, "
      f"{len(trace['traceEvents'])} trace events, "
      f"bench throughput keys: {sorted(bench['throughput'])}, "
      f"ingest cache_hit={counters['ingest.cache_hit']}, "
      f"delta_hit={counters['ingest.delta_hit']} "
      f"(tail fraction {tail_fraction:.2%}), "
      f"cold {cold_rate:,.0f} rec/s, warm {warm_rate:,.0f} rec/s "
      f"({warm_rate / cold_rate:.1f}x); "
      f"sgp4 batch {positions_per_s:.0f} positions/s, 0 status errors, "
      f"threads identical; "
      f"daemon smoke OK: {serve['serve.requests']} requests, "
      f"0 errors, 1 reload; micro_serve {qps:.0f} q/s")
EOF

echo "== pass 5: static analysis (cdlint; clang-tidy/shellcheck if installed) =="
# cdlint v2: the parallel two-phase scan (lex -> project index -> per-file
# + cross-file rules R9-R14) must be clean against the committed baseline,
# and the self-test corpus must still produce the golden findings --
# otherwise a lint rule has silently stopped firing.
cmake --build build -j "$JOBS" --target cdlint cdlint_test micro_cdlint
build/tools/cdlint/cdlint --root . --baseline tools/cdlint/baseline.txt \
      --threads 4
# The baseline must stay EMPTY: grandfathering is for bootstrap only, new
# findings get fixed or carry an inline `// cdlint: allow(<rule>) <reason>`.
if grep -Ev '^[[:space:]]*(#|$)' tools/cdlint/baseline.txt; then
  echo "cdlint baseline has grown entries; fix or allow() the findings" >&2
  exit 1
fi
ctest --test-dir build --output-on-failure -R 'CdlintTest'
# Lint-gate cost telemetry: in-process scan_tree() over the real tree; any
# finding fails the bench, and the record's throughput keys feed the same
# warn-only trend diff as the other micro benches.
if [ -f build/BENCH_cdlint.json ]; then
  cp build/BENCH_cdlint.json build/BENCH_cdlint.prev.json
fi
build/bench/micro_cdlint --root . --threads 4 \
      --bench-out build/BENCH_cdlint.json
if [ -f build/BENCH_cdlint.prev.json ]; then
  python3 tools/bench_compare.py build/BENCH_cdlint.prev.json \
          build/BENCH_cdlint.json
fi
python3 - <<'EOF'
import json
record = json.load(open("build/BENCH_cdlint.json"))
for key in ("bench", "threads", "dataset", "throughput", "metrics"):
    assert key in record, f"cdlint bench record missing {key!r}"
throughput = record["throughput"]
for key in ("files_per_s", "rules_per_s"):
    assert throughput.get(key, 0) > 0, (
        f"cdlint bench record has no {key}: {throughput}")
counters = record["metrics"]["counters"]
assert counters.get("cdlint.files", 0) > 0, "cdlint bench scanned no files"
assert counters.get("cdlint.findings", 0) == 0, (
    f"cdlint bench saw findings on the tree: {counters}")
print(f"cdlint gate OK: {counters['cdlint.files']} files at "
      f"{throughput['files_per_s']:.0f} files/s "
      f"({throughput['rules_per_s']:.0f} rule evals/s)")
EOF
tools/run_clang_tidy.sh build "$JOBS"
if command -v shellcheck >/dev/null 2>&1; then
  shellcheck tools/run_tier1.sh tools/run_clang_tidy.sh
else
  echo "shellcheck not installed; skipping shell lint"
fi

echo "== tier-1 gate: OK =="
