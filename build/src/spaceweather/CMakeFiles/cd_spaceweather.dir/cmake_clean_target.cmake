file(REMOVE_RECURSE
  "libcd_spaceweather.a"
)
