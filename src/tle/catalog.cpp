#include "tle/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string_view>
#include <utility>

#include "common/error.hpp"
#include "exec/parallel_for.hpp"
#include "io/file.hpp"
#include "obs/obs.hpp"

namespace cosmicdance::tle {
namespace {

constexpr const char* kStage = "tle";

// Two records of one satellite closer than this are duplicates (~1 second).
constexpr double kDuplicateEpochDays = 1.0 / 86400.0;

bool looks_like_tle_line(std::string_view line, char number) {
  return line.size() == 69 && line[0] == number && line[1] == ' ';
}

// A paired two-line record located in its source, plus structural rejects
// found while pairing.  Splitting is serial; parsing the paired records is
// the parallel part.  The lines are views into the caller's text (a file
// mapping on the fast path) — nothing is copied until a record is rejected
// and its snippet materialised.
struct RawRecord {
  std::string_view line1;
  std::string_view line2;
  std::size_t line_number = 0;  // 1-based line number of line1
};

// Result of parsing one RawRecord: either a TLE or a categorised failure.
struct ParsedRecord {
  std::optional<Tle> tle;
  ErrorCategory category = ErrorCategory::kSyntax;
  std::string message;
};

ParsedRecord parse_record(const RawRecord& record) {
  ParsedRecord parsed;
  try {
    parsed.tle = parse_tle(record.line1, record.line2);
  } catch (const ParseError& error) {
    parsed.category = error.category();
    parsed.message = error.what();
  } catch (const ValidationError& error) {
    parsed.category = ErrorCategory::kRange;
    parsed.message = error.what();
  }
  return parsed;
}

}  // namespace

bool append_boundary_clean(std::string_view text) {
  // The pairing scan's pending-line-1 state at end of input depends only
  // on the last non-empty line: every non-empty line either sets it (a
  // line 1) or clears it (a line 2, a malformed "2 "-lead line, or a name
  // line), and blank lines leave it untouched.  Walk backwards to that
  // line instead of replaying the whole scan.
  std::size_t end = text.size();
  while (end > 0) {
    const std::size_t newline = text.rfind('\n', end - 1);
    const std::size_t line_start =
        newline == std::string_view::npos ? 0 : newline + 1;
    std::string_view line = text.substr(line_start, end - line_start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) return !looks_like_tle_line(line, '1');
    if (line_start == 0) break;
    end = line_start - 1;
  }
  return true;  // empty (or all-blank) text has nothing pending
}

bool TleCatalog::add(const Tle& tle) {
  tle.validate();
  auto& history = tles_[tle.catalog_number];
  const auto insert_at = std::lower_bound(
      history.begin(), history.end(), tle.epoch_jd,
      [](const Tle& existing, double epoch) { return existing.epoch_jd < epoch; });
  if (insert_at != history.end() &&
      std::fabs(insert_at->epoch_jd - tle.epoch_jd) < kDuplicateEpochDays) {
    return false;
  }
  if (insert_at != history.begin() &&
      std::fabs((insert_at - 1)->epoch_jd - tle.epoch_jd) < kDuplicateEpochDays) {
    return false;
  }
  history.insert(insert_at, tle);
  ++record_count_;
  return true;
}

std::size_t TleCatalog::add_from_text(std::string_view text) {
  return add_from_text(text, IngestOptions{});
}

std::size_t TleCatalog::add_from_text(std::string_view text,
                                      const IngestOptions& options) {
  const obs::ScopedPhase obs_phase(options.metrics, "tle.add_from_text");
  const std::string source = options.source.empty() ? "<text>" : options.source;
  // Without a caller-supplied log, a local strict one reproduces the
  // historical throw-on-first-error behaviour (with located messages).
  diag::ParseLog fallback;
  diag::ParseLog& log = options.log != nullptr ? *options.log : fallback;

  // A pairing failure found in pass 1.  Deferred (not reported immediately)
  // so pass 3 can interleave it with parse failures in file order: strict
  // mode must throw on the *first* bad record in the file, not on the first
  // structural one.
  struct StructuralReject {
    std::size_t line_number = 0;
    ErrorCategory category = ErrorCategory::kSyntax;
    std::string message;
    std::string snippet;
  };

  // Pass 1 (serial): pair lines into two-line records, collecting structural
  // breaks as they are found (in ascending line order by construction).  The
  // scan walks the text in place — each line is a view, and a two-line
  // record is at least 140 bytes, which pre-sizes the record vector.
  std::string_view pending_line1;
  std::size_t pending_line_number = 0;
  std::size_t line_number = options.first_line - 1;
  std::vector<RawRecord> records;
  records.reserve(text.size() / 140 + 1);
  std::vector<StructuralReject> structural;
  for (std::size_t pos = 0; pos < text.size();) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    if (looks_like_tle_line(line, '1')) {
      pending_line1 = line;
      pending_line_number = line_number;
      continue;
    }
    if (looks_like_tle_line(line, '2')) {
      if (pending_line1.empty()) {
        structural.push_back({line_number, ErrorCategory::kStructure,
                              "TLE line 2 without preceding line 1",
                              std::string(line)});
        continue;
      }
      records.push_back(RawRecord{pending_line1, line, pending_line_number});
      pending_line1 = {};
      continue;
    }
    // With a line 1 pending, the next line must be its line 2: a "2 "-lead
    // line of the wrong length is a truncated/corrupted record, not a
    // satellite name (name lines only precede line 1 in 3-line format).
    if (!pending_line1.empty() && line.size() >= 2 && line[0] == '2' &&
        line[1] == ' ') {
      structural.push_back({line_number, ErrorCategory::kSyntax,
                            "malformed TLE line 2 (wrong length)",
                            std::string(line)});
      pending_line1 = {};
      continue;
    }
    // Anything else is a satellite-name line (3-line format); ignore.
    pending_line1 = {};
  }
  if (!pending_line1.empty()) {
    structural.push_back({pending_line_number, ErrorCategory::kStructure,
                          "dangling TLE line 1 at end of input",
                          std::string(pending_line1)});
  }

  if (options.metrics != nullptr) {
    options.metrics->counter("tle.records_paired").add(records.size());
    options.metrics->counter("tle.structural_rejects").add(structural.size());
  }

  // Pass 2 (parallel): parse the paired records.  Chunk boundaries are a
  // pure function of (count, thread count), so results are deterministic.
  const std::vector<ParsedRecord> parsed = exec::ordered_map<ParsedRecord>(
      records.size(), options.num_threads,
      [&records](std::size_t i) { return parse_record(records[i]); },
      options.metrics);

  // Pass 3 (serial, file order): merge-walk the parsed records and the
  // structural rejects by line number, committing and reporting in order.
  // This keeps catalog contents, counters and quarantine order bit-identical
  // at any thread count, and makes strict mode throw on the first malformed
  // record in file order.
  std::size_t added = 0;
  std::size_t parsed_ok = 0;
  std::size_t parse_rejects = 0;
  std::size_t next_structural = 0;
  // Accepts are batched: the per-record map lookup inside ParseLog::accept
  // is measurable on the hot path, so a run of accepted records becomes one
  // accept(stage, n) call.  The batch is flushed before every reject so the
  // log's observable state (including at a strict-mode throw) is identical
  // to the historical one-call-per-record sequence.
  std::size_t pending_accepts = 0;
  const auto flush_accepts = [&] {
    if (pending_accepts > 0) {
      log.accept(kStage, pending_accepts);
      pending_accepts = 0;
    }
  };
  const auto report_structural_before = [&](std::size_t limit) {
    while (next_structural < structural.size() &&
           structural[next_structural].line_number < limit) {
      const StructuralReject& failure = structural[next_structural++];
      flush_accepts();
      log.reject(kStage, failure.category, failure.message, failure.snippet,
                 diag::RecordRef{source, failure.line_number});
    }
  };
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    report_structural_before(records[i].line_number);
    if (parsed[i].tle.has_value()) {
      ++pending_accepts;
      ++parsed_ok;
      if (add(*parsed[i].tle)) {
        ++added;
        if (options.committed != nullptr) {
          options.committed->push_back(*parsed[i].tle);
        }
      }
    } else {
      ++parse_rejects;
      flush_accepts();
      log.reject(kStage, parsed[i].category, parsed[i].message,
                 std::string(records[i].line1),
                 diag::RecordRef{source, records[i].line_number});
    }
  }
  report_structural_before(line_number + 1);
  flush_accepts();
  if (options.metrics != nullptr) {
    // Accumulated into locals above so the serial commit loop pays no
    // atomic traffic; one add per counter here.
    options.metrics->counter("tle.records_parsed").add(parsed_ok);
    options.metrics->counter("tle.records_added").add(added);
    options.metrics->counter("tle.duplicates_dropped").add(parsed_ok - added);
    options.metrics->counter("tle.parse_rejects").add(parse_rejects);
  }
  return added;
}

std::size_t TleCatalog::add_from_file(const std::string& path) {
  const io::MappedFile mapped(path);
  return add_from_text(mapped.view());
}

std::size_t TleCatalog::add_from_file(const std::string& path,
                                      const IngestOptions& options) {
  IngestOptions located = options;
  if (located.source.empty()) located.source = path;
  const io::MappedFile mapped(path);
  if (located.metrics != nullptr && mapped.is_mapped()) {
    located.metrics->counter("ingest.bytes_mapped").add(mapped.size());
  }
  return add_from_text(mapped.view(), located);
}

std::vector<int> TleCatalog::satellites() const {
  std::vector<int> ids;
  ids.reserve(tles_.size());
  for (const auto& [id, history] : tles_) ids.push_back(id);
  return ids;
}

std::span<const Tle> TleCatalog::history(int catalog_number) const {
  const auto it = tles_.find(catalog_number);
  if (it == tles_.end()) return {};
  return it->second;
}

double TleCatalog::first_epoch_jd() const {
  if (empty()) throw ValidationError("first_epoch_jd of empty catalog");
  double first = 1e18;
  for (const auto& [id, history] : tles_) {
    first = std::min(first, history.front().epoch_jd);
  }
  return first;
}

double TleCatalog::last_epoch_jd() const {
  if (empty()) throw ValidationError("last_epoch_jd of empty catalog");
  double last = -1e18;
  for (const auto& [id, history] : tles_) {
    last = std::max(last, history.back().epoch_jd);
  }
  return last;
}

std::string TleCatalog::to_text() const {
  std::string out;
  for (const auto& [id, history] : tles_) {
    for (const Tle& tle : history) {
      const TleLines lines = format_tle(tle);
      out += lines.line1;
      out.push_back('\n');
      out += lines.line2;
      out.push_back('\n');
    }
  }
  return out;
}

std::vector<double> TleCatalog::refresh_intervals_hours() const {
  std::vector<double> intervals;
  for (const auto& [id, history] : tles_) {
    for (std::size_t i = 1; i < history.size(); ++i) {
      intervals.push_back((history[i].epoch_jd - history[i - 1].epoch_jd) * 24.0);
    }
  }
  return intervals;
}

}  // namespace cosmicdance::tle
