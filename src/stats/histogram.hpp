// Fixed-bin histogram used by the drag-change distribution figures (5c, 6c).
#pragma once

#include <span>
#include <vector>

namespace cosmicdance::stats {

/// Uniform-width histogram over [lo, hi) with an explicit bin count.
/// Out-of-range samples are counted in underflow/overflow buckets so no
/// observation is silently dropped.
class Histogram {
 public:
  /// Throws ValidationError unless lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Inclusive lower edge of a bin.
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  /// Exclusive upper edge of a bin.
  [[nodiscard]] double bin_upper(std::size_t bin) const;
  /// Center of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;

  /// Fraction of all added samples (including under/overflow) in a bin.
  [[nodiscard]] double fraction(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace cosmicdance::stats
