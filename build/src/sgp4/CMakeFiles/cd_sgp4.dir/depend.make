# Empty dependencies file for cd_sgp4.
# This may be replaced when dependencies are built.
