# Empty dependencies file for ablate_thresholds.
# This may be replaced when dependencies are built.
