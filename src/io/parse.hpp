// Checked numeric parsing helpers.
//
// These are the project's only sanctioned wrappers around the C/C++ raw
// conversion functions (strtod/strtol and friends).  Everywhere else the
// raw calls are banned by `cdlint` rule R3 (raw-parse): an unchecked
// strtod silently reads garbage as a truncated value, which is exactly the
// class of bug the PR-2 data-quality work eliminated from the ingestion
// paths.  Callers outside `src/io/` and `src/tle/` parse numbers through
// this header and get "checked or nothing" semantics for free.
#pragma once

#include <optional>
#include <string>

namespace cosmicdance::io {

/// Parse `text` as a double.  The entire string must be consumed (leading
/// whitespace permitted, as in strtod); empty input, trailing garbage or
/// out-of-range values yield nullopt.
[[nodiscard]] std::optional<double> parse_double(const std::string& text);

/// Parse `text` as a base-10 long.  The entire string must be consumed
/// (leading whitespace permitted); empty input, trailing garbage or
/// out-of-range values yield nullopt.
[[nodiscard]] std::optional<long> parse_long(const std::string& text);

/// Parse a leading base-10 long and ignore whatever follows it — the
/// fixed-width-cell convention used by archive formats like WDC, where a
/// numeric cell may be padded.  Yields nullopt when no digits are consumed
/// or the value is out of range.
[[nodiscard]] std::optional<long> parse_leading_long(const std::string& text);

}  // namespace cosmicdance::io
