// Small lexical helpers shared by the per-file rules (rules.cpp) and the
// project-index extractor (index.cpp).  All operate on the blanked code
// view (lexer.hpp), so literal and comment text can never match.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

namespace cdlint::textscan {

inline bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

inline bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

inline bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

inline std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Find the offset of the matching closing delimiter, honouring nesting of
/// the same pair only.  Returns npos when unbalanced.
inline std::size_t match_forward(const std::string& text,
                                 std::size_t open_offset, char open,
                                 char close) {
  std::size_t depth = 0;
  for (std::size_t i = open_offset; i < text.size(); ++i) {
    if (text[i] == open) {
      ++depth;
    } else if (text[i] == close) {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

inline std::string read_ident_at(const std::string& text, std::size_t offset) {
  std::size_t end = offset;
  while (end < text.size() && is_ident_char(text[end])) ++end;
  return text.substr(offset, end - offset);
}

/// Reads the identifier that ends just before `offset` (skipping trailing
/// whitespace backwards); empty when none.
inline std::string read_ident_before(const std::string& text,
                                     std::size_t offset) {
  std::size_t end = offset;
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(text[begin - 1])) --begin;
  return text.substr(begin, end - begin);
}

inline std::size_t skip_ws(const std::string& text, std::size_t offset) {
  while (offset < text.size() &&
         std::isspace(static_cast<unsigned char>(text[offset])) != 0) {
    ++offset;
  }
  return offset;
}

/// Split on commas at bracket depth zero ((), [], <>, {} all nest).
inline std::vector<std::string> split_top_level(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  for (const char c : text) {
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace cdlint::textscan
