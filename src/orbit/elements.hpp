// Keplerian elements and the mean-motion <-> altitude relations the paper
// relies on ("we derive altitude from the mean motion orbital element").
#pragma once

#include "orbit/constants.hpp"

namespace cosmicdance::orbit {

/// Classical orbital elements.  Angles are radians; semi-major axis in km.
struct KeplerianElements {
  double semi_major_axis_km = 6928.0;
  double eccentricity = 0.0;      ///< [0, 1)
  double inclination_rad = 0.0;   ///< [0, pi]
  double raan_rad = 0.0;          ///< [0, 2*pi)
  double arg_perigee_rad = 0.0;   ///< [0, 2*pi)
  double mean_anomaly_rad = 0.0;  ///< [0, 2*pi)

  /// Throws ValidationError for non-physical values.
  void validate() const;
};

/// Two-body mean motion (rev/day) of a semi-major axis.  Throws
/// ValidationError for non-positive axis.
[[nodiscard]] double mean_motion_revday_from_sma(double sma_km,
                                                 const GravityModel& g = wgs72());

/// Inverse: semi-major axis (km) from mean motion in rev/day.  Throws
/// ValidationError for non-positive mean motion.
[[nodiscard]] double sma_from_mean_motion_revday(double revs_per_day,
                                                 const GravityModel& g = wgs72());

/// The paper's altitude proxy: geocentric semi-major axis minus Earth's
/// equatorial radius, derived purely from mean motion.
[[nodiscard]] double altitude_km_from_mean_motion(double revs_per_day,
                                                  const GravityModel& g = wgs72());

/// Inverse of altitude_km_from_mean_motion.
[[nodiscard]] double mean_motion_from_altitude_km(double altitude_km,
                                                  const GravityModel& g = wgs72());

/// Orbital period in minutes from mean motion in rev/day.
[[nodiscard]] double period_minutes(double revs_per_day);

/// Circular orbital speed (km/s) at a geocentric radius.
[[nodiscard]] double circular_speed_kms(double radius_km,
                                        const GravityModel& g = wgs72());

}  // namespace cosmicdance::orbit
