file(REMOVE_RECURSE
  "CMakeFiles/fig07_superstorm.dir/fig07_superstorm.cpp.o"
  "CMakeFiles/fig07_superstorm.dir/fig07_superstorm.cpp.o.d"
  "fig07_superstorm"
  "fig07_superstorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_superstorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
