file(REMOVE_RECURSE
  "CMakeFiles/spaceweather_test.dir/spaceweather_test.cpp.o"
  "CMakeFiles/spaceweather_test.dir/spaceweather_test.cpp.o.d"
  "spaceweather_test"
  "spaceweather_test.pdb"
  "spaceweather_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spaceweather_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
