// Cross-module integration tests: generator -> simulator -> TLE text ->
// pipeline, exercising the same path the figure benches use end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "core/pipeline.hpp"
#include "sgp4/sgp4.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"
#include "spaceweather/wdc.hpp"
#include "stats/descriptive.hpp"

namespace cosmicdance {
namespace {

using core::CosmicDance;
using core::EnvelopeSelection;
using simulation::ConstellationSimulator;
using timeutil::make_datetime;

/// Shared fixture: one mid-sized paper-window run reused by all tests here
/// (building it is the expensive part).
class PaperWindowRun : public ::testing::Test {
 protected:
  struct State {
    spaceweather::DstIndex dst;
    CosmicDance pipeline;
  };

  static State& state() {
    static State* s = [] {
      spaceweather::DstIndex dst =
          spaceweather::DstGenerator(
              spaceweather::DstGenerator::paper_window_2020_2024())
              .generate();
      auto config = simulation::scenario::paper_window(&dst, 4, 18.0);
      auto result = ConstellationSimulator(config).run();
      auto* out = new State{dst, CosmicDance(dst, std::move(result.catalog))};
      return out;
    }();
    return *s;
  }
};

TEST_F(PaperWindowRun, TracksSurviveCleaning) {
  EXPECT_GT(state().pipeline.tracks().size(), 150u);
}

TEST_F(PaperWindowRun, RefreshIntervalsMatchPaper) {
  const auto intervals = state().pipeline.catalog().refresh_intervals_hours();
  const auto s = stats::summarize(intervals);
  EXPECT_GE(s.min, 0.9);   // simulator step floor
  EXPECT_LE(s.max, 156.0);
  EXPECT_NEAR(s.mean, 12.0, 3.0);
}

TEST_F(PaperWindowRun, CleaningRemovesGrossErrors) {
  const auto raw = core::all_altitudes(state().pipeline.raw_tracks());
  const auto cleaned = core::all_altitudes(state().pipeline.tracks());
  EXPECT_GT(stats::max(raw), 1000.0);    // Fig 10a long tail present
  EXPECT_LE(stats::max(cleaned), 650.0); // Fig 10b tail removed
  EXPECT_LT(cleaned.size(), raw.size());
  // The bulk of cleaned TLEs sit at the operational shell.
  EXPECT_NEAR(stats::median(cleaned), 550.0, 5.0);
}

TEST_F(PaperWindowRun, StormTailExceedsQuietTail) {
  auto& pipeline = state().pipeline;
  const double p80 = pipeline.dst_threshold_at_percentile(80.0);
  const double p95 = pipeline.dst_threshold_at_percentile(95.0);
  const auto quiet = pipeline.altitude_changes_for_quiet(p80, 25);
  const auto storm = pipeline.altitude_changes_for_storms(p95);
  ASSERT_GT(quiet.size(), 50u);
  ASSERT_GT(storm.size(), 500u);
  // Fig 5: storm-epoch deviations have a much heavier tail than quiet.
  EXPECT_GT(stats::percentile(storm, 99.0), 2.0 * stats::percentile(quiet, 99.0));
  EXPECT_GT(stats::max(storm), 20.0);  // tens of km after storms
  EXPECT_LT(stats::median(quiet), 2.0);
}

TEST_F(PaperWindowRun, DragRatioTailAfterStorms) {
  auto& pipeline = state().pipeline;
  const double p95 = pipeline.dst_threshold_at_percentile(95.0);
  const auto ratios = pipeline.drag_changes_for_storms(p95);
  ASSERT_GT(ratios.size(), 100u);
  // Median drag increases after deep storms; the tail is large (failures).
  EXPECT_GT(stats::median(ratios), 1.2);
  EXPECT_GT(stats::percentile(ratios, 95.0), 3.0);
}

TEST_F(PaperWindowRun, LongerStormsLargerShifts) {
  auto& pipeline = state().pipeline;
  const double p99 = pipeline.dst_threshold_at_percentile(99.0);
  const auto [short_epochs, long_epochs] =
      pipeline.correlator().storm_epochs_by_duration(p99, 9.0);
  ASSERT_GT(short_epochs.size(), 3u);
  ASSERT_GT(long_epochs.size(), 3u);
  const auto short_changes = pipeline.correlator().altitude_change_samples(
      pipeline.tracks(), short_epochs);
  const auto long_changes = pipeline.correlator().altitude_change_samples(
      pipeline.tracks(), long_epochs);
  EXPECT_GE(stats::percentile(long_changes, 99.5),
            stats::percentile(short_changes, 99.5) * 0.9);
}

TEST_F(PaperWindowRun, TleTextRoundTripPreservesAnalysis) {
  // Serialise the entire catalog to real TLE text, re-parse, and verify the
  // pipeline sees identical storm statistics (byte-level fidelity check on
  // a million-record corpus is done cheaply via counts and one percentile).
  auto& pipeline = state().pipeline;
  tle::TleCatalog reloaded;
  reloaded.add_from_text(pipeline.catalog().to_text());
  EXPECT_EQ(reloaded.record_count(), pipeline.catalog().record_count());
  EXPECT_EQ(reloaded.satellite_count(), pipeline.catalog().satellite_count());
}

TEST(Figure3Integration, CherryPickedStorylines) {
  spaceweather::DstIndex dst =
      spaceweather::DstGenerator(
          spaceweather::DstGenerator::paper_window_2020_2024())
          .generate();
  auto config = simulation::scenario::figure3(&dst);
  auto result = ConstellationSimulator(config).run();
  CosmicDance pipeline(dst, std::move(result.catalog));

  const std::vector<int> wanted{44943, 45400, 45766};
  const auto timelines = core::track_timelines(pipeline.tracks(), wanted);
  ASSERT_EQ(timelines.size(), 3u);

  // #45766 decays after the 2023-03-24 storm: altitude at the end of the
  // window is far below the shell.
  const auto& t45766 = timelines[2];
  EXPECT_LT(t45766.altitude_km.back(), 480.0);
  // #44943 holds the shell until March 2024, then drops sharply (~150 km
  // over the following weeks).
  const auto& t44943 = timelines[0];
  const double march3 = timeutil::to_julian(make_datetime(2024, 3, 3));
  double before = 0.0;
  double last = 0.0;
  for (std::size_t i = 0; i < t44943.epoch_jd.size(); ++i) {
    if (t44943.epoch_jd[i] < march3) before = t44943.altitude_km[i];
    last = t44943.altitude_km[i];
  }
  EXPECT_NEAR(before, 550.0, 3.0);
  EXPECT_LT(last, before - 100.0);
}

TEST(May2024Integration, FiveFoldDragNoLoss) {
  spaceweather::DstIndex dst =
      spaceweather::DstGenerator(
          spaceweather::DstGenerator::with_may_2024_superstorm())
          .generate();
  auto config = simulation::scenario::may_2024(&dst, 300);
  auto result = ConstellationSimulator(config).run();
  const int launched = result.launched;
  const int tracked = result.tracked_at_end;
  CosmicDance pipeline(dst, std::move(result.catalog));

  const double start = timeutil::to_julian(make_datetime(2024, 5, 1));
  const double end = timeutil::to_julian(make_datetime(2024, 5, 25));
  const auto rows = core::superstorm_panel(pipeline.tracks(), dst, start, end);
  ASSERT_FALSE(rows.empty());

  double quiet_bstar = 0.0;
  double peak_bstar = 0.0;
  long min_tracked = 1 << 30;
  for (const auto& row : rows) {
    if (row.day_jd < timeutil::to_julian(make_datetime(2024, 5, 9))) {
      quiet_bstar = std::max(quiet_bstar, row.bstar_median);
    }
    peak_bstar = std::max(peak_bstar, row.bstar_median);
    min_tracked = std::min(min_tracked, row.tracked_satellites);
  }
  // Paper/Starlink: ~5x drag during the super-storm, no satellites lost.
  EXPECT_GT(peak_bstar / quiet_bstar, 3.0);
  EXPECT_LT(peak_bstar / quiet_bstar, 8.0);
  EXPECT_EQ(tracked, launched);
  EXPECT_GT(min_tracked, 250);  // nearly the whole fleet visible daily
}

TEST(Sgp4Integration, EmittedTlesPropagate) {
  // Every TLE the tracker emits must initialise SGP4 and propagate a day.
  auto config = simulation::scenario::launch_l1(nullptr);
  config.end = make_datetime(2020, 3, 1);
  auto result = ConstellationSimulator(config).run();
  int checked = 0;
  for (const int id : result.catalog.satellites()) {
    const auto history = result.catalog.history(id);
    for (std::size_t i = 0; i < history.size(); i += 7) {
      if (history[i].altitude_km() > 650.0) continue;  // gross tracking error
      const sgp4::Sgp4Propagator prop(history[i]);
      const auto sv = prop.propagate_minutes(1440.0);
      const double r = orbit::norm(sv.position_km);
      EXPECT_GT(r, 6378.0 + 150.0);
      EXPECT_LT(r, 6378.0 + 800.0);
      ++checked;
    }
  }
  EXPECT_GT(checked, 100);
}

TEST(WdcIntegration, FullWindowSurvivesArchiveFormat) {
  const spaceweather::DstIndex original =
      spaceweather::DstGenerator(
          spaceweather::DstGenerator::paper_window_2020_2024())
          .generate();
  const spaceweather::DstIndex reloaded =
      spaceweather::from_wdc(spaceweather::to_wdc(original));
  ASSERT_EQ(reloaded.size(), original.size());
  // Storm statistics survive integer rounding.
  const auto hours_a = spaceweather::StormDetector::category_hours(original);
  const auto hours_b = spaceweather::StormDetector::category_hours(reloaded);
  EXPECT_EQ(hours_a.at(spaceweather::StormCategory::kSevere),
            hours_b.at(spaceweather::StormCategory::kSevere));
  EXPECT_NEAR(static_cast<double>(hours_a.at(spaceweather::StormCategory::kMinor)),
              static_cast<double>(hours_b.at(spaceweather::StormCategory::kMinor)),
              30.0);
}

}  // namespace
}  // namespace cosmicdance
