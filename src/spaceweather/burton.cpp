#include "spaceweather/burton.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cosmicdance::spaceweather {

std::vector<double> integrate_burton(std::span<const double> injection_nt_per_hour,
                                     double tau_hours, double initial_nt) {
  if (tau_hours <= 0.0) {
    throw ValidationError("Burton recovery tau must be positive: " +
                          std::to_string(tau_hours));
  }
  std::vector<double> out;
  out.reserve(injection_nt_per_hour.size());
  const double decay = std::exp(-1.0 / tau_hours);
  double state = initial_nt;
  for (const double q : injection_nt_per_hour) {
    // Exact solution over one hour with constant Q:
    //   x(t+1) = x(t)*e^(-1/tau) + Q*tau*(1 - e^(-1/tau))
    state = state * decay + q * tau_hours * (1.0 - decay);
    out.push_back(state);
  }
  return out;
}

std::vector<double> storm_injection_profile(double peak_nt, double main_phase_hours,
                                            double tau_hours,
                                            std::size_t total_hours) {
  if (main_phase_hours < 1.0) {
    throw ValidationError("main phase must be at least one hour");
  }
  if (peak_nt >= 0.0) {
    throw ValidationError("storm peak must be negative (nT): " +
                          std::to_string(peak_nt));
  }
  // With constant Q over n hours the response reaches
  //   x(n) = Q*tau*(1 - e^(-n/tau))
  // so choose Q to land exactly on peak_nt at the end of the main phase.
  const double n = main_phase_hours;
  const double q =
      peak_nt / (tau_hours * (1.0 - std::exp(-n / tau_hours)));
  std::vector<double> profile(total_hours, 0.0);
  const auto main_hours =
      std::min(static_cast<std::size_t>(n), total_hours);
  for (std::size_t i = 0; i < main_hours; ++i) profile[i] = q;
  return profile;
}

}  // namespace cosmicdance::spaceweather
