// Service-hole analysis (paper abstract: premature orbital decay "could
// lead to service holes in such globally spanning connectivity
// infrastructure").
//
// Approximates coverage as satellites-in-view per latitude band (dwell
// share x fleet size) and compares three fleets: healthy, after a severe
// storm's casualties, and after a Carrington-scale event — showing where on
// Earth the lost capacity would be felt.
#include <cstdio>
#include <iostream>

#include "io/table.hpp"
#include "sgp4/groundtrack.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"

using namespace cosmicdance;

namespace {

/// Dwell share per |latitude| band for one representative 53-degree orbit
/// (every satellite in the shell shares the same distribution).
std::vector<double> dwell_shares(int bands) {
  tle::Tle t;
  t.catalog_number = 45000;
  t.international_designator = "20001A";
  t.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2024, 5, 1));
  t.inclination_deg = 53.05;
  t.eccentricity = 1e-4;
  t.mean_motion_revday = 15.06;
  t.bstar = 0.0;
  const sgp4::Sgp4Propagator propagator(t);
  const auto track = sgp4::ground_track(propagator, t.epoch_jd, 20.0 * 96.0, 1.0);

  std::vector<double> shares(static_cast<std::size_t>(bands), 0.0);
  const double width = 90.0 / bands;
  for (const auto& point : track) {
    auto band = static_cast<std::size_t>(std::fabs(point.latitude_deg) / width);
    if (band >= shares.size()) band = shares.size() - 1;
    shares[band] += 1.0;
  }
  for (double& share : shares) share /= static_cast<double>(track.size());
  return shares;
}

int surviving_fleet(const spaceweather::DstIndex& dst, int fleet,
                    bool proactive) {
  auto config = simulation::scenario::may_2024(&dst, fleet);
  config.end = timeutil::make_datetime(2024, 12, 31);
  config.failures.proactive_response = proactive;
  auto result = simulation::ConstellationSimulator(config).run();
  // Count satellites still station-kept: reentered and permanently decaying
  // ones no longer serve users.
  int serving = result.tracked_at_end;
  for (const auto& failure : result.failures) {
    if (failure.kind == simulation::FailureKind::kPermanentDecay) --serving;
  }
  return std::max(serving, 0);
}

}  // namespace

int main() {
  const int fleet = 600;
  const int bands = 6;
  const auto shares = dwell_shares(bands);

  const auto may = spaceweather::DstGenerator(
                       spaceweather::DstGenerator::with_may_2024_superstorm())
                       .generate();
  const auto carrington =
      spaceweather::DstGenerator(spaceweather::DstGenerator::carrington_what_if())
          .generate();

  const int healthy = fleet;
  const int after_may = surviving_fleet(may, fleet, true);
  const int after_carrington = surviving_fleet(carrington, fleet, false);

  std::printf("serving satellites: healthy %d | after May-2024 %d | after "
              "unmitigated Carrington %d\n",
              healthy, after_may, after_carrington);

  io::print_heading(std::cout,
                    "Mean satellites over each |latitude| band (53-deg shell)");
  io::TablePrinter table({"lat_band", "healthy", "post May-2024",
                          "post Carrington", "capacity lost"});
  for (int b = 0; b < bands; ++b) {
    const double width = 90.0 / bands;
    const double h = shares[static_cast<std::size_t>(b)] * healthy;
    const double m = shares[static_cast<std::size_t>(b)] * after_may;
    const double c = shares[static_cast<std::size_t>(b)] * after_carrington;
    table.add_row({io::TablePrinter::num(b * width, 0) + "-" +
                       io::TablePrinter::num((b + 1) * width, 0),
                   io::TablePrinter::num(h, 1), io::TablePrinter::num(m, 1),
                   io::TablePrinter::num(c, 1),
                   h > 0.0 ? io::TablePrinter::num(100.0 * (h - c) / h, 1) + "%"
                           : "-"});
  }
  table.print(std::cout);

  std::cout << "\nReading: a 53-degree constellation concentrates capacity\n"
               "toward the 45-53 degree band (where most subscribers live);\n"
               "uniform fleet attrition therefore removes the most absolute\n"
               "capacity exactly there — the 'service holes' the paper's\n"
               "abstract warns about.  Mitigation (May 2024) kept the fleet\n"
               "intact; an unmitigated Carrington would not.\n";
  return 0;
}
