// Serial-vs-N-thread speedup of the end-to-end measurement pipeline on a
// synthetic 2k-satellite catalog: build tracks + clean + warm caches
// (CosmicDance construction), then run the storm correlation scans and a
// post-event envelope — the three hot loops the exec subsystem parallelises.
//
// Reported per thread count: wall time and speedup vs the num_threads=1
// serial path.  The exec ordering contract makes the *outputs* identical at
// every thread count (tests/parallel_differential_test.cpp asserts this
// bit-for-bit); a checksum is printed so a drift would be visible here too.
//
// After the table, one instrumented pass at --threads 0 collects cd_obs
// telemetry (phase wall times, work counters) and writes it with the
// per-thread-count timings as a machine-readable bench record.
//
//   ./micro_parallel [--satellites N] [--repeats R] [--bench-out F]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <thread>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "obs/obs.hpp"
#include "spaceweather/generator.hpp"
#include "timeutil/hour_axis.hpp"

using namespace cosmicdance;

namespace {

/// Synthetic Starlink-like catalog: `satellites` tracks, each ~200 days of
/// half-day-cadence TLEs somewhere inside the Dst window, shell altitudes
/// spread over the operational bands.  Deterministic per (seed, satellite).
tle::TleCatalog synthetic_catalog(const spaceweather::DstIndex& dst,
                                  int satellites) {
  tle::TleCatalog catalog;
  const double window_start = timeutil::julian_from_hour_index(dst.start_hour());
  const double window_days =
      static_cast<double>(dst.size()) / 24.0;
  for (int s = 0; s < satellites; ++s) {
    Rng rng(0x5eedULL * 2654435761ULL + static_cast<std::uint64_t>(s));
    const double life_days = 200.0;
    const double start =
        window_start + rng.uniform(0.0, window_days - life_days);
    // ~15.0-15.4 rev/day sits in the 520-560 km Starlink shells.
    const double base_mean_motion = 15.0 + 0.4 * rng.uniform();
    tle::Tle tle;
    tle.catalog_number = s + 1;
    tle.international_designator = "20100A";
    tle.bstar = 1.0e-4 * (1.0 + rng.uniform());
    tle.inclination_deg = 53.05;
    tle.raan_deg = rng.uniform(0.0, 360.0);
    tle.eccentricity = 0.0002;
    tle.arg_perigee_deg = 90.0;
    tle.mean_anomaly_deg = 0.0;
    tle.element_set_number = 1;
    tle.rev_number = 1;
    for (double t = 0.0; t < life_days; t += 0.5 + 0.2 * rng.uniform()) {
      tle.epoch_jd = start + t;
      tle.mean_motion_revday = base_mean_motion + 5e-4 * rng.normal();
      tle.mean_anomaly_deg = std::fmod(tle.mean_anomaly_deg + 137.0, 360.0);
      catalog.add(tle);
    }
  }
  return catalog;
}

/// One end-to-end pipeline pass; returns a value-dependent checksum so the
/// work cannot be optimised away and output drift across thread counts
/// would show.
double run_pipeline(const spaceweather::DstIndex& dst,
                    const tle::TleCatalog& catalog, int num_threads,
                    obs::Metrics* metrics = nullptr) {
  core::PipelineConfig config;
  config.num_threads = num_threads;
  config.metrics = metrics;
  const core::CosmicDance pipeline(dst, catalog, config);
  const double p95 = pipeline.dst_threshold_at_percentile(95.0);
  const auto samples = pipeline.altitude_changes_for_storms(p95);
  const auto drags = pipeline.drag_changes_for_storms(p95);
  const auto epochs = pipeline.correlator().storm_event_epochs(p95);
  double checksum = static_cast<double>(pipeline.tracks().size());
  for (const double v : samples) checksum += v;
  for (const double v : drags) checksum += v;
  if (!epochs.empty()) {
    const auto envelope = pipeline.post_event_envelope(
        epochs.front(), 30, core::EnvelopeSelection::kAll);
    for (const double v : envelope.median_km) {
      if (std::isfinite(v)) checksum += v;
    }
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  const io::ArgParser args(argc, argv);
  const int satellites = static_cast<int>(args.integer_or("satellites", 2000));
  const int repeats = static_cast<int>(args.integer_or("repeats", 3));

  const auto dst = spaceweather::DstGenerator(
                       spaceweather::DstGenerator::paper_window_2020_2024())
                       .generate();
  const auto catalog = synthetic_catalog(dst, satellites);
  std::printf("synthetic catalog: %zu satellites, %zu TLEs, %zu Dst hours\n",
              catalog.satellite_count(), catalog.record_count(), dst.size());
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware concurrency: %u\n", hw);

  run_pipeline(dst, catalog, 0);  // warm-up (page cache, shared pool spawn)

  io::TablePrinter table({"threads", "best_ms", "speedup", "checksum"});
  std::map<std::string, double> throughput;
  double serial_ms = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    double best_ms = 1e300;
    double checksum = 0.0;
    for (int r = 0; r < repeats; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      checksum = run_pipeline(dst, catalog, threads);
      const auto t1 = std::chrono::steady_clock::now();
      best_ms = std::min(
          best_ms,
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    if (threads == 1) serial_ms = best_ms;
    throughput["best_ms_t" + std::to_string(threads)] = best_ms;
    throughput["speedup_t" + std::to_string(threads)] = serial_ms / best_ms;
    table.add_row({std::to_string(threads), io::TablePrinter::num(best_ms, 1),
                   io::TablePrinter::num(serial_ms / best_ms, 2) + "x",
                   io::TablePrinter::num(checksum, 3)});
  }
  table.print(std::cout);
  if (hw < 2) {
    std::printf(
        "note: single-core host — parallel speedup cannot manifest here; "
        "the checksum column still verifies thread-count-independent output.\n");
  } else {
    std::printf("target: >= 2x end-to-end speedup at 8 threads\n");
  }

  // Instrumented telemetry pass (all hardware threads): phase wall times
  // and work counters for the same end-to-end run, exported with the
  // per-thread-count timings above.
  obs::Metrics metrics;
  run_pipeline(dst, catalog, 0, &metrics);
  bench::write_bench_record(
      args.option_or("bench-out", "BENCH_parallel.json"), "micro_parallel", 0,
      "synthetic_catalog(satellites=" + std::to_string(satellites) + ")",
      throughput, metrics);
  return 0;
}
