// CCSDS Orbit Mean-Elements Message (OMM) in KVN notation.
//
// Space-Track serves modern element sets as OMM as well as legacy TLE text;
// supporting both keeps the ingestion path future-proof.  This implements
// the KVN (key = value notation) rendering of the SGP4-theory OMM subset —
// exactly the fields a TLE carries — with symmetric read/write.
#pragma once

#include <string>
#include <vector>

#include "tle/catalog.hpp"
#include "tle/tle.hpp"

namespace cosmicdance::tle {

/// Render one record as an OMM/KVN block (CCSDS 502.0-B; MEAN_ELEMENT_THEORY
/// = SGP4, mean elements in the TEME frame).
[[nodiscard]] std::string to_omm_kvn(const Tle& tle,
                                     const std::string& object_name = "");

/// Parse one OMM/KVN block.  Unknown keys are ignored; missing mandatory
/// keys throw ParseError.
[[nodiscard]] Tle from_omm_kvn(const std::string& text);

/// Render/parse a whole catalog (blocks separated by blank lines).
[[nodiscard]] std::string catalog_to_omm_kvn(const TleCatalog& catalog);
[[nodiscard]] std::size_t catalog_add_from_omm_kvn(TleCatalog& catalog,
                                                   const std::string& text);

/// As above with diagnostics (stage "omm"): a tolerant ParseLog quarantines
/// malformed blocks by the line number the block starts on; a strict or
/// absent log throws on the first malformed block.
[[nodiscard]] std::size_t catalog_add_from_omm_kvn(TleCatalog& catalog,
                                                   const std::string& text,
                                                   diag::ParseLog* log,
                                                   const std::string& source = "<text>");

}  // namespace cosmicdance::tle
