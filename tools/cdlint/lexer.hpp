// cdlint's source scanner: a comment/literal-aware view of a C++ file.
//
// cdlint deliberately has no libclang dependency — it must build and run
// in tier-1 with nothing but the C++ toolchain.  Instead of an AST it works
// on a "code view" of each file: the raw text with comments, string
// literals and character literals blanked out (replaced by spaces,
// preserving line/column positions), plus an identifier token stream over
// that view.  That is enough to enforce the project invariants in
// rules.hpp with zero false positives on literal or commented text.
//
// Comments are also where suppressions live:
//
//   // cdlint: allow(unordered-iter) keys are drained into a sorted set
//
// applies to the same line, or to the next line when the comment stands
// alone.  The reason is mandatory; a reasonless allow() is itself a
// finding (rule "allow-reason") and does NOT suppress anything.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cdlint {

/// One suppression directive, as parsed from an allow comment.
struct AllowDirective {
  std::size_t directive_line = 0;  ///< line the comment appears on (1-based)
  std::size_t target_line = 0;     ///< line the suppression applies to
  std::set<std::string> rules;     ///< slugs inside allow(...)
  bool has_reason = false;         ///< non-empty justification after ')'
};

/// An identifier token in the code view.
struct Token {
  std::string text;
  std::size_t line = 0;  ///< 1-based
  std::size_t col = 0;   ///< 0-based offset into the line
};

class SourceFile {
 public:
  /// `path` is the repo-relative path ('/'-separated) used for rule scoping
  /// and reporting; `text` is the file contents.
  SourceFile(std::string path, const std::string& text);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::vector<std::string>& raw_lines() const {
    return raw_;
  }
  /// Lines with comments and string/char literal *contents* blanked.
  /// Preprocessor lines (leading '#') are kept verbatim so include paths
  /// stay visible.
  [[nodiscard]] const std::vector<std::string>& code_lines() const {
    return code_;
  }
  [[nodiscard]] const std::vector<Token>& tokens() const { return tokens_; }
  [[nodiscard]] const std::vector<AllowDirective>& allows() const {
    return allows_;
  }

  /// True when an allow(rule) WITH a reason targets `line`.
  [[nodiscard]] bool allowed(std::size_t line, const std::string& rule) const;

  /// The whole code view joined with '\n' (for multi-line pattern scans).
  [[nodiscard]] const std::string& code_text() const { return code_text_; }

  /// Map an offset into code_text() to a 1-based line number.
  [[nodiscard]] std::size_t line_of_offset(std::size_t offset) const;

  /// Offset of a token's first character into code_text().
  [[nodiscard]] std::size_t offset_of(const Token& token) const {
    return line_offsets_[token.line - 1] + token.col;
  }

  /// The raw source line (1-based) with runs of whitespace collapsed to one
  /// space and ends trimmed — the canonical form used for baseline keys and
  /// for index records that outlive the SourceFile.
  [[nodiscard]] std::string normalized_raw(std::size_t line) const;

  /// First non-space character after the token (skipping newlines), or '\0'.
  [[nodiscard]] char char_after(const Token& token) const;
  /// First non-space character before the token (same line only), or '\0'.
  [[nodiscard]] char char_before(const Token& token) const;
  /// The two characters ending just before the token ("->", "::", ...).
  [[nodiscard]] std::string two_chars_before(const Token& token) const;

 private:
  void blank_literals(const std::string& text);
  void parse_allow_comment(const std::string& comment, std::size_t line);
  void tokenize();

  std::string path_;
  std::vector<std::string> raw_;
  std::vector<std::string> code_;
  std::string code_text_;
  std::vector<std::size_t> line_offsets_;  ///< offset of each line in code_text_
  std::vector<Token> tokens_;
  std::vector<AllowDirective> allows_;
  std::map<std::size_t, std::set<std::string>> reasoned_allows_by_line_;
};

}  // namespace cdlint
