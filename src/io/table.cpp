#include "io/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace cosmicdance::io {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  if (row.size() > header_.size()) {
    throw ValidationError("table row wider than header");
  }
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << "  ";
      out << cells[c];
      const std::size_t pad = widths[c] - cells[c].size();
      if (c + 1 < cells.size()) out << std::string(pad, ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (const std::size_t w : widths) rule.emplace_back(w, '-');
  emit(rule);
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void print_heading(std::ostream& out, const std::string& title) {
  out << '\n' << "== " << title << " ==\n";
}

}  // namespace cosmicdance::io
