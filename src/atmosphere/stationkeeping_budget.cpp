#include "atmosphere/stationkeeping_budget.hpp"

#include "atmosphere/drag.hpp"
#include "atmosphere/exponential.hpp"
#include "atmosphere/storm_density.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "orbit/elements.hpp"

namespace cosmicdance::atmosphere {

double stationkeeping_delta_v_ms(double altitude_km, double ballistic_m2_kg,
                                 double jd_start, double days,
                                 const spaceweather::DstIndex* dst,
                                 double step_hours) {
  if (days < 0.0) throw ValidationError("budget window must be non-negative");
  if (step_hours <= 0.0) throw ValidationError("budget step must be positive");
  if (ballistic_m2_kg <= 0.0) {
    throw ValidationError("ballistic coefficient must be positive");
  }

  const StormDensityModel storm_model(dst);
  const double speed_ms =
      orbit::circular_speed_kms(altitude_km + orbit::wgs72().radius_earth_km) *
      1000.0;
  double delta_v = 0.0;
  const double dt_seconds = step_hours * units::kSecondsPerHour;
  for (double elapsed = 0.0; elapsed < days * units::kHoursPerDay;
       elapsed += step_hours) {
    const double jd = jd_start + elapsed / units::kHoursPerDay;
    const double rho = storm_model.density_kg_m3(altitude_km, jd);
    delta_v += drag_acceleration_ms2(rho, speed_ms, ballistic_m2_kg) * dt_seconds;
  }
  return delta_v;
}

}  // namespace cosmicdance::atmosphere
