# Empty dependencies file for tle_test.
# This may be replaced when dependencies are built.
