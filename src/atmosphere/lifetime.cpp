#include "atmosphere/lifetime.hpp"

#include "atmosphere/drag.hpp"
#include "atmosphere/exponential.hpp"
#include "atmosphere/storm_density.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "timeutil/hour_axis.hpp"

namespace cosmicdance::atmosphere {

double decay_lifetime_days(double altitude_km, double ballistic_m2_kg,
                           const LifetimeConfig& config) {
  if (altitude_km <= config.reentry_altitude_km) return 0.0;
  if (ballistic_m2_kg <= 0.0) {
    throw ValidationError("ballistic coefficient must be positive");
  }
  if (config.step_hours <= 0.0) {
    throw ValidationError("lifetime integration step must be positive");
  }

  const StormDensityModel storm_model(config.dst);
  const double dt_days = config.step_hours / units::kHoursPerDay;
  double altitude = altitude_km;
  double elapsed = 0.0;
  while (elapsed < config.max_days) {
    double rho = density_kg_m3(altitude);
    if (config.dst != nullptr) {
      rho = storm_model.density_kg_m3(altitude, config.start_jd + elapsed);
    }
    const double rate = circular_decay_rate_km_per_day(altitude, rho,
                                                       ballistic_m2_kg);
    altitude += rate * dt_days;
    elapsed += dt_days;
    if (altitude <= config.reentry_altitude_km) return elapsed;
  }
  return config.max_days;
}

}  // namespace cosmicdance::atmosphere
