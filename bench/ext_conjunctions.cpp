// Extension: conjunction screening of a storm casualty (paper §A.2 — TLEs
// are what operators screen with) plus the intensity-vs-impact rank
// correlation underlying Fig 5's stratification.
#include <iostream>

#include "bench_common.hpp"
#include "core/conjunctions.hpp"
#include "orbit/elements.hpp"
#include "io/table.hpp"
#include "spaceweather/storms.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "timeutil/hour_axis.hpp"

using namespace cosmicdance;

namespace {

tle::Tle shell_member(int catalog, double altitude, double raan, double anomaly) {
  tle::Tle t;
  t.catalog_number = catalog;
  t.international_designator = "24001A";
  t.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2024, 3, 10));
  t.inclination_deg = 53.05;
  t.raan_deg = raan;
  t.eccentricity = 1e-4;
  t.arg_perigee_deg = 0.0;
  t.mean_anomaly_deg = anomaly;
  t.mean_motion_revday = orbit::mean_motion_from_altitude_km(altitude);
  t.bstar = 2e-4;
  return t;
}

}  // namespace

int main() {
  // --- part 1: screen a decaying satellite against the shell below -------
  io::print_heading(std::cout,
                    "Screening a decayer (falling through 540 km) against the "
                    "540 km shell (24 satellites, 20-day window)");
  // The trespasser: #44943-style casualty entering the shell from above
  // with heavy drag (B* = 0.02 per Earth radius: tumbling).
  tle::Tle trespasser = shell_member(44943, 541.5, 100.0, 0.0);
  trespasser.bstar = 2.0e-2;
  std::vector<tle::Tle> shell;
  for (int i = 0; i < 24; ++i) {
    shell.push_back(shell_member(50000 + i, 540.0, 100.0 + 15.0 * i,
                                 360.0 * i / 24.0 + 7.0));
  }
  core::ConjunctionConfig config;
  config.threshold_km = 50.0;
  config.coarse_step_seconds = 60.0;
  const auto hits = core::screen_against(trespasser, shell,
                                         trespasser.epoch_jd, 20.0, config);
  io::TablePrinter table({"other", "time (UTC)", "miss distance km"});
  for (const auto& hit : hits) {
    table.add_row({std::to_string(hit.catalog_b),
                   timeutil::from_julian(hit.jd).to_string().substr(0, 16),
                   io::TablePrinter::num(hit.distance_km, 2)});
  }
  table.print(std::cout);
  std::printf("  %zu satellites approached below %.0f km within 20 days\n",
              hits.size(), config.threshold_km);
  bench::note("reading: a casualty crossing a populated shell generates");
  bench::note("alert-threshold conjunctions within hours — the concrete");
  bench::note("Kessler pressure behind the paper's shell-trespass concern.");

  // --- part 2: intensity vs impact correlation ----------------------------
  io::print_heading(std::cout,
                    "Rank correlation: storm peak intensity vs p95 altitude "
                    "change (per storm)");
  const spaceweather::DstIndex dst = bench::paper_dst();
  const core::CosmicDance pipeline(dst, bench::paper_catalog(dst));
  std::vector<double> intensity;
  std::vector<double> impact;
  for (const auto& storm : pipeline.storms()) {
    const std::vector<double> epochs{
        timeutil::julian_from_hour_index(storm.peak_hour)};
    const auto changes = pipeline.correlator().altitude_change_samples(
        pipeline.tracks(), epochs);
    if (changes.size() < 20) continue;
    intensity.push_back(-storm.peak_dst_nt);
    impact.push_back(stats::percentile(changes, 95.0));
  }
  std::printf("  storms with enough samples: %zu\n", intensity.size());
  if (intensity.size() >= 10) {
    std::printf("  Spearman rho(intensity, p95 altitude change) = %.3f\n",
                stats::spearman(intensity, impact));
    std::printf("  Pearson  r = %.3f\n", stats::pearson(intensity, impact));
  }
  bench::note("expected: a clearly positive rank correlation — the monotone");
  bench::note("relationship Figs 5-6 present as stratified CDFs.");
  return 0;
}
