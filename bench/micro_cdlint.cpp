// Cost tracker for the cdlint gate (DESIGN.md §17): drives the two-phase
// analyzer in-process over the real tree — lex + per-file rules + project
// index merge + cross-file rules R9-R14 — and reports files/s and rule
// evaluations/s so `tools/bench_compare.py` catches lint-gate regressions
// the same way it does for sgp4 or serve throughput.
//
// The bench doubles as a gate: a non-empty scan error or any finding on
// the tree is fatal (exit 1), because a bench that times a broken scan is
// measuring the wrong thing.
//
//   ./micro_cdlint [--root DIR] [--threads N] [--repeat N] [--bench-out F]
//
// Default output: BENCH_cdlint.json in the working directory, carrying
// files_per_s / rules_per_s in "throughput" and the scan shape
// (cdlint.files, cdlint.records, cdlint.findings) in "metrics".
#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.hpp"
#include "rules.hpp"
#include "scan.hpp"

int main(int argc, char** argv) {
  using namespace cosmicdance;
  const io::ArgParser args(argc, argv);
  const std::string bench_out = args.option_or("bench-out", "BENCH_cdlint.json");

  cdlint::ScanOptions options;
  options.root = args.option_or("root", ".");
  options.threads =
      static_cast<unsigned>(args.nonnegative_integer_or("threads", 0));
  const auto repeat =
      static_cast<std::size_t>(args.nonnegative_integer_or("repeat", 3));

  // Warm-up pass outside the timed window: faults the tree into the page
  // cache and validates the scan before we start measuring it.
  const cdlint::ScanResult probe = cdlint::scan_tree(options);
  if (!probe.error.empty()) {
    std::printf("FAIL: scan error: %s\n", probe.error.c_str());
    return 1;
  }
  if (!probe.findings.empty()) {
    std::printf("FAIL: tree is not clean (%zu findings); fix or baseline "
                "before benchmarking the gate\n",
                probe.findings.size());
    for (const cdlint::Finding& finding : probe.findings) {
      std::printf("  %s:%zu: [%s] %s\n", finding.file.c_str(), finding.line,
                  finding.rule.c_str(), finding.message.c_str());
    }
    return 1;
  }
  if (probe.files_scanned == 0) {
    std::printf("FAIL: scanned zero files under --root %s\n",
                options.root.c_str());
    return 1;
  }

  double elapsed_s = 0.0;
  for (std::size_t run = 0; run < repeat; ++run) {
    const auto begin = std::chrono::steady_clock::now();
    const cdlint::ScanResult result = cdlint::scan_tree(options);
    const auto end = std::chrono::steady_clock::now();
    if (!result.error.empty() || result.files_scanned != probe.files_scanned) {
      std::printf("FAIL: timed pass diverged from warm-up pass\n");
      return 1;
    }
    elapsed_s += std::chrono::duration<double>(end - begin).count();
  }
  if (elapsed_s <= 0.0) elapsed_s = 1e-9;

  const double passes = static_cast<double>(repeat);
  const double files = static_cast<double>(probe.files_scanned);
  const double rules = static_cast<double>(cdlint::rule_count());
  std::size_t records = 0;
  for (const cdlint::FileIndex& file : probe.index.files) {
    records += file.mutexes.size() + file.atomics.size() + file.spawns.size() +
               file.joins.size() + file.lock_edges.size() +
               file.blocking_calls.size() + file.parallel_sites.size() +
               file.relaxed_sites.size() + file.fp_hazards.size();
  }

  obs::Metrics metrics;
  metrics.counter("cdlint.files").add(probe.files_scanned);
  metrics.counter("cdlint.records").add(records);
  metrics.counter("cdlint.findings").add(probe.findings.size());

  std::map<std::string, double> throughput;
  throughput["files_per_s"] = files * passes / elapsed_s;
  throughput["rules_per_s"] = files * rules * passes / elapsed_s;

  std::printf("cdlint scan: %zu files x %zu passes in %.3f s "
              "(%.0f files/s, %.0f rule evals/s)\n",
              probe.files_scanned, repeat, elapsed_s,
              throughput["files_per_s"], throughput["rules_per_s"]);
  bench::write_bench_record(bench_out, "cdlint",
                            static_cast<int>(options.threads), "repo-tree",
                            throughput, metrics);
  return 0;
}
