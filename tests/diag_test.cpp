// Unit tests for the cosmicdance::diag data-quality subsystem: policies,
// error categories, the ParseLog accumulator, deterministic merging, and
// report serialisation (rows / JSON / printed summary).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "diag/diag.hpp"

namespace cosmicdance::diag {
namespace {

// ---- policies and categories ----------------------------------------------

TEST(DiagPolicy, RoundTripsNames) {
  EXPECT_STREQ(to_string(ParsePolicy::kStrict), "strict");
  EXPECT_STREQ(to_string(ParsePolicy::kTolerant), "tolerant");
  EXPECT_EQ(parse_policy_from_string("strict"), ParsePolicy::kStrict);
  EXPECT_EQ(parse_policy_from_string("tolerant"), ParsePolicy::kTolerant);
}

TEST(DiagPolicy, RejectsUnknownNames) {
  EXPECT_THROW(static_cast<void>(parse_policy_from_string("")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_policy_from_string("lenient")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_policy_from_string("STRICT")), ParseError);
}

TEST(DiagCategory, EveryCategoryHasAUniqueName) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kErrorCategoryCount; ++i) {
    names.insert(to_string(static_cast<ErrorCategory>(i)));
  }
  EXPECT_EQ(names.size(), kErrorCategoryCount);
  EXPECT_STREQ(to_string(ErrorCategory::kSyntax), "syntax");
  EXPECT_STREQ(to_string(ErrorCategory::kChecksum), "checksum");
  EXPECT_STREQ(to_string(ErrorCategory::kNumeric), "numeric");
  EXPECT_STREQ(to_string(ErrorCategory::kRange), "range");
  EXPECT_STREQ(to_string(ErrorCategory::kStructure), "structure");
}

TEST(DiagCategory, ParseErrorCarriesItsCategory) {
  const ParseError plain("oops");
  EXPECT_EQ(plain.category(), ErrorCategory::kSyntax);
  const ParseError tagged("oops", ErrorCategory::kChecksum);
  EXPECT_EQ(tagged.category(), ErrorCategory::kChecksum);
}

// ---- ParseLog ---------------------------------------------------------------

TEST(ParseLogTest, StrictRejectThrowsActionableError) {
  ParseLog log(ParsePolicy::kStrict);
  try {
    log.reject("tle", ErrorCategory::kChecksum, "checksum mismatch",
               "1 25544U ...", RecordRef{"catalog.tle", 42});
    FAIL() << "strict reject must throw";
  } catch (const ParseError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("catalog.tle"), std::string::npos);
    EXPECT_NE(what.find("42"), std::string::npos);
    EXPECT_NE(what.find("checksum"), std::string::npos);
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos);
    EXPECT_EQ(error.category(), ErrorCategory::kChecksum);
  }
  // Nothing was quarantined — strict mode reports by throwing.
  EXPECT_EQ(log.quarantined_count(), 0u);
}

TEST(ParseLogTest, TolerantRejectQuarantinesAndContinues) {
  ParseLog log(ParsePolicy::kTolerant);
  log.accept("tle", 3);
  log.reject("tle", ErrorCategory::kNumeric, "bad field", "garbage",
             RecordRef{"catalog.tle", 7});
  log.reject("wdc", ErrorCategory::kRange, "month 13", "DST...",
             RecordRef{"dst.wdc", 2});
  log.repair("wdc", 24);

  ASSERT_EQ(log.quarantined_count(), 2u);
  const QuarantinedRecord& first = log.quarantined()[0];
  EXPECT_EQ(first.stage, "tle");
  EXPECT_EQ(first.source, "catalog.tle");
  EXPECT_EQ(first.line, 7u);
  EXPECT_EQ(first.category, ErrorCategory::kNumeric);
  EXPECT_EQ(first.snippet, "garbage");

  const auto& tle = log.stages().at("tle");
  EXPECT_EQ(tle.accepted, 3u);
  EXPECT_EQ(tle.quarantined_total(), 1u);
  EXPECT_EQ(tle.quarantined[static_cast<std::size_t>(ErrorCategory::kNumeric)], 1u);
  const auto& wdc = log.stages().at("wdc");
  EXPECT_EQ(wdc.repaired, 24u);
  EXPECT_EQ(wdc.quarantined[static_cast<std::size_t>(ErrorCategory::kRange)], 1u);
}

TEST(ParseLogTest, EveryCategoryIsCountedInItsOwnBucket) {
  ParseLog log(ParsePolicy::kTolerant);
  for (std::size_t i = 0; i < kErrorCategoryCount; ++i) {
    log.reject("stage", static_cast<ErrorCategory>(i), "m", "s",
               RecordRef{"f", i + 1});
  }
  const StageCounters& counters = log.stages().at("stage");
  EXPECT_EQ(counters.quarantined_total(), kErrorCategoryCount);
  for (std::size_t i = 0; i < kErrorCategoryCount; ++i) {
    EXPECT_EQ(counters.quarantined[i], 1u) << "category " << i;
  }
}

TEST(ParseLogTest, MergeIsInOrderConcatenation) {
  // Simulate the parallel-chunk pattern: per-chunk logs merged in chunk
  // index order must equal the serial log.
  ParseLog serial(ParsePolicy::kTolerant);
  serial.accept("tle", 2);
  serial.reject("tle", ErrorCategory::kSyntax, "a", "", RecordRef{"f", 1});
  serial.reject("tle", ErrorCategory::kChecksum, "b", "", RecordRef{"f", 5});

  ParseLog chunk0(ParsePolicy::kTolerant);
  chunk0.accept("tle", 1);
  chunk0.reject("tle", ErrorCategory::kSyntax, "a", "", RecordRef{"f", 1});
  ParseLog chunk1(ParsePolicy::kTolerant);
  chunk1.accept("tle", 1);
  chunk1.reject("tle", ErrorCategory::kChecksum, "b", "", RecordRef{"f", 5});

  ParseLog merged(ParsePolicy::kTolerant);
  merged.merge(std::move(chunk0));
  merged.merge(std::move(chunk1));

  EXPECT_TRUE(merged.stages().at("tle") == serial.stages().at("tle"));
  ASSERT_EQ(merged.quarantined_count(), serial.quarantined_count());
  for (std::size_t i = 0; i < merged.quarantined().size(); ++i) {
    EXPECT_EQ(merged.quarantined()[i].line, serial.quarantined()[i].line);
    EXPECT_EQ(merged.quarantined()[i].message, serial.quarantined()[i].message);
  }
}

// ---- DataQualityReport ------------------------------------------------------

ParseLog sample_log() {
  ParseLog log(ParsePolicy::kTolerant);
  log.accept("tle", 10);
  log.repair("wdc", 24);
  log.accept("wdc", 5);
  log.reject("tle", ErrorCategory::kChecksum, "checksum \"mismatch\"",
             "1 25544U junk", RecordRef{"catalog.tle", 3});
  return log;
}

TEST(DataQualityReportTest, TotalsAggregateAcrossStages) {
  const DataQualityReport report = sample_log().report();
  EXPECT_EQ(report.total_accepted(), 15u);
  EXPECT_EQ(report.total_repaired(), 24u);
  EXPECT_EQ(report.total_quarantined(), 1u);
}

TEST(DataQualityReportTest, QuarantineRowsHaveHeaderAndOneRowPerRecord) {
  const DataQualityReport report = sample_log().report();
  const auto rows = report.quarantine_rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "stage");
  EXPECT_EQ(rows[1][0], "tle");
  EXPECT_EQ(rows[1][1], "catalog.tle");
  EXPECT_EQ(rows[1][2], "3");
  EXPECT_EQ(rows[1][3], "checksum");
}

TEST(DataQualityReportTest, SummaryRowsCoverEveryStageAndCategory) {
  const DataQualityReport report = sample_log().report();
  const auto rows = report.summary_rows();
  ASSERT_EQ(rows.size(), 3u);  // header + tle + wdc
  EXPECT_EQ(rows[0].size(), 4u + kErrorCategoryCount);
  EXPECT_EQ(rows[1][0], "tle");
  EXPECT_EQ(rows[1][1], "10");
  EXPECT_EQ(rows[2][0], "wdc");
  EXPECT_EQ(rows[2][2], "24");
}

TEST(DataQualityReportTest, JsonEscapesAndContainsEverything) {
  const std::string json = sample_log().report().to_json();
  EXPECT_NE(json.find("\"policy\": \"tolerant\""), std::string::npos);
  EXPECT_NE(json.find("\"tle\""), std::string::npos);
  EXPECT_NE(json.find("\"accepted\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"repaired\": 24"), std::string::npos);
  // The embedded quotes in the message must be escaped.
  EXPECT_NE(json.find("checksum \\\"mismatch\\\""), std::string::npos);
  EXPECT_EQ(json.find("checksum \"mismatch\""), std::string::npos);
}

TEST(DataQualityReportTest, PrintSummarisesCountsAndRecords) {
  std::ostringstream out;
  sample_log().report().print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("policy=tolerant"), std::string::npos);
  EXPECT_NE(text.find("15 accepted"), std::string::npos);
  EXPECT_NE(text.find("24 repaired"), std::string::npos);
  EXPECT_NE(text.find("1 quarantined"), std::string::npos);
  EXPECT_NE(text.find("catalog.tle:3"), std::string::npos);
}

TEST(DiagSnippet, TruncatesAndFlattensWhitespace) {
  EXPECT_EQ(snippet_of("short"), "short");
  EXPECT_EQ(snippet_of("a\nb\tc"), "a b c");
  const std::string long_text(100, 'x');
  const std::string snip = snippet_of(long_text, 10);
  EXPECT_EQ(snip.size(), 13u);  // 10 chars + "..."
  EXPECT_EQ(snip.substr(10), "...");
}

}  // namespace
}  // namespace cosmicdance::diag
