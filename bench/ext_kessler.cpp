// Extension (paper §6): Kessler-syndrome pressure — conjunction exposure of
// storm-displaced satellites, and the manoeuvre-confounder estimate from
// the paper's Limitations paragraph.
#include <iostream>

#include "bench_common.hpp"
#include "core/kessler.hpp"
#include "core/maneuvers.hpp"
#include "io/table.hpp"
#include "spaceweather/storms.hpp"
#include "timeutil/hour_axis.hpp"

using namespace cosmicdance;

int main() {
  const spaceweather::DstIndex dst = bench::paper_dst();
  const core::CosmicDance pipeline(dst, bench::paper_catalog(dst));

  core::KesslerConfig kessler;
  kessler.shells.shell_altitudes_km = {535.0, 540.0, 545.0, 550.0, 555.0, 560.0};
  kessler.shells.half_width_km = 1.5;

  io::print_heading(std::cout, "Kinetic inputs (full-constellation scale)");
  std::printf("  shell spatial density @550 km: %.3g sat/km^3\n",
              core::shell_spatial_density(550.0, kessler));
  std::printf("  collision rate per dwell-year: %.3g /yr\n",
              core::collision_rate_per_dwell_year(550.0, kessler));

  // Storm months vs quiet months: expected-collision exposure.
  io::print_heading(std::cout,
                    "Conjunction exposure: months containing a moderate+ "
                    "storm vs all others");
  // Months are classified by moderate (-100 nT) storms so both classes are
  // populated; the contamination estimate below uses the paper's >95th-ptile
  // event set.
  const auto epochs = pipeline.correlator().storm_event_epochs(
      spaceweather::kModerateThresholdNt);

  double storm_dwell = 0.0;
  double storm_collisions = 0.0;
  long storm_months = 0;
  double quiet_dwell = 0.0;
  double quiet_collisions = 0.0;
  long quiet_months = 0;
  const double start = timeutil::julian_from_hour_index(dst.start_hour());
  const double end = timeutil::julian_from_hour_index(dst.end_hour());
  for (double month = start; month + 30.0 <= end; month += 30.0) {
    bool has_storm = false;
    for (const double epoch : epochs) {
      if (epoch >= month && epoch < month + 30.0) has_storm = true;
    }
    const auto exposure =
        core::conjunction_exposure(pipeline.tracks(), month, month + 30.0, kessler);
    if (has_storm) {
      storm_dwell += exposure.dwell_days;
      storm_collisions += exposure.expected_collisions;
      ++storm_months;
    } else {
      quiet_dwell += exposure.dwell_days;
      quiet_collisions += exposure.expected_collisions;
      ++quiet_months;
    }
  }
  io::TablePrinter table({"month class", "months", "dwell sat-days/mo",
                          "E[collisions]/mo x1e6"});
  table.add_row({"with moderate+ storm", std::to_string(storm_months),
                 io::TablePrinter::num(storm_dwell / std::max(storm_months, 1L), 1),
                 io::TablePrinter::num(
                     1e6 * storm_collisions / std::max(storm_months, 1L), 2)});
  table.add_row({"quiet", std::to_string(quiet_months),
                 io::TablePrinter::num(quiet_dwell / std::max(quiet_months, 1L), 1),
                 io::TablePrinter::num(
                     1e6 * quiet_collisions / std::max(quiet_months, 1L), 2)});
  table.print(std::cout);
  if (quiet_dwell > 0.0) {
    bench::expect("storm-month / quiet-month dwell ratio", "> 1",
                  (storm_dwell / std::max(storm_months, 1L)) /
                      (quiet_dwell / std::max(quiet_months, 1L)));
  }

  // The Limitations confounder: how many happens-closely-after candidates
  // sit near a detected manoeuvre?
  io::print_heading(std::cout, "Manoeuvre confounder (paper Limitations)");
  const auto maneuvers = core::detect_maneuvers(pipeline.tracks());
  const auto p95_epochs = pipeline.correlator().storm_event_epochs(
      pipeline.dst_threshold_at_percentile(95.0));
  const auto contamination = core::maneuver_contamination(
      pipeline.tracks(), p95_epochs, pipeline.correlator().config().window_days);
  std::printf("  detected manoeuvres: %zu across %zu satellites\n",
              maneuvers.size(), pipeline.tracks().size());
  std::printf("  (satellite,event) pairs near a manoeuvre: %zu of %zu (%.1f%%)\n",
              contamination.near_maneuver, contamination.candidates,
              100.0 * contamination.fraction());
  bench::note("reading: a sizeable share of post-storm windows contains some");
  bench::note("manoeuvre — the reason the paper sticks to happens-closely-");
  bench::note("after language rather than claiming causality outright.");
  return 0;
}
