// Per-satellite TLE histories, the unit the pipeline ingests.
//
// Mirrors the paper's data-handling: fetch the current catalog numbers once,
// then accumulate historical TLEs per satellite, each history sorted by
// epoch with duplicate epochs dropped.
#pragma once

#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "diag/diag.hpp"
#include "tle/tle.hpp"

namespace cosmicdance::obs {
class Metrics;
}  // namespace cosmicdance::obs

namespace cosmicdance::tle {

/// Knobs for the text-ingestion entry points.
struct IngestOptions {
  /// Outcome accumulator; nullptr keeps the historical strict-throw path.
  diag::ParseLog* log = nullptr;
  /// Worker count for record parsing (the exec convention: 0 = all
  /// hardware threads, 1 = serial).  Results and diagnostics are
  /// bit-identical at any value — records are split serially, parsed in
  /// parallel, and committed in input order.
  int num_threads = 1;
  /// Label for diagnostics (file path; defaults to "<text>" / the path).
  std::string source;
  /// Optional observability registry (tle.* counters, ingest phase wall
  /// time); nullptr disables collection.
  obs::Metrics* metrics = nullptr;
  /// 1-based file line number of the first line of the text.  The append
  /// fast path parses only a tail slice of a grown file and needs its
  /// diagnostics to cite absolute line numbers.
  std::size_t first_line = 1;
  /// When set, every record actually committed by add() is also appended
  /// here, in file/commit order — a snapshot delta layer replays exactly
  /// this sequence to rebuild the catalog without reparsing text.
  std::vector<Tle>* committed = nullptr;
  /// Shard count for the pass-1 pairing scan: 0 = auto (derived from the
  /// resolved worker count and the text size), 1 = one serial scan, n = n
  /// shards.  Outputs are bit-identical at every value — shard boundaries
  /// are resynchronised to line starts and the edges stitched serially
  /// (DESIGN.md §18); the knob exists so differential tests can pin shard
  /// geometry independently of the thread count.
  int num_shards = 0;
};

/// True when `text` ends at a clean pairing boundary for append-style
/// growth: its last non-empty line is not a TLE line 1 still awaiting its
/// line 2.  (Blank lines do not clear the pairing scanner's pending
/// state, so only the last non-empty line matters.)  When false, a
/// dangling line 1 was quarantined as structural when the text was parsed
/// alone, but appended bytes could retroactively pair with it — so an
/// incremental parse of just the appended tail would diverge from a full
/// reparse, and callers must fall back to reparsing from scratch.
[[nodiscard]] bool append_boundary_clean(std::string_view text);

/// A collection of TLEs keyed by NORAD catalog number.
class TleCatalog {
 public:
  TleCatalog() = default;

  /// Insert a record, keeping the per-satellite history epoch-sorted.
  /// Records with an epoch within ~1 second of an existing record for the
  /// same satellite are treated as duplicates and dropped (returns false).
  bool add(const Tle& tle);

  /// Install a satellite's complete epoch-sorted history in one move — the
  /// bulk-rebuild path snapshot deserialisation uses instead of replaying
  /// add() per record.  The history must be non-empty, belong entirely to
  /// `catalog_number`, be strictly epoch-sorted with no two records inside
  /// the duplicate window, and the satellite must not already be present;
  /// any violation throws ValidationError (callers treat that as snapshot
  /// corruption and reparse).  The rebuilt catalog is structurally
  /// identical to one built by add() calls in history order.
  void adopt_history(int catalog_number, std::vector<Tle> history);

  /// Parse and add records from raw text in 2-line or 3-line (name line,
  /// optionally "0 "-prefixed) format.  Returns the number added; throws
  /// ParseError on malformed lines.  Takes a view so the zero-copy path can
  /// pass a MappedFile's contents; the text only needs to stay alive for
  /// the duration of the call.
  std::size_t add_from_text(std::string_view text);

  /// As above with diagnostics and parallel parsing.  Under a tolerant
  /// ParseLog malformed records are quarantined (stage "tle") and parsing
  /// continues; under a strict (or absent) log the first malformed record
  /// throws ParseError naming source, line and category.
  std::size_t add_from_text(std::string_view text, const IngestOptions& options);

  /// Load a file via add_from_text (mmap-backed when available).  Throws
  /// IoError / ParseError.
  std::size_t add_from_file(const std::string& path);

  /// As above with diagnostics and parallel parsing.
  std::size_t add_from_file(const std::string& path, const IngestOptions& options);

  /// Sorted catalog numbers present.
  [[nodiscard]] std::vector<int> satellites() const;

  /// Epoch-sorted history for a satellite (empty when unknown).
  [[nodiscard]] std::span<const Tle> history(int catalog_number) const;

  [[nodiscard]] std::size_t satellite_count() const noexcept { return tles_.size(); }
  [[nodiscard]] std::size_t record_count() const noexcept { return record_count_; }
  [[nodiscard]] bool empty() const noexcept { return tles_.empty(); }

  /// Earliest / latest epoch across all records.  Throws ValidationError
  /// when the catalog is empty.
  [[nodiscard]] double first_epoch_jd() const;
  [[nodiscard]] double last_epoch_jd() const;

  /// Serialise the full catalog back to 2-line text (history order).
  [[nodiscard]] std::string to_text() const;

  /// Refresh-interval samples (hours between consecutive records of the
  /// same satellite), pooled over all satellites — the paper reports this
  /// ranges <1 h to 154 h with a ~12 h mean.
  [[nodiscard]] std::vector<double> refresh_intervals_hours() const;

 private:
  /// Sorted-insert into one history with duplicate-window dropping (the
  /// shared core of add() and the ingest commit loop; bumps record_count_).
  bool insert_record(std::vector<Tle>& history, const Tle& tle);

  std::map<int, std::vector<Tle>> tles_;
  std::size_t record_count_ = 0;
};

}  // namespace cosmicdance::tle
