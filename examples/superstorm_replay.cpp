// Replay of the May 10-11 2024 super-storm (the paper's Fig 7 scenario),
// plus a counterfactual: the same storm without the operator's proactive
// response.  Demonstrates how the pipeline corroborates (or would have
// contradicted) Starlink's public statement of "5x drag, no losses".
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/pipeline.hpp"
#include "io/table.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"

using namespace cosmicdance;

namespace {

void replay(const spaceweather::DstIndex& dst, bool proactive, int fleet) {
  auto scenario = simulation::scenario::may_2024(&dst, fleet);
  scenario.failures.proactive_response = proactive;
  auto run = simulation::ConstellationSimulator(scenario).run();
  const int launched = run.launched;
  const int lost = run.launched - run.tracked_at_end;
  const core::CosmicDance pipeline(dst, std::move(run.catalog));

  const double start = timeutil::to_julian(timeutil::make_datetime(2024, 5, 4));
  const double end = timeutil::to_julian(timeutil::make_datetime(2024, 5, 31));
  const auto rows = core::superstorm_panel(pipeline.tracks(), dst, start, end);

  io::print_heading(std::cout,
                    proactive ? "May 2024 replay - proactive response ON "
                                "(what actually happened)"
                              : "May 2024 replay - proactive response OFF "
                                "(counterfactual)");
  io::TablePrinter table(
      {"date", "min Dst nT", "B* median", "B* p95", "tracked"});
  double quiet_median = 0.0;
  double peak_median = 0.0;
  for (const auto& row : rows) {
    const auto dt = timeutil::from_julian(row.day_jd + 0.5);
    table.add_row({dt.to_string().substr(0, 10),
                   io::TablePrinter::num(row.dst_min_nt, 0),
                   io::TablePrinter::num(row.bstar_median * 1e4, 2) + "e-4",
                   io::TablePrinter::num(row.bstar_p95 * 1e4, 2) + "e-4",
                   std::to_string(row.tracked_satellites)});
    if (dt.day <= 8 && dt.month == 5) {
      quiet_median = std::max(quiet_median, row.bstar_median);
    }
    peak_median = std::max(peak_median, row.bstar_median);
  }
  table.print(std::cout);
  std::printf("\n  drag amplification (median B*): %.1fx\n",
              peak_median / quiet_median);
  std::printf("  satellites lost: %d of %d\n", lost, launched);
}

}  // namespace

int main() {
  const spaceweather::DstIndex dst =
      spaceweather::DstGenerator(
          spaceweather::DstGenerator::with_may_2024_superstorm())
          .generate();
  std::printf("Super-storm peak: %.0f nT (paper/WDC: -412 nT)\n", dst.minimum());

  replay(dst, /*proactive=*/true, /*fleet=*/900);
  replay(dst, /*proactive=*/false, /*fleet=*/900);

  std::cout << "\nStarlink's FCC response reported ~5x drag with zero losses\n"
               "thanks to cross-section reduction and an attentive ops\n"
               "response; the counterfactual shows what the same storm does\n"
               "to an unmitigated fleet.\n";
  return 0;
}
