#include "core/shells.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cosmicdance::core {
namespace {

bool inside_band(double altitude_km, double shell_km, double half_width_km) {
  return std::fabs(altitude_km - shell_km) <= half_width_km;
}

// Home shell from the first quarter of the track: a decaying satellite's
// whole-track median drifts below its assigned shell, but its early samples
// sit where the operator put it.
double home_shell_km(const SatelliteTrack& track, const ShellConfig& config) {
  const auto& samples = track.samples();
  std::vector<double> early;
  const std::size_t quarter = std::max<std::size_t>(samples.size() / 4, 1);
  early.reserve(quarter);
  for (std::size_t i = 0; i < quarter; ++i) {
    early.push_back(samples[i].altitude_km);
  }
  std::nth_element(early.begin(), early.begin() + early.size() / 2, early.end());
  return nearest_shell_km(early[early.size() / 2], config);
}

}  // namespace

double nearest_shell_km(double altitude_km, const ShellConfig& config) {
  if (config.shell_altitudes_km.empty()) {
    throw ValidationError("shell config has no shells");
  }
  double best = config.shell_altitudes_km.front();
  for (const double shell : config.shell_altitudes_km) {
    if (std::fabs(altitude_km - shell) < std::fabs(altitude_km - best)) {
      best = shell;
    }
  }
  return best;
}

std::vector<TrespassEvent> shell_trespasses(std::span<const SatelliteTrack> tracks,
                                            const ShellConfig& config) {
  std::vector<TrespassEvent> events;
  for (const SatelliteTrack& track : tracks) {
    if (track.empty()) continue;
    const double home = home_shell_km(track, config);
    double inside_shell = 0.0;  // 0 = not inside any foreign band
    for (const TrajectorySample& sample : track.samples()) {
      double now_inside = 0.0;
      for (const double shell : config.shell_altitudes_km) {
        if (shell != home &&
            inside_band(sample.altitude_km, shell, config.half_width_km)) {
          now_inside = shell;
          break;
        }
      }
      if (now_inside != 0.0 && now_inside != inside_shell) {
        events.push_back(
            {track.catalog_number(), sample.epoch_jd, home, now_inside});
      }
      inside_shell = now_inside;
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TrespassEvent& a, const TrespassEvent& b) {
              return a.entry_jd < b.entry_jd;
            });
  return events;
}

double foreign_shell_dwell_days(std::span<const SatelliteTrack> tracks,
                                const ShellConfig& config) {
  double dwell = 0.0;
  for (const SatelliteTrack& track : tracks) {
    if (track.size() < 2) continue;
    const double home = home_shell_km(track, config);
    const auto& samples = track.samples();
    for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
      bool foreign = false;
      for (const double shell : config.shell_altitudes_km) {
        if (shell != home &&
            inside_band(samples[i].altitude_km, shell, config.half_width_km)) {
          foreign = true;
          break;
        }
      }
      if (foreign) {
        // Attribute the gap to the state at its left endpoint, capped so a
        // long tracking outage cannot dominate the estimate.
        dwell += std::min(samples[i + 1].epoch_jd - samples[i].epoch_jd, 2.0);
      }
    }
  }
  return dwell;
}

std::vector<TrespassEvent> shell_trespasses_between(
    std::span<const SatelliteTrack> tracks, double jd_lo, double jd_hi,
    const ShellConfig& config) {
  std::vector<TrespassEvent> all = shell_trespasses(tracks, config);
  std::vector<TrespassEvent> out;
  for (const TrespassEvent& event : all) {
    if (event.entry_jd >= jd_lo && event.entry_jd < jd_hi) out.push_back(event);
  }
  return out;
}

}  // namespace cosmicdance::core
