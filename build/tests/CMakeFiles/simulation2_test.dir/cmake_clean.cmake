file(REMOVE_RECURSE
  "CMakeFiles/simulation2_test.dir/simulation2_test.cpp.o"
  "CMakeFiles/simulation2_test.dir/simulation2_test.cpp.o.d"
  "simulation2_test"
  "simulation2_test.pdb"
  "simulation2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
