#include "spaceweather/storms.hpp"

#include "common/error.hpp"

namespace cosmicdance::spaceweather {

StormDetector::StormDetector(StormDetectorConfig config) : config_(config) {
  if (config_.merge_gap_hours < 0 || config_.min_duration_hours < 0) {
    throw ValidationError("storm detector gaps/durations must be non-negative");
  }
}

std::vector<StormEvent> StormDetector::detect(const DstIndex& dst) const {
  std::vector<StormEvent> events;
  const auto values = dst.values();
  const timeutil::HourIndex start = dst.start_hour();

  bool in_storm = false;
  StormEvent current;
  long gap = 0;

  auto finalize = [&]() {
    if (in_storm && current.duration_hours() >= config_.min_duration_hours) {
      current.category = classify(current.peak_dst_nt);
      events.push_back(current);
    }
    in_storm = false;
  };

  for (std::size_t i = 0; i < values.size(); ++i) {
    const timeutil::HourIndex hour = start + static_cast<timeutil::HourIndex>(i);
    const double v = values[i];
    if (v <= config_.threshold_nt) {
      if (!in_storm) {
        in_storm = true;
        current = StormEvent{};
        current.start_hour = hour;
        current.peak_dst_nt = v;
        current.peak_hour = hour;
      } else if (v < current.peak_dst_nt) {
        current.peak_dst_nt = v;
        current.peak_hour = hour;
      }
      current.end_hour = hour + 1;
      gap = 0;
    } else if (in_storm) {
      ++gap;
      if (gap > config_.merge_gap_hours) {
        finalize();
        gap = 0;
      }
    }
  }
  finalize();
  return events;
}

std::map<StormCategory, long> StormDetector::category_hours(const DstIndex& dst) {
  std::map<StormCategory, long> hours;
  for (const double v : dst.values()) {
    const StormCategory c = classify(v);
    if (c != StormCategory::kQuiet) ++hours[c];
  }
  return hours;
}

std::vector<double> StormDetector::durations_for_category(
    const DstIndex& dst, StormCategory category) const {
  // The paper measures a category's storm duration as the contiguous time
  // spent below that category's own threshold (e.g. the severe storm of
  // 24 Apr 2023 "lasted for 3 contiguous hours" below -200 nT), so detect
  // with the category threshold and keep events peaking in the category.
  StormDetectorConfig config = config_;
  config.threshold_nt = threshold(category);
  const StormDetector category_detector(config);
  std::vector<double> durations;
  for (const StormEvent& event : category_detector.detect(dst)) {
    if (event.category == category) {
      durations.push_back(static_cast<double>(event.duration_hours()));
    }
  }
  return durations;
}

}  // namespace cosmicdance::spaceweather
