// Fixed-size worker pool for the parallel execution layer.
//
// The pool is a plain task queue: submit() enqueues a callable, workers drain
// the queue in FIFO order.  It makes no ordering promises of its own — the
// deterministic-ordering contract lives one level up in parallel_for (see
// parallel_for.hpp and DESIGN.md §"Parallel execution"): callers arrange for
// every task to write only its own pre-assigned output slots, so results are
// positionally identical no matter which worker runs which task when.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cosmicdance::exec {

/// Number of workers to use for a requested thread count: 0 means "all
/// hardware threads", anything else is used as given (minimum 1).
[[nodiscard]] std::size_t resolve_thread_count(int requested) noexcept;

class ThreadPool {
 public:
  /// Spawns `thread_count` workers (minimum 1).  Workers live until
  /// destruction; the destructor drains nothing — submitted work must be
  /// waited on by the caller (parallel_for always does).
  explicit ThreadPool(std::size_t thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueue a task.  Throws std::runtime_error after shutdown began.
  void submit(std::function<void()> task);

  /// Process-wide shared pool sized at hardware concurrency, created on
  /// first use.  parallel_for draws workers from here so repeated parallel
  /// sections do not pay thread spawn/join costs.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
};

}  // namespace cosmicdance::exec
