// Tests for the third extension wave: solar-cycle modulation, the OMM/KVN
// codec, and the merged-timeline (align) API.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/merge.hpp"
#include "orbit/elements.hpp"
#include "spaceweather/generator.hpp"
#include "spaceweather/storms.hpp"
#include "tle/omm.hpp"

namespace cosmicdance {
namespace {

using timeutil::make_datetime;

// ------------------------- solar-cycle modulation ---------------------------

TEST(SolarCycleTest, StormDensityFollowsCycle) {
  spaceweather::DstGeneratorConfig config;
  config.seed = 2024;
  config.start = make_datetime(1996, 1, 1);
  config.hours = 24 * 365 * 11;  // one full cycle, peak ~Apr 2000
  config.minor_storms_per_year = 40.0;
  config.moderate_storms_per_year = 5.0;
  config.solar_cycle_modulation = true;
  const auto dst = spaceweather::DstGenerator(config).generate();

  auto storm_hours_in = [&](int year_lo, int year_hi) {
    const auto from = timeutil::hour_index_from_datetime(
        make_datetime(year_lo, 1, 1));
    const auto to = timeutil::hour_index_from_datetime(
        make_datetime(year_hi, 1, 1));
    long hours = 0;
    for (const double v : dst.slice(from, to).values()) {
      if (v <= spaceweather::kMinorThresholdNt) ++hours;
    }
    return hours;
  };
  // Around the maximum (1999-2001) storms are much denser than around the
  // minimum (1996 start / 2006 end of cycle: use 2005-2006).
  const long near_max = storm_hours_in(1999, 2001);
  const long near_min = storm_hours_in(2005, 2006) * 2;  // same span length
  EXPECT_GT(near_max, 2 * near_min);
}

TEST(SolarCycleTest, OffByDefaultPreservesPaperCalibration) {
  // The paper-window preset must keep its calibrated totals (regression
  // guard: the modulation changes must not disturb the default stream).
  const auto dst = spaceweather::DstGenerator(
                       spaceweather::DstGenerator::paper_window_2020_2024())
                       .generate();
  const auto hours = spaceweather::StormDetector::category_hours(dst);
  EXPECT_EQ(hours.at(spaceweather::StormCategory::kSevere), 3);
  EXPECT_NEAR(static_cast<double>(hours.at(spaceweather::StormCategory::kMinor)),
              748.0, 1.0);  // exact value from the calibrated seed
}

// --------------------------------- OMM --------------------------------------

tle::Tle sample_tle() {
  tle::Tle t;
  t.catalog_number = 45766;
  t.classification = 'U';
  t.international_designator = "20035K";
  t.epoch_jd = timeutil::to_julian(make_datetime(2023, 3, 24, 6, 30));
  t.inclination_deg = 53.0537;
  t.raan_deg = 212.1234;
  t.eccentricity = 0.0001234;
  t.arg_perigee_deg = 87.9;
  t.mean_anomaly_deg = 272.15;
  t.mean_motion_revday = 15.06391234;
  t.bstar = 3.1415e-4;
  t.mean_motion_dot = 1.2e-5;
  t.mean_motion_ddot = 0.0;
  t.element_set_number = 123;
  t.rev_number = 12345;
  return t;
}

TEST(OmmTest, RenderContainsMandatoryKeys) {
  const std::string kvn = tle::to_omm_kvn(sample_tle(), "STARLINK-1361");
  for (const char* key :
       {"CCSDS_OMM_VERS", "OBJECT_NAME = STARLINK-1361", "OBJECT_ID = 20035K",
        "MEAN_ELEMENT_THEORY = SGP4", "REF_FRAME = TEME", "NORAD_CAT_ID = 45766",
        "MEAN_MOTION = 15.06391234", "BSTAR"}) {
    EXPECT_NE(kvn.find(key), std::string::npos) << key;
  }
}

TEST(OmmTest, RoundTripLossless) {
  const tle::Tle original = sample_tle();
  const tle::Tle back = tle::from_omm_kvn(tle::to_omm_kvn(original));
  EXPECT_EQ(back.catalog_number, original.catalog_number);
  EXPECT_EQ(back.international_designator, original.international_designator);
  EXPECT_NEAR(back.epoch_jd, original.epoch_jd, 1e-8);
  EXPECT_NEAR(back.mean_motion_revday, original.mean_motion_revday, 1e-10);
  EXPECT_NEAR(back.eccentricity, original.eccentricity, 1e-12);
  EXPECT_NEAR(back.inclination_deg, original.inclination_deg, 1e-9);
  EXPECT_NEAR(back.raan_deg, original.raan_deg, 1e-9);
  EXPECT_NEAR(back.bstar, original.bstar, 1e-12);
  EXPECT_EQ(back.rev_number, original.rev_number);
  EXPECT_EQ(back.element_set_number, original.element_set_number);
}

TEST(OmmTest, ParseIgnoresUnknownKeysAndComments) {
  std::string kvn = tle::to_omm_kvn(sample_tle());
  kvn = "COMMENT generated for test\nUSER_DEFINED_FOO = bar\n" + kvn;
  EXPECT_NO_THROW((void)tle::from_omm_kvn(kvn));
}

TEST(OmmTest, MissingMandatoryKeyThrows) {
  std::string kvn = tle::to_omm_kvn(sample_tle());
  const auto pos = kvn.find("MEAN_MOTION =");
  kvn.erase(pos, kvn.find('\n', pos) - pos + 1);
  EXPECT_THROW((void)tle::from_omm_kvn(kvn), ParseError);
  EXPECT_THROW((void)tle::from_omm_kvn("EPOCH = 2023-01-01T00:00:00\n"),
               ParseError);
}

TEST(OmmTest, CatalogRoundTrip) {
  tle::TleCatalog catalog;
  tle::Tle a = sample_tle();
  catalog.add(a);
  a.epoch_jd += 0.5;
  catalog.add(a);
  a.catalog_number = 45400;
  catalog.add(a);

  tle::TleCatalog reloaded;
  EXPECT_EQ(tle::catalog_add_from_omm_kvn(reloaded,
                                          tle::catalog_to_omm_kvn(catalog)),
            3u);
  EXPECT_EQ(reloaded.record_count(), 3u);
  EXPECT_EQ(reloaded.satellites(), catalog.satellites());
}

TEST(OmmTest, BlocksWithoutBlankSeparatorsStillSplit) {
  // Two messages back-to-back: the CCSDS_OMM_VERS header starts a new block.
  const std::string two = tle::to_omm_kvn(sample_tle()) +
                          tle::to_omm_kvn([] {
                            tle::Tle t = sample_tle();
                            t.catalog_number = 45400;
                            return t;
                          }());
  tle::TleCatalog catalog;
  EXPECT_EQ(tle::catalog_add_from_omm_kvn(catalog, two), 2u);
}

// --------------------------------- merge ------------------------------------

TEST(MergeTest, AlignsSamplesWithDst) {
  // Dst: quiet except hour 48-51 at -150.
  std::vector<double> values(24 * 10, -10.0);
  for (int h = 48; h < 52; ++h) values[static_cast<std::size_t>(h)] = -150.0;
  const spaceweather::DstIndex dst(make_datetime(2023, 6, 1), std::move(values));
  const double jd0 = timeutil::to_julian(make_datetime(2023, 6, 1));

  std::vector<core::TrajectorySample> samples;
  for (double t = 0.0; t < 9.0; t += 0.25) {
    core::TrajectorySample s;
    s.epoch_jd = jd0 + t;
    s.altitude_km = 550.0;
    s.bstar = 2e-4;
    samples.push_back(s);
  }
  const core::SatelliteTrack track(1, std::move(samples));
  const auto aligned = core::align_track(track, dst);
  ASSERT_EQ(aligned.size(), track.size());

  // Sample at day 2.25 (hour 54): storm was within the prior 24 h.
  bool saw_storm_context = false;
  for (const auto& joined : aligned) {
    EXPECT_TRUE(joined.dst_available);
    if (joined.category == spaceweather::StormCategory::kModerate) {
      saw_storm_context = true;
      EXPECT_LE(joined.min_dst_24h_nt, -100.0);
    }
  }
  EXPECT_TRUE(saw_storm_context);
  // First sample: no storm before it.
  EXPECT_EQ(aligned.front().category, spaceweather::StormCategory::kQuiet);
}

TEST(MergeTest, UncoveredEpochsFlagged) {
  const spaceweather::DstIndex dst(make_datetime(2023, 6, 1),
                                   std::vector<double>(24, -10.0));
  std::vector<core::TrajectorySample> samples;
  core::TrajectorySample s;
  s.epoch_jd = timeutil::to_julian(make_datetime(2024, 1, 1));
  samples.push_back(s);
  const auto aligned =
      core::align_track(core::SatelliteTrack(1, std::move(samples)), dst);
  ASSERT_EQ(aligned.size(), 1u);
  EXPECT_FALSE(aligned[0].dst_available);
}

TEST(MergeTest, DragByCategorySeparatesStormSamples) {
  // Build Dst with a storm window and a track whose B* doubles during it.
  std::vector<double> values(24 * 20, -10.0);
  for (int h = 120; h < 132; ++h) values[static_cast<std::size_t>(h)] = -180.0;
  const spaceweather::DstIndex dst(make_datetime(2023, 6, 1), std::move(values));
  const double jd0 = timeutil::to_julian(make_datetime(2023, 6, 1));

  std::vector<core::SatelliteTrack> tracks;
  std::vector<core::TrajectorySample> samples;
  for (double t = 0.0; t < 19.0; t += 0.25) {
    core::TrajectorySample s;
    s.epoch_jd = jd0 + t;
    s.altitude_km = 550.0;
    const bool stormy = t >= 5.0 && t <= 6.0;  // hours 120..144
    s.bstar = stormy ? 4e-4 : 2e-4;
    samples.push_back(s);
  }
  tracks.emplace_back(1, std::move(samples));

  const auto rows = core::drag_by_category(tracks, dst);
  ASSERT_EQ(rows.size(), 5u);
  const auto& quiet = rows[0];
  const auto& moderate = rows[2];
  EXPECT_EQ(quiet.category, spaceweather::StormCategory::kQuiet);
  EXPECT_EQ(moderate.category, spaceweather::StormCategory::kModerate);
  EXPECT_GT(quiet.samples, 0u);
  EXPECT_GT(moderate.samples, 0u);
  EXPECT_GT(moderate.median_bstar, quiet.median_bstar * 1.5);
}

}  // namespace
}  // namespace cosmicdance
