# Empty compiler generated dependencies file for timeutil_test.
# This may be replaced when dependencies are built.
