file(REMOVE_RECURSE
  "CMakeFiles/ext_conjunctions.dir/ext_conjunctions.cpp.o"
  "CMakeFiles/ext_conjunctions.dir/ext_conjunctions.cpp.o.d"
  "ext_conjunctions"
  "ext_conjunctions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_conjunctions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
