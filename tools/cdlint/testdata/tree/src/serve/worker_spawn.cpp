// cdlint corpus: seeded violations for rule `thread-no-join` (R12).  The
// joins for keepers_ and stable live in worker_join.cpp: the rule resolves
// them cross-file through the subsystem join set and the move/range-for
// alias closure.
#include <thread>
#include <vector>

void run();

std::vector<std::thread> keepers_;
std::thread stable(run);  // negative: joined in worker_join.cpp

void start() {
  std::thread orphan(run);     // positive: never joined in src/serve
  std::thread(run);            // positive: temporary, no join/detach decision
  std::thread decided(run);
  decided.detach();            // negative: an explicit detach decision
  keepers_.emplace_back(run);  // negative: drained in worker_join.cpp
  (void)orphan;
}

void start_allowed() {
  // cdlint: allow(thread-no-join) corpus seed: harness teardown joins this outside the subsystem
  std::thread background(run);
  (void)background;
}
