// cdlint corpus: seeded violations for rule `counter-in-loop` (R5).
struct Counter {
  void bump();
};
struct Registry {
  Counter* counter(const char* name);
};
Counter* counter_or_null(Registry* registry, const char* name);

void tally(Registry* registry) {
  for (int i = 0; i < 8; ++i) {
    registry->counter("ticks")->bump();
  }
  int remaining = 3;
  while (remaining-- > 0) {
    Counter* slow = counter_or_null(registry, "drains");
    if (slow != nullptr) slow->bump();
  }
  // Hoisted handle: the sanctioned shape, no finding.
  Counter* ticks = counter_or_null(registry, "ticks");
  for (int i = 0; i < 8; ++i) {
    if (ticks != nullptr) ticks->bump();
  }
}
