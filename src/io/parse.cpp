#include "io/parse.hpp"

#include <cerrno>
#include <cstdlib>

namespace cosmicdance::io {

std::optional<double> parse_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE) return std::nullopt;
  return value;
}

std::optional<long> parse_long(const std::string& text) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return std::nullopt;
  return value;
}

std::optional<long> parse_leading_long(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || errno == ERANGE) return std::nullopt;
  return value;
}

}  // namespace cosmicdance::io
