file(REMOVE_RECURSE
  "CMakeFiles/cosmicdance.dir/cosmicdance_cli.cpp.o"
  "CMakeFiles/cosmicdance.dir/cosmicdance_cli.cpp.o.d"
  "cosmicdance"
  "cosmicdance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmicdance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
