// Small file helpers shared by catalog loaders and format readers.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cosmicdance::io {

/// Read a whole file as text.  Throws IoError when unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

/// Read a file as lines (\n or \r\n, terminators stripped).
[[nodiscard]] std::vector<std::string> read_lines(const std::string& path);

/// Write text to a file, replacing its contents.  Throws IoError on failure.
void write_file(const std::string& path, const std::string& content);

/// Append bytes to the end of an existing file (created if missing).
/// Throws IoError on failure.  Not atomic: a caller whose format cannot
/// detect a torn tail (the snapshot delta chain can, via per-layer
/// size/CRC checks) should write-and-rename instead.
void append_file(const std::string& path, std::string_view content);

/// A read-only view of a whole file, preferring mmap (zero-copy) with a
/// portable read-whole-file fallback.  The ingestion fast path parses
/// std::string_view slices of the mapping directly, so no per-line or
/// per-record strings are materialised; `view()` stays valid for the
/// lifetime of the MappedFile.
///
/// The fallback (and `Mode::kFallbackRead`, which forces it — differential
/// tests prove both readers byte-identical) pre-sizes one buffer from the
/// file length, so even without mmap the file is read with a single
/// allocation.  Throws IoError when the file cannot be opened or read.
class MappedFile {
 public:
  enum class Mode {
    kAuto,          ///< mmap when available, else read the whole file
    kFallbackRead,  ///< always use the portable read path
  };

  explicit MappedFile(const std::string& path, Mode mode = Mode::kAuto);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// The file's bytes.  Valid for the lifetime of this object.
  [[nodiscard]] std::string_view view() const noexcept { return view_; }
  [[nodiscard]] std::size_t size() const noexcept { return view_.size(); }
  /// True when the view is backed by an actual memory mapping.
  [[nodiscard]] bool is_mapped() const noexcept { return map_ != nullptr; }

 private:
  void release() noexcept;

  void* map_ = nullptr;          ///< mmap base (nullptr on the fallback path)
  std::size_t map_size_ = 0;     ///< mapped length (may exceed view size)
  std::string fallback_;         ///< owning buffer on the fallback path
  std::string_view view_;
};

}  // namespace cosmicdance::io
