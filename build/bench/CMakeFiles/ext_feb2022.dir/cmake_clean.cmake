file(REMOVE_RECURSE
  "CMakeFiles/ext_feb2022.dir/ext_feb2022.cpp.o"
  "CMakeFiles/ext_feb2022.dir/ext_feb2022.cpp.o.d"
  "ext_feb2022"
  "ext_feb2022.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_feb2022.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
