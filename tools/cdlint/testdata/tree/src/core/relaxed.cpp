// cdlint corpus: seeded violations for rule `relaxed-order` (R14).
#include <atomic>

std::atomic<unsigned long> published_{0};

void publish(unsigned long value) {
  published_.store(value, std::memory_order_relaxed);  // positive
}

unsigned long read_allowed() {
  // cdlint: allow(relaxed-order) corpus seed: monotonic watermark, readers tolerate staleness
  return published_.load(std::memory_order_relaxed);
}
