// cdlint corpus: negative scope case for rule `relaxed-order` (R14) — the
// obs counter idiom owns relaxed bumps: commuting increments publish no
// state, so src/obs/ is exempt.
#include <atomic>

std::atomic<unsigned long> bumps_{0};

void bump() { bumps_.fetch_add(1, std::memory_order_relaxed); }
