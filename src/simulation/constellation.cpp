#include "simulation/constellation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "atmosphere/drag.hpp"
#include "atmosphere/exponential.hpp"
#include "atmosphere/storm_density.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "orbit/elements.hpp"
#include "timeutil/hour_axis.hpp"

namespace cosmicdance::simulation {
namespace {

double wrap_deg(double deg) noexcept {
  double wrapped = std::fmod(deg, 360.0);
  if (wrapped < 0.0) wrapped += 360.0;
  return wrapped;
}

std::string designator_for(const timeutil::DateTime& launch, int batch_index,
                           int piece) {
  // e.g. "19074A" style: launch year + launch number + piece letter(s).
  char buffer[16];
  const char piece_letter = static_cast<char>('A' + piece % 26);
  std::snprintf(buffer, sizeof(buffer), "%02d%03d%c", launch.year % 100,
                (batch_index % 999) + 1, piece_letter);
  return buffer;
}

}  // namespace

ConstellationSimulator::ConstellationSimulator(ConstellationConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.step_hours <= 0.0) {
    throw ValidationError("simulation step must be positive");
  }
  if (timeutil::hours_between(config_.start, config_.end) <= 0.0) {
    throw ValidationError("simulation end must come after its start");
  }
  std::sort(config_.launches.begin(), config_.launches.end(),
            [](const LaunchBatch& a, const LaunchBatch& b) {
              return timeutil::to_julian(a.time) < timeutil::to_julian(b.time);
            });
  next_catalog_ = config_.first_catalog_number;
}

double ConstellationSimulator::density_ratio(const SatelliteState& satellite,
                                             double jd) const noexcept {
  // The observed drag proxy (B*) is fitted over a day-scale tracking arc and
  // the thermosphere stays expanded for hours after a storm peak, so expose
  // the worst enhancement over the trailing 24 hours rather than the
  // instantaneous value.
  if (config_.dst == nullptr) return 1.0;
  const timeutil::HourIndex now = timeutil::hour_index_from_julian(jd);
  double worst = 1.0;
  for (timeutil::HourIndex hour = now - 24; hour <= now; ++hour) {
    if (!config_.dst->covers(hour)) continue;
    worst = std::max(worst, atmosphere::storm_enhancement_factor(
                                satellite.altitude_km, config_.dst->at(hour)));
  }
  return worst;
}

void ConstellationSimulator::launch_due_batches(double jd, SimulationResult& result) {
  while (next_launch_ < config_.launches.size()) {
    const LaunchBatch& batch = config_.launches[next_launch_];
    if (timeutil::to_julian(batch.time) > jd) break;
    const double launch_jd = timeutil::to_julian(batch.time);
    if (batch.first_catalog_number > 0) next_catalog_ = batch.first_catalog_number;
    for (int piece = 0; piece < batch.count; ++piece) {
      SatelliteState satellite;
      satellite.catalog_number = next_catalog_++;
      satellite.international_designator =
          designator_for(batch.time, static_cast<int>(next_launch_), piece);
      satellite.config = batch.satellite;
      satellite.mode = SatelliteMode::kStaging;
      satellite.altitude_km =
          batch.satellite.staging_altitude_km + rng_.normal(0.0, 2.0);
      satellite.raan_deg = wrap_deg(batch.raan_deg + rng_.normal(0.0, 0.3));
      satellite.arg_perigee_deg = rng_.uniform(0.0, 360.0);
      // Spread the batch along the orbit.
      satellite.mean_anomaly_deg =
          wrap_deg(360.0 * piece / std::max(batch.count, 1) +
                   rng_.normal(0.0, 1.0));
      satellite.launch_jd = launch_jd;
      satellite.staging_until_jd =
          launch_jd + batch.staging_days + rng_.uniform(-5.0, 5.0);
      satellite.deorbit_after_jd =
          launch_jd + config_.lifetime_years * 365.25 + rng_.normal(0.0, 90.0);
      if (batch.prelaunched) {
        satellite.mode = SatelliteMode::kOperational;
        satellite.altitude_km = batch.satellite.target_altitude_km;
      }
      satellites_.push_back(std::move(satellite));
      satellite_rngs_.push_back(rng_.split());
      // First observation lands shortly after launch.
      next_observation_jd_.push_back(launch_jd + rng_.uniform(0.05, 0.5));
      ++result.launched;
    }
    ++next_launch_;
  }
}

void ConstellationSimulator::apply_forced_failures(double jd, double dt_hours,
                                                   SimulationResult& result) {
  for (const ForcedFailure& forced : config_.forced_failures) {
    const double at_jd = timeutil::to_julian(forced.at);
    if (at_jd < jd || at_jd >= jd + dt_hours / units::kHoursPerDay) continue;
    for (SatelliteState& satellite : satellites_) {
      if (satellite.catalog_number != forced.catalog_number ||
          !satellite.tracked()) {
        continue;
      }
      switch (forced.kind) {
        case FailureKind::kTemporaryOutage:
          satellite.mode = SatelliteMode::kOutage;
          satellite.outage_until_jd = jd + forced.outage_days;
          break;
        case FailureKind::kPermanentDecay:
        case FailureKind::kStagingReentry:
          satellite.mode = SatelliteMode::kDecaying;
          break;
      }
      result.failures.push_back({satellite.catalog_number, jd, forced.kind});
    }
  }
}

void ConstellationSimulator::step_satellite(SatelliteState& satellite, double jd,
                                            double dt_hours, double dst_nt,
                                            SimulationResult& result,
                                            Rng& satellite_rng) {
  const double dt_days = dt_hours / units::kHoursPerDay;

  // ---- dynamics -----------------------------------------------------------
  // Controlled modes (staging hold, raising, station keeping, controlled
  // de-orbit) have electric propulsion dominating drag, so their altitude
  // follows the controller; only uncontrolled modes free-fall under drag.
  const double target = satellite.config.target_altitude_km;
  switch (satellite.mode) {
    case SatelliteMode::kStaging:
      // Held at the staging orbit during checkout.
      satellite.altitude_km = satellite.config.staging_altitude_km;
      if (jd >= satellite.staging_until_jd) satellite.mode = SatelliteMode::kRaising;
      break;
    case SatelliteMode::kRaising:
      satellite.altitude_km += config_.raising_km_per_day * dt_days;
      if (satellite.altitude_km >= target) {
        satellite.altitude_km = target;
        satellite.mode = SatelliteMode::kOperational;
      }
      break;
    case SatelliteMode::kOperational: {
      const double ratio =
          atmosphere::storm_enhancement_factor(satellite.altitude_km, dst_nt);
      const double rho = atmosphere::density_kg_m3(satellite.altitude_km) * ratio;
      satellite.altitude_km += atmosphere::circular_decay_rate_km_per_day(
                                   satellite.altitude_km, rho,
                                   satellite.ballistic_m2_kg()) *
                               dt_days;
      if (jd >= satellite.deorbit_after_jd) {
        satellite.mode = SatelliteMode::kDeorbiting;
      } else if (satellite.altitude_km < target - config_.deadband_km) {
        satellite.altitude_km +=
            std::min(config_.boost_km_per_day * dt_days,
                     target - satellite.altitude_km);
      } else if (satellite.altitude_km > target + config_.deadband_km) {
        // Station keeping works both ways: lower back after upward drift
        // (manoeuvre overshoot) so the shell assignment holds.
        satellite.altitude_km -=
            std::min(config_.boost_km_per_day * dt_days,
                     satellite.altitude_km - target);
      } else if (satellite_rng.bernoulli(config_.maneuver_probability_per_day *
                                         dt_days)) {
        // Phasing / conjunction-avoidance manoeuvre: a small altitude nudge.
        satellite.altitude_km += std::clamp(
            satellite_rng.normal(0.0, config_.maneuver_sigma_km), -2.0, 2.0);
      }
      break;
    }
    case SatelliteMode::kOutage:
    case SatelliteMode::kDecaying: {
      const double ratio =
          atmosphere::storm_enhancement_factor(satellite.altitude_km, dst_nt);
      const double rho = atmosphere::density_kg_m3(satellite.altitude_km) * ratio;
      satellite.altitude_km += atmosphere::circular_decay_rate_km_per_day(
                                   satellite.altitude_km, rho,
                                   satellite.ballistic_m2_kg()) *
                               dt_days;
      if (satellite.mode == SatelliteMode::kOutage &&
          jd >= satellite.outage_until_jd) {
        satellite.mode = SatelliteMode::kRaising;
        const FailureModel& fm = config_.failures;
        if (satellite_rng.bernoulli(fm.retarget_probability)) {
          satellite.config.target_altitude_km -= satellite_rng.uniform(
              fm.retarget_min_km, fm.retarget_max_km);
        }
      }
      break;
    }
    case SatelliteMode::kDeorbiting:
      satellite.altitude_km -= config_.deorbit_km_per_day * dt_days;
      break;
    case SatelliteMode::kReentered:
      break;
  }

  if (satellite.altitude_km <= config_.reentry_altitude_km &&
      satellite.mode != SatelliteMode::kReentered) {
    satellite.mode = SatelliteMode::kReentered;
    ++result.reentered;
    return;
  }

  // ---- element evolution (J2 secular + mean motion) -----------------------
  const double inclination = satellite.config.inclination_deg;
  satellite.raan_deg = wrap_deg(
      satellite.raan_deg +
      raan_rate_deg_per_day(satellite.altitude_km, inclination) * dt_days);
  satellite.arg_perigee_deg = wrap_deg(
      satellite.arg_perigee_deg +
      argp_rate_deg_per_day(satellite.altitude_km, inclination) * dt_days);
  satellite.mean_anomaly_deg = wrap_deg(
      satellite.mean_anomaly_deg +
      360.0 * orbit::mean_motion_from_altitude_km(satellite.altitude_km) * dt_days);

  // ---- storm-induced failures ---------------------------------------------
  const FailureModel& fm = config_.failures;
  if (!fm.enabled || dst_nt > -fm.onset_nt) return;
  const double mitigation = fm.proactive_response ? fm.proactive_scale : 1.0;

  if (satellite.mode == SatelliteMode::kStaging ||
      satellite.mode == SatelliteMode::kRaising) {
    if (-dst_nt >= fm.staging_loss_onset_nt) {
      const double excess = (-dst_nt - fm.staging_loss_onset_nt) / 100.0;
      const double p = fm.staging_loss_scale * excess * mitigation * dt_hours;
      if (satellite_rng.bernoulli(p)) {
        satellite.mode = SatelliteMode::kDecaying;
        result.failures.push_back(
            {satellite.catalog_number, jd, FailureKind::kStagingReentry});
      }
    }
    return;
  }

  if (satellite.mode == SatelliteMode::kOperational) {
    const double excess = (-dst_nt - fm.onset_nt) / 100.0;
    if (excess <= 0.0) return;
    const double p =
        std::min(fm.rate_scale * std::pow(excess, fm.exponent),
                 fm.max_hourly_probability) *
        mitigation * dt_hours;
    if (satellite_rng.bernoulli(p)) {
      if (satellite_rng.bernoulli(fm.permanent_fraction)) {
        satellite.mode = SatelliteMode::kDecaying;
        result.failures.push_back(
            {satellite.catalog_number, jd, FailureKind::kPermanentDecay});
      } else {
        satellite.mode = SatelliteMode::kOutage;
        satellite.outage_until_jd =
            jd + satellite_rng.exponential(fm.outage_mean_days);
        result.failures.push_back(
            {satellite.catalog_number, jd, FailureKind::kTemporaryOutage});
      }
    }
  }
}

SimulationResult ConstellationSimulator::run() {
  SimulationResult result;
  TrackingSimulator tracker(config_.tracking, rng_.split()());

  const double start_jd = timeutil::to_julian(config_.start);
  const double end_jd = timeutil::to_julian(config_.end);
  const double dt_hours = config_.step_hours;
  const double dt_days = dt_hours / units::kHoursPerDay;

  double last_truth_jd = start_jd - 1.0;
  for (double jd = start_jd; jd < end_jd; jd += dt_days) {
    launch_due_batches(jd, result);
    apply_forced_failures(jd, dt_hours, result);

    double dst_nt = 0.0;
    if (config_.dst != nullptr) {
      const timeutil::HourIndex hour = timeutil::hour_index_from_julian(jd);
      if (config_.dst->covers(hour)) dst_nt = config_.dst->at(hour);
    }

    const bool record_truth_now =
        config_.record_truth && jd - last_truth_jd >= 1.0;
    for (std::size_t i = 0; i < satellites_.size(); ++i) {
      SatelliteState& satellite = satellites_[i];
      if (!satellite.tracked()) continue;
      step_satellite(satellite, jd, dt_hours, dst_nt, result, satellite_rngs_[i]);
      if (!satellite.tracked()) continue;

      if (jd >= next_observation_jd_[i]) {
        const double ratio = density_ratio(satellite, jd);
        const double rho =
            atmosphere::density_kg_m3(satellite.altitude_km) * ratio;
        const double decay = atmosphere::circular_decay_rate_km_per_day(
            satellite.altitude_km, rho, satellite.ballistic_m2_kg());
        result.catalog.add(tracker.observe(satellite, jd, ratio, decay));
        next_observation_jd_[i] = tracker.next_observation_jd(jd);
      }

      if (record_truth_now) {
        result.truth[satellite.catalog_number].push_back(
            {jd, satellite.altitude_km, satellite.mode, density_ratio(satellite, jd)});
      }
    }
    if (record_truth_now) last_truth_jd = jd;
  }

  for (const SatelliteState& satellite : satellites_) {
    if (satellite.tracked()) ++result.tracked_at_end;
  }
  return result;
}

}  // namespace cosmicdance::simulation
