#include "tle/tle.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <system_error>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/error.hpp"
#include "orbit/elements.hpp"

namespace cosmicdance::tle {
namespace {

// <cctype> classification resolves through a per-call locale table lookup,
// which the field parsers pay hundreds of times per record.  TLE lines are
// ASCII by definition, so classify bytes directly; both helpers agree with
// the "C"-locale std::isspace/std::isdigit on every char value.
constexpr bool ascii_space(char c) noexcept {
  return c == ' ' || (c >= '\t' && c <= '\r');
}

constexpr bool ascii_digit(char c) noexcept { return c >= '0' && c <= '9'; }

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && ascii_space(s[begin])) ++begin;
  while (end > begin && ascii_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

/// Extract columns [from, to] (1-indexed, inclusive) of a line.
std::string_view field(std::string_view line, int from, int to) {
  return line.substr(static_cast<std::size_t>(from - 1),
                     static_cast<std::size_t>(to - from + 1));
}

/// NUL-terminated stack copy of a field view (optionally with a literal
/// prefix) for strtod/strtol, which need terminated input.  check_line has
/// already bounded every field to a 69-character line, so nothing here can
/// approach the buffer size; the allocation-free copy is what keeps the
/// zero-copy parse path free of per-field strings.
class FieldBuffer {
 public:
  explicit FieldBuffer(std::string_view text) { append(text); }
  FieldBuffer(std::string_view prefix, std::string_view text) {
    append(prefix);
    append(text);
  }
  [[nodiscard]] const char* c_str() const noexcept { return buffer_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  void append(std::string_view text) {
    const std::size_t take = std::min(text.size(), sizeof(buffer_) - 1 - size_);
    if (take > 0) std::memcpy(buffer_ + size_, text.data(), take);
    size_ += take;
    buffer_[size_] = '\0';
  }
  char buffer_[80];
  std::size_t size_ = 0;
};

// Exact powers of ten: 10^k is an exact double for k <= 22, far past the
// widest TLE field.  Indexed as kPow10[k].
constexpr double kPow10[19] = {1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,
                               1e7,  1e8,  1e9,  1e10, 1e11, 1e12, 1e13,
                               1e14, 1e15, 1e16, 1e17, 1e18};

/// Exact fast path for the plain fixed-width decimals TLE uses: optional
/// sign, digits with at most one '.', no exponent, <= 15 significant
/// digits.  The digits fit a 64-bit integer exactly and 10^frac is an
/// exact double, so mantissa/10^frac is a single correctly-rounded IEEE
/// divide — bit-identical to what strtod/from_chars produce for the same
/// literal.  Anything fancier (exponents, hex, overlong, malformed)
/// returns false and takes the general path, keeping accept/reject
/// semantics exact.
bool parse_simple_decimal(std::string_view text, double& out) {
  std::size_t i = 0;
  bool negative = false;
  if (text[0] == '-') {
    negative = true;
    i = 1;
  } else if (text[0] == '+') {
    i = 1;
  }
  std::uint64_t mantissa = 0;
  int digits = 0;
  int frac_digits = -1;  // -1 until a '.' is seen
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (ascii_digit(c)) {
      if (++digits > 15) return false;
      mantissa = mantissa * 10 + static_cast<std::uint64_t>(c - '0');
      if (frac_digits >= 0) ++frac_digits;
      continue;
    }
    if (c == '.' && frac_digits < 0) {
      frac_digits = 0;
      continue;
    }
    return false;
  }
  if (digits == 0) return false;
  const double magnitude =
      static_cast<double>(mantissa) / kPow10[frac_digits > 0 ? frac_digits : 0];
  out = negative ? -magnitude : magnitude;
  return true;
}

double parse_double_field(std::string_view line, int from, int to,
                          const char* what) {
  const std::string_view text = trim(field(line, from, to));
  if (text.empty()) return 0.0;
  double value = 0.0;
  if (parse_simple_decimal(text, value)) return value;
  // Fast path: std::from_chars is correctly rounded, so every value it
  // produces is bit-identical to strtod's.  It differs from strtod only in
  // what it *accepts* (no leading '+', no hex floats, stricter range
  // handling), so anything it does not fully consume falls through to the
  // historical strtod path below, keeping accept/reject semantics exact.
  std::string_view body = text;
  if (body.front() == '+' && body.size() > 1 &&
      (ascii_digit(body[1]) || body[1] == '.')) {
    body.remove_prefix(1);
  }
  const auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value);
  if (ec == std::errc{} && ptr == body.data() + body.size()) return value;
  const FieldBuffer terminated(text);
  char* end = nullptr;
  value = std::strtod(terminated.c_str(), &end);
  if (end == terminated.c_str() || *end != '\0') {
    throw ParseError(std::string("bad TLE field '") + what + "': '" +
                         std::string(text) + "'",
                     ErrorCategory::kNumeric);
  }
  return value;
}

int parse_int_field(std::string_view line, int from, int to, const char* what) {
  const std::string_view text = trim(field(line, from, to));
  if (text.empty()) return 0;
  // All-digit fast loop first (every well-formed TLE integer field lands
  // here); anything else falls through to the historical conversion chain.
  if (text.size() <= 9) {
    long fast = 0;
    std::size_t i = text[0] == '-' || text[0] == '+' ? 1 : 0;
    if (i < text.size()) {
      std::size_t j = i;
      for (; j < text.size() && ascii_digit(text[j]); ++j) {
        fast = fast * 10 + (text[j] - '0');
      }
      if (j == text.size()) {
        return static_cast<int>(text[0] == '-' ? -fast : fast);
      }
    }
  }
  // Same fast-path/fallback split as parse_double_field.
  std::string_view body = text;
  if (body.front() == '+' && body.size() > 1 &&
      ascii_digit(body[1])) {
    body.remove_prefix(1);
  }
  long value = 0;
  const auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value);
  if (ec == std::errc{} && ptr == body.data() + body.size()) {
    return static_cast<int>(value);
  }
  const FieldBuffer terminated(text);
  char* end = nullptr;
  value = std::strtol(terminated.c_str(), &end, 10);
  if (end == terminated.c_str() || *end != '\0') {
    throw ParseError(std::string("bad TLE field '") + what + "': '" +
                         std::string(text) + "'",
                     ErrorCategory::kNumeric);
  }
  return static_cast<int>(value);
}

/// Parse an "assumed leading decimal point" all-digit field (the line-2
/// eccentricity: "0123456" means 0.0123456).  Any non-digit is an error —
/// an unchecked strtod here would silently read garbage as a truncated
/// value or 0.0 and corrupt the eccentricity series.
double parse_assumed_decimal_field(std::string_view line, int from, int to,
                                   const char* what) {
  const std::string_view raw = field(line, from, to);
  const std::string_view text = trim(raw);
  if (text.empty()) return 0.0;
  // The decimal point is assumed *before the full-width field*, so padding
  // shifts the magnitude: trimming " 006703" to "006703" would misread
  // 0.0006703 as 0.006703.  Demand digits across the whole field.
  if (text.size() != raw.size()) {
    throw ParseError(std::string("bad TLE field '") + what +
                         "' (padded assumed-decimal field): '" + std::string(raw) +
                         "'",
                     ErrorCategory::kNumeric);
  }
  for (const char c : text) {
    if (!ascii_digit(c)) {
      throw ParseError(std::string("bad TLE field '") + what +
                           "' (want digits): '" + std::string(text) + "'",
                       ErrorCategory::kNumeric);
    }
  }
  // All-digits was just validated.  For fields this narrow the value is
  // mantissa/10^width, a single correctly-rounded divide of two exact
  // doubles — bit-identical to converting the composed "0.NNNNNNN" literal.
  if (text.size() <= 15) {
    std::uint64_t mantissa = 0;
    for (const char c : text) {
      mantissa = mantissa * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return static_cast<double>(mantissa) / kPow10[text.size()];
  }
  const FieldBuffer literal("0.", text);
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(literal.c_str(), literal.c_str() + literal.size(), value);
  if (ec != std::errc{} || end != literal.c_str() + literal.size()) {
    throw ParseError(std::string("bad TLE field '") + what + "': '" +
                         std::string(text) + "'",
                     ErrorCategory::kNumeric);
  }
  return value;
}

/// Parse the "assumed decimal point" exponent notation, e.g. " 12345-3"
/// meaning +0.12345e-3.  An all-spaces or zero field yields 0.
double parse_exponent_field(std::string_view line, int from, int to,
                            const char* what) {
  const std::string_view raw = field(line, from, to);
  const std::string_view text = trim(raw);
  if (text.empty() || text == "00000-0" || text == "00000+0") return 0.0;
  double sign = 1.0;
  std::size_t i = 0;
  if (text[i] == '-') {
    sign = -1.0;
    ++i;
  } else if (text[i] == '+') {
    ++i;
  }
  const std::size_t mantissa_begin = i;
  while (i < text.size() && ascii_digit(text[i])) {
    ++i;
  }
  const std::string_view mantissa_digits =
      text.substr(mantissa_begin, i - mantissa_begin);
  if (mantissa_digits.empty() || i >= text.size()) {
    throw ParseError(std::string("bad TLE exponent field '") + what + "': '" +
                         std::string(raw) + "'",
                     ErrorCategory::kNumeric);
  }
  double exp_sign = 1.0;
  if (text[i] == '-') exp_sign = -1.0;
  else if (text[i] != '+') {
    throw ParseError(std::string("bad exponent sign in TLE field '") + what +
                         "': '" + std::string(raw) + "'",
                     ErrorCategory::kNumeric);
  }
  ++i;
  if (i >= text.size() || !ascii_digit(text[i]) ||
      i + 1 != text.size()) {
    throw ParseError(std::string("bad exponent digit in TLE field '") + what +
                         "': '" + std::string(raw) + "'",
                     ErrorCategory::kNumeric);
  }
  const int exponent = text[i] - '0';
  double mantissa = 0.0;
  if (mantissa_digits.size() <= 15) {
    // The digits were validated above; mantissa/10^width is one
    // correctly-rounded divide of exact doubles, bit-identical to
    // converting the composed "0.NNNNN" literal (see parse_simple_decimal).
    std::uint64_t units = 0;
    for (const char c : mantissa_digits) {
      units = units * 10 + static_cast<std::uint64_t>(c - '0');
    }
    mantissa = static_cast<double>(units) / kPow10[mantissa_digits.size()];
  } else {
    const FieldBuffer mantissa_literal("0.", mantissa_digits);
    const auto [end, ec] = std::from_chars(
        mantissa_literal.c_str(),
        mantissa_literal.c_str() + mantissa_literal.size(), mantissa);
    if (ec != std::errc{} ||
        end != mantissa_literal.c_str() + mantissa_literal.size()) {
      throw ParseError(std::string("bad TLE exponent mantissa in field '") +
                           what + "': '" + std::string(raw) + "'",
                       ErrorCategory::kNumeric);
    }
  }
  // Decimal literals are correctly rounded, so these table entries are
  // bit-identical to what std::pow(10.0, n) returns for |n| <= 9 (glibc's
  // pow is correctly rounded); the lookup just skips the libm call.
  static constexpr double kNegPow10[10] = {1e0,  1e-1, 1e-2, 1e-3, 1e-4,
                                           1e-5, 1e-6, 1e-7, 1e-8, 1e-9};
  const double scale =
      exp_sign < 0.0 ? kNegPow10[exponent] : kPow10[exponent];
  return sign * mantissa * scale;
}

/// Format a value in assumed-decimal-point exponent notation (8 chars).
std::string format_exponent_field(double value) {
  // Zero uses the classic " 00000-0" spelling (what CSpOC emits).
  if (value == 0.0) return " 00000-0";
  const char sign = value < 0.0 ? '-' : ' ';
  double magnitude = std::fabs(value);
  int exponent = 0;
  // Normalise to 0.1 <= magnitude < 1 so the mantissa has no leading zero.
  while (magnitude >= 1.0) {
    magnitude /= 10.0;
    ++exponent;
  }
  while (magnitude < 0.1) {
    magnitude *= 10.0;
    --exponent;
  }
  auto mantissa = static_cast<long>(std::llround(magnitude * 100000.0));
  if (mantissa >= 100000) {  // rounding pushed e.g. 0.999999 to 1.0
    mantissa = 10000;
    ++exponent;
  }
  // The exponent column is a single digit.  Values below 1e-10 are encoded
  // with leading zeros in the mantissa (e.g. 5.4e-11 -> " 05400-9"); values
  // too small even for that round to the zero spelling.
  while (exponent < -9 && mantissa > 0) {
    mantissa /= 10;
    ++exponent;
  }
  if (mantissa == 0) return " 00000-0";
  if (exponent > 9) {
    throw ValidationError("value out of TLE exponent-field range: " +
                          std::to_string(value));
  }
  // 48 covers the worst case the compiler assumes for %05ld + %1d (it
  // cannot see that mantissa/exponent are range-checked above).
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%c%05ld%c%1d", sign, mantissa,
                exponent < 0 ? '-' : '+', std::abs(exponent));
  return buffer;
}

/// Format ndot/2: sign, then ".NNNNNNNN" (10 chars total).
std::string format_ndot_field(double value) {
  if (std::fabs(value) >= 1.0) {
    throw ValidationError("|ndot/2| must be < 1 rev/day^2 for TLE format: " +
                          std::to_string(value));
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%c.%08ld", value < 0.0 ? '-' : ' ',
                std::labs(std::lround(std::fabs(value) * 1e8)));
  return buffer;
}

void check_line(std::string_view line, char expected_number) {
  if (line.size() != 69) {
    throw ParseError("TLE line must be 69 characters, got " +
                         std::to_string(line.size()) + ": '" + std::string(line) +
                         "'",
                     ErrorCategory::kSyntax);
  }
  if (line[0] != expected_number) {
    throw ParseError(std::string("TLE line must start with '") + expected_number +
                         "': '" + std::string(line) + "'",
                     ErrorCategory::kSyntax);
  }
  const int expected = checksum(line.substr(0, 68));
  const char checks = line[68];
  if (!ascii_digit(checks) ||
      checks - '0' != expected) {
    throw ParseError("TLE checksum mismatch (expected " + std::to_string(expected) +
                         "): '" + std::string(line) + "'",
                     ErrorCategory::kChecksum);
  }
}

}  // namespace

namespace {

/// Per-character checksum contribution ('0'-'9' count their value, '-'
/// counts 1, everything else 0), precomputed so the hot loop is a
/// branch-free table walk.
constexpr std::array<unsigned char, 256> make_checksum_table() {
  std::array<unsigned char, 256> table{};
  for (int c = '0'; c <= '9'; ++c) {
    table[static_cast<std::size_t>(c)] = static_cast<unsigned char>(c - '0');
  }
  table[static_cast<std::size_t>('-')] = 1;
  return table;
}

constexpr std::array<unsigned char, 256> kChecksumTable = make_checksum_table();

}  // namespace

int checksum(std::string_view line) {
  unsigned sum = 0;
  const char* data = line.data();
  std::size_t n = line.size();
#if defined(__SSE2__)
  // Vectorised digit sum: classify 16 bytes at a time ('0'..'9' add their
  // value, '-' adds 1) and horizontally accumulate with psadbw.  Exact
  // integer arithmetic, so the result is identical to the scalar loop.
  // Signed byte compares are safe: '0'..'9' sit below 0x80, and bytes with
  // the high bit set read as negative and fail the lower-bound compare.
  if (n >= 16) {
    const __m128i zero = _mm_setzero_si128();
    const __m128i below_zero_char = _mm_set1_epi8('0' - 1);
    const __m128i above_nine_char = _mm_set1_epi8('9' + 1);
    const __m128i zero_char = _mm_set1_epi8('0');
    const __m128i dash_char = _mm_set1_epi8('-');
    const __m128i one = _mm_set1_epi8(1);
    __m128i acc = zero;
    do {
      const __m128i c =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data));
      const __m128i digit = _mm_and_si128(_mm_cmpgt_epi8(c, below_zero_char),
                                          _mm_cmpgt_epi8(above_nine_char, c));
      const __m128i value = _mm_and_si128(_mm_sub_epi8(c, zero_char), digit);
      const __m128i dashes =
          _mm_and_si128(_mm_cmpeq_epi8(c, dash_char), one);
      // value <= 9 and the dash mask is disjoint from the digit mask, so
      // the per-byte total never overflows; psadbw against zero sums it.
      acc = _mm_add_epi64(acc, _mm_sad_epu8(_mm_add_epi8(value, dashes), zero));
      data += 16;
      n -= 16;
    } while (n >= 16);
    acc = _mm_add_epi64(acc, _mm_srli_si128(acc, 8));
    sum = static_cast<unsigned>(_mm_cvtsi128_si64(acc));
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    sum += kChecksumTable[static_cast<unsigned char>(data[i])];
  }
  return static_cast<int>(sum % 10);
}

timeutil::DateTime Tle::epoch_datetime() const {
  return timeutil::from_julian(epoch_jd);
}

double Tle::altitude_km() const {
  return orbit::altitude_km_from_mean_motion(mean_motion_revday);
}

void Tle::validate() const {
  if (catalog_number < 1 || catalog_number > 99999) {
    throw ValidationError("catalog number outside 1..99999: " +
                          std::to_string(catalog_number));
  }
  if (eccentricity < 0.0 || eccentricity >= 1.0) {
    throw ValidationError("TLE eccentricity outside [0,1): " +
                          std::to_string(eccentricity));
  }
  if (inclination_deg < 0.0 || inclination_deg > 180.0) {
    throw ValidationError("TLE inclination outside [0,180]: " +
                          std::to_string(inclination_deg));
  }
  if (mean_motion_revday <= 0.0 || mean_motion_revday >= 20.0) {
    throw ValidationError("TLE mean motion outside (0,20) rev/day: " +
                          std::to_string(mean_motion_revday));
  }
  if (epoch_jd <= 0.0) throw ValidationError("TLE epoch not set");
}

Tle parse_tle(std::string_view line1, std::string_view line2) {
  check_line(line1, '1');
  check_line(line2, '2');

  Tle tle;
  tle.catalog_number = parse_int_field(line1, 3, 7, "catalog number");
  const int catalog2 = parse_int_field(line2, 3, 7, "catalog number (line 2)");
  if (tle.catalog_number != catalog2) {
    throw ParseError("catalog number mismatch between TLE lines: " +
                         std::to_string(tle.catalog_number) + " vs " +
                         std::to_string(catalog2),
                     ErrorCategory::kStructure);
  }
  tle.classification = line1[7];
  tle.international_designator = trim(field(line1, 10, 17));

  const int epoch_year = parse_int_field(line1, 19, 20, "epoch year");
  const double epoch_doy = parse_double_field(line1, 21, 32, "epoch day");
  tle.epoch_jd = timeutil::tle_epoch_to_julian(epoch_year, epoch_doy);

  tle.mean_motion_dot = parse_double_field(line1, 34, 43, "ndot/2");
  tle.mean_motion_ddot = parse_exponent_field(line1, 45, 52, "nddot/6");
  tle.bstar = parse_exponent_field(line1, 54, 61, "bstar");
  tle.ephemeris_type = parse_int_field(line1, 63, 63, "ephemeris type");
  tle.element_set_number = parse_int_field(line1, 65, 68, "element set number");

  tle.inclination_deg = parse_double_field(line2, 9, 16, "inclination");
  tle.raan_deg = parse_double_field(line2, 18, 25, "raan");
  tle.eccentricity = parse_assumed_decimal_field(line2, 27, 33, "eccentricity");
  tle.arg_perigee_deg = parse_double_field(line2, 35, 42, "argument of perigee");
  tle.mean_anomaly_deg = parse_double_field(line2, 44, 51, "mean anomaly");
  tle.mean_motion_revday = parse_double_field(line2, 53, 63, "mean motion");
  tle.rev_number = parse_int_field(line2, 64, 68, "rev number");

  tle.validate();
  return tle;
}

TleLines format_tle(const Tle& tle) {
  tle.validate();

  int epoch_year = 0;
  double epoch_doy = 0.0;
  timeutil::julian_to_tle_epoch(tle.epoch_jd, epoch_year, epoch_doy);

  char line1[80];
  std::snprintf(line1, sizeof(line1),
                "1 %05d%c %-8s %02d%012.8f %s %s %s %1d %4d", tle.catalog_number,
                tle.classification, tle.international_designator.c_str(),
                epoch_year, epoch_doy, format_ndot_field(tle.mean_motion_dot).c_str(),
                format_exponent_field(tle.mean_motion_ddot).c_str(),
                format_exponent_field(tle.bstar).c_str(), tle.ephemeris_type,
                tle.element_set_number % 10000);

  const auto ecc_digits =
      static_cast<long>(std::llround(tle.eccentricity * 1e7));
  char line2[80];
  std::snprintf(line2, sizeof(line2),
                "2 %05d %8.4f %8.4f %07ld %8.4f %8.4f %11.8f%5d",
                tle.catalog_number, tle.inclination_deg, tle.raan_deg, ecc_digits,
                tle.arg_perigee_deg, tle.mean_anomaly_deg, tle.mean_motion_revday,
                tle.rev_number % 100000);

  TleLines lines{line1, line2};
  lines.line1 += std::to_string(checksum(lines.line1));
  lines.line2 += std::to_string(checksum(lines.line2));
  if (lines.line1.size() != 69 || lines.line2.size() != 69) {
    throw ValidationError("internal error: formatted TLE has wrong width");
  }
  return lines;
}

}  // namespace cosmicdance::tle
