#include "orbit/kepler.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cosmicdance::orbit {
namespace {

void check_eccentricity(double e) {
  if (e < 0.0 || e >= 1.0) {
    throw ValidationError("eccentricity outside [0,1): " + std::to_string(e));
  }
}

}  // namespace

double solve_kepler(double mean_anomaly_rad, double eccentricity, double tolerance,
                    int max_iterations) {
  check_eccentricity(eccentricity);
  const double m = units::wrap_two_pi(mean_anomaly_rad);
  // Vallado's starter: E0 = M +/- e depending on which half of the orbit.
  double e_anom = (m > units::kPi) ? m - eccentricity : m + eccentricity;
  for (int i = 0; i < max_iterations; ++i) {
    const double f = e_anom - eccentricity * std::sin(e_anom) - m;
    const double fp = 1.0 - eccentricity * std::cos(e_anom);
    const double delta = f / fp;
    e_anom -= delta;
    if (std::fabs(delta) < tolerance) break;
  }
  return units::wrap_two_pi(e_anom);
}

double true_from_eccentric(double eccentric_anomaly_rad, double eccentricity) {
  check_eccentricity(eccentricity);
  const double half = eccentric_anomaly_rad / 2.0;
  const double factor = std::sqrt((1.0 + eccentricity) / (1.0 - eccentricity));
  return units::wrap_two_pi(2.0 * std::atan2(factor * std::sin(half), std::cos(half)));
}

double eccentric_from_true(double true_anomaly_rad, double eccentricity) {
  check_eccentricity(eccentricity);
  const double half = true_anomaly_rad / 2.0;
  const double factor = std::sqrt((1.0 - eccentricity) / (1.0 + eccentricity));
  return units::wrap_two_pi(2.0 * std::atan2(factor * std::sin(half), std::cos(half)));
}

double mean_from_eccentric(double eccentric_anomaly_rad, double eccentricity) {
  check_eccentricity(eccentricity);
  return units::wrap_two_pi(eccentric_anomaly_rad -
                            eccentricity * std::sin(eccentric_anomaly_rad));
}

}  // namespace cosmicdance::orbit
