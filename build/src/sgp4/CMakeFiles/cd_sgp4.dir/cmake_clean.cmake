file(REMOVE_RECURSE
  "CMakeFiles/cd_sgp4.dir/groundtrack.cpp.o"
  "CMakeFiles/cd_sgp4.dir/groundtrack.cpp.o.d"
  "CMakeFiles/cd_sgp4.dir/sgp4.cpp.o"
  "CMakeFiles/cd_sgp4.dir/sgp4.cpp.o.d"
  "libcd_sgp4.a"
  "libcd_sgp4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_sgp4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
