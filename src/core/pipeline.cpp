#include "core/pipeline.hpp"

#include "obs/obs.hpp"
#include "spaceweather/wdc.hpp"

namespace cosmicdance::core {

CosmicDance::CosmicDance(spaceweather::DstIndex dst, tle::TleCatalog catalog,
                         PipelineConfig config)
    : config_(config), dst_(std::move(dst)), catalog_(std::move(catalog)) {
  // The pipeline-wide knobs govern the correlator's scans too.
  config_.correlator.num_threads = config_.num_threads;
  config_.correlator.metrics = config_.metrics;
  std::vector<SatelliteTrack> built;
  {
    const obs::ScopedPhase phase(config_.metrics, "pipeline.build_tracks");
    built = tracks_from_catalog(catalog_, config_.num_threads, config_.metrics);
  }
  tracks_ = clean_tracks(std::move(built), config_.correlator.cleaning,
                         config_.num_threads, config_.metrics);
  {
    // Warm the median caches while each track is still touched by exactly
    // one worker; the correlator can then read them concurrently.
    const obs::ScopedPhase phase(config_.metrics, "pipeline.warm_median_caches");
    warm_median_caches(tracks_, config_.num_threads);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->set_gauge("pipeline.num_threads_requested",
                               static_cast<double>(config_.num_threads));
    config_.metrics->set_gauge("pipeline.tracks_cleaned",
                               static_cast<double>(tracks_.size()));
  }
  correlator_ = std::make_unique<EventCorrelator>(&dst_, config_.correlator);
}

CosmicDance::CosmicDance(CosmicDance&& other) noexcept
    : config_(std::move(other.config_)),
      dst_(std::move(other.dst_)),
      catalog_(std::move(other.catalog_)),
      tracks_(std::move(other.tracks_)),
      correlator_(std::make_unique<EventCorrelator>(&dst_, config_.correlator)),
      quality_report_(std::move(other.quality_report_)) {}

CosmicDance& CosmicDance::operator=(CosmicDance&& other) noexcept {
  if (this != &other) {
    config_ = std::move(other.config_);
    dst_ = std::move(other.dst_);
    catalog_ = std::move(other.catalog_);
    tracks_ = std::move(other.tracks_);
    correlator_ = std::make_unique<EventCorrelator>(&dst_, config_.correlator);
    quality_report_ = std::move(other.quality_report_);
  }
  return *this;
}

CosmicDance CosmicDance::from_files(const std::string& wdc_dst_path,
                                    const std::string& tle_path,
                                    PipelineConfig config) {
  diag::ParseLog log(config.parse_policy);
  spaceweather::DstIndex dst;
  {
    const obs::ScopedPhase phase(config.metrics, "ingest.dst");
    dst = spaceweather::read_wdc_file(wdc_dst_path, &log);
    if (config.metrics != nullptr) {
      config.metrics->counter("ingest.dst_hours").add(dst.size());
    }
  }
  tle::TleCatalog catalog;
  {
    const obs::ScopedPhase phase(config.metrics, "ingest.tle");
    catalog.add_from_file(
        tle_path, tle::IngestOptions{&log, config.num_threads, {}, config.metrics});
  }
  CosmicDance pipeline(std::move(dst), std::move(catalog), config);
  pipeline.quality_report_ = log.report();
  return pipeline;
}

std::vector<SatelliteTrack> CosmicDance::raw_tracks() const {
  return tracks_from_catalog(catalog_, config_.num_threads, config_.metrics);
}

std::vector<spaceweather::StormEvent> CosmicDance::storms() const {
  return spaceweather::StormDetector(config_.storm_detector).detect(dst_);
}

double CosmicDance::dst_threshold_at_percentile(double p) const {
  return dst_.dst_threshold_at_percentile(p);
}

PostEventEnvelope CosmicDance::post_event_envelope(double event_jd, int days,
                                                   EnvelopeSelection selection) const {
  return correlator_->post_event_envelope(tracks_, event_jd, days, selection);
}

std::vector<double> CosmicDance::altitude_changes_for_storms(
    double max_peak_nt) const {
  return correlator_->altitude_change_samples(
      tracks_, correlator_->storm_event_epochs(max_peak_nt));
}

std::vector<double> CosmicDance::altitude_changes_for_quiet(
    double min_dst_nt, std::size_t epochs) const {
  return correlator_->altitude_change_samples(
      tracks_, correlator_->quiet_epochs(min_dst_nt, epochs));
}

std::vector<double> CosmicDance::drag_changes_for_storms(double max_peak_nt) const {
  return correlator_->drag_change_samples(
      tracks_, correlator_->storm_event_epochs(max_peak_nt));
}

}  // namespace cosmicdance::core
