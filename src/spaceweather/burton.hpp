// Burton-style ring-current model (Burton, McPherron & Russell 1975).
//
// The synthetic Dst generator drives this ODE with a storm-injection
// function Q(t):   dDst*/dt = Q(t) - Dst*/tau
// which produces the characteristic storm shape: a rapid main phase while
// Q < 0 and an exponential recovery with time constant tau afterwards.
#pragma once

#include <span>
#include <vector>

namespace cosmicdance::spaceweather {

/// Integrate the ring-current ODE on an hourly grid with the classic
/// exponential-decay closed form per step.
///
/// `injection_nt_per_hour[i]` is Q during hour i; `tau_hours` the recovery
/// time constant; `initial_nt` the ring-current Dst* at t=0.  Returns one
/// value per hour (the state at the *end* of each hour).  Throws
/// ValidationError for non-positive tau.
[[nodiscard]] std::vector<double> integrate_burton(
    std::span<const double> injection_nt_per_hour, double tau_hours,
    double initial_nt = 0.0);

/// Build an injection profile for a single storm: constant driving for
/// `main_phase_hours` sized so the ODE's response peaks at `peak_nt`
/// (negative), then zero.  Length = total_hours.
[[nodiscard]] std::vector<double> storm_injection_profile(double peak_nt,
                                                          double main_phase_hours,
                                                          double tau_hours,
                                                          std::size_t total_hours);

}  // namespace cosmicdance::spaceweather
