// Tests for the second extension wave: ground tracks, the Kp/ap bridge,
// bootstrap confidence intervals, and the station-keeping delta-v budget.
#include <gtest/gtest.h>

#include <cmath>

#include "atmosphere/stationkeeping_budget.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sgp4/groundtrack.hpp"
#include "spaceweather/kp_index.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "timeutil/datetime.hpp"

namespace cosmicdance {
namespace {

using timeutil::make_datetime;

// ----------------------------- ground tracks --------------------------------

sgp4::Sgp4Propagator starlink_propagator(double inclination = 53.05) {
  tle::Tle t;
  t.catalog_number = 45000;
  t.international_designator = "20001A";
  t.epoch_jd = timeutil::to_julian(make_datetime(2023, 6, 1));
  t.inclination_deg = inclination;
  t.raan_deg = 150.0;
  t.eccentricity = 1e-4;
  t.arg_perigee_deg = 30.0;
  t.mean_anomaly_deg = 10.0;
  t.mean_motion_revday = 15.06;
  t.bstar = 2e-4;
  return sgp4::Sgp4Propagator(t);
}

TEST(GroundTrackTest, LatitudeBoundedByInclination) {
  const auto propagator = starlink_propagator();
  const auto track = sgp4::ground_track(propagator, propagator.epoch_jd(),
                                        2.0 * 96.0, 0.5);
  ASSERT_GT(track.size(), 300u);
  double max_lat = 0.0;
  for (const auto& point : track) {
    max_lat = std::max(max_lat, std::fabs(point.latitude_deg));
    EXPECT_GE(point.longitude_deg, -180.0);
    EXPECT_LT(point.longitude_deg, 180.0);
    EXPECT_NEAR(point.altitude_km, 550.0, 25.0);
  }
  // The track reaches (almost) the inclination and never exceeds it much.
  EXPECT_GT(max_lat, 50.0);
  EXPECT_LT(max_lat, 54.0);
}

TEST(GroundTrackTest, CoversBothHemispheres) {
  const auto propagator = starlink_propagator();
  const auto track =
      sgp4::ground_track(propagator, propagator.epoch_jd(), 96.0, 1.0);
  double min_lat = 90.0;
  double max_lat = -90.0;
  for (const auto& point : track) {
    min_lat = std::min(min_lat, point.latitude_deg);
    max_lat = std::max(max_lat, point.latitude_deg);
  }
  EXPECT_LT(min_lat, -45.0);
  EXPECT_GT(max_lat, 45.0);
}

TEST(GroundTrackTest, FractionAboveLatitude) {
  const auto propagator = starlink_propagator();
  const auto track = sgp4::ground_track(propagator, propagator.epoch_jd(),
                                        10.0 * 96.0, 1.0);
  const double above0 = sgp4::fraction_above_latitude(track, 0.0);
  const double above40 = sgp4::fraction_above_latitude(track, 40.0);
  const double above60 = sgp4::fraction_above_latitude(track, 60.0);
  EXPECT_DOUBLE_EQ(above0, 1.0);
  // Dwell concentrates toward the turning latitude: a 53-deg orbit spends
  // a large share above 40 degrees...
  EXPECT_GT(above40, 0.25);
  // ...and none above 60.
  EXPECT_DOUBLE_EQ(above60, 0.0);
}

TEST(GroundTrackTest, Validation) {
  const auto propagator = starlink_propagator();
  EXPECT_THROW(sgp4::ground_track(propagator, propagator.epoch_jd(), 0.0),
               ValidationError);
  EXPECT_THROW(sgp4::ground_track(propagator, propagator.epoch_jd(), 10.0, 0.0),
               ValidationError);
  EXPECT_THROW(static_cast<void>(sgp4::fraction_above_latitude({}, 10.0)), ValidationError);
}

// -------------------------------- Kp bridge ---------------------------------

TEST(KpTest, StepRounding) {
  using spaceweather::round_to_kp_step;
  EXPECT_NEAR(round_to_kp_step(3.2), 10.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(round_to_kp_step(0.1), 0.0);
  EXPECT_DOUBLE_EQ(round_to_kp_step(9.4), 9.0);
  EXPECT_DOUBLE_EQ(round_to_kp_step(-1.0), 0.0);
}

TEST(KpTest, ApTableAnchors) {
  using spaceweather::ap_from_kp;
  EXPECT_DOUBLE_EQ(ap_from_kp(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ap_from_kp(4.0), 27.0);
  EXPECT_DOUBLE_EQ(ap_from_kp(5.0), 48.0);
  EXPECT_DOUBLE_EQ(ap_from_kp(9.0), 400.0);
  EXPECT_THROW(static_cast<void>(ap_from_kp(10.0)), ValidationError);
}

TEST(KpTest, KpApRoundTrip) {
  using spaceweather::ap_from_kp;
  using spaceweather::kp_from_ap;
  for (int step = 0; step <= 27; ++step) {
    const double kp = step / 3.0;
    EXPECT_NEAR(kp_from_ap(ap_from_kp(kp)), kp, 1e-9) << step;
  }
  EXPECT_THROW(static_cast<void>(kp_from_ap(-1.0)), ValidationError);
}

TEST(KpTest, DstMappingMonotone) {
  using spaceweather::kp_from_dst;
  double previous = kp_from_dst(50.0);
  for (double dst = 40.0; dst >= -600.0; dst -= 10.0) {
    const double kp = kp_from_dst(dst);
    EXPECT_GE(kp, previous - 1e-9) << dst;
    previous = kp;
  }
  EXPECT_DOUBLE_EQ(kp_from_dst(-600.0), 9.0);
}

TEST(KpTest, GScaleConsistentWithPaperBands) {
  using spaceweather::g_level_from_kp;
  using spaceweather::kp_from_dst;
  // The paper's Dst bands land on the matching NOAA G levels.
  EXPECT_EQ(g_level_from_kp(kp_from_dst(-20.0)), 0);
  EXPECT_EQ(g_level_from_kp(kp_from_dst(-60.0)), 1);   // minor
  EXPECT_EQ(g_level_from_kp(kp_from_dst(-130.0)), 2);  // moderate
  EXPECT_GE(g_level_from_kp(kp_from_dst(-250.0)), 3);  // severe-ish
  EXPECT_EQ(g_level_from_kp(kp_from_dst(-412.0)), 4);  // May 2024: G4-G5
  EXPECT_EQ(g_level_from_kp(kp_from_dst(-1800.0)), 5); // Carrington
}

TEST(KpTest, GLabels) {
  EXPECT_EQ(spaceweather::g_label(0), "G0");
  EXPECT_EQ(spaceweather::g_label(5), "G5");
  EXPECT_THROW(spaceweather::g_label(6), ValidationError);
}

// ------------------------------- bootstrap ----------------------------------

TEST(BootstrapTest, DeterministicAndOrdered) {
  Rng rng(1);
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(rng.normal(10.0, 2.0));
  const auto a = stats::bootstrap_median(sample);
  const auto b = stats::bootstrap_median(sample);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  EXPECT_LE(a.lo, a.point);
  EXPECT_LE(a.point, a.hi);
  EXPECT_NEAR(a.point, 10.0, 0.5);
}

TEST(BootstrapTest, WiderForSmallerSamples) {
  Rng rng(2);
  std::vector<double> big;
  for (int i = 0; i < 500; ++i) big.push_back(rng.normal(0.0, 1.0));
  const std::vector<double> small(big.begin(), big.begin() + 25);
  const auto wide = stats::bootstrap_median(small);
  const auto narrow = stats::bootstrap_median(big);
  EXPECT_GT(wide.hi - wide.lo, narrow.hi - narrow.lo);
}

TEST(BootstrapTest, CoversTrueMedianUsually) {
  // 40 independent draws of n=60 normals: the 95% CI should cover the true
  // median in the vast majority of trials.
  Rng rng(3);
  int covered = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> sample;
    for (int i = 0; i < 60; ++i) sample.push_back(rng.normal(5.0, 1.0));
    const auto ci =
        stats::bootstrap_median(sample, 0.95, 400, 1000 + trial);
    if (ci.lo <= 5.0 && 5.0 <= ci.hi) ++covered;
  }
  EXPECT_GE(covered, 33);  // ~95% nominal; generous slack for 40 trials
}

TEST(BootstrapTest, Validation) {
  const std::vector<double> empty;
  const std::vector<double> one{1.0};
  EXPECT_THROW(static_cast<void>(stats::bootstrap_median(empty)), ValidationError);
  EXPECT_THROW(static_cast<void>(stats::bootstrap_percentile(one, 50.0, 1.5)), ValidationError);
  EXPECT_THROW(static_cast<void>(stats::bootstrap_percentile(one, 50.0, 0.95, 5)), ValidationError);
}

// ----------------------- station-keeping delta-v ----------------------------

TEST(BudgetTest, QuietYearRealistic) {
  // Quiet drag make-up at 550 km, knife-edge: centimetres to a few m/s per
  // year — consistent with ion-thruster budgets.
  const double jd = timeutil::to_julian(make_datetime(2023, 1, 1));
  const double dv =
      atmosphere::stationkeeping_delta_v_ms(550.0, 0.004, jd, 365.0);
  EXPECT_GT(dv, 0.01);
  EXPECT_LT(dv, 10.0);
}

TEST(BudgetTest, ScalesWithBallisticAndDuration) {
  const double jd = timeutil::to_julian(make_datetime(2023, 1, 1));
  const double base =
      atmosphere::stationkeeping_delta_v_ms(550.0, 0.004, jd, 30.0);
  EXPECT_NEAR(atmosphere::stationkeeping_delta_v_ms(550.0, 0.008, jd, 30.0),
              2.0 * base, 1e-9);
  EXPECT_NEAR(atmosphere::stationkeeping_delta_v_ms(550.0, 0.004, jd, 60.0),
              2.0 * base, 1e-6);
}

TEST(BudgetTest, StormWeekCostsMore) {
  const spaceweather::DstIndex stormy(
      make_datetime(2024, 5, 10), std::vector<double>(24 * 7, -400.0));
  const double jd = timeutil::to_julian(make_datetime(2024, 5, 10));
  const double quiet =
      atmosphere::stationkeeping_delta_v_ms(550.0, 0.004, jd, 7.0);
  const double storm =
      atmosphere::stationkeeping_delta_v_ms(550.0, 0.004, jd, 7.0, &stormy);
  // ~5x density -> ~5x delta-v.
  EXPECT_NEAR(storm / quiet, 5.0, 0.6);
}

TEST(BudgetTest, Validation) {
  const double jd = timeutil::to_julian(make_datetime(2023, 1, 1));
  EXPECT_THROW(static_cast<void>(atmosphere::stationkeeping_delta_v_ms(550.0, 0.0, jd, 1.0)),
               ValidationError);
  EXPECT_THROW(static_cast<void>(atmosphere::stationkeeping_delta_v_ms(550.0, 0.004, jd, -1.0)),
               ValidationError);
  EXPECT_THROW(static_cast<void>(
      atmosphere::stationkeeping_delta_v_ms(550.0, 0.004, jd, 1.0, nullptr, 0.0)),
      ValidationError);
}

}  // namespace
}  // namespace cosmicdance
