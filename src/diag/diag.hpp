// Data-quality diagnostics for the ingestion layer.
//
// Every ingestion path (TLE catalogs, OMM messages, WDC Dst records, CSV
// tables) reports record-level outcomes through one ParseLog: records are
// accepted, repaired (recovered with a documented fix-up, e.g. an
// interpolated Dst gap) or quarantined (rejected with a category and a
// diagnostic).  A ParsePolicy decides what a failure does:
//
//   kStrict   — the first malformed record throws ParseError with an
//               actionable message (source, line, category, snippet); this
//               is the historical behaviour and the default.
//   kTolerant — the record is quarantined, parsing continues, and the
//               caller inspects the DataQualityReport afterwards.
//
// Thread-safety contract (DESIGN.md §"Data quality"): a ParseLog is NOT
// internally synchronised.  Parallel ingestion loops give each chunk its
// own ParseLog and merge them in chunk-index order; because merging is a
// pure in-order concatenation, counters and quarantine order are
// bit-identical at any thread count.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace cosmicdance::diag {

// The category enum lives in common/error.hpp (parsers below this layer
// throw categorised ParseErrors); re-export it so diag users can say
// diag::ErrorCategory.
using cosmicdance::ErrorCategory;
using cosmicdance::kErrorCategoryCount;

/// Category names, stable across report formats ("syntax", "checksum", ...).
[[nodiscard]] const char* to_string(ErrorCategory category);

/// What a parse failure does: throw (strict) or quarantine (tolerant).
enum class ParsePolicy { kStrict, kTolerant };

[[nodiscard]] const char* to_string(ParsePolicy policy);

/// Parse "strict" / "tolerant" (the CLI's --parse-policy values).
/// Throws ParseError on anything else.
[[nodiscard]] ParsePolicy parse_policy_from_string(const std::string& text);

/// Where a record came from, for quarantine diagnostics and strict-mode
/// error messages.
struct RecordRef {
  std::string source;    ///< file path, or "<text>" for in-memory input
  std::size_t line = 0;  ///< 1-based line number of the record's first line
};

/// One rejected record with everything needed to find and fix it.
struct QuarantinedRecord {
  std::string stage;  ///< ingestion stage: "tle", "omm", "wdc", "csv"
  std::string source;
  std::size_t line = 0;
  ErrorCategory category = ErrorCategory::kSyntax;
  std::string message;  ///< the underlying parse/validation error
  std::string snippet;  ///< offending text, truncated for readability
};

/// Per-stage accept/repair/quarantine counters.
struct StageCounters {
  std::size_t accepted = 0;
  std::size_t repaired = 0;
  std::array<std::size_t, kErrorCategoryCount> quarantined{};

  [[nodiscard]] std::size_t quarantined_total() const noexcept;
  void merge(const StageCounters& other) noexcept;
};

bool operator==(const StageCounters& a, const StageCounters& b) noexcept;

/// Aggregated quality summary for one ingestion run (see ParseLog::report).
struct DataQualityReport {
  ParsePolicy policy = ParsePolicy::kStrict;
  std::map<std::string, StageCounters> stages;
  std::vector<QuarantinedRecord> quarantined;

  [[nodiscard]] std::size_t total_accepted() const noexcept;
  [[nodiscard]] std::size_t total_repaired() const noexcept;
  [[nodiscard]] std::size_t total_quarantined() const noexcept;

  /// Fold another report in: per-stage counters add, quarantined records
  /// append in argument order.  The incremental ingestion path merges the
  /// tail parse's report onto the snapshot's cumulative one, which equals
  /// the full-reparse report exactly because both halves were produced in
  /// file order.  `other.policy` is expected to match and is ignored.
  void merge(const DataQualityReport& other);

  /// Quarantine detail as CSV-ready rows: a header row followed by one row
  /// per record (stage, source, line, category, message, snippet).
  [[nodiscard]] std::vector<std::vector<std::string>> quarantine_rows() const;

  /// Per-stage summary as CSV-ready rows: header row, then
  /// stage, accepted, repaired, quarantined, <one column per category>.
  [[nodiscard]] std::vector<std::vector<std::string>> summary_rows() const;

  /// Full report (policy, per-stage counters, quarantined records) as JSON.
  [[nodiscard]] std::string to_json() const;

  /// Human-readable summary plus the first few quarantined records.
  void print(std::ostream& out) const;
};

/// Record-level outcome accumulator threaded through the ingestion paths.
class ParseLog {
 public:
  explicit ParseLog(ParsePolicy policy = ParsePolicy::kStrict)
      : policy_(policy) {}

  [[nodiscard]] ParsePolicy policy() const noexcept { return policy_; }
  [[nodiscard]] bool tolerant() const noexcept {
    return policy_ == ParsePolicy::kTolerant;
  }

  /// Count records that parsed cleanly.
  void accept(const std::string& stage, std::size_t count = 1);

  /// Count records (or samples) recovered by a documented fix-up.
  void repair(const std::string& stage, std::size_t count = 1);

  /// Report a malformed record.  Strict policy: throws ParseError carrying
  /// `category` with source, line and snippet in the message.  Tolerant
  /// policy: quarantines the record and returns.
  void reject(const std::string& stage, ErrorCategory category,
              const std::string& message, const std::string& snippet,
              const RecordRef& where);

  [[nodiscard]] const std::map<std::string, StageCounters>& stages() const noexcept {
    return stages_;
  }
  [[nodiscard]] std::span<const QuarantinedRecord> quarantined() const noexcept {
    return quarantined_;
  }
  [[nodiscard]] std::size_t quarantined_count() const noexcept {
    return quarantined_.size();
  }

  /// Fold another log in: counters add, quarantine records append in
  /// argument order.  Parallel ingestion merges per-chunk logs in
  /// chunk-index order so the result is independent of scheduling.
  void merge(ParseLog&& other);

  /// Snapshot the accumulated state as a report.
  [[nodiscard]] DataQualityReport report() const;

 private:
  ParsePolicy policy_;
  std::map<std::string, StageCounters> stages_;
  std::vector<QuarantinedRecord> quarantined_;
};

/// Shorten record text for messages/reports (one line, bounded length).
[[nodiscard]] std::string snippet_of(const std::string& text,
                                     std::size_t max_length = 60);

}  // namespace cosmicdance::diag
