// Tests for the serving layer (DESIGN.md §15): wire framing, the JSON
// reader, request routing, the TCP loopback path, and — the load-bearing
// concurrency contract — snapshot-swap determinism: a reader mid-query
// sees the old epoch or the new one, never a mix, proven by the epoch /
// epoch_end pair that brackets every data response.
#include <gtest/gtest.h>

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/obs.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "spaceweather/dst_index.hpp"
#include "timeutil/datetime.hpp"
#include "tle/catalog.hpp"
#include "tle/tle.hpp"

namespace cosmicdance {
namespace {

// ---- wire framing -----------------------------------------------------------

TEST(ServeWireTest, FrameRoundTripsThroughTheReader) {
  serve::FrameReader reader;
  reader.feed(serve::encode_frame("{\"op\":\"ping\"}"));
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"op\":\"ping\"}");
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
  EXPECT_FALSE(reader.error());
}

TEST(ServeWireTest, EmptyPayloadFramesAreValid) {
  serve::FrameReader reader;
  reader.feed(serve::encode_frame(""));
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(payload->empty());
}

TEST(ServeWireTest, PartialReadsReassembleByteByByte) {
  const std::string frame = serve::encode_frame("hello serving world");
  serve::FrameReader reader;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.feed(std::string_view(frame).substr(i, 1));
    EXPECT_FALSE(reader.next().has_value()) << "frame completed early at " << i;
  }
  reader.feed(std::string_view(frame).substr(frame.size() - 1, 1));
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "hello serving world");
}

TEST(ServeWireTest, PipelinedFramesPopInOrder) {
  serve::FrameReader reader;
  reader.feed(serve::encode_frame("first") + serve::encode_frame("second") +
              serve::encode_frame("third"));
  EXPECT_EQ(reader.next().value(), "first");
  EXPECT_EQ(reader.next().value(), "second");
  EXPECT_EQ(reader.next().value(), "third");
  EXPECT_FALSE(reader.next().has_value());
}

TEST(ServeWireTest, OversizedLengthPrefixPoisonsTheReader) {
  serve::FrameReader reader;
  // 0xFFFFFFFF little-endian: far beyond kMaxFrameBytes.
  reader.feed(std::string(4, '\xFF'));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.error());
  // Terminal: even a valid frame afterwards stays unread.
  reader.feed(serve::encode_frame("too late"));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.error());
}

TEST(ServeWireTest, GarbageBytesReadAsAnOversizedPrefix) {
  // Pointing a non-protocol peer (say, an HTTP client) at the socket makes
  // the first 4 bytes a length prefix; "GET " decodes to ~0x20544547,
  // which exceeds the ceiling and poisons the reader instead of blocking
  // forever on a phantom half-gigabyte frame.
  serve::FrameReader reader;
  reader.feed("GET / HTTP/1.1\r\n");
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.error());
}

TEST(ServeWireTest, EncodeRejectsOversizedPayloads) {
  EXPECT_THROW(
      static_cast<void>(serve::encode_frame(
          std::string(serve::kMaxFrameBytes + 1, 'x'))),
      ValidationError);
}

// ---- JSON reader ------------------------------------------------------------

TEST(ServeJsonTest, ParsesRequestsAndRejectsGarbage) {
  const auto parsed =
      serve::parse_json("{\"op\":\"sat_series\",\"sat\":42,\"f\":-1.5e3}");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->kind, serve::JsonValue::Kind::kObject);
  EXPECT_EQ(parsed->find("op")->text, "sat_series");
  EXPECT_EQ(parsed->find("sat")->integer().value(), 42);
  EXPECT_EQ(parsed->find("f")->number().value(), -1500.0);
  EXPECT_EQ(parsed->find("missing"), nullptr);

  EXPECT_FALSE(serve::parse_json("not json").has_value());
  EXPECT_FALSE(serve::parse_json("{\"op\":}").has_value());
  EXPECT_FALSE(serve::parse_json("{} trailing").has_value());
  EXPECT_FALSE(serve::parse_json("{\"a\":1,}").has_value());
  EXPECT_FALSE(serve::parse_json("").has_value());
}

TEST(ServeJsonTest, EscapeRoundTripsThroughTheParser) {
  const std::string raw = "quote \" slash \\ tab \t newline \n ctrl \x01 end";
  const auto parsed =
      serve::parse_json("\"" + serve::escape_json(raw) + "\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->text, raw);
}

// ---- service fixtures -------------------------------------------------------

tle::Tle make_tle(int catalog_number, double epoch_offset_days) {
  tle::Tle record;
  record.catalog_number = catalog_number;
  record.international_designator = "20001A";
  record.epoch_jd =
      timeutil::to_julian(timeutil::make_datetime(2024, 5, 1)) +
      epoch_offset_days;
  record.bstar = 1.4e-4;
  record.inclination_deg = 53.05;
  record.raan_deg = 120.5;
  record.eccentricity = 0.0002;
  record.arg_perigee_deg = 90.0;
  record.mean_anomaly_deg = 45.0;
  record.mean_motion_revday = 15.05;
  record.element_set_number = 999;
  record.rev_number = 12345;
  return record;
}

/// An in-memory pipeline: 12 days of Dst with one clear storm and a single
/// satellite whose track holds exactly `samples` benign element sets.
core::CosmicDance make_pipeline(std::size_t samples) {
  std::vector<double> values;
  for (int h = 0; h < 12 * 24; ++h) {
    const bool storm = h >= 100 && h < 110;
    values.push_back(storm ? -80.0 : -12.0);
  }
  spaceweather::DstIndex dst(timeutil::make_datetime(2024, 5, 1),
                             std::move(values));
  tle::TleCatalog catalog;
  for (std::size_t i = 0; i < samples; ++i) {
    catalog.add(make_tle(501, 0.5 * static_cast<double>(i)));
  }
  core::PipelineConfig config;
  config.num_threads = 1;
  return core::CosmicDance(std::move(dst), std::move(catalog), config);
}

/// Parse a response and return the object (asserts well-formed JSON — every
/// service response must parse, including errors).
serve::JsonValue response_json(const std::string& response) {
  const auto parsed = serve::parse_json(response);
  EXPECT_TRUE(parsed.has_value()) << "unparseable response: " << response;
  return parsed.value_or(serve::JsonValue{});
}

long integer_field(const serve::JsonValue& object, const std::string& key) {
  const serve::JsonValue* value = object.find(key);
  if (value == nullptr) return -1;
  return value->integer().value_or(-1);
}

bool ok_field(const serve::JsonValue& object) {
  const serve::JsonValue* value = object.find("ok");
  return value != nullptr && value->kind == serve::JsonValue::Kind::kBool &&
         value->boolean;
}

// ---- request routing --------------------------------------------------------

TEST(ServeServiceTest, RoutesEveryOpAndCountsRequests) {
  obs::Metrics metrics;
  serve::Service service(make_pipeline(10), [] { return make_pipeline(10); },
                         &metrics);

  for (const char* op : {"ping", "stats", "sat_series", "storm_summary",
                         "envelope_cdf", "quality_report", "metrics"}) {
    const auto result =
        service.handle(std::string("{\"op\":\"") + op + "\"}");
    EXPECT_FALSE(result.shutdown);
    const serve::JsonValue body = response_json(result.response);
    EXPECT_TRUE(ok_field(body)) << op << " -> " << result.response;
  }

  const serve::JsonValue stats =
      response_json(service.handle("{\"op\":\"stats\"}").response);
  EXPECT_EQ(integer_field(stats, "satellites"), 1);
  EXPECT_EQ(integer_field(stats, "tles"), 10);
  EXPECT_EQ(integer_field(stats, "epoch"), 1);
  EXPECT_EQ(integer_field(stats, "epoch_end"), 1);

  const serve::JsonValue series =
      response_json(service.handle("{\"op\":\"sat_series\"}").response);
  EXPECT_EQ(integer_field(series, "sat"), 501);
  EXPECT_EQ(integer_field(series, "samples"), 10);

  const obs::MetricsReport report = metrics.snapshot();
  EXPECT_EQ(report.counters.at("serve.requests"), 9u);
  EXPECT_EQ(report.counters.count("serve.errors"), 1u);
  EXPECT_EQ(report.counters.at("serve.errors"), 0u);
}

TEST(ServeServiceTest, BadRequestsGetErrorResponsesNotCrashes) {
  obs::Metrics metrics;
  serve::Service service(make_pipeline(5), [] { return make_pipeline(5); },
                         &metrics);

  const char* bad_requests[] = {
      "not json at all",
      "",
      "[1,2,3]",
      "{\"no_op\":true}",
      "{\"op\":42}",
      "{\"op\":\"no_such_op\"}",
      "{\"op\":\"sat_series\",\"sat\":99999}",
      "{\"op\":\"sat_series\",\"sat\":\"x\"}",
      "{\"op\":\"sat_series\",\"max_samples\":1}",
      "{\"op\":\"envelope_cdf\",\"percentile\":150}",
      "{\"op\":\"envelope_cdf\",\"points\":0}",
      "{\"op\":\"storm_summary\",\"threshold\":\"deep\"}",
  };
  for (const char* request : bad_requests) {
    const auto result = service.handle(request);
    EXPECT_FALSE(result.shutdown);
    const serve::JsonValue body = response_json(result.response);
    EXPECT_FALSE(ok_field(body)) << request << " -> " << result.response;
    EXPECT_NE(body.find("error"), nullptr);
  }
  const obs::MetricsReport report = metrics.snapshot();
  EXPECT_EQ(report.counters.at("serve.errors"),
            static_cast<std::uint64_t>(std::size(bad_requests)));
}

TEST(ServeServiceTest, SatSeriesThinsWithMaxSamples) {
  serve::Service service(make_pipeline(40), {});
  const serve::JsonValue thinned = response_json(
      service.handle("{\"op\":\"sat_series\",\"max_samples\":8}").response);
  EXPECT_TRUE(ok_field(thinned));
  EXPECT_LE(integer_field(thinned, "samples"), 9);
  EXPECT_GE(integer_field(thinned, "samples"), 8);
  EXPECT_EQ(integer_field(thinned, "track_samples"), 40);
  // The thinned series still ends at the track's last epoch.
  const serve::JsonValue* epochs = thinned.find("epoch_jd");
  ASSERT_NE(epochs, nullptr);
  const serve::JsonValue full = response_json(
      service.handle("{\"op\":\"sat_series\"}").response);
  EXPECT_EQ(epochs->items.back().text,
            full.find("epoch_jd")->items.back().text);
}

TEST(ServeServiceTest, ReloadSwapsTheEpochAndFailuresKeepTheOldOne) {
  obs::Metrics metrics;
  std::atomic<bool> fail{false};
  serve::Service service(make_pipeline(10),
                         [&]() -> core::CosmicDance {
                           if (fail.load()) throw ValidationError("boom");
                           return make_pipeline(10);
                         },
                         &metrics);

  const serve::JsonValue reloaded =
      response_json(service.handle("{\"op\":\"reload\"}").response);
  EXPECT_TRUE(ok_field(reloaded));
  EXPECT_EQ(integer_field(reloaded, "epoch"), 2);

  fail.store(true);
  const serve::JsonValue failed =
      response_json(service.handle("{\"op\":\"reload\"}").response);
  EXPECT_FALSE(ok_field(failed));
  // The old snapshot keeps serving.
  const serve::JsonValue ping =
      response_json(service.handle("{\"op\":\"ping\"}").response);
  EXPECT_TRUE(ok_field(ping));
  EXPECT_EQ(integer_field(ping, "epoch"), 2);

  const obs::MetricsReport report = metrics.snapshot();
  EXPECT_EQ(report.counters.at("serve.reloads"), 1u);
  EXPECT_EQ(report.counters.at("serve.errors"), 1u);
}

TEST(ServeServiceTest, ShutdownOpRequestsShutdown) {
  serve::Service service(make_pipeline(5), {});
  const auto result = service.handle("{\"op\":\"shutdown\"}");
  EXPECT_TRUE(result.shutdown);
  EXPECT_TRUE(ok_field(response_json(result.response)));
  // Reload without a rebuild callback is an error, not a crash.
  const auto reload = service.handle("{\"op\":\"reload\"}");
  EXPECT_FALSE(ok_field(response_json(reload.response)));
}

// ---- snapshot-swap determinism ----------------------------------------------

TEST(ServeSwapTest, ReadersSeeWholeEpochsNeverAMix) {
  // Epoch 1 serves the 10-sample catalog; every reload alternates to 20
  // and back.  Concurrent readers hammer sat_series while the main thread
  // swaps; every response must be internally consistent — epoch==epoch_end
  // and the sample count that belongs to that epoch — even when the swap
  // lands mid-query.
  std::atomic<int> rebuilds{0};
  serve::Service service(make_pipeline(10), [&] {
    const int n = rebuilds.fetch_add(1) + 1;
    return make_pipeline(n % 2 == 1 ? 20 : 10);
  });

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 150;
  std::atomic<int> inconsistencies{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!start.load()) {
      }
      for (int i = 0; i < kQueriesPerReader; ++i) {
        const auto result = service.handle("{\"op\":\"sat_series\"}");
        const auto parsed = serve::parse_json(result.response);
        if (!parsed.has_value()) {
          inconsistencies.fetch_add(1);
          continue;
        }
        const long epoch = integer_field(*parsed, "epoch");
        const long epoch_end = integer_field(*parsed, "epoch_end");
        const long samples = integer_field(*parsed, "samples");
        const long expected = epoch % 2 == 1 ? 10 : 20;
        if (!ok_field(*parsed) || epoch != epoch_end ||
            samples != expected) {
          inconsistencies.fetch_add(1);
        }
      }
    });
  }
  start.store(true);
  for (int swap = 0; swap < 20; ++swap) {
    service.reload();
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(inconsistencies.load(), 0);
  EXPECT_GE(service.snapshot()->epoch, 21u);
}

// ---- TCP loopback -----------------------------------------------------------

TEST(ServeServerTest, LoopbackRoundTripsEveryOp) {
  serve::Service service(make_pipeline(10), [] { return make_pipeline(10); });
  serve::Server server(service, "127.0.0.1", 0);
  server.start();
  ASSERT_GT(server.port(), 0);

  serve::Client client("127.0.0.1", server.port());
  for (const char* op : {"ping", "stats", "sat_series", "storm_summary",
                         "envelope_cdf", "quality_report", "reload"}) {
    const std::string response =
        client.request(std::string("{\"op\":\"") + op + "\"}");
    EXPECT_TRUE(ok_field(response_json(response))) << op << " -> " << response;
  }

  // A garbage payload is an error response, not a dropped connection: the
  // same client keeps working afterwards.
  EXPECT_FALSE(ok_field(response_json(client.request("garbage"))));
  EXPECT_TRUE(ok_field(response_json(client.request("{\"op\":\"ping\"}"))));

  server.shutdown();
}

TEST(ServeServerTest, FramingViolationGetsOneErrorFrameThenClose) {
  serve::Service service(make_pipeline(5), {});
  serve::Server server(service, "127.0.0.1", 0);
  server.start();

  // Raw socket: speak garbage at the framing layer (huge length prefix).
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* addrs = nullptr;
  ASSERT_EQ(::getaddrinfo("127.0.0.1",
                          std::to_string(server.port()).c_str(), &hints,
                          &addrs),
            0);
  const int fd = ::socket(addrs->ai_family, addrs->ai_socktype,
                          addrs->ai_protocol);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, addrs->ai_addr, addrs->ai_addrlen), 0);
  ::freeaddrinfo(addrs);

  const std::string garbage(8, '\xFF');
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));

  // The server answers with exactly one framed error payload, then closes.
  serve::FrameReader reader;
  char buffer[1024];
  std::optional<std::string> payload;
  bool closed = false;
  while (!payload.has_value() || !closed) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      closed = true;
      break;
    }
    reader.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    if (!payload.has_value()) payload = reader.next();
  }
  ::close(fd);
  ASSERT_TRUE(payload.has_value()) << "no error frame before close";
  const serve::JsonValue body = response_json(*payload);
  EXPECT_FALSE(ok_field(body));
  EXPECT_TRUE(closed);

  server.shutdown();
}

TEST(ServeServerTest, ShutdownOpUnblocksWaitAndJoinsCleanly) {
  serve::Service service(make_pipeline(5), {});
  serve::Server server(service, "127.0.0.1", 0);
  server.start();

  std::thread waiter([&] { server.wait(); });
  {
    serve::Client client("127.0.0.1", server.port());
    EXPECT_TRUE(
        ok_field(response_json(client.request("{\"op\":\"shutdown\"}"))));
  }
  waiter.join();  // wait() must return once the shutdown op lands
  server.shutdown();
}

TEST(ServeServerTest, ConcurrentClientsOverTcpStayConsistent) {
  std::atomic<int> rebuilds{0};
  serve::Service service(make_pipeline(10), [&] {
    const int n = rebuilds.fetch_add(1) + 1;
    return make_pipeline(n % 2 == 1 ? 20 : 10);
  });
  serve::Server server(service, "127.0.0.1", 0);
  server.start();

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 50;
  std::atomic<int> inconsistencies{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      serve::Client client("127.0.0.1", server.port());
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const auto parsed =
            serve::parse_json(client.request("{\"op\":\"sat_series\"}"));
        if (!parsed.has_value()) {
          inconsistencies.fetch_add(1);
          continue;
        }
        const long epoch = integer_field(*parsed, "epoch");
        const long samples = integer_field(*parsed, "samples");
        if (!ok_field(*parsed) ||
            epoch != integer_field(*parsed, "epoch_end") ||
            samples != (epoch % 2 == 1 ? 10 : 20)) {
          inconsistencies.fetch_add(1);
        }
      }
    });
  }
  serve::Client reloader("127.0.0.1", server.port());
  for (int swap = 0; swap < 10; ++swap) {
    EXPECT_TRUE(
        ok_field(response_json(reloader.request("{\"op\":\"reload\"}"))));
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(inconsistencies.load(), 0);
  server.shutdown();
}

}  // namespace
}  // namespace cosmicdance