// Fig 5: influence of storm intensity.
//  (a) CDF of altitude change for epochs with intensity < 80th-ptile,
//  (b) CDF of altitude change after storms with intensity > 95th-ptile,
//  (c) distribution of drag (B*) changes after the >95th-ptile storms.
//
// Paper shape: quiet variations stay below ~10 km; after mild/moderate
// storms a ~1% tail reaches tens of km (up to ~163 km) — satellites
// trespassing multiple 5-km-spaced shells; storms also inflate drag.
#include <iostream>

#include "bench_common.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"

using namespace cosmicdance;

namespace {

void print_cdf(const std::vector<double>& samples, const char* value_header) {
  const stats::Ecdf ecdf(samples);
  io::TablePrinter table({value_header, "cdf"});
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.995, 1.0}) {
    table.add_row({io::TablePrinter::num(ecdf.quantile(q), 2),
                   io::TablePrinter::num(q, 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const spaceweather::DstIndex dst = bench::paper_dst();
  const core::CosmicDance pipeline(dst, bench::paper_catalog(dst),
                                   bench::config_from_args(argc, argv));

  const double p80 = pipeline.dst_threshold_at_percentile(80.0);
  const double p95 = pipeline.dst_threshold_at_percentile(95.0);
  std::printf("thresholds: 80th-ptile %.1f nT, 95th-ptile %.1f nT, %zu tracks\n",
              p80, p95, pipeline.tracks().size());

  io::print_heading(std::cout,
                    "Fig 5(a): altitude change CDF, intensity < 80th-ptile");
  const auto quiet = pipeline.altitude_changes_for_quiet(p80, 30);
  print_cdf(quiet, "alt_change_km");
  bench::expect("quiet p99 (km)", "< 10", stats::percentile(quiet, 99.0), 2);

  io::print_heading(std::cout,
                    "Fig 5(b): altitude change CDF, storms > 95th-ptile");
  const auto storm = pipeline.altitude_changes_for_storms(p95);
  print_cdf(storm, "alt_change_km");
  bench::expect("storm max (km)", "~163", stats::max(storm), 1);
  const stats::Ecdf storm_ecdf(storm);
  bench::expect("fraction with 'significantly larger (10s of km)' shifts",
                "at most ~1%", 1.0 - storm_ecdf(20.0), 4);

  io::print_heading(std::cout,
                    "Fig 5(c): drag (B*) change factor, storms > 95th-ptile");
  const auto drags = pipeline.drag_changes_for_storms(p95);
  print_cdf(drags, "bstar_ratio");
  bench::note("paper: intense storms produce visibly larger drag; the far");
  bench::note("tail is satellites that tumble after an upset.");
  return 0;
}
