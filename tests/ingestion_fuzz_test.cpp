// Malformed-record corpus tests for the hardened ingestion layer.
//
// Builds valid TLE / WDC / OMM / CSV corpora, injects malformed records at
// known positions (the "injection manifest"), and checks that:
//   - the tolerant policy never throws, quarantines exactly the injected
//     records (line numbers and categories match the manifest) and accepts
//     everything else;
//   - the strict policy throws on the first error with an actionable
//     message (source, line, category);
//   - parallel ingestion produces bit-identical catalogs and identical
//     quality counters at any thread count;
//   - a deterministic fuzz loop of random single-character corruptions
//     never escapes the tolerant policy as an exception.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "diag/diag.hpp"
#include "io/csv.hpp"
#include "io/file.hpp"
#include "obs/obs.hpp"
#include "spaceweather/dst_index.hpp"
#include "spaceweather/wdc.hpp"
#include "timeutil/datetime.hpp"
#include "tle/catalog.hpp"
#include "tle/omm.hpp"
#include "tle/tle.hpp"

namespace cosmicdance {
namespace {

using diag::ErrorCategory;
using diag::ParseLog;
using diag::ParsePolicy;

// ---- corpus builders --------------------------------------------------------

tle::Tle make_tle(int catalog_number, double epoch_offset_days) {
  tle::Tle record;
  record.catalog_number = catalog_number;
  record.international_designator = "20001A";
  record.epoch_jd =
      timeutil::to_julian(timeutil::make_datetime(2022, 3, 1)) + epoch_offset_days;
  record.bstar = 1.4e-4;
  record.inclination_deg = 53.05;
  record.raan_deg = 120.5;
  record.eccentricity = 0.0002;
  record.arg_perigee_deg = 90.0;
  record.mean_anomaly_deg = 45.0;
  record.mean_motion_revday = 15.05;
  record.element_set_number = 999;
  record.rev_number = 12345;
  return record;
}

std::vector<std::string> valid_tle_lines(int satellites) {
  std::vector<std::string> lines;
  for (int i = 0; i < satellites; ++i) {
    const tle::TleLines formatted =
        tle::format_tle(make_tle(10001 + i, 0.5 * i));
    lines.push_back(formatted.line1);
    lines.push_back(formatted.line2);
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text.push_back('\n');
  }
  return text;
}

/// Re-stamp a TLE line's checksum after a field edit, so the corruption is
/// caught by the field parser rather than masked by the checksum gate.
std::string restamp(std::string line) {
  line[68] = static_cast<char>('0' + tle::checksum(line.substr(0, 68)));
  return line;
}

/// A five-day Dst ramp, rendered as WDC text lines.
std::vector<std::string> valid_wdc_lines() {
  std::vector<double> values;
  for (int h = 0; h < 5 * 24; ++h) values.push_back(-10.0 - 0.5 * h);
  const spaceweather::DstIndex dst(
      timeutil::make_datetime(2024, 5, 1), std::move(values));
  std::vector<std::string> lines;
  std::istringstream in(spaceweather::to_wdc(dst));
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::size_t category_count(const diag::StageCounters& counters,
                           ErrorCategory category) {
  return counters.quarantined[static_cast<std::size_t>(category)];
}

// ---- TLE corpus -------------------------------------------------------------

struct Injection {
  std::size_t line = 0;  // 1-based line number in the corpus
  ErrorCategory category = ErrorCategory::kSyntax;
};

/// 8 valid records with 4 malformed ones injected; returns the corpus text
/// and fills the manifest.
std::string tle_corpus_with_injections(std::vector<Injection>& manifest) {
  std::vector<std::string> lines = valid_tle_lines(8);

  // Injection 1: flipped checksum digit on record 2's line 1 (line 3).
  lines[2][68] = lines[2][68] == '0' ? '1' : '0';
  manifest.push_back({3, ErrorCategory::kChecksum});

  // Injection 2: non-digit B* mantissa on record 4's line 1 (line 7),
  // checksum re-stamped so the field parser sees it.  Columns 54-61.
  lines[6].replace(53, 8, " 12a45-3");
  lines[6] = restamp(lines[6]);
  manifest.push_back({7, ErrorCategory::kNumeric});

  // Injection 3: letters in record 6's eccentricity field (line 2,
  // columns 27-33), checksum re-stamped.  Quarantine records cite the
  // record's line 1, which is file line 11.
  lines[11].replace(26, 7, "00x6703");
  lines[11] = restamp(lines[11]);
  manifest.push_back({11, ErrorCategory::kNumeric});

  // Injection 4: an orphan line 2 appended at the end (line 17).
  lines.push_back(lines[1]);
  manifest.push_back({17, ErrorCategory::kStructure});

  std::sort(manifest.begin(), manifest.end(),
            [](const Injection& a, const Injection& b) { return a.line < b.line; });
  return join_lines(lines);
}

TEST(IngestionFuzzTle, TolerantQuarantinesExactlyTheInjectedRecords) {
  std::vector<Injection> manifest;
  const std::string text = tle_corpus_with_injections(manifest);

  ParseLog log(ParsePolicy::kTolerant);
  tle::TleCatalog catalog;
  const std::size_t added =
      catalog.add_from_text(text, tle::IngestOptions{&log, 1, "corpus.tle"});

  // 8 records minus 3 malformed two-line records; the orphan line 2 never
  // formed a record.
  EXPECT_EQ(added, 5u);
  EXPECT_EQ(log.stages().at("tle").accepted, 5u);
  ASSERT_EQ(log.quarantined_count(), manifest.size());
  for (std::size_t i = 0; i < manifest.size(); ++i) {
    EXPECT_EQ(log.quarantined()[i].line, manifest[i].line) << "record " << i;
    EXPECT_EQ(log.quarantined()[i].category, manifest[i].category)
        << "record " << i;
    EXPECT_EQ(log.quarantined()[i].source, "corpus.tle");
  }
}

TEST(IngestionFuzzTle, StrictThrowsOnFirstInjectedRecordWithLocation) {
  std::vector<Injection> manifest;
  const std::string text = tle_corpus_with_injections(manifest);

  ParseLog log(ParsePolicy::kStrict);
  tle::TleCatalog catalog;
  try {
    catalog.add_from_text(text, tle::IngestOptions{&log, 1, "corpus.tle"});
    FAIL() << "strict ingestion must throw on the corpus";
  } catch (const ParseError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("corpus.tle:" + std::to_string(manifest.front().line)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(diag::to_string(manifest.front().category)),
              std::string::npos)
        << what;
  }
}

TEST(IngestionFuzzTle, ParallelIngestionIsBitIdenticalAndCountsMatch) {
  std::vector<Injection> manifest;
  std::vector<std::string> lines = valid_tle_lines(120);
  // Sprinkle corruption through the large corpus.
  for (std::size_t record = 5; record < 120; record += 17) {
    std::string& line1 = lines[record * 2];
    line1[68] = line1[68] == '0' ? '1' : '0';
  }
  const std::string text = join_lines(lines);

  std::string serial_text;
  diag::DataQualityReport serial_report;
  for (const int threads : {1, 2, 4, 0}) {
    ParseLog log(ParsePolicy::kTolerant);
    tle::TleCatalog catalog;
    catalog.add_from_text(text, tle::IngestOptions{&log, threads, "big.tle"});
    const diag::DataQualityReport report = log.report();
    if (threads == 1) {
      serial_text = catalog.to_text();
      serial_report = report;
      continue;
    }
    EXPECT_EQ(catalog.to_text(), serial_text) << "threads=" << threads;
    EXPECT_TRUE(report.stages.at("tle") == serial_report.stages.at("tle"))
        << "threads=" << threads;
    ASSERT_EQ(report.quarantined.size(), serial_report.quarantined.size());
    for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
      EXPECT_EQ(report.quarantined[i].line, serial_report.quarantined[i].line);
      EXPECT_EQ(report.quarantined[i].message,
                serial_report.quarantined[i].message);
    }
  }
}

TEST(IngestionFuzzTle, RandomSingleCharacterCorruptionNeverEscapesTolerant) {
  const std::vector<std::string> pristine = valid_tle_lines(6);
  Rng rng(20240506);
  for (int iteration = 0; iteration < 400; ++iteration) {
    std::vector<std::string> lines = pristine;
    // 1-3 corruptions: replace a character, truncate a line, or drop one.
    const int corruptions = static_cast<int>(rng.uniform_int(1, 3));
    for (int c = 0; c < corruptions; ++c) {
      auto& line = lines[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(lines.size()) - 1))];
      switch (rng.uniform_int(0, 2)) {
        case 0: {
          if (line.empty()) break;
          const auto pos = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1));
          line[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        }
        case 1:
          line = line.substr(
              0, static_cast<std::size_t>(
                     rng.uniform_int(0, static_cast<std::int64_t>(line.size()))));
          break;
        default:
          line.clear();
          break;
      }
    }
    ParseLog log(ParsePolicy::kTolerant);
    tle::TleCatalog catalog;
    EXPECT_NO_THROW(catalog.add_from_text(join_lines(lines),
                                          tle::IngestOptions{&log, 1, "fuzz"}))
        << "iteration " << iteration;
    // Conservation: at most one accept/quarantine event per input line.
    const auto it = log.stages().find("tle");
    if (it != log.stages().end()) {
      EXPECT_LE(it->second.accepted + it->second.quarantined_total(), 12u);
    }
  }
}

// ---- shard-boundary fuzz ----------------------------------------------------

/// Byte offset of shard `s`'s start under an even `shards`-way split of
/// `size` bytes — the same arithmetic the pass-1 pairing scan uses before
/// resynchronising each cut to a line start, so the fuzz loop below can aim
/// corruption at the exact bytes where shards meet.
std::size_t shard_cut(std::size_t size, int shards, int s) {
  return size * static_cast<std::size_t>(s) / static_cast<std::size_t>(shards);
}

/// Every formatted TLE line is 69 characters plus the newline.
constexpr std::size_t kTleLineBytes = 70;

TEST(IngestionFuzzTle, ShardBoundaryCorruptionIsBitIdenticalAcrossGeometry) {
  // Deterministic fuzz over corpora whose *quarantined* records straddle
  // shard cut points: for several random shard geometries, find the record
  // each interior cut lands in and corrupt it, then require the catalog
  // text and the full quality JSON to match the serial single-shard
  // reference byte for byte at every (threads, shards) combination — and
  // strict mode to throw the identical first-in-file-order error.  This is
  // the differential the tentpole's stitching pass is contracted against:
  // a record seen by two shards must be committed (or quarantined) exactly
  // once, with serial line numbers.
  Rng rng(20240808);
  for (int iteration = 0; iteration < 8; ++iteration) {
    const int satellites = static_cast<int>(rng.uniform_int(24, 96));
    std::vector<std::string> lines = valid_tle_lines(satellites);

    // The shard geometries this corpus is ingested under (beyond the
    // serial reference).  0 = auto, plus a small and a large pinned count.
    const std::vector<int> shard_counts = {
        0, 2, static_cast<int>(rng.uniform_int(3, 9)),
        static_cast<int>(rng.uniform_int(10, 31))};

    // Corrupt the record under one random interior cut of each pinned
    // geometry.  Offsets are computed against the pristine corpus; the
    // corruptions below keep line boundaries (and therefore the cuts'
    // record positions) stable except for the final truncation, which only
    // shifts bytes after the last cut handled.
    for (const int shards : shard_counts) {
      if (shards < 2) continue;
      const int s = static_cast<int>(rng.uniform_int(1, shards - 1));
      const std::size_t cut =
          shard_cut(static_cast<std::size_t>(satellites) * 2 * kTleLineBytes,
                    shards, s);
      std::string& line = lines[cut / kTleLineBytes];
      if (line.size() < kTleLineBytes - 1) continue;  // already corrupted
      switch (rng.uniform_int(0, 2)) {
        case 0:  // checksum flip: the whole record quarantines
          line[68] = line[68] == '0' ? '1' : '0';
          break;
        case 1:  // non-numeric field, checksum re-stamped
          line.replace(53, 4, "xy.z");
          line = restamp(line);
          break;
        default:  // short line: a structure error at the shard edge
          line.resize(static_cast<std::size_t>(rng.uniform_int(1, 40)));
          break;
      }
    }

    const std::string text = join_lines(lines);
    for (const ParsePolicy policy :
         {ParsePolicy::kTolerant, ParsePolicy::kStrict}) {
      // Serial single-shard reference.
      std::string ref_text;
      std::string ref_quality;
      std::string ref_error;
      {
        ParseLog log(policy);
        tle::TleCatalog catalog;
        tle::IngestOptions options{&log, 1, "fuzz.tle"};
        options.num_shards = 1;
        try {
          catalog.add_from_text(text, options);
          ref_text = catalog.to_text();
          ref_quality = log.report().to_json();
        } catch (const ParseError& error) {
          ref_error = error.what();
        }
      }

      for (const int threads : {1, 4, 8}) {
        for (const int shards : shard_counts) {
          ParseLog log(policy);
          tle::TleCatalog catalog;
          tle::IngestOptions options{&log, threads, "fuzz.tle"};
          options.num_shards = shards;
          std::string got_error;
          try {
            catalog.add_from_text(text, options);
          } catch (const ParseError& error) {
            got_error = error.what();
          }
          const std::string label =
              "iteration " + std::to_string(iteration) + " policy " +
              std::to_string(static_cast<int>(policy)) + " threads " +
              std::to_string(threads) + " shards " + std::to_string(shards);
          EXPECT_EQ(got_error, ref_error) << label;
          if (!ref_error.empty()) continue;
          EXPECT_EQ(catalog.to_text(), ref_text) << label;
          EXPECT_EQ(log.report().to_json(), ref_quality) << label;
        }
      }
    }
  }
}

// ---- WDC corpus -------------------------------------------------------------

TEST(IngestionFuzzWdc, TolerantQuarantinesBadDaysAndInterpolatesTheHole) {
  std::vector<std::string> lines = valid_wdc_lines();
  ASSERT_EQ(lines.size(), 5u);
  // Remember the clean parse for comparison.
  const spaceweather::DstIndex clean =
      spaceweather::from_wdc(join_lines(lines));
  ASSERT_EQ(clean.size(), 120u);

  // Injection: day 3's month becomes 13 (cols 6-7) -> range error.
  lines[2].replace(5, 2, "13");
  // Injection: day 5 truncated -> syntax error (trailing day so no gap).
  lines[4] = lines[4].substr(0, 60);

  ParseLog log(ParsePolicy::kTolerant);
  const spaceweather::DstIndex parsed =
      spaceweather::from_wdc(join_lines(lines), &log, "dst.wdc");

  const auto& counters = log.stages().at("wdc");
  EXPECT_EQ(counters.accepted, 3u);
  EXPECT_EQ(counters.quarantined_total(), 2u);
  EXPECT_EQ(category_count(counters, ErrorCategory::kRange), 1u);
  EXPECT_EQ(category_count(counters, ErrorCategory::kSyntax), 1u);
  ASSERT_EQ(log.quarantined_count(), 2u);
  EXPECT_EQ(log.quarantined()[0].line, 3u);
  EXPECT_EQ(log.quarantined()[1].line, 5u);

  // Day 3's 24-hour hole was linearly interpolated; day 5 trimmed off the
  // end.  The series is contiguous and matches the clean values exactly on
  // this linear ramp.
  EXPECT_EQ(counters.repaired, 24u);
  ASSERT_EQ(parsed.size(), 96u);
  EXPECT_EQ(parsed.start_hour(), clean.start_hour());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_NEAR(parsed.values()[i], clean.values()[i], 0.75) << "hour " << i;
  }
}

TEST(IngestionFuzzWdc, StrictStillThrowsOnGapAndOnBadRecord) {
  std::vector<std::string> lines = valid_wdc_lines();
  lines[2].replace(5, 2, "13");
  ParseLog log(ParsePolicy::kStrict);
  EXPECT_THROW(
      { auto dst = spaceweather::from_wdc(join_lines(lines), &log, "dst.wdc"); },
      ParseError);

  // A pure gap (a deleted day) is a structure error under strict.
  std::vector<std::string> gappy = valid_wdc_lines();
  gappy.erase(gappy.begin() + 2);
  EXPECT_THROW({ auto dst = spaceweather::from_wdc(join_lines(gappy)); },
               ParseError);
}

TEST(IngestionFuzzWdc, TolerantQuarantinesOutOfOrderDays) {
  std::vector<std::string> lines = valid_wdc_lines();
  std::swap(lines[1], lines[2]);
  ParseLog log(ParsePolicy::kTolerant);
  const spaceweather::DstIndex parsed =
      spaceweather::from_wdc(join_lines(lines), &log, "dst.wdc");
  // Day 2 arrives after day 3 and is dropped whole; its hole is repaired.
  EXPECT_EQ(category_count(log.stages().at("wdc"), ErrorCategory::kStructure),
            1u);
  EXPECT_EQ(log.stages().at("wdc").repaired, 24u);
  EXPECT_EQ(parsed.size(), 120u);
}

// ---- OMM corpus -------------------------------------------------------------

TEST(IngestionFuzzOmm, TolerantQuarantinesBadBlocks) {
  tle::TleCatalog source;
  source.add(make_tle(31001, 0.0));
  source.add(make_tle(31002, 0.0));
  source.add(make_tle(31003, 0.0));
  std::string text = tle::catalog_to_omm_kvn(source);
  // Corrupt the middle block's MEAN_MOTION value.
  const std::size_t pos = text.find("MEAN_MOTION =", text.find("MEAN_MOTION =") + 1);
  ASSERT_NE(pos, std::string::npos);
  const std::size_t eol = text.find('\n', pos);
  text.replace(pos, eol - pos, "MEAN_MOTION = fifteen");

  ParseLog log(ParsePolicy::kTolerant);
  tle::TleCatalog parsed;
  const std::size_t added = tle::catalog_add_from_omm_kvn(parsed, text, &log, "c.omm");
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(log.stages().at("omm").accepted, 2u);
  ASSERT_EQ(log.quarantined_count(), 1u);
  EXPECT_EQ(log.quarantined()[0].category, ErrorCategory::kNumeric);

  // Strict: same corpus throws.
  ParseLog strict(ParsePolicy::kStrict);
  tle::TleCatalog rejected;
  EXPECT_THROW(
      {
        static_cast<void>(
            tle::catalog_add_from_omm_kvn(rejected, text, &strict, "c.omm"));
      },
      ParseError);
}

// ---- CSV corpus -------------------------------------------------------------

TEST(IngestionFuzzCsv, TolerantQuarantinesMalformedRows) {
  const std::string text =
      "a,b,c\n"
      "1,2,3\n"
      "\"ab\"cd,broken\n"     // text after closing quote (line 3)
      "4,5,6\n"
      "x\"y,oops\n"           // quote inside bare field (line 5)
      "7,8,9\n";
  std::istringstream in(text);
  ParseLog log(ParsePolicy::kTolerant);
  const auto rows = io::read_csv(in, &log, "table.csv");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[1], (io::CsvRow{"1", "2", "3"}));
  const auto& counters = log.stages().at("csv");
  EXPECT_EQ(counters.accepted, 4u);
  EXPECT_EQ(counters.quarantined_total(), 2u);
  ASSERT_EQ(log.quarantined_count(), 2u);
  EXPECT_EQ(log.quarantined()[0].line, 3u);
  EXPECT_EQ(log.quarantined()[1].line, 5u);
}

TEST(IngestionFuzzCsv, TolerantQuarantinesUnterminatedQuoteAtEof) {
  std::istringstream in("ok,row\n\"never closed,\n");
  ParseLog log(ParsePolicy::kTolerant);
  const auto rows = io::read_csv(in, &log, "table.csv");
  EXPECT_EQ(rows.size(), 1u);
  ASSERT_EQ(log.quarantined_count(), 1u);
  EXPECT_EQ(log.quarantined()[0].category, ErrorCategory::kStructure);
  EXPECT_EQ(log.quarantined()[0].line, 2u);
}

// ---- whole-pipeline ingestion ----------------------------------------------

class IngestionFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cd_ingest_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(IngestionFiles, TolerantPipelineRunCompletesAndReportsIdenticallyAcrossThreads) {
  // Dst: 5 clean days plus one corrupted record.
  std::vector<std::string> wdc = valid_wdc_lines();
  wdc[1].replace(5, 2, "13");
  io::write_file(path("dst.wdc"), join_lines(wdc));

  // TLEs: 30 records, one checksum-corrupted.
  std::vector<std::string> tles = valid_tle_lines(30);
  tles[8][68] = tles[8][68] == '0' ? '1' : '0';
  io::write_file(path("catalog.tle"), join_lines(tles));

  diag::DataQualityReport first_report;
  std::size_t first_tracks = 0;
  for (const int threads : {1, 0}) {
    core::PipelineConfig config;
    config.num_threads = threads;
    config.parse_policy = ParsePolicy::kTolerant;
    const core::CosmicDance pipeline = core::CosmicDance::from_files(
        path("dst.wdc"), path("catalog.tle"), config);

    const diag::DataQualityReport& report = pipeline.quality_report();
    EXPECT_EQ(report.total_quarantined(), 2u);
    EXPECT_EQ(report.stages.at("wdc").repaired, 24u);
    EXPECT_EQ(report.stages.at("tle").accepted, 29u);
    if (threads == 1) {
      first_report = report;
      first_tracks = pipeline.tracks().size();
      continue;
    }
    EXPECT_EQ(pipeline.tracks().size(), first_tracks);
    EXPECT_TRUE(report.stages.at("tle") == first_report.stages.at("tle"));
    EXPECT_TRUE(report.stages.at("wdc") == first_report.stages.at("wdc"));
    ASSERT_EQ(report.quarantined.size(), first_report.quarantined.size());
    for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
      EXPECT_EQ(report.quarantined[i].line, first_report.quarantined[i].line);
      EXPECT_EQ(report.quarantined[i].source, first_report.quarantined[i].source);
    }
  }
}

TEST_F(IngestionFiles, AppendCorpusLoopNeverSilentlyDiverges) {
  // The incremental-ingestion escape hatch under fuzz (DESIGN.md §14): a
  // corpus that grows by whole records, tears its trailing record (with and
  // without the final newline), and occasionally truncates mid-record.
  // Every round, the cached run must either take a fast path (exact or
  // delta hit) or reject the snapshot outright — and in all cases produce
  // the same catalog, Dst series and quality report as an uncached parse
  // of the same bytes.  Silent divergence is the one forbidden outcome.
  io::write_file(path("dst.wdc"), join_lines(valid_wdc_lines()));
  io::write_file(path("catalog.tle"), join_lines(valid_tle_lines(20)));

  const auto run = [&](bool use_cache, obs::Metrics* metrics) {
    core::PipelineConfig config;
    config.parse_policy = ParsePolicy::kTolerant;
    config.num_threads = 1;
    config.metrics = metrics;
    if (use_cache) config.cache_dir = path("cache");
    const core::CosmicDance pipeline = core::CosmicDance::from_files(
        path("dst.wdc"), path("catalog.tle"), config);
    std::vector<double> dst(pipeline.dst().values().begin(),
                            pipeline.dst().values().end());
    return std::tuple(pipeline.catalog().to_text(), std::move(dst),
                      pipeline.quality_report().to_json());
  };
  const auto counter = [](const obs::Metrics& metrics, const char* name) {
    const obs::MetricsReport report = metrics.snapshot();
    const auto it = report.counters.find(name);
    return it != report.counters.end() ? it->second : std::uint64_t{0};
  };
  run(/*use_cache=*/true, nullptr);  // seed the snapshot

  Rng rng(20260806);
  double epoch_offset = 200.0;  // past the seed corpus's epochs
  timeutil::HourIndex next_day =
      timeutil::hour_index_from_datetime(timeutil::make_datetime(2024, 5, 6));
  bool torn_open = false;  // last append left an unterminated line
  for (int round = 0; round < 25; ++round) {
    std::string tail = torn_open ? "\n" : "";
    torn_open = false;
    switch (rng.uniform_int(0, 6)) {
      case 0:
      case 1: {  // grow by 1-2 whole records
        const int count = static_cast<int>(rng.uniform_int(1, 2));
        for (int i = 0; i < count; ++i) {
          const tle::TleLines lines =
              tle::format_tle(make_tle(10001, epoch_offset));
          epoch_offset += 0.25;
          tail += lines.line1 + "\n" + lines.line2 + "\n";
        }
        break;
      }
      case 2: {  // grow the Dst series by one day
        std::vector<double> values;
        for (int h = 0; h < 24; ++h) {
          values.push_back(-12.0 - static_cast<double>((next_day + h) % 200));
        }
        tail.clear();  // dst file never tears in this loop
        io::append_file(path("dst.wdc"),
                        spaceweather::to_wdc(spaceweather::DstIndex(
                            next_day, std::move(values))));
        next_day += 24;
        break;
      }
      case 3: {  // torn trailing record: line 1 lands, line 2 never does
        const tle::TleLines lines =
            tle::format_tle(make_tle(10001, epoch_offset));
        epoch_offset += 0.25;
        tail += lines.line1 + "\n";
        break;
      }
      case 4: {  // torn harder: the trailing newline is missing too
        const tle::TleLines lines =
            tle::format_tle(make_tle(10001, epoch_offset));
        epoch_offset += 0.25;
        tail += lines.line1;
        torn_open = true;
        break;
      }
      default: {  // mid-record truncation: the file shrinks
        std::string text = io::read_file(path("catalog.tle"));
        const auto cut = static_cast<std::size_t>(rng.uniform_int(
            1, std::min<std::int64_t>(
                   100, static_cast<std::int64_t>(text.size()) - 1)));
        text.resize(text.size() - cut);
        io::write_file(path("catalog.tle"), text);
        tail.clear();
        torn_open = true;  // the cut can land mid-line
        break;
      }
    }
    if (!tail.empty()) io::append_file(path("catalog.tle"), tail);

    obs::Metrics metrics;
    const auto cached = run(/*use_cache=*/true, &metrics);
    const auto uncached = run(/*use_cache=*/false, nullptr);
    EXPECT_EQ(std::get<0>(cached), std::get<0>(uncached)) << "round " << round;
    EXPECT_EQ(std::get<1>(cached), std::get<1>(uncached)) << "round " << round;
    EXPECT_EQ(std::get<2>(cached), std::get<2>(uncached)) << "round " << round;
    const std::uint64_t fast = counter(metrics, "ingest.delta_hit") +
                               counter(metrics, "ingest.cache_hit");
    EXPECT_TRUE(fast == 1 || counter(metrics, "snapshot.rejected") >= 1)
        << "round " << round
        << ": the cache must hit, extend, or explicitly reject";
  }
}

TEST_F(IngestionFiles, StrictPipelineRunThrowsWithFileAndLine) {
  std::vector<std::string> wdc = valid_wdc_lines();
  io::write_file(path("dst.wdc"), join_lines(wdc));
  std::vector<std::string> tles = valid_tle_lines(3);
  tles[2][68] = tles[2][68] == '0' ? '1' : '0';
  io::write_file(path("catalog.tle"), join_lines(tles));

  core::PipelineConfig config;
  config.parse_policy = ParsePolicy::kStrict;
  try {
    const auto pipeline = core::CosmicDance::from_files(
        path("dst.wdc"), path("catalog.tle"), config);
    FAIL() << "strict pipeline must throw on the corrupted catalog";
  } catch (const ParseError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("catalog.tle:3"), std::string::npos) << what;
    EXPECT_NE(what.find("checksum"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace cosmicdance
