# Empty compiler generated dependencies file for ablate_dst_model.
# This may be replaced when dependencies are built.
