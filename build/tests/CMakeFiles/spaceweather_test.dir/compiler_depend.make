# Empty compiler generated dependencies file for spaceweather_test.
# This may be replaced when dependencies are built.
