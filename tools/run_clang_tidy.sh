#!/usr/bin/env bash
# Run the curated .clang-tidy profile over the compiled sources, using the
# compile database exported by the CMake configure (CMAKE_EXPORT_COMPILE_COMMANDS).
#
# Degrades gracefully: when clang-tidy is not installed this exits 0 with a
# notice, so tier-1 stays runnable on the minimal toolchain image while CI
# images that ship clang-tidy get the full pass.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [jobs]
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
BUILD_DIR="${1:-build}"
JOBS="${2:-$(nproc)}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed; skipping (reported as skipped, not failed)"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json not found;" \
       "configure the build first (cmake -B $BUILD_DIR -S .)" >&2
  exit 2
fi

# Lint what the compile database covers: library, tool and bench sources.
# cdlint's testdata corpus is deliberate violations and is never compiled.
FILES=()
while IFS= read -r file; do
  case "$file" in
    */testdata/*) continue ;;
  esac
  FILES+=("$file")
done < <(git ls-files 'src/*.cpp' 'tools/*.cpp' 'bench/*.cpp')

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no sources found" >&2
  exit 2
fi

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$BUILD_DIR" -j "$JOBS" -quiet "${FILES[@]}"
else
  status=0
  for file in "${FILES[@]}"; do
    clang-tidy -p "$BUILD_DIR" --quiet "$file" || status=1
  done
  exit "$status"
fi
