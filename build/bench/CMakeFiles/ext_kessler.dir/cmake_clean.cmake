file(REMOVE_RECURSE
  "CMakeFiles/ext_kessler.dir/ext_kessler.cpp.o"
  "CMakeFiles/ext_kessler.dir/ext_kessler.cpp.o.d"
  "ext_kessler"
  "ext_kessler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_kessler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
