#include "core/export.hpp"

#include <cmath>
#include <cstdio>

#include "timeutil/hour_axis.hpp"

namespace cosmicdance::core {
namespace {

std::string num(double value, int precision = 6) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
}

std::string iso(double jd) {
  return timeutil::from_julian(jd).to_string();
}

}  // namespace

std::vector<io::CsvRow> ecdf_csv(const stats::Ecdf& ecdf,
                                 const std::string& value_name,
                                 std::size_t max_points) {
  std::vector<io::CsvRow> rows;
  rows.push_back({value_name, "cdf"});
  for (const auto& [x, f] : ecdf.points(max_points)) {
    rows.push_back({num(x), num(f)});
  }
  return rows;
}

std::vector<io::CsvRow> storms_csv(
    std::span<const spaceweather::StormEvent> storms) {
  std::vector<io::CsvRow> rows;
  rows.push_back({"onset_utc", "peak_utc", "peak_dst_nt", "category",
                  "duration_hours"});
  for (const auto& storm : storms) {
    rows.push_back({storm.start_datetime().to_string(),
                    timeutil::datetime_from_hour_index(storm.peak_hour).to_string(),
                    num(storm.peak_dst_nt),
                    spaceweather::to_string(storm.category),
                    std::to_string(storm.duration_hours())});
  }
  return rows;
}

std::vector<io::CsvRow> envelope_csv(const PostEventEnvelope& envelope) {
  std::vector<io::CsvRow> rows;
  io::CsvRow header{"day", "median_km", "p95_km"};
  for (const int id : envelope.satellites) {
    header.push_back("sat_" + std::to_string(id));
  }
  rows.push_back(std::move(header));
  for (int d = 0; d < envelope.days; ++d) {
    const auto day = static_cast<std::size_t>(d);
    io::CsvRow row{std::to_string(d),
                   std::isfinite(envelope.median_km[day])
                       ? num(envelope.median_km[day])
                       : std::string(),
                   std::isfinite(envelope.p95_km[day]) ? num(envelope.p95_km[day])
                                                       : std::string()};
    for (const auto& profile : envelope.per_satellite) {
      row.push_back(std::isfinite(profile[day]) ? num(profile[day])
                                                : std::string());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<io::CsvRow> panel_csv(std::span<const SuperstormPanelRow> rows_in) {
  std::vector<io::CsvRow> rows;
  rows.push_back({"date", "min_dst_nt", "bstar_mean", "bstar_median",
                  "bstar_p95", "tracked_satellites", "tle_count"});
  for (const auto& row : rows_in) {
    rows.push_back({iso(row.day_jd), num(row.dst_min_nt), num(row.bstar_mean),
                    num(row.bstar_median), num(row.bstar_p95),
                    std::to_string(row.tracked_satellites),
                    std::to_string(row.tle_count)});
  }
  return rows;
}

std::vector<io::CsvRow> timeline_csv(const TrackTimeline& timeline) {
  std::vector<io::CsvRow> rows;
  rows.push_back({"epoch_utc", "altitude_km", "bstar"});
  for (std::size_t i = 0; i < timeline.epoch_jd.size(); ++i) {
    rows.push_back({iso(timeline.epoch_jd[i]), num(timeline.altitude_km[i]),
                    num(timeline.bstar[i])});
  }
  return rows;
}

}  // namespace cosmicdance::core
