# Empty compiler generated dependencies file for core2_test.
# This may be replaced when dependencies are built.
