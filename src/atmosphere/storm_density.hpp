// Geomagnetic-storm density enhancement.
//
// Storm-time Joule heating expands the thermosphere, raising density at a
// fixed altitude; the response grows with both storm intensity and altitude
// (Oliveira & Zesta 2019).  We model the enhancement as a factor linear in
// the Dst excursion beyond a quiet offset, with an altitude-dependent
// sensitivity calibrated so that a -400 nT super-storm gives roughly 5x
// density at Starlink's 550 km shell (the factor Starlink reported for May
// 2024) and a -100 nT moderate storm gives roughly 1.8x.
#pragma once

#include "spaceweather/dst_index.hpp"

namespace cosmicdance::atmosphere {

struct StormDensityConfig {
  /// Dst must exceed this (nT below zero) before any enhancement.
  double quiet_offset_nt = 20.0;
  /// Enhancement per 100 nT of excursion at the reference altitude.
  double sensitivity_at_reference = 1.05;
  double reference_altitude_km = 550.0;
  /// The sensitivity scales ~linearly with altitude within LEO, clamped to
  /// [min_scale, max_scale] of the reference value.
  double min_scale = 0.3;
  double max_scale = 2.0;
};

/// Multiplicative storm enhancement factor (>= 1).
[[nodiscard]] double storm_enhancement_factor(double altitude_km, double dst_nt,
                                              const StormDensityConfig& config = {}) noexcept;

/// Storm-time density: quiet-time piecewise-exponential baseline times the
/// enhancement factor for the Dst value at `jd`.  Hours outside the Dst
/// series use the quiet baseline.
class StormDensityModel {
 public:
  explicit StormDensityModel(const spaceweather::DstIndex* dst,
                             StormDensityConfig config = {});

  /// Density in kg/m^3 at the given altitude and time.
  [[nodiscard]] double density_kg_m3(double altitude_km, double jd) const noexcept;

  /// The enhancement factor alone at the given altitude and time.
  [[nodiscard]] double factor(double altitude_km, double jd) const noexcept;

 private:
  const spaceweather::DstIndex* dst_;  ///< non-owning; may be nullptr (quiet)
  StormDensityConfig config_;
};

}  // namespace cosmicdance::atmosphere
