// Fig 1: distribution of geomagnetic storm intensities, Jan'20 - May'24.
// Also reproduces §4's headline totals (720 h mild / 74 h moderate / 3 h
// severe; 99th-ptile intensity ~ -63 nT; 95th-ptile weaker than minor).
#include <iostream>

#include "bench_common.hpp"
#include "io/table.hpp"
#include "spaceweather/storms.hpp"
#include "stats/ecdf.hpp"

using namespace cosmicdance;

int main() {
  const spaceweather::DstIndex dst = bench::paper_dst();

  io::print_heading(std::cout, "Fig 1: CDF of geomagnetic intensity (nT)");
  // The paper plots the CDF of Dst over the whole window.
  std::vector<double> values(dst.values().begin(), dst.values().end());
  const stats::Ecdf ecdf(values);
  io::TablePrinter cdf({"dst_nT", "cdf"});
  for (const double x : {-250.0, -200.0, -150.0, -100.0, -63.0, -50.0, -30.0,
                         -20.0, -10.0, 0.0, 10.0, 20.0}) {
    cdf.add_row({io::TablePrinter::num(x, 0), io::TablePrinter::num(ecdf(x), 5)});
  }
  cdf.print(std::cout);

  io::print_heading(std::cout, "Headline statistics (paper Section 4)");
  bench::expect("99th-ptile intensity (nT)", "-63",
                dst.dst_threshold_at_percentile(99.0));
  bench::expect("95th-ptile intensity (nT; > -50 = weaker than minor)", "> -50",
                dst.dst_threshold_at_percentile(95.0));
  bench::expect("most intense hour (nT)", "-213", dst.minimum());

  const auto hours = spaceweather::StormDetector::category_hours(dst);
  auto hours_for = [&](spaceweather::StormCategory c) {
    const auto it = hours.find(c);
    return it == hours.end() ? 0.0 : static_cast<double>(it->second);
  };
  bench::expect("mild (minor) storm hours", "720",
                hours_for(spaceweather::StormCategory::kMinor), 0);
  bench::expect("moderate storm hours", "74",
                hours_for(spaceweather::StormCategory::kModerate), 0);
  bench::expect("severe storm hours", "3",
                hours_for(spaceweather::StormCategory::kSevere), 0);
  bench::expect("extreme storm hours", "0",
                hours_for(spaceweather::StormCategory::kExtreme), 0);
  bench::note("shape check: most activity is mild/moderate; a single severe");
  bench::note("event (24 Apr 2023); nothing near Carrington (-1800 nT).");
  return 0;
}
