// Deterministically-ordered data parallelism over an index range.
//
// The contract (DESIGN.md §"Parallel execution"): parallel_for partitions
// [0, count) into fixed contiguous chunks and guarantees every index is
// visited exactly once; the caller's body writes only to slots derived from
// the index it was handed.  Because the chunk boundaries are a pure function
// of (count, thread count) and no two chunks share an output slot, the
// assembled result is bit-identical to running the same body serially —
// scheduling order can never leak into the output.
//
// num_threads follows the pipeline-wide knob convention:
//   0  -> all hardware threads
//   1  -> exact serial path (one body call over [0, count), no pool touched)
//   n  -> n workers (the calling thread counts as one)
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace cosmicdance::obs {
class Metrics;
}  // namespace cosmicdance::obs

namespace cosmicdance::exec {

/// Run `chunk(begin, end)` over disjoint sub-ranges covering [0, count).
/// Chunks are executed by at most `num_threads` workers (caller included)
/// pulled from ThreadPool::shared().  Rethrows the first body exception
/// after all chunks finish.  A non-null `metrics` records the section and
/// its chunk count as scheduling counters ("exec.sections", "exec.chunks");
/// those legitimately vary with num_threads and sit outside the counter
/// determinism contract (DESIGN.md §11).
void parallel_for(std::size_t count, int num_threads,
                  const std::function<void(std::size_t begin, std::size_t end)>& chunk,
                  obs::Metrics* metrics = nullptr);

/// Ordered map: out[i] = fn(i), computed in parallel, returned in index
/// order.  The deterministic workhorse for the per-satellite hot loops.
template <typename Result, typename Fn>
std::vector<Result> ordered_map(std::size_t count, int num_threads, Fn&& fn,
                                obs::Metrics* metrics = nullptr) {
  std::vector<Result> out(count);
  parallel_for(
      count, num_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
      },
      metrics);
  return out;
}

/// Concatenate per-index result vectors in index order (the serial
/// push_back order of a nested loop flattened by ordered_map).
template <typename T>
std::vector<T> ordered_concat(std::vector<std::vector<T>> parts) {
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<T> out;
  out.reserve(total);
  for (auto& part : parts) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

}  // namespace cosmicdance::exec
