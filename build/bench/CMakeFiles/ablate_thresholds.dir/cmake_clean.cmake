file(REMOVE_RECURSE
  "CMakeFiles/ablate_thresholds.dir/ablate_thresholds.cpp.o"
  "CMakeFiles/ablate_thresholds.dir/ablate_thresholds.cpp.o.d"
  "ablate_thresholds"
  "ablate_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
