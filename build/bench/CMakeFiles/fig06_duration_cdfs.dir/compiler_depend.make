# Empty compiler generated dependencies file for fig06_duration_cdfs.
# This may be replaced when dependencies are built.
