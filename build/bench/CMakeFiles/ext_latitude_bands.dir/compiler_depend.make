# Empty compiler generated dependencies file for ext_latitude_bands.
# This may be replaced when dependencies are built.
