// Latitude-band analysis (paper §6: "Finer granularity").
//
// The paper notes that higher latitudes are more storm-exposed and that a
// latitude-band-wise study becomes possible once TLEs are frequent enough.
// This module provides that machinery today: every TLE is geolocated at its
// own epoch (SGP4 state -> GMST rotation -> geodetic latitude) and samples
// are aggregated per |latitude| band.
#pragma once

#include <span>
#include <vector>

#include "core/track.hpp"
#include "tle/tle.hpp"

namespace cosmicdance::core {

/// Aggregates over one |geodetic latitude| band.
struct LatitudeBandStats {
  double lat_lo_deg = 0.0;  ///< inclusive
  double lat_hi_deg = 0.0;  ///< exclusive
  std::size_t samples = 0;
  double dwell_fraction = 0.0;  ///< share of all geolocated samples here
  double median_bstar = 0.0;
  double p95_bstar = 0.0;
};

/// Reconstruct a propagatable TLE record from a pipeline sample.
[[nodiscard]] tle::Tle tle_from_sample(int catalog_number,
                                       const TrajectorySample& sample);

/// Geodetic |latitude| (degrees) of a track sample at its epoch.
/// Throws PropagationError if SGP4 rejects the element set.
[[nodiscard]] double sample_latitude_deg(int catalog_number,
                                         const TrajectorySample& sample);

/// Bin every sample with epoch in [jd_lo, jd_hi) into |latitude| bands of
/// equal width covering [0, 90).  Samples whose elements fail to propagate
/// (gross tracking errors) are skipped.
[[nodiscard]] std::vector<LatitudeBandStats> latitude_band_drag(
    std::span<const SatelliteTrack> tracks, double jd_lo, double jd_hi,
    int bands = 6);

}  // namespace cosmicdance::core
