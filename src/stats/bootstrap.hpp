// Percentile-bootstrap confidence intervals.
//
// The paper reports medians/95th-ptiles over modest satellite counts; the
// bootstrap quantifies how stable those are, which the bench output uses to
// qualify shape comparisons on scaled-down fleets.
#pragma once

#include <cstdint>
#include <span>

namespace cosmicdance::stats {

struct BootstrapInterval {
  double point = 0.0;  ///< statistic on the original sample
  double lo = 0.0;     ///< lower confidence bound
  double hi = 0.0;     ///< upper confidence bound
};

/// Percentile-bootstrap CI for the p-th percentile of a sample.
/// `confidence` in (0,1); deterministic for a given seed.  Throws
/// ValidationError on empty samples or bad parameters.
[[nodiscard]] BootstrapInterval bootstrap_percentile(
    std::span<const double> sample, double p, double confidence = 0.95,
    int resamples = 1000, std::uint64_t seed = 17);

/// Convenience: CI for the median.
[[nodiscard]] BootstrapInterval bootstrap_median(std::span<const double> sample,
                                                 double confidence = 0.95,
                                                 int resamples = 1000,
                                                 std::uint64_t seed = 17);

}  // namespace cosmicdance::stats
