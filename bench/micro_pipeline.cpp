// Microbenchmarks over the measurement pipeline's aggregate operations:
// storm segmentation of a 4-year hourly series, the happens-closely-after
// sample extraction, and catalog text ingestion.
//
// Supplies its own main(): after the google-benchmark suite runs, an
// instrumented end-to-end pass (ingest -> build -> clean -> correlate)
// collects cd_obs telemetry and writes a machine-readable record
// (per-phase wall time, work counters, derived throughput) for CI trending:
//
//   ./micro_pipeline [--benchmark_filter=RE] [--bench-out F] [--threads N]
//
// Default output: BENCH_pipeline.json in the working directory.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "spaceweather/storms.hpp"

namespace {

using namespace cosmicdance;

const spaceweather::DstIndex& shared_dst() {
  static const spaceweather::DstIndex dst = bench::paper_dst();
  return dst;
}

const core::CosmicDance& shared_pipeline() {
  static const core::CosmicDance pipeline(
      shared_dst(), bench::paper_catalog(shared_dst(), 2, 30.0));
  return pipeline;
}

void BM_DstGeneration(benchmark::State& state) {
  const auto config = spaceweather::DstGenerator::paper_window_2020_2024();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spaceweather::DstGenerator(config).generate());
  }
}
BENCHMARK(BM_DstGeneration);

void BM_StormDetection(benchmark::State& state) {
  const spaceweather::StormDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(shared_dst()));
  }
}
BENCHMARK(BM_StormDetection);

void BM_IntensityPercentile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(shared_dst().intensity_percentile(99.0));
  }
}
BENCHMARK(BM_IntensityPercentile);

void BM_AltitudeChangeSamples(benchmark::State& state) {
  const auto& pipeline = shared_pipeline();
  const double p95 = pipeline.dst_threshold_at_percentile(95.0);
  const auto epochs = pipeline.correlator().storm_event_epochs(p95);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.correlator().altitude_change_samples(
        pipeline.tracks(), epochs));
  }
}
BENCHMARK(BM_AltitudeChangeSamples);

void BM_CatalogIngestText(benchmark::State& state) {
  const std::string text = shared_pipeline().catalog().to_text();
  const auto records = shared_pipeline().catalog().record_count();
  for (auto _ : state) {
    tle::TleCatalog catalog;
    benchmark::DoNotOptimize(catalog.add_from_text(text));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
}
BENCHMARK(BM_CatalogIngestText);

void BM_PostEventEnvelope(benchmark::State& state) {
  const auto& pipeline = shared_pipeline();
  const double event_jd =
      timeutil::to_julian(timeutil::make_datetime(2023, 9, 18, 18));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.post_event_envelope(
        event_jd, 30, core::EnvelopeSelection::kAffectedHumped));
  }
}
BENCHMARK(BM_PostEventEnvelope);

/// The telemetry pass: one instrumented end-to-end run over the shared
/// bench dataset, exported via bench::write_bench_record.
void run_telemetry_pass(const std::string& out_path, int threads) {
  obs::Metrics metrics;

  // Re-ingest the catalog from text so tle.* counters and the ingest phase
  // are part of the record, then drive every instrumented pipeline stage.
  const auto& dst = shared_dst();
  const std::string text = shared_pipeline().catalog().to_text();
  tle::TleCatalog catalog;
  tle::IngestOptions ingest;
  ingest.num_threads = threads;
  ingest.source = "bench-catalog";
  ingest.metrics = &metrics;
  catalog.add_from_text(text, ingest);

  core::PipelineConfig config;
  config.num_threads = threads;
  config.metrics = &metrics;
  const core::CosmicDance pipeline(dst, std::move(catalog), config);
  const double p95 = pipeline.dst_threshold_at_percentile(95.0);
  const auto altitude = pipeline.altitude_changes_for_storms(p95);
  const auto drag = pipeline.drag_changes_for_storms(p95);
  const double event_jd =
      timeutil::to_julian(timeutil::make_datetime(2023, 9, 18, 18));
  const auto envelope = pipeline.post_event_envelope(
      event_jd, 30, core::EnvelopeSelection::kAffectedHumped);

  const obs::MetricsReport report = metrics.snapshot();
  const auto phase_ms = [&](const char* name) {
    const auto it = report.phases.find(name);
    return it != report.phases.end() ? it->second.total_ms : 0.0;
  };
  const auto count = [&](const char* name) {
    const auto it = report.counters.find(name);
    return it != report.counters.end() ? static_cast<double>(it->second) : 0.0;
  };

  std::map<std::string, double> throughput;
  const double ingest_ms = phase_ms("tle.add_from_text");
  if (ingest_ms > 0.0) {
    throughput["tle_records_per_s"] =
        count("tle.records_parsed") / (ingest_ms / 1000.0);
  }
  const double scan_ms = phase_ms("correlator.altitude_scan") +
                         phase_ms("correlator.drag_scan") +
                         phase_ms("correlator.envelope");
  if (scan_ms > 0.0) {
    throughput["correlator_cells_per_s"] =
        count("correlator.cells") / (scan_ms / 1000.0);
  }
  throughput["correlation_samples"] =
      static_cast<double>(altitude.size() + drag.size());

  bench::write_bench_record(out_path, "micro_pipeline", threads,
                            "paper_catalog(per_batch=2, cadence=30)",
                            throughput, metrics);
}

}  // namespace

int main(int argc, char** argv) {
  // Initialize() consumes the --benchmark_* flags and leaves the rest for
  // the ArgParser below (--benchmark_filter='^$' skips the suite entirely,
  // which CI uses to collect telemetry quickly).
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const io::ArgParser args(argc, argv);
  run_telemetry_pass(args.option_or("bench-out", "BENCH_pipeline.json"),
                     static_cast<int>(args.nonnegative_integer_or("threads", 0)));
  return 0;
}
