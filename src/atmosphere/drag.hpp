// Drag kinematics: ballistic coefficients, decay rates and the B* bridge.
#pragma once

#include "orbit/constants.hpp"

namespace cosmicdance::atmosphere {

/// Ballistic coefficient B = Cd * A / m in m^2/kg.  Throws ValidationError
/// for non-positive mass or area.
[[nodiscard]] double ballistic_coefficient(double drag_coefficient, double area_m2,
                                           double mass_kg);

/// Instantaneous drag deceleration (m/s^2) for speed v (m/s).
[[nodiscard]] double drag_acceleration_ms2(double density_kg_m3, double speed_ms,
                                           double ballistic_m2_kg) noexcept;

/// Orbit-averaged decay rate of a circular orbit's semi-major axis:
///   da/dt = -sqrt(mu*a) * rho * B
/// returned in km/day for an altitude in km (geodetic, WGS-72 radius).
[[nodiscard]] double circular_decay_rate_km_per_day(
    double altitude_km, double density_kg_m3, double ballistic_m2_kg,
    const orbit::GravityModel& g = orbit::wgs72());

/// Reference air density constant of the B* convention
/// (rho_0 = 0.157 kg / (m^2 * Earth radius)).
inline constexpr double kBstarReferenceDensity = 0.157;

/// B* drag term (1/Earth-radii) for a ballistic coefficient, scaled by the
/// local density relative to a reference density (B* is fitted, so storm
/// epochs carry larger effective values):
///   B* = 0.5 * rho_0 * B * density_ratio
[[nodiscard]] double bstar_from_ballistic(double ballistic_m2_kg,
                                          double density_ratio = 1.0) noexcept;

/// Inverse of bstar_from_ballistic at density_ratio = 1.
[[nodiscard]] double ballistic_from_bstar(double bstar) noexcept;

}  // namespace cosmicdance::atmosphere
