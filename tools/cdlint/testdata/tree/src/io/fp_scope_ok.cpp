// cdlint corpus: negative case for rule `fp-accumulation-order` (R13) in
// src/io/ — in scope since the v3 snapshot work, but double accumulation
// in a fixed-order loop is exactly the sanctioned idiom, so nothing flags.
#include <cstddef>
#include <vector>

double total_section_bytes(const std::vector<double>& lengths) {
  double total = 0.0;  // negative: double accumulator, fixed-order loop
  for (const double length : lengths) total += length;
  return total;
}
