#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/rolling.hpp"

namespace cosmicdance::stats {
namespace {

TEST(PercentileTest, Endpoints) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);
}

TEST(PercentileTest, LinearInterpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(PercentileTest, SingleElement) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 42.0);
}

TEST(PercentileTest, Errors) {
  const std::vector<double> empty;
  const std::vector<double> v{1.0};
  EXPECT_THROW(static_cast<void>(percentile(empty, 50.0)), ValidationError);
  EXPECT_THROW(static_cast<void>(percentile(v, -1.0)), ValidationError);
  EXPECT_THROW(static_cast<void>(percentile(v, 100.5)), ValidationError);
}

TEST(PercentileTest, BatchMatchesSingle) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0, 7.0};
  const std::vector<double> ps{10.0, 50.0, 95.0};
  const std::vector<double> batch = percentiles(v, ps);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], percentile(v, ps[i]));
  }
}

// Percentile is monotone in p and bounded by the sample range.
class PercentileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileProperty, MonotoneAndBounded) {
  Rng rng(GetParam());
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(rng.normal(0.0, 10.0));
  double previous = percentile(v, 0.0);
  EXPECT_DOUBLE_EQ(previous, min(v));
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double current = percentile(v, p);
    EXPECT_GE(current, previous);
    previous = current;
  }
  EXPECT_DOUBLE_EQ(previous, max(v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

TEST(DescriptiveTest, MeanVarianceStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, SingleElementVarianceIsZero) {
  const std::vector<double> v{3.0};
  EXPECT_DOUBLE_EQ(variance(v), 0.0);
}

TEST(DescriptiveTest, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(static_cast<void>(mean(empty)), ValidationError);
  EXPECT_THROW(static_cast<void>(variance(empty)), ValidationError);
  EXPECT_THROW(static_cast<void>(min(empty)), ValidationError);
  EXPECT_THROW(static_cast<void>(max(empty)), ValidationError);
  EXPECT_THROW(static_cast<void>(summarize(empty)), ValidationError);
}

TEST(DescriptiveTest, SummaryConsistent) {
  Rng rng(7);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.uniform(0.0, 100.0));
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, v.size());
  EXPECT_DOUBLE_EQ(s.min, min(v));
  EXPECT_DOUBLE_EQ(s.max, max(v));
  EXPECT_DOUBLE_EQ(s.median, median(v));
  EXPECT_DOUBLE_EQ(s.p95, percentile(v, 95.0));
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(EcdfTest, StepValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Ecdf ecdf(v);
  EXPECT_DOUBLE_EQ(ecdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf(100.0), 1.0);
}

TEST(EcdfTest, QuantileInvertsRoughly) {
  Rng rng(11);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.normal(0.0, 1.0));
  const Ecdf ecdf(v);
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(ecdf(ecdf.quantile(q)), q, 0.01);
  }
}

TEST(EcdfTest, QuantileMatchesPercentile) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const Ecdf ecdf(v);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), percentile(v, 50.0));
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 5.0);
}

TEST(EcdfTest, Errors) {
  const std::vector<double> empty;
  EXPECT_THROW(Ecdf{empty}, ValidationError);
  const std::vector<double> v{1.0};
  const Ecdf ecdf(v);
  EXPECT_THROW(static_cast<void>(ecdf.quantile(-0.1)), ValidationError);
  EXPECT_THROW(static_cast<void>(ecdf.quantile(1.1)), ValidationError);
}

TEST(EcdfTest, PointsThinnedAndTerminated) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(static_cast<double>(i));
  const Ecdf ecdf(v);
  const auto pts = ecdf.points(50);
  EXPECT_LE(pts.size(), 52u);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().first, 999.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
}

TEST(HistogramTest, BinningAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // first bin (inclusive lower edge)
  h.add(9.99);  // last bin
  h.add(10.0);  // overflow (exclusive upper edge)
  h.add(-0.1);  // underflow
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, FractionsSumToOne) {
  Histogram h(0.0, 1.0, 4);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) sum += h.fraction(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);  // all samples in range
}

TEST(HistogramTest, BinGeometry) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 15.0);
  EXPECT_THROW(static_cast<void>(h.bin_lower(5)), ValidationError);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ValidationError);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), ValidationError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ValidationError);
}

TEST(HistogramTest, ValidatesBeforeComputingWidthOrAllocating) {
  // Validation must run in the member-initializer list, before the width
  // division and the counts allocation.  An inverted range combined with an
  // absurd bin count would otherwise attempt a SIZE_MAX-slot allocation
  // before the constructor body could reject it.
  EXPECT_THROW(Histogram(1.0, 0.0, std::numeric_limits<std::size_t>::max()),
               ValidationError);
  // bins == 0 with a valid range must throw before dividing by zero.
  EXPECT_THROW(Histogram(0.0, 10.0, 0), ValidationError);
}

TEST(RollingTest, WindowMedianRespectsBounds) {
  const std::vector<TimedValue> series{
      {0.0, 1.0}, {1.0, 2.0}, {2.0, 30.0}, {3.0, 4.0}, {4.0, 5.0}};
  EXPECT_DOUBLE_EQ(window_median(series, 0.0, 2.0), 1.5);   // [0,2)
  EXPECT_DOUBLE_EQ(window_median(series, 2.0, 3.0), 30.0);  // just t=2
  EXPECT_THROW(static_cast<void>(window_median(series, 10.0, 20.0)), ValidationError);
}

TEST(RollingTest, WindowMeanAndCount) {
  const std::vector<TimedValue> series{{0.0, 2.0}, {1.0, 4.0}, {2.0, 6.0}};
  EXPECT_DOUBLE_EQ(window_mean(series, 0.0, 3.0), 4.0);
  EXPECT_EQ(window_count(series, 0.5, 2.5), 2u);
  EXPECT_EQ(window_count(series, 5.0, 9.0), 0u);
}

TEST(RollingTest, NeighborLookups) {
  const std::vector<TimedValue> series{{1.0, 10.0}, {3.0, 30.0}, {5.0, 50.0}};
  EXPECT_EQ(last_at_or_before(series, 0.5), nullptr);
  EXPECT_DOUBLE_EQ(last_at_or_before(series, 3.0)->value, 30.0);
  EXPECT_DOUBLE_EQ(last_at_or_before(series, 4.9)->value, 30.0);
  EXPECT_DOUBLE_EQ(first_at_or_after(series, 3.1)->value, 50.0);
  EXPECT_EQ(first_at_or_after(series, 5.1), nullptr);
}

TEST(RollingTest, RollingMedianSmoothsSpike) {
  std::vector<TimedValue> series;
  for (int i = 0; i < 20; ++i) {
    series.push_back({static_cast<double>(i), i == 10 ? 100.0 : 1.0});
  }
  const std::vector<double> smooth = rolling_median(series, 2.0);
  ASSERT_EQ(smooth.size(), series.size());
  EXPECT_DOUBLE_EQ(smooth[10], 1.0);  // spike suppressed by the window
  EXPECT_THROW(rolling_median(series, -1.0), ValidationError);
}

TEST(RollingTest, RollingMedianInclusiveBoundHoldsAtJulianDateMagnitude) {
  // Regression: the inclusive right endpoint was once implemented as
  // `time < t_hi + 1e-12`.  At Julian-date magnitudes (~2.46e6, where one
  // ulp is ~4.6e-10) the epsilon is absorbed and the comparison silently
  // turns exclusive, so windows at TLE-epoch timestamps dropped their
  // boundary sample.  The window must be shift-invariant instead.
  const double jd = 2460000.5;  // 2023-02-25, a realistic TLE epoch
  const std::vector<double> values{10.0, 20.0, 30.0};
  std::vector<TimedValue> at_origin;
  std::vector<TimedValue> at_jd;
  for (std::size_t i = 0; i < values.size(); ++i) {
    at_origin.push_back({static_cast<double>(i), values[i]});
    at_jd.push_back({jd + static_cast<double>(i), values[i]});
  }
  // half_width 1.0: each window spans [t-1, t+1] inclusive, so the
  // boundary neighbours are in: {10,20} -> 15, {10,20,30} -> 20,
  // {20,30} -> 25.
  const std::vector<double> expected{15.0, 20.0, 25.0};
  const std::vector<double> origin_medians = rolling_median(at_origin, 1.0);
  const std::vector<double> jd_medians = rolling_median(at_jd, 1.0);
  ASSERT_EQ(origin_medians.size(), expected.size());
  ASSERT_EQ(jd_medians.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(origin_medians[i], expected[i]) << "origin index " << i;
    EXPECT_DOUBLE_EQ(jd_medians[i], expected[i]) << "jd index " << i;
  }
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(6);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.normal(5.0, 2.0));
  EXPECT_NEAR(mean(v), 5.0, 0.1);
  EXPECT_NEAR(stddev(v), 2.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(8);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.exponential(3.0));
  EXPECT_NEAR(mean(v), 3.0, 0.15);
  EXPECT_GE(min(v), 0.0);
}

TEST(RngTest, PoissonMean) {
  Rng rng(9);
  double total = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.poisson(4.5));
  EXPECT_NEAR(total / n, 4.5, 0.2);
  // Large-mean path.
  total = 0.0;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.poisson(80.0));
  EXPECT_NEAR(total / n, 80.0, 1.0);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(10);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(12);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, SplitIndependence) {
  Rng parent(77);
  Rng child = parent.split();
  // The child stream should not replay the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace cosmicdance::stats
