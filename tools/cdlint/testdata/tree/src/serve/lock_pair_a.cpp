// cdlint corpus: seeded violations for rule `lock-order-cycle` (R10).
// This file nests order_a_ -> order_b_; lock_pair_b.cpp nests the reverse,
// so the cycle only exists across the two files.
#include <mutex>

std::mutex order_a_;
std::mutex order_b_;
std::mutex consistent_c_;
std::mutex consistent_d_;
std::mutex allowed_e_;
std::mutex allowed_f_;

void nest_ab() {
  std::lock_guard<std::mutex> outer(order_a_);
  {
    std::lock_guard<std::mutex> inner(order_b_);  // positive: reversed in lock_pair_b.cpp
  }
}

void nest_cd() {
  std::lock_guard<std::mutex> outer(consistent_c_);
  std::lock_guard<std::mutex> inner(consistent_d_);  // negative: same order everywhere
}

void nest_ef() {
  std::lock_guard<std::mutex> outer(allowed_e_);
  // cdlint: allow(lock-order-cycle) corpus seed: reversed pair runs in startup only, single-threaded
  std::lock_guard<std::mutex> inner(allowed_f_);
}
