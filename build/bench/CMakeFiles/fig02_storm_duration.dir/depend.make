# Empty dependencies file for fig02_storm_duration.
# This may be replaced when dependencies are built.
