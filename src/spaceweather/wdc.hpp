// WDC Kyoto hourly-value exchange format for the Dst index.
//
// One 120-character record per UT day:
//   cols 1-3   index name ("DST")
//   cols 4-5   year (two digits)
//   cols 6-7   month
//   col  8     '*'
//   cols 9-10  day of month
//   col  11    record flag ('R' real-time, 'P' provisional, 'F' final)
//   col  12    'R' (reserved)
//   col  13    'X' (version)
//   cols 15-16 century digits ("19"/"20")
//   cols 17-20 base value (units of 100 nT)
//   cols 21-116  24 hourly values, 4 chars each, relative to the base value
//   cols 117-120 daily mean
// A value of 9999 marks a missing hour.  This mirrors the archive layout so
// the ingestion code path is identical to consuming the real data.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "diag/diag.hpp"
#include "spaceweather/dst_index.hpp"

namespace cosmicdance::spaceweather {

/// Serialise a Dst series as WDC daily records.  The series is padded with
/// missing-value markers to whole UT days.
[[nodiscard]] std::string to_wdc(const DstIndex& dst);

/// Parse WDC records (one per line; blank lines ignored).  Missing hours at
/// the edges are trimmed; missing hours in the interior throw ParseError
/// (the archive has none in the covered period).
///
/// With a ParseLog (stage "wdc"), a tolerant policy changes two things:
/// malformed day records are quarantined by line number instead of
/// throwing, and interior gaps (missing hours, including holes left by a
/// quarantined day) are linearly interpolated between their neighbours,
/// with each filled hour counted as repaired.  Out-of-order or duplicate
/// day records are quarantined as structure errors.
/// Takes a view so the zero-copy path can pass a MappedFile's contents.
[[nodiscard]] DstIndex from_wdc(std::string_view text,
                                diag::ParseLog* log = nullptr,
                                const std::string& source = "<text>");

/// Incremental variant: parse `tail` (WDC records appended after the text
/// that produced `dst`) and extend the series in place.  `first_line` is
/// the 1-based file line number of the tail's first line, so diagnostics
/// cite absolute positions.  Records are parsed and committed line by
/// line — the same single pass from_wdc uses — so parsing a prefix and
/// then its tail yields bit-identical values, counters and quarantine
/// order to parsing the whole text at once.  from_wdc(text) is exactly
/// from_wdc_append(empty, text).
void from_wdc_append(DstIndex& dst, std::string_view tail,
                     diag::ParseLog* log = nullptr,
                     const std::string& source = "<text>",
                     std::size_t first_line = 1);

/// File variants.  Throw IoError on filesystem problems.  Reading is
/// mmap-backed when available.
void write_wdc_file(const std::string& path, const DstIndex& dst);
[[nodiscard]] DstIndex read_wdc_file(const std::string& path,
                                     diag::ParseLog* log = nullptr);

}  // namespace cosmicdance::spaceweather
