# Empty dependencies file for cd_io.
# This may be replaced when dependencies are built.
