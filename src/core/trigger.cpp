#include "core/trigger.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cosmicdance::core {

StormTrigger::StormTrigger(StormTriggerConfig config) : config_(config) {
  if (config_.release_nt <= config_.onset_nt) {
    throw ValidationError("trigger release threshold must sit above onset");
  }
  if (config_.min_active_hours < 1 || config_.min_quiet_hours < 1) {
    throw ValidationError("trigger debounce hours must be >= 1");
  }
}

std::optional<TriggerEvent> StormTrigger::feed(timeutil::HourIndex hour,
                                               double dst_nt) {
  if (started_ && hour != last_hour_ + 1) {
    throw ValidationError("trigger feed must be hourly-contiguous (got hour " +
                          std::to_string(hour) + " after " +
                          std::to_string(last_hour_) + ")");
  }
  started_ = true;
  last_hour_ = hour;

  if (!active_) {
    if (dst_nt <= config_.onset_nt) {
      // The deepest Dst of the debounce window is the onset's peak: the
      // firing hour is often shallower than the hours that qualified it.
      pending_peak_ =
          qualifying_hours_ == 0 ? dst_nt : std::min(pending_peak_, dst_nt);
      ++qualifying_hours_;
      if (qualifying_hours_ >= config_.min_active_hours) {
        active_ = true;
        qualifying_hours_ = 0;
        quiet_hours_ = 0;
        peak_ = pending_peak_;
        return TriggerEvent{TriggerEvent::Kind::kOnset, hour, dst_nt, peak_};
      }
    } else {
      qualifying_hours_ = 0;
    }
    return std::nullopt;
  }

  peak_ = std::min(peak_, dst_nt);
  if (dst_nt > config_.release_nt) {
    ++quiet_hours_;
    if (quiet_hours_ >= config_.min_quiet_hours) {
      active_ = false;
      quiet_hours_ = 0;
      TriggerEvent event{TriggerEvent::Kind::kRelease, hour, dst_nt, peak_};
      peak_ = 0.0;
      return event;
    }
  } else {
    quiet_hours_ = 0;
  }
  return std::nullopt;
}

std::vector<TriggerEvent> StormTrigger::replay(const spaceweather::DstIndex& dst) {
  std::vector<TriggerEvent> events;
  for (timeutil::HourIndex hour = dst.start_hour(); hour < dst.end_hour(); ++hour) {
    if (auto event = feed(hour, dst.at(hour))) events.push_back(*event);
  }
  return events;
}

}  // namespace cosmicdance::core
