# Empty dependencies file for ext_feb2022.
# This may be replaced when dependencies are built.
