file(REMOVE_RECURSE
  "CMakeFiles/fig03_timeseries.dir/fig03_timeseries.cpp.o"
  "CMakeFiles/fig03_timeseries.dir/fig03_timeseries.cpp.o.d"
  "fig03_timeseries"
  "fig03_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
