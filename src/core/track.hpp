// Per-satellite trajectory tracks derived from TLE histories.
//
// A track is the pipeline's working representation of one satellite: the
// orbital elements of every TLE plus the paper's two derived observables —
// altitude (from mean motion) and drag (the B* term).
#pragma once

#include <optional>
#include <vector>

#include "stats/rolling.hpp"
#include "tle/catalog.hpp"

namespace cosmicdance::obs {
class Metrics;
}  // namespace cosmicdance::obs

namespace cosmicdance::core {

/// One TLE reduced to the quantities the analyses consume.
struct TrajectorySample {
  double epoch_jd = 0.0;
  double altitude_km = 0.0;  ///< derived from mean motion
  double bstar = 0.0;        ///< the paper's "atmospheric drag" observable
  double inclination_deg = 0.0;
  double raan_deg = 0.0;
  double eccentricity = 0.0;
  double arg_perigee_deg = 0.0;
  double mean_anomaly_deg = 0.0;
  double mean_motion_revday = 0.0;
};

/// Epoch-sorted trajectory of one satellite.
class SatelliteTrack {
 public:
  SatelliteTrack() = default;
  SatelliteTrack(int catalog_number, std::vector<TrajectorySample> samples);

  /// Build from a satellite's TLE history (assumed epoch-sorted, as
  /// TleCatalog guarantees).
  static SatelliteTrack from_tles(int catalog_number,
                                  std::span<const tle::Tle> history);

  [[nodiscard]] int catalog_number() const noexcept { return catalog_; }
  [[nodiscard]] const std::vector<TrajectorySample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

  /// Long-term median altitude over the whole track.  Throws when empty.
  [[nodiscard]] double median_altitude_km() const;

  /// Last sample at or before `jd`, or nullptr.
  [[nodiscard]] const TrajectorySample* at_or_before(double jd) const noexcept;
  /// First sample at or after `jd`, or nullptr.
  [[nodiscard]] const TrajectorySample* at_or_after(double jd) const noexcept;

  /// Samples with epoch in [jd_lo, jd_hi).
  [[nodiscard]] std::span<const TrajectorySample> between(double jd_lo,
                                                          double jd_hi) const noexcept;

  /// (epoch, altitude) view for the windowed-statistics helpers.
  [[nodiscard]] std::vector<stats::TimedValue> altitude_series() const;
  /// (epoch, bstar) view.
  [[nodiscard]] std::vector<stats::TimedValue> bstar_series() const;

  /// Replace the sample set (used by the cleaning passes).
  void set_samples(std::vector<TrajectorySample> samples);

 private:
  int catalog_ = 0;
  std::vector<TrajectorySample> samples_;
  /// Lazy cache for median_altitude_km(): the event correlator queries it
  /// once per (event, satellite) pair; invalidated by set_samples.
  mutable double cached_median_altitude_ = 0.0;
  mutable bool median_cache_valid_ = false;
};

/// Build one track per satellite from a catalog, in catalog-number order.
/// num_threads: 0 = all hardware threads, 1 = serial, n = n workers; the
/// output is identical for every value (exec::parallel_for contract).
/// `metrics` (optional) records track.built / track.samples counters.
[[nodiscard]] std::vector<SatelliteTrack> tracks_from_catalog(
    const tle::TleCatalog& catalog, int num_threads = 1,
    obs::Metrics* metrics = nullptr);

/// Populate every non-empty track's median-altitude cache, one track per
/// worker.  Call before sharing a track set across threads: afterwards the
/// cache is read-only, so concurrent median_altitude_km() calls are safe.
void warm_median_caches(std::span<const SatelliteTrack> tracks, int num_threads);

}  // namespace cosmicdance::core
