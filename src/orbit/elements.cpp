#include "orbit/elements.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cosmicdance::orbit {

void KeplerianElements::validate() const {
  if (semi_major_axis_km <= 0.0) {
    throw ValidationError("semi-major axis must be positive: " +
                          std::to_string(semi_major_axis_km));
  }
  if (eccentricity < 0.0 || eccentricity >= 1.0) {
    throw ValidationError("eccentricity outside [0,1): " +
                          std::to_string(eccentricity));
  }
  if (inclination_rad < 0.0 || inclination_rad > units::kPi) {
    throw ValidationError("inclination outside [0,pi]: " +
                          std::to_string(inclination_rad));
  }
}

double mean_motion_revday_from_sma(double sma_km, const GravityModel& g) {
  if (sma_km <= 0.0) {
    throw ValidationError("semi-major axis must be positive: " +
                          std::to_string(sma_km));
  }
  const double n_rad_per_sec = std::sqrt(g.mu / (sma_km * sma_km * sma_km));
  return n_rad_per_sec * units::kSecondsPerDay / units::kTwoPi;
}

double sma_from_mean_motion_revday(double revs_per_day, const GravityModel& g) {
  if (revs_per_day <= 0.0) {
    throw ValidationError("mean motion must be positive: " +
                          std::to_string(revs_per_day));
  }
  const double n_rad_per_sec = revs_per_day * units::kTwoPi / units::kSecondsPerDay;
  return std::cbrt(g.mu / (n_rad_per_sec * n_rad_per_sec));
}

double altitude_km_from_mean_motion(double revs_per_day, const GravityModel& g) {
  return sma_from_mean_motion_revday(revs_per_day, g) - g.radius_earth_km;
}

double mean_motion_from_altitude_km(double altitude_km, const GravityModel& g) {
  return mean_motion_revday_from_sma(altitude_km + g.radius_earth_km, g);
}

double period_minutes(double revs_per_day) {
  if (revs_per_day <= 0.0) {
    throw ValidationError("mean motion must be positive: " +
                          std::to_string(revs_per_day));
  }
  return units::kMinutesPerDay / revs_per_day;
}

double circular_speed_kms(double radius_km, const GravityModel& g) {
  if (radius_km <= 0.0) {
    throw ValidationError("radius must be positive: " + std::to_string(radius_km));
  }
  return std::sqrt(g.mu / radius_km);
}

}  // namespace cosmicdance::orbit
