
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atmosphere/drag.cpp" "src/atmosphere/CMakeFiles/cd_atmosphere.dir/drag.cpp.o" "gcc" "src/atmosphere/CMakeFiles/cd_atmosphere.dir/drag.cpp.o.d"
  "/root/repo/src/atmosphere/exponential.cpp" "src/atmosphere/CMakeFiles/cd_atmosphere.dir/exponential.cpp.o" "gcc" "src/atmosphere/CMakeFiles/cd_atmosphere.dir/exponential.cpp.o.d"
  "/root/repo/src/atmosphere/lifetime.cpp" "src/atmosphere/CMakeFiles/cd_atmosphere.dir/lifetime.cpp.o" "gcc" "src/atmosphere/CMakeFiles/cd_atmosphere.dir/lifetime.cpp.o.d"
  "/root/repo/src/atmosphere/stationkeeping_budget.cpp" "src/atmosphere/CMakeFiles/cd_atmosphere.dir/stationkeeping_budget.cpp.o" "gcc" "src/atmosphere/CMakeFiles/cd_atmosphere.dir/stationkeeping_budget.cpp.o.d"
  "/root/repo/src/atmosphere/storm_density.cpp" "src/atmosphere/CMakeFiles/cd_atmosphere.dir/storm_density.cpp.o" "gcc" "src/atmosphere/CMakeFiles/cd_atmosphere.dir/storm_density.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeutil/CMakeFiles/cd_timeutil.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/cd_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/spaceweather/CMakeFiles/cd_spaceweather.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cd_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
