#include "core/correlator.hpp"

#include "spaceweather/gscale.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/error.hpp"
#include "exec/parallel_for.hpp"
#include "obs/obs.hpp"
#include "stats/descriptive.hpp"
#include "timeutil/hour_axis.hpp"

namespace cosmicdance::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Hoisted per-scan counter handles (one registry lookup per scan, one
/// relaxed atomic add per cell when enabled, nothing when disabled).
struct CellCounters {
  obs::Counter* evaluated = nullptr;
  obs::Counter* skipped_predecayed = nullptr;
  obs::Counter* skipped_no_pre = nullptr;
  obs::Counter* skipped_empty_window = nullptr;

  explicit CellCounters(obs::Metrics* metrics)
      : evaluated(obs::counter_or_null(metrics, "correlator.cells")),
        skipped_predecayed(
            obs::counter_or_null(metrics, "correlator.cells_skipped_predecayed")),
        skipped_no_pre(
            obs::counter_or_null(metrics, "correlator.cells_skipped_no_pre")),
        skipped_empty_window(obs::counter_or_null(
            metrics, "correlator.cells_skipped_empty_window")) {}
};

}  // namespace

EventCorrelator::EventCorrelator(const spaceweather::DstIndex* dst,
                                 CorrelatorConfig config)
    : dst_(dst), config_(config) {
  if (dst_ == nullptr) throw ValidationError("correlator requires a Dst series");
}

PostEventEnvelope EventCorrelator::post_event_envelope(
    std::span<const SatelliteTrack> tracks, double event_jd, int days,
    EnvelopeSelection selection) const {
  if (days <= 0) throw ValidationError("envelope window must be positive");
  const obs::ScopedPhase phase(config_.metrics, "correlator.envelope");
  PostEventEnvelope envelope;
  envelope.event_jd = event_jd;
  envelope.days = days;

  // One worker per track; a track's per-day profile depends only on that
  // track, so assembling the results in track order reproduces the serial
  // loop exactly.  Median caches are warmed first because is_pre_decayed
  // and the humped rule both read them.
  warm_median_caches(tracks, config_.num_threads);
  const CellCounters cells(config_.metrics);
  struct TrackProfile {
    bool selected = false;
    int catalog_number = 0;
    std::vector<double> profile;
  };
  auto profiles = exec::ordered_map<TrackProfile>(
      tracks.size(), config_.num_threads,
      [&](std::size_t t) {
        TrackProfile result;
        const SatelliteTrack& track = tracks[t];
        obs::bump(cells.evaluated);
        if (is_pre_decayed(track, event_jd, config_.cleaning)) {
          obs::bump(cells.skipped_predecayed);
          return result;
        }
        const TrajectorySample* pre = track.at_or_before(event_jd);
        // is_pre_decayed currently rejects tracks with no pre-event sample,
        // but that is its policy, not this scan's invariant: guard locally
        // so a cleaning-config change can never turn this into a null
        // dereference.
        if (pre == nullptr) {
          obs::bump(cells.skipped_no_pre);
          return result;
        }
        const auto window = track.between(event_jd, event_jd + days);
        if (window.empty()) {
          obs::bump(cells.skipped_empty_window);
          return result;
        }

        // Per-day |altitude - pre| profile.
        std::vector<double> profile(static_cast<std::size_t>(days), kNan);
        for (const TrajectorySample& sample : window) {
          const auto day = static_cast<std::size_t>(sample.epoch_jd - event_jd);
          if (day >= profile.size()) continue;
          const double deviation =
              std::fabs(sample.altitude_km - pre->altitude_km);
          // Keep the day's largest deviation (conservative per-day summary).
          if (!std::isfinite(profile[day]) || deviation > profile[day]) {
            profile[day] = deviation;
          }
        }
        // Forward-fill days without a TLE: the altitude persists between
        // records (refresh gaps reach 154 h), so the last known deviation is
        // the best per-day estimate and keeps the daily aggregates from being
        // dominated by whichever satellites happened to be observed that day.
        for (std::size_t day = 1; day < profile.size(); ++day) {
          if (!std::isfinite(profile[day]) && std::isfinite(profile[day - 1])) {
            profile[day] = profile[day - 1];
          }
        }

        if (selection == EnvelopeSelection::kAffectedHumped) {
          // The Fig 4a rule on |altitude - long-term median|.
          const double long_term = track.median_altitude_km();
          std::vector<double> diffs;
          diffs.reserve(window.size());
          for (const TrajectorySample& sample : window) {
            diffs.push_back(std::fabs(sample.altitude_km - long_term));
          }
          const double window_median = stats::median(diffs);
          const double first_diff = diffs.front();
          const double last_diff = diffs.back();
          if (!(window_median > first_diff && window_median > last_diff &&
                window_median >= config_.humped_min_excursion_km)) {
            return result;
          }
        }

        result.selected = true;
        result.catalog_number = track.catalog_number();
        result.profile = std::move(profile);
        return result;
      },
      config_.metrics);
  obs::Counter* selected =
      obs::counter_or_null(config_.metrics, "correlator.envelope_selected");
  for (TrackProfile& result : profiles) {
    if (!result.selected) continue;
    obs::bump(selected);
    envelope.satellites.push_back(result.catalog_number);
    envelope.per_satellite.push_back(std::move(result.profile));
  }

  envelope.median_km.assign(static_cast<std::size_t>(days), kNan);
  envelope.p95_km.assign(static_cast<std::size_t>(days), kNan);
  // Each day aggregates a disjoint output slot, so days parallelise freely.
  exec::parallel_for(
      static_cast<std::size_t>(days), config_.num_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t d = begin; d < end; ++d) {
          std::vector<double> day_values;
          for (const auto& profile : envelope.per_satellite) {
            const double v = profile[d];
            if (std::isfinite(v)) day_values.push_back(v);
          }
          if (day_values.empty()) continue;
          envelope.median_km[d] = stats::median(day_values);
          envelope.p95_km[d] = stats::percentile(day_values, 95.0);
        }
      },
      config_.metrics);
  return envelope;
}

std::vector<double> EventCorrelator::altitude_change_samples(
    std::span<const SatelliteTrack> tracks,
    std::span<const double> event_jds) const {
  if (tracks.empty() || event_jds.empty()) return {};
  const obs::ScopedPhase phase(config_.metrics, "correlator.altitude_scan");
  warm_median_caches(tracks, config_.num_threads);
  const CellCounters counters(config_.metrics);
  // Flatten the event-major serial loop into (event, track) cells: each
  // cell computes independently and the filtered concatenation below keeps
  // the serial push_back order.
  auto cells = exec::ordered_map<std::optional<double>>(
      event_jds.size() * tracks.size(), config_.num_threads,
      [&](std::size_t i) -> std::optional<double> {
        const double event_jd = event_jds[i / tracks.size()];
        const SatelliteTrack& track = tracks[i % tracks.size()];
        obs::bump(counters.evaluated);
        if (is_pre_decayed(track, event_jd, config_.cleaning)) {
          obs::bump(counters.skipped_predecayed);
          return std::nullopt;
        }
        const TrajectorySample* pre = track.at_or_before(event_jd);
        // Guard even though is_pre_decayed rejects sample-free prefixes
        // today; see post_event_envelope.
        if (pre == nullptr) {
          obs::bump(counters.skipped_no_pre);
          return std::nullopt;
        }
        const auto window = track.between(event_jd, event_jd + config_.window_days);
        if (window.empty()) {
          obs::bump(counters.skipped_empty_window);
          return std::nullopt;
        }
        double max_deviation = 0.0;
        for (const TrajectorySample& sample : window) {
          max_deviation = std::max(
              max_deviation, std::fabs(sample.altitude_km - pre->altitude_km));
        }
        return max_deviation;
      },
      config_.metrics);
  std::vector<double> samples;
  for (const auto& cell : cells) {
    if (cell.has_value()) samples.push_back(*cell);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->counter("correlator.samples").add(samples.size());
  }
  return samples;
}

std::vector<double> EventCorrelator::drag_change_samples(
    std::span<const SatelliteTrack> tracks,
    std::span<const double> event_jds) const {
  if (tracks.empty() || event_jds.empty()) return {};
  const obs::ScopedPhase phase(config_.metrics, "correlator.drag_scan");
  warm_median_caches(tracks, config_.num_threads);
  const CellCounters counters(config_.metrics);
  auto cells = exec::ordered_map<std::optional<double>>(
      event_jds.size() * tracks.size(), config_.num_threads,
      [&](std::size_t i) -> std::optional<double> {
        const double event_jd = event_jds[i / tracks.size()];
        const SatelliteTrack& track = tracks[i % tracks.size()];
        obs::bump(counters.evaluated);
        if (is_pre_decayed(track, event_jd, config_.cleaning)) {
          obs::bump(counters.skipped_predecayed);
          return std::nullopt;
        }
        const TrajectorySample* pre = track.at_or_before(event_jd);
        // Guard even though is_pre_decayed rejects sample-free prefixes
        // today; see post_event_envelope.
        if (pre == nullptr) {
          obs::bump(counters.skipped_no_pre);
          return std::nullopt;
        }
        if (pre->bstar <= 0.0) return std::nullopt;
        const auto window = track.between(event_jd, event_jd + config_.window_days);
        if (window.empty()) {
          obs::bump(counters.skipped_empty_window);
          return std::nullopt;
        }
        double max_bstar = 0.0;
        for (const TrajectorySample& sample : window) {
          max_bstar = std::max(max_bstar, sample.bstar);
        }
        if (max_bstar <= 0.0) return std::nullopt;
        return max_bstar / pre->bstar;
      },
      config_.metrics);
  std::vector<double> samples;
  for (const auto& cell : cells) {
    if (cell.has_value()) samples.push_back(*cell);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->counter("correlator.samples").add(samples.size());
  }
  return samples;
}

std::vector<double> EventCorrelator::storm_event_epochs(double max_peak_nt) const {
  std::vector<double> epochs;
  const spaceweather::StormDetector detector;
  for (const spaceweather::StormEvent& event : detector.detect(*dst_)) {
    if (event.peak_dst_nt <= max_peak_nt) {
      epochs.push_back(timeutil::julian_from_hour_index(event.peak_hour));
    }
  }
  return epochs;
}

std::pair<std::vector<double>, std::vector<double>>
EventCorrelator::storm_epochs_by_duration(double max_peak_nt,
                                          double split_hours) const {
  std::pair<std::vector<double>, std::vector<double>> result;
  const spaceweather::StormDetector detector;
  for (const spaceweather::StormEvent& event : detector.detect(*dst_)) {
    if (event.peak_dst_nt > max_peak_nt) continue;
    const double epoch = timeutil::julian_from_hour_index(event.peak_hour);
    if (static_cast<double>(event.duration_hours()) < split_hours) {
      result.first.push_back(epoch);
    } else {
      result.second.push_back(epoch);
    }
  }
  return result;
}

std::vector<double> EventCorrelator::quiet_epochs(double min_dst_nt,
                                                  std::size_t count,
                                                  double guard_days) const {
  std::vector<double> epochs;
  if (count == 0) return epochs;
  const auto guard = static_cast<timeutil::HourIndex>(guard_days * 24.0);
  const timeutil::HourIndex start = dst_->start_hour() + guard;
  const timeutil::HourIndex end = dst_->end_hour() - guard;
  if (end <= start) return epochs;
  // Deterministic stride scan: probe evenly spaced candidate hours and keep
  // those that are quiet themselves with no storm in the guard window.
  const timeutil::HourIndex stride =
      std::max<timeutil::HourIndex>((end - start) / (4 * static_cast<long>(count)), 1);
  for (timeutil::HourIndex hour = start; hour < end && epochs.size() < count;
       hour += stride) {
    if (dst_->at(hour) <= min_dst_nt) continue;
    bool quiet = true;
    for (timeutil::HourIndex probe = hour - guard; probe < hour + guard; ++probe) {
      if (dst_->at(probe) <= spaceweather::kMinorThresholdNt) {
        quiet = false;
        break;
      }
    }
    if (quiet) epochs.push_back(timeutil::julian_from_hour_index(hour));
  }
  return epochs;
}

}  // namespace cosmicdance::core
