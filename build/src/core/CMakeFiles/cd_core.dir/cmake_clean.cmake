file(REMOVE_RECURSE
  "CMakeFiles/cd_core.dir/analysis.cpp.o"
  "CMakeFiles/cd_core.dir/analysis.cpp.o.d"
  "CMakeFiles/cd_core.dir/cleaning.cpp.o"
  "CMakeFiles/cd_core.dir/cleaning.cpp.o.d"
  "CMakeFiles/cd_core.dir/conjunctions.cpp.o"
  "CMakeFiles/cd_core.dir/conjunctions.cpp.o.d"
  "CMakeFiles/cd_core.dir/correlator.cpp.o"
  "CMakeFiles/cd_core.dir/correlator.cpp.o.d"
  "CMakeFiles/cd_core.dir/export.cpp.o"
  "CMakeFiles/cd_core.dir/export.cpp.o.d"
  "CMakeFiles/cd_core.dir/kessler.cpp.o"
  "CMakeFiles/cd_core.dir/kessler.cpp.o.d"
  "CMakeFiles/cd_core.dir/latitude.cpp.o"
  "CMakeFiles/cd_core.dir/latitude.cpp.o.d"
  "CMakeFiles/cd_core.dir/maneuvers.cpp.o"
  "CMakeFiles/cd_core.dir/maneuvers.cpp.o.d"
  "CMakeFiles/cd_core.dir/merge.cpp.o"
  "CMakeFiles/cd_core.dir/merge.cpp.o.d"
  "CMakeFiles/cd_core.dir/pipeline.cpp.o"
  "CMakeFiles/cd_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/cd_core.dir/report.cpp.o"
  "CMakeFiles/cd_core.dir/report.cpp.o.d"
  "CMakeFiles/cd_core.dir/shells.cpp.o"
  "CMakeFiles/cd_core.dir/shells.cpp.o.d"
  "CMakeFiles/cd_core.dir/track.cpp.o"
  "CMakeFiles/cd_core.dir/track.cpp.o.d"
  "CMakeFiles/cd_core.dir/trigger.cpp.o"
  "CMakeFiles/cd_core.dir/trigger.cpp.o.d"
  "libcd_core.a"
  "libcd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
