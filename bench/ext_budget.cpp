// Extension: station-keeping propulsion budget across storm conditions —
// quantifying the "capable propulsion system" Starlink credited for riding
// out May 2024, and what a Carrington-scale event would demand.
#include <iostream>

#include "atmosphere/stationkeeping_budget.hpp"
#include "bench_common.hpp"
#include "io/table.hpp"

using namespace cosmicdance;

int main() {
  const spaceweather::DstIndex may2024 = bench::superstorm_dst();
  const spaceweather::DstIndex carrington =
      spaceweather::DstGenerator(spaceweather::DstGenerator::carrington_what_if())
          .generate();

  const double week_start =
      timeutil::to_julian(timeutil::make_datetime(2024, 5, 8));

  io::print_heading(std::cout,
                    "Drag make-up delta-v for one week starting 2024-05-08 "
                    "(knife-edge B = 0.004)");
  io::TablePrinter table({"altitude_km", "quiet", "May-2024 storm",
                          "Carrington what-if"});
  for (const double altitude : {350.0, 450.0, 550.0}) {
    const double quiet = atmosphere::stationkeeping_delta_v_ms(
        altitude, 0.004, week_start, 7.0);
    const double storm = atmosphere::stationkeeping_delta_v_ms(
        altitude, 0.004, week_start, 7.0, &may2024);
    const double extreme = atmosphere::stationkeeping_delta_v_ms(
        altitude, 0.004, week_start, 7.0, &carrington);
    table.add_row({io::TablePrinter::num(altitude, 0),
                   io::TablePrinter::num(quiet * 1000.0, 2) + " mm/s",
                   io::TablePrinter::num(storm * 1000.0, 2) + " mm/s",
                   io::TablePrinter::num(extreme * 1000.0, 2) + " mm/s"});
  }
  table.print(std::cout);

  io::print_heading(std::cout, "Annualised budgets at the 550 km shell");
  const double year_start =
      timeutil::to_julian(timeutil::make_datetime(2023, 1, 1));
  const spaceweather::DstIndex paper = bench::paper_dst();
  const double quiet_year = atmosphere::stationkeeping_delta_v_ms(
      550.0, 0.004, year_start, 365.0);
  const double real_year = atmosphere::stationkeeping_delta_v_ms(
      550.0, 0.004, year_start, 365.0, &paper);
  bench::expect("quiet-atmosphere year (m/s)", "baseline", quiet_year, 3);
  bench::expect("2023 with its storms (m/s)", "slightly above", real_year, 3);
  bench::expect("storm overhead (%)", "single digits",
                100.0 * (real_year - quiet_year) / quiet_year);
  bench::note("reading: drag make-up is cheap at 550 km even through storms");
  bench::note("— the fleet-killer is *uncontrolled* drag after an upset, not");
  bench::note("the propellant bill, matching the paper's failure taxonomy.");
  return 0;
}
