// The cosmicdanced query service: an immutable, atomically-swapped pipeline
// snapshot plus the request router that answers queries against it.
//
// Concurrency model (DESIGN.md §15): readers never block and never lock.
// The entire queryable state — Dst series, catalog, cleaned tracks,
// correlator — lives inside one `core::CosmicDance` owned by an immutable
// ServeSnapshot behind a `std::atomic<std::shared_ptr<const ServeSnapshot>>`.
// A request handler loads the pointer exactly once, builds its whole
// response from that object, and releases it; a concurrent reload builds
// the replacement pipeline entirely off to the side and swaps the pointer
// in one atomic store.  In-flight requests keep the old snapshot alive
// through their shared_ptr until the response is written, so a reader sees
// either the old epoch or the new one — never a mix.  Every response
// carries the snapshot's epoch twice ("epoch" first, "epoch_end" last):
// equal values are the wire-visible proof that no swap tore the response.
//
// The pipeline's const surface is safe to share: track median caches are
// warmed eagerly by the CosmicDance constructor, correlator scans draw from
// the shared exec pool (a plain mutex-guarded task queue, safe to enter
// from many request threads at once), and everything else is pure reads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "core/pipeline.hpp"

namespace cosmicdance::obs {
class Counter;
class Metrics;
}  // namespace cosmicdance::obs

namespace cosmicdance::serve {

/// One immutable serving epoch: the pipeline plus its epoch number.
struct ServeSnapshot {
  std::uint64_t epoch = 0;
  core::CosmicDance pipeline;

  ServeSnapshot(std::uint64_t epoch_number, core::CosmicDance built)
      : epoch(epoch_number), pipeline(std::move(built)) {}
};

/// What Service::handle tells the transport layer to do after responding.
struct HandleResult {
  std::string response;       ///< framed-payload JSON to send back
  bool shutdown = false;      ///< client asked the daemon to stop
};

/// The request router.  Thread-safe: handle() may be called concurrently
/// from any number of connection threads; reload() (also reachable via the
/// "reload" op) serialises rebuilds behind a mutex while readers keep
/// serving the old snapshot.
class Service {
 public:
  /// Rebuild callback for the "reload" op: produce a fresh pipeline (same
  /// inputs re-ingested — with a cache dir this is a warm snapshot load or
  /// a tail-only delta parse).  May throw; a throwing reload keeps the old
  /// snapshot and returns an error response.
  using Rebuild = std::function<core::CosmicDance()>;

  /// Takes the initial pipeline (becomes epoch 1).  `metrics` is optional
  /// and non-owning; when set, serve.requests / serve.errors / serve.reloads
  /// count every handled frame, error response and successful swap.
  Service(core::CosmicDance initial, Rebuild rebuild,
          obs::Metrics* metrics = nullptr);

  /// Current snapshot (never null).  Handlers call this exactly once.
  [[nodiscard]] std::shared_ptr<const ServeSnapshot> snapshot() const;

  /// Route one request payload (JSON text) to its handler and return the
  /// response payload.  Never throws: malformed JSON, unknown ops, bad
  /// parameters and failed reloads all produce {"ok":false,...} responses
  /// (counted in serve.errors).
  [[nodiscard]] HandleResult handle(std::string_view request);

  /// Rebuild + swap.  Returns the new epoch, or 0 when the rebuild threw
  /// (old snapshot stays).  Concurrent calls serialise.
  std::uint64_t reload();

 private:
  std::atomic<std::shared_ptr<const ServeSnapshot>> slot_;
  std::mutex reload_mutex_;
  Rebuild rebuild_;
  obs::Metrics* metrics_;
  obs::Counter* requests_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Counter* reloads_ = nullptr;
};

}  // namespace cosmicdance::serve
