#include "simulation/tracking.hpp"

#include <algorithm>
#include <cmath>

#include "atmosphere/drag.hpp"
#include "common/units.hpp"
#include "orbit/elements.hpp"

namespace cosmicdance::simulation {
namespace {

double wrap_deg(double deg) noexcept {
  double wrapped = std::fmod(deg, 360.0);
  if (wrapped < 0.0) wrapped += 360.0;
  return wrapped;
}

}  // namespace

TrackingSimulator::TrackingSimulator(TrackingConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

double TrackingSimulator::next_observation_jd(double previous_jd) {
  const double interval_hours =
      std::clamp(rng_.lognormal(config_.refresh_lognormal_mu,
                                config_.refresh_lognormal_sigma),
                 config_.refresh_min_hours, config_.refresh_max_hours);
  return previous_jd + interval_hours / units::kHoursPerDay;
}

tle::Tle TrackingSimulator::observe(const SatelliteState& satellite, double jd,
                                    double density_ratio,
                                    double decay_rate_km_per_day) {
  tle::Tle record;
  record.catalog_number = satellite.catalog_number;
  record.international_designator = satellite.international_designator;
  record.epoch_jd = jd;

  double observed_altitude =
      satellite.altitude_km + rng_.normal(0.0, config_.altitude_noise_km);
  if (rng_.bernoulli(config_.gross_error_probability)) {
    // Bad orbit fit: derived altitude lands far outside the shell; sample
    // log-uniform so the tail stretches to tens of thousands of km.
    const double log_lo = std::log(config_.gross_error_min_altitude_km);
    const double log_hi = std::log(config_.gross_error_max_altitude_km);
    observed_altitude = std::exp(rng_.uniform(log_lo, log_hi));
  }
  observed_altitude = std::max(observed_altitude, 120.0);
  record.mean_motion_revday = orbit::mean_motion_from_altitude_km(observed_altitude);

  record.inclination_deg =
      std::clamp(satellite.config.inclination_deg +
                     rng_.normal(0.0, config_.inclination_noise_deg),
                 0.0, 180.0);
  record.raan_deg = wrap_deg(satellite.raan_deg +
                             rng_.normal(0.0, config_.angle_noise_deg));
  record.arg_perigee_deg = wrap_deg(satellite.arg_perigee_deg +
                                    rng_.normal(0.0, config_.angle_noise_deg));
  record.mean_anomaly_deg = wrap_deg(satellite.mean_anomaly_deg +
                                     rng_.normal(0.0, config_.angle_noise_deg));
  record.eccentricity = std::clamp(
      satellite.config.eccentricity + rng_.normal(0.0, config_.eccentricity_noise),
      0.0, 0.01);

  // B* reflects the recently-fitted drag environment.
  const double bstar_clean = atmosphere::bstar_from_ballistic(
      satellite.ballistic_m2_kg(), density_ratio);
  record.bstar =
      bstar_clean * rng_.lognormal(0.0, config_.bstar_lognormal_sigma);

  // ndot/2 (rev/day^2) from the decay rate: dn/da = -1.5 n / a.
  const double a_km = observed_altitude + orbit::wgs72().radius_earth_km;
  const double dn_dt =
      -1.5 * record.mean_motion_revday / a_km * decay_rate_km_per_day;
  record.mean_motion_dot = std::clamp(dn_dt / 2.0, -0.9, 0.9);

  record.element_set_number = 999;
  record.rev_number = static_cast<int>(
      std::fmod((jd - satellite.launch_jd) * record.mean_motion_revday, 99999.0));
  if (record.rev_number < 0) record.rev_number = 0;
  return record;
}

}  // namespace cosmicdance::simulation
