#include "lexer.hpp"

#include <algorithm>
#include <cctype>

namespace cdlint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  });
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

}  // namespace

SourceFile::SourceFile(std::string path, const std::string& text)
    : path_(std::move(path)) {
  blank_literals(text);
  code_text_.clear();
  line_offsets_.clear();
  for (const std::string& line : code_) {
    line_offsets_.push_back(code_text_.size());
    code_text_ += line;
    code_text_.push_back('\n');
  }
  tokenize();
  // Resolve allow() targets: a directive on a code-bearing line covers that
  // line; a directive on a comment-only line covers the next line.
  for (AllowDirective& allow : allows_) {
    const std::size_t idx = allow.directive_line - 1;
    const bool standalone = idx < code_.size() && is_blank(code_[idx]);
    allow.target_line = standalone ? allow.directive_line + 1
                                   : allow.directive_line;
    if (allow.has_reason) {
      for (const std::string& rule : allow.rules) {
        reasoned_allows_by_line_[allow.target_line].insert(rule);
      }
    }
  }
}

void SourceFile::blank_literals(const std::string& text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;      // raw-string delimiter, e.g. )foo"
  std::string comment;        // text of the comment currently being read
  std::size_t comment_line = 0;
  std::string raw_line;
  std::string code_line;
  std::size_t line_number = 1;

  auto flush_comment = [&]() {
    if (!comment.empty()) parse_allow_comment(comment, comment_line);
    comment.clear();
  };
  auto end_line = [&]() {
    // Preprocessor directives keep their literal text (include paths live
    // inside quotes); nothing else interesting hides in them.
    const std::string trimmed = trim(raw_line);
    if (!trimmed.empty() && trimmed[0] == '#') {
      code_.push_back(raw_line);
    } else {
      code_.push_back(code_line);
    }
    raw_.push_back(raw_line);
    raw_line.clear();
    code_line.clear();
    ++line_number;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLineComment) {
        flush_comment();
        state = State::kCode;
      } else if (state == State::kString || state == State::kChar) {
        state = State::kCode;  // unterminated literal: recover at newline
      }
      end_line();
      continue;
    }
    raw_line.push_back(c);
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line = line_number;
          comment.clear();
          code_line.push_back(' ');
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line = line_number;
          comment.clear();
          code_line.push_back(' ');
        } else if (c == 'R' && next == '"' &&
                   (code_line.empty() ||
                    !is_ident_char(code_line.back()))) {
          // Raw string literal: R"delim( ... )delim"
          std::size_t j = i + 2;
          std::string delim;
          while (j < text.size() && text[j] != '(' && text[j] != '\n') {
            delim.push_back(text[j]);
            ++j;
          }
          raw_delim = ")" + delim + "\"";
          state = State::kRaw;
          code_line.push_back(' ');
        } else if (c == '"') {
          state = State::kString;
          code_line.push_back(' ');
        } else if (c == '\'' &&
                   (code_line.empty() ||
                    (!is_ident_char(code_line.back()) &&
                     code_line.back() != '\''))) {
          // Avoid treating digit separators (1'000'000) as char literals.
          const bool digit_sep =
              !code_line.empty() &&
              std::isdigit(static_cast<unsigned char>(code_line.back())) != 0;
          if (digit_sep) {
            code_line.push_back(' ');
          } else {
            state = State::kChar;
            code_line.push_back(' ');
          }
        } else {
          code_line.push_back(c);
        }
        break;
      case State::kLineComment:
        comment.push_back(c);
        code_line.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          flush_comment();
          state = State::kCode;
          code_line.push_back(' ');
          code_line.push_back(' ');
          raw_line.push_back(next);
          ++i;
        } else {
          comment.push_back(c);
          code_line.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          code_line.push_back(' ');
          code_line.push_back(' ');
          raw_line.push_back(next);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line.push_back(' ');
        } else {
          code_line.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          code_line.push_back(' ');
          code_line.push_back(' ');
          raw_line.push_back(next);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line.push_back(' ');
        } else {
          code_line.push_back(' ');
        }
        break;
      case State::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size(); ++k) {
            raw_line.push_back(text[i + k]);
            code_line.push_back(' ');
          }
          code_line.push_back(' ');
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          code_line.push_back(' ');
        }
        break;
    }
  }
  if (state == State::kLineComment) flush_comment();
  if (!raw_line.empty() || raw_.empty()) end_line();
}

void SourceFile::parse_allow_comment(const std::string& comment,
                                     std::size_t line) {
  const std::size_t marker = comment.find("cdlint:");
  if (marker == std::string::npos) return;
  const std::size_t open = comment.find("allow(", marker);
  if (open == std::string::npos) return;
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  AllowDirective allow;
  allow.directive_line = line;
  std::string inside = comment.substr(open + 6, close - open - 6);
  std::size_t start = 0;
  while (start <= inside.size()) {
    const std::size_t comma = inside.find(',', start);
    const std::string rule =
        trim(comma == std::string::npos ? inside.substr(start)
                                        : inside.substr(start, comma - start));
    if (!rule.empty()) allow.rules.insert(rule);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  allow.has_reason = !trim(comment.substr(close + 1)).empty();
  if (!allow.rules.empty()) allows_.push_back(allow);
}

void SourceFile::tokenize() {
  for (std::size_t li = 0; li < code_.size(); ++li) {
    const std::string& line = code_[li];
    std::size_t i = 0;
    while (i < line.size()) {
      if (is_ident_start(line[i])) {
        std::size_t j = i + 1;
        while (j < line.size() && is_ident_char(line[j])) ++j;
        tokens_.push_back(Token{line.substr(i, j - i), li + 1, i});
        i = j;
      } else {
        ++i;
      }
    }
  }
}

bool SourceFile::allowed(std::size_t line, const std::string& rule) const {
  const auto it = reasoned_allows_by_line_.find(line);
  return it != reasoned_allows_by_line_.end() && it->second.count(rule) > 0;
}

std::string SourceFile::normalized_raw(std::size_t line) const {
  if (line == 0 || line > raw_.size()) return {};
  const std::string& source = raw_[line - 1];
  std::string out;
  bool in_space = true;  // also trims leading whitespace
  for (const char c : source) {
    if (c == ' ' || c == '\t') {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::size_t SourceFile::line_of_offset(std::size_t offset) const {
  const auto it = std::upper_bound(line_offsets_.begin(), line_offsets_.end(),
                                   offset);
  return static_cast<std::size_t>(it - line_offsets_.begin());
}

char SourceFile::char_after(const Token& token) const {
  const std::size_t start =
      line_offsets_[token.line - 1] + token.col + token.text.size();
  for (std::size_t i = start; i < code_text_.size(); ++i) {
    const char c = code_text_[i];
    if (c != ' ' && c != '\t' && c != '\n') return c;
  }
  return '\0';
}

char SourceFile::char_before(const Token& token) const {
  const std::string& line = code_[token.line - 1];
  for (std::size_t i = token.col; i > 0; --i) {
    const char c = line[i - 1];
    if (c != ' ' && c != '\t') return c;
  }
  return '\0';
}

std::string SourceFile::two_chars_before(const Token& token) const {
  const std::string& line = code_[token.line - 1];
  std::size_t i = token.col;
  while (i > 0 && (line[i - 1] == ' ' || line[i - 1] == '\t')) --i;
  if (i < 2) return {};
  return line.substr(i - 2, 2);
}

}  // namespace cdlint
