file(REMOVE_RECURSE
  "libcd_simulation.a"
)
