#include "tle/store.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "common/error.hpp"
#include "io/file.hpp"

namespace cosmicdance::tle {
namespace fs = std::filesystem;

TleStore::TleStore(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  if (fs::exists(directory_, ec)) {
    if (!fs::is_directory(directory_, ec)) {
      throw IoError("TLE store path is not a directory: " + directory_);
    }
  } else if (!fs::create_directories(directory_, ec) || ec) {
    throw IoError("cannot create TLE store directory: " + directory_ + " (" +
                  ec.message() + ")");
  }
}

std::string TleStore::path_for(int catalog_number) const {
  return directory_ + "/" + std::to_string(catalog_number) + ".tle";
}

std::size_t TleStore::merge(const TleCatalog& catalog) {
  std::size_t persisted = 0;
  for (const int id : catalog.satellites()) {
    TleCatalog merged = load_satellite(id);
    const std::size_t before = merged.record_count();
    for (const Tle& record : catalog.history(id)) merged.add(record);
    const std::size_t added = merged.record_count() - before;
    if (added > 0) {
      io::write_file(path_for(id), merged.to_text());
      persisted += added;
    }
  }
  return persisted;
}

TleCatalog TleStore::load() const {
  TleCatalog catalog;
  for (const int id : stored_satellites()) {
    catalog.add_from_file(path_for(id));
  }
  return catalog;
}

TleCatalog TleStore::load_satellite(int catalog_number) const {
  TleCatalog catalog;
  std::error_code ec;
  if (fs::exists(path_for(catalog_number), ec)) {
    catalog.add_from_file(path_for(catalog_number));
  }
  return catalog;
}

std::optional<double> TleStore::last_epoch_jd(int catalog_number) const {
  const TleCatalog catalog = load_satellite(catalog_number);
  if (catalog.empty()) return std::nullopt;
  return catalog.last_epoch_jd();
}

std::vector<int> TleStore::stored_satellites() const {
  std::vector<int> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".tle") continue;
    char* end = nullptr;
    const long id = std::strtol(path.stem().c_str(), &end, 10);
    if (end != path.stem().c_str() && *end == '\0' && id > 0) {
      ids.push_back(static_cast<int>(id));
    }
  }
  if (ec) throw IoError("cannot list TLE store: " + directory_);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace cosmicdance::tle
