// Extension (paper §5 + §6): shell trespassing and Kessler-style
// conjunction exposure.  Quantifies how often satellites enter neighbouring
// shells' altitude bands, storm quarters vs quiet quarters.
#include <iostream>

#include "bench_common.hpp"
#include "core/shells.hpp"
#include "io/table.hpp"
#include "spaceweather/storms.hpp"
#include "timeutil/hour_axis.hpp"

using namespace cosmicdance;

int main() {
  const spaceweather::DstIndex dst = bench::paper_dst();
  const core::CosmicDance pipeline(dst, bench::paper_catalog(dst));

  // Gen1-like shell stack around the bench fleet's 550 km shell.
  core::ShellConfig shells;
  shells.shell_altitudes_km = {535.0, 540.0, 545.0, 550.0, 555.0, 560.0};
  shells.half_width_km = 1.5;

  const auto events = core::shell_trespasses(pipeline.tracks(), shells);
  const double dwell = core::foreign_shell_dwell_days(pipeline.tracks(), shells);

  io::print_heading(std::cout, "Shell-trespass census (whole window)");
  std::printf("  trespass entries: %zu   foreign-shell dwell: %.1f sat-days\n",
              events.size(), dwell);

  // Quarterly rate vs the quarter's storm activity.
  io::print_heading(std::cout, "Quarterly trespass rate vs storm hours");
  io::TablePrinter table({"quarter", "storm_hours", "trespasses"});
  const timeutil::HourIndex start = dst.start_hour();
  const long quarter_hours = 24 * 91;
  for (timeutil::HourIndex q = start; q + quarter_hours <= dst.end_hour();
       q += quarter_hours) {
    const auto slice = dst.slice(q, q + quarter_hours);
    long storm_hours = 0;
    for (const double v : slice.values()) {
      if (v <= spaceweather::kMinorThresholdNt) ++storm_hours;
    }
    const auto in_quarter = core::shell_trespasses_between(
        pipeline.tracks(), timeutil::julian_from_hour_index(q),
        timeutil::julian_from_hour_index(q + quarter_hours), shells);
    table.add_row({timeutil::datetime_from_hour_index(q).to_string().substr(0, 7),
                   std::to_string(storm_hours),
                   std::to_string(in_quarter.size())});
  }
  table.print(std::cout);

  bench::note("expected: trespass counts track storm activity — the 'cosmic");
  bench::note("dance' pushes satellites across the ~5 km shell spacing the");
  bench::note("FCC filings use to keep constellations apart.");
  return 0;
}
