// cdlint corpus: negative scope case for rule `fp-accumulation-order` (R13)
// — float arithmetic outside src/core//src/stats//src/sgp4//src/io has no
// bit-identical byte contract and is not judged.
float display_ratio(float num, float den) {
  return den == 0.0f ? 0.0f : num / den;
}
