file(REMOVE_RECURSE
  "CMakeFiles/fig05_intensity_cdfs.dir/fig05_intensity_cdfs.cpp.o"
  "CMakeFiles/fig05_intensity_cdfs.dir/fig05_intensity_cdfs.cpp.o.d"
  "fig05_intensity_cdfs"
  "fig05_intensity_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_intensity_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
