file(REMOVE_RECURSE
  "CMakeFiles/storm_impact_report.dir/storm_impact_report.cpp.o"
  "CMakeFiles/storm_impact_report.dir/storm_impact_report.cpp.o.d"
  "storm_impact_report"
  "storm_impact_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_impact_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
