#include "stats/histogram.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cosmicdance::stats {
namespace {

// Validation must precede the member initializers: width_ divides by `bins`
// and counts_ allocates `bins` slots, so a throw from the constructor body
// would come after a division by zero or an absurd allocation.
double validated_width(double lo, double hi, std::size_t bins) {
  if (!(lo < hi)) throw ValidationError("histogram requires lo < hi");
  if (bins == 0) throw ValidationError("histogram requires at least one bin");
  return (hi - lo) / static_cast<double>(bins);
}

}  // namespace

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_(validated_width(lo, hi, bins)), counts_(bins, 0) {}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // edge rounding guard
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (const double x : xs) add(x);
}

double Histogram::bin_lower(std::size_t bin) const {
  if (bin >= counts_.size()) throw ValidationError("histogram bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_upper(std::size_t bin) const { return bin_lower(bin) + width_; }

double Histogram::bin_center(std::size_t bin) const {
  return bin_lower(bin) + width_ * 0.5;
}

double Histogram::fraction(std::size_t bin) const {
  if (bin >= counts_.size()) throw ValidationError("histogram bin out of range");
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

}  // namespace cosmicdance::stats
