file(REMOVE_RECURSE
  "libcd_io.a"
)
