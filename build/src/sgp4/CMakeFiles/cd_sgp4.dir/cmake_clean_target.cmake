file(REMOVE_RECURSE
  "libcd_sgp4.a"
)
