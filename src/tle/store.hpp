// Incremental on-disk TLE store.
//
// The paper's tool minimises Space-Track API calls by fetching each
// satellite's catalog number once and then pulling history incrementally.
// TleStore is the persistence layer for that pattern: one text file per
// satellite under a directory, merge-with-dedup semantics, and a
// last-stored-epoch query that tells a fetcher where to resume.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tle/catalog.hpp"

namespace cosmicdance::tle {

class TleStore {
 public:
  /// Opens (creating if needed) the store directory.  Throws IoError when
  /// the path exists but is not a directory or cannot be created.
  explicit TleStore(std::string directory);

  /// Merge a catalog into the store.  Existing per-satellite histories are
  /// loaded, new records deduplicated against them (by epoch, the
  /// TleCatalog rule) and files rewritten only when something changed.
  /// Returns the number of newly persisted records.
  std::size_t merge(const TleCatalog& catalog);

  /// Load the full store.
  [[nodiscard]] TleCatalog load() const;

  /// Load one satellite's history (empty catalog when unknown).
  [[nodiscard]] TleCatalog load_satellite(int catalog_number) const;

  /// Epoch of the newest stored record for a satellite — the "fetch from
  /// here" cursor for incremental updates.  nullopt when unknown.
  [[nodiscard]] std::optional<double> last_epoch_jd(int catalog_number) const;

  /// Catalog numbers present in the store, sorted.
  [[nodiscard]] std::vector<int> stored_satellites() const;

  [[nodiscard]] const std::string& directory() const noexcept { return directory_; }

 private:
  [[nodiscard]] std::string path_for(int catalog_number) const;

  std::string directory_;
};

}  // namespace cosmicdance::tle
