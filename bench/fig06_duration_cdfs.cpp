// Fig 6: influence of storm duration, for storms above the 99th-ptile
// intensity (~ -63 nT): (a) duration < 9 h, (b) duration >= 9 h,
// (c) drag changes for the longer storms.
//
// Paper shape: longer storms produce a significantly longer and denser
// altitude-change tail and larger drag increases.
#include <iostream>

#include "bench_common.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"

using namespace cosmicdance;

namespace {

void print_cdf(const std::vector<double>& samples, const char* value_header) {
  const stats::Ecdf ecdf(samples);
  io::TablePrinter table({value_header, "cdf"});
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.995, 1.0}) {
    table.add_row({io::TablePrinter::num(ecdf.quantile(q), 2),
                   io::TablePrinter::num(q, 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  const spaceweather::DstIndex dst = bench::paper_dst();
  const core::CosmicDance pipeline(dst, bench::paper_catalog(dst));

  const double p99 = pipeline.dst_threshold_at_percentile(99.0);
  const auto [short_epochs, long_epochs] =
      pipeline.correlator().storm_epochs_by_duration(p99, 9.0);
  std::printf("storms above 99th-ptile (%.1f nT): %zu short (<9h), %zu long\n",
              p99, short_epochs.size(), long_epochs.size());

  const auto short_changes = pipeline.correlator().altitude_change_samples(
      pipeline.tracks(), short_epochs);
  const auto long_changes = pipeline.correlator().altitude_change_samples(
      pipeline.tracks(), long_epochs);

  io::print_heading(std::cout, "Fig 6(a): altitude change CDF, storms < 9 h");
  print_cdf(short_changes, "alt_change_km");

  io::print_heading(std::cout, "Fig 6(b): altitude change CDF, storms >= 9 h");
  print_cdf(long_changes, "alt_change_km");

  bench::expect("short-storm p99 (km)", "shorter tail",
                stats::percentile(short_changes, 99.0), 2);
  bench::expect("long-storm p99 (km)", "longer, denser tail",
                stats::percentile(long_changes, 99.0), 2);

  io::print_heading(std::cout, "Fig 6(c): drag change factor, long storms");
  const auto drags = pipeline.correlator().drag_change_samples(
      pipeline.tracks(), long_epochs);
  print_cdf(drags, "bstar_ratio");
  bench::note("paper: large drag increases under the longer storms.");
  return 0;
}
