# Empty dependencies file for storm_impact_report.
# This may be replaced when dependencies are built.
