// cdlint corpus: seeded violation for rule `no-endl` (R8).
#include <ostream>

void flush_heavy(std::ostream& out, int value) {
  out << "value=" << value << std::endl;
}
