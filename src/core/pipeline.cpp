#include "core/pipeline.hpp"

#include <cstddef>
#include <span>
#include <string_view>

#include "io/file.hpp"
#include "io/snapshot.hpp"
#include "obs/obs.hpp"
#include "spaceweather/wdc.hpp"

namespace cosmicdance::core {

CosmicDance::CosmicDance(spaceweather::DstIndex dst, tle::TleCatalog catalog,
                         PipelineConfig config)
    : config_(config), dst_(std::move(dst)), catalog_(std::move(catalog)) {
  // The pipeline-wide knobs govern the correlator's scans too.
  config_.correlator.num_threads = config_.num_threads;
  config_.correlator.metrics = config_.metrics;
  std::vector<SatelliteTrack> built;
  {
    const obs::ScopedPhase phase(config_.metrics, "pipeline.build_tracks");
    built = tracks_from_catalog(catalog_, config_.num_threads, config_.metrics);
  }
  tracks_ = clean_tracks(std::move(built), config_.correlator.cleaning,
                         config_.num_threads, config_.metrics);
  {
    // Warm the median caches while each track is still touched by exactly
    // one worker; the correlator can then read them concurrently.
    const obs::ScopedPhase phase(config_.metrics, "pipeline.warm_median_caches");
    warm_median_caches(tracks_, config_.num_threads);
  }
  if (config_.metrics != nullptr) {
    config_.metrics->set_gauge("pipeline.num_threads_requested",
                               static_cast<double>(config_.num_threads));
    config_.metrics->set_gauge("pipeline.tracks_cleaned",
                               static_cast<double>(tracks_.size()));
  }
  correlator_ = std::make_unique<EventCorrelator>(&dst_, config_.correlator);
}

CosmicDance::CosmicDance(CosmicDance&& other) noexcept
    : config_(std::move(other.config_)),
      dst_(std::move(other.dst_)),
      catalog_(std::move(other.catalog_)),
      tracks_(std::move(other.tracks_)),
      correlator_(std::make_unique<EventCorrelator>(&dst_, config_.correlator)),
      quality_report_(std::move(other.quality_report_)),
      snapshot_save_(std::move(other.snapshot_save_)) {}

CosmicDance& CosmicDance::operator=(CosmicDance&& other) noexcept {
  if (this != &other) {
    wait_for_snapshot_save();
    config_ = std::move(other.config_);
    dst_ = std::move(other.dst_);
    catalog_ = std::move(other.catalog_);
    tracks_ = std::move(other.tracks_);
    correlator_ = std::make_unique<EventCorrelator>(&dst_, config_.correlator);
    quality_report_ = std::move(other.quality_report_);
    snapshot_save_ = std::move(other.snapshot_save_);
  }
  return *this;
}

CosmicDance::~CosmicDance() { wait_for_snapshot_save(); }

void CosmicDance::wait_for_snapshot_save() {
  if (snapshot_save_.valid()) snapshot_save_.get();
}

CosmicDance CosmicDance::from_files(const std::string& wdc_dst_path,
                                    const std::string& tle_path,
                                    PipelineConfig config) {
  // Both inputs are mapped once up front; the zero-copy parsers scan the
  // mappings directly and the snapshot cache hashes the same bytes, so hit
  // and miss runs agree on what the inputs were.
  const io::MappedFile dst_file(wdc_dst_path);
  const io::MappedFile tle_file(tle_path);
  if (config.metrics != nullptr) {
    std::size_t mapped_bytes = 0;
    if (dst_file.is_mapped()) mapped_bytes += dst_file.size();
    if (tle_file.is_mapped()) mapped_bytes += tle_file.size();
    if (mapped_bytes > 0) {
      config.metrics->counter("ingest.bytes_mapped").add(mapped_bytes);
    }
  }

  const bool use_cache = !config.cache_dir.empty();
  std::string snapshot_path;
  if (use_cache) {
    snapshot_path =
        io::snapshot_cache_path(config.cache_dir, wdc_dst_path, tle_path);
    std::optional<io::SnapshotData> snapshot = io::load_snapshot(
        snapshot_path, config.parse_policy, config.metrics, config.num_threads);
    if (snapshot.has_value()) {
      const io::InputClassification cls = io::classify_inputs(
          snapshot->state, dst_file.view(), tle_file.view());
      if (cls.match == io::InputMatch::kExact) {
        // Byte-identical inputs: skip text parsing entirely.
        if (config.metrics != nullptr) {
          config.metrics->counter("ingest.cache_hit").add(1);
          config.metrics->counter("snapshot.loaded").add(1);
        }
        if (snapshot->tail_truncated) {
          // The file still ends in torn bytes a future load would have to
          // re-truncate; rewrite a clean base now (best-effort).
          snapshot->tail_truncated = false;
          io::save_snapshot(snapshot_path, *snapshot, config.parse_policy,
                            config.metrics, config.num_threads);
        }
        CosmicDance pipeline(std::move(snapshot->dst),
                             std::move(snapshot->catalog), config);
        pipeline.quality_report_ = std::move(snapshot->quality);
        return pipeline;
      }
      if (cls.match == io::InputMatch::kAppend) {
        // Unchanged prefix plus appended bytes: parse only the tails,
        // extending the snapshot's datasets in place.  The readers resume
        // with absolute line numbers, so values, counters, quarantine
        // order — and the first strict-mode throw — are bit-identical to
        // a full reparse of the grown files (DESIGN.md §14).
        const std::string_view dst_tail =
            dst_file.view().substr(snapshot->state.dst_len);
        const std::string_view tle_tail =
            tle_file.view().substr(snapshot->state.tle_len);
        if (config.metrics != nullptr) {
          config.metrics->counter("ingest.delta_hit").add(1);
          config.metrics->counter("ingest.tail_bytes")
              .add(dst_tail.size() + tle_tail.size());
          config.metrics->counter("snapshot.loaded").add(1);
        }
        diag::ParseLog tail_log(config.parse_policy);
        io::SnapshotDelta delta;
        delta.dst_prior_size = snapshot->dst.size();
        {
          const obs::ScopedPhase phase(config.metrics, "ingest.dst");
          spaceweather::from_wdc_append(
              snapshot->dst, dst_tail, &tail_log, wdc_dst_path,
              static_cast<std::size_t>(snapshot->state.dst_lines) + 1);
          if (config.metrics != nullptr) {
            config.metrics->counter("ingest.dst_hours")
                .add(snapshot->dst.size() -
                     static_cast<std::size_t>(delta.dst_prior_size));
          }
        }
        {
          const obs::ScopedPhase phase(config.metrics, "ingest.tle");
          snapshot->catalog.add_from_text(
              tle_tail,
              tle::IngestOptions{
                  &tail_log, config.num_threads, tle_path, config.metrics,
                  static_cast<std::size_t>(snapshot->state.tle_lines) + 1,
                  &delta.tle_committed});
        }
        delta.state = cls.current;
        delta.dst_start_hour = snapshot->dst.start_hour();
        const std::span<const double> dst_values = snapshot->dst.values();
        delta.dst_appended.assign(
            dst_values.begin() +
                static_cast<std::ptrdiff_t>(delta.dst_prior_size),
            dst_values.end());
        delta.quality_delta = tail_log.report();
        snapshot->quality.merge(delta.quality_delta);
        snapshot->state = cls.current;
        // Persist best-effort: append one more layer, or — once the chain
        // is long enough that load-time walks outweigh one base rewrite —
        // compact everything back into a single fresh base.  A truncated
        // load also forces a base rewrite: the file still ends in torn
        // bytes, and a layer appended after them would be unreachable on
        // the next load (the chain walk stops at the tear).
        if (snapshot->tail_truncated) {
          snapshot->tail_truncated = false;
          io::save_snapshot(snapshot_path, *snapshot, config.parse_policy,
                            config.metrics, config.num_threads);
        } else if (snapshot->delta_layers >= io::kMaxSnapshotDeltaLayers) {
          if (io::save_snapshot(snapshot_path, *snapshot, config.parse_policy,
                                config.metrics, config.num_threads) &&
              config.metrics != nullptr) {
            config.metrics->counter("snapshot.compacted").add(1);
          }
        } else {
          io::append_snapshot_delta(snapshot_path, delta,
                                    snapshot->delta_layers + 1,
                                    snapshot->chain_hash, config.parse_policy,
                                    config.metrics);
        }
        CosmicDance pipeline(std::move(snapshot->dst),
                             std::move(snapshot->catalog), config);
        pipeline.quality_report_ = std::move(snapshot->quality);
        return pipeline;
      }
      // Structurally valid snapshot of some *other* inputs (shrunk or
      // edited in place): stale.  Count the rejection and reparse.
      if (config.metrics != nullptr) {
        config.metrics->counter("snapshot.rejected").add(1);
      }
    }
  }

  diag::ParseLog log(config.parse_policy);
  spaceweather::DstIndex dst;
  {
    const obs::ScopedPhase phase(config.metrics, "ingest.dst");
    dst = spaceweather::from_wdc(dst_file.view(), &log, wdc_dst_path);
    if (config.metrics != nullptr) {
      config.metrics->counter("ingest.dst_hours").add(dst.size());
    }
  }
  tle::TleCatalog catalog;
  {
    const obs::ScopedPhase phase(config.metrics, "ingest.tle");
    catalog.add_from_text(
        tle_file.view(),
        tle::IngestOptions{&log, config.num_threads, tle_path, config.metrics});
  }
  diag::DataQualityReport quality = log.report();
  std::future<void> save_future;
  if (use_cache) {
    // Best-effort rewrite: failure (e.g. read-only cache dir) is counted
    // but never fatal — the parse already succeeded.  The datasets are
    // copied into the task and encode + write run on a background thread,
    // overlapping the track build below; the pipeline joins the write in
    // wait_for_snapshot_save() / its destructor (complete-before-exit).
    io::SnapshotData data{dst, catalog, quality,
                          io::ingest_state_of(dst_file.view(), tle_file.view()),
                          0, 0};
    save_future = std::async(
        std::launch::async,
        [path = snapshot_path, data = std::move(data),
         policy = config.parse_policy, metrics = config.metrics,
         threads = config.num_threads]() noexcept {
          try {
            io::save_snapshot(path, data, policy, metrics, threads);
          } catch (...) {
            // Best-effort, same as the historical synchronous write.
          }
        });
  }
  CosmicDance pipeline(std::move(dst), std::move(catalog), config);
  pipeline.quality_report_ = std::move(quality);
  pipeline.snapshot_save_ = std::move(save_future);
  return pipeline;
}

std::vector<SatelliteTrack> CosmicDance::raw_tracks() const {
  return tracks_from_catalog(catalog_, config_.num_threads, config_.metrics);
}

std::vector<spaceweather::StormEvent> CosmicDance::storms() const {
  return spaceweather::StormDetector(config_.storm_detector).detect(dst_);
}

double CosmicDance::dst_threshold_at_percentile(double p) const {
  return dst_.dst_threshold_at_percentile(p);
}

PostEventEnvelope CosmicDance::post_event_envelope(double event_jd, int days,
                                                   EnvelopeSelection selection) const {
  return correlator_->post_event_envelope(tracks_, event_jd, days, selection);
}

std::vector<double> CosmicDance::altitude_changes_for_storms(
    double max_peak_nt) const {
  return correlator_->altitude_change_samples(
      tracks_, correlator_->storm_event_epochs(max_peak_nt));
}

std::vector<double> CosmicDance::altitude_changes_for_quiet(
    double min_dst_nt, std::size_t epochs) const {
  return correlator_->altitude_change_samples(
      tracks_, correlator_->quiet_epochs(min_dst_nt, epochs));
}

std::vector<double> CosmicDance::drag_changes_for_storms(double max_peak_nt) const {
  return correlator_->drag_change_samples(
      tracks_, correlator_->storm_event_epochs(max_peak_nt));
}

PropagationReport CosmicDance::propagation_report(
    PropagationOptions options) const {
  if (options.num_threads == 0) options.num_threads = config_.num_threads;
  if (options.metrics == nullptr) options.metrics = config_.metrics;
  return propagate_catalog(catalog_, options);
}

}  // namespace cosmicdance::core
