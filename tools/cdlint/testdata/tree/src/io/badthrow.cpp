// cdlint corpus: seeded violation for rule `naked-throw` (R4).  src/io/ is
// exempt from raw-parse but NOT from throw routing: a function that takes a
// diag::ParseLog must not throw ParseError outside try/catch.
#include <stdexcept>
#include <string>

namespace diag {
class ParseLog;
}
struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

double parse_cell(const std::string& text, diag::ParseLog* log) {
  (void)log;
  if (text.empty()) {
    throw ParseError("empty cell");
  }
  return 0.0;
}

double parse_routed(const std::string& text, diag::ParseLog* log) {
  (void)log;
  try {
    if (text.empty()) {
      throw ParseError("empty cell");
    }
  } catch (const ParseError&) {
    return -1.0;
  }
  return 0.0;
}
