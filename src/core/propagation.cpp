#include "core/propagation.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/units.hpp"
#include "obs/obs.hpp"
#include "orbit/state.hpp"

namespace cosmicdance::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Least-squares slope of (t_days, altitude) over the valid samples.
double decay_slope_km_per_day(const std::vector<double>& epochs_jd,
                              const std::vector<double>& altitude_km) {
  double n = 0.0, sum_t = 0.0, sum_a = 0.0, sum_tt = 0.0, sum_ta = 0.0;
  const double t0 = epochs_jd.empty() ? 0.0 : epochs_jd.front();
  for (std::size_t i = 0; i < altitude_km.size(); ++i) {
    if (std::isnan(altitude_km[i])) continue;
    const double t = epochs_jd[i] - t0;
    n += 1.0;
    sum_t += t;
    sum_a += altitude_km[i];
    sum_tt += t * t;
    sum_ta += t * altitude_km[i];
  }
  if (n < 2.0) return 0.0;
  const double denom = n * sum_tt - sum_t * sum_t;
  if (denom == 0.0) return 0.0;  // all valid samples at one grid epoch
  return (n * sum_ta - sum_t * sum_a) / denom;
}

}  // namespace

std::vector<double> make_grid(double start_jd, double end_jd,
                              double step_hours) {
  if (!(step_hours > 0.0)) {
    throw ValidationError("propagation step_hours must be positive");
  }
  if (end_jd < start_jd) {
    throw ValidationError("propagation window ends before it starts");
  }
  const double step_days = step_hours / units::kHoursPerDay;
  std::vector<double> epochs;
  epochs.reserve(static_cast<std::size_t>((end_jd - start_jd) / step_days) + 1);
  // Index-scaled (not accumulated) steps so the grid is exact for any
  // length and the last epoch never overshoots the window.
  for (std::size_t i = 0;; ++i) {
    const double jd = start_jd + static_cast<double>(i) * step_days;
    if (jd > end_jd) break;
    epochs.push_back(jd);
  }
  return epochs;
}

std::vector<double> propagation_grid(const tle::TleCatalog& catalog,
                                     const PropagationOptions& options) {
  if (catalog.empty()) {
    throw ValidationError("propagation needs a non-empty catalog");
  }
  const double start_jd =
      options.start_jd != 0.0 ? options.start_jd : catalog.last_epoch_jd();
  const double end_jd = options.end_jd != 0.0
                            ? options.end_jd
                            : start_jd + options.default_span_days;
  return make_grid(start_jd, end_jd, options.step_hours);
}

PropagationReport reduce_batch(const sgp4::BatchPropagator& batch,
                               std::vector<double> epochs_jd, int num_threads,
                               obs::Metrics* metrics) {
  const obs::ScopedPhase phase(metrics, "analysis.propagate");

  const sgp4::BatchResult grid =
      batch.propagate_jd(epochs_jd, num_threads, metrics);

  PropagationReport report;
  report.epochs_jd = std::move(epochs_jd);
  report.init_failures = batch.init_failures();
  report.series.resize(grid.rows);
  for (std::size_t row = 0; row < grid.rows; ++row) {
    PropagationSeries& series = report.series[row];
    series.catalog_number = batch.catalog_number(row);
    series.tle_epoch_jd = batch.epoch_jd(row);
    series.deep_space = batch.deep_space(row);
    series.altitude_km.resize(grid.epochs, kNan);
    series.statuses.resize(grid.epochs);
    series.first_altitude_km = kNan;
    series.last_altitude_km = kNan;
    for (std::size_t e = 0; e < grid.epochs; ++e) {
      const sgp4::Sgp4Status status = grid.status(row, e);
      series.statuses[e] = status;
      switch (status) {
        case sgp4::Sgp4Status::kOk:
          break;
        case sgp4::Sgp4Status::kDecayed:
          series.decayed = true;
          ++report.decayed_cells;
          continue;
        default:
          ++report.error_cells;
          continue;
      }
      ++report.ok_cells;
      const orbit::StateVector& state = grid.state(row, e);
      const double altitude =
          orbit::norm(state.position_km) - batch.gravity(row).radius_earth_km;
      series.altitude_km[e] = altitude;
      ++series.valid_samples;
      if (std::isnan(series.first_altitude_km)) {
        series.first_altitude_km = altitude;
      }
      series.last_altitude_km = altitude;
    }
    series.decay_rate_km_per_day =
        decay_slope_km_per_day(report.epochs_jd, series.altitude_km);
  }
  return report;
}

PropagationReport propagate_catalog(const tle::TleCatalog& catalog,
                                    const PropagationOptions& options) {
  std::vector<double> epochs = propagation_grid(catalog, options);
  const sgp4::BatchPropagator batch = sgp4::BatchPropagator::from_catalog(catalog);
  return reduce_batch(batch, std::move(epochs), options.num_threads,
                      options.metrics);
}

}  // namespace cosmicdance::core
