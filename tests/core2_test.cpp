// Second-round core tests: correlator corners, cleaning edge cases,
// pipeline configuration propagation and the markdown report.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "orbit/elements.hpp"
#include "timeutil/datetime.hpp"

namespace cosmicdance::core {
namespace {

using timeutil::make_datetime;

const double kJd0 = timeutil::to_julian(make_datetime(2023, 6, 1));

TrajectorySample sample_at(double jd, double altitude, double bstar = 2e-4) {
  TrajectorySample s;
  s.epoch_jd = jd;
  s.altitude_km = altitude;
  s.bstar = bstar;
  s.mean_motion_revday = orbit::mean_motion_from_altitude_km(altitude);
  s.inclination_deg = 53.0;
  return s;
}

SatelliteTrack flat_track(int catalog, double altitude, double start_offset_days,
                          double days, double step = 0.5) {
  std::vector<TrajectorySample> samples;
  for (double t = 0.0; t < days; t += step) {
    samples.push_back(sample_at(kJd0 + start_offset_days + t, altitude));
  }
  return SatelliteTrack(catalog, std::move(samples));
}

spaceweather::DstIndex quiet_series(int days) {
  return spaceweather::DstIndex(make_datetime(2023, 5, 1),
                                std::vector<double>(24 * days, -10.0));
}

// ------------------------------ correlator ----------------------------------

TEST(Correlator2Test, MultipleEventsAccumulateSamples) {
  const spaceweather::DstIndex dst = quiet_series(120);
  const EventCorrelator correlator(&dst);
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(flat_track(1, 550.0, -60.0, 150.0));
  const std::vector<double> events{kJd0, kJd0 + 10.0, kJd0 + 20.0};
  EXPECT_EQ(correlator.altitude_change_samples(tracks, events).size(), 3u);
}

TEST(Correlator2Test, EventBeyondTrackEndSkipped) {
  const spaceweather::DstIndex dst = quiet_series(120);
  const EventCorrelator correlator(&dst);
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(flat_track(1, 550.0, -60.0, 50.0));  // ends at kJd0-10
  const std::vector<double> events{kJd0 + 20.0};
  EXPECT_TRUE(correlator.altitude_change_samples(tracks, events).empty());
}

TEST(Correlator2Test, TrackStartingInsidePostEventWindowSkippedSafely) {
  // A track whose *first* sample lies inside the post-event window has no
  // pre-event sample: at_or_before(event_jd) returns nullptr.  All three
  // scans must skip such a track explicitly — historically only
  // is_pre_decayed's own nullptr test (a policy choice, not a scan
  // invariant) stood between this shape and a null dereference.
  const spaceweather::DstIndex dst = quiet_series(120);
  const EventCorrelator correlator(&dst);
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(flat_track(1, 550.0, 5.0, 60.0));  // starts at kJd0+5
  const std::vector<double> events{kJd0};
  EXPECT_TRUE(correlator.altitude_change_samples(tracks, events).empty());
  EXPECT_TRUE(correlator.drag_change_samples(tracks, events).empty());
  const auto envelope = correlator.post_event_envelope(
      tracks, kJd0, 30, EnvelopeSelection::kAll);
  EXPECT_TRUE(envelope.satellites.empty());
  EXPECT_TRUE(envelope.per_satellite.empty());
}

TEST(Correlator2Test, SparseSamplingForwardFills) {
  const spaceweather::DstIndex dst = quiet_series(120);
  const EventCorrelator correlator(&dst);
  // One sample every 5 days: unobserved days carry the last known
  // deviation forward; only days before the first in-window sample stay NaN.
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(flat_track(1, 550.0, -30.0, 70.0, 5.0));
  const auto envelope = correlator.post_event_envelope(
      tracks, kJd0, 30, EnvelopeSelection::kAll);
  ASSERT_EQ(envelope.satellites.size(), 1u);
  int finite_days = 0;
  for (int d = 0; d < envelope.days; ++d) {
    if (std::isfinite(envelope.median_km[static_cast<std::size_t>(d)])) {
      ++finite_days;
    }
  }
  EXPECT_GE(finite_days, 25);
}

TEST(Correlator2Test, DragSamplesSkipNonPositiveBstar) {
  const spaceweather::DstIndex dst = quiet_series(120);
  const EventCorrelator correlator(&dst);
  std::vector<TrajectorySample> samples;
  for (double t = -20.0; t < 20.0; t += 0.5) {
    samples.push_back(sample_at(kJd0 + t, 550.0, t <= 0.0 ? 0.0 : 2e-4));
  }
  std::vector<SatelliteTrack> tracks;
  tracks.emplace_back(1, std::move(samples));
  // Pre-event B* is zero -> the ratio is undefined -> no sample.
  EXPECT_TRUE(correlator
                  .drag_change_samples(tracks, std::vector<double>{kJd0})
                  .empty());
}

TEST(Correlator2Test, WindowDaysConfigRespected) {
  const spaceweather::DstIndex dst = quiet_series(200);
  CorrelatorConfig narrow_config;
  narrow_config.window_days = 5.0;
  const EventCorrelator narrow(&dst, narrow_config);
  const EventCorrelator wide(&dst);

  // Track decays late: only the 30-day window sees the deviation.
  std::vector<TrajectorySample> samples;
  for (double t = -30.0; t < 40.0; t += 0.5) {
    const double altitude = t < 10.0 ? 550.0 : 550.0 - (t - 10.0);
    samples.push_back(sample_at(kJd0 + t, altitude));
  }
  std::vector<SatelliteTrack> tracks;
  tracks.emplace_back(1, std::move(samples));
  const std::vector<double> events{kJd0};
  const auto short_window = narrow.altitude_change_samples(tracks, events);
  const auto long_window = wide.altitude_change_samples(tracks, events);
  ASSERT_EQ(short_window.size(), 1u);
  ASSERT_EQ(long_window.size(), 1u);
  EXPECT_LT(short_window[0], 1.0);
  EXPECT_GT(long_window[0], 15.0);
}

// ------------------------------- cleaning -----------------------------------

TEST(Cleaning2Test, SingleSampleTrack) {
  SatelliteTrack track(1, {sample_at(kJd0, 550.0)});
  EXPECT_EQ(remove_outliers(track), 0u);
  EXPECT_EQ(remove_orbit_raising(track), 0u);
  EXPECT_EQ(track.size(), 1u);
  // Pre-decay: fine at its own epoch (fresh sample, zero deviation).
  EXPECT_FALSE(is_pre_decayed(track, kJd0 + 0.5));
}

TEST(Cleaning2Test, AllOutliersLeavesEmptyTrack) {
  SatelliteTrack track(1, {sample_at(kJd0, 39000.0), sample_at(kJd0 + 1, 20000.0)});
  EXPECT_EQ(remove_outliers(track), 2u);
  EXPECT_TRUE(track.empty());
  EXPECT_TRUE(is_pre_decayed(track, kJd0));
}

TEST(Cleaning2Test, CustomOutlierBounds) {
  CleaningConfig config;
  config.outlier_max_altitude_km = 600.0;
  SatelliteTrack track(1, {sample_at(kJd0, 620.0), sample_at(kJd0 + 1, 550.0)});
  EXPECT_EQ(remove_outliers(track, config), 1u);
  EXPECT_NEAR(track.samples()[0].altitude_km, 550.0, 1e-9);
}

TEST(Cleaning2Test, RaisingFilterKeepsPostRaiseDecay) {
  // Raise then decay: the filter must cut the raise but keep the decay.
  std::vector<TrajectorySample> samples;
  for (double t = 0.0; t < 120.0; t += 0.5) {
    double altitude = 350.0 + 2.0 * t;       // raising
    if (altitude >= 550.0) altitude = 550.0; // operational
    if (t > 110.0) altitude = 550.0 - 5.0 * (t - 110.0);  // decay at the end
    samples.push_back(sample_at(kJd0 + t, altitude));
  }
  SatelliteTrack track(1, std::move(samples));
  remove_orbit_raising(track);
  // The shell estimate (90th ptile) sits just under 550 because the decay
  // tail drags it; the cut still lands within the margin of the shell.
  EXPECT_GE(track.samples().front().altitude_km, 540.0);
  EXPECT_LT(track.samples().back().altitude_km, 520.0);  // decay retained
}

// ------------------------------- pipeline -----------------------------------

tle::TleCatalog catalog_of_flat_sats(int count) {
  tle::TleCatalog catalog;
  for (int sat = 0; sat < count; ++sat) {
    for (double t = -30.0; t < 30.0; t += 1.0) {
      tle::Tle record;
      record.catalog_number = 45000 + sat;
      record.international_designator = "20001A";
      record.epoch_jd = kJd0 + t;
      record.inclination_deg = 53.0;
      record.mean_motion_revday = orbit::mean_motion_from_altitude_km(550.0);
      record.bstar = 2e-4;
      catalog.add(record);
    }
  }
  return catalog;
}

TEST(Pipeline2Test, ConfigPropagatesToCorrelator) {
  PipelineConfig config;
  config.correlator.window_days = 7.0;
  config.correlator.cleaning.predecay_threshold_km = 2.0;
  const CosmicDance pipeline(quiet_series(120), catalog_of_flat_sats(2), config);
  EXPECT_DOUBLE_EQ(pipeline.correlator().config().window_days, 7.0);
  EXPECT_DOUBLE_EQ(
      pipeline.correlator().config().cleaning.predecay_threshold_km, 2.0);
}

TEST(Pipeline2Test, StormDetectorConfigPropagates) {
  PipelineConfig config;
  config.storm_detector.threshold_nt = -5.0;  // everything is a "storm"
  const CosmicDance pipeline(quiet_series(10), catalog_of_flat_sats(1), config);
  EXPECT_FALSE(pipeline.storms().empty());
}

TEST(Pipeline2Test, EmptyCatalogIsUsable) {
  const CosmicDance pipeline(quiet_series(10), tle::TleCatalog{});
  EXPECT_TRUE(pipeline.tracks().empty());
  EXPECT_TRUE(pipeline.altitude_changes_for_storms(-50.0).empty());
}

// -------------------------------- report ------------------------------------

TEST(ReportTest, MarkdownContainsSections) {
  // Build a dataset with one storm so every section has content.
  std::vector<double> values(24 * 60, -10.0);
  for (int h = 600; h < 610; ++h) values[static_cast<std::size_t>(h)] = -130.0;
  const spaceweather::DstIndex dst(make_datetime(2023, 5, 1), std::move(values));
  const CosmicDance pipeline(dst, catalog_of_flat_sats(3));
  const std::string report = markdown_report(pipeline);
  for (const char* needle :
       {"# CosmicDance analysis report", "## Dataset", "## Solar activity",
        "### Strongest storms", "## Happens-closely-after impact", "moderate",
        "median B*"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

TEST(ReportTest, TopStormsLimitRespected) {
  std::vector<double> values(24 * 120, -10.0);
  // Five separate storms.
  for (int storm = 0; storm < 5; ++storm) {
    for (int h = 0; h < 4; ++h) {
      values[static_cast<std::size_t>(300 + storm * 400 + h)] = -80.0;
    }
  }
  const spaceweather::DstIndex dst(make_datetime(2023, 5, 1), std::move(values));
  const CosmicDance pipeline(dst, catalog_of_flat_sats(1));
  ReportOptions options;
  options.top_storms = 2;
  const std::string report = markdown_report(pipeline, options);
  // Count itemised storm rows by their peak-intensity cell.
  std::size_t rows = 0;
  for (std::size_t pos = report.find("| -80 |"); pos != std::string::npos;
       pos = report.find("| -80 |", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

TEST(ReportTest, WriteToFile) {
  namespace fs = std::filesystem;
  const auto path = fs::temp_directory_path() / "cd_report_test.md";
  const CosmicDance pipeline(quiet_series(30), catalog_of_flat_sats(1));
  write_markdown_report(pipeline, path.string());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_GT(fs::file_size(path), 200u);
  fs::remove(path);
}

}  // namespace
}  // namespace cosmicdance::core
