// Minimal strict JSON reading/writing for the serving wire protocol.
//
// The daemon's requests and responses are small JSON documents inside
// length-prefixed frames (wire.hpp).  This header gives the serve layer a
// dependency-free reader (strict: the whole payload must be one well-formed
// value, trailing garbage is an error) and the escaping/formatting helpers
// the response builders need.  Numbers are validated against the JSON
// grammar during the parse but kept as raw tokens; conversion goes through
// the checked io::parse_* helpers, keeping this file inside the project's
// raw-parse rule (cdlint R3).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cosmicdance::serve {

/// One parsed JSON value.  Objects keep insertion order (no hashing, so
/// iteration is deterministic); lookups are linear, which is fine at
/// request sizes.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  /// Decoded text for kString; the raw token for kNumber.
  std::string text;
  std::vector<JsonValue> items;                            ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  /// Member lookup on an object; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// The value as a double (kNumber only; checked conversion).
  [[nodiscard]] std::optional<double> number() const;
  /// The value as a long (kNumber only; rejects fractions / exponents that
  /// do not parse as a base-10 integer).
  [[nodiscard]] std::optional<long> integer() const;
};

/// Parse one complete JSON document; nullopt on any syntax error.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text);

/// Escape `text` for embedding inside a JSON string literal (quotes not
/// included).  Control characters become \u00XX.
[[nodiscard]] std::string escape_json(std::string_view text);

/// Format a double as a JSON number token that round-trips bit-exactly
/// (%.17g), mapping non-finite values to null (JSON has no NaN/Inf).
[[nodiscard]] std::string json_number(double value);

}  // namespace cosmicdance::serve
