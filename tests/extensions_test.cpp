// Tests for the paper's future-work extensions: streaming storm triggers,
// latitude-band analysis, shell-trespass/Kessler exposure, orbital-lifetime
// estimation, the incremental TLE store, and the what-if scenarios.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "atmosphere/lifetime.hpp"
#include "common/error.hpp"
#include "core/latitude.hpp"
#include "core/shells.hpp"
#include "core/trigger.hpp"
#include "io/file.hpp"
#include "orbit/elements.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"
#include "tle/store.hpp"

namespace cosmicdance {
namespace {

using core::SatelliteTrack;
using core::TrajectorySample;
using timeutil::make_datetime;

// ---------------------------- StormTrigger ----------------------------------

TEST(TriggerTest, FiresOnsetAndReleaseWithHysteresis) {
  core::StormTrigger trigger;
  const timeutil::HourIndex h0 = 1000;
  EXPECT_FALSE(trigger.feed(h0, -10.0).has_value());
  const auto onset = trigger.feed(h0 + 1, -60.0);
  ASSERT_TRUE(onset.has_value());
  EXPECT_EQ(onset->kind, core::TriggerEvent::Kind::kOnset);
  EXPECT_TRUE(trigger.active());
  // Recovery to -40 is above onset but below release (-30): still active.
  EXPECT_FALSE(trigger.feed(h0 + 2, -40.0).has_value());
  EXPECT_TRUE(trigger.active());
  // Two quiet hours above -30 release it.
  EXPECT_FALSE(trigger.feed(h0 + 3, -20.0).has_value());
  const auto release = trigger.feed(h0 + 4, -15.0);
  ASSERT_TRUE(release.has_value());
  EXPECT_EQ(release->kind, core::TriggerEvent::Kind::kRelease);
  EXPECT_DOUBLE_EQ(release->peak_dst_nt, -60.0);
  EXPECT_FALSE(trigger.active());
}

TEST(TriggerTest, DebouncesOnset) {
  core::StormTriggerConfig config;
  config.min_active_hours = 3;
  core::StormTrigger trigger(config);
  const timeutil::HourIndex h0 = 0;
  EXPECT_FALSE(trigger.feed(h0, -55.0).has_value());
  EXPECT_FALSE(trigger.feed(h0 + 1, -55.0).has_value());
  // A quiet hour resets the debounce counter.
  EXPECT_FALSE(trigger.feed(h0 + 2, -10.0).has_value());
  EXPECT_FALSE(trigger.feed(h0 + 3, -55.0).has_value());
  EXPECT_FALSE(trigger.feed(h0 + 4, -55.0).has_value());
  EXPECT_TRUE(trigger.feed(h0 + 5, -55.0).has_value());
}

TEST(TriggerTest, OnsetPeakTracksDeepestDebounceHour) {
  // Regression: the onset event once reported the *firing* hour's Dst as
  // peak_dst_nt, losing deeper excursions earlier in the debounce window —
  // exactly the common storm shape where the main-phase minimum precedes
  // the hour that completes the debounce count.
  core::StormTriggerConfig config;
  config.min_active_hours = 3;
  core::StormTrigger trigger(config);
  EXPECT_FALSE(trigger.feed(0, -90.0).has_value());
  EXPECT_FALSE(trigger.feed(1, -120.0).has_value());  // deepest hour
  const auto onset = trigger.feed(2, -70.0);          // firing hour, shallower
  ASSERT_TRUE(onset.has_value());
  EXPECT_EQ(onset->kind, core::TriggerEvent::Kind::kOnset);
  EXPECT_DOUBLE_EQ(onset->dst_nt, -70.0);
  EXPECT_DOUBLE_EQ(onset->peak_dst_nt, -120.0);
  EXPECT_DOUBLE_EQ(trigger.peak_dst_nt(), -120.0);
  // The release's whole-interval peak carries the debounce minimum too.
  EXPECT_FALSE(trigger.feed(3, -20.0).has_value());
  const auto release = trigger.feed(4, -10.0);
  ASSERT_TRUE(release.has_value());
  EXPECT_EQ(release->kind, core::TriggerEvent::Kind::kRelease);
  EXPECT_DOUBLE_EQ(release->peak_dst_nt, -120.0);
}

TEST(TriggerTest, TracksPeakWhileActive) {
  core::StormTrigger trigger;
  trigger.feed(0, -60.0);
  trigger.feed(1, -120.0);
  trigger.feed(2, -80.0);
  EXPECT_DOUBLE_EQ(trigger.peak_dst_nt(), -120.0);
}

TEST(TriggerTest, RejectsGapsAndBadConfig) {
  core::StormTrigger trigger;
  (void)trigger.feed(10, -10.0);
  EXPECT_THROW((void)trigger.feed(12, -10.0), ValidationError);

  core::StormTriggerConfig bad;
  bad.release_nt = bad.onset_nt;
  EXPECT_THROW(core::StormTrigger{bad}, ValidationError);
  bad = {};
  bad.min_quiet_hours = 0;
  EXPECT_THROW(core::StormTrigger{bad}, ValidationError);
}

TEST(TriggerTest, ReplayPairsOnsetsAndReleases) {
  const auto dst = spaceweather::DstGenerator(
                       spaceweather::DstGenerator::paper_window_2020_2024())
                       .generate();
  core::StormTrigger trigger;
  const auto events = trigger.replay(dst);
  ASSERT_GT(events.size(), 100u);
  // Alternating onset/release, onsets first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto expected = (i % 2 == 0) ? core::TriggerEvent::Kind::kOnset
                                       : core::TriggerEvent::Kind::kRelease;
    EXPECT_EQ(events[i].kind, expected) << i;
    if (i > 0) {
      EXPECT_GT(events[i].hour, events[i - 1].hour);
    }
  }
  // Every release carries a peak at or below the onset threshold.
  for (const auto& event : events) {
    if (event.kind == core::TriggerEvent::Kind::kRelease) {
      EXPECT_LE(event.peak_dst_nt, -50.0);
    }
  }
}

// ------------------------- latitude-band analysis ---------------------------

TrajectorySample leo_sample(double jd, double mean_anomaly_deg,
                            double inclination_deg = 53.0) {
  TrajectorySample s;
  s.epoch_jd = jd;
  s.altitude_km = 550.0;
  s.mean_motion_revday = orbit::mean_motion_from_altitude_km(550.0);
  s.inclination_deg = inclination_deg;
  s.raan_deg = 123.0;
  s.eccentricity = 1e-4;
  s.arg_perigee_deg = 0.0;
  s.mean_anomaly_deg = mean_anomaly_deg;
  s.bstar = 3e-4;
  return s;
}

TEST(LatitudeTest, SampleLatitudeBoundedByInclination) {
  const double jd = timeutil::to_julian(make_datetime(2023, 6, 1));
  for (double ma = 0.0; ma < 360.0; ma += 15.0) {
    const double lat = core::sample_latitude_deg(45000, leo_sample(jd, ma));
    EXPECT_GE(lat, 0.0);
    EXPECT_LE(lat, 53.5);  // |latitude| can never exceed the inclination
  }
}

TEST(LatitudeTest, EquatorialOrbitStaysEquatorial) {
  const double jd = timeutil::to_julian(make_datetime(2023, 6, 1));
  const double lat =
      core::sample_latitude_deg(45000, leo_sample(jd, 77.0, 0.1));
  EXPECT_LT(lat, 1.0);
}

TEST(LatitudeTest, DwellConcentratesNearInclination) {
  // Uniformly-phased samples of a 53-degree orbit dwell longest near the
  // turning latitude — the classic ground-track density shape.
  const double jd0 = timeutil::to_julian(make_datetime(2023, 6, 1));
  std::vector<TrajectorySample> samples;
  for (int i = 0; i < 720; ++i) {
    samples.push_back(leo_sample(jd0 + i * 0.013, i * 11.25));
  }
  std::vector<SatelliteTrack> tracks;
  tracks.emplace_back(45000, std::move(samples));
  const auto bands = core::latitude_band_drag(tracks, jd0 - 1.0, jd0 + 100.0, 6);
  ASSERT_EQ(bands.size(), 6u);
  // Band [45,60) contains the 53-degree turning latitude: heavier dwell
  // than the equatorial band; nothing above 60.
  EXPECT_GT(bands[3].dwell_fraction, bands[0].dwell_fraction);
  EXPECT_EQ(bands[4].samples, 0u);
  EXPECT_EQ(bands[5].samples, 0u);
  double total = 0.0;
  for (const auto& band : bands) total += band.dwell_fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LatitudeTest, SkipsUnpropagatableSamples) {
  const double jd0 = timeutil::to_julian(make_datetime(2023, 6, 1));
  TrajectorySample bad = leo_sample(jd0, 10.0);
  bad.altitude_km = 80.0;  // below ground perigee once eccentric
  bad.mean_motion_revday = orbit::mean_motion_from_altitude_km(80.0);
  bad.eccentricity = 0.05;
  std::vector<SatelliteTrack> tracks;
  tracks.emplace_back(45000,
                      std::vector<TrajectorySample>{leo_sample(jd0, 0.0), bad});
  const auto bands = core::latitude_band_drag(tracks, jd0 - 1.0, jd0 + 1.0, 3);
  std::size_t total = 0;
  for (const auto& band : bands) total += band.samples;
  EXPECT_EQ(total, 1u);  // the bad record was skipped, not fatal
  EXPECT_THROW(core::latitude_band_drag(tracks, 0.0, 1.0, 0), ValidationError);
}

// ------------------------------ shells --------------------------------------

SatelliteTrack shell_track(int catalog, std::vector<std::pair<double, double>>
                                            day_altitude) {
  const double jd0 = timeutil::to_julian(make_datetime(2023, 6, 1));
  std::vector<TrajectorySample> samples;
  for (const auto& [day, altitude] : day_altitude) {
    TrajectorySample s;
    s.epoch_jd = jd0 + day;
    s.altitude_km = altitude;
    s.bstar = 2e-4;
    samples.push_back(s);
  }
  return SatelliteTrack(catalog, std::move(samples));
}

TEST(ShellTest, NearestShell) {
  const core::ShellConfig config;
  EXPECT_DOUBLE_EQ(core::nearest_shell_km(551.0, config), 550.0);
  EXPECT_DOUBLE_EQ(core::nearest_shell_km(500.0, config), 540.0);
  EXPECT_DOUBLE_EQ(core::nearest_shell_km(566.0, config), 570.0);
  EXPECT_THROW(static_cast<void>(core::nearest_shell_km(550.0, core::ShellConfig{{}, 2.5})),
               ValidationError);
}

TEST(ShellTest, DecayingSatelliteTrespassesLowerShells) {
  // Home shell 560; decays through 550 and 540.
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(shell_track(
      1, {{0.0, 560.0}, {5.0, 560.0}, {10.0, 556.0}, {12.0, 550.5},
          {14.0, 545.0}, {16.0, 540.2}, {18.0, 535.0}}));
  const auto events = core::shell_trespasses(tracks);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].home_shell_km, 560.0);
  EXPECT_DOUBLE_EQ(events[0].crossed_shell_km, 550.0);
  EXPECT_DOUBLE_EQ(events[1].crossed_shell_km, 540.0);
  EXPECT_LT(events[0].entry_jd, events[1].entry_jd);
}

TEST(ShellTest, StationKeptSatelliteNeverTrespasses) {
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(shell_track(1, {{0.0, 550.0}, {5.0, 549.2}, {10.0, 550.4},
                                   {15.0, 550.9}, {20.0, 549.5}}));
  EXPECT_TRUE(core::shell_trespasses(tracks).empty());
  EXPECT_DOUBLE_EQ(core::foreign_shell_dwell_days(tracks), 0.0);
}

TEST(ShellTest, ReentryIntoSameBandCountsAgain) {
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(shell_track(1, {{0.0, 560.0}, {2.0, 551.0},  // enter 550
                                   {4.0, 556.0},                // leave
                                   {6.0, 550.0},                // re-enter
                                   {8.0, 560.0}}));
  EXPECT_EQ(core::shell_trespasses(tracks).size(), 2u);
}

TEST(ShellTest, DwellAccountsGapsCapped) {
  std::vector<SatelliteTrack> tracks;
  // Inside the foreign 550-band for one 1-day gap and one 30-day gap
  // (capped at 2 days).
  tracks.push_back(shell_track(
      1, {{0.0, 560.0}, {2.0, 550.0}, {3.0, 550.5}, {33.0, 560.0}}));
  EXPECT_NEAR(core::foreign_shell_dwell_days(tracks), 1.0 + 2.0, 1e-9);
}

TEST(ShellTest, WindowedTrespasses) {
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(shell_track(
      1, {{0.0, 560.0}, {2.0, 550.0}, {4.0, 560.0}, {20.0, 550.0}}));
  const double jd0 = timeutil::to_julian(make_datetime(2023, 6, 1));
  EXPECT_EQ(core::shell_trespasses_between(tracks, jd0, jd0 + 10.0).size(), 1u);
  EXPECT_EQ(core::shell_trespasses_between(tracks, jd0 + 10.0, jd0 + 30.0).size(),
            1u);
}

// ----------------------------- lifetime -------------------------------------

TEST(LifetimeTest, MonotoneInAltitudeAndBallistic) {
  const double life_550 = atmosphere::decay_lifetime_days(550.0, 0.01);
  const double life_500 = atmosphere::decay_lifetime_days(500.0, 0.01);
  const double life_550_heavy = atmosphere::decay_lifetime_days(550.0, 0.05);
  EXPECT_GT(life_550, life_500);
  EXPECT_GT(life_550, life_550_heavy);
}

TEST(LifetimeTest, RealisticScales) {
  // A tumbling satellite at 300 km reenters within weeks.
  const double low = atmosphere::decay_lifetime_days(300.0, 0.3);
  EXPECT_LT(low, 60.0);
  EXPECT_GT(low, 1.0);
  // A knife-edge satellite at 550 km lasts years (quiet atmosphere).
  EXPECT_GT(atmosphere::decay_lifetime_days(550.0, 0.004), 5.0 * 365.0);
}

TEST(LifetimeTest, CapAndEdgeCases) {
  atmosphere::LifetimeConfig config;
  config.max_days = 10.0;
  EXPECT_DOUBLE_EQ(atmosphere::decay_lifetime_days(900.0, 1e-4, config), 10.0);
  EXPECT_DOUBLE_EQ(atmosphere::decay_lifetime_days(100.0, 0.01), 0.0);
  EXPECT_THROW(static_cast<void>(atmosphere::decay_lifetime_days(550.0, 0.0)), ValidationError);
}

TEST(LifetimeTest, StormsShortenLifetime) {
  // A permanently stormy series vs quiet.
  const spaceweather::DstIndex stormy(
      make_datetime(2024, 5, 1), std::vector<double>(24 * 400, -300.0));
  atmosphere::LifetimeConfig config;
  config.dst = &stormy;
  config.start_jd = timeutil::to_julian(make_datetime(2024, 5, 1));
  const double with_storm = atmosphere::decay_lifetime_days(350.0, 0.02, config);
  const double quiet = atmosphere::decay_lifetime_days(350.0, 0.02);
  EXPECT_LT(with_storm, quiet);
}

// ------------------------------ TleStore ------------------------------------

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cd_store_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static tle::Tle record(int catalog, double days_offset) {
    tle::Tle t;
    t.catalog_number = catalog;
    t.international_designator = "20001A";
    t.epoch_jd = timeutil::to_julian(make_datetime(2023, 1, 1)) + days_offset;
    t.inclination_deg = 53.0;
    t.mean_motion_revday = 15.06;
    t.bstar = 2e-4;
    return t;
  }

  std::filesystem::path dir_;
};

TEST_F(StoreTest, MergeLoadRoundTrip) {
  tle::TleStore store(dir_.string());
  tle::TleCatalog catalog;
  catalog.add(record(100, 0.0));
  catalog.add(record(100, 1.0));
  catalog.add(record(200, 0.5));
  EXPECT_EQ(store.merge(catalog), 3u);

  const tle::TleCatalog loaded = store.load();
  EXPECT_EQ(loaded.record_count(), 3u);
  EXPECT_EQ(loaded.satellites(), (std::vector<int>{100, 200}));
}

TEST_F(StoreTest, IncrementalMergeDeduplicates) {
  tle::TleStore store(dir_.string());
  tle::TleCatalog first;
  first.add(record(100, 0.0));
  EXPECT_EQ(store.merge(first), 1u);
  // Second merge: one duplicate, one new.
  tle::TleCatalog second;
  second.add(record(100, 0.0));
  second.add(record(100, 2.0));
  EXPECT_EQ(store.merge(second), 1u);
  EXPECT_EQ(store.load_satellite(100).record_count(), 2u);
  // Nothing new: no writes.
  EXPECT_EQ(store.merge(second), 0u);
}

TEST_F(StoreTest, LastEpochCursor) {
  tle::TleStore store(dir_.string());
  EXPECT_FALSE(store.last_epoch_jd(100).has_value());
  tle::TleCatalog catalog;
  catalog.add(record(100, 0.0));
  catalog.add(record(100, 3.0));
  store.merge(catalog);
  const auto cursor = store.last_epoch_jd(100);
  ASSERT_TRUE(cursor.has_value());
  EXPECT_NEAR(*cursor, record(100, 3.0).epoch_jd, 1e-8);
}

TEST_F(StoreTest, StoredSatellitesSortedAndFiltered) {
  tle::TleStore store(dir_.string());
  tle::TleCatalog catalog;
  catalog.add(record(300, 0.0));
  catalog.add(record(100, 0.0));
  store.merge(catalog);
  // A stray file must be ignored.
  io::write_file((dir_ / "notes.txt").string(), "hello");
  EXPECT_EQ(store.stored_satellites(), (std::vector<int>{100, 300}));
}

TEST_F(StoreTest, SurvivesReopen) {
  {
    tle::TleStore store(dir_.string());
    tle::TleCatalog catalog;
    catalog.add(record(100, 0.0));
    store.merge(catalog);
  }
  tle::TleStore reopened(dir_.string());
  EXPECT_EQ(reopened.load().record_count(), 1u);
}

// --------------------------- what-if scenarios ------------------------------

TEST(Feb2022Test, MostOfTheBatchIsLost) {
  const auto dst = spaceweather::DstGenerator(
                       spaceweather::DstGenerator::paper_window_2020_2024())
                       .generate();
  auto config = simulation::scenario::feb_2022(&dst);
  auto result = simulation::ConstellationSimulator(config).run();
  EXPECT_EQ(result.launched, 49);
  int staging_losses = 0;
  for (const auto& failure : result.failures) {
    if (failure.kind == simulation::FailureKind::kStagingReentry) ++staging_losses;
  }
  // Paper: 38 of 49 lost.  Accept the same regime.
  EXPECT_GE(staging_losses, 25);
  EXPECT_LE(staging_losses, 49);
  EXPECT_GE(result.reentered, 25);
}

TEST(CarringtonTest, WhatIfSeriesReachesCarringtonScale) {
  const auto dst = spaceweather::DstGenerator(
                       spaceweather::DstGenerator::carrington_what_if())
                       .generate();
  EXPECT_LT(dst.minimum(), -1500.0);
  EXPECT_GT(dst.minimum(), -1900.0);  // generator clamps at -1900
}

}  // namespace
}  // namespace cosmicdance
