// Earth gravity model constants for orbital mechanics and SGP4.
//
// SGP4 is defined against WGS-72 (the constants NORAD used when fitting the
// element sets), so that is the default everywhere; WGS-84 is provided for
// geodetic conversions and general astrodynamics.
#pragma once

#include <cmath>

namespace cosmicdance::orbit {

/// Bundle of Earth constants in the units SGP4 expects.
struct GravityModel {
  double mu = 0.0;             ///< km^3/s^2
  double radius_earth_km = 0.0;
  double xke = 0.0;            ///< sqrt(mu) in (earth radii)^1.5 / min
  double tumin = 0.0;          ///< 1/xke, minutes per canonical time unit
  double j2 = 0.0;
  double j3 = 0.0;
  double j4 = 0.0;
  double j3oj2 = 0.0;
};

/// WGS-72 constants (Vallado's wgs72 option; canonical for SGP4/TLE).
[[nodiscard]] inline GravityModel wgs72() noexcept {
  GravityModel g;
  g.mu = 398600.8;
  g.radius_earth_km = 6378.135;
  g.xke = 60.0 / std::sqrt(g.radius_earth_km * g.radius_earth_km *
                           g.radius_earth_km / g.mu);
  g.tumin = 1.0 / g.xke;
  g.j2 = 0.001082616;
  g.j3 = -0.00000253881;
  g.j4 = -0.00000165597;
  g.j3oj2 = g.j3 / g.j2;
  return g;
}

/// WGS-84 constants.
[[nodiscard]] inline GravityModel wgs84() noexcept {
  GravityModel g;
  g.mu = 398600.5;
  g.radius_earth_km = 6378.137;
  g.xke = 60.0 / std::sqrt(g.radius_earth_km * g.radius_earth_km *
                           g.radius_earth_km / g.mu);
  g.tumin = 1.0 / g.xke;
  g.j2 = 0.00108262998905;
  g.j3 = -0.00000253215306;
  g.j4 = -0.00000161098761;
  g.j3oj2 = g.j3 / g.j2;
  return g;
}

/// WGS-84 flattening for geodetic conversion.
inline constexpr double kWgs84Flattening = 1.0 / 298.257223563;

}  // namespace cosmicdance::orbit
