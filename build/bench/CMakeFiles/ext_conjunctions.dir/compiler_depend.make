# Empty compiler generated dependencies file for ext_conjunctions.
# This may be replaced when dependencies are built.
