#include "orbit/frames.hpp"

#include <cmath>

#include "common/units.hpp"
#include "timeutil/sidereal.hpp"

namespace cosmicdance::orbit {
namespace {

Vec3 rotate_z(const Vec3& v, double angle) noexcept {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return {c * v[0] + s * v[1], -s * v[0] + c * v[1], v[2]};
}

}  // namespace

Vec3 teme_to_ecef(const Vec3& r_teme_km, double jd_ut1) noexcept {
  return rotate_z(r_teme_km, timeutil::gmst_radians(jd_ut1));
}

Vec3 ecef_to_teme(const Vec3& r_ecef_km, double jd_ut1) noexcept {
  return rotate_z(r_ecef_km, -timeutil::gmst_radians(jd_ut1));
}

Geodetic ecef_to_geodetic(const Vec3& r) noexcept {
  const GravityModel g = wgs84();
  const double a = g.radius_earth_km;
  const double f = kWgs84Flattening;
  const double e2 = f * (2.0 - f);

  Geodetic geo;
  geo.longitude_rad = std::atan2(r[1], r[0]);

  const double rho = std::sqrt(r[0] * r[0] + r[1] * r[1]);
  if (rho < 1e-9) {
    // Polar axis: the iteration below divides by cos(lat); handle directly.
    geo.latitude_rad = r[2] >= 0.0 ? units::kPi / 2.0 : -units::kPi / 2.0;
    geo.altitude_km = std::fabs(r[2]) - a * std::sqrt(1.0 - e2);
    return geo;
  }
  double lat = std::atan2(r[2], rho * (1.0 - e2));  // first guess
  double alt = 0.0;
  for (int i = 0; i < 10; ++i) {
    const double sin_lat = std::sin(lat);
    const double n = a / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
    alt = rho / std::cos(lat) - n;
    const double lat_next = std::atan2(r[2], rho * (1.0 - e2 * n / (n + alt)));
    if (std::fabs(lat_next - lat) < 1e-12) {
      lat = lat_next;
      break;
    }
    lat = lat_next;
  }
  geo.latitude_rad = lat;
  geo.altitude_km = alt;
  return geo;
}

Vec3 geodetic_to_ecef(const Geodetic& geo) noexcept {
  const GravityModel g = wgs84();
  const double a = g.radius_earth_km;
  const double f = kWgs84Flattening;
  const double e2 = f * (2.0 - f);
  const double sin_lat = std::sin(geo.latitude_rad);
  const double cos_lat = std::cos(geo.latitude_rad);
  const double n = a / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
  return {(n + geo.altitude_km) * cos_lat * std::cos(geo.longitude_rad),
          (n + geo.altitude_km) * cos_lat * std::sin(geo.longitude_rad),
          (n * (1.0 - e2) + geo.altitude_km) * sin_lat};
}

}  // namespace cosmicdance::orbit
