// Second-round simulation tests: lifecycle corners, station-keeping
// behaviour, manoeuvre statistics, deorbit end-of-life, tracking
// configuration sweeps and launch-plan geometry.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "simulation/constellation.hpp"
#include "simulation/launch_plan.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"
#include "stats/descriptive.hpp"

namespace cosmicdance::simulation {
namespace {

using timeutil::make_datetime;

ConstellationConfig quiet_fleet(int count, const timeutil::DateTime& start,
                                const timeutil::DateTime& end) {
  ConstellationConfig config;
  config.seed = 9;
  config.start = start;
  config.end = end;
  config.failures.enabled = false;
  config.record_truth = true;
  LaunchBatch batch;
  batch.time = start;
  batch.count = count;
  batch.prelaunched = true;
  config.launches.push_back(batch);
  return config;
}

TEST(LifecycleTest, DeorbitAtEndOfLife) {
  auto config = quiet_fleet(5, make_datetime(2023, 1, 1), make_datetime(2024, 6, 1));
  config.lifetime_years = 0.5;  // satellites retire mid-run
  auto result = ConstellationSimulator(config).run();
  // All five retire, descend at the controlled rate and reenter.
  EXPECT_EQ(result.reentered, 5);
  EXPECT_EQ(result.tracked_at_end, 0);
  for (const auto& [id, truth] : result.truth) {
    bool saw_deorbiting = false;
    for (const auto& sample : truth) {
      if (sample.mode == SatelliteMode::kDeorbiting) saw_deorbiting = true;
    }
    EXPECT_TRUE(saw_deorbiting) << id;
  }
}

TEST(LifecycleTest, DeorbitRateRespected) {
  auto config = quiet_fleet(1, make_datetime(2023, 1, 1), make_datetime(2024, 6, 1));
  config.lifetime_years = 0.25;
  config.deorbit_km_per_day = 2.0;
  auto result = ConstellationSimulator(config).run();
  const auto& truth = result.truth.begin()->second;
  // Find the descent slope between 500 and 300 km.
  double t500 = 0.0;
  double t300 = 0.0;
  for (const auto& sample : truth) {
    if (t500 == 0.0 && sample.altitude_km <= 500.0) t500 = sample.jd;
    if (t300 == 0.0 && sample.altitude_km <= 300.0) t300 = sample.jd;
  }
  ASSERT_GT(t500, 0.0);
  ASSERT_GT(t300, 0.0);
  // 200 km at ~2 km/day (plus growing drag assist) -> <= 100 days, >= 50.
  EXPECT_GT(t300 - t500, 50.0);
  EXPECT_LT(t300 - t500, 100.0);
}

TEST(StationKeepingTest, HoldsDeadband) {
  auto config = quiet_fleet(10, make_datetime(2023, 1, 1), make_datetime(2023, 12, 1));
  config.maneuver_probability_per_day = 0.0;  // isolate the controller
  auto result = ConstellationSimulator(config).run();
  for (const auto& [id, truth] : result.truth) {
    for (const auto& sample : truth) {
      EXPECT_NEAR(sample.altitude_km, 550.0, config.deadband_km + 0.3) << id;
    }
  }
}

TEST(StationKeepingTest, ManeuverJitterVisibleButBounded) {
  auto config = quiet_fleet(20, make_datetime(2023, 1, 1), make_datetime(2023, 12, 1));
  config.maneuver_probability_per_day = 0.05;
  auto result = ConstellationSimulator(config).run();
  std::vector<double> altitudes;
  for (const auto& [id, truth] : result.truth) {
    for (const auto& sample : truth) altitudes.push_back(sample.altitude_km);
  }
  const auto s = stats::summarize(altitudes);
  EXPECT_GT(s.stddev, 0.1);  // manoeuvres visible
  EXPECT_LT(s.stddev, 2.0);  // but bounded
  EXPECT_GT(s.min, 544.0);
  EXPECT_LT(s.max, 554.0);
}

TEST(LaunchPlanTest, RaanSpreadCoversTheEquator) {
  const auto plan = starlink_like_plan(make_datetime(2020, 1, 1),
                                       make_datetime(2021, 1, 1), 14.0, 10);
  ASSERT_GE(plan.size(), 25u);
  // With the golden-angle stride, plane longitudes spread widely.
  std::set<int> sectors;
  for (const auto& batch : plan) {
    sectors.insert(static_cast<int>(batch.raan_deg / 45.0));
  }
  EXPECT_EQ(sectors.size(), 8u);
}

TEST(LaunchPlanTest, CatalogNumbersSequentialAcrossBatches) {
  ConstellationConfig config;
  config.seed = 3;
  config.start = make_datetime(2023, 1, 1);
  config.end = make_datetime(2023, 3, 1);
  config.failures.enabled = false;
  for (int b = 0; b < 3; ++b) {
    LaunchBatch batch;
    batch.time = timeutil::add_hours(config.start, b * 240.0);
    batch.count = 4;
    batch.prelaunched = true;
    config.launches.push_back(batch);
  }
  auto result = ConstellationSimulator(config).run();
  const auto sats = result.catalog.satellites();
  ASSERT_EQ(sats.size(), 12u);
  for (std::size_t i = 0; i < sats.size(); ++i) {
    EXPECT_EQ(sats[i], config.first_catalog_number + static_cast<int>(i));
  }
}

TEST(TrackingSweepTest, NoiseScalesAsConfigured) {
  const SatelliteState satellite = [] {
    SatelliteState s;
    s.catalog_number = 45001;
    s.international_designator = "20001A";
    s.mode = SatelliteMode::kOperational;
    s.altitude_km = 550.0;
    s.launch_jd = 2458800.0;
    return s;
  }();
  for (const double sigma : {0.02, 0.08, 0.3}) {
    TrackingConfig config;
    config.altitude_noise_km = sigma;
    config.gross_error_probability = 0.0;
    TrackingSimulator tracker(config, 21);
    std::vector<double> errors;
    for (int i = 0; i < 800; ++i) {
      errors.push_back(tracker.observe(satellite, 2460000.0 + i, 1.0, 0.0)
                           .altitude_km() -
                       550.0);
    }
    EXPECT_NEAR(stats::stddev(errors), sigma, sigma * 0.2) << sigma;
  }
}

TEST(TrackingSweepTest, RefreshBoundsRespectedAcrossConfigs) {
  for (const double sigma : {0.3, 0.8, 1.4}) {
    TrackingConfig config;
    config.refresh_lognormal_sigma = sigma;
    TrackingSimulator tracker(config, 5);
    double jd = 2460000.0;
    for (int i = 0; i < 2000; ++i) {
      const double next = tracker.next_observation_jd(jd);
      const double hours = (next - jd) * 24.0;
      EXPECT_GE(hours, config.refresh_min_hours);
      EXPECT_LE(hours, config.refresh_max_hours);
      jd = next;
    }
  }
}

TEST(FailureModelTest, OnsetThresholdRespected) {
  // A storm peaking just above the onset threshold produces no upsets.
  spaceweather::DstGeneratorConfig dst_config;
  dst_config.start = make_datetime(2023, 1, 1);
  dst_config.hours = 24 * 60;
  dst_config.include_random_storms = false;
  dst_config.scripted_storms.push_back(
      {make_datetime(2023, 2, 1, 6), -60.0, 4.0, 2.0, 10.0});
  const auto dst = spaceweather::DstGenerator(dst_config).generate();

  auto config = quiet_fleet(300, make_datetime(2023, 1, 1), make_datetime(2023, 3, 1));
  config.dst = &dst;
  config.failures.enabled = true;
  config.failures.onset_nt = 70.0;
  auto result = ConstellationSimulator(config).run();
  EXPECT_TRUE(result.failures.empty());
}

TEST(FailureModelTest, PermanentFractionShapesOutcome) {
  spaceweather::DstGeneratorConfig dst_config;
  dst_config.start = make_datetime(2023, 1, 1);
  dst_config.hours = 24 * 90;
  dst_config.include_random_storms = false;
  dst_config.scripted_storms.push_back(
      {make_datetime(2023, 2, 1, 6), -300.0, 4.0, 8.0, 10.0});
  const auto dst = spaceweather::DstGenerator(dst_config).generate();

  auto run_with_fraction = [&](double fraction) {
    auto config = quiet_fleet(400, make_datetime(2023, 1, 1),
                              make_datetime(2023, 4, 1));
    config.dst = &dst;
    config.failures.enabled = true;
    config.failures.permanent_fraction = fraction;
    auto result = ConstellationSimulator(config).run();
    int permanent = 0;
    for (const auto& failure : result.failures) {
      if (failure.kind == FailureKind::kPermanentDecay) ++permanent;
    }
    return std::pair<int, int>(permanent, static_cast<int>(result.failures.size()));
  };

  const auto [none_permanent, total_a] = run_with_fraction(0.0);
  const auto [all_permanent, total_b] = run_with_fraction(1.0);
  EXPECT_EQ(none_permanent, 0);
  EXPECT_GT(total_a, 10);
  EXPECT_EQ(all_permanent, total_b);
}

TEST(ScenarioTest, PaperWindowScalesWithBatchSize) {
  const auto small = scenario::paper_window(nullptr, 2, 30.0);
  const auto large = scenario::paper_window(nullptr, 6, 30.0);
  int small_count = 0;
  int large_count = 0;
  for (const auto& batch : small.launches) small_count += batch.count;
  for (const auto& batch : large.launches) large_count += batch.count;
  EXPECT_EQ(large_count, 3 * small_count);
}

TEST(ScenarioTest, Feb2022UsesLowStaging) {
  const auto config = scenario::feb_2022(nullptr);
  ASSERT_EQ(config.launches.size(), 1u);
  EXPECT_EQ(config.launches[0].count, 49);
  EXPECT_NEAR(config.launches[0].satellite.staging_altitude_km, 210.0, 1.0);
  EXPECT_EQ(config.first_catalog_number, 51439);
}

}  // namespace
}  // namespace cosmicdance::simulation
