# Empty compiler generated dependencies file for cd_tle.
# This may be replaced when dependencies are built.
