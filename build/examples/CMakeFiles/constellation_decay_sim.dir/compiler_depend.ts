# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for constellation_decay_sim.
