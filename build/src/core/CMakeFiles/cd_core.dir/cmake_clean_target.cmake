file(REMOVE_RECURSE
  "libcd_core.a"
)
