# Empty compiler generated dependencies file for cd_orbit.
# This may be replaced when dependencies are built.
