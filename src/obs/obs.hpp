// Runtime observability for the measurement pipeline: phase timers, named
// counters/gauges, and exporters.
//
// A Metrics registry is threaded through the hot paths as a raw pointer
// (PipelineConfig::metrics); nullptr means "off" and every instrumented
// site reduces to a single pointer test, so the disabled path costs
// effectively nothing.  When enabled:
//
//   * ScopedPhase records monotonic-clock wall time + invocation counts
//     per named phase, and captures each interval as a trace span.
//   * Counters are process-wide atomics.  They come in two groups with
//     different determinism guarantees (DESIGN.md §11):
//       - counter():       work actually performed (records ingested,
//                          tracks built, correlator cells evaluated...).
//                          Totals are *bit-identical at any thread count*
//                          because every increment corresponds to a unit of
//                          work whose count is a pure function of the input
//                          and integer addition commutes.
//       - sched_counter(): how the work was executed (parallel sections,
//                          pool chunks).  These legitimately vary with
//                          num_threads and are excluded from the
//                          determinism contract, like all timings.
//   * snapshot() freezes everything into a MetricsReport with flat
//     JSON/CSV exporters; trace_json() emits a Chrome trace_event JSON
//     timeline loadable in about:tracing / Perfetto.
//
// Thread-safety: counter handles may be bumped concurrently from workers
// (relaxed atomics); registry lookups, phase recording and snapshots take
// an internal mutex.  Handles returned by counter() stay valid for the
// registry's lifetime (map nodes are stable).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cosmicdance::obs {

/// Wall-time totals for one named phase (monotonic clock).
struct PhaseStats {
  std::uint64_t calls = 0;
  double total_ms = 0.0;
};

/// One completed phase interval, for the trace timeline.
struct TraceSpan {
  std::string name;
  std::uint64_t begin_us = 0;     ///< offset from the registry's clock origin
  std::uint64_t duration_us = 0;
  std::uint32_t tid = 0;          ///< registry-assigned small thread id
};

/// Immutable snapshot of a Metrics registry (see Metrics::snapshot).
struct MetricsReport {
  /// Work counters: bit-identical at any thread count.
  std::map<std::string, std::uint64_t> counters;
  /// Execution-shape counters (exec sections/chunks): thread-count
  /// dependent, excluded from the determinism contract.
  std::map<std::string, std::uint64_t> scheduling;
  std::map<std::string, double> gauges;
  std::map<std::string, PhaseStats> phases;

  /// Flat JSON dump: {"counters": {...}, "scheduling": {...},
  /// "gauges": {...}, "phases": {"name": {"calls": n, "wall_ms": x}}}.
  [[nodiscard]] std::string to_json() const;

  /// CSV-ready rows: header (kind, name, value), then one row per counter,
  /// scheduling counter, gauge, and two per phase (calls + wall_ms).
  [[nodiscard]] std::vector<std::vector<std::string>> metric_rows() const;
};

/// A registry-owned monotone counter; add() is safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// The registry.  One per observed run; not copyable (atomics + mutex).
class Metrics {
 public:
  Metrics();
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// Deterministic work counter (created on first use).
  [[nodiscard]] Counter& counter(const std::string& name);
  /// Scheduling counter: thread-count dependent, reported separately.
  [[nodiscard]] Counter& sched_counter(const std::string& name);

  /// Last-writer-wins named value (thread counts, dataset sizes...).
  void set_gauge(const std::string& name, double value);

  /// Fold one completed interval into the named phase and capture it as a
  /// trace span.  Called by ScopedPhase; callable directly for externally
  /// timed intervals.
  void record_phase(const std::string& name,
                    std::chrono::steady_clock::time_point begin,
                    std::chrono::steady_clock::time_point end);

  [[nodiscard]] MetricsReport snapshot() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}): one complete ("X")
  /// event per recorded phase interval, timestamps relative to registry
  /// construction.  Viewable in about:tracing / Perfetto.
  [[nodiscard]] std::string trace_json() const;

 private:
  std::uint32_t tid_for_current_thread_locked();

  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point origin_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Counter> sched_counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, PhaseStats> phases_;
  std::vector<TraceSpan> spans_;
  std::map<std::thread::id, std::uint32_t> thread_ids_;
};

/// RAII phase timer: times construction-to-destruction and records it under
/// `name`.  A nullptr registry makes it a complete no-op.
class ScopedPhase {
 public:
  ScopedPhase(Metrics* metrics, const char* name) : metrics_(metrics) {
    if (metrics_ != nullptr) {
      name_ = name;
      begin_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedPhase() {
    if (metrics_ != nullptr) {
      metrics_->record_phase(name_, begin_, std::chrono::steady_clock::now());
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Metrics* metrics_;
  std::string name_;
  std::chrono::steady_clock::time_point begin_{};
};

/// Hoist a counter handle out of a hot loop: one registry lookup up front,
/// then bump() per unit of work (a no-op on the disabled path).
[[nodiscard]] inline Counter* counter_or_null(Metrics* metrics,
                                              const std::string& name) {
  return metrics != nullptr ? &metrics->counter(name) : nullptr;
}

inline void bump(Counter* counter, std::uint64_t n = 1) noexcept {
  if (counter != nullptr) counter->add(n);
}

}  // namespace cosmicdance::obs
