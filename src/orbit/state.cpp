#include "orbit/state.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "orbit/kepler.hpp"

namespace cosmicdance::orbit {

double dot(const Vec3& a, const Vec3& b) noexcept {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

Vec3 cross(const Vec3& a, const Vec3& b) noexcept {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
          a[0] * b[1] - a[1] * b[0]};
}

double norm(const Vec3& a) noexcept { return std::sqrt(dot(a, a)); }

Vec3 scale(const Vec3& a, double s) noexcept { return {a[0] * s, a[1] * s, a[2] * s}; }

Vec3 add(const Vec3& a, const Vec3& b) noexcept {
  return {a[0] + b[0], a[1] + b[1], a[2] + b[2]};
}

Vec3 sub(const Vec3& a, const Vec3& b) noexcept {
  return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}

StateVector state_from_elements(const KeplerianElements& coe, const GravityModel& g) {
  coe.validate();
  const double e = coe.eccentricity;
  const double a = coe.semi_major_axis_km;
  const double e_anom = solve_kepler(coe.mean_anomaly_rad, e);
  const double nu = true_from_eccentric(e_anom, e);
  const double p = a * (1.0 - e * e);  // semi-latus rectum
  const double r_mag = p / (1.0 + e * std::cos(nu));

  // Perifocal frame position/velocity.
  const double cos_nu = std::cos(nu);
  const double sin_nu = std::sin(nu);
  const Vec3 r_pqw{r_mag * cos_nu, r_mag * sin_nu, 0.0};
  const double sqrt_mu_over_p = std::sqrt(g.mu / p);
  const Vec3 v_pqw{-sqrt_mu_over_p * sin_nu, sqrt_mu_over_p * (e + cos_nu), 0.0};

  // Rotate PQW -> inertial via R3(-raan) R1(-i) R3(-argp).
  const double cos_raan = std::cos(coe.raan_rad);
  const double sin_raan = std::sin(coe.raan_rad);
  const double cos_inc = std::cos(coe.inclination_rad);
  const double sin_inc = std::sin(coe.inclination_rad);
  const double cos_argp = std::cos(coe.arg_perigee_rad);
  const double sin_argp = std::sin(coe.arg_perigee_rad);

  const double m00 = cos_raan * cos_argp - sin_raan * sin_argp * cos_inc;
  const double m01 = -cos_raan * sin_argp - sin_raan * cos_argp * cos_inc;
  const double m10 = sin_raan * cos_argp + cos_raan * sin_argp * cos_inc;
  const double m11 = -sin_raan * sin_argp + cos_raan * cos_argp * cos_inc;
  const double m20 = sin_argp * sin_inc;
  const double m21 = cos_argp * sin_inc;

  auto rotate = [&](const Vec3& v) -> Vec3 {
    return {m00 * v[0] + m01 * v[1], m10 * v[0] + m11 * v[1],
            m20 * v[0] + m21 * v[1]};
  };

  return StateVector{rotate(r_pqw), rotate(v_pqw)};
}

KeplerianElements elements_from_state(const StateVector& sv, const GravityModel& g) {
  const Vec3& r = sv.position_km;
  const Vec3& v = sv.velocity_kms;
  const double r_mag = norm(r);
  const double v_mag = norm(v);
  if (r_mag < 1.0) throw PropagationError("state vector at Earth's center");

  const Vec3 h = cross(r, v);
  const double h_mag = norm(h);
  if (h_mag < 1e-8) throw PropagationError("rectilinear orbit in RV2COE");

  const Vec3 node{-h[1], h[0], 0.0};
  const double node_mag = norm(node);

  const double energy = v_mag * v_mag / 2.0 - g.mu / r_mag;
  if (energy >= 0.0) throw PropagationError("non-elliptical orbit in RV2COE");
  const double a = -g.mu / (2.0 * energy);

  const double rv = dot(r, v);
  Vec3 e_vec = sub(scale(r, v_mag * v_mag - g.mu / r_mag), scale(v, rv));
  e_vec = scale(e_vec, 1.0 / g.mu);
  const double e = norm(e_vec);

  KeplerianElements coe;
  coe.semi_major_axis_km = a;
  coe.eccentricity = e;
  coe.inclination_rad = std::acos(std::clamp(h[2] / h_mag, -1.0, 1.0));

  const bool equatorial = node_mag < 1e-10;
  const bool circular = e < 1e-10;

  if (!equatorial) {
    double raan = std::acos(std::clamp(node[0] / node_mag, -1.0, 1.0));
    if (node[1] < 0.0) raan = units::kTwoPi - raan;
    coe.raan_rad = raan;
  } else {
    coe.raan_rad = 0.0;
  }

  double argp = 0.0;
  double nu = 0.0;
  if (!circular && !equatorial) {
    argp = std::acos(std::clamp(dot(node, e_vec) / (node_mag * e), -1.0, 1.0));
    if (e_vec[2] < 0.0) argp = units::kTwoPi - argp;
    nu = std::acos(std::clamp(dot(e_vec, r) / (e * r_mag), -1.0, 1.0));
    if (rv < 0.0) nu = units::kTwoPi - nu;
  } else if (circular && !equatorial) {
    // Argument of latitude substitutes for argp + nu.
    double arglat = std::acos(std::clamp(dot(node, r) / (node_mag * r_mag), -1.0, 1.0));
    if (r[2] < 0.0) arglat = units::kTwoPi - arglat;
    argp = 0.0;
    nu = arglat;
  } else if (!circular && equatorial) {
    double lon_per = std::acos(std::clamp(e_vec[0] / e, -1.0, 1.0));
    if (e_vec[1] < 0.0) lon_per = units::kTwoPi - lon_per;
    argp = lon_per;
    nu = std::acos(std::clamp(dot(e_vec, r) / (e * r_mag), -1.0, 1.0));
    if (rv < 0.0) nu = units::kTwoPi - nu;
  } else {
    // Circular equatorial: true longitude.
    double lambda = std::acos(std::clamp(r[0] / r_mag, -1.0, 1.0));
    if (r[1] < 0.0) lambda = units::kTwoPi - lambda;
    argp = 0.0;
    nu = lambda;
  }
  coe.arg_perigee_rad = argp;

  const double e_anom = eccentric_from_true(nu, std::min(e, 1.0 - 1e-12));
  coe.mean_anomaly_rad = mean_from_eccentric(e_anom, std::min(e, 1.0 - 1e-12));
  return coe;
}

}  // namespace cosmicdance::orbit
