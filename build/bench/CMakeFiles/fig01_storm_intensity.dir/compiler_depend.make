# Empty compiler generated dependencies file for fig01_storm_intensity.
# This may be replaced when dependencies are built.
