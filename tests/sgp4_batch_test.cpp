// BatchPropagator + SGP4 correctness regression suite.
//
// Covers the four DESIGN.md §16 contracts end to end:
//   - golden vectors: the committed CSV under tests/golden/ pins exact
//     states for a near-earth, a high-eccentricity, a synchronous (irez=1)
//     and a half-day resonant (irez=2) element set, anchored externally by
//     Vallado's published verification values for TLE 00005;
//   - determinism: batch output is bit-identical to the single-satellite
//     propagator, across thread counts, and under any epoch-grid ordering
//     (the resonance memo is exact, not approximate);
//   - thread safety: one shared deep-space propagator driven from many
//     threads matches the serial sweep (the TSan tier-1 target);
//   - bounded failure: the Kepler solve returns a defined status at its
//     iteration bound, and a decaying low-perigee TLE degrades to a defined
//     status instead of hanging or emitting garbage.
//
// Regenerating the golden CSV after an *intentional* model change:
//   COSMICDANCE_REGEN_GOLDEN=1 ./sgp4_batch_test
// then commit the rewritten file with the change that motivated it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "io/csv.hpp"
#include "io/parse.hpp"
#include "sgp4/batch.hpp"
#include "sgp4/sgp4.hpp"
#include "timeutil/datetime.hpp"
#include "tle/tle.hpp"

#ifndef COSMICDANCE_GOLDEN_DIR
#error "build must define COSMICDANCE_GOLDEN_DIR"
#endif

namespace cosmicdance {
namespace {

// ---------------------------------------------------------------------------
// Shared element sets (the golden CSV generator mirrors these).

tle::Tle vallado00005_tle() {
  return tle::parse_tle(
      "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753",
      "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667");
}

tle::Tle iss_tle() {
  return tle::parse_tle(
      "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927",
      "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537");
}

tle::Tle geo_tle() {
  tle::Tle t;
  t.catalog_number = 70001;
  t.international_designator = "20010A";
  t.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1, 12));
  t.inclination_deg = 0.5;
  t.raan_deg = 95.0;
  t.eccentricity = 3.0e-4;
  t.arg_perigee_deg = 10.0;
  t.mean_anomaly_deg = 200.0;
  t.mean_motion_revday = 1.00273896;
  t.bstar = 0.0;
  return t;
}

tle::Tle molniya_tle() {
  tle::Tle t = geo_tle();
  t.catalog_number = 70002;
  t.international_designator = "20011A";
  t.inclination_deg = 63.4;
  t.raan_deg = 40.0;
  t.eccentricity = 0.72;
  t.arg_perigee_deg = 270.0;
  t.mean_anomaly_deg = 10.0;
  t.mean_motion_revday = 2.00570000;
  t.bstar = 1.0e-5;
  return t;
}

/// Deterministic mixed fleet covering near-earth, synchronous and half-day
/// rows (index-derived elements, no RNG — every run sees one dataset).
std::vector<tle::Tle> mixed_fleet(std::size_t rows) {
  std::vector<tle::Tle> fleet;
  fleet.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    tle::Tle t;
    const int kind = static_cast<int>(i % 5);
    if (kind == 3) {
      t = geo_tle();
    } else if (kind == 4) {
      t = molniya_tle();
    } else {
      t = iss_tle();
      t.inclination_deg = 45.0 + 5.0 * static_cast<double>(i % 7);
      t.mean_motion_revday = 14.5 + 0.05 * static_cast<double>(i % 16);
      t.eccentricity = 1.0e-4 + 3.0e-4 * static_cast<double>(i % 4);
    }
    t.catalog_number = static_cast<int>(80000 + i);
    t.raan_deg = 3.6 * static_cast<double>(i % 100);
    t.mean_anomaly_deg = 7.2 * static_cast<double>(i % 50);
    fleet.push_back(t);
  }
  return fleet;
}

/// 10 days at 4-hour cadence, in minutes — long enough that the resonance
/// integrator takes many 720-minute steps on the deep-space rows.
std::vector<double> test_grid() {
  std::vector<double> tsince;
  tsince.reserve(61);
  for (int i = 0; i <= 60; ++i) tsince.push_back(240.0 * i);
  return tsince;
}

bool bitwise_equal(const orbit::StateVector& a, const orbit::StateVector& b) {
  return a.position_km == b.position_km && a.velocity_kms == b.velocity_kms;
}

::testing::AssertionResult GridsIdentical(const sgp4::BatchResult& a,
                                          const sgp4::BatchResult& b) {
  if (a.rows != b.rows || a.epochs != b.epochs) {
    return ::testing::AssertionFailure() << "grid shapes differ";
  }
  for (std::size_t i = 0; i < a.statuses.size(); ++i) {
    if (a.statuses[i] != b.statuses[i]) {
      return ::testing::AssertionFailure()
             << "status differs at cell " << i << ": "
             << to_string(a.statuses[i]) << " vs " << to_string(b.statuses[i]);
    }
    if (!bitwise_equal(a.states[i], b.states[i])) {
      return ::testing::AssertionFailure()
             << "state differs at cell " << i << " (row " << i / a.epochs
             << ", epoch " << i % a.epochs << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Golden vectors.

struct GoldenCase {
  const char* id;
  tle::Tle tle;
};

std::vector<GoldenCase> golden_cases() {
  return {{"vallado00005", vallado00005_tle()},
          {"iss25544", iss_tle()},
          {"geo_sync", geo_tle()},
          {"molniya_12h", molniya_tle()}};
}

const std::vector<double>& golden_tsince() {
  static const std::vector<double> kTsince = {0.0,    120.0,  360.0, 720.0,
                                              1440.0, 2880.0, 4320.0};
  return kTsince;
}

std::string golden_path() {
  return std::string(COSMICDANCE_GOLDEN_DIR) + "/sgp4_states.csv";
}

bool regen_requested() {
  const char* env = std::getenv("COSMICDANCE_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

std::vector<io::CsvRow> compute_golden_rows() {
  std::vector<io::CsvRow> rows;
  rows.push_back(
      {"case", "tsince_min", "x_km", "y_km", "z_km", "vx_kms", "vy_kms",
       "vz_kms"});
  char cell[64];
  for (const GoldenCase& c : golden_cases()) {
    const sgp4::Sgp4Propagator propagator(c.tle);
    for (const double tsince : golden_tsince()) {
      orbit::StateVector out;
      const sgp4::Sgp4Status status =
          propagator.try_propagate_minutes(tsince, out);
      EXPECT_EQ(status, sgp4::Sgp4Status::kOk) << c.id << " t=" << tsince;
      io::CsvRow row = {c.id};
      std::snprintf(cell, sizeof cell, "%.1f", tsince);
      row.emplace_back(cell);
      for (const double v : out.position_km) {
        std::snprintf(cell, sizeof cell, "%.9e", v);
        row.emplace_back(cell);
      }
      for (const double v : out.velocity_kms) {
        std::snprintf(cell, sizeof cell, "%.12e", v);
        row.emplace_back(cell);
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

TEST(Sgp4GoldenTest, StatesMatchCommittedVectors) {
  if (regen_requested()) {
    io::write_csv_file(golden_path(), compute_golden_rows());
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  const std::vector<io::CsvRow> golden = io::read_csv_file(golden_path());
  ASSERT_EQ(golden.size(), 1 + golden_cases().size() * golden_tsince().size());

  std::size_t row_index = 1;
  for (const GoldenCase& c : golden_cases()) {
    const sgp4::Sgp4Propagator propagator(c.tle);
    for (const double tsince : golden_tsince()) {
      const io::CsvRow& row = golden[row_index++];
      ASSERT_EQ(row.size(), 8u);
      EXPECT_EQ(row[0], c.id);
      orbit::StateVector out;
      ASSERT_EQ(propagator.try_propagate_minutes(tsince, out),
                sgp4::Sgp4Status::kOk)
          << c.id << " t=" << tsince;
      for (int axis = 0; axis < 3; ++axis) {
        const auto expected_pos = io::parse_double(row[2 + axis]);
        const auto expected_vel = io::parse_double(row[5 + axis]);
        ASSERT_TRUE(expected_pos.has_value() && expected_vel.has_value());
        // The CSV stores 10/13 significant digits; compare to the print
        // precision, not the model's — this is a regression pin.
        EXPECT_NEAR(out.position_km[axis], *expected_pos,
                    1e-6 * std::max(1.0, std::fabs(*expected_pos)))
            << c.id << " t=" << tsince << " axis " << axis;
        EXPECT_NEAR(out.velocity_kms[axis], *expected_vel,
                    1e-9 * std::max(1.0, std::fabs(*expected_vel)))
            << c.id << " t=" << tsince << " axis " << axis;
      }
    }
  }
}

TEST(Sgp4GoldenTest, ValladoPublishedVectorsAnchor00005) {
  // External anchor (km-level): the AIAA 2006-6753 verification values for
  // TLE 00005, independent of anything this repo generated.
  struct Anchor {
    double tsince;
    orbit::Vec3 position_km;
    orbit::Vec3 velocity_kms;
  };
  const Anchor anchors[] = {
      {0.0,
       {7022.46529266, -1400.08296755, 0.03995155},
       {1.893841015, 6.405893759, 4.534807250}},
      {360.0,
       {-7154.03120202, -3783.17682504, -3536.19412294},
       {4.741887409, -4.151817765, -2.093935425}},
      {720.0,
       {-7134.59340119, 6531.68641334, 3260.27186483},
       {-4.113793027, -2.911922039, -2.557327851}},
      {1080.0,
       {5568.53901181, 4492.06992591, 3863.87641983},
       {-4.209106476, 5.159719888, 2.744852980}},
      {1440.0,
       {-938.55923943, -6268.18748831, -4294.02924751},
       {7.536105209, -0.427127707, 0.989878080}},
  };
  const sgp4::Sgp4Propagator propagator(vallado00005_tle());
  for (const Anchor& a : anchors) {
    orbit::StateVector out;
    ASSERT_EQ(propagator.try_propagate_minutes(a.tsince, out),
              sgp4::Sgp4Status::kOk);
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_NEAR(out.position_km[axis], a.position_km[axis], 1e-3)
          << "t=" << a.tsince << " axis " << axis;
      EXPECT_NEAR(out.velocity_kms[axis], a.velocity_kms[axis], 1e-6)
          << "t=" << a.tsince << " axis " << axis;
    }
  }
}

TEST(Sgp4GoldenTest, BatchMatchesGoldenCasesBitIdentical) {
  std::vector<tle::Tle> tles;
  for (const GoldenCase& c : golden_cases()) tles.push_back(c.tle);
  const sgp4::BatchPropagator batch = sgp4::BatchPropagator::from_tles(tles);
  ASSERT_EQ(batch.rows(), tles.size());
  ASSERT_TRUE(batch.init_failures().empty());

  const sgp4::BatchResult grid =
      batch.propagate_minutes(golden_tsince(), 1);
  for (std::size_t row = 0; row < tles.size(); ++row) {
    const sgp4::Sgp4Propagator single(tles[row]);
    for (std::size_t e = 0; e < golden_tsince().size(); ++e) {
      orbit::StateVector out;
      ASSERT_EQ(single.try_propagate_minutes(golden_tsince()[e], out),
                grid.status(row, e));
      EXPECT_TRUE(bitwise_equal(out, grid.state(row, e)))
          << "row " << row << " epoch " << e;
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism contract.

TEST(BatchPropagatorTest, BitIdenticalAcrossThreadCounts) {
  const sgp4::BatchPropagator batch =
      sgp4::BatchPropagator::from_tles(mixed_fleet(48));
  const std::vector<double> grid = test_grid();
  const sgp4::BatchResult serial = batch.propagate_minutes(grid, 1);
  for (const int threads : {0, 2, 4, 8}) {
    EXPECT_TRUE(GridsIdentical(serial, batch.propagate_minutes(grid, threads)))
        << "threads=" << threads;
  }
}

TEST(BatchPropagatorTest, BitIdenticalUnderEpochReordering) {
  const sgp4::BatchPropagator batch =
      sgp4::BatchPropagator::from_tles(mixed_fleet(20));
  // Ascending grid spanning *negative* offsets too, so the shuffle makes
  // the resonance integrator cross t=0 repeatedly (the restart condition's
  // hard case).
  std::vector<double> sorted;
  for (int i = -30; i <= 30; ++i) sorted.push_back(480.0 * i);

  // Deterministic shuffle: stride through the indices with a step coprime
  // to the length (61), touching every element in a scrambled order.
  std::vector<std::size_t> order(sorted.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = (i * 37) % sorted.size();
  }
  std::vector<double> shuffled(sorted.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    shuffled[i] = sorted[order[i]];
  }

  const sgp4::BatchResult sorted_grid = batch.propagate_minutes(sorted, 1);
  const sgp4::BatchResult shuffled_grid = batch.propagate_minutes(shuffled, 1);
  for (std::size_t row = 0; row < batch.rows(); ++row) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(sorted_grid.status(row, order[i]),
                shuffled_grid.status(row, i));
      EXPECT_TRUE(bitwise_equal(sorted_grid.state(row, order[i]),
                                shuffled_grid.state(row, i)))
          << "row " << row << " epoch " << sorted[order[i]];
    }
  }
}

TEST(BatchPropagatorTest, ResonanceMemoNeverChangesResults) {
  // One persistent ResonanceState across an out-of-order sweep must match
  // a cold state per call exactly (the memo's exactness contract).
  const sgp4::Sgp4Propagator propagator(molniya_tle());
  const double sweep[] = {720.0,  1440.0, 360.0,   -720.0, 2880.0,
                          -360.0, 4320.0, -1440.0, 120.0,  2880.0};
  sgp4::ResonanceState memo;
  for (const double tsince : sweep) {
    orbit::StateVector with_memo, cold;
    const sgp4::Sgp4Status a =
        propagator.try_propagate_minutes(tsince, with_memo, &memo);
    const sgp4::Sgp4Status b = propagator.try_propagate_minutes(tsince, cold);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(bitwise_equal(with_memo, cold)) << "t=" << tsince;
  }
}

TEST(BatchPropagatorTest, AbsoluteEpochGridMatchesPerRowOffsets) {
  const std::vector<tle::Tle> fleet = mixed_fleet(10);
  const sgp4::BatchPropagator batch = sgp4::BatchPropagator::from_tles(fleet);
  const double start_jd = geo_tle().epoch_jd + 2.0;
  const std::vector<double> epochs_jd = {start_jd, start_jd + 0.5,
                                         start_jd + 1.0};
  const sgp4::BatchResult grid = batch.propagate_jd(epochs_jd, 1);
  ASSERT_EQ(grid.rows, batch.rows());
  for (std::size_t row = 0; row < batch.rows(); ++row) {
    for (std::size_t e = 0; e < epochs_jd.size(); ++e) {
      const double tsince =
          (epochs_jd[e] - batch.epoch_jd(row)) * units::kMinutesPerDay;
      orbit::StateVector out;
      ASSERT_EQ(batch.try_propagate_row(row, tsince, out),
                grid.status(row, e));
      EXPECT_TRUE(bitwise_equal(out, grid.state(row, e)));
    }
  }
}

TEST(BatchPropagatorTest, InitFailureIsRecordedAndSkipped) {
  tle::Tle sunk = iss_tle();  // perigee far below the surface at epoch
  sunk.catalog_number = 90001;
  sunk.mean_motion_revday = 17.5;
  sunk.eccentricity = 0.1;
  const std::vector<tle::Tle> tles = {iss_tle(), sunk, geo_tle()};
  const sgp4::BatchPropagator batch = sgp4::BatchPropagator::from_tles(tles);
  EXPECT_EQ(batch.rows(), 2u);
  ASSERT_EQ(batch.init_failures().size(), 1u);
  EXPECT_EQ(batch.init_failures()[0].catalog_number, 90001);
  EXPECT_FALSE(batch.init_failures()[0].message.empty());
  EXPECT_EQ(batch.catalog_number(0), iss_tle().catalog_number);
  EXPECT_EQ(batch.catalog_number(1), geo_tle().catalog_number);
}

// ---------------------------------------------------------------------------
// Thread safety of one shared propagator (the TSan tier-1 target).

TEST(Sgp4ThreadSafetyTest, SharedDeepSpacePropagatorAcrossThreads) {
  // Before the init/propagate split the deep-space resonance integrator
  // wrote its memo (atime/xli/xni) through a mutable member on every call,
  // so two threads sharing one propagator raced.  The kernel is now pure;
  // this drives one shared instance hard enough for TSan to notice any
  // regression, and checks the results against a serial sweep.
  const sgp4::Sgp4Propagator shared(molniya_tle());
  constexpr int kThreads = 4;
  constexpr int kStepsPerThread = 200;

  std::vector<std::vector<orbit::StateVector>> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&shared, &results, w] {
      results[w].resize(kStepsPerThread);
      for (int i = 0; i < kStepsPerThread; ++i) {
        // Interleaved, sign-alternating offsets: every thread repeatedly
        // resets and re-advances the resonance recurrence.
        const double tsince = (i % 2 == 0 ? 1.0 : -1.0) *
                              (17.0 * i + 11.0 * w + 1.0);
        ASSERT_EQ(shared.try_propagate_minutes(tsince, results[w][i]),
                  sgp4::Sgp4Status::kOk);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (int w = 0; w < kThreads; ++w) {
    for (int i = 0; i < kStepsPerThread; ++i) {
      const double tsince =
          (i % 2 == 0 ? 1.0 : -1.0) * (17.0 * i + 11.0 * w + 1.0);
      orbit::StateVector expected;
      ASSERT_EQ(shared.try_propagate_minutes(tsince, expected),
                sgp4::Sgp4Status::kOk);
      EXPECT_TRUE(bitwise_equal(results[w][i], expected))
          << "thread " << w << " step " << i;
    }
  }
}

TEST(Sgp4ThreadSafetyTest, BatchParallelMatchesSerialOnDeepSpaceFleet) {
  // All-resonant fleet so every parallel_for chunk runs the integrator.
  std::vector<tle::Tle> fleet;
  for (int i = 0; i < 24; ++i) {
    tle::Tle t = (i % 2 == 0) ? geo_tle() : molniya_tle();
    t.catalog_number = 85000 + i;
    t.raan_deg = 15.0 * i;
    fleet.push_back(t);
  }
  const sgp4::BatchPropagator batch = sgp4::BatchPropagator::from_tles(fleet);
  ASSERT_EQ(batch.deep_space_rows(), fleet.size());
  const std::vector<double> grid = test_grid();
  EXPECT_TRUE(
      GridsIdentical(batch.propagate_minutes(grid, 1),
                     batch.propagate_minutes(grid, 4)));
}

// ---------------------------------------------------------------------------
// Bounded failure modes.

TEST(Sgp4StatusTest, KeplerSolveReturnsDefinedStatusAtIterationBound) {
  // axnl > 1 puts Newton's update outside its convergence basin; the
  // reference implementation loops its 10 iterations and silently keeps the
  // unconverged iterate.  Ours reports it.
  double eo1 = 0.0, sineo1 = 0.0, coseo1 = 0.0;
  EXPECT_EQ(sgp4::detail::solve_kepler(0.1, 1.2, 0.0, eo1, sineo1, coseo1),
            sgp4::Sgp4Status::kKeplerNotConverged);

  // A well-behaved elliptical solve converges and reports kOk, with the
  // returned (sin, cos) pair consistent with the eccentric anomaly.
  EXPECT_EQ(sgp4::detail::solve_kepler(1.0, 0.3, 0.1, eo1, sineo1, coseo1),
            sgp4::Sgp4Status::kOk);
  EXPECT_NEAR(sineo1, std::sin(eo1), 1e-12);
  EXPECT_NEAR(coseo1, std::cos(eo1), 1e-12);
  // Kepler's equation u = E + aynl*cos(E) - axnl*sin(E) holds at the root.
  EXPECT_NEAR(eo1 + 0.1 * std::cos(eo1) - 0.3 * std::sin(eo1), 1.0, 1e-8);
}

TEST(Sgp4StatusTest, DecayingLowPerigeeTleFailsWithDefinedStatus) {
  // A heavily dragged low-perigee set: B* = 0.1 pulls the mean eccentricity
  // negative within hours.  Construction must succeed, t=0 must propagate,
  // and the failure must be a *defined* status (never a hang, never NaNs
  // passed through as kOk).
  tle::Tle decaying;
  decaying.catalog_number = 99001;
  decaying.international_designator = "23001A";
  decaying.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1));
  decaying.inclination_deg = 51.6;
  decaying.raan_deg = 40.0;
  decaying.eccentricity = 0.02;
  decaying.arg_perigee_deg = 30.0;
  decaying.mean_anomaly_deg = 60.0;
  decaying.mean_motion_revday = 16.2;
  decaying.bstar = 0.1;

  const sgp4::Sgp4Propagator propagator(decaying);
  orbit::StateVector out;
  EXPECT_EQ(propagator.try_propagate_minutes(0.0, out), sgp4::Sgp4Status::kOk);

  bool failed = false;
  for (double tsince = 60.0; tsince <= 20.0 * units::kMinutesPerDay;
       tsince += 60.0) {
    const sgp4::Sgp4Status status =
        propagator.try_propagate_minutes(tsince, out);
    if (status == sgp4::Sgp4Status::kOk) {
      EXPECT_FALSE(std::isnan(orbit::norm(out.position_km)));
      continue;
    }
    // First failure: must be one of the documented degradation statuses.
    EXPECT_TRUE(status == sgp4::Sgp4Status::kEccentricityOutOfRange ||
                status == sgp4::Sgp4Status::kDecayed ||
                status == sgp4::Sgp4Status::kKeplerNotConverged)
        << to_string(status);
    failed = true;
    break;
  }
  EXPECT_TRUE(failed) << "decaying TLE never reached a failure status";

  // The batch engine reports the same cells as errors instead of poisoning
  // neighbouring rows.
  const std::vector<tle::Tle> tles = {decaying, iss_tle()};
  const sgp4::BatchPropagator batch = sgp4::BatchPropagator::from_tles(tles);
  const std::vector<double> grid = {0.0, 2.0 * units::kMinutesPerDay};
  const sgp4::BatchResult result = batch.propagate_minutes(grid, 1);
  EXPECT_EQ(result.status(0, 0), sgp4::Sgp4Status::kOk);
  EXPECT_NE(result.status(0, 1), sgp4::Sgp4Status::kOk);
  EXPECT_EQ(result.state(0, 1).position_km, orbit::Vec3{});
  EXPECT_EQ(result.status(1, 0), sgp4::Sgp4Status::kOk);
  EXPECT_EQ(result.status(1, 1), sgp4::Sgp4Status::kOk);
  EXPECT_EQ(result.error_count(), 1u);
}

TEST(Sgp4StatusTest, StatusStringsAreDistinct) {
  const sgp4::Sgp4Status all[] = {
      sgp4::Sgp4Status::kOk,
      sgp4::Sgp4Status::kEccentricityOutOfRange,
      sgp4::Sgp4Status::kMeanMotionNonPositive,
      sgp4::Sgp4Status::kPerturbedEccentricityOutOfRange,
      sgp4::Sgp4Status::kSemiLatusRectumNegative,
      sgp4::Sgp4Status::kDecayed,
      sgp4::Sgp4Status::kKeplerNotConverged,
  };
  std::vector<std::string> names;
  for (const sgp4::Sgp4Status status : all) {
    names.push_back(to_string(status));
    EXPECT_FALSE(names.back().empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace cosmicdance
