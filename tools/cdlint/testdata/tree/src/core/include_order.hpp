// cdlint corpus: sibling header for the `include-first` (R7) seed.
#pragma once

int ordered_value();
