file(REMOVE_RECURSE
  "CMakeFiles/ext_carrington.dir/ext_carrington.cpp.o"
  "CMakeFiles/ext_carrington.dir/ext_carrington.cpp.o.d"
  "ext_carrington"
  "ext_carrington.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_carrington.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
