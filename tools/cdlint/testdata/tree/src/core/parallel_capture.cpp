// cdlint corpus: seeded violations for rule `shared-mutable-capture` (R9).
#include <atomic>
#include <cstddef>
#include <vector>

namespace exec {
void parallel_for(std::size_t count, int threads, void* body);
}

std::atomic<long> hits{0};

long accumulate_races(const std::vector<long>& values) {
  long total = 0;
  std::vector<long> results;
  std::vector<long> out(values.size());
  exec::parallel_for(values.size(), 4, [&](std::size_t i) {
    total += values[i];      // positive: shared accumulator, no indexing
    out[i] = values[i] * 2;  // negative: per-index slot
    hits += 1;               // negative: atomic writes commute
    long local = values[i];  // negative: body-local
    local += 1;
    (void)local;
  });
  exec::parallel_for(values.size(), 4, [&results, &total](std::size_t i) {
    results.push_back(i);  // positive: explicit by-ref capture mutated
    (void)total;
  });
  return total;
}

long value_capture_ok(const std::vector<long>& values) {
  long copy = 0;
  exec::parallel_for(values.size(), 1, [copy](std::size_t i) mutable {
    copy += static_cast<long>(i);  // negative: by-value capture
  });
  return copy;
}

long allowed_on_write(const std::vector<long>& values) {
  long total = 0;
  exec::parallel_for(values.size(), 4, [&](std::size_t i) {
    // cdlint: allow(shared-mutable-capture) corpus seed: reduction validated by the differential test
    total += static_cast<long>(i);
  });
  return total;
}

long allowed_on_capture(const std::vector<long>& values) {
  long total = 0;
  // cdlint: allow(shared-mutable-capture) corpus seed: suppression on the capture line
  exec::parallel_for(values.size(), 4, [&](std::size_t i) {
    total += static_cast<long>(i);
  });
  return total;
}

long reasonless_allow(const std::vector<long>& values) {
  long total = 0;
  // cdlint: allow(shared-mutable-capture)
  exec::parallel_for(values.size(), 4, [&](std::size_t i) {
    total += static_cast<long>(i);
  });
  return total;
}
