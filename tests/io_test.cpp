#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "diag/diag.hpp"
#include "io/csv.hpp"
#include "io/file.hpp"
#include "io/table.hpp"

namespace cosmicdance::io {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cd_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST(CsvParseTest, SimpleFields) {
  const CsvRow row = parse_csv_line("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[2], "c");
}

TEST(CsvParseTest, EmptyFields) {
  const CsvRow row = parse_csv_line("a,,c,");
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], "");
  EXPECT_EQ(row[3], "");
}

TEST(CsvParseTest, QuotedFieldWithComma) {
  const CsvRow row = parse_csv_line("\"a,b\",c");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "a,b");
}

TEST(CsvParseTest, EscapedQuote) {
  const CsvRow row = parse_csv_line("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "say \"hi\"");
}

TEST(CsvParseTest, RejectsUnterminatedQuote) {
  EXPECT_THROW(parse_csv_line("\"oops,a"), ParseError);
}

TEST(CsvParseTest, RejectsQuoteInsideBareField) {
  EXPECT_THROW(parse_csv_line("ab\"cd,e"), ParseError);
}

TEST(CsvParseTest, RejectsTextAfterClosingQuote) {
  // RFC 4180: `"ab"cd` is malformed, not the field `abcd`.
  EXPECT_THROW(parse_csv_line("\"ab\"cd"), ParseError);
  EXPECT_THROW(parse_csv_line("x,\"ab\"cd,y"), ParseError);
  EXPECT_THROW(parse_csv_line("\"ab\" ,x"), ParseError);
  // A quoted field followed directly by a separator or end is fine.
  EXPECT_EQ(parse_csv_line("\"ab\",cd"), (CsvRow{"ab", "cd"}));
  EXPECT_EQ(parse_csv_line("cd,\"ab\""), (CsvRow{"cd", "ab"}));
}

TEST(CsvStreamTest, CrlfRecordsRoundTrip) {
  const std::vector<CsvRow> rows{{"h1", "h2"}, {"a", "b,c"}, {"d", "e"}};
  std::string text;
  for (const CsvRow& row : rows) text += format_csv_row(row) + "\r\n";
  std::istringstream in(text);
  EXPECT_EQ(read_csv(in), rows);
}

TEST(CsvStreamTest, QuotedEmbeddedNewlineRoundTrips) {
  const std::vector<CsvRow> rows{{"multi\nline", "x"}, {"a\r\nb", "y"}};
  std::ostringstream out;
  write_csv(out, rows);
  std::istringstream in(out.str());
  const auto parsed = read_csv(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0][0], "multi\nline");
  // The CR inside the quoted field is data, not a line terminator...
  // ...except that getline-based ingestion strips "\r\n" pairs; the LF is
  // restored, which is the RFC-compatible canonical form.
  EXPECT_EQ(parsed[1][1], "y");
}

TEST(CsvStreamTest, TolerantLogQuarantinesBadRowAndKeepsTheRest) {
  std::istringstream in("a,b\n\"x\"tail,c\nd,e\n");
  diag::ParseLog log(diag::ParsePolicy::kTolerant);
  const auto rows = read_csv(in, &log, "mixed.csv");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"d", "e"}));
  ASSERT_EQ(log.quarantined_count(), 1u);
  EXPECT_EQ(log.quarantined()[0].line, 2u);
  EXPECT_EQ(log.quarantined()[0].stage, "csv");
}

TEST(CsvStreamTest, MultilineQuotedField) {
  std::istringstream in("a,\"line1\nline2\",c\nd,e,f\n");
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "line1\nline2");
  EXPECT_EQ(rows[1][0], "d");
}

TEST(CsvStreamTest, SkipsBlankLinesAndCr) {
  std::istringstream in("a,b\r\n\r\nc,d\r\n");
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(CsvFormatTest, EscapingRoundTrip) {
  const CsvRow row{"plain", "with,comma", "with\"quote", "with\nnewline"};
  const std::string line = format_csv_row(row);
  std::istringstream in(line + "\n");
  const auto parsed = read_csv(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], row);
}

TEST_F(TempDir, CsvFileRoundTrip) {
  const std::vector<CsvRow> rows{{"h1", "h2"}, {"1", "a,b"}, {"2", ""}};
  write_csv_file(path("t.csv"), rows);
  EXPECT_EQ(read_csv_file(path("t.csv")), rows);
}

TEST(CsvFileTest, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/dir/file.csv"), IoError);
  EXPECT_THROW(write_csv_file("/nonexistent/dir/file.csv", {}), IoError);
}

TEST_F(TempDir, FileHelpersRoundTrip) {
  write_file(path("f.txt"), "hello\nworld\n");
  EXPECT_EQ(read_file(path("f.txt")), "hello\nworld\n");
  const auto lines = read_lines(path("f.txt"));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "hello");
}

TEST_F(TempDir, ReadLinesStripsCr) {
  write_file(path("crlf.txt"), "a\r\nb\r\n");
  const auto lines = read_lines(path("crlf.txt"));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a");
}

TEST(FileTest, MissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/file"), IoError);
  EXPECT_THROW(read_lines("/nonexistent/file"), IoError);
}

TEST(TableTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "2.5"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableTest, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  EXPECT_NO_THROW(table.add_row({"1"}));
  EXPECT_THROW(table.add_row({"1", "2", "3", "4"}), ValidationError);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::num(-0.5, 1), "-0.5");
  EXPECT_EQ(TablePrinter::num(3.0, 0), "3");
}

TEST(TableTest, HeadingFormat) {
  std::ostringstream out;
  print_heading(out, "Fig 1");
  EXPECT_EQ(out.str(), "\n== Fig 1 ==\n");
}

}  // namespace
}  // namespace cosmicdance::io
