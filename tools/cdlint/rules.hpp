// The CosmicDance project-invariant lint rules.
//
// Each rule guards an invariant established by an earlier PR and otherwise
// enforced only dynamically (differential tests, fuzzing, sanitizers):
//
//   nondeterminism  (R1) No wall-clock/rand/pointer-ordered containers in
//                        measurement code: outputs must be bit-identical at
//                        any --threads value (DESIGN.md §9).  Clock sources
//                        are permitted under src/obs/ and bench/.
//   unordered-iter  (R2) No range-for / .begin() traversal of
//                        std::unordered_map/set: hash-order iteration is a
//                        nondeterminism source.  Allow with
//                        `// cdlint: allow(unordered-iter) <reason>`.
//   raw-parse       (R3) No raw strtod/stoi/atof/... outside src/io/ and
//                        src/tle/: every parse must be checked and
//                        policy-routed (DESIGN.md §10); io/parse.hpp has
//                        the sanctioned helpers.
//   naked-throw     (R4) Inside a function that takes a diag::ParseLog*,
//                        `throw ParseError(...)` must sit in a try/catch
//                        (routed) — otherwise it bypasses ParsePolicy and
//                        strict/tolerant behave differently by accident.
//   counter-in-loop (R5) obs counter registry lookups (->counter(...),
//                        counter_or_null(...)) inside a loop body: hoist
//                        the Counter* handle out of the loop (DESIGN.md
//                        §11) so the enabled path costs one lookup, not N.
//   stdout-in-lib   (R6) No std::cout / printf in src/ libraries; only the
//                        CLI, tools and benches own stdout.
//   include-first   (R7) Every .cpp includes its own header first, so each
//                        header is proven self-contained by compilation.
//   no-endl         (R8) No std::endl in src/ libraries: it flushes the
//                        stream on every line, which turns buffered report
//                        and export writes into per-line syscalls; write
//                        '\n' instead.
//
// Cross-file rules (phase 2, judged over the merged project index — see
// index.hpp for why each bug class is invisible to a per-file rule):
//
//   shared-mutable-capture (R9)  A name captured by reference into an
//                        exec::parallel_for / ordered_map body and mutated
//                        without per-index addressing: every worker shares
//                        one object (the PR 8 resonance-memo race).
//                        Subscripted writes (out[i] = ...) and same-file
//                        std::atomic/mutex members are exempt.
//   lock-order-cycle     (R10) Two mutexes of one subsystem acquired in
//                        both nesting orders somewhere in the project —
//                        two threads interleaving those nestings deadlock.
//   blocking-under-lock  (R11) A blocking syscall/sleep issued while a
//                        mutex is held, in src/serve/ where reader latency
//                        is the product (the PR 7 listener-fd bug class).
//   thread-no-join       (R12) A spawned std::thread with no reachable
//                        join()/detach decision in its subsystem — its
//                        destructor std::terminate()s the process.
//   fp-accumulation-order (R13) std::reduce/transform_reduce, float
//                        accumulators, or fast-math pragmas in src/core/,
//                        src/stats/, src/sgp4/, src/io/ where grids (and
//                        snapshot bytes assembled by parallel section
//                        workers) must be bit-identical at any --threads
//                        value.
//   relaxed-order        (R14) std::memory_order_relaxed outside src/obs/:
//                        relaxed is reserved for the commuting counter
//                        idiom; state publication needs acq/rel.
//
// Plus the meta rule `allow-reason`: an allow() directive without a
// justification is a finding and suppresses nothing.
#pragma once

#include <string>
#include <vector>

#include "index.hpp"
#include "lexer.hpp"

namespace cdlint {

struct Finding {
  std::string file;   ///< repo-relative path
  std::size_t line = 0;
  std::string rule;   ///< slug, e.g. "nondeterminism"
  std::string message;
  std::string raw;    ///< whitespace-normalized source line (baseline key)
};

/// Order findings for stable, diffable output.
bool operator<(const Finding& a, const Finding& b);

/// Run every per-file rule over one scanned file.  `has_sibling_header`
/// tells the include-first rule whether `<stem>.hpp` exists next to a .cpp.
[[nodiscard]] std::vector<Finding> run_rules(const SourceFile& file,
                                             bool has_sibling_header);

/// Run the cross-file rules R9-R14 over the merged project index (phase 2).
/// Honours the reasoned allow() directives recorded in each FileIndex.
[[nodiscard]] std::vector<Finding> run_project_rules(const ProjectIndex& index);

/// Number of enforced rules, per-file + cross-file + meta (for bench rates).
[[nodiscard]] std::size_t rule_count();

}  // namespace cdlint
