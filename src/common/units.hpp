// Physical unit conversion constants shared across the libraries.
//
// Everything in CosmicDance uses kilometres, seconds, radians and hours as
// the canonical units unless a name explicitly says otherwise (e.g.
// mean_motion_revday).  These constants centralise the conversions.
#pragma once

#include <numbers>

namespace cosmicdance::units {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Degrees -> radians.
inline constexpr double kDegToRad = kPi / 180.0;
/// Radians -> degrees.
inline constexpr double kRadToDeg = 180.0 / kPi;

/// Minutes in a day (TLE mean motion is rev/day; SGP4 works in minutes).
inline constexpr double kMinutesPerDay = 1440.0;
inline constexpr double kSecondsPerDay = 86400.0;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kHoursPerDay = 24.0;
inline constexpr double kSecondsPerMinute = 60.0;

/// Convert degrees to radians.
[[nodiscard]] constexpr double deg2rad(double deg) noexcept { return deg * kDegToRad; }
/// Convert radians to degrees.
[[nodiscard]] constexpr double rad2deg(double rad) noexcept { return rad * kRadToDeg; }

/// Wrap an angle into [0, 2*pi).
[[nodiscard]] double wrap_two_pi(double rad) noexcept;
/// Wrap an angle into (-pi, pi].
[[nodiscard]] double wrap_pi(double rad) noexcept;

}  // namespace cosmicdance::units
