#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"
#include "serve/json.hpp"
#include "spaceweather/gscale.hpp"
#include "spaceweather/storms.hpp"
#include "stats/ecdf.hpp"

namespace cosmicdance::serve {
namespace {

/// Handler-local failure: the dispatcher turns it into an {"ok":false}
/// response (and one serve.errors bump) without tearing down the connection.
class RequestError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

std::string error_response(std::string_view message) {
  std::string out = "{\"ok\":false,\"error\":\"";
  out += escape_json(message);
  out += "\"}";
  return out;
}

/// Opens the standard ok-envelope.  Every data field is appended between
/// open and close; "epoch_end" last is the torn-response sentinel.
std::string open_ok(std::uint64_t epoch, std::string_view op) {
  std::string out = "{\"ok\":true,\"epoch\":";
  out += std::to_string(epoch);
  out += ",\"op\":\"";
  out += op;
  out += "\"";
  return out;
}

void close_ok(std::string& out, std::uint64_t epoch) {
  out += ",\"epoch_end\":";
  out += std::to_string(epoch);
  out += "}";
}

void append_number_array(std::string& out, std::string_view key,
                         const std::vector<double>& values) {
  out += ",\"";
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ",";
    out += json_number(values[i]);
  }
  out += "]";
}

double number_param_or(const JsonValue& request, std::string_view key,
                       double fallback) {
  const JsonValue* value = request.find(key);
  if (value == nullptr) return fallback;
  const auto parsed = value->number();
  if (!parsed) {
    throw RequestError(std::string(key) + " must be a number");
  }
  return *parsed;
}

long integer_param_or(const JsonValue& request, std::string_view key,
                      long fallback) {
  const JsonValue* value = request.find(key);
  if (value == nullptr) return fallback;
  const auto parsed = value->integer();
  if (!parsed) {
    throw RequestError(std::string(key) + " must be an integer");
  }
  return *parsed;
}

std::string handle_ping(const ServeSnapshot& snap) {
  std::string out = open_ok(snap.epoch, "ping");
  close_ok(out, snap.epoch);
  return out;
}

std::string handle_stats(const ServeSnapshot& snap) {
  const auto& pipeline = snap.pipeline;
  std::string out = open_ok(snap.epoch, "stats");
  out += ",\"satellites\":";
  out += std::to_string(pipeline.catalog().satellite_count());
  out += ",\"tles\":";
  out += std::to_string(pipeline.catalog().record_count());
  out += ",\"dst_hours\":";
  out += std::to_string(pipeline.dst().size());
  out += ",\"tracks\":";
  out += std::to_string(pipeline.tracks().size());
  close_ok(out, snap.epoch);
  return out;
}

std::string handle_sat_series(const ServeSnapshot& snap,
                              const JsonValue& request) {
  const auto tracks = snap.pipeline.tracks();
  const core::SatelliteTrack* track = nullptr;
  if (const JsonValue* sat = request.find("sat")) {
    const auto number = sat->integer();
    if (!number) throw RequestError("sat must be an integer");
    for (const auto& candidate : tracks) {
      if (candidate.catalog_number() == *number) {
        track = &candidate;
        break;
      }
    }
    if (track == nullptr) {
      throw RequestError("unknown satellite " + std::to_string(*number));
    }
  } else {
    for (const auto& candidate : tracks) {
      if (!candidate.empty()) {
        track = &candidate;
        break;
      }
    }
    if (track == nullptr) throw RequestError("no satellite tracks available");
  }
  if (track->empty()) {
    throw RequestError("satellite " + std::to_string(track->catalog_number()) +
                       " has no samples after cleaning");
  }

  // Optional thinning for plotting clients: an even stride over the track,
  // always keeping the last sample so the series ends where the data does.
  const long max_samples =
      integer_param_or(request, "max_samples",
                       static_cast<long>(track->size()));
  if (max_samples < 2) throw RequestError("max_samples must be at least 2");
  const std::size_t total = track->size();
  const auto limit = static_cast<std::size_t>(max_samples);
  const std::size_t stride = total <= limit ? 1 : (total + limit - 1) / limit;

  std::vector<double> epochs, altitudes, bstars;
  epochs.reserve(total / stride + 1);
  altitudes.reserve(total / stride + 1);
  bstars.reserve(total / stride + 1);
  for (std::size_t i = 0; i < total; i += stride) {
    const auto& sample = track->samples()[i];
    epochs.push_back(sample.epoch_jd);
    altitudes.push_back(sample.altitude_km);
    bstars.push_back(sample.bstar);
  }
  if (stride > 1 && (total - 1) % stride != 0) {
    const auto& last = track->samples().back();
    epochs.push_back(last.epoch_jd);
    altitudes.push_back(last.altitude_km);
    bstars.push_back(last.bstar);
  }

  std::string out = open_ok(snap.epoch, "sat_series");
  out += ",\"sat\":";
  out += std::to_string(track->catalog_number());
  out += ",\"samples\":";
  out += std::to_string(epochs.size());
  out += ",\"track_samples\":";
  out += std::to_string(total);
  out += ",\"median_altitude_km\":";
  out += json_number(track->median_altitude_km());
  append_number_array(out, "epoch_jd", epochs);
  append_number_array(out, "altitude_km", altitudes);
  append_number_array(out, "bstar", bstars);
  close_ok(out, snap.epoch);
  return out;
}

std::string handle_storm_summary(const ServeSnapshot& snap,
                                 const JsonValue& request) {
  const auto& pipeline = snap.pipeline;
  std::vector<spaceweather::StormEvent> storms;
  if (request.find("threshold") != nullptr) {
    spaceweather::StormDetectorConfig config =
        pipeline.config().storm_detector;
    config.threshold_nt = number_param_or(request, "threshold",
                                          config.threshold_nt);
    storms = spaceweather::StormDetector(config).detect(pipeline.dst());
  } else {
    storms = pipeline.storms();
  }

  std::string out = open_ok(snap.epoch, "storm_summary");
  out += ",\"count\":";
  out += std::to_string(storms.size());
  out += ",\"storms\":[";
  for (std::size_t i = 0; i < storms.size(); ++i) {
    const auto& storm = storms[i];
    if (i != 0) out += ",";
    out += "{\"start\":\"";
    out += escape_json(storm.start_datetime().to_string());
    out += "\",\"duration_hours\":";
    out += std::to_string(storm.duration_hours());
    out += ",\"peak_dst_nt\":";
    out += json_number(storm.peak_dst_nt);
    out += ",\"category\":\"";
    out += escape_json(spaceweather::to_string(storm.category));
    out += "\"}";
  }
  out += "]";
  close_ok(out, snap.epoch);
  return out;
}

std::string handle_envelope_cdf(const ServeSnapshot& snap,
                                const JsonValue& request) {
  const auto& pipeline = snap.pipeline;
  const double percentile = number_param_or(request, "percentile", 95.0);
  if (percentile < 0.0 || percentile > 100.0) {
    throw RequestError("percentile must be in [0, 100]");
  }
  const long points = integer_param_or(request, "points", 64);
  if (points < 2) throw RequestError("points must be at least 2");

  const double threshold_nt = pipeline.dst_threshold_at_percentile(percentile);
  const std::vector<double> changes =
      pipeline.altitude_changes_for_storms(threshold_nt);

  std::string out = open_ok(snap.epoch, "envelope_cdf");
  out += ",\"percentile\":";
  out += json_number(percentile);
  out += ",\"threshold_nt\":";
  out += json_number(threshold_nt);
  out += ",\"samples\":";
  out += std::to_string(changes.size());
  out += ",\"cdf\":[";
  if (!changes.empty()) {
    const stats::Ecdf ecdf(changes);
    const auto steps = ecdf.points(static_cast<std::size_t>(points));
    for (std::size_t i = 0; i < steps.size(); ++i) {
      if (i != 0) out += ",";
      out += "[";
      out += json_number(steps[i].first);
      out += ",";
      out += json_number(steps[i].second);
      out += "]";
    }
  }
  out += "]";
  close_ok(out, snap.epoch);
  return out;
}

/// As append_number_array, but NaN slots (failed propagations) become null.
void append_nullable_number_array(std::string& out, std::string_view key,
                                  const std::vector<double>& values) {
  out += ",\"";
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ",";
    out += std::isnan(values[i]) ? "null" : json_number(values[i]);
  }
  out += "]";
}

/// Shared window parsing + work bound for the propagate op family.  The
/// grids are computed per request, so the cell budget caps the work one
/// query can pin a connection thread on.
core::PropagationOptions propagation_window(const JsonValue& request,
                                            double start_jd,
                                            std::size_t row_count,
                                            std::size_t max_cells) {
  core::PropagationOptions options;
  options.start_jd = start_jd;
  options.end_jd = start_jd + number_param_or(request, "days", 30.0);
  options.step_hours = number_param_or(request, "step_hours", 24.0);
  if (options.end_jd <= options.start_jd) {
    throw RequestError("days must be positive");
  }
  if (!(options.step_hours > 0.0)) {
    throw RequestError("step_hours must be positive");
  }
  const double epochs =
      (options.end_jd - options.start_jd) * 24.0 / options.step_hours + 1.0;
  if (epochs * static_cast<double>(row_count) >
      static_cast<double>(max_cells)) {
    throw RequestError("requested grid exceeds " + std::to_string(max_cells) +
                       " propagation cells; reduce days or raise step_hours");
  }
  return options;
}

void append_propagation_counts(std::string& out,
                               const core::PropagationReport& report) {
  out += ",\"cells_ok\":";
  out += std::to_string(report.ok_cells);
  out += ",\"cells_decayed\":";
  out += std::to_string(report.decayed_cells);
  out += ",\"cells_error\":";
  out += std::to_string(report.error_cells);
}

std::string handle_propagate(const ServeSnapshot& snap,
                             const JsonValue& request) {
  const auto& catalog = snap.pipeline.catalog();
  if (catalog.empty()) throw RequestError("catalog is empty");

  long sat = integer_param_or(request, "sat", 0);
  if (sat == 0) sat = catalog.satellites().front();
  const auto history = catalog.history(static_cast<int>(sat));
  if (history.empty()) {
    throw RequestError("unknown satellite " + std::to_string(sat));
  }
  const tle::Tle latest = history.back();

  const core::PropagationOptions window =
      propagation_window(request, latest.epoch_jd, 1, 4096);
  const sgp4::BatchPropagator batch =
      sgp4::BatchPropagator::from_tles({&latest, 1});
  if (batch.empty()) {
    throw RequestError("satellite " + std::to_string(sat) +
                       " failed element recovery: " +
                       batch.init_failures().front().message);
  }
  const core::PropagationReport report = core::reduce_batch(
      batch, core::make_grid(window.start_jd, window.end_jd, window.step_hours),
      snap.pipeline.config().num_threads, nullptr);
  const core::PropagationSeries& series = report.series.front();

  std::string out = open_ok(snap.epoch, "propagate");
  out += ",\"sat\":";
  out += std::to_string(series.catalog_number);
  out += ",\"tle_epoch_jd\":";
  out += json_number(series.tle_epoch_jd);
  out += ",\"deep_space\":";
  out += series.deep_space ? "true" : "false";
  out += ",\"samples\":";
  out += std::to_string(report.epochs_jd.size());
  out += ",\"valid_samples\":";
  out += std::to_string(series.valid_samples);
  out += ",\"decay_rate_km_per_day\":";
  out += json_number(series.decay_rate_km_per_day);
  out += ",\"decayed\":";
  out += series.decayed ? "true" : "false";
  append_propagation_counts(out, report);
  append_number_array(out, "epoch_jd", report.epochs_jd);
  append_nullable_number_array(out, "altitude_km", series.altitude_km);
  close_ok(out, snap.epoch);
  return out;
}

std::string handle_decay_summary(const ServeSnapshot& snap,
                                 const JsonValue& request) {
  const auto& catalog = snap.pipeline.catalog();
  if (catalog.empty()) throw RequestError("catalog is empty");
  const long top = integer_param_or(request, "top", 10);
  if (top < 1 || top > 100) throw RequestError("top must be in [1, 100]");

  core::PropagationOptions options = propagation_window(
      request, catalog.last_epoch_jd(), catalog.satellite_count(), 262144);
  options.num_threads = snap.pipeline.config().num_threads;
  const core::PropagationReport report =
      core::propagate_catalog(catalog, options);

  // Rank by decay rate, most negative (fastest-falling) first.
  std::vector<const core::PropagationSeries*> ranked;
  ranked.reserve(report.series.size());
  for (const auto& series : report.series) {
    if (series.valid_samples >= 2) ranked.push_back(&series);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto* a, const auto* b) {
    if (a->decay_rate_km_per_day != b->decay_rate_km_per_day) {
      return a->decay_rate_km_per_day < b->decay_rate_km_per_day;
    }
    return a->catalog_number < b->catalog_number;
  });
  if (ranked.size() > static_cast<std::size_t>(top)) {
    ranked.resize(static_cast<std::size_t>(top));
  }

  std::string out = open_ok(snap.epoch, "decay_summary");
  out += ",\"satellites\":";
  out += std::to_string(report.series.size());
  out += ",\"samples\":";
  out += std::to_string(report.epochs_jd.size());
  out += ",\"init_failures\":";
  out += std::to_string(report.init_failures.size());
  append_propagation_counts(out, report);
  out += ",\"fastest_decaying\":[";
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const auto& series = *ranked[i];
    if (i != 0) out += ",";
    out += "{\"sat\":";
    out += std::to_string(series.catalog_number);
    out += ",\"decay_rate_km_per_day\":";
    out += json_number(series.decay_rate_km_per_day);
    out += ",\"first_altitude_km\":";
    out += json_number(series.first_altitude_km);
    out += ",\"last_altitude_km\":";
    out += json_number(series.last_altitude_km);
    out += ",\"decayed\":";
    out += series.decayed ? "true" : "false";
    out += "}";
  }
  out += "]";
  close_ok(out, snap.epoch);
  return out;
}

std::string handle_quality_report(const ServeSnapshot& snap) {
  std::string out = open_ok(snap.epoch, "quality_report");
  out += ",\"report\":";
  out += snap.pipeline.quality_report().to_json();
  close_ok(out, snap.epoch);
  return out;
}

}  // namespace

Service::Service(core::CosmicDance initial, Rebuild rebuild,
                 obs::Metrics* metrics)
    : rebuild_(std::move(rebuild)), metrics_(metrics) {
  slot_.store(std::make_shared<const ServeSnapshot>(1, std::move(initial)));
  requests_ = obs::counter_or_null(metrics_, "serve.requests");
  errors_ = obs::counter_or_null(metrics_, "serve.errors");
  reloads_ = obs::counter_or_null(metrics_, "serve.reloads");
}

std::shared_ptr<const ServeSnapshot> Service::snapshot() const {
  return slot_.load();
}

std::uint64_t Service::reload() {
  if (!rebuild_) return 0;
  const std::lock_guard<std::mutex> lock(reload_mutex_);
  core::CosmicDance fresh = rebuild_();  // may throw; old snapshot survives
  const std::uint64_t next_epoch = slot_.load()->epoch + 1;
  slot_.store(std::make_shared<const ServeSnapshot>(next_epoch,
                                                    std::move(fresh)));
  obs::bump(reloads_);
  return next_epoch;
}

HandleResult Service::handle(std::string_view request) {
  obs::bump(requests_);

  const auto parsed = parse_json(request);
  if (!parsed || parsed->kind != JsonValue::Kind::kObject) {
    obs::bump(errors_);
    return {error_response("request must be a JSON object"), false};
  }
  const JsonValue* op_value = parsed->find("op");
  if (op_value == nullptr || op_value->kind != JsonValue::Kind::kString) {
    obs::bump(errors_);
    return {error_response("request is missing a string \"op\" field"), false};
  }
  const std::string& op = op_value->text;

  try {
    if (op == "shutdown") {
      // No data in the response, so no epoch pair needed.
      return {"{\"ok\":true,\"op\":\"shutdown\"}", true};
    }
    if (op == "reload") {
      const std::uint64_t next_epoch = reload();
      if (next_epoch == 0) throw RequestError("reload is not configured");
      std::string out = open_ok(next_epoch, "reload");
      close_ok(out, next_epoch);
      return {std::move(out), false};
    }
    if (op == "metrics") {
      // Counters accumulate across snapshots, so the metrics view is not
      // tied to an epoch; embed the registry dump as-is.
      std::string out = "{\"ok\":true,\"op\":\"metrics\",\"metrics\":";
      out += metrics_ != nullptr ? metrics_->snapshot().to_json() : "null";
      out += "}";
      return {std::move(out), false};
    }

    // Data ops: load the snapshot pointer exactly once and build the whole
    // response from it, so a concurrent reload can never mix epochs.
    const std::shared_ptr<const ServeSnapshot> snap = snapshot();
    if (op == "ping") return {handle_ping(*snap), false};
    if (op == "stats") return {handle_stats(*snap), false};
    if (op == "sat_series") return {handle_sat_series(*snap, *parsed), false};
    if (op == "storm_summary") {
      return {handle_storm_summary(*snap, *parsed), false};
    }
    if (op == "envelope_cdf") {
      return {handle_envelope_cdf(*snap, *parsed), false};
    }
    if (op == "propagate") return {handle_propagate(*snap, *parsed), false};
    if (op == "decay_summary") {
      return {handle_decay_summary(*snap, *parsed), false};
    }
    if (op == "quality_report") return {handle_quality_report(*snap), false};
    throw RequestError("unknown op \"" + op + "\"");
  } catch (const std::exception& error) {
    obs::bump(errors_);
    return {error_response(error.what()), false};
  }
}

}  // namespace cosmicdance::serve
