# Empty compiler generated dependencies file for cd_common.
# This may be replaced when dependencies are built.
