# Empty compiler generated dependencies file for ext_kessler.
# This may be replaced when dependencies are built.
