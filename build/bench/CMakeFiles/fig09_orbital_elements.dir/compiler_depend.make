# Empty compiler generated dependencies file for fig09_orbital_elements.
# This may be replaced when dependencies are built.
