// cdlint corpus: seeded violation for rule `include-first` (R7): the own
// header must come first, before <vector>.
#include <vector>

#include "include_order.hpp"

int ordered_value() { return static_cast<int>(std::vector<int>{1}.size()); }
