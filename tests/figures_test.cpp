// Figure-level regression tests: the headline claims recorded in
// EXPERIMENTS.md, asserted automatically so the reproduction cannot drift
// silently.  One shared bench-scale dataset (expensive) backs all of them.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"
#include "spaceweather/storms.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"

namespace cosmicdance {
namespace {

using core::CosmicDance;
using core::EnvelopeSelection;
using timeutil::make_datetime;

class Figures : public ::testing::Test {
 protected:
  struct State {
    spaceweather::DstIndex dst;
    CosmicDance pipeline;
  };
  static State& state() {
    static State* s = [] {
      spaceweather::DstIndex dst =
          spaceweather::DstGenerator(
              spaceweather::DstGenerator::paper_window_2020_2024())
              .generate();
      auto config = simulation::scenario::paper_window(&dst, 6, 14.0);
      auto result = simulation::ConstellationSimulator(config).run();
      return new State{dst, CosmicDance(dst, std::move(result.catalog))};
    }();
    return *s;
  }
};

// ---- Fig 1 / §4 -------------------------------------------------------------

TEST_F(Figures, Fig1NinetyNinthPercentile) {
  EXPECT_NEAR(state().pipeline.dst_threshold_at_percentile(99.0), -63.0, 8.0);
}

TEST_F(Figures, Fig1CategoryHours) {
  const auto hours = spaceweather::StormDetector::category_hours(state().dst);
  EXPECT_NEAR(static_cast<double>(hours.at(spaceweather::StormCategory::kMinor)),
              720.0, 220.0);
  EXPECT_NEAR(
      static_cast<double>(hours.at(spaceweather::StormCategory::kModerate)),
      74.0, 40.0);
  EXPECT_EQ(hours.at(spaceweather::StormCategory::kSevere), 3);
}

// ---- Fig 4(a): the post-storm envelope --------------------------------------

TEST_F(Figures, Fig4aMedianPeaksMidWindow) {
  const double event_jd = timeutil::to_julian(make_datetime(2023, 9, 18, 18));
  const auto envelope = state().pipeline.post_event_envelope(
      event_jd, 30, EnvelopeSelection::kAffectedHumped);
  ASSERT_GE(envelope.satellites.size(), 5u);

  // Paper: median rises to ~5 km within 10-15 days.
  double peak_median = 0.0;
  for (int d = 8; d <= 16; ++d) {
    const double m = envelope.median_km[static_cast<std::size_t>(d)];
    if (std::isfinite(m)) peak_median = std::max(peak_median, m);
  }
  EXPECT_GT(peak_median, 2.5);
  EXPECT_LT(peak_median, 12.0);

  // Paper: the 95th-ptile stays ~10 km toward the end of the month.
  double late_p95 = 0.0;
  for (int d = 20; d < 30; ++d) {
    const double p = envelope.p95_km[static_cast<std::size_t>(d)];
    if (std::isfinite(p)) late_p95 = std::max(late_p95, p);
  }
  EXPECT_GT(late_p95, 6.0);
  EXPECT_LT(late_p95, 30.0);
}

TEST_F(Figures, Fig4bQuietEnvelopeFlat) {
  auto& pipeline = state().pipeline;
  const double p80 = pipeline.dst_threshold_at_percentile(80.0);
  const auto quiet = pipeline.correlator().quiet_epochs(p80, 40);
  ASSERT_FALSE(quiet.empty());
  const auto envelope = pipeline.post_event_envelope(
      quiet[quiet.size() / 2], 15, EnvelopeSelection::kAll);
  ASSERT_GT(envelope.satellites.size(), 20u);
  for (int d = 0; d < envelope.days; ++d) {
    const double m = envelope.median_km[static_cast<std::size_t>(d)];
    if (std::isfinite(m)) {
      EXPECT_LT(m, 2.0) << d;
    }
  }
}

// ---- Fig 5 -------------------------------------------------------------------

TEST_F(Figures, Fig5QuietBelowTenKm) {
  auto& pipeline = state().pipeline;
  const auto quiet = pipeline.altitude_changes_for_quiet(
      pipeline.dst_threshold_at_percentile(80.0), 25);
  ASSERT_GT(quiet.size(), 100u);
  EXPECT_LT(stats::percentile(quiet, 99.0), 10.0);
}

TEST_F(Figures, Fig5StormTailTensOfKm) {
  auto& pipeline = state().pipeline;
  const auto storm = pipeline.altitude_changes_for_storms(
      pipeline.dst_threshold_at_percentile(95.0));
  ASSERT_GT(storm.size(), 1000u);
  // Tens-of-km tail exists but is a small fraction (paper: at most ~1%).
  const stats::Ecdf ecdf(storm);
  EXPECT_GT(stats::max(storm), 40.0);
  EXPECT_LT(1.0 - ecdf(20.0), 0.05);
  EXPECT_GT(1.0 - ecdf(10.0), 0.001);
}

TEST_F(Figures, Fig5DragRatioAboveOne) {
  auto& pipeline = state().pipeline;
  const auto drags = pipeline.drag_changes_for_storms(
      pipeline.dst_threshold_at_percentile(95.0));
  ASSERT_GT(drags.size(), 500u);
  EXPECT_GT(stats::median(drags), 1.2);
}

// ---- Fig 6 -------------------------------------------------------------------

TEST_F(Figures, Fig6LongerStormsHeavierTail) {
  auto& pipeline = state().pipeline;
  const double p99 = pipeline.dst_threshold_at_percentile(99.0);
  const auto [short_epochs, long_epochs] =
      pipeline.correlator().storm_epochs_by_duration(p99, 9.0);
  ASSERT_GT(short_epochs.size(), 2u);
  ASSERT_GT(long_epochs.size(), 2u);
  const auto short_changes = pipeline.correlator().altitude_change_samples(
      pipeline.tracks(), short_epochs);
  const auto long_changes = pipeline.correlator().altitude_change_samples(
      pipeline.tracks(), long_epochs);
  EXPECT_GE(stats::percentile(long_changes, 99.0),
            0.8 * stats::percentile(short_changes, 99.0));
}

// ---- Fig 10 ------------------------------------------------------------------

TEST_F(Figures, Fig10CleaningShape) {
  auto& pipeline = state().pipeline;
  const auto raw = core::all_altitudes(pipeline.raw_tracks());
  const auto cleaned = core::all_altitudes(pipeline.tracks());
  EXPECT_GT(stats::max(raw), 5000.0);
  EXPECT_LE(stats::max(cleaned), 650.0);
  EXPECT_NEAR(stats::median(cleaned), 550.0, 6.0);
  const stats::Ecdf ecdf(cleaned);
  const double deorbit_tail = ecdf(500.0);
  EXPECT_GT(deorbit_tail, 0.0005);
  EXPECT_LT(deorbit_tail, 0.1);
}

}  // namespace
}  // namespace cosmicdance
