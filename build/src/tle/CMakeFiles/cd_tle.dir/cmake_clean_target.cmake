file(REMOVE_RECURSE
  "libcd_tle.a"
)
