#include "timeutil/sidereal.hpp"

#include <cmath>

#include "common/units.hpp"

namespace cosmicdance::timeutil {

double gmst_radians(double jd_ut1) noexcept {
  const double tut1 = (jd_ut1 - 2451545.0) / 36525.0;
  double gmst_sec =
      -6.2e-6 * tut1 * tut1 * tut1 + 0.093104 * tut1 * tut1 +
      (876600.0 * 3600.0 + 8640184.812866) * tut1 + 67310.54841;
  // Seconds of time -> radians (360 deg per 86400 sec).
  double gmst = std::fmod(gmst_sec * units::kDegToRad / 240.0, units::kTwoPi);
  if (gmst < 0.0) gmst += units::kTwoPi;
  return gmst;
}

}  // namespace cosmicdance::timeutil
