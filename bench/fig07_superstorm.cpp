// Fig 7: effect of the May 10-11 2024 super-storm (peak ~ -412 nT).
// Panels: daily minimum Dst, fleet B* statistics (mean/median/p95) and the
// number of tracked satellites.
//
// Paper/Starlink: drag increased up to ~5x, the tracked-satellite count
// stayed flat (no losses), and no drastic altitude change was indicated.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "io/table.hpp"

using namespace cosmicdance;

int main(int argc, char** argv) {
  const spaceweather::DstIndex dst = bench::superstorm_dst();
  auto config = simulation::scenario::may_2024(&dst, /*fleet_size=*/1200);
  auto run = simulation::ConstellationSimulator(config).run();
  const int launched = run.launched;
  const int lost = run.launched - run.tracked_at_end;
  const auto pipeline_config = bench::config_from_args(argc, argv);
  const core::CosmicDance pipeline(dst, std::move(run.catalog), pipeline_config);

  const double start = timeutil::to_julian(timeutil::make_datetime(2024, 5, 1));
  const double end = timeutil::to_julian(timeutil::make_datetime(2024, 6, 1));
  const auto rows = core::superstorm_panel(pipeline.tracks(), dst, start, end,
                                           pipeline_config.num_threads);

  io::print_heading(std::cout, "Fig 7: May 2024 super-storm daily panel");
  io::TablePrinter table({"date", "min_dst_nT", "bstar_mean", "bstar_median",
                          "bstar_p95", "tracked"});
  double quiet_median = 0.0;
  double quiet_p95 = 0.0;
  double peak_median = 0.0;
  double peak_p95 = 0.0;
  long min_tracked = 1L << 40;
  long max_tracked = 0;
  for (const auto& row : rows) {
    const auto dt = timeutil::from_julian(row.day_jd + 0.5);
    table.add_row({dt.to_string().substr(0, 10),
                   io::TablePrinter::num(row.dst_min_nt, 0),
                   io::TablePrinter::num(row.bstar_mean * 1e4, 2) + "e-4",
                   io::TablePrinter::num(row.bstar_median * 1e4, 2) + "e-4",
                   io::TablePrinter::num(row.bstar_p95 * 1e4, 2) + "e-4",
                   std::to_string(row.tracked_satellites)});
    if (dt.day <= 8) {
      quiet_median = std::max(quiet_median, row.bstar_median);
      quiet_p95 = std::max(quiet_p95, row.bstar_p95);
    }
    peak_median = std::max(peak_median, row.bstar_median);
    peak_p95 = std::max(peak_p95, row.bstar_p95);
    min_tracked = std::min(min_tracked, row.tracked_satellites);
    max_tracked = std::max(max_tracked, row.tracked_satellites);
  }
  table.print(std::cout);

  io::print_heading(std::cout, "Headline comparison");
  bench::expect("storm peak (nT)", "-412", dst.minimum(), 0);
  bench::expect("drag amplification (daily-median B*)", "up to ~5x",
                peak_median / quiet_median);
  bench::expect("drag amplification (p95 B*, storm-hour fits)", "up to ~5x",
                peak_p95 / quiet_p95);
  bench::expect("satellites lost", "0 (per Starlink)", lost, 0);
  std::printf("  tracked-count band over the window: %ld .. %ld of %d\n",
              min_tracked, max_tracked, launched);
  bench::note("shape check: drag spikes ~5x around May 10-11 then relaxes;");
  bench::note("the tracked count stays flat (proactive ops response).");
  return 0;
}
