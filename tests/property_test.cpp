// Cross-cutting property tests: randomized round trips and physical
// invariants that hold across whole input families, complementing the
// example-based suites.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "orbit/elements.hpp"
#include "orbit/state.hpp"
#include "sgp4/sgp4.hpp"
#include "spaceweather/burton.hpp"
#include "spaceweather/storms.hpp"
#include "spaceweather/wdc.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "timeutil/datetime.hpp"
#include "tle/catalog.hpp"

namespace cosmicdance {
namespace {

// ---------------------- randomized TLE text round trips ---------------------

tle::Tle random_tle(Rng& rng) {
  tle::Tle t;
  t.catalog_number = static_cast<int>(rng.uniform_int(1, 99999));
  t.classification = 'U';
  t.international_designator = "20001A";
  t.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2020, 1, 1)) +
               rng.uniform(0.0, 1500.0);
  t.inclination_deg = rng.uniform(0.0, 180.0);
  t.raan_deg = rng.uniform(0.0, 360.0);
  t.eccentricity = rng.uniform(0.0, 0.3);
  t.arg_perigee_deg = rng.uniform(0.0, 360.0);
  t.mean_anomaly_deg = rng.uniform(0.0, 360.0);
  t.mean_motion_revday = rng.uniform(1.0, 16.5);
  t.bstar = rng.uniform(-1e-3, 5e-3);
  t.mean_motion_dot = rng.uniform(-1e-4, 1e-4);
  t.mean_motion_ddot = rng.uniform(0.0, 1e-10);
  t.element_set_number = static_cast<int>(rng.uniform_int(0, 9999));
  t.rev_number = static_cast<int>(rng.uniform_int(0, 99999));
  return t;
}

class TleRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TleRoundTripProperty, FormatParseIsLossless) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const tle::Tle original = random_tle(rng);
    const tle::TleLines lines = tle::format_tle(original);
    ASSERT_EQ(lines.line1.size(), 69u);
    ASSERT_EQ(lines.line2.size(), 69u);
    const tle::Tle back = tle::parse_tle(lines.line1, lines.line2);
    EXPECT_EQ(back.catalog_number, original.catalog_number);
    EXPECT_NEAR(back.epoch_jd, original.epoch_jd, 1e-7);
    EXPECT_NEAR(back.inclination_deg, original.inclination_deg, 1e-4);
    EXPECT_NEAR(back.raan_deg, original.raan_deg, 1e-4);
    EXPECT_NEAR(back.eccentricity, original.eccentricity, 1e-7);
    EXPECT_NEAR(back.arg_perigee_deg, original.arg_perigee_deg, 1e-4);
    EXPECT_NEAR(back.mean_anomaly_deg, original.mean_anomaly_deg, 1e-4);
    EXPECT_NEAR(back.mean_motion_revday, original.mean_motion_revday, 1e-8);
    if (original.bstar != 0.0) {
      EXPECT_NEAR(back.bstar / original.bstar, 1.0, 1e-4);
    }
    // Second trip is bit-exact (format is a fixed point after one trip).
    const tle::TleLines again = tle::format_tle(back);
    EXPECT_EQ(again.line1, lines.line1);
    EXPECT_EQ(again.line2, lines.line2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TleRoundTripProperty,
                         ::testing::Values(101u, 202u, 303u));

// --------------------------- WDC format properties --------------------------

class WdcRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WdcRoundTripProperty, ArbitrarySeriesSurvive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int start_hour_of_day = static_cast<int>(rng.uniform_int(0, 23));
    const auto length = static_cast<std::size_t>(rng.uniform_int(1, 2000));
    std::vector<double> values;
    values.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      values.push_back(std::floor(rng.uniform(-800.0, 60.0)));
    }
    const spaceweather::DstIndex original(
        timeutil::make_datetime(2022, static_cast<int>(rng.uniform_int(1, 12)),
                                static_cast<int>(rng.uniform_int(1, 28)),
                                start_hour_of_day),
        std::move(values));
    const spaceweather::DstIndex back =
        spaceweather::from_wdc(spaceweather::to_wdc(original));
    ASSERT_EQ(back.size(), original.size());
    ASSERT_EQ(back.start_hour(), original.start_hour());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_NEAR(back.values()[i], original.values()[i], 0.51);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WdcRoundTripProperty,
                         ::testing::Values(11u, 22u, 33u));

// ------------------------ storm detection invariants ------------------------

TEST(StormInvariantTest, EventHoursEqualThresholdHours) {
  Rng rng(77);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.uniform(-120.0, 10.0));
  const spaceweather::DstIndex dst(timeutil::make_datetime(2021, 1, 1),
                                   std::move(values));
  const spaceweather::StormDetector detector;  // no merging, min 1 hour
  long event_hours = 0;
  for (const auto& event : detector.detect(dst)) {
    event_hours += event.duration_hours();
    // Events never overlap and every hour inside is at/below threshold...
    EXPECT_LE(event.peak_dst_nt, -50.0);
    EXPECT_GE(event.peak_hour, event.start_hour);
    EXPECT_LT(event.peak_hour, event.end_hour);
  }
  long threshold_hours = 0;
  for (const double v : dst.values()) {
    if (v <= -50.0) ++threshold_hours;
  }
  EXPECT_EQ(event_hours, threshold_hours);
}

TEST(StormInvariantTest, EventsAreDisjointAndOrdered) {
  Rng rng(78);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.uniform(-120.0, 10.0));
  const spaceweather::DstIndex dst(timeutil::make_datetime(2021, 1, 1),
                                   std::move(values));
  const auto events = spaceweather::StormDetector().detect(dst);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_hour, events[i - 1].end_hour);
  }
}

// ----------------------------- Burton properties ----------------------------

TEST(BurtonPropertyTest, LinearInDriver) {
  // The ODE is linear: doubling Q doubles the response.
  Rng rng(5);
  std::vector<double> q(100);
  for (auto& v : q) v = rng.uniform(-50.0, 0.0);
  std::vector<double> q2 = q;
  for (auto& v : q2) v *= 2.0;
  const auto r1 = spaceweather::integrate_burton(q, 8.0);
  const auto r2 = spaceweather::integrate_burton(q2, 8.0);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_NEAR(r2[i], 2.0 * r1[i], 1e-9);
  }
}

TEST(BurtonPropertyTest, ResponseBoundedByEquilibrium) {
  // With constant driver Q the response never overshoots Q*tau.
  const std::vector<double> q(200, -30.0);
  const double tau = 12.0;
  for (const double value : spaceweather::integrate_burton(q, tau)) {
    EXPECT_GE(value, -30.0 * tau - 1e-9);
    EXPECT_LE(value, 0.0);
  }
}

TEST(BurtonPropertyTest, LongerTauDeeperAndSlower) {
  const auto profile = spaceweather::storm_injection_profile(-200.0, 4.0, 8.0, 60);
  const auto fast = spaceweather::integrate_burton(profile, 8.0);
  const auto slow = spaceweather::integrate_burton(profile, 20.0);
  // Same peak target (profile built for tau=8) but the tau=20 run recovers
  // more slowly: larger magnitude at the end of the window.
  EXPECT_LT(slow.back(), fast.back());
}

// ------------------------ SGP4 vs two-body consistency ----------------------

class Sgp4TwoBodyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Sgp4TwoBodyProperty, PeriodMatchesMeanMotion) {
  // Time between successive ascending-node crossings ~ the nodal period,
  // which must sit within ~1% of the Keplerian period for near-circular LEO.
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    tle::Tle t;
    t.catalog_number = 45000;
    t.international_designator = "20001A";
    t.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1));
    t.inclination_deg = rng.uniform(30.0, 98.0);
    t.raan_deg = rng.uniform(0.0, 360.0);
    t.eccentricity = rng.uniform(1e-4, 2e-3);
    t.arg_perigee_deg = rng.uniform(0.0, 360.0);
    t.mean_anomaly_deg = rng.uniform(0.0, 360.0);
    t.mean_motion_revday = rng.uniform(12.0, 15.8);
    t.bstar = 0.0;
    const sgp4::Sgp4Propagator propagator(t);
    const double period = orbit::period_minutes(t.mean_motion_revday);

    // z crosses upward twice per revolution-pair; find two crossings.
    auto z_at = [&](double minutes) {
      return propagator.propagate_minutes(minutes).position_km[2];
    };
    auto find_upcross = [&](double from) {
      double previous = z_at(from);
      for (double m = from + 0.5; m < from + 2.5 * period; m += 0.5) {
        const double current = z_at(m);
        if (previous < 0.0 && current >= 0.0) {
          // refine by bisection
          double lo = m - 0.5;
          double hi = m;
          for (int i = 0; i < 30; ++i) {
            const double mid = (lo + hi) / 2.0;
            (z_at(mid) >= 0.0 ? hi : lo) = mid;
          }
          return (lo + hi) / 2.0;
        }
        previous = current;
      }
      return -1.0;
    };
    const double first = find_upcross(0.0);
    ASSERT_GT(first, -0.5);
    const double second = find_upcross(first + period * 0.5);
    ASSERT_GT(second, first);
    EXPECT_NEAR((second - first) / period, 1.0, 0.01)
        << "i=" << t.inclination_deg << " n=" << t.mean_motion_revday;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sgp4TwoBodyProperty, ::testing::Values(1u, 9u));

TEST(Sgp4EnergyProperty, VisVivaHolds) {
  // Without drag, v^2 must satisfy the vis-viva relation for the orbit's
  // (slowly J2-varying) semi-major axis to within a fraction of a percent.
  tle::Tle t;
  t.catalog_number = 45000;
  t.international_designator = "20001A";
  t.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1));
  t.inclination_deg = 53.0;
  t.eccentricity = 0.001;
  t.mean_motion_revday = 15.06;
  t.bstar = 0.0;
  const sgp4::Sgp4Propagator propagator(t);
  const orbit::GravityModel g = orbit::wgs72();
  const double a = orbit::sma_from_mean_motion_revday(15.06);
  for (double m = 0.0; m < 500.0; m += 13.0) {
    const auto sv = propagator.propagate_minutes(m);
    const double r = orbit::norm(sv.position_km);
    const double v2 = orbit::dot(sv.velocity_kms, sv.velocity_kms);
    const double vis_viva = g.mu * (2.0 / r - 1.0 / a);
    EXPECT_NEAR(v2 / vis_viva, 1.0, 0.005) << m;
  }
}

// -------------------------- catalog merge properties ------------------------

TEST(CatalogPropertyTest, MergeIsIdempotentAndOrderIndependent) {
  Rng rng(404);
  std::vector<tle::Tle> records;
  for (int i = 0; i < 100; ++i) {
    tle::Tle t = random_tle(rng);
    t.catalog_number = 100 + i % 7;  // several satellites
    records.push_back(t);
  }
  tle::TleCatalog forward;
  for (const auto& r : records) forward.add(r);
  tle::TleCatalog reverse;
  for (auto it = records.rbegin(); it != records.rend(); ++it) reverse.add(*it);
  EXPECT_EQ(forward.record_count(), reverse.record_count());
  EXPECT_EQ(forward.to_text(), reverse.to_text());
  // Re-adding everything changes nothing.
  tle::TleCatalog again = forward;
  for (const auto& r : records) again.add(r);
  EXPECT_EQ(again.record_count(), forward.record_count());
}

// ------------------------------ ECDF properties -----------------------------

class EcdfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EcdfProperty, QuantileAndCdfAreConsistent) {
  Rng rng(GetParam());
  std::vector<double> sample;
  for (int i = 0; i < 300; ++i) sample.push_back(rng.lognormal(0.0, 1.0));
  const stats::Ecdf ecdf(sample);
  for (double q = 0.05; q <= 0.95; q += 0.05) {
    const double x = ecdf.quantile(q);
    // F(quantile(q)) >= q (right-continuity) and not much larger.
    EXPECT_GE(ecdf(x) + 1e-12, q);
    EXPECT_LE(ecdf(x), q + 2.0 / 300.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfProperty, ::testing::Values(3u, 4u, 5u));

// ---------------------------- angle-wrap properties -------------------------

TEST(UnitsPropertyTest, WrapsAreIdempotentAndInRange) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double angle = rng.uniform(-100.0, 100.0);
    const double two_pi = units::wrap_two_pi(angle);
    EXPECT_GE(two_pi, 0.0);
    EXPECT_LT(two_pi, units::kTwoPi);
    EXPECT_NEAR(units::wrap_two_pi(two_pi), two_pi, 1e-12);
    const double pi = units::wrap_pi(angle);
    EXPECT_GT(pi, -units::kPi - 1e-12);
    EXPECT_LE(pi, units::kPi + 1e-12);
    // Both wraps preserve the angle modulo 2*pi.
    EXPECT_NEAR(std::remainder(two_pi - angle, units::kTwoPi), 0.0, 1e-9);
    EXPECT_NEAR(std::remainder(pi - angle, units::kTwoPi), 0.0, 1e-9);
  }
}

// ----------------------- calendar <-> Julian round trip ----------------------

TEST(JulianPropertyTest, HourlyGridRoundTrips1900To2100) {
  // Walk two centuries hour by hour (~1.76M samples) purely through the
  // Julian representation; every sample must come back to the same calendar
  // instant.  The grid crosses every month boundary, every year boundary and
  // the century leap-year exceptions (1900 is not a leap year, 2000 is).
  const double start_jd = timeutil::to_julian(timeutil::make_datetime(1900, 1, 1));
  const double end_jd = timeutil::to_julian(timeutil::make_datetime(2100, 1, 1));
  const long hours = std::lround((end_jd - start_jd) * 24.0);
  ASSERT_EQ(hours, 1753176);  // 200 years incl. 49 leap days, in hours

  timeutil::DateTime expected = timeutil::make_datetime(1900, 1, 1);
  long mismatches = 0;
  for (long h = 0; h <= hours; ++h) {
    const double jd = start_jd + static_cast<double>(h) / 24.0;
    const timeutil::DateTime round = timeutil::from_julian(timeutil::to_julian(expected));
    const timeutil::DateTime from_grid = timeutil::from_julian(jd);
    // Both the exact-value round trip and the grid arithmetic must land on
    // the same calendar hour (seconds may carry sub-microsecond noise).
    if (round.year != expected.year || round.month != expected.month ||
        round.day != expected.day || round.hour != expected.hour ||
        round.minute != expected.minute ||
        std::fabs(round.second - expected.second) > 1e-4 ||
        from_grid.year != expected.year || from_grid.month != expected.month ||
        from_grid.day != expected.day || from_grid.hour != expected.hour) {
      if (++mismatches <= 5) {
        ADD_FAILURE() << "hour " << h << ": expected "
                      << expected.to_string() << " got " << round.to_string()
                      << " / " << from_grid.to_string();
      }
    }
    expected = timeutil::add_hours(expected, 1.0);
  }
  EXPECT_EQ(mismatches, 0);

  // Spot-check the leap boundaries the paper's epochs straddle.
  for (const auto& [y, m, d] : {std::tuple{1900, 2, 28}, {1900, 3, 1},
                                {2000, 2, 29}, {2024, 2, 29}, {2099, 12, 31}}) {
    const timeutil::DateTime dt = timeutil::make_datetime(y, m, d, 23, 0);
    const timeutil::DateTime back = timeutil::from_julian(timeutil::to_julian(dt));
    EXPECT_EQ(back.year, y);
    EXPECT_EQ(back.month, m);
    EXPECT_EQ(back.day, d);
    EXPECT_EQ(back.hour, 23);
  }
  EXPECT_THROW(static_cast<void>(timeutil::make_datetime(1900, 2, 29)), ValidationError);
}

}  // namespace
}  // namespace cosmicdance
