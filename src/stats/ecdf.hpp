// Empirical CDF — the figure type the paper uses for Figs 1, 5, 6 and 10.
#pragma once

#include <span>
#include <vector>

namespace cosmicdance::stats {

/// Empirical cumulative distribution function over a fixed sample.
///
/// Built once from the sample (sorted copy); evaluation and quantiles are
/// then O(log n).  Invariant: the stored sample is sorted and non-empty.
class Ecdf {
 public:
  /// Throws ValidationError when the sample is empty.
  explicit Ecdf(std::span<const double> sample);

  /// Fraction of samples <= x, in [0, 1].
  [[nodiscard]] double operator()(double x) const noexcept;

  /// Value below which fraction q of the mass lies (q in [0,1]); clamps to
  /// the sample range.  Throws ValidationError for q outside [0,1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] double min() const noexcept { return sorted_.front(); }
  [[nodiscard]] double max() const noexcept { return sorted_.back(); }

  /// (x, F(x)) step points, thinned to at most `max_points` for printing.
  [[nodiscard]] std::vector<std::pair<double, double>> points(
      std::size_t max_points = 200) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace cosmicdance::stats
