// Differential suite for append-aware incremental ingestion (DESIGN.md §14).
//
// The delta-snapshot contract extends the PR 5 cache contract from
// "bit-identical or rebuilt" to "bit-identical, incrementally extended, or
// rebuilt": when the inputs grow by appended records over an unchanged
// prefix, a warm run must parse only the tails (counters `ingest.delta_hit`
// and `ingest.tail_bytes`), persist the new artefacts as a chain-hashed
// delta layer (compacted back into a single base when the chain grows
// long), and still produce output bit-identical to a from-scratch rebuild —
// same Dst values, catalog text, quarantine counters and first-error order
// — at any thread count under either parse policy.  Every way the fast
// path could be fooled is driven here: stale bases, shrunk inputs, prefix
// edits masquerading as appends, out-of-order / missing / spliced /
// cross-policy delta layers, unterminated prefixes, dangling pairing
// state at the boundary, and a randomized append/edit/compact fuzz loop.
// Torn *trailing* layers are the one recoverable shape (a crashed append
// leaves a pure prefix of valid bytes): they truncate to the valid prefix
// (`snapshot.delta_truncated`) instead of rejecting, and the next run
// rewrites a clean base — byte-surgery coverage below.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "diag/diag.hpp"
#include "io/file.hpp"
#include "io/snapshot.hpp"
#include "obs/obs.hpp"
#include "spaceweather/dst_index.hpp"
#include "spaceweather/wdc.hpp"
#include "timeutil/datetime.hpp"
#include "tle/catalog.hpp"
#include "tle/tle.hpp"

namespace cosmicdance {
namespace {

using diag::ParsePolicy;

// ---- corpus builders --------------------------------------------------------

tle::Tle make_tle(int catalog_number, double epoch_offset_days) {
  tle::Tle record;
  record.catalog_number = catalog_number;
  record.international_designator = "20001A";
  record.epoch_jd =
      timeutil::to_julian(timeutil::make_datetime(2024, 5, 1)) + epoch_offset_days;
  record.bstar = 1.4e-4;
  record.inclination_deg = 53.05;
  record.raan_deg = 120.5;
  record.eccentricity = 0.0002;
  record.arg_perigee_deg = 90.0;
  record.mean_anomaly_deg = 45.0;
  record.mean_motion_revday = 15.05;
  record.element_set_number = 999;
  record.rev_number = 12345;
  return record;
}

std::string tle_record_text(int catalog_number, double epoch_offset_days) {
  const tle::TleLines lines =
      tle::format_tle(make_tle(catalog_number, epoch_offset_days));
  return lines.line1 + "\n" + lines.line2 + "\n";
}

/// One WDC day record (25 lines would be 25 days): 24 integral hourly
/// values derived deterministically from the day's hour index.
std::string wdc_day_text(timeutil::HourIndex day_start) {
  std::vector<double> values;
  values.reserve(24);
  for (int h = 0; h < 24; ++h) {
    values.push_back(-10.0 - static_cast<double>((day_start + h) % 300));
  }
  return spaceweather::to_wdc(
      spaceweather::DstIndex(day_start, std::move(values)));
}

// ---- harness ----------------------------------------------------------------

/// A growable input pair with its own cache dir.  The append helpers keep
/// enough generator state (next day, next epoch offset) that successive
/// appends always extend — never duplicate — the existing corpus.
struct Fixture {
  std::string dir;
  std::string dst_path;
  std::string tle_path;
  std::string cache_dir;
  timeutil::HourIndex next_day = 0;
  double next_epoch_offset = 50.0;

  [[nodiscard]] std::string snapshot_path() const {
    return io::snapshot_cache_path(cache_dir, dst_path, tle_path);
  }

  void append_tle_records(int count) {
    std::string text;
    for (int i = 0; i < count; ++i) {
      text += tle_record_text(10001 + (i % 4), next_epoch_offset);
      next_epoch_offset += 0.125;
    }
    io::append_file(tle_path, text);
  }

  /// Append one record whose line-1 checksum digit is wrong: a tolerant
  /// parse quarantines it, a strict parse throws on it.
  void append_corrupt_tle_record() {
    std::string text = tle_record_text(10001, next_epoch_offset);
    next_epoch_offset += 0.125;
    text[68] = text[68] == '0' ? '1' : '0';  // line 1 checksum column
    io::append_file(tle_path, text);
  }

  /// Append a lone TLE line 2: a structural reject in both paths.
  void append_orphan_line2() {
    const std::string record = tle_record_text(10001, next_epoch_offset);
    next_epoch_offset += 0.125;
    io::append_file(tle_path, record.substr(record.find("\n2 ") + 1));
  }

  void append_wdc_days(int count) {
    std::string text;
    for (int i = 0; i < count; ++i) {
      text += wdc_day_text(next_day);
      next_day += 24;
    }
    io::append_file(dst_path, text);
  }

  /// Leave a one-day hole before the next appended day: tolerant runs
  /// interpolate 24 hours across it (strict runs throw).
  void skip_wdc_day() { next_day += 24; }
};

Fixture make_fixture(const std::string& tag, int tle_records, int wdc_days) {
  Fixture f;
  f.dir = ::testing::TempDir() + "cddelta_" + tag;
  std::filesystem::remove_all(f.dir);
  std::filesystem::create_directories(f.dir);
  f.dst_path = f.dir + "/dst.wdc";
  f.tle_path = f.dir + "/catalog.tle";
  f.cache_dir = f.dir + "/cache";
  f.next_day = timeutil::hour_index_from_datetime(timeutil::make_datetime(2024, 5, 1));
  io::write_file(f.dst_path, "");
  io::write_file(f.tle_path, "");
  f.append_wdc_days(wdc_days);
  std::string tle_text;
  for (int i = 0; i < tle_records; ++i) {
    tle_text += tle_record_text(10001 + (i % 4), 2.0 * i);
  }
  io::append_file(f.tle_path, tle_text);
  return f;
}

/// Everything the ingestion layer feeds downstream, in comparable form —
/// equality is bit-exactness (see snapshot_test.cpp).
struct RunOutput {
  std::string catalog_text;
  timeutil::HourIndex dst_start = 0;
  std::vector<double> dst_values;
  std::string quality_json;
};

void expect_identical(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.catalog_text, b.catalog_text);
  EXPECT_EQ(a.dst_start, b.dst_start);
  EXPECT_EQ(a.dst_values, b.dst_values);
  EXPECT_EQ(a.quality_json, b.quality_json);
}

RunOutput run_pipeline(const Fixture& f, ParsePolicy policy, int threads,
                       bool use_cache, obs::Metrics* metrics = nullptr) {
  core::PipelineConfig config;
  config.parse_policy = policy;
  config.num_threads = threads;
  config.metrics = metrics;
  if (use_cache) config.cache_dir = f.cache_dir;
  const core::CosmicDance pipeline =
      core::CosmicDance::from_files(f.dst_path, f.tle_path, config);
  RunOutput out;
  out.catalog_text = pipeline.catalog().to_text();
  out.dst_start = pipeline.dst().start_hour();
  out.dst_values.assign(pipeline.dst().values().begin(),
                        pipeline.dst().values().end());
  out.quality_json = pipeline.quality_report().to_json();
  return out;
}

std::uint64_t counter(const obs::Metrics& metrics, const std::string& name) {
  const obs::MetricsReport report = metrics.snapshot();
  const auto it = report.counters.find(name);
  return it != report.counters.end() ? it->second : 0;
}

std::uint64_t read_u64_le(const std::string& bytes, std::size_t offset) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
             bytes[offset + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

/// Split a snapshot file into [base, layer 1, layer 2, ...] segments,
/// each header + payload, using the payload-size fields.
std::vector<std::string> split_segments(const std::string& bytes) {
  std::vector<std::string> segments;
  std::size_t pos = 0;
  while (pos + 40 <= bytes.size()) {
    const std::size_t length =
        40 + static_cast<std::size_t>(read_u64_le(bytes, pos + 24));
    segments.push_back(bytes.substr(pos, length));
    pos += length;
  }
  return segments;
}

/// Drive one mutation of the snapshot file and prove the next run rejects
/// it, matches an uncached parse bit for bit, and rewrites a fresh base.
void expect_reject_and_fallback(const Fixture& f, ParsePolicy policy,
                                const std::string& mutated_bytes) {
  io::write_file(f.snapshot_path(), mutated_bytes);
  obs::Metrics rejected_run;
  const RunOutput fallback =
      run_pipeline(f, policy, 1, /*use_cache=*/true, &rejected_run);
  EXPECT_EQ(counter(rejected_run, "snapshot.rejected"), 1u);
  EXPECT_EQ(counter(rejected_run, "ingest.cache_hit"), 0u);
  EXPECT_EQ(counter(rejected_run, "ingest.delta_hit"), 0u);
  EXPECT_EQ(counter(rejected_run, "snapshot.written"), 1u);
  expect_identical(fallback, run_pipeline(f, policy, 1, /*use_cache=*/false));
}

// ---- the delta fast path ----------------------------------------------------

TEST(DeltaSnapshotTest, AppendTakesTheDeltaPathBitIdenticallyEverywhere) {
  // The acceptance-criteria matrix: both parse policies at threads 1/4/8,
  // with both inputs growing.  Every cell must parse only the tail and
  // match a from-scratch rebuild exactly.
  for (const ParsePolicy policy : {ParsePolicy::kStrict, ParsePolicy::kTolerant}) {
    for (const int threads : {1, 4, 8}) {
      Fixture f = make_fixture(
          std::string("matrix_") +
              (policy == ParsePolicy::kStrict ? "s" : "t") +
              std::to_string(threads),
          8, 5);
      obs::Metrics cold;
      run_pipeline(f, policy, threads, /*use_cache=*/true, &cold);
      EXPECT_EQ(counter(cold, "snapshot.written"), 1u);

      const std::size_t dst_before = std::filesystem::file_size(f.dst_path);
      const std::size_t tle_before = std::filesystem::file_size(f.tle_path);
      f.append_tle_records(3);
      f.append_wdc_days(2);
      const std::size_t appended =
          (std::filesystem::file_size(f.dst_path) - dst_before) +
          (std::filesystem::file_size(f.tle_path) - tle_before);

      obs::Metrics warm;
      const RunOutput incremental =
          run_pipeline(f, policy, threads, /*use_cache=*/true, &warm);
      EXPECT_EQ(counter(warm, "ingest.delta_hit"), 1u);
      EXPECT_EQ(counter(warm, "ingest.tail_bytes"), appended);
      EXPECT_EQ(counter(warm, "ingest.cache_hit"), 0u);
      EXPECT_EQ(counter(warm, "snapshot.rejected"), 0u);
      EXPECT_EQ(counter(warm, "snapshot.loaded"), 1u);
      EXPECT_EQ(counter(warm, "snapshot.delta_written"), 1u);
      EXPECT_EQ(counter(warm, "tle.records_parsed"), 3u)
          << "the delta path must parse only the appended records";
      EXPECT_EQ(counter(warm, "ingest.dst_hours"), 48u)
          << "the delta path must parse only the appended days";

      const RunOutput rebuilt =
          run_pipeline(f, policy, threads, /*use_cache=*/false);
      expect_identical(incremental, rebuilt);

      // The next run over unchanged inputs is a plain exact hit on the
      // base-plus-delta chain.
      obs::Metrics exact;
      const RunOutput warm2 =
          run_pipeline(f, policy, threads, /*use_cache=*/true, &exact);
      EXPECT_EQ(counter(exact, "ingest.cache_hit"), 1u);
      EXPECT_EQ(counter(exact, "ingest.delta_hit"), 0u);
      expect_identical(warm2, rebuilt);
    }
  }
}

TEST(DeltaSnapshotTest, SingleFileGrowthAlsoTakesTheDeltaPath) {
  Fixture f = make_fixture("one_file", 6, 4);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);

  f.append_wdc_days(1);  // only the Dst input grows
  obs::Metrics dst_only;
  const RunOutput after_dst =
      run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true, &dst_only);
  EXPECT_EQ(counter(dst_only, "ingest.delta_hit"), 1u);
  EXPECT_EQ(counter(dst_only, "tle.records_parsed"), 0u);
  expect_identical(after_dst,
                   run_pipeline(f, ParsePolicy::kTolerant, 1, false));

  f.append_tle_records(2);  // now only the TLE input grows
  obs::Metrics tle_only;
  const RunOutput after_tle =
      run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true, &tle_only);
  EXPECT_EQ(counter(tle_only, "ingest.delta_hit"), 1u);
  EXPECT_EQ(counter(tle_only, "ingest.dst_hours"), 0u);
  expect_identical(after_tle,
                   run_pipeline(f, ParsePolicy::kTolerant, 1, false));
}

TEST(DeltaSnapshotTest, QuarantineAndRepairExtendAcrossTheBoundary) {
  // Tail records that quarantine, a structural orphan, and a Dst gap whose
  // interpolation anchors on the *prefix's* last committed value: the
  // quality report — counters, line numbers, snippet order — must equal
  // the full rebuild's exactly.
  Fixture f = make_fixture("quarantine", 6, 4);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);

  f.append_corrupt_tle_record();
  f.append_orphan_line2();
  f.append_tle_records(1);
  f.skip_wdc_day();  // interpolated across the snapshot boundary
  f.append_wdc_days(1);

  obs::Metrics warm;
  const RunOutput incremental =
      run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true, &warm);
  EXPECT_EQ(counter(warm, "ingest.delta_hit"), 1u);
  const RunOutput rebuilt =
      run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/false);
  expect_identical(incremental, rebuilt);
  EXPECT_NE(incremental.quality_json.find("quarantined"), std::string::npos);

  // And the quarantine survives an exact hit on the delta chain.
  const RunOutput warm2 =
      run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);
  expect_identical(warm2, rebuilt);
}

TEST(DeltaSnapshotTest, StrictTailFailureThrowsIdenticallyToFullReparse) {
  // Strict policy, malformed record in the tail: the delta path must throw
  // the same first error — same message, same absolute line number — as a
  // full reparse of the grown file would.
  Fixture f = make_fixture("strict_throw", 6, 4);
  run_pipeline(f, ParsePolicy::kStrict, 1, /*use_cache=*/true);
  f.append_tle_records(1);
  f.append_corrupt_tle_record();

  std::string cached_error;
  std::string uncached_error;
  try {
    run_pipeline(f, ParsePolicy::kStrict, 1, /*use_cache=*/true);
  } catch (const ParseError& error) {
    cached_error = error.what();
  }
  try {
    run_pipeline(f, ParsePolicy::kStrict, 1, /*use_cache=*/false);
  } catch (const ParseError& error) {
    uncached_error = error.what();
  }
  EXPECT_FALSE(cached_error.empty());
  EXPECT_EQ(cached_error, uncached_error);
}

// ---- layer stacking and compaction ------------------------------------------

TEST(DeltaSnapshotTest, LayersStackThenCompactBackToASingleBase) {
  Fixture f = make_fixture("compaction", 4, 3);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);

  for (std::uint32_t round = 1; round <= io::kMaxSnapshotDeltaLayers + 2;
       ++round) {
    f.append_tle_records(1);
    f.append_wdc_days(1);
    obs::Metrics warm;
    const RunOutput incremental =
        run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true, &warm);
    EXPECT_EQ(counter(warm, "ingest.delta_hit"), 1u) << "round " << round;
    expect_identical(incremental,
                     run_pipeline(f, ParsePolicy::kTolerant, 1, false));
    const std::string bytes = io::read_file(f.snapshot_path());
    const std::optional<io::SnapshotData> decoded =
        io::decode_snapshot(bytes, ParsePolicy::kTolerant);
    ASSERT_TRUE(decoded.has_value()) << "round " << round;
    if (round <= io::kMaxSnapshotDeltaLayers) {
      EXPECT_EQ(counter(warm, "snapshot.delta_written"), 1u) << "round " << round;
      EXPECT_EQ(counter(warm, "snapshot.compacted"), 0u) << "round " << round;
      EXPECT_EQ(decoded->delta_layers, round);
      EXPECT_EQ(split_segments(bytes).size(), 1u + round);
    } else if (round == io::kMaxSnapshotDeltaLayers + 1) {
      // The chain is full: this append compacts everything to one base.
      EXPECT_EQ(counter(warm, "snapshot.compacted"), 1u);
      EXPECT_EQ(counter(warm, "snapshot.delta_written"), 0u);
      EXPECT_EQ(counter(warm, "snapshot.written"), 1u);
      EXPECT_EQ(decoded->delta_layers, 0u);
      EXPECT_EQ(split_segments(bytes).size(), 1u);
    } else {
      // And the compacted base accepts new layers again.
      EXPECT_EQ(counter(warm, "snapshot.delta_written"), 1u);
      EXPECT_EQ(decoded->delta_layers, 1u);
    }
  }
  // The final exact hit replays base + chain bit-identically.
  obs::Metrics exact;
  const RunOutput warm =
      run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true, &exact);
  EXPECT_EQ(counter(exact, "ingest.cache_hit"), 1u);
  expect_identical(warm, run_pipeline(f, ParsePolicy::kTolerant, 1, false));
}

// ---- failure matrix: stale bases and forged appends -------------------------

TEST(DeltaSnapshotTest, PrefixEditMasqueradingAsAppendReparses) {
  // The file grows AND a prefix byte changes: lengths alone say "append",
  // only the prefix hash catches the edit.
  Fixture f = make_fixture("masquerade", 6, 4);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);

  std::string text = io::read_file(f.tle_path);
  const std::size_t designator = text.find("20001A");
  ASSERT_NE(designator, std::string::npos);
  text[designator + 5] = 'B';
  io::write_file(f.tle_path, text);
  f.append_tle_records(2);

  obs::Metrics warm;
  const RunOutput fallback =
      run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true, &warm);
  EXPECT_EQ(counter(warm, "ingest.delta_hit"), 0u);
  EXPECT_EQ(counter(warm, "snapshot.rejected"), 1u);
  EXPECT_EQ(counter(warm, "snapshot.written"), 1u);
  expect_identical(fallback, run_pipeline(f, ParsePolicy::kTolerant, 1, false));
}

TEST(DeltaSnapshotTest, UnterminatedPrefixForcesFullReparse) {
  // The prefix's last line has no trailing newline, so appended bytes
  // could rewrite that line's meaning: growth must reparse from scratch.
  Fixture f = make_fixture("unterminated", 6, 4);
  std::string text = io::read_file(f.tle_path);
  ASSERT_EQ(text.back(), '\n');
  text.pop_back();
  io::write_file(f.tle_path, text);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);

  io::append_file(f.tle_path, "\n");
  f.append_tle_records(1);
  obs::Metrics warm;
  const RunOutput fallback =
      run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true, &warm);
  EXPECT_EQ(counter(warm, "ingest.delta_hit"), 0u);
  EXPECT_EQ(counter(warm, "snapshot.rejected"), 1u);
  expect_identical(fallback, run_pipeline(f, ParsePolicy::kTolerant, 1, false));
}

TEST(DeltaSnapshotTest, DanglingLine1BoundaryForcesFullReparse) {
  // The prefix ends with a lone TLE line 1 (quarantined as structural when
  // parsed alone).  Appending its line 2 would retroactively pair it, so
  // the classifier must refuse the delta path — the full reparse commits
  // the completed record, which the quarantined snapshot never could.
  Fixture f = make_fixture("dangling", 6, 4);
  const std::string record = tle_record_text(10001, 77.0);
  const std::string line1 = record.substr(0, record.find('\n') + 1);
  io::append_file(f.tle_path, line1);
  obs::Metrics cold;
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true, &cold);
  EXPECT_EQ(counter(cold, "tle.structural_rejects"), 1u);

  io::append_file(f.tle_path, record.substr(record.find('\n') + 1));
  obs::Metrics warm;
  const RunOutput fallback =
      run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true, &warm);
  EXPECT_EQ(counter(warm, "ingest.delta_hit"), 0u);
  EXPECT_EQ(counter(warm, "snapshot.rejected"), 1u);
  EXPECT_EQ(counter(warm, "tle.structural_rejects"), 0u)
      << "the full reparse pairs the completed record";
  expect_identical(fallback, run_pipeline(f, ParsePolicy::kTolerant, 1, false));
}

// ---- failure matrix: broken delta chains ------------------------------------

TEST(DeltaSnapshotTest, BrokenDeltaChainsRejectTheWholeSnapshot) {
  // Build base + two delta layers, then splice the file every way a chain
  // can break.  Each mutation must reject, fall back bit-identically, and
  // rewrite a fresh base.
  Fixture f = make_fixture("chains", 6, 4);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);
  f.append_tle_records(1);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);
  f.append_tle_records(1);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);

  const std::string bytes = io::read_file(f.snapshot_path());
  const std::vector<std::string> segments = split_segments(bytes);
  ASSERT_EQ(segments.size(), 3u);
  const std::string& base = segments[0];
  const std::string& layer1 = segments[1];
  const std::string& layer2 = segments[2];

  {
    SCOPED_TRACE("out-of-order layers");
    expect_reject_and_fallback(f, ParsePolicy::kTolerant,
                               base + layer2 + layer1);
  }
  {
    SCOPED_TRACE("missing middle layer");
    expect_reject_and_fallback(f, ParsePolicy::kTolerant, base + layer2);
  }
  {
    SCOPED_TRACE("duplicated layer");
    expect_reject_and_fallback(f, ParsePolicy::kTolerant,
                               base + layer1 + layer1);
  }
  {
    SCOPED_TRACE("flipped byte inside a layer payload");
    std::string corrupted = base + layer1 + layer2;
    corrupted[base.size() + 40 + layer1.size() / 3] ^= 0x20;
    expect_reject_and_fallback(f, ParsePolicy::kTolerant, corrupted);
  }
}

// ---- torn trailing layers: truncate, never reject ---------------------------

TEST(DeltaSnapshotTest, TornTrailingLayerTruncatesToTheValidPrefix) {
  // Decode-level contract: every way a crashed append can tear the *final*
  // layer — mid-header, mid-payload, or a CRC-failing complete payload —
  // recovers base + layer 1 with tail_truncated set, while the same
  // corruption anywhere earlier in the chain still rejects the whole file.
  Fixture f = make_fixture("torn_decode", 6, 4);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);
  f.append_tle_records(1);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);
  f.append_tle_records(1);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);

  const std::string bytes = io::read_file(f.snapshot_path());
  const std::vector<std::string> segments = split_segments(bytes);
  ASSERT_EQ(segments.size(), 3u);
  const std::string full = segments[0] + segments[1] + segments[2];
  const std::size_t prefix = segments[0].size() + segments[1].size();

  const auto expect_truncated = [&](const std::string& torn) {
    const std::optional<io::SnapshotData> decoded =
        io::decode_snapshot(torn, ParsePolicy::kTolerant);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->tail_truncated);
    EXPECT_EQ(decoded->delta_layers, 1u);
    // The recovered prefix must equal the pre-append snapshot exactly.
    const std::optional<io::SnapshotData> clean =
        io::decode_snapshot(full.substr(0, prefix), ParsePolicy::kTolerant);
    ASSERT_TRUE(clean.has_value());
    EXPECT_FALSE(clean->tail_truncated);
    EXPECT_EQ(decoded->chain_hash, clean->chain_hash);
    EXPECT_EQ(decoded->state.tle_len, clean->state.tle_len);
    EXPECT_EQ(decoded->catalog.to_text(), clean->catalog.to_text());
  };

  {
    SCOPED_TRACE("torn mid-header");
    expect_truncated(full.substr(0, prefix + 25));
  }
  {
    SCOPED_TRACE("torn mid-payload");
    expect_truncated(full.substr(0, full.size() - 5));
  }
  {
    SCOPED_TRACE("final layer fails its CRC");
    std::string torn = full;
    torn[full.size() - 3] ^= 0x20;
    expect_truncated(torn);
  }
  {
    SCOPED_TRACE("the same CRC failure mid-chain still rejects");
    std::string corrupted = full;
    corrupted[segments[0].size() + 40 + 3] ^= 0x20;
    EXPECT_FALSE(
        io::decode_snapshot(corrupted, ParsePolicy::kTolerant).has_value());
  }
  {
    SCOPED_TRACE("a torn base still rejects");
    EXPECT_FALSE(io::decode_snapshot(full.substr(0, segments[0].size() - 5),
                                     ParsePolicy::kTolerant)
                     .has_value());
  }
}

TEST(DeltaSnapshotTest, TornTrailingLayerRecoversOnTheDeltaPath) {
  // End to end: the inputs hold two appends but the snapshot's second
  // layer is torn.  The warm run must load the truncated prefix
  // (`snapshot.delta_truncated`, no rejection), tail-parse the records the
  // torn layer covered, match a from-scratch rebuild bit for bit, and
  // rewrite a clean *base* — appending another layer after torn bytes
  // would strand it beyond the tear for every future load.
  Fixture f = make_fixture("torn_e2e", 6, 4);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);
  f.append_tle_records(1);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);
  f.append_tle_records(1);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);

  const std::string bytes = io::read_file(f.snapshot_path());
  const std::vector<std::string> segments = split_segments(bytes);
  ASSERT_EQ(segments.size(), 3u);
  io::write_file(f.snapshot_path(),
                 bytes.substr(0, bytes.size() - segments[2].size() + 25));

  obs::Metrics warm;
  const RunOutput recovered =
      run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true, &warm);
  EXPECT_EQ(counter(warm, "snapshot.delta_truncated"), 1u);
  EXPECT_EQ(counter(warm, "snapshot.rejected"), 0u);
  EXPECT_EQ(counter(warm, "ingest.delta_hit"), 1u);
  EXPECT_EQ(counter(warm, "snapshot.written"), 1u)
      << "recovery must rewrite a clean base";
  EXPECT_EQ(counter(warm, "snapshot.delta_written"), 0u)
      << "never append a layer after torn bytes";
  EXPECT_EQ(counter(warm, "snapshot.compacted"), 0u);
  expect_identical(recovered,
                   run_pipeline(f, ParsePolicy::kTolerant, 1, false));

  // The rewritten base is whole again: the next run is an exact hit with
  // no truncation, and it decodes with a clean tail.
  obs::Metrics exact;
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true, &exact);
  EXPECT_EQ(counter(exact, "ingest.cache_hit"), 1u);
  EXPECT_EQ(counter(exact, "snapshot.delta_truncated"), 0u);
}

TEST(DeltaSnapshotTest, TornTailWithUnchangedInputsRewritesOnTheExactPath) {
  // A crashed append can also die before the inputs' own growth is visible
  // to the next run (the snapshot file carries torn bytes but the inputs
  // match the recovered prefix exactly).  The exact hit must still serve
  // from the prefix and rewrite a clean base so the tear does not linger.
  Fixture f = make_fixture("torn_exact", 6, 4);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);
  f.append_tle_records(1);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);

  const std::string bytes = io::read_file(f.snapshot_path());
  io::append_file(f.snapshot_path(), bytes.substr(0, 25));  // torn junk tail

  obs::Metrics warm;
  const RunOutput recovered =
      run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true, &warm);
  EXPECT_EQ(counter(warm, "ingest.cache_hit"), 1u);
  EXPECT_EQ(counter(warm, "snapshot.delta_truncated"), 1u);
  EXPECT_EQ(counter(warm, "snapshot.written"), 1u);
  expect_identical(recovered,
                   run_pipeline(f, ParsePolicy::kTolerant, 1, false));

  obs::Metrics exact;
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true, &exact);
  EXPECT_EQ(counter(exact, "ingest.cache_hit"), 1u);
  EXPECT_EQ(counter(exact, "snapshot.delta_truncated"), 0u);
}

TEST(DeltaSnapshotTest, CrossPolicyDeltasAreRejected) {
  // A layer whose header carries the other parse policy must break the
  // chain even when everything else lines up.
  Fixture f = make_fixture("cross_policy", 6, 4);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);
  const std::string base = io::read_file(f.snapshot_path());
  const std::optional<io::SnapshotData> decoded =
      io::decode_snapshot(base, ParsePolicy::kTolerant);
  ASSERT_TRUE(decoded.has_value());

  io::SnapshotDelta noop;
  noop.state = decoded->state;
  noop.dst_prior_size = decoded->dst.size();
  noop.dst_start_hour = decoded->dst.start_hour();
  noop.quality_delta.policy = ParsePolicy::kStrict;
  const std::string strict_layer = io::encode_snapshot_delta(
      noop, 1, decoded->chain_hash, ParsePolicy::kStrict);
  EXPECT_FALSE(
      io::decode_snapshot(base + strict_layer, ParsePolicy::kTolerant));

  // The same layer under the matching policy is accepted — proving the
  // rejection above was the policy byte, not the handcrafted layer.
  io::SnapshotDelta tolerant_noop = noop;
  tolerant_noop.quality_delta.policy = ParsePolicy::kTolerant;
  const std::string tolerant_layer = io::encode_snapshot_delta(
      tolerant_noop, 1, decoded->chain_hash, ParsePolicy::kTolerant);
  EXPECT_TRUE(
      io::decode_snapshot(base + tolerant_layer, ParsePolicy::kTolerant));

  // End to end: a whole snapshot built strict serves no tolerant run.
  f.append_tle_records(1);
  io::write_file(f.snapshot_path(), base);
  obs::Metrics strict_warm;
  run_pipeline(f, ParsePolicy::kStrict, 1, /*use_cache=*/true, &strict_warm);
  EXPECT_EQ(counter(strict_warm, "ingest.delta_hit"), 0u)
      << "a tolerant-built snapshot must not serve a strict run's delta";
  EXPECT_EQ(counter(strict_warm, "snapshot.rejected"), 1u);
}

// ---- randomized append/compact fuzz -----------------------------------------

TEST(DeltaSnapshotTest, RandomizedAppendEditCompactFuzzNeverDiverges) {
  // A seeded random walk over the whole surface: clean appends (either or
  // both files), appends carrying quarantine-bound records, boundary gaps,
  // in-place prefix edits, at alternating thread counts — with compaction
  // triggering naturally as layers pile up.  After every round the cached
  // run must be bit-identical to a from-scratch rebuild, and the counters
  // must show either a clean fast path (exact or delta) or an explicit
  // rejection — never a silent divergence.
  Fixture f = make_fixture("fuzz", 6, 4);
  run_pipeline(f, ParsePolicy::kTolerant, 1, /*use_cache=*/true);

  Rng rng(20260808);
  std::uint64_t delta_hits = 0;
  std::uint64_t rejections = 0;
  std::uint64_t compactions = 0;
  for (int round = 0; round < 16; ++round) {
    const std::int64_t action = rng.uniform_int(0, 9);
    if (action == 0) {
      // In-place prefix edit: flip one bit somewhere in the existing file.
      std::string text = io::read_file(f.tle_path);
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
      text[pos] = static_cast<char>(text[pos] ^ 0x01);
      io::write_file(f.tle_path, text);
    } else {
      if (action == 1) f.append_corrupt_tle_record();
      if (action == 2) f.append_orphan_line2();
      if (action == 3) f.skip_wdc_day();
      const auto records = rng.uniform_int(0, 2);
      const auto days = rng.uniform_int(0, 2);
      if (records > 0) f.append_tle_records(static_cast<int>(records));
      if (days > 0) f.append_wdc_days(static_cast<int>(days));
      if (action > 3 && records == 0 && days == 0) f.append_tle_records(1);
    }
    const int threads = round % 2 == 0 ? 1 : 4;
    obs::Metrics metrics;
    const RunOutput cached = run_pipeline(f, ParsePolicy::kTolerant, threads,
                                          /*use_cache=*/true, &metrics);
    const RunOutput rebuilt =
        run_pipeline(f, ParsePolicy::kTolerant, threads, /*use_cache=*/false);
    expect_identical(cached, rebuilt);
    const std::uint64_t fast = counter(metrics, "ingest.delta_hit") +
                               counter(metrics, "ingest.cache_hit");
    const std::uint64_t rejected = counter(metrics, "snapshot.rejected");
    EXPECT_TRUE(fast == 1 || rejected >= 1)
        << "round " << round << ": neither fast path nor explicit rejection";
    EXPECT_LE(fast, 1u) << "round " << round;
    delta_hits += counter(metrics, "ingest.delta_hit");
    rejections += rejected;
    compactions += counter(metrics, "snapshot.compacted");
  }
  // The walk must actually have exercised the interesting regimes.
  EXPECT_GE(delta_hits, 5u);
  EXPECT_GE(rejections, 1u);
  EXPECT_GE(compactions, 1u);
}

}  // namespace
}  // namespace cosmicdance
