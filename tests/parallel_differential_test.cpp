// The parallel-determinism differential suite: the full pipeline run at 1,
// 2 and 8 threads on identical inputs must produce *bit-identical* outputs
// (floating-point equality including NaN patterns, not tolerances).  This is
// the exec subsystem's ordering contract (DESIGN.md §"Parallel execution")
// checked end to end, plus direct stress tests that hammer the pool with
// uneven task sizes to flush scheduling-dependent ordering bugs.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/analysis.hpp"
#include "core/pipeline.hpp"
#include "exec/parallel_for.hpp"
#include "exec/thread_pool.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"

namespace cosmicdance {
namespace {

using core::CosmicDance;
using core::EnvelopeSelection;
using core::PipelineConfig;
using core::SatelliteTrack;

/// Bitwise double equality: NaN == NaN (same payload), +0 != -0.  The
/// pipeline's per-satellite profiles carry NaN for uncovered days, so plain
/// == would vacuously fail there.
bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

::testing::AssertionResult VectorsBitIdentical(const std::vector<double>& a,
                                               const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!bits_equal(a[i], b[i])) {
      return ::testing::AssertionFailure()
             << "element " << i << " differs: " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult TracksBitIdentical(
    std::span<const SatelliteTrack> a, std::span<const SatelliteTrack> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "track count mismatch: " << a.size() << " vs " << b.size();
  }
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (a[t].catalog_number() != b[t].catalog_number()) {
      return ::testing::AssertionFailure()
             << "track " << t << " catalog number differs";
    }
    if (a[t].size() != b[t].size()) {
      return ::testing::AssertionFailure()
             << "track " << t << " sample count differs";
    }
    for (std::size_t i = 0; i < a[t].size(); ++i) {
      const auto& x = a[t].samples()[i];
      const auto& y = b[t].samples()[i];
      if (!bits_equal(x.epoch_jd, y.epoch_jd) ||
          !bits_equal(x.altitude_km, y.altitude_km) ||
          !bits_equal(x.bstar, y.bstar) ||
          !bits_equal(x.inclination_deg, y.inclination_deg) ||
          !bits_equal(x.raan_deg, y.raan_deg) ||
          !bits_equal(x.eccentricity, y.eccentricity) ||
          !bits_equal(x.arg_perigee_deg, y.arg_perigee_deg) ||
          !bits_equal(x.mean_anomaly_deg, y.mean_anomaly_deg) ||
          !bits_equal(x.mean_motion_revday, y.mean_motion_revday)) {
        return ::testing::AssertionFailure()
               << "track " << t << " sample " << i << " differs";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Shared input data plus one pipeline per thread count; generated once
/// (simulation is the expensive part) and reused by every test below.
class ParallelDifferential : public ::testing::Test {
 protected:
  struct State {
    spaceweather::DstIndex dst;
    tle::TleCatalog catalog;
    std::vector<CosmicDance> pipelines;  // threads 1, 2, 8 in order
  };

  static constexpr int kThreadCounts[] = {1, 2, 8};

  static State& state() {
    static State* s = [] {
      auto* out = new State;
      out->dst = spaceweather::DstGenerator(
                     spaceweather::DstGenerator::paper_window_2020_2024())
                     .generate();
      auto config = simulation::scenario::paper_window(&out->dst, 3, 20.0);
      out->catalog = simulation::ConstellationSimulator(config).run().catalog;
      for (const int threads : kThreadCounts) {
        PipelineConfig pipeline_config;
        pipeline_config.num_threads = threads;
        out->pipelines.emplace_back(out->dst, out->catalog, pipeline_config);
      }
      return out;
    }();
    return *s;
  }

  static const CosmicDance& serial() { return state().pipelines[0]; }
};

TEST_F(ParallelDifferential, CleanedTracksBitIdentical) {
  for (std::size_t p = 1; p < state().pipelines.size(); ++p) {
    EXPECT_TRUE(TracksBitIdentical(serial().tracks(),
                                   state().pipelines[p].tracks()))
        << "num_threads=" << kThreadCounts[p];
  }
  // Sanity: the dataset is big enough for a meaningful comparison.
  EXPECT_GT(serial().tracks().size(), 100u);
}

TEST_F(ParallelDifferential, RawTracksBitIdentical) {
  const auto baseline = serial().raw_tracks();
  for (std::size_t p = 1; p < state().pipelines.size(); ++p) {
    const auto other = state().pipelines[p].raw_tracks();
    EXPECT_TRUE(TracksBitIdentical(baseline, other))
        << "num_threads=" << kThreadCounts[p];
  }
}

TEST_F(ParallelDifferential, StormListsIdentical) {
  const auto baseline = serial().storms();
  ASSERT_FALSE(baseline.empty());
  for (std::size_t p = 1; p < state().pipelines.size(); ++p) {
    const auto other = state().pipelines[p].storms();
    ASSERT_EQ(baseline.size(), other.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(baseline[i].start_hour, other[i].start_hour);
      EXPECT_EQ(baseline[i].end_hour, other[i].end_hour);
      EXPECT_EQ(baseline[i].peak_hour, other[i].peak_hour);
      EXPECT_TRUE(bits_equal(baseline[i].peak_dst_nt, other[i].peak_dst_nt));
      EXPECT_EQ(baseline[i].category, other[i].category);
    }
  }
}

TEST_F(ParallelDifferential, EnvelopesBitIdentical) {
  const double p95 = serial().dst_threshold_at_percentile(95.0);
  const auto epochs = serial().correlator().storm_event_epochs(p95);
  ASSERT_FALSE(epochs.empty());
  const double event_jd = epochs.front();
  for (const auto selection :
       {EnvelopeSelection::kAffectedHumped, EnvelopeSelection::kAll}) {
    const auto baseline = serial().post_event_envelope(event_jd, 30, selection);
    for (std::size_t p = 1; p < state().pipelines.size(); ++p) {
      const auto other =
          state().pipelines[p].post_event_envelope(event_jd, 30, selection);
      EXPECT_EQ(baseline.satellites, other.satellites)
          << "num_threads=" << kThreadCounts[p];
      ASSERT_EQ(baseline.per_satellite.size(), other.per_satellite.size());
      for (std::size_t s = 0; s < baseline.per_satellite.size(); ++s) {
        EXPECT_TRUE(VectorsBitIdentical(baseline.per_satellite[s],
                                        other.per_satellite[s]))
            << "satellite " << s << ", num_threads=" << kThreadCounts[p];
      }
      EXPECT_TRUE(VectorsBitIdentical(baseline.median_km, other.median_km));
      EXPECT_TRUE(VectorsBitIdentical(baseline.p95_km, other.p95_km));
    }
  }
}

TEST_F(ParallelDifferential, CorrelationSampleVectorsBitIdentical) {
  const double p80 = serial().dst_threshold_at_percentile(80.0);
  const double p95 = serial().dst_threshold_at_percentile(95.0);
  const auto storm_baseline = serial().altitude_changes_for_storms(p95);
  const auto quiet_baseline = serial().altitude_changes_for_quiet(p80, 30);
  const auto drag_baseline = serial().drag_changes_for_storms(p95);
  ASSERT_FALSE(storm_baseline.empty());
  for (std::size_t p = 1; p < state().pipelines.size(); ++p) {
    const auto& pipeline = state().pipelines[p];
    EXPECT_TRUE(VectorsBitIdentical(storm_baseline,
                                    pipeline.altitude_changes_for_storms(p95)))
        << "storm samples, num_threads=" << kThreadCounts[p];
    EXPECT_TRUE(VectorsBitIdentical(
        quiet_baseline, pipeline.altitude_changes_for_quiet(p80, 30)))
        << "quiet samples, num_threads=" << kThreadCounts[p];
    EXPECT_TRUE(VectorsBitIdentical(drag_baseline,
                                    pipeline.drag_changes_for_storms(p95)))
        << "drag samples, num_threads=" << kThreadCounts[p];
  }
}

TEST_F(ParallelDifferential, AnalysisAggregationsBitIdentical) {
  const auto altitudes_baseline = core::all_altitudes(serial().tracks(), 1);
  const double start = timeutil::to_julian(serial().dst().start_datetime());
  const auto panel_baseline =
      core::superstorm_panel(serial().tracks(), serial().dst(), start + 100.0,
                             start + 140.0, /*num_threads=*/1);
  ASSERT_FALSE(panel_baseline.empty());
  for (const int threads : {2, 8}) {
    EXPECT_TRUE(VectorsBitIdentical(
        altitudes_baseline, core::all_altitudes(serial().tracks(), threads)));
    const auto panel = core::superstorm_panel(
        serial().tracks(), serial().dst(), start + 100.0, start + 140.0, threads);
    ASSERT_EQ(panel_baseline.size(), panel.size());
    for (std::size_t d = 0; d < panel.size(); ++d) {
      EXPECT_TRUE(bits_equal(panel_baseline[d].day_jd, panel[d].day_jd));
      EXPECT_TRUE(bits_equal(panel_baseline[d].dst_min_nt, panel[d].dst_min_nt));
      EXPECT_TRUE(bits_equal(panel_baseline[d].bstar_mean, panel[d].bstar_mean));
      EXPECT_TRUE(
          bits_equal(panel_baseline[d].bstar_median, panel[d].bstar_median));
      EXPECT_TRUE(bits_equal(panel_baseline[d].bstar_p95, panel[d].bstar_p95));
      EXPECT_EQ(panel_baseline[d].tracked_satellites, panel[d].tracked_satellites);
      EXPECT_EQ(panel_baseline[d].tle_count, panel[d].tle_count);
    }
  }
}

// ---- exec-layer stress tests ----------------------------------------------

/// Deterministic per-index work whose cost varies wildly between indices:
/// a scheduling-order bug (a worker writing a neighbour's slot, a skipped or
/// doubled chunk) shows up as a value mismatch against the serial run.
std::uint64_t uneven_work(std::size_t i) {
  // Spin length 0..~1000, pseudo-random per index.
  const std::uint64_t spin = (i * 2654435761u) % 1009u;
  std::uint64_t h = i + 0x9e3779b97f4a7c15ull;
  for (std::uint64_t k = 0; k < spin; ++k) {
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
  }
  return h;
}

TEST(ParallelForStress, UnevenTaskSizesPreserveOrdering) {
  constexpr std::size_t kCount = 20000;
  std::vector<std::uint64_t> expected(kCount);
  for (std::size_t i = 0; i < kCount; ++i) expected[i] = uneven_work(i);

  for (const int threads : {2, 3, 8, 0}) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      const auto actual = exec::ordered_map<std::uint64_t>(
          kCount, threads, [](std::size_t i) { return uneven_work(i); });
      ASSERT_EQ(actual, expected) << "threads=" << threads
                                  << " repeat=" << repeat;
    }
  }
}

TEST(ParallelForStress, EveryIndexVisitedExactlyOnce) {
  constexpr std::size_t kCount = 50000;
  for (const int threads : {2, 8, 0}) {
    std::vector<std::atomic<int>> visits(kCount);
    exec::parallel_for(kCount, threads,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           visits[i].fetch_add(1);
                         }
                       });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i << " threads=" << threads;
    }
  }
}

TEST(ParallelForStress, ManySmallSectionsBackToBack) {
  // Hammer the shared pool with rapid-fire small sections (the pipeline's
  // actual usage pattern): stale state from a previous section must never
  // leak into the next.
  for (int round = 0; round < 200; ++round) {
    const std::size_t count = 1 + static_cast<std::size_t>(round % 37);
    const auto out = exec::ordered_map<std::size_t>(
        count, 4, [round](std::size_t i) { return i * 31 + round; });
    ASSERT_EQ(out.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], i * 31 + static_cast<std::size_t>(round));
    }
  }
}

TEST(ParallelForStress, NestedSectionsDoNotDeadlockOrReorder) {
  const auto outer = exec::ordered_map<std::uint64_t>(
      64, 4, [](std::size_t i) {
        const auto inner = exec::ordered_map<std::uint64_t>(
            32, 4, [i](std::size_t j) { return uneven_work(i * 32 + j); });
        std::uint64_t sum = 0;
        for (const std::uint64_t v : inner) sum += v;
        return sum;
      });
  for (std::size_t i = 0; i < 64; ++i) {
    std::uint64_t sum = 0;
    for (std::size_t j = 0; j < 32; ++j) sum += uneven_work(i * 32 + j);
    ASSERT_EQ(outer[i], sum) << "outer index " << i;
  }
}

TEST(ParallelForStress, BodyExceptionPropagates) {
  EXPECT_THROW(
      exec::parallel_for(1000, 4,
                         [](std::size_t begin, std::size_t) {
                           if (begin >= 500) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
  // The pool must stay usable afterwards.
  const auto out =
      exec::ordered_map<std::size_t>(100, 4, [](std::size_t i) { return i; });
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(out[99], 99u);
}

TEST(ParallelForStress, SerialKnobNeverTouchesThePool) {
  // num_threads == 1 must run inline on the calling thread (the "exact
  // serial path" contract): observable as the body seeing one single
  // contiguous chunk.
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  exec::parallel_for(1000, 1, [&](std::size_t begin, std::size_t end) {
    // cdlint: allow(shared-mutable-capture) num_threads==1 is the exact serial path: one worker by contract
    chunks.emplace_back(begin, end);  // unsynchronised on purpose
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 0u);
  EXPECT_EQ(chunks[0].second, 1000u);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(exec::resolve_thread_count(0), 1u);
  EXPECT_EQ(exec::resolve_thread_count(1), 1u);
  EXPECT_EQ(exec::resolve_thread_count(6), 6u);
}

TEST(ThreadPoolTest, DrainsAllSubmittedTasks) {
  exec::ThreadPool pool(4);
  constexpr int kTasks = 5000;
  std::atomic<int> done{0};
  std::atomic<int> remaining{kTasks};
  std::mutex m;
  std::condition_variable cv;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      done.fetch_add(1);
      if (remaining.fetch_sub(1) == 1) {
        const std::lock_guard<std::mutex> lock(m);
        cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return remaining.load() == 0; });
  EXPECT_EQ(done.load(), kTasks);
}

}  // namespace
}  // namespace cosmicdance
