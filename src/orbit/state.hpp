// Cartesian state vectors and element <-> state conversions (RV2COE/COE2RV).
#pragma once

#include <array>

#include "orbit/constants.hpp"
#include "orbit/elements.hpp"

namespace cosmicdance::orbit {

/// 3-vector in km (position) or km/s (velocity).
using Vec3 = std::array<double, 3>;

[[nodiscard]] double dot(const Vec3& a, const Vec3& b) noexcept;
[[nodiscard]] Vec3 cross(const Vec3& a, const Vec3& b) noexcept;
[[nodiscard]] double norm(const Vec3& a) noexcept;
[[nodiscard]] Vec3 scale(const Vec3& a, double s) noexcept;
[[nodiscard]] Vec3 add(const Vec3& a, const Vec3& b) noexcept;
[[nodiscard]] Vec3 sub(const Vec3& a, const Vec3& b) noexcept;

/// Inertial cartesian state.
struct StateVector {
  Vec3 position_km{};
  Vec3 velocity_kms{};
};

/// Classical elements -> inertial state (COE2RV).  Elliptical orbits only.
[[nodiscard]] StateVector state_from_elements(const KeplerianElements& coe,
                                              const GravityModel& g = wgs72());

/// Inertial state -> classical elements (RV2COE).  Throws PropagationError
/// for degenerate (rectilinear/parabolic+) cases.
[[nodiscard]] KeplerianElements elements_from_state(const StateVector& sv,
                                                    const GravityModel& g = wgs72());

}  // namespace cosmicdance::orbit
