#include "tle/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "io/file.hpp"

namespace cosmicdance::tle {
namespace {

// Two records of one satellite closer than this are duplicates (~1 second).
constexpr double kDuplicateEpochDays = 1.0 / 86400.0;

bool looks_like_tle_line(const std::string& line, char number) {
  return line.size() == 69 && line[0] == number && line[1] == ' ';
}

}  // namespace

bool TleCatalog::add(const Tle& tle) {
  tle.validate();
  auto& history = tles_[tle.catalog_number];
  const auto insert_at = std::lower_bound(
      history.begin(), history.end(), tle.epoch_jd,
      [](const Tle& existing, double epoch) { return existing.epoch_jd < epoch; });
  if (insert_at != history.end() &&
      std::fabs(insert_at->epoch_jd - tle.epoch_jd) < kDuplicateEpochDays) {
    return false;
  }
  if (insert_at != history.begin() &&
      std::fabs((insert_at - 1)->epoch_jd - tle.epoch_jd) < kDuplicateEpochDays) {
    return false;
  }
  history.insert(insert_at, tle);
  ++record_count_;
  return true;
}

std::size_t TleCatalog::add_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::string pending_line1;
  std::size_t added = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (looks_like_tle_line(line, '1')) {
      pending_line1 = line;
      continue;
    }
    if (looks_like_tle_line(line, '2')) {
      if (pending_line1.empty()) {
        throw ParseError("TLE line 2 without preceding line 1: '" + line + "'");
      }
      if (add(parse_tle(pending_line1, line))) ++added;
      pending_line1.clear();
      continue;
    }
    // With a line 1 pending, the next line must be its line 2: a "2 "-lead
    // line of the wrong length is a truncated/corrupted record, not a
    // satellite name (name lines only precede line 1 in 3-line format).
    if (!pending_line1.empty() && line.size() >= 2 && line[0] == '2' &&
        line[1] == ' ') {
      throw ParseError("malformed TLE line 2 (wrong length): '" + line + "'");
    }
    // Anything else is a satellite-name line (3-line format); ignore.
    pending_line1.clear();
  }
  if (!pending_line1.empty()) {
    throw ParseError("dangling TLE line 1 at end of input");
  }
  return added;
}

std::size_t TleCatalog::add_from_file(const std::string& path) {
  return add_from_text(io::read_file(path));
}

std::vector<int> TleCatalog::satellites() const {
  std::vector<int> ids;
  ids.reserve(tles_.size());
  for (const auto& [id, history] : tles_) ids.push_back(id);
  return ids;
}

std::span<const Tle> TleCatalog::history(int catalog_number) const {
  const auto it = tles_.find(catalog_number);
  if (it == tles_.end()) return {};
  return it->second;
}

double TleCatalog::first_epoch_jd() const {
  if (empty()) throw ValidationError("first_epoch_jd of empty catalog");
  double first = 1e18;
  for (const auto& [id, history] : tles_) {
    first = std::min(first, history.front().epoch_jd);
  }
  return first;
}

double TleCatalog::last_epoch_jd() const {
  if (empty()) throw ValidationError("last_epoch_jd of empty catalog");
  double last = -1e18;
  for (const auto& [id, history] : tles_) {
    last = std::max(last, history.back().epoch_jd);
  }
  return last;
}

std::string TleCatalog::to_text() const {
  std::string out;
  for (const auto& [id, history] : tles_) {
    for (const Tle& tle : history) {
      const TleLines lines = format_tle(tle);
      out += lines.line1;
      out.push_back('\n');
      out += lines.line2;
      out.push_back('\n');
    }
  }
  return out;
}

std::vector<double> TleCatalog::refresh_intervals_hours() const {
  std::vector<double> intervals;
  for (const auto& [id, history] : tles_) {
    for (std::size_t i = 1; i < history.size(); ++i) {
      intervals.push_back((history[i].epoch_jd - history[i - 1].epoch_jd) * 24.0);
    }
  }
  return intervals;
}

}  // namespace cosmicdance::tle
