// cosmicdanced — the long-running serving daemon (DESIGN.md §15).
//
// Loads one Dst + TLE input pair (through the same snapshot cache as the
// CLI, so a warm start is a binary load, not a text parse) and serves
// concurrent queries over length-prefixed JSON-over-TCP:
//
//   cosmicdanced --listen 127.0.0.1:0 --dst dst.wdc --tles catalog.tle
//                [--threads N] [--parse-policy strict|tolerant]
//                [--cache-dir DIR] [--port-file F] [--metrics-out F]
//   cosmicdanced query --host 127.0.0.1 (--port N | --port-file F)
//                --json '{"op":"storm_summary"}'
//
// Ops: ping, stats, sat_series, storm_summary, envelope_cdf, propagate,
// decay_summary, quality_report, metrics, reload, shutdown.  The propagate
// family runs the batch SGP4 engine against the serving snapshot's catalog:
// "propagate" returns one satellite's altitude-from-state series over a
// request-scoped epoch grid, "decay_summary" ranks the fleet's fastest
// decayers by fitted decay rate.  A "reload" re-ingests the
// inputs off to the side (appended records ride the delta fast path when a
// cache dir is set) and atomically swaps the serving snapshot; in-flight
// queries finish against the epoch they started on.
#include <cstdint>
#include <iostream>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "diag/diag.hpp"
#include "io/args.hpp"
#include "io/file.hpp"
#include "io/parse.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"

using namespace cosmicdance;

namespace {

int usage() {
  std::cout <<
      "cosmicdanced — CosmicDance serving daemon\n"
      "\n"
      "serve (default):\n"
      "  cosmicdanced --listen HOST:PORT --dst F --tles F\n"
      "               [--threads N] [--parse-policy strict|tolerant]\n"
      "               [--cache-dir DIR] [--port-file F] [--metrics-out F]\n"
      "    PORT 0 binds an ephemeral port; --port-file writes the actual\n"
      "    port once the daemon is accepting connections.  --metrics-out\n"
      "    dumps the metrics registry (serve.* counters included) as JSON\n"
      "    at shutdown.  Runs until a client sends {\"op\":\"shutdown\"}.\n"
      "\n"
      "query:\n"
      "  cosmicdanced query [--host H] (--port N | --port-file F) --json J\n"
      "    sends one request payload and prints the response JSON.\n"
      "\n"
      "ops: ping stats sat_series storm_summary envelope_cdf propagate\n"
      "     decay_summary quality_report metrics reload shutdown\n";
  return 2;
}

std::string require(const io::ArgParser& args, const std::string& name) {
  const auto value = args.option(name);
  if (!value.has_value()) {
    throw ParseError("missing required option --" + name);
  }
  return *value;
}

/// Split "HOST:PORT" at the last colon (IPv6 hosts contain colons).
std::pair<std::string, std::uint16_t> split_listen(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    throw ParseError("--listen expects HOST:PORT, got '" + spec + "'");
  }
  const auto port = io::parse_long(std::string_view(spec).substr(colon + 1));
  if (!port || *port < 0 || *port > 65535) {
    throw ParseError("--listen port must be in [0, 65535], got '" + spec +
                     "'");
  }
  return {spec.substr(0, colon), static_cast<std::uint16_t>(*port)};
}

core::PipelineConfig pipeline_config(const io::ArgParser& args,
                                     obs::Metrics* metrics) {
  core::PipelineConfig config;
  config.num_threads =
      static_cast<int>(args.nonnegative_integer_or("threads", 0));
  config.parse_policy = diag::parse_policy_from_string(
      args.option_or("parse-policy", "strict"));
  config.cache_dir = args.option_or("cache-dir", "");
  config.metrics = metrics;
  return config;
}

int cmd_serve(const io::ArgParser& args) {
  args.check_known({"listen", "dst", "tles", "threads", "parse-policy",
                    "cache-dir", "port-file", "metrics-out"});
  const auto [host, port] = split_listen(require(args, "listen"));
  const std::string dst_path = require(args, "dst");
  const std::string tle_path = require(args, "tles");

  obs::Metrics metrics;
  const core::PipelineConfig config = pipeline_config(args, &metrics);
  auto rebuild = [dst_path, tle_path, config] {
    return core::CosmicDance::from_files(dst_path, tle_path, config);
  };

  serve::Service service(rebuild(), rebuild, &metrics);
  serve::Server server(service, host, port);
  server.start();
  if (const auto port_file = args.option("port-file")) {
    io::write_file(*port_file, std::to_string(server.port()) + "\n");
  }
  std::cout << "cosmicdanced listening on " << host << ":" << server.port()
            << "\n";

  server.wait();      // until a client sends {"op":"shutdown"}
  server.shutdown();
  if (const auto metrics_out = args.option("metrics-out")) {
    io::write_file(*metrics_out, metrics.snapshot().to_json());
  }
  std::cout << "cosmicdanced stopped\n";
  return 0;
}

int cmd_query(const io::ArgParser& args) {
  args.check_known({"host", "port", "port-file", "json"});
  const std::string host = args.option_or("host", "127.0.0.1");
  long port = args.nonnegative_integer_or("port", 0);
  if (port == 0) {
    const std::string port_file = require(args, "port-file");
    const auto parsed = io::parse_leading_long(io::read_file(port_file));
    if (!parsed || *parsed <= 0 || *parsed > 65535) {
      throw ParseError("port file '" + port_file +
                       "' does not contain a port number");
    }
    port = *parsed;
  }
  serve::Client client(host, static_cast<std::uint16_t>(port));
  std::cout << client.request(require(args, "json")) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const io::ArgParser args(argc, argv);
    if (args.command() == "query") return cmd_query(args);
    if (args.command().empty() && args.option("listen").has_value()) {
      return cmd_serve(args);
    }
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "cosmicdanced: " << error.what() << "\n";
    return 1;
  }
}
