# Empty dependencies file for superstorm_replay.
# This may be replaced when dependencies are built.
