#include "spaceweather/historical.hpp"

namespace cosmicdance::spaceweather {

const std::vector<HistoricalStorm>& historical_storms() {
  static const std::vector<HistoricalStorm> storms = [] {
    std::vector<HistoricalStorm> s;
    auto add = [&s](std::string name, int y, int m, int d, double peak,
                    bool instrumental) {
      HistoricalStorm storm;
      storm.name = std::move(name);
      storm.date = timeutil::make_datetime(y, m, d);
      storm.peak_dst_nt = peak;
      storm.instrumental = instrumental;
      s.push_back(std::move(storm));
    };
    add("Carrington Event", 1859, 9, 1, -1800.0, false);
    add("New York Railroad Storm", 1921, 5, 15, -907.0, false);
    add("March 1989 (Quebec blackout)", 1989, 3, 13, -589.0, true);
    add("November 1991", 1991, 11, 9, -354.0, true);
    add("April 2000", 2000, 4, 6, -288.0, true);
    add("Bastille Day storm", 2000, 7, 15, -301.0, true);
    add("April 2001", 2001, 4, 11, -271.0, true);
    add("November 2001", 2001, 11, 5, -292.0, true);
    add("Halloween solar storm", 2003, 10, 30, -383.0, true);
    add("May 2024 super-storm", 2024, 5, 10, -412.0, true);
    return s;
  }();
  return storms;
}

std::vector<HistoricalStorm> fig8_storms() {
  std::vector<HistoricalStorm> out;
  for (const HistoricalStorm& storm : historical_storms()) {
    if (storm.instrumental) out.push_back(storm);
  }
  return out;
}

}  // namespace cosmicdance::spaceweather
