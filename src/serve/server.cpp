#include "serve/server.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace cosmicdance::serve {
namespace {

/// Write the whole buffer, riding out partial sends.  MSG_NOSIGNAL turns a
/// dead peer into an error return instead of SIGPIPE.
bool send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Resolve host:port for bind (passive=true) or connect.  Throws IoError
/// when resolution fails; the caller owns the returned list.
addrinfo* resolve(const std::string& host, std::uint16_t port, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  const std::string service = std::to_string(port);
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &result);
  if (rc != 0) {
    throw IoError("cannot resolve " + host + ":" + service + ": " +
                  ::gai_strerror(rc));
  }
  return result;
}

std::uint16_t bound_port(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw IoError("getsockname failed: " + std::string(std::strerror(errno)));
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  throw IoError("unexpected socket family from getsockname");
}

constexpr std::string_view kFramingErrorPayload =
    "{\"ok\":false,\"error\":\"framing error: length prefix exceeds the "
    "frame ceiling\"}";

}  // namespace

Server::Server(Service& service, std::string host, std::uint16_t port)
    : service_(service), host_(std::move(host)), requested_port_(port) {}

Server::~Server() { shutdown(); }

void Server::start() {
  addrinfo* addrs = resolve(host_, requested_port_, /*passive=*/true);
  int fd = -1;
  std::string last_error = "no addresses resolved";
  for (addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, a->ai_addr, a->ai_addrlen) == 0 && ::listen(fd, 64) == 0) {
      break;
    }
    last_error = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addrs);
  if (fd < 0) {
    throw IoError("cannot listen on " + host_ + ":" +
                  std::to_string(requested_port_) + ": " + last_error);
  }
  listen_fd_.store(fd);
  port_ = bound_port(fd);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed by shutdown() (or a hard accept failure): stop.
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    open_fds_.insert(fd);
    workers_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  FrameReader reader;
  char buffer[4096];
  bool close_connection = false;
  while (!close_connection) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed, connection reset, or shutdown() unblocked us
    }
    reader.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    while (auto payload = reader.next()) {
      const HandleResult result = service_.handle(*payload);
      if (!send_all(fd, encode_frame(result.response))) {
        close_connection = true;
        break;
      }
      if (result.shutdown) {
        request_shutdown();
        close_connection = true;
        break;
      }
    }
    if (reader.error()) {
      // One clean error frame, then hang up: a byte-exact stream cannot be
      // resynchronised after a bad length prefix.
      send_all(fd, encode_frame(kFramingErrorPayload));
      close_connection = true;
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mutex_);
  open_fds_.erase(fd);
}

void Server::request_shutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  shutdown_requested_ = true;
  cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return shutdown_requested_ || stopping_; });
}

void Server::shutdown() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Second call: nothing left to join (first call took the threads).
      shutdown_requested_ = true;
      cv_.notify_all();
    } else {
      stopping_ = true;
      shutdown_requested_ = true;
      cv_.notify_all();
      // Unblock every connection thread stuck in recv().
      for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
      workers = std::move(workers_);
      workers_.clear();
    }
  }
  // Retire the listener exactly once even with concurrent shutdown()
  // callers; ::shutdown makes the blocked accept() fail so the accept
  // thread exits.
  const int listener = listen_fd_.exchange(-1);
  if (listener >= 0) {
    ::shutdown(listener, SHUT_RDWR);
    ::close(listener);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

Client::Client(const std::string& host, std::uint16_t port) {
  addrinfo* addrs = resolve(host, port, /*passive=*/false);
  std::string last_error = "no addresses resolved";
  for (addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    fd_ = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd_ < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    if (::connect(fd_, a->ai_addr, a->ai_addrlen) == 0) break;
    last_error = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
  }
  ::freeaddrinfo(addrs);
  if (fd_ < 0) {
    throw IoError("cannot connect to " + host + ":" + std::to_string(port) +
                  ": " + last_error);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::request(std::string_view payload) {
  if (!send_all(fd_, encode_frame(payload))) {
    throw IoError("connection lost while sending request");
  }
  char buffer[4096];
  for (;;) {
    if (auto response = reader_.next()) return *response;
    if (reader_.error()) {
      throw IoError("framing violation in server response");
    }
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw IoError("connection closed before a response arrived");
    }
    reader_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
}

}  // namespace cosmicdance::serve
