// The "happens closely after" correlator — the paper's central device.
//
// CosmicDance never claims causality outright: it orders solar events and
// trajectory events in time and aggregates what happens to satellites in a
// bounded window *closely after* each event, excluding satellites that were
// already decaying (circumstantial evidence, §5).
#pragma once

#include <span>
#include <vector>

#include "core/cleaning.hpp"
#include "core/track.hpp"
#include "spaceweather/dst_index.hpp"
#include "spaceweather/storms.hpp"

namespace cosmicdance::obs {
class Metrics;
}  // namespace cosmicdance::obs

namespace cosmicdance::core {

struct CorrelatorConfig {
  CleaningConfig cleaning;
  /// Post-event observation window (paper: 30 days for Fig 4a, 15 for 4b).
  double window_days = 30.0;
  /// The Fig 4a "affected" rule compares the window-median deviation against
  /// the endpoints; on top of that, the deviation must clear this floor so
  /// the strict-inequality test is not satisfied by tracker noise alone
  /// (implementation choice; the paper's CSpOC data has its own noise floor).
  double humped_min_excursion_km = 2.0;
  /// Worker count for the per-satellite correlation scans (0 = all hardware
  /// threads, 1 = serial).  Results are identical for every value — see the
  /// exec::parallel_for ordering contract.
  int num_threads = 1;
  /// Observability registry for the scans (cells evaluated/skipped, phase
  /// wall times); nullptr disables collection.  Mirrors
  /// PipelineConfig::metrics — the pipeline copies its handle here.
  obs::Metrics* metrics = nullptr;
};

/// Per-day post-event altitude-deviation envelope (Fig 4).
struct PostEventEnvelope {
  double event_jd = 0.0;
  int days = 0;
  std::vector<int> satellites;  ///< catalog numbers that passed selection
  /// per_satellite[s][d] = |altitude(day d) - pre-event altitude| (km), or
  /// NaN when the satellite has no sample on that day.
  std::vector<std::vector<double>> per_satellite;
  std::vector<double> median_km;  ///< per-day median across satellites
  std::vector<double> p95_km;    ///< per-day 95th percentile
};

/// How Fig 4a selects its satellites (paper wording): keep a satellite when
/// the median of its |altitude - long-term-median| over the window exceeds
/// both the deviation immediately after the event and the deviation at the
/// window's end (i.e. a humped, non-monotonic excursion; permanent decays
/// and unaffected satellites both fail this test).
enum class EnvelopeSelection {
  kAffectedHumped,  ///< Fig 4a rule above
  kAll,             ///< every satellite passing the pre-decay filter (Fig 4b)
};

class EventCorrelator {
 public:
  /// `dst` is non-owning and must outlive the correlator.
  EventCorrelator(const spaceweather::DstIndex* dst, CorrelatorConfig config = {});

  /// Post-event deviation envelope over `days` days after `event_jd`.
  [[nodiscard]] PostEventEnvelope post_event_envelope(
      std::span<const SatelliteTrack> tracks, double event_jd, int days,
      EnvelopeSelection selection) const;

  /// One sample per (event, satellite): the maximum |altitude - pre-event
  /// altitude| (km) within the window.  Pre-decayed satellites skipped.
  [[nodiscard]] std::vector<double> altitude_change_samples(
      std::span<const SatelliteTrack> tracks,
      std::span<const double> event_jds) const;

  /// One sample per (event, satellite): max B* in the window divided by the
  /// pre-event B* (the drag-change factor; 1 = unchanged).
  [[nodiscard]] std::vector<double> drag_change_samples(
      std::span<const SatelliteTrack> tracks,
      std::span<const double> event_jds) const;

  /// Peak-hour epochs (JD) of storms with peak at or below `max_peak_nt`.
  [[nodiscard]] std::vector<double> storm_event_epochs(double max_peak_nt) const;

  /// Storms with peak at or below `max_peak_nt`, partitioned by duration:
  /// first = events shorter than `split_hours`, second = the rest (Fig 6).
  [[nodiscard]] std::pair<std::vector<double>, std::vector<double>>
  storm_epochs_by_duration(double max_peak_nt, double split_hours) const;

  /// Deterministically-sampled quiet epochs ("epoch set with no storms
  /// around", Fig 5a): the hour's own Dst stays above `min_dst_nt` (e.g.
  /// the 80th-ptile threshold) and no hour within +-guard_days crosses the
  /// minor-storm threshold (-50 nT).
  [[nodiscard]] std::vector<double> quiet_epochs(double min_dst_nt,
                                                 std::size_t count,
                                                 double guard_days = 2.0) const;

  [[nodiscard]] const CorrelatorConfig& config() const noexcept { return config_; }

 private:
  const spaceweather::DstIndex* dst_;
  CorrelatorConfig config_;
};

}  // namespace cosmicdance::core
