file(REMOVE_RECURSE
  "CMakeFiles/timeutil_test.dir/timeutil_test.cpp.o"
  "CMakeFiles/timeutil_test.dir/timeutil_test.cpp.o.d"
  "timeutil_test"
  "timeutil_test.pdb"
  "timeutil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeutil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
