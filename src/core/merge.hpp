// Multi-modal time alignment ("Ordering in time", paper §3): annotate each
// trajectory sample with the geomagnetic conditions at and before its epoch,
// producing the single merged representation the correlator's conclusions
// rest on — also handy for exporting joined datasets.
#pragma once

#include <span>
#include <vector>

#include "core/track.hpp"
#include "spaceweather/dst_index.hpp"
#include "spaceweather/gscale.hpp"

namespace cosmicdance::core {

/// One trajectory sample joined with its space-weather context.
struct AlignedSample {
  TrajectorySample sample;
  double dst_nt = 0.0;            ///< Dst of the epoch's hour (0 if uncovered)
  bool dst_available = false;
  double min_dst_24h_nt = 0.0;    ///< most negative Dst over the prior 24 h
  spaceweather::StormCategory category =
      spaceweather::StormCategory::kQuiet;  ///< classify(min_dst_24h)
};

/// Join one track against the Dst series.  Output order matches the track.
[[nodiscard]] std::vector<AlignedSample> align_track(
    const SatelliteTrack& track, const spaceweather::DstIndex& dst);

/// Pool aligned samples of many tracks, grouped by the storm category in
/// effect during the preceding 24 hours; returns per-category B* medians —
/// a compact "drag vs activity level" summary table.
struct CategoryDrag {
  spaceweather::StormCategory category = spaceweather::StormCategory::kQuiet;
  std::size_t samples = 0;
  double median_bstar = 0.0;
};

[[nodiscard]] std::vector<CategoryDrag> drag_by_category(
    std::span<const SatelliteTrack> tracks, const spaceweather::DstIndex& dst);

}  // namespace cosmicdance::core
