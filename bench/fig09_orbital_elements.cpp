// Fig 9: time series of the six orbital elements for the 43 satellites of
// Starlink launch L1 (2019-11-11).
//
// Paper shape: eccentricity ~0 throughout; altitude staged at ~360 km then
// raised to 550 km; inclination pinned at 53 deg; RAAN drifting steadily
// westward (J2); ARGP and mean anomaly consistent once operational.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"

using namespace cosmicdance;

int main() {
  auto config = simulation::scenario::launch_l1(nullptr);
  auto run = simulation::ConstellationSimulator(config).run();
  const core::CosmicDance pipeline(spaceweather::DstIndex(
                                       timeutil::make_datetime(2019, 11, 1),
                                       std::vector<double>(24 * 420, -11.0)),
                                   std::move(run.catalog));
  // Fig 9 needs the raw tracks: the orbit-raising window is the point.
  const auto tracks = pipeline.raw_tracks();

  io::print_heading(std::cout,
                    "Fig 9: L1 batch (43 satellites), monthly element medians");
  // Batch medians for the scalar elements; the angular elements (RAAN,
  // ARGP, mean anomaly) follow one reference satellite — Fig 9 plots the
  // per-satellite curves, and a pooled median of drifting angles wraps
  // meaninglessly.
  const core::SatelliteTrack* reference = nullptr;
  for (const auto& track : tracks) {
    if (track.catalog_number() == 44713) reference = &track;
  }
  io::TablePrinter table({"month", "alt_km", "incl_deg", "ecc", "44713_raan",
                          "44713_argp", "44713_manom", "tles"});
  const double start = timeutil::to_julian(timeutil::make_datetime(2019, 11, 11));
  const double end = timeutil::to_julian(timeutil::make_datetime(2020, 12, 31));
  for (double month = start; month < end; month += 30.0) {
    std::vector<double> altitude, inclination, eccentricity;
    for (const auto& track : tracks) {
      for (const auto& sample : track.between(month, month + 30.0)) {
        if (sample.altitude_km > 650.0) continue;  // gross tracking errors
        altitude.push_back(sample.altitude_km);
        inclination.push_back(sample.inclination_deg);
        eccentricity.push_back(sample.eccentricity);
      }
    }
    if (altitude.empty()) continue;
    std::string raan = "-";
    std::string argp = "-";
    std::string anomaly = "-";
    if (reference != nullptr) {
      const auto window = reference->between(month, month + 30.0);
      if (!window.empty()) {
        raan = io::TablePrinter::num(window.front().raan_deg, 1);
        argp = io::TablePrinter::num(window.front().arg_perigee_deg, 1);
        anomaly = io::TablePrinter::num(window.front().mean_anomaly_deg, 1);
      }
    }
    table.add_row({timeutil::from_julian(month).to_string().substr(0, 7),
                   io::TablePrinter::num(stats::median(altitude), 1),
                   io::TablePrinter::num(stats::median(inclination), 3),
                   io::TablePrinter::num(stats::median(eccentricity), 5), raan,
                   argp, anomaly, std::to_string(altitude.size())});
  }
  table.print(std::cout);

  bench::note("shape check: altitude 360 -> 550 km over the raising months;");
  bench::note("inclination ~53 deg and ecc ~0 throughout; the reference");
  bench::note("satellite's RAAN drifts continuously westward (J2).");
  return 0;
}
