// Two-Line Element set parsing and formatting (NORAD/CSpOC format).
//
// TLEs are the only trajectory observable the paper's pipeline consumes, so
// this module is deliberately strict: fixed columns, verified checksums,
// and symmetric parse/format so a round trip is bit-exact for valid data.
//
// Line 1: 1 NNNNNC IIIIIIII YYDDD.DDDDDDDD +.NNNNNNNN +NNNNN-N +NNNNN-N N NNNNC
// Line 2: 2 NNNNN III.IIII RRR.RRRR EEEEEEE PPP.PPPP AAA.AAAA MM.MMMMMMMMRRRRRC
#pragma once

#include <string>
#include <string_view>

#include "timeutil/datetime.hpp"

namespace cosmicdance::tle {

/// One parsed TLE record.  Angles in degrees and mean motion in rev/day,
/// exactly as the format carries them; conversion helpers live in cd_orbit.
struct Tle {
  int catalog_number = 0;                ///< NORAD catalog number (1..99999)
  char classification = 'U';             ///< U/C/S
  std::string international_designator;  ///< e.g. "19074A" (cols 10-17, trimmed)

  double epoch_jd = 0.0;                 ///< UTC Julian date of the element epoch

  double mean_motion_dot = 0.0;   ///< ndot/2, rev/day^2 (line-1 field as-is)
  double mean_motion_ddot = 0.0;  ///< nddot/6, rev/day^3 (line-1 field as-is)
  double bstar = 0.0;             ///< B* drag term, 1/earth-radii
  int ephemeris_type = 0;
  int element_set_number = 0;

  double inclination_deg = 0.0;
  double raan_deg = 0.0;
  double eccentricity = 0.0;
  double arg_perigee_deg = 0.0;
  double mean_anomaly_deg = 0.0;
  double mean_motion_revday = 0.0;
  int rev_number = 0;

  /// Epoch as civil UTC time.
  [[nodiscard]] timeutil::DateTime epoch_datetime() const;

  /// The paper's altitude proxy: altitude (km) derived from mean motion.
  [[nodiscard]] double altitude_km() const;

  /// Throws ValidationError when fields are outside format limits.
  void validate() const;
};

/// TLE line checksum: sum of digits plus one per '-', modulo 10.
[[nodiscard]] int checksum(std::string_view line);

/// Parse a TLE from its two lines.  Verifies line numbers, column layout,
/// matching catalog numbers and checksums.  Throws ParseError on failure.
/// Takes views so the zero-copy ingestion path can pass slices of a file
/// mapping; no per-field strings are allocated on the success path.
[[nodiscard]] Tle parse_tle(std::string_view line1, std::string_view line2);

/// Format a TLE as its two 69-character lines (with valid checksums).
struct TleLines {
  std::string line1;
  std::string line2;
};
[[nodiscard]] TleLines format_tle(const Tle& tle);

}  // namespace cosmicdance::tle
