#include "atmosphere/drag.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cosmicdance::atmosphere {

double ballistic_coefficient(double drag_coefficient, double area_m2, double mass_kg) {
  if (mass_kg <= 0.0) throw ValidationError("mass must be positive");
  if (area_m2 <= 0.0) throw ValidationError("area must be positive");
  if (drag_coefficient <= 0.0) throw ValidationError("Cd must be positive");
  return drag_coefficient * area_m2 / mass_kg;
}

double drag_acceleration_ms2(double density_kg_m3, double speed_ms,
                             double ballistic_m2_kg) noexcept {
  return 0.5 * density_kg_m3 * speed_ms * speed_ms * ballistic_m2_kg;
}

double circular_decay_rate_km_per_day(double altitude_km, double density_kg_m3,
                                      double ballistic_m2_kg,
                                      const orbit::GravityModel& g) {
  if (altitude_km < -g.radius_earth_km) {
    throw ValidationError("altitude below Earth's center");
  }
  const double a_m = (altitude_km + g.radius_earth_km) * 1000.0;
  const double mu_m = g.mu * 1e9;  // km^3/s^2 -> m^3/s^2
  const double da_dt_ms = -std::sqrt(mu_m * a_m) * density_kg_m3 * ballistic_m2_kg;
  return da_dt_ms * units::kSecondsPerDay / 1000.0;  // m/s -> km/day
}

double bstar_from_ballistic(double ballistic_m2_kg, double density_ratio) noexcept {
  return 0.5 * kBstarReferenceDensity * ballistic_m2_kg * density_ratio;
}

double ballistic_from_bstar(double bstar) noexcept {
  return 2.0 * bstar / kBstarReferenceDensity;
}

}  // namespace cosmicdance::atmosphere
