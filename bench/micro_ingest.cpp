// Microbenchmarks over the ingestion fast path (DESIGN.md §13): the legacy
// slurp-into-string parse, the zero-copy mmap parse, and the binary snapshot
// load that skips text parsing entirely.  The three rates printed side by
// side are the cold/warm start story in one screen.
//
// Supplies its own main(): after the google-benchmark suite runs, an
// instrumented cold → warm → append → delta-warm sequence of
// CosmicDance::from_files passes collects cd_obs telemetry and writes a
// machine-readable record.  The warm pass must hit the snapshot cache
// (`ingest.cache_hit` == 1) and the delta-warm pass — after a few records
// are appended — must parse only the tail (`ingest.delta_hit` == 1 with
// `delta_tail_fraction` well under 5%); tier-1 asserts on all three, and
// tools/bench_compare.py diffs the throughput keys between runs:
//
//   ./micro_ingest [--benchmark_filter=RE] [--bench-out F] [--threads N]
//
// Default output: BENCH_ingest.json in the working directory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "io/snapshot.hpp"
#include "spaceweather/wdc.hpp"
#include "timeutil/datetime.hpp"
#include "tle/catalog.hpp"
#include "tle/tle.hpp"

namespace {

using namespace cosmicdance;

/// The bench dataset written to disk once: the paper-window Dst series in
/// WDC format plus a bench-scale catalog in TLE text, the same shapes the
/// CLI ingests.  Lives under the system temp directory.
struct BenchDataset {
  std::string dir;
  std::string dst_path;
  std::string tle_path;
  std::size_t records = 0;
};

const BenchDataset& shared_dataset() {
  static const BenchDataset dataset = [] {
    BenchDataset built;
    built.dir =
        (std::filesystem::temp_directory_path() / "cd_micro_ingest").string();
    std::filesystem::create_directories(built.dir);
    const spaceweather::DstIndex dst = bench::paper_dst();
    const tle::TleCatalog catalog = bench::paper_catalog(dst, 2, 30.0);
    built.records = catalog.record_count();
    built.dst_path = built.dir + "/dst.wdc";
    built.tle_path = built.dir + "/catalog.tle";
    spaceweather::write_wdc_file(built.dst_path, dst);
    io::write_file(built.tle_path, catalog.to_text());
    return built;
  }();
  return dataset;
}

/// A snapshot of the bench dataset, written once through the public cache
/// path so BM_SnapshotLoad measures exactly what a warm CLI run reads.
const std::string& shared_snapshot_path() {
  static const std::string path = [] {
    const BenchDataset& data = shared_dataset();
    const std::string cache_dir = data.dir + "/bench_cache";
    std::filesystem::remove_all(cache_dir);
    core::PipelineConfig config;
    config.num_threads = 1;
    config.cache_dir = cache_dir;
    const core::CosmicDance pipeline =
        core::CosmicDance::from_files(data.dst_path, data.tle_path, config);
    benchmark::DoNotOptimize(pipeline.catalog().record_count());
    return io::snapshot_cache_path(cache_dir, data.dst_path, data.tle_path);
  }();
  return path;
}

/// The pre-PR shape: read the whole file into an owning std::string, then
/// parse.  Kept as the baseline the zero-copy numbers are judged against.
void BM_ColdParseReadFile(benchmark::State& state) {
  const BenchDataset& data = shared_dataset();
  for (auto _ : state) {
    const std::string text = io::read_file(data.tle_path);
    tle::TleCatalog catalog;
    benchmark::DoNotOptimize(catalog.add_from_text(text));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.records));
}
BENCHMARK(BM_ColdParseReadFile);

/// The fast path: mmap the file and parse string_view slices in place.
void BM_ZeroCopyMmapParse(benchmark::State& state) {
  const BenchDataset& data = shared_dataset();
  for (auto _ : state) {
    const io::MappedFile mapped(data.tle_path);
    tle::TleCatalog catalog;
    benchmark::DoNotOptimize(catalog.add_from_text(mapped.view()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.records));
}
BENCHMARK(BM_ZeroCopyMmapParse);

/// The warm path: deserialise the binary snapshot, no text parsing at all.
void BM_SnapshotLoad(benchmark::State& state) {
  const BenchDataset& data = shared_dataset();
  const std::string& path = shared_snapshot_path();
  for (auto _ : state) {
    auto snapshot = io::load_snapshot(path, diag::ParsePolicy::kStrict);
    benchmark::DoNotOptimize(snapshot);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.records));
}
BENCHMARK(BM_SnapshotLoad);

/// A handful of fresh TLE records to append to the telemetry dataset —
/// catalog numbers far above the simulated constellation's so the delta
/// pass genuinely extends the catalog instead of dropping duplicates.
std::string appended_tle_tail() {
  std::string tail;
  for (int i = 0; i < 4; ++i) {
    tle::Tle record;
    record.catalog_number = 90001 + i;
    record.international_designator = "24999A";
    record.epoch_jd =
        timeutil::to_julian(timeutil::make_datetime(2024, 4, 1)) + 0.25 * i;
    record.bstar = 1.0e-4;
    record.inclination_deg = 53.0;
    record.raan_deg = 45.0;
    record.eccentricity = 0.0003;
    record.arg_perigee_deg = 10.0;
    record.mean_anomaly_deg = 20.0;
    record.mean_motion_revday = 15.1;
    record.element_set_number = 1;
    record.rev_number = 1;
    const tle::TleLines lines = tle::format_tle(record);
    tail += lines.line1 + "\n" + lines.line2 + "\n";
  }
  return tail;
}

/// The telemetry pass: cold → warm → append → delta-warm from_files runs
/// against a fresh cache directory, sharing one metrics registry.  The cold
/// run parses text and writes the snapshot (snapshot.written == 1); the
/// warm run must load it (ingest.cache_hit == 1); the delta-warm run, after
/// a few records are appended, must parse only the tail (ingest.delta_hit
/// == 1, with throughput key `delta_tail_fraction` ≪ 1) — the counters
/// tier-1 asserts on.
void run_telemetry_pass(const std::string& out_path, int threads) {
  const BenchDataset& data = shared_dataset();
  obs::Metrics metrics;

  // Private copies of the inputs: the delta leg appends to them, and the
  // google-benchmark fixtures above must keep seeing the pristine files.
  const std::string dst_path = data.dir + "/telemetry_dst.wdc";
  const std::string tle_path = data.dir + "/telemetry_catalog.tle";
  io::write_file(dst_path, io::read_file(data.dst_path));
  io::write_file(tle_path, io::read_file(data.tle_path));

  core::PipelineConfig config;
  config.num_threads = threads;
  config.metrics = &metrics;
  config.cache_dir = data.dir + "/telemetry_cache";
  std::filesystem::remove_all(config.cache_dir);

  core::CosmicDance cold =
      core::CosmicDance::from_files(dst_path, tle_path, config);
  // The cold pass writes its snapshot on a background thread; join it so
  // the warm pass below is guaranteed to find the cache populated.
  cold.wait_for_snapshot_save();
  const core::CosmicDance warm =
      core::CosmicDance::from_files(dst_path, tle_path, config);

  const std::string tail = appended_tle_tail();
  io::append_file(tle_path, tail);
  const core::CosmicDance delta_warm =
      core::CosmicDance::from_files(dst_path, tle_path, config);
  const double total_bytes =
      static_cast<double>(std::filesystem::file_size(dst_path)) +
      static_cast<double>(std::filesystem::file_size(tle_path));

  // The two headline rates are tier-1-gated (cold ≥ 2x its PR 9 baseline,
  // warm ≥ 3x cold), so they come from the *fastest* of three dedicated
  // repetitions rather than the single instrumented pass above: on a busy
  // CI box one wall-clock sample swings by tens of percent, and min-of-
  // reps is the standard way to estimate the machine's actual capability.
  // The phase timings in the metrics dump still describe the single
  // cold -> warm -> delta sequence.
  const auto best_seconds = [](auto&& run) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      run();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      best = rep == 0 ? elapsed.count() : std::min(best, elapsed.count());
    }
    return best;
  };

  std::map<std::string, double> throughput;
  const io::MappedFile tle_mapped(data.tle_path);
  std::size_t parsed_records = 0;
  const double parse_s = best_seconds([&] {
    diag::ParseLog rep_log(config.parse_policy);
    tle::TleCatalog rep_catalog;
    tle::IngestOptions options;
    options.log = &rep_log;
    options.num_threads = threads;
    rep_catalog.add_from_text(tle_mapped.view(), options);
    parsed_records = rep_catalog.record_count();
  });
  if (parse_s > 0.0) {
    throughput["tle_records_per_s"] =
        static_cast<double>(parsed_records) / parse_s;
  }
  const std::string snapshot_path =
      io::snapshot_cache_path(config.cache_dir, dst_path, tle_path);
  std::size_t loaded_records = 0;
  const double load_s = best_seconds([&] {
    const auto loaded =
        io::load_snapshot(snapshot_path, config.parse_policy, nullptr, threads);
    loaded_records = loaded.has_value() ? loaded->catalog.record_count() : 0;
  });
  if (load_s > 0.0 && loaded_records > 0) {
    throughput["snapshot_records_per_s"] =
        static_cast<double>(loaded_records) / load_s;
  }
  throughput["catalog_records"] =
      static_cast<double>(cold.catalog().record_count());
  throughput["delta_appended_records"] =
      static_cast<double>(delta_warm.catalog().record_count() -
                          warm.catalog().record_count());
  // The headline incremental-ingestion ratio: bytes the delta-warm run had
  // to parse over bytes it would have parsed from scratch.
  throughput["delta_tail_fraction"] =
      static_cast<double>(tail.size()) / total_bytes;

  bench::write_bench_record(out_path, "micro_ingest", threads,
                            "paper_catalog(per_batch=2, cadence=30)",
                            throughput, metrics);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const io::ArgParser args(argc, argv);
  run_telemetry_pass(args.option_or("bench-out", "BENCH_ingest.json"),
                     static_cast<int>(args.nonnegative_integer_or("threads", 0)));
  return 0;
}
