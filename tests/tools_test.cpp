// Tests for the CLI-supporting components: argument parsing and CSV export.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/export.hpp"
#include "io/args.hpp"
#include "io/parse.hpp"
#include "timeutil/datetime.hpp"

namespace cosmicdance {
namespace {

using io::ArgParser;

TEST(ArgsTest, CommandAndPositionals) {
  const ArgParser args({"analyze", "extra1", "extra2"});
  EXPECT_EQ(args.command(), "analyze");
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "extra1");
}

TEST(ArgsTest, OptionsWithValues) {
  const ArgParser args({"simulate", "--dst", "d.wdc", "--seed", "42"});
  EXPECT_EQ(args.option_or("dst", "x"), "d.wdc");
  EXPECT_EQ(args.integer_or("seed", 0), 42);
  EXPECT_FALSE(args.option("missing").has_value());
  EXPECT_EQ(args.option_or("missing", "fallback"), "fallback");
}

TEST(ArgsTest, FlagsWithoutValues) {
  const ArgParser args({"cmd", "--verbose", "--out", "f.csv"});
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_FALSE(args.option("verbose").has_value());
  EXPECT_TRUE(args.flag("out"));
  EXPECT_EQ(args.option_or("out", ""), "f.csv");
  EXPECT_FALSE(args.flag("absent"));
}

TEST(ArgsTest, TrailingFlag) {
  const ArgParser args({"cmd", "--dry-run"});
  EXPECT_TRUE(args.flag("dry-run"));
}

TEST(ArgsTest, NumberParsing) {
  const ArgParser args({"cmd", "--threshold", "-63.5", "--count", "7"});
  EXPECT_DOUBLE_EQ(args.number_or("threshold", 0.0), -63.5);
  EXPECT_EQ(args.integer_or("count", 0), 7);
  EXPECT_DOUBLE_EQ(args.number_or("absent", 1.5), 1.5);
}

TEST(ArgsTest, NumberErrors) {
  const ArgParser args({"cmd", "--threshold", "abc"});
  EXPECT_THROW((void)args.number_or("threshold", 0.0), ParseError);
  EXPECT_THROW((void)args.integer_or("threshold", 0), ParseError);
}

TEST(ArgsTest, NegativeNumbersAreValuesNotOptions) {
  // "-63" does not start with "--", so it is consumed as a value.
  const ArgParser args({"cmd", "--threshold", "-63"});
  EXPECT_DOUBLE_EQ(args.number_or("threshold", 0.0), -63.0);
}

TEST(ArgsTest, CheckKnownCatchesTypos) {
  const ArgParser args({"cmd", "--outt", "f"});
  EXPECT_THROW(args.check_known({"out"}), ParseError);
  EXPECT_NO_THROW(args.check_known({"outt"}));
}

TEST(ArgsTest, RejectsBareDoubleDash) {
  EXPECT_THROW(ArgParser({"cmd", "--"}), ParseError);
}

TEST(ArgsTest, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"prog", "storms", "--dst", "d.wdc"};
  const ArgParser args(4, argv);
  EXPECT_EQ(args.command(), "storms");
  EXPECT_EQ(args.option_or("dst", ""), "d.wdc");
}

// ------------------------------- export -------------------------------------

TEST(ExportTest, EcdfCsvShape) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  const auto rows = core::ecdf_csv(stats::Ecdf(sample), "alt_km", 10);
  ASSERT_GE(rows.size(), 3u);
  EXPECT_EQ(rows[0], (io::CsvRow{"alt_km", "cdf"}));
  EXPECT_EQ(rows.back()[1], "1");
  // Parse-back sanity: values are numeric and monotone.
  double previous = -1e9;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto x = io::parse_double(rows[i][0]);
    ASSERT_TRUE(x.has_value()) << "non-numeric CSV cell: " << rows[i][0];
    EXPECT_GE(*x, previous);
    previous = *x;
  }
}

TEST(ExportTest, StormsCsv) {
  spaceweather::StormEvent event;
  event.start_hour = timeutil::hour_index_from_datetime(
      timeutil::make_datetime(2023, 4, 23, 19));
  event.end_hour = event.start_hour + 17;
  event.peak_hour = event.start_hour + 5;
  event.peak_dst_nt = -213.0;
  event.category = spaceweather::StormCategory::kSevere;
  const auto rows = core::storms_csv(std::vector<spaceweather::StormEvent>{event});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][2], "-213");
  EXPECT_EQ(rows[1][3], "severe");
  EXPECT_EQ(rows[1][4], "17");
  EXPECT_NE(rows[1][0].find("2023-04-23"), std::string::npos);
}

TEST(ExportTest, EnvelopeCsvHandlesNan) {
  core::PostEventEnvelope envelope;
  envelope.days = 2;
  envelope.satellites = {45001};
  envelope.per_satellite = {{1.5, std::nan("")}};
  envelope.median_km = {1.5, std::nan("")};
  envelope.p95_km = {1.5, std::nan("")};
  const auto rows = core::envelope_csv(envelope);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].back(), "sat_45001");
  EXPECT_EQ(rows[1][1], "1.5");
  EXPECT_EQ(rows[2][1], "");  // NaN -> empty cell
}

TEST(ExportTest, PanelCsv) {
  core::SuperstormPanelRow row;
  row.day_jd = timeutil::to_julian(timeutil::make_datetime(2024, 5, 10));
  row.dst_min_nt = -409.0;
  row.bstar_median = 3.2e-4;
  row.tracked_satellites = 1200;
  row.tle_count = 2400;
  const auto rows = core::panel_csv(std::vector<core::SuperstormPanelRow>{row});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "-409");
  EXPECT_EQ(rows[1][5], "1200");
}

TEST(ExportTest, TimelineCsv) {
  core::TrackTimeline timeline;
  timeline.catalog_number = 44943;
  timeline.epoch_jd = {timeutil::to_julian(timeutil::make_datetime(2024, 3, 3))};
  timeline.altitude_km = {549.5};
  timeline.bstar = {2.5e-4};
  const auto rows = core::timeline_csv(timeline);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NE(rows[1][0].find("2024-03-03"), std::string::npos);
  EXPECT_EQ(rows[1][1], "549.5");
}

}  // namespace
}  // namespace cosmicdance
