file(REMOVE_RECURSE
  "CMakeFiles/tle_test.dir/tle_test.cpp.o"
  "CMakeFiles/tle_test.dir/tle_test.cpp.o.d"
  "tle_test"
  "tle_test.pdb"
  "tle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
