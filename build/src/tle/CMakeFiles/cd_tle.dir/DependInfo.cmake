
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tle/catalog.cpp" "src/tle/CMakeFiles/cd_tle.dir/catalog.cpp.o" "gcc" "src/tle/CMakeFiles/cd_tle.dir/catalog.cpp.o.d"
  "/root/repo/src/tle/omm.cpp" "src/tle/CMakeFiles/cd_tle.dir/omm.cpp.o" "gcc" "src/tle/CMakeFiles/cd_tle.dir/omm.cpp.o.d"
  "/root/repo/src/tle/store.cpp" "src/tle/CMakeFiles/cd_tle.dir/store.cpp.o" "gcc" "src/tle/CMakeFiles/cd_tle.dir/store.cpp.o.d"
  "/root/repo/src/tle/tle.cpp" "src/tle/CMakeFiles/cd_tle.dir/tle.cpp.o" "gcc" "src/tle/CMakeFiles/cd_tle.dir/tle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeutil/CMakeFiles/cd_timeutil.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/cd_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cd_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
