// Fig 2: distribution of storm durations per category.
// Paper: moderate median/p95/p99/max ~ 3 / 15.8 / 19.1 / 19 h;
//        mild ~ 3 / 17 / 24.7 / 29 h; the severe storm lasted 3 h.
#include <iostream>

#include "bench_common.hpp"
#include "io/table.hpp"
#include "spaceweather/storms.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"

using namespace cosmicdance;

int main() {
  const spaceweather::DstIndex dst = bench::paper_dst();
  const spaceweather::StormDetector detector;

  io::print_heading(std::cout, "Fig 2: storm duration distribution by category");
  io::TablePrinter table(
      {"category", "events", "median_h", "p95_h", "p99_h", "max_h"});
  for (const auto category :
       {spaceweather::StormCategory::kMinor, spaceweather::StormCategory::kModerate,
        spaceweather::StormCategory::kSevere}) {
    const auto durations = detector.durations_for_category(dst, category);
    if (durations.empty()) {
      table.add_row({spaceweather::to_string(category), "0"});
      continue;
    }
    const auto s = stats::summarize(durations);
    table.add_row({spaceweather::to_string(category), std::to_string(s.count),
                   io::TablePrinter::num(s.median, 1),
                   io::TablePrinter::num(s.p95, 1),
                   io::TablePrinter::num(s.p99, 1),
                   io::TablePrinter::num(s.max, 0)});
  }
  table.print(std::cout);

  io::print_heading(std::cout, "Duration CDF points (mild category)");
  const auto mild =
      detector.durations_for_category(dst, spaceweather::StormCategory::kMinor);
  const stats::Ecdf ecdf(mild);
  io::TablePrinter cdf({"duration_h", "cdf"});
  for (const auto& [x, f] : ecdf.points(15)) {
    cdf.add_row({io::TablePrinter::num(x, 0), io::TablePrinter::num(f, 3)});
  }
  cdf.print(std::cout);

  bench::note("paper reference: mild median ~3 h with a long tail to ~29 h;");
  bench::note("moderate median ~3 h, max ~19 h; one 3-hour severe storm.");
  return 0;
}
