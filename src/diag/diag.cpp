#include "diag/diag.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ostream>

namespace cosmicdance::diag {
namespace {

constexpr std::array<const char*, kErrorCategoryCount> kCategoryNames{
    "syntax", "checksum", "numeric", "range", "structure"};

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const char* to_string(ErrorCategory category) {
  return kCategoryNames[static_cast<std::size_t>(category)];
}

const char* to_string(ParsePolicy policy) {
  return policy == ParsePolicy::kStrict ? "strict" : "tolerant";
}

ParsePolicy parse_policy_from_string(const std::string& text) {
  if (text == "strict") return ParsePolicy::kStrict;
  if (text == "tolerant") return ParsePolicy::kTolerant;
  throw ParseError("unknown parse policy (want strict|tolerant): '" + text + "'");
}

std::size_t StageCounters::quarantined_total() const noexcept {
  std::size_t total = 0;
  for (const std::size_t n : quarantined) total += n;
  return total;
}

void StageCounters::merge(const StageCounters& other) noexcept {
  accepted += other.accepted;
  repaired += other.repaired;
  for (std::size_t i = 0; i < quarantined.size(); ++i) {
    quarantined[i] += other.quarantined[i];
  }
}

bool operator==(const StageCounters& a, const StageCounters& b) noexcept {
  return a.accepted == b.accepted && a.repaired == b.repaired &&
         a.quarantined == b.quarantined;
}

void ParseLog::accept(const std::string& stage, std::size_t count) {
  stages_[stage].accepted += count;
}

void ParseLog::repair(const std::string& stage, std::size_t count) {
  stages_[stage].repaired += count;
}

void ParseLog::reject(const std::string& stage, ErrorCategory category,
                      const std::string& raw_message, const std::string& snippet,
                      const RecordRef& where) {
  // Messages usually arrive as ParseError::what(), which already carries
  // the class prefix; drop it so located/rethrown messages don't stutter
  // ("parse error: file:3: [...] parse error: ...").
  constexpr const char* kPrefix = "parse error: ";
  const std::string message = raw_message.rfind(kPrefix, 0) == 0
                                  ? raw_message.substr(std::strlen(kPrefix))
                                  : raw_message;
  if (!tolerant()) {
    throw ParseError(where.source + ":" + std::to_string(where.line) + ": [" +
                         stage + "/" + to_string(category) + "] " + message +
                         (snippet.empty() ? std::string()
                                          : " near '" + snippet_of(snippet) + "'"),
                     category);
  }
  stages_[stage].quarantined[static_cast<std::size_t>(category)] += 1;
  quarantined_.push_back(QuarantinedRecord{stage, where.source, where.line,
                                           category, message,
                                           snippet_of(snippet)});
}

void ParseLog::merge(ParseLog&& other) {
  for (const auto& [stage, counters] : other.stages_) {
    stages_[stage].merge(counters);
  }
  quarantined_.insert(quarantined_.end(),
                      std::make_move_iterator(other.quarantined_.begin()),
                      std::make_move_iterator(other.quarantined_.end()));
  other.stages_.clear();
  other.quarantined_.clear();
}

DataQualityReport ParseLog::report() const {
  return DataQualityReport{policy_, stages_, quarantined_};
}

void DataQualityReport::merge(const DataQualityReport& other) {
  for (const auto& [stage, counters] : other.stages) {
    stages[stage].merge(counters);
  }
  quarantined.insert(quarantined.end(), other.quarantined.begin(),
                     other.quarantined.end());
}

std::size_t DataQualityReport::total_accepted() const noexcept {
  std::size_t total = 0;
  for (const auto& [stage, counters] : stages) total += counters.accepted;
  return total;
}

std::size_t DataQualityReport::total_repaired() const noexcept {
  std::size_t total = 0;
  for (const auto& [stage, counters] : stages) total += counters.repaired;
  return total;
}

std::size_t DataQualityReport::total_quarantined() const noexcept {
  std::size_t total = 0;
  for (const auto& [stage, counters] : stages) {
    total += counters.quarantined_total();
  }
  return total;
}

std::vector<std::vector<std::string>> DataQualityReport::quarantine_rows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(quarantined.size() + 1);
  rows.push_back({"stage", "source", "line", "category", "message", "snippet"});
  for (const QuarantinedRecord& record : quarantined) {
    rows.push_back({record.stage, record.source, std::to_string(record.line),
                    to_string(record.category), record.message, record.snippet});
  }
  return rows;
}

std::vector<std::vector<std::string>> DataQualityReport::summary_rows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(stages.size() + 1);
  std::vector<std::string> header{"stage", "accepted", "repaired", "quarantined"};
  for (const char* name : kCategoryNames) header.emplace_back(name);
  rows.push_back(std::move(header));
  for (const auto& [stage, counters] : stages) {
    std::vector<std::string> row{stage, std::to_string(counters.accepted),
                                 std::to_string(counters.repaired),
                                 std::to_string(counters.quarantined_total())};
    for (const std::size_t n : counters.quarantined) {
      row.push_back(std::to_string(n));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string DataQualityReport::to_json() const {
  std::string out = "{\n  \"policy\": \"";
  out += to_string(policy);
  out += "\",\n  \"stages\": {";
  bool first_stage = true;
  for (const auto& [stage, counters] : stages) {
    out += first_stage ? "\n" : ",\n";
    first_stage = false;
    out += "    \"" + json_escape(stage) + "\": {\"accepted\": " +
           std::to_string(counters.accepted) +
           ", \"repaired\": " + std::to_string(counters.repaired) +
           ", \"quarantined\": {";
    // Sequential appends: GCC 12's -Wrestrict misfires on the equivalent
    // "lit" + std::string(...) + ... chain here (PR 105651) under -O2.
    for (std::size_t i = 0; i < kErrorCategoryCount; ++i) {
      if (i > 0) out += ", ";
      out += '"';
      out += kCategoryNames[i];
      out += "\": ";
      out += std::to_string(counters.quarantined[i]);
    }
    out += "}}";
  }
  out += "\n  },\n  \"quarantined\": [";
  bool first_record = true;
  for (const QuarantinedRecord& record : quarantined) {
    out += first_record ? "\n" : ",\n";
    first_record = false;
    out += "    {\"stage\": \"" + json_escape(record.stage) + "\", \"source\": \"" +
           json_escape(record.source) +
           "\", \"line\": " + std::to_string(record.line) + ", \"category\": \"" +
           to_string(record.category) + "\", \"message\": \"" +
           json_escape(record.message) + "\", \"snippet\": \"" +
           json_escape(record.snippet) + "\"}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void DataQualityReport::print(std::ostream& out) const {
  out << "data quality (policy=" << to_string(policy)
      << "): " << total_accepted() << " accepted, " << total_repaired()
      << " repaired, " << total_quarantined() << " quarantined\n";
  for (const auto& [stage, counters] : stages) {
    out << "  " << stage << ": " << counters.accepted << " accepted, "
        << counters.repaired << " repaired, " << counters.quarantined_total()
        << " quarantined";
    if (counters.quarantined_total() > 0) {
      out << " (";
      bool first = true;
      for (std::size_t i = 0; i < kErrorCategoryCount; ++i) {
        if (counters.quarantined[i] == 0) continue;
        if (!first) out << ", ";
        first = false;
        out << kCategoryNames[i] << "=" << counters.quarantined[i];
      }
      out << ")";
    }
    out << "\n";
  }
  constexpr std::size_t kMaxShown = 10;
  const std::size_t shown = std::min(quarantined.size(), kMaxShown);
  for (std::size_t i = 0; i < shown; ++i) {
    const QuarantinedRecord& record = quarantined[i];
    out << "  quarantined " << record.source << ":" << record.line << " ["
        << record.stage << "/" << to_string(record.category) << "] "
        << record.message << "\n";
  }
  if (quarantined.size() > shown) {
    out << "  ... and " << (quarantined.size() - shown)
        << " more quarantined records (write --quality-report for the full list)\n";
  }
}

std::string snippet_of(const std::string& text, std::size_t max_length) {
  std::string out;
  out.reserve(std::min(text.size(), max_length + 3));
  for (const char c : text) {
    if (out.size() >= max_length) {
      out += "...";
      break;
    }
    out.push_back(c == '\n' || c == '\r' || c == '\t' ? ' ' : c);
  }
  return out;
}

}  // namespace cosmicdance::diag
