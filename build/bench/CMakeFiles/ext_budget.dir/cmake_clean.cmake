file(REMOVE_RECURSE
  "CMakeFiles/ext_budget.dir/ext_budget.cpp.o"
  "CMakeFiles/ext_budget.dir/ext_budget.cpp.o.d"
  "ext_budget"
  "ext_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
