#include "index.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "textscan.hpp"

namespace cdlint {
namespace {

using textscan::is_ident_char;
using textscan::match_forward;
using textscan::read_ident_at;
using textscan::read_ident_before;
using textscan::skip_ws;
using textscan::split_top_level;
using textscan::starts_with;
using textscan::trim;

const std::set<std::string>& mutex_types() {
  static const std::set<std::string> kTypes{
      "mutex",       "shared_mutex",          "recursive_mutex",
      "timed_mutex", "recursive_timed_mutex", "shared_timed_mutex"};
  return kTypes;
}

const std::set<std::string>& guard_types() {
  static const std::set<std::string> kTypes{"lock_guard", "unique_lock",
                                            "scoped_lock", "shared_lock"};
  return kTypes;
}

// Syscalls and sleeps that can park the calling thread.  `wait` is absent on
// purpose: a condition-variable wait *releases* the lock it is given.
const std::set<std::string>& blocking_callees() {
  static const std::set<std::string> kCalls{
      "read",    "pread",     "readv",   "write",   "pwrite",  "writev",
      "recv",    "recvfrom",  "recvmsg", "send",    "sendto",  "sendmsg",
      "accept",  "accept4",   "poll",    "ppoll",   "select",  "pselect",
      "connect", "sleep",     "usleep",  "nanosleep", "flock", "fsync",
      "fdatasync", "sleep_for", "sleep_until"};
  return kCalls;
}

// Member calls that mutate the receiver.  `add`, `fetch_add` and `store`
// are deliberately absent: commuting atomic bumps are the sanctioned obs
// counter idiom and are exempt from R9 anyway via AtomicDecl.
const std::set<std::string>& mutating_members() {
  static const std::set<std::string> kMembers{
      "push_back", "emplace_back", "push_front", "emplace_front",
      "insert",    "emplace",      "erase",      "clear",
      "resize",    "reserve",      "assign",     "append",
      "pop_back",  "pop_front"};
  return kMembers;
}

// Tokens that can precede an identifier without making it a declaration.
const std::set<std::string>& non_type_keywords() {
  static const std::set<std::string> kWords{
      "return", "throw",  "new",       "delete",   "else",     "do",
      "goto",   "break",  "continue",  "case",     "sizeof",   "co_return",
      "co_yield", "typedef", "using",  "namespace", "operator", "not",
      "and",    "or",     "if",        "while",    "switch",   "for"};
  return kWords;
}

bool is_ident(const std::string& s) {
  if (s.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(s[0])) != 0) return false;
  return std::all_of(s.begin(), s.end(), is_ident_char);
}

/// The declarator name following a complete type spelling that ends at
/// `offset` (just past `>` / the type token): skips `&`, `*`, `const`, and
/// returns the declared identifier, or "" when this is not a declaration.
std::string declarator_after(const std::string& text, std::size_t offset) {
  std::size_t pos = skip_ws(text, offset);
  while (pos < text.size() && (text[pos] == '&' || text[pos] == '*')) {
    pos = skip_ws(text, pos + 1);
  }
  std::string name = read_ident_at(text, pos);
  if (name == "const") {
    pos = skip_ws(text, pos + name.size());
    name = read_ident_at(text, pos);
  }
  if (!is_ident(name)) return {};
  const std::size_t after = skip_ws(text, pos + name.size());
  const char c = after < text.size() ? text[after] : '\0';
  // Declarations terminate or initialize; a ',' keeps multi-declarators and
  // function parameters, '(' / '{' are direct/brace initialization.
  if (c == ';' || c == '=' || c == ',' || c == ')' || c == '{' || c == '(') {
    return name;
  }
  return {};
}

void collect_declarations(const SourceFile& file, FileIndex& out) {
  const std::string& text = file.code_text();
  const std::vector<Token>& tokens = file.tokens();
  for (const Token& token : tokens) {
    if (file.two_chars_before(token) != "::") continue;
    if (mutex_types().count(token.text) > 0) {
      const std::string name =
          declarator_after(text, file.offset_of(token) + token.text.size());
      if (!name.empty()) out.mutexes.push_back({name, token.line});
      continue;
    }
    if (token.text == "atomic" && file.char_after(token) == '<') {
      const std::size_t open =
          skip_ws(text, file.offset_of(token) + token.text.size());
      const std::size_t close = match_forward(text, open, '<', '>');
      if (close == std::string::npos) continue;
      const std::string name = declarator_after(text, close + 1);
      if (!name.empty()) out.atomics.push_back({name, token.line});
      continue;
    }
    if (token.text == "vector" && file.char_after(token) == '<') {
      const std::size_t open =
          skip_ws(text, file.offset_of(token) + token.text.size());
      const std::size_t close = match_forward(text, open, '<', '>');
      if (close == std::string::npos) continue;
      if (trim(text.substr(open + 1, close - open - 1)) != "std::thread") {
        continue;
      }
      const std::string name = declarator_after(text, close + 1);
      if (!name.empty()) out.thread_vectors.push_back({name, token.line});
      continue;
    }
  }
}

void collect_threads(const SourceFile& file, FileIndex& out) {
  const std::string& text = file.code_text();
  const std::vector<Token>& tokens = file.tokens();
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.text == "thread" && file.two_chars_before(token) == "::") {
      const std::size_t after_type = file.offset_of(token) + token.text.size();
      const char next = file.char_after(token);
      if (next == '(' || next == '{') {
        // `std::thread(...)` temporary: an immediate .join()/.detach() is a
        // decision; an `x = std::thread(...)` assignment names a target.
        const std::size_t open = skip_ws(text, after_type);
        const std::size_t close =
            match_forward(text, open, text[open], next == '(' ? ')' : '}');
        if (close == std::string::npos) continue;
        if (trim(text.substr(open + 1, close - open - 1)).empty()) {
          continue;  // std::thread() default-construct: no thread yet
        }
        // Look backwards past "std::" for an assignment target.
        std::size_t before = file.offset_of(token);
        if (before >= 5 && text.compare(before - 5, 5, "std::") == 0) {
          before -= 5;
        }
        std::size_t p = before;
        while (p > 0 &&
               std::isspace(static_cast<unsigned char>(text[p - 1])) != 0) {
          --p;
        }
        if (p > 0 && text[p - 1] == '=' && (p < 2 || text[p - 2] != '=') &&
            (p < 2 || std::string("<>!+-*/%&|^").find(text[p - 2]) ==
                          std::string::npos)) {
          const std::string target = read_ident_before(text, p - 1);
          if (is_ident(target)) {
            out.spawns.push_back(
                {target, token.line, file.normalized_raw(token.line)});
            continue;
          }
        }
        std::size_t tail = skip_ws(text, close + 1);
        if (tail < text.size() && text[tail] == '.') {
          const std::string member = read_ident_at(text, tail + 1);
          if (member == "join" || member == "detach") continue;  // decided
        }
        out.spawns.push_back(
            {"<temporary>", token.line, file.normalized_raw(token.line)});
        continue;
      }
      if (is_ident_char(next) || next == '\0') {
        // `std::thread name(...)` / `std::thread name{...}` declaration — a
        // spawn when constructed with arguments, a mere declaration if not.
        const std::size_t name_pos = skip_ws(text, after_type);
        const std::string name = read_ident_at(text, name_pos);
        if (!is_ident(name)) continue;
        const std::size_t open = skip_ws(text, name_pos + name.size());
        const char c = open < text.size() ? text[open] : '\0';
        if (c != '(' && c != '{') continue;
        const std::size_t close =
            match_forward(text, open, c, c == '(' ? ')' : '}');
        if (close == std::string::npos) continue;
        if (trim(text.substr(open + 1, close - open - 1)).empty()) continue;
        out.spawns.push_back(
            {name, token.line, file.normalized_raw(token.line)});
      }
      continue;
    }
    if ((token.text == "join" || token.text == "detach") && i > 0 &&
        file.char_after(token) == '(') {
      const char before = file.char_before(token);
      if (before == '.' || file.two_chars_before(token) == "->") {
        out.joins.push_back({tokens[i - 1].text, token.line});
      }
      continue;
    }
    if ((token.text == "emplace_back" || token.text == "push_back") && i > 0 &&
        file.char_after(token) == '(' && file.char_before(token) == '.') {
      out.pending_spawns.push_back(
          {tokens[i - 1].text, token.line, file.normalized_raw(token.line)});
      continue;
    }
  }

  // Aliases.  Move: `to = std::move(from)` with a lone-identifier argument.
  std::size_t pos = 0;
  while ((pos = text.find("std::move(", pos)) != std::string::npos) {
    const std::size_t open = pos + 9;
    const std::size_t arg = skip_ws(text, open + 1);
    const std::string from = read_ident_at(text, arg);
    const std::size_t after_arg = skip_ws(text, arg + from.size());
    if (is_ident(from) && after_arg < text.size() && text[after_arg] == ')') {
      std::size_t p = pos;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(text[p - 1])) != 0) {
        --p;
      }
      if (p > 0 && text[p - 1] == '=' && (p < 2 || text[p - 2] != '=') &&
          (p < 2 || std::string("<>!+-*/%&|^").find(text[p - 2]) ==
                        std::string::npos)) {
        const std::string to = read_ident_before(text, p - 1);
        // Skip member chains (`a.b = ...`): `to` must be a plain name.
        std::size_t lhs_end = p - 1;
        while (lhs_end > 0 &&
               std::isspace(static_cast<unsigned char>(text[lhs_end - 1])) !=
                   0) {
          --lhs_end;
        }
        const std::size_t lhs_begin = lhs_end - to.size();
        const char lhs_before = lhs_begin > 0 ? text[lhs_begin - 1] : '\0';
        if (is_ident(to) && lhs_before != '.' && lhs_before != '>') {
          out.move_aliases.push_back({from, to});
        }
      }
    }
    pos += 10;
  }

  // Range: `for (T& var : range)` with a lone-identifier range expression.
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.text != "for" || file.char_after(token) != '(') continue;
    const std::size_t open =
        skip_ws(text, file.offset_of(token) + token.text.size());
    const std::size_t close = match_forward(text, open, '(', ')');
    if (close == std::string::npos) continue;
    const std::string inside = text.substr(open + 1, close - open - 1);
    // Find a top-level ':' that is not part of '::'.
    int depth = 0;
    std::size_t colon = std::string::npos;
    for (std::size_t k = 0; k < inside.size(); ++k) {
      const char c = inside[k];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      else if (c == ':' && depth == 0) {
        const bool part_of_scope =
            (k + 1 < inside.size() && inside[k + 1] == ':') ||
            (k > 0 && inside[k - 1] == ':');
        if (!part_of_scope) {
          colon = k;
          break;
        }
      }
    }
    if (colon == std::string::npos) continue;
    const std::string var = read_ident_before(inside, colon);
    const std::string range = trim(inside.substr(colon + 1));
    if (is_ident(var) && is_ident(range)) {
      out.range_aliases.push_back({var, range});
    }
  }
}

/// Walks the whole code view once with a brace-depth counter and a stack of
/// held locks, recording lock-graph edges and blocking-while-locked sites.
/// This is a textual scope model: a guard acquired at depth d is considered
/// released when depth drops below d, and a manual `.unlock()` pops its
/// mutex early.  Good enough for the straight-line guard style this tree
/// uses; the corpus pins the expected behaviour.
void collect_locks(const SourceFile& file, FileIndex& out) {
  const std::string& text = file.code_text();
  const std::vector<Token>& tokens = file.tokens();
  struct Held {
    std::string name;
    int depth = 0;
  };
  std::vector<Held> held;
  int depth = 0;
  std::size_t ti = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    while (ti < tokens.size() && file.offset_of(tokens[ti]) < i) ++ti;
    const char c = text[i];
    if (c == '{') {
      ++depth;
      continue;
    }
    if (c == '}') {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      continue;
    }
    if (ti >= tokens.size() || file.offset_of(tokens[ti]) != i) continue;
    const Token& token = tokens[ti];
    const std::size_t end = i + token.text.size();
    i = end - 1;
    ++ti;

    if (guard_types().count(token.text) > 0 &&
        file.two_chars_before(token) == "::") {
      std::size_t pos = skip_ws(text, end);
      if (pos < text.size() && text[pos] == '<') {
        const std::size_t close = match_forward(text, pos, '<', '>');
        if (close == std::string::npos) continue;
        pos = skip_ws(text, close + 1);
      }
      // Skip the guard variable name to reach its constructor arguments.
      const std::string var = read_ident_at(text, pos);
      pos = skip_ws(text, pos + var.size());
      if (pos >= text.size() || (text[pos] != '(' && text[pos] != '{')) {
        continue;
      }
      const std::size_t close =
          match_forward(text, pos, text[pos], text[pos] == '(' ? ')' : '}');
      if (close == std::string::npos) continue;
      for (const std::string& part :
           split_top_level(text.substr(pos + 1, close - pos - 1))) {
        const std::string arg = trim(part);
        if (arg.empty()) continue;
        const std::string name = read_ident_before(arg, arg.size());
        if (!is_ident(name)) continue;
        if (name == "defer_lock" || name == "adopt_lock" ||
            name == "try_to_lock") {
          continue;
        }
        for (const Held& h : held) {
          out.lock_edges.push_back({h.name, name, token.line,
                                    file.normalized_raw(token.line)});
        }
        held.push_back({name, depth});
      }
      continue;
    }

    const char before = file.char_before(token);
    const bool member_call =
        before == '.' || file.two_chars_before(token) == "->";
    if (token.text == "lock" && member_call && ti >= 2 &&
        file.char_after(token) == '(') {
      const std::string owner = tokens[ti - 2].text;
      for (const Held& h : held) {
        out.lock_edges.push_back(
            {h.name, owner, token.line, file.normalized_raw(token.line)});
      }
      held.push_back({owner, depth});
      continue;
    }
    if (token.text == "unlock" && member_call && ti >= 2 &&
        file.char_after(token) == '(') {
      const std::string owner = tokens[ti - 2].text;
      for (std::size_t k = held.size(); k > 0; --k) {
        if (held[k - 1].name == owner) {
          held.erase(held.begin() + static_cast<std::ptrdiff_t>(k - 1));
          break;
        }
      }
      continue;
    }
    if (blocking_callees().count(token.text) > 0 && !member_call &&
        file.char_after(token) == '(' && !held.empty()) {
      out.blocking_calls.push_back({token.text, held.back().name, token.line,
                                    file.normalized_raw(token.line)});
      continue;
    }
  }
}

void collect_simple_sites(const SourceFile& file, FileIndex& out) {
  const std::vector<Token>& tokens = file.tokens();
  for (const Token& token : tokens) {
    if (token.text == "memory_order_relaxed") {
      out.relaxed_sites.push_back(
          {token.line, file.normalized_raw(token.line)});
      continue;
    }
    if ((token.text == "counter" || token.text == "sched_counter") &&
        file.char_after(token) == '(' &&
        (file.char_before(token) == '.' ||
         file.two_chars_before(token) == "->")) {
      out.counter_regs.push_back({token.line, file.normalized_raw(token.line)});
      continue;
    }
    if (token.text == "counter_or_null" && file.char_after(token) == '(') {
      out.counter_regs.push_back({token.line, file.normalized_raw(token.line)});
      continue;
    }
    if ((token.text == "reduce" || token.text == "transform_reduce") &&
        file.two_chars_before(token) == "::" &&
        file.char_after(token) == '(') {
      out.fp_hazards.push_back(
          {"reduce", token.line, file.normalized_raw(token.line)});
      continue;
    }
    if (token.text == "float") {
      const char after = file.char_after(token);
      if (is_ident_char(after) &&
          std::isdigit(static_cast<unsigned char>(after)) == 0) {
        out.fp_hazards.push_back(
            {"float-accum", token.line, file.normalized_raw(token.line)});
      }
      continue;
    }
  }
  const std::vector<std::string>& lines = file.code_lines();
  for (std::size_t li = 0; li < lines.size(); ++li) {
    std::string lowered = trim(lines[li]);
    std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                   [](unsigned char c) {
                     return static_cast<char>(std::tolower(c));
                   });
    if (lowered.empty() || lowered[0] != '#') continue;
    if (lowered.find("pragma") == std::string::npos) continue;
    if (lowered.find("fast_math") != std::string::npos ||
        lowered.find("fast-math") != std::string::npos ||
        lowered.find("fp_contract") != std::string::npos) {
      out.fp_hazards.push_back(
          {"fast-math", li + 1, file.normalized_raw(li + 1)});
    }
  }
}

/// True when `token` inside a lambda body looks like the *declaration* of a
/// local (so later writes to that name are thread-private).
bool is_local_declaration(const SourceFile& file, const Token& token,
                          const std::string& prev_token_text) {
  const char after = file.char_after(token);
  if (after != ';' && after != '=' && after != ',' && after != ')' &&
      after != '{' && after != ':') {
    return false;
  }
  const char before = file.char_before(token);
  const std::string two = file.two_chars_before(token);
  if (before == '>' && two != "->") return true;  // Foo<Bar> name
  if (before == '&' || before == '*') {
    // Foo& name (declaration) vs &name / *name (expression): a declaration
    // has type-spelling characters before the sigil.
    const char sigil_before = two.size() == 2 ? two[0] : '\0';
    return is_ident_char(sigil_before) || sigil_before == '>';
  }
  if (is_ident_char(before)) {
    return non_type_keywords().count(prev_token_text) == 0;
  }
  return false;
}

void analyze_lambda_body(const SourceFile& file, std::size_t body_open,
                         std::size_t body_close, ParallelSite& site) {
  const std::string& text = file.code_text();
  const std::vector<Token>& tokens = file.tokens();
  std::string prev_text;
  for (const Token& token : tokens) {
    const std::size_t offset = file.offset_of(token);
    if (offset <= body_open) {
      prev_text = token.text;
      continue;
    }
    if (offset >= body_close) break;
    const std::string prev = prev_text;
    prev_text = token.text;

    if (is_local_declaration(file, token, prev)) {
      site.locals.insert(token.text);
      continue;
    }
    // Only *base* names can be captured state: skip members (`x.y`, `p->y`)
    // and qualified names (`obs::f`).
    const char before = file.char_before(token);
    const std::string two = file.two_chars_before(token);
    if (before == '.' || two == "->" || two == "::") continue;

    bool write = false;
    bool subscripted = false;
    if (two == "++" || two == "--") write = true;  // prefix inc/dec
    std::size_t pos = offset + token.text.size();
    while (!write) {
      pos = skip_ws(text, pos);
      if (pos >= text.size() || pos >= body_close) break;
      const char c = text[pos];
      const char n = pos + 1 < text.size() ? text[pos + 1] : '\0';
      if (c == '[') {
        const std::size_t close = match_forward(text, pos, '[', ']');
        if (close == std::string::npos) break;
        subscripted = true;
        pos = close + 1;
        continue;
      }
      if (c == '.' || (c == '-' && n == '>')) {
        pos += c == '.' ? 1 : 2;
        pos = skip_ws(text, pos);
        const std::string member = read_ident_at(text, pos);
        if (member.empty()) break;
        pos += member.size();
        const std::size_t call = skip_ws(text, pos);
        if (call < text.size() && text[call] == '(') {
          write = mutating_members().count(member) > 0;
          break;
        }
        continue;  // data-member chain
      }
      if (c == '=' && n != '=') {
        write = true;
      } else if (n == '=' &&
                 std::string("+-*/%&|^").find(c) != std::string::npos) {
        write = true;
      } else if ((c == '+' && n == '+') || (c == '-' && n == '-')) {
        write = true;
      } else if (c == '<' && n == '<' && pos + 2 < text.size() &&
                 text[pos + 2] == '=') {
        write = true;  // <<=
      } else if (c == '>' && n == '>' && pos + 2 < text.size() &&
                 text[pos + 2] == '=') {
        write = true;  // >>=
      }
      break;
    }
    if (!write) continue;
    const ParallelWrite candidate{token.text, token.line, subscripted,
                                  file.normalized_raw(token.line)};
    const bool duplicate = std::any_of(
        site.writes.begin(), site.writes.end(), [&](const ParallelWrite& w) {
          return w.name == candidate.name && w.line == candidate.line &&
                 w.subscripted == candidate.subscripted;
        });
    if (!duplicate) site.writes.push_back(candidate);
  }
}

void collect_parallel_sites(const SourceFile& file, FileIndex& out) {
  const std::string& text = file.code_text();
  for (const Token& token : file.tokens()) {
    if (token.text != "parallel_for" && token.text != "ordered_map") continue;
    if (file.two_chars_before(token) != "::") continue;
    std::size_t pos = skip_ws(text, file.offset_of(token) + token.text.size());
    if (pos < text.size() && text[pos] == '<') {
      const std::size_t close = match_forward(text, pos, '<', '>');
      if (close == std::string::npos) continue;
      pos = skip_ws(text, close + 1);
    }
    if (pos >= text.size() || text[pos] != '(') continue;
    const std::size_t call_close = match_forward(text, pos, '(', ')');
    if (call_close == std::string::npos) continue;

    ParallelSite site;
    site.callee = token.text;
    site.line = token.line;

    // The body lambda is the first capture list inside the argument extent.
    const std::size_t cap_open = text.find('[', pos);
    if (cap_open == std::string::npos || cap_open > call_close) continue;
    const std::size_t cap_close = match_forward(text, cap_open, '[', ']');
    if (cap_close == std::string::npos) continue;
    for (const std::string& part : split_top_level(
             text.substr(cap_open + 1, cap_close - cap_open - 1))) {
      std::string entry = trim(part);
      if (entry.empty()) continue;
      if (entry == "&") {
        site.capture_default_ref = true;
        continue;
      }
      if (entry == "=" || entry == "this" || entry == "*this") continue;
      const bool by_ref = entry[0] == '&';
      if (by_ref) entry = trim(entry.substr(1));
      const std::size_t eq = entry.find('=');
      if (eq != std::string::npos) entry = trim(entry.substr(0, eq));
      if (!is_ident(entry)) continue;
      if (by_ref) {
        site.ref_captures.insert(entry);
      } else {
        site.value_captures.insert(entry);
      }
    }

    // Lambda parameters are locals.
    std::size_t after_captures = skip_ws(text, cap_close + 1);
    std::size_t body_probe = after_captures;
    if (after_captures < text.size() && text[after_captures] == '(') {
      const std::size_t pclose =
          match_forward(text, after_captures, '(', ')');
      if (pclose == std::string::npos) continue;
      for (const std::string& part : split_top_level(
               text.substr(after_captures + 1, pclose - after_captures - 1))) {
        const std::string param = trim(part);
        if (param.empty()) continue;
        // Drop a default-argument suffix, then take the trailing identifier.
        const std::size_t eq = param.find('=');
        const std::string head =
            eq == std::string::npos ? param : trim(param.substr(0, eq));
        const std::string name = read_ident_before(head, head.size());
        if (is_ident(name)) site.locals.insert(name);
      }
      body_probe = pclose + 1;
    }
    const std::size_t body_open = text.find('{', body_probe);
    if (body_open == std::string::npos || body_open > call_close) continue;
    const std::size_t body_close = match_forward(text, body_open, '{', '}');
    if (body_close == std::string::npos) continue;

    analyze_lambda_body(file, body_open, body_close, site);
    out.parallel_sites.push_back(std::move(site));
  }
}

void collect_allows(const SourceFile& file, FileIndex& out) {
  for (const AllowDirective& allow : file.allows()) {
    if (!allow.has_reason) continue;
    for (const std::string& rule : allow.rules) {
      out.allows.push_back({allow.target_line, rule});
    }
  }
}

void append(std::ostringstream& os, const std::string& record) {
  os << record << '\n';
}

std::string num(std::size_t v) { return std::to_string(v); }

bool parse_size(const std::string& field, std::size_t& out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  std::size_t value = 0;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return false;
  out = value;
  return true;
}

/// Splits a record into exactly `fixed` '\t'-separated fields plus an
/// optional free-form tail (the raw line, which may contain anything but
/// tabs were normalized away).  Returns false when fields are missing.
bool split_record(const std::string& line, std::size_t fixed,
                  std::vector<std::string>& fields, std::string& tail,
                  bool has_tail) {
  fields.clear();
  tail.clear();
  std::size_t start = 0;
  for (std::size_t k = 0; k < fixed; ++k) {
    const std::size_t t = line.find('\t', start);
    if (t == std::string::npos) return false;
    fields.push_back(line.substr(start, t - start));
    start = t + 1;
  }
  if (has_tail) {
    tail = line.substr(start);
  } else {
    const std::size_t t = line.find('\t', start);
    if (t != std::string::npos) return false;
    fields.push_back(line.substr(start));
  }
  return true;
}

}  // namespace

bool FileIndex::allowed(std::size_t line, const std::string& rule) const {
  return std::any_of(allows.begin(), allows.end(),
                     [&](const AllowRecord& allow) {
                       return allow.line == line && allow.rule == rule;
                     });
}

std::string FileIndex::serialize() const {
  std::ostringstream os;
  append(os, "file\t" + file);
  for (const MutexDecl& d : mutexes) {
    append(os, "mutex\t" + d.name + "\t" + num(d.line));
  }
  for (const AtomicDecl& d : atomics) {
    append(os, "atomic\t" + d.name + "\t" + num(d.line));
  }
  for (const ThreadVectorDecl& d : thread_vectors) {
    append(os, "threadvec\t" + d.name + "\t" + num(d.line));
  }
  for (const ThreadSpawn& s : spawns) {
    append(os, "spawn\t" + s.target + "\t" + num(s.line) + "\t" + s.raw);
  }
  for (const PendingSpawn& s : pending_spawns) {
    append(os, "pend\t" + s.container + "\t" + num(s.line) + "\t" + s.raw);
  }
  for (const JoinSite& j : joins) {
    append(os, "join\t" + j.target + "\t" + num(j.line));
  }
  for (const MoveAlias& a : move_aliases) {
    append(os, "movealias\t" + a.from + "\t" + a.to);
  }
  for (const RangeAlias& a : range_aliases) {
    append(os, "rangealias\t" + a.var + "\t" + a.range);
  }
  for (const LockEdge& e : lock_edges) {
    append(os, "edge\t" + e.held + "\t" + e.acquired + "\t" + num(e.line) +
                   "\t" + e.raw);
  }
  for (const BlockingCall& b : blocking_calls) {
    append(os, "block\t" + b.callee + "\t" + b.held + "\t" + num(b.line) +
                   "\t" + b.raw);
  }
  for (const CounterReg& c : counter_regs) {
    append(os, "counter\t" + num(c.line) + "\t" + c.raw);
  }
  for (const FpHazard& h : fp_hazards) {
    append(os, "fp\t" + h.kind + "\t" + num(h.line) + "\t" + h.raw);
  }
  for (const RelaxedSite& r : relaxed_sites) {
    append(os, "relaxed\t" + num(r.line) + "\t" + r.raw);
  }
  for (const ParallelSite& s : parallel_sites) {
    append(os, "par\t" + s.callee + "\t" + num(s.line) + "\t" +
                   (s.capture_default_ref ? "1" : "0"));
    for (const std::string& name : s.ref_captures) {
      append(os, "parcap\tref\t" + name);
    }
    for (const std::string& name : s.value_captures) {
      append(os, "parcap\tval\t" + name);
    }
    for (const std::string& name : s.locals) {
      append(os, "parlocal\t" + name);
    }
    for (const ParallelWrite& w : s.writes) {
      append(os, "parwrite\t" + w.name + "\t" + num(w.line) + "\t" +
                     (w.subscripted ? "1" : "0") + "\t" + w.raw);
    }
  }
  for (const AllowRecord& a : allows) {
    append(os, "allow\t" + num(a.line) + "\t" + a.rule);
  }
  return os.str();
}

bool FileIndex::parse(const std::string& text, FileIndex& out,
                      std::string& error) {
  out = FileIndex{};
  std::istringstream is(text);
  std::string line;
  std::vector<std::string> f;
  std::string tail;
  std::size_t n = 0;
  ParallelSite* open_site = nullptr;
  auto fail = [&](const std::string& why) {
    error = "index record " + std::to_string(n) + ": " + why;
    return false;
  };
  while (std::getline(is, line)) {
    ++n;
    if (line.empty()) continue;
    const std::size_t t = line.find('\t');
    const std::string kind = line.substr(0, t == std::string::npos ? 0 : t);
    std::size_t v = 0;
    if (kind == "file") {
      if (!split_record(line, 1, f, tail, false)) return fail("bad file");
      out.file = f[1];
    } else if (kind == "mutex" || kind == "atomic" || kind == "threadvec") {
      if (!split_record(line, 2, f, tail, false) || !parse_size(f[2], v)) {
        return fail("bad decl");
      }
      if (kind == "mutex") out.mutexes.push_back({f[1], v});
      if (kind == "atomic") out.atomics.push_back({f[1], v});
      if (kind == "threadvec") out.thread_vectors.push_back({f[1], v});
    } else if (kind == "spawn" || kind == "pend") {
      if (!split_record(line, 3, f, tail, true) || !parse_size(f[2], v)) {
        return fail("bad spawn");
      }
      if (kind == "spawn") out.spawns.push_back({f[1], v, tail});
      if (kind == "pend") out.pending_spawns.push_back({f[1], v, tail});
    } else if (kind == "join") {
      if (!split_record(line, 2, f, tail, false) || !parse_size(f[2], v)) {
        return fail("bad join");
      }
      out.joins.push_back({f[1], v});
    } else if (kind == "movealias") {
      if (!split_record(line, 2, f, tail, false)) return fail("bad alias");
      out.move_aliases.push_back({f[1], f[2]});
    } else if (kind == "rangealias") {
      if (!split_record(line, 2, f, tail, false)) return fail("bad alias");
      out.range_aliases.push_back({f[1], f[2]});
    } else if (kind == "edge") {
      if (!split_record(line, 4, f, tail, true) || !parse_size(f[3], v)) {
        return fail("bad edge");
      }
      out.lock_edges.push_back({f[1], f[2], v, tail});
    } else if (kind == "block") {
      if (!split_record(line, 4, f, tail, true) || !parse_size(f[3], v)) {
        return fail("bad block");
      }
      out.blocking_calls.push_back({f[1], f[2], v, tail});
    } else if (kind == "counter") {
      if (!split_record(line, 2, f, tail, true) || !parse_size(f[1], v)) {
        return fail("bad counter");
      }
      out.counter_regs.push_back({v, tail});
    } else if (kind == "fp") {
      if (!split_record(line, 3, f, tail, true) || !parse_size(f[2], v)) {
        return fail("bad fp");
      }
      out.fp_hazards.push_back({f[1], v, tail});
    } else if (kind == "relaxed") {
      if (!split_record(line, 2, f, tail, true) || !parse_size(f[1], v)) {
        return fail("bad relaxed");
      }
      out.relaxed_sites.push_back({v, tail});
    } else if (kind == "par") {
      if (!split_record(line, 3, f, tail, false) || !parse_size(f[2], v)) {
        return fail("bad par");
      }
      ParallelSite site;
      site.callee = f[1];
      site.line = v;
      site.capture_default_ref = f[3] == "1";
      out.parallel_sites.push_back(std::move(site));
      open_site = &out.parallel_sites.back();
    } else if (kind == "parcap") {
      if (!split_record(line, 2, f, tail, false) || open_site == nullptr) {
        return fail("bad parcap");
      }
      if (f[1] == "ref") {
        open_site->ref_captures.insert(f[2]);
      } else {
        open_site->value_captures.insert(f[2]);
      }
    } else if (kind == "parlocal") {
      if (!split_record(line, 1, f, tail, false) || open_site == nullptr) {
        return fail("bad parlocal");
      }
      open_site->locals.insert(f[1]);
    } else if (kind == "parwrite") {
      if (!split_record(line, 4, f, tail, true) || open_site == nullptr ||
          !parse_size(f[2], v)) {
        return fail("bad parwrite");
      }
      open_site->writes.push_back({f[1], v, f[3] == "1", tail});
    } else if (kind == "allow") {
      if (!split_record(line, 2, f, tail, false) || !parse_size(f[1], v)) {
        return fail("bad allow");
      }
      out.allows.push_back({v, f[2]});
    } else {
      return fail("unknown kind '" + kind + "'");
    }
  }
  if (out.file.empty()) {
    error = "index has no file record";
    return false;
  }
  return true;
}

FileIndex build_index(const SourceFile& file) {
  FileIndex out;
  out.file = file.path();
  collect_declarations(file, out);
  collect_threads(file, out);
  collect_locks(file, out);
  collect_simple_sites(file, out);
  collect_parallel_sites(file, out);
  collect_allows(file, out);
  return out;
}

std::string ProjectIndex::serialize() const {
  std::string out;
  for (const FileIndex& file : files) out += file.serialize();
  return out;
}

std::string subsystem_of(const std::string& path) {
  const std::size_t first = path.find('/');
  if (first == std::string::npos) return path;
  const std::size_t second = path.find('/', first + 1);
  if (second == std::string::npos) return path.substr(0, first);
  return path.substr(0, second);
}

}  // namespace cdlint
