#include "sgp4/groundtrack.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cosmicdance::sgp4 {

std::vector<GroundPoint> ground_track(const Sgp4Propagator& propagator,
                                      double jd_start, double duration_minutes,
                                      double step_minutes) {
  if (duration_minutes <= 0.0 || step_minutes <= 0.0) {
    throw ValidationError("ground track duration and step must be positive");
  }
  std::vector<GroundPoint> track;
  track.reserve(static_cast<std::size_t>(duration_minutes / step_minutes) + 1);
  for (double minutes = 0.0; minutes <= duration_minutes; minutes += step_minutes) {
    const double jd = jd_start + minutes / units::kMinutesPerDay;
    const orbit::StateVector sv = propagator.propagate_jd(jd);
    const orbit::Vec3 ecef = orbit::teme_to_ecef(sv.position_km, jd);
    const orbit::Geodetic geo = orbit::ecef_to_geodetic(ecef);
    GroundPoint point;
    point.jd = jd;
    point.latitude_deg = units::rad2deg(geo.latitude_rad);
    double lon = units::rad2deg(geo.longitude_rad);
    if (lon >= 180.0) lon -= 360.0;
    if (lon < -180.0) lon += 360.0;
    point.longitude_deg = lon;
    point.altitude_km = geo.altitude_km;
    track.push_back(point);
  }
  return track;
}

double fraction_above_latitude(const std::vector<GroundPoint>& track,
                               double latitude_deg) {
  if (track.empty()) throw ValidationError("fraction over empty ground track");
  std::size_t above = 0;
  for (const GroundPoint& point : track) {
    if (std::fabs(point.latitude_deg) >= latitude_deg) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(track.size());
}

}  // namespace cosmicdance::sgp4
