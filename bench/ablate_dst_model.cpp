// Ablation: the Burton ring-current recovery term.
//
// DESIGN.md claims the dDst/dt = Q - Dst/tau recovery dynamics are what give
// storms their multi-hour tails (Fig 2's duration distributions).  This
// ablation re-runs the paper-window synthesis with the recovery collapsed
// (tau -> 1 h, i.e. storms die within an hour of the driver stopping) and
// compares the duration statistics.
#include <iostream>

#include "bench_common.hpp"
#include "io/table.hpp"
#include "spaceweather/storms.hpp"
#include "stats/descriptive.hpp"

using namespace cosmicdance;

namespace {

void report(const char* label, const spaceweather::DstIndex& dst,
            io::TablePrinter& table) {
  // Durations of the events that crossed the minor threshold, regardless of
  // the band their peak lands in (the scripted anchor storms all peak in the
  // moderate band and deeper).
  const spaceweather::StormDetector detector;
  std::vector<double> durations;
  for (const auto& event : detector.detect(dst)) {
    durations.push_back(static_cast<double>(event.duration_hours()));
  }
  if (durations.empty()) {
    table.add_row({label, "0"});
    return;
  }
  const auto s = stats::summarize(durations);
  const auto hours = spaceweather::StormDetector::category_hours(dst);
  long storm_hours = 0;
  for (const auto& [category, count] : hours) storm_hours += count;
  table.add_row({label, std::to_string(s.count),
                 io::TablePrinter::num(s.median, 1),
                 io::TablePrinter::num(s.p95, 1), io::TablePrinter::num(s.max, 0),
                 std::to_string(storm_hours)});
}

}  // namespace

int main() {
  io::print_heading(std::cout,
                    "Ablation: Burton recovery tau (storm duration shapes)");

  auto full = spaceweather::DstGenerator::paper_window_2020_2024();
  const auto with_recovery = spaceweather::DstGenerator(full).generate();

  auto collapsed = full;
  for (auto& storm : collapsed.scripted_storms) storm.recovery_tau_hours = 1.0;
  // Random storms draw their own taus; disable them so the comparison is
  // clean, and do the same on a copy of the full config.
  collapsed.include_random_storms = false;
  auto full_scripted_only = full;
  full_scripted_only.include_random_storms = false;
  const auto with_recovery_scripted =
      spaceweather::DstGenerator(full_scripted_only).generate();
  const auto without_recovery = spaceweather::DstGenerator(collapsed).generate();

  io::TablePrinter table({"variant", "events", "median_h", "p95_h", "max_h",
                          "storm_hours"});
  report("full model (random + scripted)", with_recovery, table);
  report("scripted only, tau as calibrated", with_recovery_scripted, table);
  report("scripted only, tau -> 1 h (ablated)", without_recovery, table);
  table.print(std::cout);

  bench::note("expected: collapsing tau shrinks durations toward the 1-3 h");
  bench::note("main phase and erases Fig 2's long recovery tails, so the");
  bench::note("paper's duration statistics become unreproducible.");
  return 0;
}
