// The named historical geomagnetic storms of the paper's Fig 8 / §A.2.
#pragma once

#include <string>
#include <vector>

#include "timeutil/datetime.hpp"

namespace cosmicdance::spaceweather {

/// A well-known storm with its recorded peak intensity.
struct NamedStorm {
  std::string name;
  timeutil::DateTime date;
  double peak_dst_nt = 0.0;
};

/// The eight storms annotated on Fig 8, plus the two pre-instrumental
/// reference events the paper discusses (Carrington 1859, New York Railroad
/// 1921) flagged by `instrumental == false`.
struct HistoricalStorm : NamedStorm {
  bool instrumental = true;
};

/// All reference storms, chronological.
[[nodiscard]] const std::vector<HistoricalStorm>& historical_storms();

/// Only the instrumental-era storms shown in Fig 8.
[[nodiscard]] std::vector<HistoricalStorm> fig8_storms();

}  // namespace cosmicdance::spaceweather
