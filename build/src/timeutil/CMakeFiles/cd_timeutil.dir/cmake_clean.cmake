file(REMOVE_RECURSE
  "CMakeFiles/cd_timeutil.dir/datetime.cpp.o"
  "CMakeFiles/cd_timeutil.dir/datetime.cpp.o.d"
  "CMakeFiles/cd_timeutil.dir/hour_axis.cpp.o"
  "CMakeFiles/cd_timeutil.dir/hour_axis.cpp.o.d"
  "CMakeFiles/cd_timeutil.dir/sidereal.cpp.o"
  "CMakeFiles/cd_timeutil.dir/sidereal.cpp.o.d"
  "libcd_timeutil.a"
  "libcd_timeutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_timeutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
