# Empty compiler generated dependencies file for constellation_decay_sim.
# This may be replaced when dependencies are built.
