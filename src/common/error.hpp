// Error hierarchy for the CosmicDance libraries.
//
// All recoverable failures are reported via exceptions derived from
// cosmicdance::Error (itself a std::runtime_error), so callers can catch
// either the broad base or a narrow category.  Functions that cannot fail
// are marked noexcept at their declaration sites.
#pragma once

#include <stdexcept>
#include <string>

namespace cosmicdance {

/// Base class of every exception thrown by CosmicDance libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed textual input (TLE lines, WDC records, CSV rows, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Semantically invalid values (out-of-range dates, negative durations, ...).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what)
      : Error("validation error: " + what) {}
};

/// Orbit propagation failure (SGP4 error codes, decayed satellites, ...).
class PropagationError : public Error {
 public:
  explicit PropagationError(const std::string& what)
      : Error("propagation error: " + what) {}
};

/// Filesystem / stream failures.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

}  // namespace cosmicdance
