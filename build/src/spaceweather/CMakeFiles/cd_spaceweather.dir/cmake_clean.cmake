file(REMOVE_RECURSE
  "CMakeFiles/cd_spaceweather.dir/burton.cpp.o"
  "CMakeFiles/cd_spaceweather.dir/burton.cpp.o.d"
  "CMakeFiles/cd_spaceweather.dir/dst_index.cpp.o"
  "CMakeFiles/cd_spaceweather.dir/dst_index.cpp.o.d"
  "CMakeFiles/cd_spaceweather.dir/generator.cpp.o"
  "CMakeFiles/cd_spaceweather.dir/generator.cpp.o.d"
  "CMakeFiles/cd_spaceweather.dir/gscale.cpp.o"
  "CMakeFiles/cd_spaceweather.dir/gscale.cpp.o.d"
  "CMakeFiles/cd_spaceweather.dir/historical.cpp.o"
  "CMakeFiles/cd_spaceweather.dir/historical.cpp.o.d"
  "CMakeFiles/cd_spaceweather.dir/kp_index.cpp.o"
  "CMakeFiles/cd_spaceweather.dir/kp_index.cpp.o.d"
  "CMakeFiles/cd_spaceweather.dir/storms.cpp.o"
  "CMakeFiles/cd_spaceweather.dir/storms.cpp.o.d"
  "CMakeFiles/cd_spaceweather.dir/wdc.cpp.o"
  "CMakeFiles/cd_spaceweather.dir/wdc.cpp.o.d"
  "libcd_spaceweather.a"
  "libcd_spaceweather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_spaceweather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
