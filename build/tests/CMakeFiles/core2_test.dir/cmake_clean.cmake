file(REMOVE_RECURSE
  "CMakeFiles/core2_test.dir/core2_test.cpp.o"
  "CMakeFiles/core2_test.dir/core2_test.cpp.o.d"
  "core2_test"
  "core2_test.pdb"
  "core2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
