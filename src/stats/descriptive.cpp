#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cosmicdance::stats {
namespace {

double percentile_of_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) throw ValidationError("percentile of empty sample");
  if (p < 0.0 || p > 100.0) {
    throw ValidationError("percentile p outside [0,100]: " + std::to_string(p));
  }
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(std::floor(rank));
  const auto upper = static_cast<std::size_t>(std::ceil(rank));
  const double weight = rank - static_cast<double>(lower);
  return sorted[lower] * (1.0 - weight) + sorted[upper] * weight;
}

std::vector<double> sorted_copy(std::span<const double> sample) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

double percentile(std::span<const double> sample, double p) {
  return percentile_of_sorted(sorted_copy(sample), p);
}

std::vector<double> percentiles(std::span<const double> sample,
                                std::span<const double> ps) {
  const std::vector<double> sorted = sorted_copy(sample);
  std::vector<double> out;
  out.reserve(ps.size());
  for (const double p : ps) out.push_back(percentile_of_sorted(sorted, p));
  return out;
}

double median(std::span<const double> sample) { return percentile(sample, 50.0); }

double mean(std::span<const double> sample) {
  if (sample.empty()) throw ValidationError("mean of empty sample");
  double sum = 0.0;
  for (const double x : sample) sum += x;
  return sum / static_cast<double>(sample.size());
}

double variance(std::span<const double> sample) {
  if (sample.empty()) throw ValidationError("variance of empty sample");
  if (sample.size() == 1) return 0.0;
  const double m = mean(sample);
  double accum = 0.0;
  for (const double x : sample) accum += (x - m) * (x - m);
  return accum / static_cast<double>(sample.size() - 1);
}

double stddev(std::span<const double> sample) { return std::sqrt(variance(sample)); }

double min(std::span<const double> sample) {
  if (sample.empty()) throw ValidationError("min of empty sample");
  return *std::min_element(sample.begin(), sample.end());
}

double max(std::span<const double> sample) {
  if (sample.empty()) throw ValidationError("max of empty sample");
  return *std::max_element(sample.begin(), sample.end());
}

Summary summarize(std::span<const double> sample) {
  const std::vector<double> sorted = sorted_copy(sample);
  Summary s;
  s.count = sorted.size();
  s.mean = mean(sorted);
  s.stddev = stddev(sorted);
  s.min = sorted.front();
  s.p25 = percentile_of_sorted(sorted, 25.0);
  s.median = percentile_of_sorted(sorted, 50.0);
  s.p75 = percentile_of_sorted(sorted, 75.0);
  s.p95 = percentile_of_sorted(sorted, 95.0);
  s.p99 = percentile_of_sorted(sorted, 99.0);
  s.max = sorted.back();
  return s;
}

}  // namespace cosmicdance::stats
