// Small file helpers shared by catalog loaders and format readers.
#pragma once

#include <string>
#include <vector>

namespace cosmicdance::io {

/// Read a whole file as text.  Throws IoError when unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

/// Read a file as lines (\n or \r\n, terminators stripped).
[[nodiscard]] std::vector<std::string> read_lines(const std::string& path);

/// Write text to a file, replacing its contents.  Throws IoError on failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace cosmicdance::io
