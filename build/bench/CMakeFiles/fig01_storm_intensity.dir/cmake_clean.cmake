file(REMOVE_RECURSE
  "CMakeFiles/fig01_storm_intensity.dir/fig01_storm_intensity.cpp.o"
  "CMakeFiles/fig01_storm_intensity.dir/fig01_storm_intensity.cpp.o.d"
  "fig01_storm_intensity"
  "fig01_storm_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_storm_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
