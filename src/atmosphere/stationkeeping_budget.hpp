// Station-keeping propulsion budget: the delta-v a satellite must spend to
// cancel drag (Starlink's FCC response credits "a capable propulsion
// system" for riding out the May-2024 storm; this quantifies the claim).
#pragma once

#include "spaceweather/dst_index.hpp"

namespace cosmicdance::atmosphere {

/// Drag make-up delta-v (m/s) accumulated over [jd_start, jd_start + days]
/// for a satellite holding a circular orbit at `altitude_km` with ballistic
/// coefficient `ballistic_m2_kg`.  When `dst` is provided, density follows
/// the storm-coupled model; otherwise the quiet baseline.
///
/// dv/dt equals the drag deceleration: 0.5 * rho * v^2 * B.
[[nodiscard]] double stationkeeping_delta_v_ms(
    double altitude_km, double ballistic_m2_kg, double jd_start, double days,
    const spaceweather::DstIndex* dst = nullptr, double step_hours = 1.0);

}  // namespace cosmicdance::atmosphere
