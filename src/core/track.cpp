#include "core/track.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "exec/parallel_for.hpp"
#include "obs/obs.hpp"
#include "stats/descriptive.hpp"

namespace cosmicdance::core {

SatelliteTrack::SatelliteTrack(int catalog_number,
                               std::vector<TrajectorySample> samples)
    : catalog_(catalog_number), samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end(),
            [](const TrajectorySample& a, const TrajectorySample& b) {
              return a.epoch_jd < b.epoch_jd;
            });
}

SatelliteTrack SatelliteTrack::from_tles(int catalog_number,
                                         std::span<const tle::Tle> history) {
  std::vector<TrajectorySample> samples;
  samples.reserve(history.size());
  for (const tle::Tle& tle : history) {
    TrajectorySample sample;
    sample.epoch_jd = tle.epoch_jd;
    sample.altitude_km = tle.altitude_km();
    sample.bstar = tle.bstar;
    sample.inclination_deg = tle.inclination_deg;
    sample.raan_deg = tle.raan_deg;
    sample.eccentricity = tle.eccentricity;
    sample.arg_perigee_deg = tle.arg_perigee_deg;
    sample.mean_anomaly_deg = tle.mean_anomaly_deg;
    sample.mean_motion_revday = tle.mean_motion_revday;
    samples.push_back(sample);
  }
  return SatelliteTrack(catalog_number, std::move(samples));
}

double SatelliteTrack::median_altitude_km() const {
  if (samples_.empty()) throw ValidationError("median altitude of empty track");
  if (!median_cache_valid_) {
    std::vector<double> altitudes;
    altitudes.reserve(samples_.size());
    for (const TrajectorySample& s : samples_) altitudes.push_back(s.altitude_km);
    cached_median_altitude_ = stats::median(altitudes);
    median_cache_valid_ = true;
  }
  return cached_median_altitude_;
}

const TrajectorySample* SatelliteTrack::at_or_before(double jd) const noexcept {
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), jd,
      [](double value, const TrajectorySample& s) { return value < s.epoch_jd; });
  if (it == samples_.begin()) return nullptr;
  return &*(it - 1);
}

const TrajectorySample* SatelliteTrack::at_or_after(double jd) const noexcept {
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), jd,
      [](const TrajectorySample& s, double value) { return s.epoch_jd < value; });
  if (it == samples_.end()) return nullptr;
  return &*it;
}

std::span<const TrajectorySample> SatelliteTrack::between(double jd_lo,
                                                          double jd_hi) const noexcept {
  const auto lo = std::lower_bound(
      samples_.begin(), samples_.end(), jd_lo,
      [](const TrajectorySample& s, double value) { return s.epoch_jd < value; });
  const auto hi = std::lower_bound(
      lo, samples_.end(), jd_hi,
      [](const TrajectorySample& s, double value) { return s.epoch_jd < value; });
  if (lo == hi) return {};
  return {&*lo, static_cast<std::size_t>(hi - lo)};
}

std::vector<stats::TimedValue> SatelliteTrack::altitude_series() const {
  std::vector<stats::TimedValue> out;
  out.reserve(samples_.size());
  for (const TrajectorySample& s : samples_) out.push_back({s.epoch_jd, s.altitude_km});
  return out;
}

std::vector<stats::TimedValue> SatelliteTrack::bstar_series() const {
  std::vector<stats::TimedValue> out;
  out.reserve(samples_.size());
  for (const TrajectorySample& s : samples_) out.push_back({s.epoch_jd, s.bstar});
  return out;
}

void SatelliteTrack::set_samples(std::vector<TrajectorySample> samples) {
  samples_ = std::move(samples);
  median_cache_valid_ = false;
  std::sort(samples_.begin(), samples_.end(),
            [](const TrajectorySample& a, const TrajectorySample& b) {
              return a.epoch_jd < b.epoch_jd;
            });
}

std::vector<SatelliteTrack> tracks_from_catalog(const tle::TleCatalog& catalog,
                                                int num_threads,
                                                obs::Metrics* metrics) {
  const std::vector<int> ids = catalog.satellites();
  auto tracks = exec::ordered_map<SatelliteTrack>(
      ids.size(), num_threads,
      [&](std::size_t i) {
        return SatelliteTrack::from_tles(ids[i], catalog.history(ids[i]));
      },
      metrics);
  if (metrics != nullptr) {
    std::uint64_t samples = 0;
    for (const SatelliteTrack& track : tracks) samples += track.size();
    metrics->counter("track.built").add(tracks.size());
    metrics->counter("track.samples").add(samples);
  }
  return tracks;
}

void warm_median_caches(std::span<const SatelliteTrack> tracks, int num_threads) {
  exec::parallel_for(tracks.size(), num_threads,
                     [&](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         if (!tracks[i].empty()) {
                           static_cast<void>(tracks[i].median_altitude_km());
                         }
                       }
                     });
}

}  // namespace cosmicdance::core
