# Empty compiler generated dependencies file for orbit_test.
# This may be replaced when dependencies are built.
