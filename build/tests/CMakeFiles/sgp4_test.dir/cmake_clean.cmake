file(REMOVE_RECURSE
  "CMakeFiles/sgp4_test.dir/sgp4_test.cpp.o"
  "CMakeFiles/sgp4_test.dir/sgp4_test.cpp.o.d"
  "sgp4_test"
  "sgp4_test.pdb"
  "sgp4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
