// Fig 4: (a) altitude variation of affected satellites over the 30 days
// after a randomly-picked high-intensity event (-112 nT, excluding permanent
// decays via the paper's hump rule); (b) the same view on a quiet day
// (intensity < 80th-ptile), 15-day window.
//
// Paper shape: (a) median rises to ~5 km within 10-15 days; the 95th-ptile
// stays ~10 km even after a month.  (b) no noticeable shift.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "stats/bootstrap.hpp"
#include "io/table.hpp"

using namespace cosmicdance;

namespace {

void print_envelope(const core::PostEventEnvelope& envelope) {
  io::TablePrinter table({"day", "median_km", "p95_km", "n_sats"});
  for (int d = 0; d < envelope.days; ++d) {
    const double median = envelope.median_km[static_cast<std::size_t>(d)];
    const double p95 = envelope.p95_km[static_cast<std::size_t>(d)];
    table.add_row({std::to_string(d),
                   std::isnan(median) ? "-" : io::TablePrinter::num(median, 2),
                   std::isnan(p95) ? "-" : io::TablePrinter::num(p95, 2),
                   std::to_string(envelope.satellites.size())});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  const spaceweather::DstIndex dst = bench::paper_dst();
  // A slightly larger fleet than the other benches: the Fig 4a selection
  // keeps only a handful of satellites, so the envelope needs more of them.
  const core::CosmicDance pipeline(dst, bench::paper_catalog(dst, 6, 14.0));

  // (a) the scripted -112 nT event of 2023-09-18 (the paper picked a -112 nT
  // storm at random; ours is scripted at that intensity).
  const double event_jd =
      timeutil::to_julian(timeutil::make_datetime(2023, 9, 18, 18));
  io::print_heading(std::cout,
                    "Fig 4(a): affected satellites after the -112 nT event "
                    "(30-day window)");
  const auto storm_envelope = pipeline.post_event_envelope(
      event_jd, 30, core::EnvelopeSelection::kAffectedHumped);
  print_envelope(storm_envelope);
  // Bootstrap CI for the day-12 median: qualifies the scaled-down sample.
  {
    std::vector<double> day12;
    for (const auto& profile : storm_envelope.per_satellite) {
      if (profile.size() > 12 && std::isfinite(profile[12])) {
        day12.push_back(profile[12]);
      }
    }
    if (day12.size() >= 5) {
      const auto ci = stats::bootstrap_median(day12);
      std::printf("  day-12 median 95%% CI over %zu satellites: [%.2f, %.2f] km\n",
                  day12.size(), ci.lo, ci.hi);
    }
  }
  bench::note("paper: median up to ~5 km within 10-15 days; p95 ~10 km after");
  bench::note("a month (long-term shifts).  Permanent decays excluded by the");
  bench::note("selection rule, already-decaying satellites by the 5 km filter.");

  // (b) a quiet epoch with no storms around.
  const double p80 = pipeline.dst_threshold_at_percentile(80.0);
  const auto quiet = pipeline.correlator().quiet_epochs(p80, 40);
  io::print_heading(std::cout,
                    "Fig 4(b): quiet-day reference (<80th-ptile, 15-day window)");
  if (quiet.empty()) {
    bench::note("no quiet epoch found (unexpected)");
    return 1;
  }
  const auto quiet_envelope = pipeline.post_event_envelope(
      quiet[quiet.size() * 3 / 4], 15, core::EnvelopeSelection::kAll);
  print_envelope(quiet_envelope);
  bench::note("paper: no noticeable altitude/orbital shift on quiet days.");
  return 0;
}
