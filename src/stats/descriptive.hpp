// Descriptive statistics used throughout the measurement pipeline.
//
// The paper reports medians and 95th/99th percentiles everywhere; these
// helpers centralise one percentile definition (linear interpolation
// between closest ranks, the same convention as numpy's default) so every
// figure uses identical semantics.
#pragma once

#include <span>
#include <vector>

namespace cosmicdance::stats {

/// p-th percentile (p in [0, 100]) of a sample, linear interpolation between
/// closest ranks.  Throws ValidationError on an empty sample or p outside
/// [0, 100].
[[nodiscard]] double percentile(std::span<const double> sample, double p);

/// Convenience: several percentiles at once over one shared sort.
[[nodiscard]] std::vector<double> percentiles(std::span<const double> sample,
                                              std::span<const double> ps);

/// Median (50th percentile).
[[nodiscard]] double median(std::span<const double> sample);

/// Arithmetic mean.  Throws ValidationError on an empty sample.
[[nodiscard]] double mean(std::span<const double> sample);

/// Unbiased sample variance (n-1 denominator); 0 for single-element samples.
[[nodiscard]] double variance(std::span<const double> sample);

/// Square root of variance().
[[nodiscard]] double stddev(std::span<const double> sample);

/// Smallest element.  Throws ValidationError on an empty sample.
[[nodiscard]] double min(std::span<const double> sample);

/// Largest element.  Throws ValidationError on an empty sample.
[[nodiscard]] double max(std::span<const double> sample);

/// One-line summary bundle of a sample, computed with a single sort.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Summary of a non-empty sample.  Throws ValidationError when empty.
[[nodiscard]] Summary summarize(std::span<const double> sample);

}  // namespace cosmicdance::stats
