#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "timeutil/datetime.hpp"
#include "timeutil/hour_axis.hpp"
#include "timeutil/sidereal.hpp"

namespace cosmicdance::timeutil {
namespace {

TEST(DateTimeTest, ValidatesFields) {
  EXPECT_NO_THROW(static_cast<void>(make_datetime(2024, 2, 29)));  // leap day
  EXPECT_THROW(static_cast<void>(make_datetime(2023, 2, 29)), ValidationError);
  EXPECT_THROW(static_cast<void>(make_datetime(2024, 13, 1)), ValidationError);
  EXPECT_THROW(static_cast<void>(make_datetime(2024, 0, 1)), ValidationError);
  EXPECT_THROW(static_cast<void>(make_datetime(2024, 1, 32)), ValidationError);
  EXPECT_THROW(static_cast<void>(make_datetime(2024, 4, 31)), ValidationError);
  EXPECT_THROW(static_cast<void>(make_datetime(2024, 1, 1, 24)), ValidationError);
  EXPECT_THROW(static_cast<void>(make_datetime(2024, 1, 1, 0, 60)), ValidationError);
  EXPECT_THROW(static_cast<void>(make_datetime(2024, 1, 1, 0, 0, 60.0)), ValidationError);
  EXPECT_THROW(static_cast<void>(make_datetime(1799, 1, 1)), ValidationError);
  EXPECT_THROW(static_cast<void>(make_datetime(2101, 1, 1)), ValidationError);
}

TEST(DateTimeTest, LeapYearRules) {
  EXPECT_TRUE(is_leap_year(2000));   // divisible by 400
  EXPECT_FALSE(is_leap_year(1900));  // divisible by 100 only
  EXPECT_TRUE(is_leap_year(2024));
  EXPECT_FALSE(is_leap_year(2023));
}

TEST(DateTimeTest, DaysInMonth) {
  EXPECT_EQ(days_in_month(2024, 2), 29);
  EXPECT_EQ(days_in_month(2023, 2), 28);
  EXPECT_EQ(days_in_month(2023, 12), 31);
  EXPECT_EQ(days_in_month(2023, 4), 30);
  EXPECT_THROW(static_cast<void>(days_in_month(2023, 0)), ValidationError);
  EXPECT_THROW(static_cast<void>(days_in_month(2023, 13)), ValidationError);
}

TEST(DateTimeTest, KnownJulianDates) {
  // J2000.0 epoch: 2000-01-01 12:00 UTC = JD 2451545.0.
  EXPECT_NEAR(to_julian(make_datetime(2000, 1, 1, 12)), 2451545.0, 1e-9);
  // Start of the hour axis.
  EXPECT_NEAR(to_julian(make_datetime(2000, 1, 1, 0)), kJdEpoch2000, 1e-9);
  // Vallado example: 1996-10-26 14:20:00 -> 2450383.09722222.
  EXPECT_NEAR(to_julian(make_datetime(1996, 10, 26, 14, 20, 0.0)),
              2450383.0972222222, 1e-8);
}

TEST(DateTimeTest, RoundTripThroughJulian) {
  const DateTime dt = make_datetime(2023, 3, 24, 17, 41, 12.5);
  const DateTime back = from_julian(to_julian(dt));
  EXPECT_EQ(back.year, dt.year);
  EXPECT_EQ(back.month, dt.month);
  EXPECT_EQ(back.day, dt.day);
  EXPECT_EQ(back.hour, dt.hour);
  EXPECT_EQ(back.minute, dt.minute);
  EXPECT_NEAR(back.second, dt.second, 1e-4);
}

// Round-trip sweep across the supported era, including leap days and
// year boundaries.
class JulianRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(JulianRoundTrip, YearStartRoundTrips) {
  const int year = GetParam();
  for (const auto& [m, d, h] : {std::tuple{1, 1, 0}, std::tuple{2, 28, 23},
                                std::tuple{6, 30, 12}, std::tuple{12, 31, 23}}) {
    const DateTime dt = make_datetime(year, m, d, h, 30, 15.0);
    const DateTime back = from_julian(to_julian(dt));
    EXPECT_EQ(back.year, dt.year) << dt.to_string();
    EXPECT_EQ(back.month, dt.month) << dt.to_string();
    EXPECT_EQ(back.day, dt.day) << dt.to_string();
    EXPECT_EQ(back.hour, dt.hour) << dt.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Years, JulianRoundTrip,
                         ::testing::Values(1958, 1970, 1999, 2000, 2019, 2020,
                                           2023, 2024, 2048, 2056));

TEST(DateTimeTest, DayOfYear) {
  EXPECT_EQ(day_of_year(2023, 1, 1), 1);
  EXPECT_EQ(day_of_year(2023, 12, 31), 365);
  EXPECT_EQ(day_of_year(2024, 12, 31), 366);
  EXPECT_EQ(day_of_year(2024, 3, 1), 61);  // leap year
  EXPECT_EQ(day_of_year(2023, 3, 1), 60);
}

TEST(DateTimeTest, MonthDayFromDoyInvertsDayOfYear) {
  for (const int year : {2023, 2024}) {
    const int last = is_leap_year(year) ? 366 : 365;
    for (int doy = 1; doy <= last; ++doy) {
      int month = 0;
      int day = 0;
      month_day_from_doy(year, doy, month, day);
      EXPECT_EQ(day_of_year(year, month, day), doy);
    }
  }
  int m = 0, d = 0;
  EXPECT_THROW(month_day_from_doy(2023, 366, m, d), ValidationError);
  EXPECT_THROW(month_day_from_doy(2023, 0, m, d), ValidationError);
}

TEST(DateTimeTest, ParseDateOnly) {
  const DateTime dt = parse_datetime("2024-05-10");
  EXPECT_EQ(dt.year, 2024);
  EXPECT_EQ(dt.month, 5);
  EXPECT_EQ(dt.day, 10);
  EXPECT_EQ(dt.hour, 0);
}

TEST(DateTimeTest, ParseDateTimeVariants) {
  EXPECT_EQ(parse_datetime("2024-05-10T17:00:30").hour, 17);
  EXPECT_EQ(parse_datetime("2024-05-10 17:05:30").minute, 5);
  EXPECT_NEAR(parse_datetime("2024-05-10T17:00:30.25").second, 30.25, 1e-9);
}

TEST(DateTimeTest, ParseRejectsGarbage) {
  EXPECT_THROW(static_cast<void>(parse_datetime("not a date")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_datetime("2024-05")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_datetime("2024-13-10")), ValidationError);
  EXPECT_THROW(static_cast<void>(parse_datetime("2024-05-10Z12:00:00")), ParseError);
}

TEST(DateTimeTest, ParseRejectsTrailingGarbageAfterTimeOfDay) {
  // sscanf stops at the first unconvertible character, so these used to
  // parse silently with the junk ignored.
  EXPECT_THROW(static_cast<void>(parse_datetime("2024-05-10T12:00:00junk")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_datetime("2024-05-10T12:00:00.5abc")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_datetime("2024-05-10T12:00x")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_datetime("2024-05-10T12:00:")), ParseError);
  EXPECT_THROW(static_cast<void>(parse_datetime("2024-05-10 17:05 UTC")), ParseError);
  // The well-formed variants still parse.
  EXPECT_EQ(parse_datetime("2024-05-10T12:00").minute, 0);
  EXPECT_NEAR(parse_datetime("2024-05-10T12:00:00.5").second, 0.5, 1e-12);
}

TEST(DateTimeTest, ToStringIso) {
  EXPECT_EQ(make_datetime(2024, 5, 10, 17, 4, 3.5).to_string(),
            "2024-05-10T17:04:03.500");
}

TEST(DateTimeTest, AddHoursCrossesBoundaries) {
  const DateTime dt = make_datetime(2023, 12, 31, 23);
  const DateTime next = add_hours(dt, 2.0);
  EXPECT_EQ(next.year, 2024);
  EXPECT_EQ(next.month, 1);
  EXPECT_EQ(next.day, 1);
  EXPECT_EQ(next.hour, 1);
  const DateTime prev = add_hours(dt, -24.0);
  EXPECT_EQ(prev.day, 30);
}

TEST(DateTimeTest, HoursBetween) {
  const DateTime a = make_datetime(2024, 1, 1);
  const DateTime b = make_datetime(2024, 1, 2, 6);
  EXPECT_NEAR(hours_between(a, b), 30.0, 1e-9);
  EXPECT_NEAR(hours_between(b, a), -30.0, 1e-9);
}

TEST(TleEpochTest, CenturyRule) {
  // 57..99 -> 1957..1999, 00..56 -> 2000..2056.
  EXPECT_EQ(from_julian(tle_epoch_to_julian(57, 1.0)).year, 1957);
  EXPECT_EQ(from_julian(tle_epoch_to_julian(99, 1.0)).year, 1999);
  EXPECT_EQ(from_julian(tle_epoch_to_julian(0, 1.0)).year, 2000);
  EXPECT_EQ(from_julian(tle_epoch_to_julian(56, 1.0)).year, 2056);
}

TEST(TleEpochTest, FractionalDay) {
  // Day 32.5 of 2020 = Feb 1, 12:00.
  const DateTime dt = from_julian(tle_epoch_to_julian(20, 32.5));
  EXPECT_EQ(dt.month, 2);
  EXPECT_EQ(dt.day, 1);
  EXPECT_EQ(dt.hour, 12);
}

TEST(TleEpochTest, RoundTrip) {
  const double jd = to_julian(make_datetime(2023, 9, 18, 6, 30));
  int yy = 0;
  double doy = 0.0;
  julian_to_tle_epoch(jd, yy, doy);
  EXPECT_EQ(yy, 23);
  EXPECT_NEAR(tle_epoch_to_julian(yy, doy), jd, 1e-8);
}

TEST(TleEpochTest, RejectsBadInput) {
  EXPECT_THROW(static_cast<void>(tle_epoch_to_julian(-1, 10.0)), ValidationError);
  EXPECT_THROW(static_cast<void>(tle_epoch_to_julian(100, 10.0)), ValidationError);
  EXPECT_THROW(static_cast<void>(tle_epoch_to_julian(23, 0.5)), ValidationError);
  EXPECT_THROW(static_cast<void>(tle_epoch_to_julian(23, 366.0)), ValidationError);  // not leap
  EXPECT_NO_THROW(static_cast<void>(tle_epoch_to_julian(24, 366.5)));                // leap
}

TEST(HourAxisTest, EpochAnchorsAtZero) {
  EXPECT_EQ(hour_index_from_datetime(make_datetime(2000, 1, 1, 0)), 0);
  EXPECT_EQ(hour_index_from_datetime(make_datetime(2000, 1, 1, 1)), 1);
  EXPECT_EQ(hour_index_from_datetime(make_datetime(1999, 12, 31, 23)), -1);
}

TEST(HourAxisTest, RoundTrip) {
  for (const HourIndex h : {HourIndex{0}, HourIndex{123456}, HourIndex{-9876}}) {
    EXPECT_EQ(hour_index_from_datetime(datetime_from_hour_index(h)), h);
  }
}

TEST(HourAxisTest, FloorsWithinHour) {
  const double jd = to_julian(make_datetime(2024, 5, 10, 17, 59, 59.0));
  EXPECT_EQ(hour_index_from_julian(jd),
            hour_index_from_datetime(make_datetime(2024, 5, 10, 17)));
}

TEST(SiderealTest, GmstInRange) {
  for (double jd = 2451545.0; jd < 2451545.0 + 366.0; jd += 0.25) {
    const double gmst = gmst_radians(jd);
    EXPECT_GE(gmst, 0.0);
    EXPECT_LT(gmst, units::kTwoPi);
  }
}

TEST(SiderealTest, AdvancesBySiderealDay) {
  // GMST advances ~2*pi per sidereal day (23h56m4.09s).
  const double jd = 2459000.5;
  const double sidereal_day = 0.9972695663;
  const double delta = gmst_radians(jd + sidereal_day) - gmst_radians(jd);
  EXPECT_NEAR(units::wrap_pi(delta), 0.0, 1e-5);
}

TEST(SiderealTest, KnownValue) {
  // Vallado example 3-5: 1992-08-20 12:14:00 UT1 -> GMST 152.578787886 deg.
  const double jd = to_julian(make_datetime(1992, 8, 20, 12, 14, 0.0));
  EXPECT_NEAR(units::rad2deg(gmst_radians(jd)), 152.578787886, 1e-5);
}

}  // namespace
}  // namespace cosmicdance::timeutil
