#include "timeutil/datetime.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "common/error.hpp"

namespace cosmicdance::timeutil {
namespace {

constexpr std::array<int, 12> kDaysPerMonth{31, 28, 31, 30, 31, 30,
                                            31, 31, 30, 31, 30, 31};

}  // namespace

bool is_leap_year(int year) noexcept {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) {
  if (month < 1 || month > 12) {
    throw ValidationError("month out of range: " + std::to_string(month));
  }
  if (month == 2 && is_leap_year(year)) return 29;
  return kDaysPerMonth[static_cast<std::size_t>(month - 1)];
}

void DateTime::validate() const {
  // Julian conversions are exact over the whole range (proleptic Gregorian
  // day arithmetic, century rule included); 1800 onward covers the
  // pre-instrumental reference storms.
  if (year < 1800 || year > 2100) {
    throw ValidationError("year out of supported range 1800-2100: " +
                          std::to_string(year));
  }
  if (month < 1 || month > 12) {
    throw ValidationError("month out of range: " + std::to_string(month));
  }
  if (day < 1 || day > days_in_month(year, month)) {
    throw ValidationError("day out of range: " + std::to_string(day));
  }
  if (hour < 0 || hour > 23) {
    throw ValidationError("hour out of range: " + std::to_string(hour));
  }
  if (minute < 0 || minute > 59) {
    throw ValidationError("minute out of range: " + std::to_string(minute));
  }
  if (second < 0.0 || second >= 60.0) {
    throw ValidationError("second out of range: " + std::to_string(second));
  }
}

std::string DateTime::to_string() const {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02dT%02d:%02d:%06.3f", year,
                month, day, hour, minute, second);
  return buffer;
}

int day_of_year(int year, int month, int day) {
  DateTime probe{year, month, day, 0, 0, 0.0};
  probe.validate();
  int doy = day;
  for (int m = 1; m < month; ++m) doy += days_in_month(year, m);
  return doy;
}

void month_day_from_doy(int year, int doy, int& month, int& day) {
  const int limit = is_leap_year(year) ? 366 : 365;
  if (doy < 1 || doy > limit) {
    throw ValidationError("day-of-year out of range: " + std::to_string(doy));
  }
  int m = 1;
  int remaining = doy;
  while (remaining > days_in_month(year, m)) {
    remaining -= days_in_month(year, m);
    ++m;
  }
  month = m;
  day = remaining;
}

double to_julian(const DateTime& dt) {
  dt.validate();
  // Fliegel-Van Flandern Gregorian day number.  Unlike the classic "jday"
  // formula (which skips the century rule and is one day early throughout
  // January-February 1900 and one day late from March 2100), this is exact
  // for the whole supported era; the two agree bit-for-bit in between, so
  // every epoch the paper touches keeps its value.
  const int a = (14 - dt.month) / 12;
  const int y = dt.year + 4800 - a;
  const int m = dt.month + 12 * a - 3;
  const int jdn = dt.day + (153 * m + 2) / 5 + 365 * y + y / 4 - y / 100 +
                  y / 400 - 32045;
  const double day_fraction =
      ((dt.second / 60.0 + dt.minute) / 60.0 + dt.hour) / 24.0;
  return static_cast<double>(jdn) - 0.5 + day_fraction;
}

DateTime from_julian(double jd) {
  // Exact integer inverse of to_julian (Richards' Gregorian calendar
  // algorithm), then split the day fraction into hh:mm:ss.
  const double shifted = jd + 0.5;
  const auto jdn = static_cast<long>(std::floor(shifted));
  const double fraction = shifted - std::floor(shifted);
  const long a = jdn + 32044;
  const long b = (4 * a + 3) / 146097;
  const long c = a - 146097 * b / 4;
  const long d = (4 * c + 3) / 1461;
  const long e = c - 1461 * d / 4;
  const long m = (5 * e + 2) / 153;
  DateTime dt;
  dt.day = static_cast<int>(e - (153 * m + 2) / 5 + 1);
  dt.month = static_cast<int>(m + 3 - 12 * (m / 10));
  dt.year = static_cast<int>(100 * b + d - 4800 + m / 10);
  double hours = fraction * 24.0;
  dt.hour = static_cast<int>(std::floor(hours));
  double minutes = (hours - dt.hour) * 60.0;
  dt.minute = static_cast<int>(std::floor(minutes));
  dt.second = (minutes - dt.minute) * 60.0;
  // Normalise rounding artefacts like second == 59.99999999 -> 60.  The
  // threshold is half a millisecond so %.3f printing never shows "60.000".
  if (dt.second >= 60.0 - 5e-4) {
    dt.second = 0.0;
    dt.minute += 1;
  }
  if (dt.minute >= 60) {
    dt.minute = 0;
    dt.hour += 1;
  }
  if (dt.hour >= 24) {
    dt.hour = 0;
    dt.day += 1;
    if (dt.day > days_in_month(dt.year, dt.month)) {
      dt.day = 1;
      dt.month += 1;
      if (dt.month > 12) {
        dt.month = 1;
        dt.year += 1;
      }
    }
  }
  return dt;
}

namespace {

/// Strict cursor scanner for the fixed datetime grammar.  Hand-rolled so
/// the parse stays inside the project's checked-parse discipline (sscanf
/// is off-limits outside src/io/); sign and whitespace tolerance matches
/// the %d/%lf behaviour it replaced, so out-of-range fields like a month
/// of -5 still reach validate() and surface as ValidationError, not as a
/// syntax error.
struct FieldScanner {
  const char* p;

  void skip_spaces() {
    while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }

  bool read_sign() {  // returns true when the field is negated
    const bool negative = *p == '-';
    if (*p == '+' || *p == '-') ++p;
    return negative;
  }

  bool read_int(int& out) {
    skip_spaces();
    const bool negative = read_sign();
    if (*p < '0' || *p > '9') return false;
    long value = 0;
    while (*p >= '0' && *p <= '9') {
      value = value * 10 + (*p - '0');
      if (value > 1000000000L) return false;
      ++p;
    }
    out = static_cast<int>(negative ? -value : value);
    return true;
  }

  /// digits[.digits] with either part optional (".5", "30.", "30.25").
  /// The value is numerator / 10^k in a single division, which rounds
  /// identically to a correctly-rounded decimal conversion of the same
  /// text, so round-trips through format_datetime stay bit-exact.
  bool read_seconds(double& out) {
    skip_spaces();
    const bool negative = read_sign();
    std::uint64_t numerator = 0;
    std::uint64_t denominator = 1;
    int digits = 0;
    bool any = false;
    while (*p >= '0' && *p <= '9') {
      if (++digits > 15) return false;
      numerator = numerator * 10 + static_cast<std::uint64_t>(*p - '0');
      any = true;
      ++p;
    }
    if (*p == '.') {
      ++p;
      while (*p >= '0' && *p <= '9') {
        if (++digits > 15) return false;
        numerator = numerator * 10 + static_cast<std::uint64_t>(*p - '0');
        denominator *= 10;
        any = true;
        ++p;
      }
    }
    if (!any) return false;
    out = static_cast<double>(numerator) / static_cast<double>(denominator);
    if (negative) out = -out;
    return true;
  }

  bool consume(char c) {
    if (*p != c) return false;
    ++p;
    return true;
  }
};

}  // namespace

DateTime parse_datetime(const std::string& text) {
  DateTime dt;
  FieldScanner scan{text.c_str()};
  if (!scan.read_int(dt.year) || !scan.consume('-') ||
      !scan.read_int(dt.month) || !scan.consume('-') ||
      !scan.read_int(dt.day)) {
    throw ParseError("bad datetime: '" + text + "'");
  }
  if (*scan.p == 'T' || *scan.p == ' ') {
    ++scan.p;
    int hour = 0;
    int minute = 0;
    if (!scan.read_int(hour) || !scan.consume(':') || !scan.read_int(minute)) {
      throw ParseError("bad time-of-day in datetime: '" + text + "'");
    }
    if (scan.consume(':')) {
      double second = 0.0;
      if (!scan.read_seconds(second)) {
        throw ParseError("bad time-of-day in datetime: '" + text + "'");
      }
      if (*scan.p != '\0') {
        throw ParseError("trailing characters in datetime: '" + text + "'");
      }
      dt.second = second;
    } else if (*scan.p != '\0') {
      throw ParseError("bad time-of-day in datetime: '" + text + "'");
    } else {
      dt.second = 0.0;
    }
    dt.hour = hour;
    dt.minute = minute;
  } else if (*scan.p != '\0') {
    throw ParseError("trailing characters in datetime: '" + text + "'");
  }
  dt.validate();
  return dt;
}

DateTime make_datetime(int year, int month, int day, int hour, int minute,
                       double second) {
  DateTime dt{year, month, day, hour, minute, second};
  dt.validate();
  return dt;
}

double tle_epoch_to_julian(int two_digit_year, double day_of_year_fraction) {
  if (two_digit_year < 0 || two_digit_year > 99) {
    throw ValidationError("TLE epoch year must be two digits: " +
                          std::to_string(two_digit_year));
  }
  const int year = two_digit_year < 57 ? 2000 + two_digit_year : 1900 + two_digit_year;
  const int limit = is_leap_year(year) ? 366 : 365;
  if (day_of_year_fraction < 1.0 || day_of_year_fraction >= limit + 1.0) {
    throw ValidationError("TLE epoch day-of-year out of range: " +
                          std::to_string(day_of_year_fraction));
  }
  const DateTime jan1{year, 1, 1, 0, 0, 0.0};
  return to_julian(jan1) + (day_of_year_fraction - 1.0);
}

void julian_to_tle_epoch(double jd, int& two_digit_year, double& day_of_year_fraction) {
  const DateTime dt = from_julian(jd);
  const DateTime jan1{dt.year, 1, 1, 0, 0, 0.0};
  day_of_year_fraction = jd - to_julian(jan1) + 1.0;
  two_digit_year = dt.year % 100;
}

DateTime add_hours(const DateTime& dt, double hours) {
  return from_julian(to_julian(dt) + hours / 24.0);
}

double hours_between(const DateTime& a, const DateTime& b) {
  return (to_julian(b) - to_julian(a)) * 24.0;
}

}  // namespace cosmicdance::timeutil
