// Greenwich Mean Sidereal Time, needed for TEME -> Earth-fixed rotation.
#pragma once

namespace cosmicdance::timeutil {

/// GMST in radians, wrapped to [0, 2*pi), for a UT1 Julian date.
/// Uses the IAU-82 polynomial (Vallado's gstime), accurate to well under a
/// second of time across 1950-2050 — ample for km-level geolocation.
[[nodiscard]] double gmst_radians(double jd_ut1) noexcept;

}  // namespace cosmicdance::timeutil
