// Conjunction-rate estimation (paper §6, Kessler-syndrome future work).
//
// A kinetic-theory estimate of collision rates between a shell's resident
// population and satellites trespassing through it: residents form a thin
// spherical shell of spatial density n = N / (4*pi*a^2*dh); a trespasser
// sweeping through with relative speed v_rel and combined cross-section
// sigma accumulates collision probability  n * sigma * v_rel  per unit
// time.  Deliberately simple (no inclination-dependent flux weighting) but
// dimensionally honest — the point is the *ratio* between storm-time and
// quiet-time exposure.
#pragma once

#include <span>

#include "core/shells.hpp"
#include "core/track.hpp"

namespace cosmicdance::core {

struct KesslerConfig {
  ShellConfig shells;
  /// Residents per shell at full constellation scale.
  double satellites_per_shell = 1600.0;
  /// Combined collision cross-section (km^2): two ~4 m bodies plus margin.
  double cross_section_km2 = 1.0e-4;
  /// Mean relative speed between crossing orbits at LEO (km/s): two circular
  /// orbits with different planes meet at up to ~2*v_orb; ~10 km/s typical.
  double relative_speed_km_s = 10.0;
};

/// Spatial density (satellites / km^3) of a populated shell.
[[nodiscard]] double shell_spatial_density(double shell_altitude_km,
                                           const KesslerConfig& config);

/// Expected collisions per year of *dwell time inside foreign shells* for
/// one trespassing satellite.
[[nodiscard]] double collision_rate_per_dwell_year(double shell_altitude_km,
                                                   const KesslerConfig& config);

/// Aggregate conjunction exposure of a track set over a time window:
/// expected collision count (tiny number — the interesting output is the
/// storm/quiet ratio) given the foreign-shell dwell in that window.
struct ConjunctionExposure {
  double dwell_days = 0.0;           ///< foreign-shell satellite-days
  double expected_collisions = 0.0;  ///< over that dwell
};

[[nodiscard]] ConjunctionExposure conjunction_exposure(
    std::span<const SatelliteTrack> tracks, double jd_lo, double jd_hi,
    const KesslerConfig& config = {});

}  // namespace cosmicdance::core
