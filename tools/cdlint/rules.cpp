#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <tuple>

namespace cdlint {
namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

const std::set<std::string>& known_rules() {
  static const std::set<std::string> kRules{
      "nondeterminism", "unordered-iter", "raw-parse", "naked-throw",
      "counter-in-loop", "stdout-in-lib", "include-first", "no-endl",
      "shared-mutable-capture", "lock-order-cycle", "blocking-under-lock",
      "thread-no-join", "fp-accumulation-order", "relaxed-order",
      "allow-reason"};
  return kRules;
}

/// Raw conversion calls banned outside the checked-parse helpers.
const std::set<std::string>& raw_parse_calls() {
  static const std::set<std::string> kCalls{
      "strtod", "strtof", "strtold", "strtol",  "strtoul", "strtoll",
      "strtoull", "stod", "stof",    "stold",   "stoi",    "stol",
      "stoul",  "stoll",  "stoull",  "atof",    "atoi",    "atol",
      "atoll",  "sscanf"};
  return kCalls;
}

/// Wall-clock / CPU-clock calls (allowed under src/obs/ and bench/).
const std::set<std::string>& clock_calls() {
  static const std::set<std::string> kCalls{"time", "clock", "gmtime",
                                            "localtime", "clock_gettime"};
  return kCalls;
}

struct Context {
  const SourceFile& file;
  std::vector<Finding>& findings;

  void report(std::size_t line, const std::string& rule,
              const std::string& message) {
    if (file.allowed(line, rule)) return;
    findings.push_back(
        Finding{file.path(), line, rule, message, file.normalized_raw(line)});
  }
};

// --- small code_text scanning helpers --------------------------------------

/// Cumulative start offset of each line in code_text().
std::vector<std::size_t> line_starts(const SourceFile& f) {
  std::vector<std::size_t> starts;
  starts.reserve(f.code_lines().size());
  std::size_t off = 0;
  for (const std::string& line : f.code_lines()) {
    starts.push_back(off);
    off += line.size() + 1;
  }
  return starts;
}

/// Find the offset of the matching closing delimiter, honouring nesting of
/// the same pair only.  Returns npos when unbalanced.
std::size_t match_forward(const std::string& text, std::size_t open_offset,
                          char open, char close) {
  std::size_t depth = 0;
  for (std::size_t i = open_offset; i < text.size(); ++i) {
    if (text[i] == open) ++depth;
    else if (text[i] == close) {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

std::string read_ident_at(const std::string& text, std::size_t offset) {
  std::size_t end = offset;
  while (end < text.size() && is_ident_char(text[end])) ++end;
  return text.substr(offset, end - offset);
}

/// Reads the identifier that ends just before `offset` (skipping trailing
/// whitespace backwards); empty when none.
std::string read_ident_before(const std::string& text, std::size_t offset) {
  std::size_t end = offset;
  while (end > 0 && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0)
    --end;
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(text[begin - 1])) --begin;
  return text.substr(begin, end - begin);
}

std::size_t skip_ws(const std::string& text, std::size_t offset) {
  while (offset < text.size() &&
         std::isspace(static_cast<unsigned char>(text[offset])) != 0)
    ++offset;
  return offset;
}

// --- R1: nondeterminism ------------------------------------------------------

void rule_nondeterminism(Context& ctx) {
  const SourceFile& f = ctx.file;
  const bool clock_exempt = starts_with(f.path(), "src/obs/") ||
                            starts_with(f.path(), "bench/");
  for (const Token& t : f.tokens()) {
    const char after = f.char_after(t);
    const char before = f.char_before(t);
    const bool member_call = before == '.' || before == '>';
    if ((t.text == "rand" || t.text == "srand") && after == '(' &&
        !member_call) {
      ctx.report(t.line, "nondeterminism",
                 "call to " + t.text +
                     "() -- banned nondeterminism source; use cosmicdance::Rng "
                     "with an explicit seed");
    } else if (t.text == "random_device") {
      ctx.report(t.line, "nondeterminism",
                 "std::random_device -- banned nondeterminism source; seed "
                 "cosmicdance::Rng explicitly");
    } else if (t.text == "system_clock" && !clock_exempt) {
      ctx.report(t.line, "nondeterminism",
                 "std::chrono::system_clock -- wall clock reads are banned "
                 "outside src/obs/ and bench/");
    } else if (clock_calls().count(t.text) > 0 && after == '(' &&
               !member_call && !clock_exempt) {
      ctx.report(t.line, "nondeterminism",
                 "call to " + t.text +
                     "() -- wall clock reads are banned outside src/obs/ and "
                     "bench/");
    }
  }
  // Pointer-keyed ordered containers: iteration order follows allocation
  // addresses, which vary run to run.
  const std::string& text = f.code_text();
  for (const char* pattern : {"std::map<", "std::set<"}) {
    const std::size_t pattern_len = std::string(pattern).size();
    std::size_t at = text.find(pattern);
    while (at != std::string::npos) {
      std::string first_arg;
      int depth = 0;
      for (std::size_t i = at + pattern_len - 1; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '<' || c == '(') {
          ++depth;
          if (depth > 1) first_arg.push_back(c);
        } else if (c == '>' || c == ')') {
          --depth;
          if (depth <= 0) break;
          first_arg.push_back(c);
        } else if (c == ',' && depth == 1) {
          break;
        } else if (c == ';') {
          first_arg.clear();
          break;
        } else {
          first_arg.push_back(c);
        }
      }
      const std::string arg = trim(first_arg);
      if (!arg.empty() && arg.back() == '*') {
        ctx.report(f.line_of_offset(at), "nondeterminism",
                   "pointer-keyed std::map/std::set -- iteration order "
                   "depends on allocation; key by a stable id instead");
      }
      at = text.find(pattern, at + 1);
    }
  }
}

// --- R2: unordered-iter ------------------------------------------------------

void rule_unordered_iter(Context& ctx) {
  const SourceFile& f = ctx.file;
  const std::string& text = f.code_text();
  const std::vector<std::size_t> starts = line_starts(f);
  auto offset_of = [&](const Token& t) { return starts[t.line - 1] + t.col; };

  // Pass 1: names declared with an unordered container type.  After the
  // closing '>' only refs/pointers and cv qualifiers may precede the
  // declared name; anything else (';', '=', '(') means no declaration.
  std::set<std::string> unordered_names;
  const std::vector<Token>& tokens = f.tokens();
  for (std::size_t ti = 0; ti < tokens.size(); ++ti) {
    const Token& t = tokens[ti];
    if (t.text != "unordered_map" && t.text != "unordered_set") continue;
    if (f.char_after(t) != '<') continue;
    const std::size_t open = text.find('<', offset_of(t));
    if (open == std::string::npos) continue;
    const std::size_t close = match_forward(text, open, '<', '>');
    if (close == std::string::npos) continue;
    std::size_t p = close + 1;
    for (;;) {
      p = skip_ws(text, p);
      if (p >= text.size()) break;
      const char c = text[p];
      if (c == '&' || c == '*') {
        ++p;
        continue;
      }
      if (is_ident_char(c)) {
        const std::string ident = read_ident_at(text, p);
        if (ident == "const") {
          p += ident.size();
          continue;
        }
        if (std::isdigit(static_cast<unsigned char>(ident[0])) == 0) {
          unordered_names.insert(ident);
        }
      }
      break;
    }
  }
  if (unordered_names.empty()) return;

  // Pass 2a: member traversal m.begin() / m.cbegin().
  for (std::size_t ti = 0; ti + 1 < tokens.size(); ++ti) {
    const Token& t = tokens[ti];
    if (unordered_names.count(t.text) == 0) continue;
    if (f.char_after(t) != '.') continue;
    const std::string& next = tokens[ti + 1].text;
    if (next == "begin" || next == "cbegin" || next == "end" ||
        next == "cend") {
      ctx.report(t.line, "unordered-iter",
                 "iterator traversal of unordered container '" + t.text +
                     "' -- hash order is nondeterministic; copy into a "
                     "sorted container first");
    }
  }

  // Pass 2b: range-for over a declared unordered name.
  for (const Token& t : tokens) {
    if (t.text != "for" || f.char_after(t) != '(') continue;
    const std::size_t open = text.find('(', offset_of(t));
    if (open == std::string::npos) continue;
    const std::size_t close = match_forward(text, open, '(', ')');
    if (close == std::string::npos) continue;
    const std::string inside = text.substr(open + 1, close - open - 1);
    // Find a ':' that is not part of '::'.
    std::size_t colon = std::string::npos;
    for (std::size_t i = 0; i < inside.size(); ++i) {
      if (inside[i] != ':') continue;
      const bool dbl = (i + 1 < inside.size() && inside[i + 1] == ':') ||
                       (i > 0 && inside[i - 1] == ':');
      if (!dbl) {
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    std::string range = trim(inside.substr(colon + 1));
    while (!range.empty() && (range.front() == '*' || range.front() == '&' ||
                              range.front() == '('))
      range.erase(range.begin());
    range = trim(range);
    if (unordered_names.count(range) > 0) {
      ctx.report(t.line, "unordered-iter",
                 "range-for over unordered container '" + range +
                     "' -- hash order is nondeterministic; iterate a sorted "
                     "copy or key set instead");
    }
  }
}

// --- R3: raw-parse -----------------------------------------------------------

void rule_raw_parse(Context& ctx) {
  const SourceFile& f = ctx.file;
  if (starts_with(f.path(), "src/io/") || starts_with(f.path(), "src/tle/"))
    return;
  for (const Token& t : f.tokens()) {
    if (raw_parse_calls().count(t.text) == 0) continue;
    if (f.char_after(t) != '(') continue;
    const char before = f.char_before(t);
    if (before == '.' || before == '>') continue;  // member of another type
    ctx.report(t.line, "raw-parse",
               "raw " + t.text +
                   "() outside src/io//src/tle -- parse through the checked "
                   "helpers in io/parse.hpp so failures are policy-routed");
  }
}

// --- R4: naked-throw ---------------------------------------------------------

void rule_naked_throw(Context& ctx) {
  const SourceFile& f = ctx.file;
  if (!starts_with(f.path(), "src/")) return;
  // src/diag/ implements ParsePolicy routing itself: ParseLog::reject *is*
  // the sanctioned throw site, so the rule is definitionally exempt there.
  if (starts_with(f.path(), "src/diag/")) return;
  const std::string& text = f.code_text();
  const std::vector<std::size_t> starts = line_starts(f);

  for (const Token& t : f.tokens()) {
    if (t.text != "ParseLog") continue;
    // A ParseLog mention that reaches '{' before ';' is a function
    // definition with a ParseLog parameter — the policy-routed entry point.
    std::size_t i = starts[t.line - 1] + t.col + t.text.size();
    std::size_t body_open = std::string::npos;
    for (; i < text.size(); ++i) {
      if (text[i] == ';') break;
      if (text[i] == '{') {
        body_open = i;
        break;
      }
    }
    if (body_open == std::string::npos) continue;
    const std::size_t body_close = match_forward(text, body_open, '{', '}');
    if (body_close == std::string::npos) continue;

    // Walk the body tracking which braces open try/catch compounds.
    std::vector<char> stack;  // 't' try, 'c' catch, '.' plain
    for (std::size_t j = body_open + 1; j < body_close; ++j) {
      const char c = text[j];
      if (c == '{') {
        // Classify by what precedes the brace.
        std::size_t k = j;
        while (k > 0 &&
               std::isspace(static_cast<unsigned char>(text[k - 1])) != 0)
          --k;
        char kind = '.';
        if (k > 0 && text[k - 1] == ')') {
          const std::size_t close_paren = k - 1;
          std::size_t depth = 0;
          std::size_t open_paren = std::string::npos;
          for (std::size_t p = close_paren + 1; p-- > 0;) {
            if (text[p] == ')') ++depth;
            else if (text[p] == '(') {
              if (--depth == 0) {
                open_paren = p;
                break;
              }
            }
          }
          if (open_paren != std::string::npos &&
              read_ident_before(text, open_paren) == "catch") {
            kind = 'c';
          }
        } else {
          const std::string ident = read_ident_before(text, k);
          if (ident == "try") kind = 't';
        }
        stack.push_back(kind);
      } else if (c == '}') {
        if (!stack.empty()) stack.pop_back();
      } else if (is_ident_char(c) && (j == 0 || !is_ident_char(text[j - 1]))) {
        const std::string ident = read_ident_at(text, j);
        if (ident == "throw") {
          // Thrown type: skip namespace qualifiers.
          std::size_t k = skip_ws(text, j + 5);
          std::string thrown = read_ident_at(text, k);
          while (text.compare(k + thrown.size(), 2, "::") == 0) {
            k = k + thrown.size() + 2;
            thrown = read_ident_at(text, k);
          }
          const bool routed =
              std::any_of(stack.begin(), stack.end(),
                          [](char s) { return s == 't' || s == 'c'; });
          if (thrown == "ParseError" && !routed) {
            ctx.report(f.line_of_offset(j), "naked-throw",
                       "throw ParseError in a ParseLog-routed parse function "
                       "outside try/catch -- route the failure through "
                       "ParseLog::reject so ParsePolicy applies");
          }
        }
        j += ident.size() - 1;
      }
    }
  }
}

// --- R5: counter-in-loop -----------------------------------------------------

void rule_counter_in_loop(Context& ctx) {
  const SourceFile& f = ctx.file;
  const std::string& text = f.code_text();
  const std::vector<std::size_t> starts = line_starts(f);
  auto offset_of = [&](const Token& t) { return starts[t.line - 1] + t.col; };

  // Collect loop body extents: braced bodies and single-statement bodies.
  struct Extent {
    std::size_t begin;
    std::size_t end;
  };
  std::vector<Extent> loops;
  for (const Token& t : f.tokens()) {
    if (t.text == "for" || t.text == "while") {
      if (f.char_after(t) != '(') continue;
      const std::size_t open = text.find('(', offset_of(t));
      if (open == std::string::npos) continue;
      const std::size_t close = match_forward(text, open, '(', ')');
      if (close == std::string::npos) continue;
      const std::size_t next = skip_ws(text, close + 1);
      if (next < text.size() && text[next] == '{') {
        const std::size_t body_close = match_forward(text, next, '{', '}');
        if (body_close != std::string::npos)
          loops.push_back({next, body_close});
      } else if (next < text.size() && text[next] != ';') {
        const std::size_t semi = text.find(';', next);
        if (semi != std::string::npos) loops.push_back({next, semi});
      }
    } else if (t.text == "do" && f.char_after(t) == '{') {
      const std::size_t open = text.find('{', offset_of(t));
      if (open == std::string::npos) continue;
      const std::size_t body_close = match_forward(text, open, '{', '}');
      if (body_close != std::string::npos) loops.push_back({open, body_close});
    }
  }
  if (loops.empty()) return;

  for (const Token& t : f.tokens()) {
    const bool registry_lookup =
        (t.text == "counter" || t.text == "sched_counter") &&
        (f.char_before(t) == '.' || f.char_before(t) == '>') &&
        f.char_after(t) == '(';
    const bool helper_lookup =
        t.text == "counter_or_null" && f.char_after(t) == '(';
    if (!registry_lookup && !helper_lookup) continue;
    const std::size_t at = offset_of(t);
    const bool in_loop = std::any_of(
        loops.begin(), loops.end(),
        [at](const Extent& e) { return at > e.begin && at < e.end; });
    if (in_loop) {
      ctx.report(t.line, "counter-in-loop",
                 "obs counter registry lookup inside a loop -- hoist a "
                 "Counter* handle (obs::counter_or_null) out of the loop and "
                 "bump() it");
    }
  }
}

// --- R6: stdout-in-lib -------------------------------------------------------

void rule_stdout_in_lib(Context& ctx) {
  const SourceFile& f = ctx.file;
  if (!starts_with(f.path(), "src/")) return;
  for (const Token& t : f.tokens()) {
    if (t.text == "cout") {
      ctx.report(t.line, "stdout-in-lib",
                 "std::cout in a src/ library -- stdout belongs to the CLI, "
                 "tools and benches; return data or take an ostream&");
    } else if ((t.text == "printf" || t.text == "puts" ||
                t.text == "putchar") &&
               f.char_after(t) == '(' && f.char_before(t) != '.' &&
               f.char_before(t) != '>') {
      ctx.report(t.line, "stdout-in-lib",
                 "call to " + t.text +
                     "() in a src/ library -- stdout belongs to the CLI, "
                     "tools and benches");
    }
  }
}

// --- R8: no-endl -------------------------------------------------------------

void rule_no_endl(Context& ctx) {
  const SourceFile& f = ctx.file;
  if (!starts_with(f.path(), "src/")) return;
  for (const Token& t : f.tokens()) {
    if (t.text == "endl") {
      ctx.report(t.line, "no-endl",
                 "std::endl in a src/ library -- it forces a flush per line, "
                 "which dominated report/export hot loops before the "
                 "zero-copy work; write '\\n' and let the stream flush");
    }
  }
}

// --- R7: include-first -------------------------------------------------------

void rule_include_first(Context& ctx, bool has_sibling_header) {
  const SourceFile& f = ctx.file;
  if (!ends_with(f.path(), ".cpp") || !has_sibling_header) return;
  const std::size_t slash = f.path().rfind('/');
  const std::string base =
      f.path().substr(slash == std::string::npos ? 0 : slash + 1);
  const std::string stem = base.substr(0, base.size() - 4);  // drop ".cpp"
  const std::string header = stem + ".hpp";

  const std::vector<std::string>& lines = f.code_lines();
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string line = trim(lines[li]);
    if (line.rfind("#include", 0) != 0) continue;
    const std::size_t q1 = line.find_first_of("\"<");
    const std::size_t q2 =
        q1 == std::string::npos ? std::string::npos
                                : line.find_first_of("\">", q1 + 1);
    const std::string included =
        (q1 != std::string::npos && q2 != std::string::npos)
            ? line.substr(q1 + 1, q2 - q1 - 1)
            : std::string();
    const bool quoted = q1 != std::string::npos && line[q1] == '"';
    const bool own = quoted && (included == header ||
                                ends_with(included, "/" + header));
    if (!own) {
      ctx.report(li + 1, "include-first",
                 "first #include must be this file's own header \"" + header +
                     "\" (got '" + included +
                     "') so the header is proven self-contained");
    }
    return;  // only the first include matters
  }
  ctx.report(1, "include-first",
             "no #include found; a .cpp with a sibling header must include \"" +
                 header + "\" first");
}

// --- meta: allow-reason ------------------------------------------------------

void rule_allow_reason(Context& ctx) {
  for (const AllowDirective& allow : ctx.file.allows()) {
    if (!allow.has_reason) {
      ctx.findings.push_back(Finding{
          ctx.file.path(), allow.directive_line, "allow-reason",
          "cdlint allow() directive without a justification -- state "
          "why the exception is safe; reasonless allows suppress "
          "nothing",
          ctx.file.normalized_raw(allow.directive_line)});
    }
    for (const std::string& rule : allow.rules) {
      if (known_rules().count(rule) == 0) {
        ctx.findings.push_back(Finding{
            ctx.file.path(), allow.directive_line, "allow-reason",
            "unknown rule '" + rule + "' in cdlint allow() directive",
            ctx.file.normalized_raw(allow.directive_line)});
      }
    }
  }
}

// === phase 2: cross-file rules over the merged project index ================

/// Finding emitter that honours the allow() records carried in a FileIndex
/// (the SourceFile is gone by the time phase 2 runs).
struct ProjectContext {
  const FileIndex& file;
  std::vector<Finding>& findings;

  void report(std::size_t line, const std::string& rule,
              const std::string& message, const std::string& raw,
              std::size_t alternate_allow_line = 0) {
    if (file.allowed(line, rule)) return;
    if (alternate_allow_line != 0 &&
        file.allowed(alternate_allow_line, rule)) {
      return;
    }
    findings.push_back(Finding{file.file, line, rule, message, raw});
  }
};

// --- R9: shared-mutable-capture ---------------------------------------------

void rule_shared_mutable_capture(const FileIndex& fi,
                                 std::vector<Finding>& findings) {
  // Same-file atomics commute and mutexes serialize themselves; writes to
  // them inside a parallel body are not shared-mutable-state races.
  std::set<std::string> exempt;
  for (const AtomicDecl& d : fi.atomics) exempt.insert(d.name);
  for (const MutexDecl& d : fi.mutexes) exempt.insert(d.name);
  ProjectContext ctx{fi, findings};
  for (const ParallelSite& site : fi.parallel_sites) {
    std::set<std::string> flagged;  // one finding per name per site
    for (const ParallelWrite& w : site.writes) {
      if (w.subscripted) continue;
      if (site.locals.count(w.name) > 0) continue;
      if (exempt.count(w.name) > 0) continue;
      if (flagged.count(w.name) > 0) continue;
      const bool by_ref =
          site.ref_captures.count(w.name) > 0 ||
          (site.capture_default_ref && site.value_captures.count(w.name) == 0);
      if (!by_ref) continue;
      flagged.insert(w.name);
      // The allow may sit on the write line or on the capture (call) line.
      ctx.report(w.line, "shared-mutable-capture",
                 "'" + w.name +
                     "' is captured by reference and written inside an exec::" +
                     site.callee +
                     " body without per-index addressing -- every worker "
                     "mutates one shared object; write into an index-addressed "
                     "slot or make it a per-worker local",
                 w.raw, site.line);
    }
  }
}

// --- R10: lock-order-cycle ---------------------------------------------------

void rule_lock_order_cycle(const ProjectIndex& index,
                           std::vector<Finding>& findings) {
  // Lock graph over subsystem-qualified mutex names: `mutex_` in src/exec
  // must never alias `mutex_` in src/serve.
  struct Site {
    const FileIndex* file;
    const LockEdge* edge;
  };
  std::map<std::string, std::map<std::string, std::vector<Site>>> graph;
  for (const FileIndex& fi : index.files) {
    const std::string subsystem = subsystem_of(fi.file);
    for (const LockEdge& e : fi.lock_edges) {
      if (e.held == e.acquired) continue;  // recursive re-entry, not an order
      graph[subsystem + ":" + e.held][subsystem + ":" + e.acquired].push_back(
          Site{&fi, &e});
    }
  }
  auto reaches = [&graph](const std::string& from, const std::string& to) {
    std::set<std::string> seen{from};
    std::vector<std::string> queue{from};
    while (!queue.empty()) {
      const std::string node = queue.back();
      queue.pop_back();
      if (node == to) return true;
      const auto it = graph.find(node);
      if (it == graph.end()) continue;
      for (const auto& [next, sites] : it->second) {
        if (seen.insert(next).second) queue.push_back(next);
      }
    }
    return false;
  };
  for (const auto& [held, acquisitions] : graph) {
    for (const auto& [acquired, sites] : acquisitions) {
      if (!reaches(acquired, held)) continue;  // edge is not on a cycle
      for (const Site& site : sites) {
        if (site.file->allowed(site.edge->line, "lock-order-cycle")) continue;
        findings.push_back(Finding{
            site.file->file, site.edge->line, "lock-order-cycle",
            "'" + site.edge->acquired + "' is acquired while '" +
                site.edge->held + "' is held, and the reverse nesting exists "
                "elsewhere in " + subsystem_of(site.file->file) +
                " -- two threads interleaving these orders deadlock; pick one "
                "global acquisition order",
            site.edge->raw});
      }
    }
  }
}

// --- R11: blocking-under-lock ------------------------------------------------

void rule_blocking_under_lock(const FileIndex& fi,
                              std::vector<Finding>& findings) {
  if (!starts_with(fi.file, "src/serve/")) return;
  ProjectContext ctx{fi, findings};
  for (const BlockingCall& b : fi.blocking_calls) {
    ctx.report(b.line, "blocking-under-lock",
               "blocking " + b.callee + "() while mutex '" + b.held +
                   "' is held -- serve-path readers must never sleep behind a "
                   "lock; finish the syscall outside the critical section",
               b.raw);
  }
}

// --- R12: thread-no-join -----------------------------------------------------

void rule_thread_no_join(const ProjectIndex& index,
                         std::vector<Finding>& findings) {
  struct Subsystem {
    std::set<std::string> thread_vectors;
    std::set<std::string> joined;
    std::vector<std::pair<const FileIndex*, const ThreadSpawn*>> spawns;
    std::vector<std::pair<const FileIndex*, const PendingSpawn*>> pending;
    std::vector<const MoveAlias*> moves;
    std::vector<const RangeAlias*> ranges;
  };
  std::map<std::string, Subsystem> subsystems;
  for (const FileIndex& fi : index.files) {
    Subsystem& sub = subsystems[subsystem_of(fi.file)];
    for (const ThreadVectorDecl& d : fi.thread_vectors) {
      sub.thread_vectors.insert(d.name);
    }
    for (const ThreadSpawn& s : fi.spawns) sub.spawns.push_back({&fi, &s});
    for (const PendingSpawn& p : fi.pending_spawns) {
      sub.pending.push_back({&fi, &p});
    }
    for (const JoinSite& j : fi.joins) sub.joined.insert(j.target);
    for (const MoveAlias& a : fi.move_aliases) sub.moves.push_back(&a);
    for (const RangeAlias& a : fi.range_aliases) sub.ranges.push_back(&a);
  }
  for (auto& [name, sub] : subsystems) {
    // Alias closure: joining `for (auto& w : workers)`'s `w` joins
    // `workers`, and joining the destination of `x = std::move(y)` joins
    // `y` (the server shutdown drain pattern).
    bool changed = true;
    while (changed) {
      changed = false;
      for (const RangeAlias* a : sub.ranges) {
        if (sub.joined.count(a->var) > 0 &&
            sub.joined.insert(a->range).second) {
          changed = true;
        }
      }
      for (const MoveAlias* a : sub.moves) {
        if (sub.joined.count(a->to) > 0 && sub.joined.insert(a->from).second) {
          changed = true;
        }
      }
    }
    const std::string& subsystem = name;
    auto flag = [&findings, &subsystem](const FileIndex* fi, std::size_t line,
                                        const std::string& target,
                                        const std::string& raw) {
      if (fi->allowed(line, "thread-no-join")) return;
      const std::string what =
          target == "<temporary>"
              ? std::string(
                    "std::thread constructed and dropped without a "
                    "join()/detach() decision")
              : "std::thread spawned into '" + target +
                    "' has no reachable join()/detach() in subsystem '" +
                    subsystem + "'";
      findings.push_back(Finding{
          fi->file, line, "thread-no-join",
          what + " -- destroying a joinable thread calls std::terminate; "
                 "join on every path or detach deliberately",
          raw});
    };
    for (const auto& [fi, spawn] : sub.spawns) {
      if (spawn->target == "<temporary>" ||
          sub.joined.count(spawn->target) == 0) {
        flag(fi, spawn->line, spawn->target, spawn->raw);
      }
    }
    for (const auto& [fi, pending] : sub.pending) {
      if (sub.thread_vectors.count(pending->container) > 0 &&
          sub.joined.count(pending->container) == 0) {
        flag(fi, pending->line, pending->container, pending->raw);
      }
    }
  }
}

// --- R13: fp-accumulation-order ----------------------------------------------

void rule_fp_accumulation_order(const FileIndex& fi,
                                std::vector<Finding>& findings) {
  if (!starts_with(fi.file, "src/core/") &&
      !starts_with(fi.file, "src/stats/") &&
      !starts_with(fi.file, "src/sgp4/") &&
      !starts_with(fi.file, "src/io/")) {
    return;
  }
  ProjectContext ctx{fi, findings};
  for (const FpHazard& h : fi.fp_hazards) {
    std::string message;
    if (h.kind == "reduce") {
      message =
          "std::reduce/transform_reduce accumulates in unspecified order -- "
          "grids here must be bit-identical at any --threads value; use "
          "std::accumulate or a fixed-order loop";
    } else if (h.kind == "fast-math") {
      message =
          "fast-math/fp-contract pragma re-associates floating-point "
          "accumulation -- bit-identical measurement grids forbid it here";
    } else {
      message =
          "float accumulator in bit-identical measurement code -- single "
          "precision amplifies accumulation-order error; this tree "
          "standardizes on double";
    }
    ctx.report(h.line, "fp-accumulation-order", message, h.raw);
  }
}

// --- R14: relaxed-order ------------------------------------------------------

void rule_relaxed_order(const FileIndex& fi, std::vector<Finding>& findings) {
  if (starts_with(fi.file, "src/obs/")) return;
  ProjectContext ctx{fi, findings};
  for (const RelaxedSite& r : fi.relaxed_sites) {
    ctx.report(r.line, "relaxed-order",
               "std::memory_order_relaxed outside the obs counter idiom -- "
               "relaxed is reserved for commuting counter bumps; anything "
               "that publishes state needs acquire/release (or say why a "
               "ticket is enough in an allow reason)",
               r.raw);
  }
}

}  // namespace

bool operator<(const Finding& a, const Finding& b) {
  return std::tie(a.file, a.line, a.rule, a.message) <
         std::tie(b.file, b.line, b.rule, b.message);
}

std::vector<Finding> run_rules(const SourceFile& file,
                               bool has_sibling_header) {
  std::vector<Finding> findings;
  Context ctx{file, findings};
  rule_nondeterminism(ctx);
  rule_unordered_iter(ctx);
  rule_raw_parse(ctx);
  rule_naked_throw(ctx);
  rule_counter_in_loop(ctx);
  rule_stdout_in_lib(ctx);
  rule_include_first(ctx, has_sibling_header);
  rule_no_endl(ctx);
  rule_allow_reason(ctx);
  std::sort(findings.begin(), findings.end());
  return findings;
}

std::vector<Finding> run_project_rules(const ProjectIndex& index) {
  std::vector<Finding> findings;
  for (const FileIndex& fi : index.files) {
    rule_shared_mutable_capture(fi, findings);
    rule_blocking_under_lock(fi, findings);
    rule_fp_accumulation_order(fi, findings);
    rule_relaxed_order(fi, findings);
  }
  rule_lock_order_cycle(index, findings);
  rule_thread_no_join(index, findings);
  std::sort(findings.begin(), findings.end());
  return findings;
}

std::size_t rule_count() { return known_rules().size(); }

}  // namespace cdlint
