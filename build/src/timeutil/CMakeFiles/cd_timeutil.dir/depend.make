# Empty dependencies file for cd_timeutil.
# This may be replaced when dependencies are built.
