// Full-state propagation analysis: the workload the paper could not run
// from mean motion alone (ROADMAP item 1).
//
// propagate_catalog takes each satellite's latest TLE, sweeps the whole
// fleet across a shared epoch grid with sgp4::BatchPropagator, and reduces
// the states to the decay observables: a geocentric altitude series per
// satellite and a least-squares decay-rate estimate (km/day) over the valid
// samples.  Output is bit-identical at any num_threads value (the batch
// engine's determinism contract, DESIGN.md §16).
#pragma once

#include <cstddef>
#include <vector>

#include "sgp4/batch.hpp"
#include "tle/catalog.hpp"

namespace cosmicdance::obs {
class Metrics;
}  // namespace cosmicdance::obs

namespace cosmicdance::core {

struct PropagationOptions {
  /// Grid bounds (UTC Julian dates).  Defaults of 0 mean "derive from the
  /// catalog": start at the latest TLE epoch (so every satellite
  /// propagates forward from fresh elements), end `default_span_days`
  /// later.
  double start_jd = 0.0;
  double end_jd = 0.0;
  double step_hours = 24.0;
  /// Grid span used when end_jd is left defaulted.
  double default_span_days = 30.0;
  /// Worker count (exec convention: 0 = all hardware threads, 1 = serial).
  int num_threads = 0;
  obs::Metrics* metrics = nullptr;
};

/// One satellite's propagated decay observables.
struct PropagationSeries {
  int catalog_number = 0;
  double tle_epoch_jd = 0.0;
  bool deep_space = false;
  /// Geocentric altitude (|r| − Earth equatorial radius, km) per grid
  /// epoch; NaN where propagation failed (see statuses).
  std::vector<double> altitude_km;
  std::vector<sgp4::Sgp4Status> statuses;
  std::size_t valid_samples = 0;
  /// Least-squares slope of altitude vs time (km/day) over the valid
  /// samples; 0 when fewer than two are valid (decaying orbits go
  /// negative).
  double decay_rate_km_per_day = 0.0;
  /// First/last valid altitude on the grid (NaN when none).
  double first_altitude_km = 0.0;
  double last_altitude_km = 0.0;
  /// True when any grid cell returned kDecayed (predicted reentry inside
  /// the window).
  bool decayed = false;
};

struct PropagationReport {
  std::vector<double> epochs_jd;           ///< the shared grid, ascending
  std::vector<PropagationSeries> series;   ///< ascending catalog number
  std::size_t ok_cells = 0;
  std::size_t decayed_cells = 0;
  std::size_t error_cells = 0;             ///< non-kOk, non-kDecayed
  std::vector<sgp4::BatchInitFailure> init_failures;
};

/// Ascending epoch grid over [start_jd, end_jd] in step_hours increments
/// (index-scaled, so the grid is exact at any length and never overshoots).
/// Throws ValidationError for a non-positive step or an inverted window.
[[nodiscard]] std::vector<double> make_grid(double start_jd, double end_jd,
                                            double step_hours);

/// Build the epoch grid propagate_catalog would use for `options` —
/// exposed so callers (CLI, serving layer) can size requests up front.
[[nodiscard]] std::vector<double> propagation_grid(
    const tle::TleCatalog& catalog, const PropagationOptions& options);

/// Propagate every satellite's latest TLE across the options' epoch grid.
/// Throws ValidationError when the catalog is empty or the options are
/// degenerate (non-positive step, end before start).
[[nodiscard]] PropagationReport propagate_catalog(
    const tle::TleCatalog& catalog, const PropagationOptions& options = {});

/// The per-satellite reduction used by propagate_catalog, exposed for
/// callers that already hold a BatchPropagator (the serving layer).
[[nodiscard]] PropagationReport reduce_batch(
    const sgp4::BatchPropagator& batch, std::vector<double> epochs_jd,
    int num_threads, obs::Metrics* metrics);

}  // namespace cosmicdance::core
