#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/descriptive.hpp"

namespace cosmicdance::stats {

BootstrapInterval bootstrap_percentile(std::span<const double> sample, double p,
                                       double confidence, int resamples,
                                       std::uint64_t seed) {
  if (sample.empty()) throw ValidationError("bootstrap over empty sample");
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw ValidationError("bootstrap confidence must be in (0,1)");
  }
  if (resamples < 10) throw ValidationError("bootstrap needs >= 10 resamples");

  BootstrapInterval interval;
  interval.point = percentile(sample, p);

  Rng rng(seed);
  const auto n = static_cast<std::int64_t>(sample.size());
  std::vector<double> resample(sample.size());
  std::vector<double> statistics;
  statistics.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (auto& value : resample) {
      value = sample[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    statistics.push_back(percentile(resample, p));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  interval.lo = percentile(statistics, 100.0 * alpha);
  interval.hi = percentile(statistics, 100.0 * (1.0 - alpha));
  return interval;
}

BootstrapInterval bootstrap_median(std::span<const double> sample,
                                   double confidence, int resamples,
                                   std::uint64_t seed) {
  return bootstrap_percentile(sample, 50.0, confidence, resamples, seed);
}

}  // namespace cosmicdance::stats
