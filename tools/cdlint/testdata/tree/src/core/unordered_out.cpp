// cdlint corpus: seeded violations for rule `unordered-iter` (R2).
#include <unordered_map>
#include <unordered_set>

int drain() {
  std::unordered_map<int, int> histogram;
  std::unordered_set<int> seen;
  int total = 0;
  for (const auto& entry : histogram) {
    total += entry.second;
  }
  for (auto it = seen.begin(); it != seen.end(); ++it) {
    total += *it;
  }
  return total;
}
