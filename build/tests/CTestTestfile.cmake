# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/timeutil_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/orbit_test[1]_include.cmake")
include("/root/repo/build/tests/tle_test[1]_include.cmake")
include("/root/repo/build/tests/sgp4_test[1]_include.cmake")
include("/root/repo/build/tests/spaceweather_test[1]_include.cmake")
include("/root/repo/build/tests/atmosphere_test[1]_include.cmake")
include("/root/repo/build/tests/simulation_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/analysis2_test[1]_include.cmake")
include("/root/repo/build/tests/extensions2_test[1]_include.cmake")
include("/root/repo/build/tests/extensions3_test[1]_include.cmake")
include("/root/repo/build/tests/sgp4_deepspace_test[1]_include.cmake")
include("/root/repo/build/tests/simulation2_test[1]_include.cmake")
include("/root/repo/build/tests/core2_test[1]_include.cmake")
include("/root/repo/build/tests/extensions4_test[1]_include.cmake")
include("/root/repo/build/tests/figures_test[1]_include.cmake")
