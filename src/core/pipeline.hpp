// The CosmicDance façade: ingest -> order in time -> clean -> correlate.
//
// This is the library's main entry point, mirroring the tool in the paper:
// feed it a Dst series and a TLE catalog (from files or generators) and ask
// for storm events, cleaned tracks and happens-closely-after analyses.
#pragma once

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/correlator.hpp"
#include "core/propagation.hpp"
#include "diag/diag.hpp"
#include "spaceweather/storms.hpp"
#include "tle/catalog.hpp"

namespace cosmicdance::obs {
class Metrics;
}  // namespace cosmicdance::obs

namespace cosmicdance::core {

struct PipelineConfig {
  CorrelatorConfig correlator;
  spaceweather::StormDetectorConfig storm_detector;
  /// Worker count for the per-satellite hot loops (track building, cleaning
  /// and the correlation scans): 0 = all hardware threads, 1 = exact serial
  /// path, n = n workers.  Every value yields bit-identical results — the
  /// exec subsystem's ordering contract (DESIGN.md §"Parallel execution"),
  /// enforced by tests/parallel_differential_test.cpp.
  int num_threads = 0;
  /// Ingestion failure handling for from_files: strict throws on the first
  /// malformed record (historical behaviour); tolerant quarantines it,
  /// keeps going, and reports through quality_report().
  diag::ParsePolicy parse_policy = diag::ParsePolicy::kStrict;
  /// Optional observability registry (non-owning; must outlive the
  /// pipeline).  nullptr — the default — disables all collection: every
  /// instrumented site reduces to one pointer test.  When set, phase wall
  /// times, work counters and gauges accumulate into the registry; work
  /// counters are bit-identical at every num_threads value, while
  /// scheduling counters and timings are explicitly outside that contract
  /// (DESIGN.md §11).
  obs::Metrics* metrics = nullptr;
  /// Snapshot-cache directory for from_files (DESIGN.md §13–14).  Empty —
  /// the default — disables caching.  When set, a valid snapshot keyed by
  /// the input bytes' content hash skips text parsing entirely (counter
  /// `ingest.cache_hit`); inputs that grew by appended bytes over an
  /// unchanged prefix parse only the tail (counters `ingest.delta_hit`,
  /// `ingest.tail_bytes`) and persist the new records as a delta layer,
  /// compacting back to a single base when the chain grows long; any other
  /// change (or corrupt snapshot) falls back to the text path and rewrites
  /// a fresh base (`snapshot.rejected`).  Results are bit-identical on
  /// every path.
  std::string cache_dir;
};

class CosmicDance {
 public:
  /// Takes ownership of both datasets; cleaning runs eagerly.
  CosmicDance(spaceweather::DstIndex dst, tle::TleCatalog catalog,
              PipelineConfig config = {});

  /// Convenience constructor: WDC Dst file + TLE file.
  static CosmicDance from_files(const std::string& wdc_dst_path,
                                const std::string& tle_path,
                                PipelineConfig config = {});

  // The correlator holds a pointer into this object (&dst_), so moves must
  // re-point it at the destination's member instead of the moved-from one.
  CosmicDance(CosmicDance&& other) noexcept;
  CosmicDance& operator=(CosmicDance&& other) noexcept;
  CosmicDance(const CosmicDance&) = delete;
  CosmicDance& operator=(const CosmicDance&) = delete;
  /// Joins any in-flight background snapshot save (complete-before-exit).
  ~CosmicDance();

  /// Blocks until the background snapshot save spawned by from_files (cold
  /// text parse with a cache_dir) has finished.  from_files encodes and
  /// writes the fresh base off the critical path: the pipeline is usable —
  /// and returns results — while the cache write is still in flight, but
  /// the write always completes before the pipeline is destroyed.  Call
  /// this to force the handoff earlier, e.g. before a second pipeline is
  /// pointed at the same cache directory.  No-op when no save is pending.
  void wait_for_snapshot_save();

  // ---- data access --------------------------------------------------------
  [[nodiscard]] const spaceweather::DstIndex& dst() const noexcept { return dst_; }
  [[nodiscard]] const tle::TleCatalog& catalog() const noexcept { return catalog_; }
  /// Tracks after outlier + orbit-raising cleaning.
  [[nodiscard]] std::span<const SatelliteTrack> tracks() const noexcept {
    return tracks_;
  }
  /// Tracks built from the raw catalog with no cleaning (Fig 10a).
  [[nodiscard]] std::vector<SatelliteTrack> raw_tracks() const;

  // ---- solar-activity views (Figs 1-2) -------------------------------------
  [[nodiscard]] std::vector<spaceweather::StormEvent> storms() const;
  /// Dst value at an intensity percentile (e.g. 99 -> about -63 nT).
  [[nodiscard]] double dst_threshold_at_percentile(double p) const;

  // ---- correlation analyses (Figs 3-7) --------------------------------------
  [[nodiscard]] const EventCorrelator& correlator() const noexcept {
    return *correlator_;
  }
  [[nodiscard]] PostEventEnvelope post_event_envelope(
      double event_jd, int days, EnvelopeSelection selection) const;
  [[nodiscard]] std::vector<double> altitude_changes_for_storms(
      double max_peak_nt) const;
  [[nodiscard]] std::vector<double> altitude_changes_for_quiet(
      double min_dst_nt, std::size_t epochs) const;
  [[nodiscard]] std::vector<double> drag_changes_for_storms(double max_peak_nt) const;

  // ---- full-state propagation (ROADMAP item 1) -----------------------------
  /// Propagate every satellite's latest TLE across an epoch grid and reduce
  /// to altitude-from-state series + decay-rate estimates (DESIGN.md §16).
  /// Zeroed num_threads/metrics fields inherit the pipeline's own config.
  [[nodiscard]] PropagationReport propagation_report(
      PropagationOptions options = {}) const;

  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

  /// Ingestion data-quality outcome.  Populated by from_files; empty (no
  /// stages) when the datasets were handed over pre-parsed.
  [[nodiscard]] const diag::DataQualityReport& quality_report() const noexcept {
    return quality_report_;
  }

 private:
  PipelineConfig config_;
  spaceweather::DstIndex dst_;
  tle::TleCatalog catalog_;
  std::vector<SatelliteTrack> tracks_;
  std::unique_ptr<EventCorrelator> correlator_;
  diag::DataQualityReport quality_report_;
  /// Pending cold-path cache write (valid only between from_files spawning
  /// it and the first wait); std::async semantics make even the default
  /// future destructor block, so the write can never outlive the pipeline.
  std::future<void> snapshot_save_;
};

}  // namespace cosmicdance::core
