// Differential and failure-matrix tests for the binary snapshot cache
// (DESIGN.md §13).
//
// The cache's contract is "bit-identical or rebuilt": a warm run must
// reproduce the cold run's catalog, Dst series and quality report exactly,
// and *any* disagreement — truncation, a flipped CRC byte, a stale content
// hash after an input edit, a format-version bump, a parse-policy mismatch
// — must silently fall back to the text path (counter `snapshot.rejected`),
// produce the same outputs as a cache-less run, and rewrite the snapshot.
// A deterministic corruption loop additionally proves the decoder never
// escapes as an exception.  The MappedFile auto/fallback readers are
// checked byte-identical here too, since the hash and the parsers both
// consume their views.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "diag/diag.hpp"
#include "io/file.hpp"
#include "io/snapshot.hpp"
#include "obs/obs.hpp"
#include "spaceweather/dst_index.hpp"
#include "spaceweather/wdc.hpp"
#include "timeutil/datetime.hpp"
#include "tle/catalog.hpp"
#include "tle/tle.hpp"

namespace cosmicdance {
namespace {

using diag::ParsePolicy;

// ---- corpus builders --------------------------------------------------------

tle::Tle make_tle(int catalog_number, double epoch_offset_days) {
  tle::Tle record;
  record.catalog_number = catalog_number;
  record.international_designator = "20001A";
  record.epoch_jd =
      timeutil::to_julian(timeutil::make_datetime(2024, 5, 1)) + epoch_offset_days;
  record.bstar = 1.4e-4;
  record.inclination_deg = 53.05;
  record.raan_deg = 120.5;
  record.eccentricity = 0.0002;
  record.arg_perigee_deg = 90.0;
  record.mean_anomaly_deg = 45.0;
  record.mean_motion_revday = 15.05;
  record.element_set_number = 999;
  record.rev_number = 12345;
  return record;
}

/// `satellites` objects, two element sets each, as TLE text.
std::string tle_corpus(int satellites) {
  std::string text;
  for (int i = 0; i < satellites; ++i) {
    for (int elset = 0; elset < 2; ++elset) {
      const tle::TleLines formatted =
          tle::format_tle(make_tle(10001 + i, 0.5 * i + 2.0 * elset));
      text += formatted.line1;
      text.push_back('\n');
      text += formatted.line2;
      text.push_back('\n');
    }
  }
  return text;
}

/// A five-day Dst ramp over the same window, as WDC text.
std::string wdc_corpus() {
  std::vector<double> values;
  for (int h = 0; h < 5 * 24; ++h) values.push_back(-10.0 - 0.5 * h);
  return spaceweather::to_wdc(spaceweather::DstIndex(
      timeutil::make_datetime(2024, 5, 1), std::move(values)));
}

// ---- harness ----------------------------------------------------------------

struct TestInputs {
  std::string dir;
  std::string dst_path;
  std::string tle_path;
  std::string cache_dir;

  [[nodiscard]] std::string snapshot_path() const {
    return io::snapshot_cache_path(cache_dir, dst_path, tle_path);
  }
};

TestInputs write_inputs(const std::string& tag, const std::string& tle_text) {
  TestInputs inputs;
  inputs.dir = ::testing::TempDir() + "cdsnap_" + tag;
  std::filesystem::remove_all(inputs.dir);
  std::filesystem::create_directories(inputs.dir);
  inputs.dst_path = inputs.dir + "/dst.wdc";
  inputs.tle_path = inputs.dir + "/catalog.tle";
  inputs.cache_dir = inputs.dir + "/cache";
  io::write_file(inputs.dst_path, wdc_corpus());
  io::write_file(inputs.tle_path, tle_text);
  return inputs;
}

/// Everything the ingestion layer feeds downstream, in comparable form.
/// Equality here is bit-exactness: the double vectors compare with ==, and
/// the quality JSON embeds quarantine counters, line numbers, snippets and
/// their order.
struct RunOutput {
  std::string catalog_text;
  timeutil::HourIndex dst_start = 0;
  std::vector<double> dst_values;
  std::string quality_json;
};

void expect_identical(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.catalog_text, b.catalog_text);
  EXPECT_EQ(a.dst_start, b.dst_start);
  EXPECT_EQ(a.dst_values, b.dst_values);
  EXPECT_EQ(a.quality_json, b.quality_json);
}

RunOutput run_pipeline(const TestInputs& inputs, ParsePolicy policy,
                       int threads, bool use_cache,
                       obs::Metrics* metrics = nullptr) {
  core::PipelineConfig config;
  config.parse_policy = policy;
  config.num_threads = threads;
  config.metrics = metrics;
  if (use_cache) config.cache_dir = inputs.cache_dir;
  const core::CosmicDance pipeline =
      core::CosmicDance::from_files(inputs.dst_path, inputs.tle_path, config);
  RunOutput out;
  out.catalog_text = pipeline.catalog().to_text();
  out.dst_start = pipeline.dst().start_hour();
  out.dst_values.assign(pipeline.dst().values().begin(),
                        pipeline.dst().values().end());
  out.quality_json = pipeline.quality_report().to_json();
  return out;
}

std::uint64_t counter(const obs::Metrics& metrics, const std::string& name) {
  const obs::MetricsReport report = metrics.snapshot();
  const auto it = report.counters.find(name);
  return it != report.counters.end() ? it->second : 0;
}

/// The failure-matrix driver: seed the cache with a cold run, corrupt the
/// snapshot via `mutate`, then prove the next run rejects it, matches a
/// cache-less parse bit for bit, rewrites the snapshot, and that the run
/// after *that* hits the rewritten one.
template <typename Mutator>
void expect_reject_and_fallback(const TestInputs& inputs, ParsePolicy policy,
                                const Mutator& mutate) {
  run_pipeline(inputs, policy, 1, /*use_cache=*/true);
  ASSERT_TRUE(std::filesystem::exists(inputs.snapshot_path()));
  mutate(inputs);

  obs::Metrics rejected_run;
  const RunOutput fallback =
      run_pipeline(inputs, policy, 1, /*use_cache=*/true, &rejected_run);
  EXPECT_EQ(counter(rejected_run, "snapshot.rejected"), 1u);
  EXPECT_EQ(counter(rejected_run, "ingest.cache_hit"), 0u);
  EXPECT_EQ(counter(rejected_run, "snapshot.loaded"), 0u);
  EXPECT_EQ(counter(rejected_run, "snapshot.written"), 1u)
      << "a rejected snapshot must be rewritten from the fresh parse";

  const RunOutput uncached =
      run_pipeline(inputs, policy, 1, /*use_cache=*/false);
  expect_identical(fallback, uncached);

  obs::Metrics warm_run;
  const RunOutput warm =
      run_pipeline(inputs, policy, 1, /*use_cache=*/true, &warm_run);
  EXPECT_EQ(counter(warm_run, "ingest.cache_hit"), 1u);
  EXPECT_EQ(counter(warm_run, "snapshot.rejected"), 0u);
  expect_identical(warm, uncached);
}

// ---- round trip -------------------------------------------------------------

TEST(SnapshotTest, EncodeDecodeRoundTripIsBitExact) {
  const std::string tle_text = tle_corpus(4);
  const std::string wdc_text = wdc_corpus();

  diag::ParseLog log(ParsePolicy::kTolerant);
  spaceweather::DstIndex dst = spaceweather::from_wdc(wdc_text, &log, "dst.wdc");
  tle::TleCatalog catalog;
  catalog.add_from_text(tle_text, tle::IngestOptions{&log, 1, "catalog.tle"});
  const io::SnapshotData data{dst, catalog, log.report(),
                              io::ingest_state_of(wdc_text, tle_text), 0, 0};

  const std::string bytes = io::encode_snapshot(data, ParsePolicy::kTolerant);

  const std::optional<io::SnapshotData> decoded =
      io::decode_snapshot(bytes, ParsePolicy::kTolerant);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->catalog.to_text(), catalog.to_text());
  EXPECT_EQ(decoded->dst.start_hour(), dst.start_hour());
  EXPECT_EQ(std::vector<double>(decoded->dst.values().begin(),
                                decoded->dst.values().end()),
            std::vector<double>(dst.values().begin(), dst.values().end()));
  EXPECT_EQ(decoded->quality.to_json(), log.report().to_json());
  EXPECT_EQ(decoded->state.combined_hash, data.state.combined_hash);
  EXPECT_EQ(decoded->state.dst_len, wdc_text.size());
  EXPECT_EQ(decoded->state.tle_len, tle_text.size());
  EXPECT_EQ(decoded->delta_layers, 0u);

  // A policy mismatch rejects before any payload decoding happens, and a
  // header content hash that disagrees with the encoded ingest state is a
  // structural inconsistency, not a usable snapshot.
  EXPECT_FALSE(io::decode_snapshot(bytes, ParsePolicy::kStrict));
  std::string tampered = bytes;
  tampered[16] = static_cast<char>(tampered[16] + 1);  // content hash LE byte
  EXPECT_FALSE(io::decode_snapshot(tampered, ParsePolicy::kTolerant));
}

// ---- hit vs miss ------------------------------------------------------------

TEST(SnapshotTest, ColdMissParsesAndWritesWarmHitLoads) {
  const TestInputs inputs = write_inputs("hit_vs_miss", tle_corpus(4));

  obs::Metrics cold;
  const RunOutput first =
      run_pipeline(inputs, ParsePolicy::kStrict, 1, /*use_cache=*/true, &cold);
  EXPECT_EQ(counter(cold, "snapshot.written"), 1u);
  EXPECT_EQ(counter(cold, "ingest.cache_hit"), 0u);
  EXPECT_EQ(counter(cold, "snapshot.rejected"), 0u);
  EXPECT_GT(counter(cold, "tle.records_parsed"), 0u);
  EXPECT_TRUE(std::filesystem::exists(inputs.snapshot_path()));

  obs::Metrics warm;
  const RunOutput second =
      run_pipeline(inputs, ParsePolicy::kStrict, 1, /*use_cache=*/true, &warm);
  EXPECT_EQ(counter(warm, "ingest.cache_hit"), 1u);
  EXPECT_EQ(counter(warm, "snapshot.loaded"), 1u);
  EXPECT_EQ(counter(warm, "snapshot.written"), 0u);
  EXPECT_EQ(counter(warm, "tle.records_parsed"), 0u)
      << "a cache hit must not parse any TLE text";
  expect_identical(first, second);

  const RunOutput uncached =
      run_pipeline(inputs, ParsePolicy::kStrict, 1, /*use_cache=*/false);
  expect_identical(second, uncached);
}

TEST(SnapshotTest, ThreadCountsShareTheCacheBitIdentically) {
  const TestInputs inputs = write_inputs("threads", tle_corpus(6));

  const RunOutput serial_cold =
      run_pipeline(inputs, ParsePolicy::kStrict, 1, /*use_cache=*/true);
  obs::Metrics warm;
  const RunOutput parallel_warm =
      run_pipeline(inputs, ParsePolicy::kStrict, 0, /*use_cache=*/true, &warm);
  EXPECT_EQ(counter(warm, "ingest.cache_hit"), 1u);
  expect_identical(serial_cold, parallel_warm);

  const RunOutput parallel_uncached =
      run_pipeline(inputs, ParsePolicy::kStrict, 0, /*use_cache=*/false);
  expect_identical(parallel_warm, parallel_uncached);
}

// ---- the readers behind the hash and the parsers ---------------------------

TEST(SnapshotTest, MappedAndFallbackReadersAreByteIdentical) {
  const TestInputs inputs = write_inputs("readers", tle_corpus(4));

  const io::MappedFile mapped(inputs.tle_path, io::MappedFile::Mode::kAuto);
  const io::MappedFile fallback(inputs.tle_path,
                                io::MappedFile::Mode::kFallbackRead);
  EXPECT_FALSE(fallback.is_mapped());
  ASSERT_EQ(mapped.view(), fallback.view());

  tle::TleCatalog from_mapped;
  tle::TleCatalog from_fallback;
  from_mapped.add_from_text(mapped.view());
  from_fallback.add_from_text(fallback.view());
  EXPECT_EQ(from_mapped.to_text(), from_fallback.to_text());

  // The content hash — the cache key — must agree across readers too.
  EXPECT_EQ(io::fnv1a(mapped.view()), io::fnv1a(fallback.view()));
}

// ---- failure matrix ---------------------------------------------------------

TEST(SnapshotTest, TruncatedSnapshotFallsBack) {
  const TestInputs inputs = write_inputs("truncated", tle_corpus(4));
  expect_reject_and_fallback(inputs, ParsePolicy::kStrict,
                             [](const TestInputs& t) {
                               std::string bytes = io::read_file(t.snapshot_path());
                               bytes.resize(bytes.size() / 2);
                               io::write_file(t.snapshot_path(), bytes);
                             });
}

TEST(SnapshotTest, FlippedCrcHeaderByteFallsBack) {
  const TestInputs inputs = write_inputs("crc_header", tle_corpus(4));
  expect_reject_and_fallback(inputs, ParsePolicy::kStrict,
                             [](const TestInputs& t) {
                               std::string bytes = io::read_file(t.snapshot_path());
                               ASSERT_GT(bytes.size(), 35u);
                               bytes[32] ^= 0x01;  // CRC32 field, bytes 32-35
                               io::write_file(t.snapshot_path(), bytes);
                             });
}

TEST(SnapshotTest, FlippedPayloadByteFailsTheCrcAndFallsBack) {
  const TestInputs inputs = write_inputs("crc_payload", tle_corpus(4));
  expect_reject_and_fallback(inputs, ParsePolicy::kStrict,
                             [](const TestInputs& t) {
                               std::string bytes = io::read_file(t.snapshot_path());
                               ASSERT_GT(bytes.size(), 40u);
                               bytes[40 + (bytes.size() - 40) / 2] ^= 0x10;
                               io::write_file(t.snapshot_path(), bytes);
                             });
}

TEST(SnapshotTest, FormatVersionBumpFallsBack) {
  const TestInputs inputs = write_inputs("version", tle_corpus(4));
  expect_reject_and_fallback(
      inputs, ParsePolicy::kStrict, [](const TestInputs& t) {
        std::string bytes = io::read_file(t.snapshot_path());
        ASSERT_GT(bytes.size(), 11u);
        bytes[8] = static_cast<char>(bytes[8] + 1);  // version u32 LE, low byte
        io::write_file(t.snapshot_path(), bytes);
      });
}

TEST(SnapshotTest, EditedInputMakesTheSnapshotStale) {
  const TestInputs inputs = write_inputs("stale", tle_corpus(4));
  // The snapshot file name hashes only the *paths*, so editing the TLE file
  // in place leaves the old snapshot exactly where the next run looks — the
  // stored content hash is the only thing that can catch it.  The edit is
  // in place (same length, different bytes): growth by appended records is
  // no longer stale, it is the delta fast path (delta_snapshot_test.cpp).
  expect_reject_and_fallback(
      inputs, ParsePolicy::kStrict, [](const TestInputs& t) {
        std::string text = io::read_file(t.tle_path);
        const std::size_t designator = text.find("20001A");
        ASSERT_NE(designator, std::string::npos);
        text[designator + 5] = 'B';  // restamp a designator mid-prefix
        io::write_file(t.tle_path, text);
      });
}

TEST(SnapshotTest, ShrunkInputMakesTheSnapshotStale) {
  const TestInputs inputs = write_inputs("shrunk", tle_corpus(4));
  // Truncation can never be served incrementally — the snapshot has
  // already committed records past the new end of file.
  expect_reject_and_fallback(
      inputs, ParsePolicy::kStrict, [](const TestInputs& t) {
        std::string text = io::read_file(t.tle_path);
        text.resize(text.size() - 140);  // drop the last two-line record
        io::write_file(t.tle_path, text);
      });
}

TEST(SnapshotTest, ParsePolicyMismatchFallsBack) {
  const TestInputs inputs = write_inputs("policy", tle_corpus(4));
  // Cold strict run seeds the cache; a tolerant run must not trust a
  // strict-built snapshot (its quality report encodes the other policy) —
  // it rejects, reparses tolerantly and rewrites.  The driver's final warm
  // run then proves the rewritten snapshot serves tolerant hits.
  expect_reject_and_fallback(
      inputs, ParsePolicy::kTolerant, [](const TestInputs& t) {
        std::filesystem::remove(t.snapshot_path());
        run_pipeline(t, ParsePolicy::kStrict, 1, /*use_cache=*/true);
      });
}

// ---- diagnostics round trip -------------------------------------------------

TEST(SnapshotTest, QuarantineDiagnosticsSurviveTheCache) {
  // Corrupt one record's checksum so the tolerant parse quarantines it; the
  // warm run must report the identical quarantine — same counters, same
  // line numbers, same snippet order — without ever seeing the text.
  std::string text = tle_corpus(4);
  const std::size_t second_line1 = text.find("\n1 ", text.find("\n2 ")) + 1;
  ASSERT_NE(second_line1, std::string::npos + 1);
  text[second_line1 + 68] =
      text[second_line1 + 68] == '0' ? '1' : '0';  // break the checksum
  const TestInputs inputs = write_inputs("quarantine", text);

  obs::Metrics cold;
  const RunOutput first = run_pipeline(inputs, ParsePolicy::kTolerant, 1,
                                       /*use_cache=*/true, &cold);
  EXPECT_NE(first.quality_json.find("quarantined"), std::string::npos);

  obs::Metrics warm;
  const RunOutput second = run_pipeline(inputs, ParsePolicy::kTolerant, 1,
                                        /*use_cache=*/true, &warm);
  EXPECT_EQ(counter(warm, "ingest.cache_hit"), 1u);
  expect_identical(first, second);

  const RunOutput uncached =
      run_pipeline(inputs, ParsePolicy::kTolerant, 1, /*use_cache=*/false);
  expect_identical(second, uncached);
}

// ---- corruption fuzz --------------------------------------------------------

TEST(SnapshotTest, RandomSingleBitCorruptionNeverThrows) {
  const TestInputs inputs = write_inputs("fuzz", tle_corpus(3));
  run_pipeline(inputs, ParsePolicy::kStrict, 1, /*use_cache=*/true);
  const std::string valid = io::read_file(inputs.snapshot_path());

  const std::optional<io::SnapshotData> baseline =
      io::decode_snapshot(valid, ParsePolicy::kStrict);
  ASSERT_TRUE(baseline.has_value());
  const std::string baseline_text = baseline->catalog.to_text();

  Rng rng(20260807);
  for (int i = 0; i < 200; ++i) {
    std::string bytes = valid;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[pos] = static_cast<char>(
        bytes[pos] ^ static_cast<char>(1 << rng.uniform_int(0, 7)));
    std::optional<io::SnapshotData> decoded;
    // Never an exception: any disagreement must surface as nullopt.
    EXPECT_NO_THROW(decoded = io::decode_snapshot(bytes, ParsePolicy::kStrict))
        << "decode threw on a bit flip at byte " << pos;
    if (decoded.has_value()) {
      // Flips the checks cannot see (header padding) must be harmless.
      EXPECT_EQ(decoded->catalog.to_text(), baseline_text)
          << "accepted a corrupted snapshot, flip at byte " << pos;
    }
  }
}

// ---- concurrent writers -----------------------------------------------------

TEST(SnapshotTest, ConcurrentSaversNeverTearTheSnapshot) {
  // Several writers hammer one snapshot path with *different* valid
  // snapshots (two daemons sharing a cache dir, or reload racing a warm
  // start).  Because each save writes its own pid+serial temp file and the
  // final rename is atomic, every observable state of the file must be one
  // complete variant — a reader must never decode a torn hybrid.  Before
  // the per-writer temp names, all savers shared one ".tmp" file and
  // interleaved writes could rename a spliced file into place.
  constexpr int kWriters = 4;
  constexpr int kIterations = 25;

  const std::string dir = ::testing::TempDir() + "cdsnap_racers";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/cache/snapshot.cdsnap";

  // One distinct, decently sized snapshot per writer, plus its exact
  // encoded bytes for the end-state check.
  std::vector<io::SnapshotData> variants;
  std::vector<std::string> encoded;
  for (int w = 0; w < kWriters; ++w) {
    const std::string tle_text = tle_corpus(40 + 10 * w);
    const std::string wdc_text = wdc_corpus();
    diag::ParseLog log(ParsePolicy::kTolerant);
    spaceweather::DstIndex dst =
        spaceweather::from_wdc(wdc_text, &log, "dst.wdc");
    tle::TleCatalog catalog;
    catalog.add_from_text(tle_text,
                          tle::IngestOptions{&log, 1, "catalog.tle"});
    variants.push_back(io::SnapshotData{
        std::move(dst), std::move(catalog), log.report(),
        io::ingest_state_of(wdc_text, tle_text), 0, 0});
    encoded.push_back(
        io::encode_snapshot(variants.back(), ParsePolicy::kTolerant));
  }

  ASSERT_TRUE(
      io::save_snapshot(path, variants[0], ParsePolicy::kTolerant));

  std::atomic<bool> start{false};
  std::atomic<int> torn_reads{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      while (!start.load()) {
      }
      for (int i = 0; i < kIterations; ++i) {
        EXPECT_TRUE(io::save_snapshot(path,
                                      variants[static_cast<std::size_t>(w)],
                                      ParsePolicy::kTolerant));
      }
    });
  }
  // A concurrent reader: every observed file state must decode.
  threads.emplace_back([&] {
    while (!start.load()) {
    }
    for (int i = 0; i < kWriters * kIterations; ++i) {
      const std::optional<io::SnapshotData> decoded = io::load_snapshot(
          path, ParsePolicy::kTolerant);
      if (!decoded.has_value()) torn_reads.fetch_add(1);
    }
  });
  start.store(true);
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(torn_reads.load(), 0) << "a reader saw a torn snapshot file";

  // The survivor is one complete variant, byte for byte.
  const std::string final_bytes = io::read_file(path);
  bool matches_one = false;
  for (const std::string& bytes : encoded) {
    if (final_bytes == bytes) matches_one = true;
  }
  EXPECT_TRUE(matches_one) << "final snapshot is not any writer's output";

  // And nobody leaked a temp file.
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/cache")) {
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos)
        << "stray temp file: " << entry.path();
  }
}

// ---- v3 section format ------------------------------------------------------

/// Parsed snapshot data over `satellites` objects (two element sets each),
/// with the matching ingest state — the input to the encoders under test.
io::SnapshotData make_snapshot_data(int satellites, ParsePolicy policy) {
  const std::string tle_text = tle_corpus(satellites);
  const std::string wdc_text = wdc_corpus();
  diag::ParseLog log(policy);
  spaceweather::DstIndex dst = spaceweather::from_wdc(wdc_text, &log, "dst.wdc");
  tle::TleCatalog catalog;
  catalog.add_from_text(tle_text, tle::IngestOptions{&log, 1, "catalog.tle"});
  return io::SnapshotData{std::move(dst), std::move(catalog), log.report(),
                          io::ingest_state_of(wdc_text, tle_text), 0, 0};
}

void expect_same_decoded(const io::SnapshotData& a, const io::SnapshotData& b) {
  EXPECT_EQ(a.catalog.to_text(), b.catalog.to_text());
  EXPECT_EQ(a.dst.start_hour(), b.dst.start_hour());
  EXPECT_EQ(std::vector<double>(a.dst.values().begin(), a.dst.values().end()),
            std::vector<double>(b.dst.values().begin(), b.dst.values().end()));
  EXPECT_EQ(a.quality.to_json(), b.quality.to_json());
  EXPECT_EQ(a.state.combined_hash, b.state.combined_hash);
}

// v3 header/table offsets (the format doc in snapshot.hpp).
constexpr std::size_t kHeaderBytes = 40;
constexpr std::size_t kTableCrcOffset = 32;
constexpr std::size_t kSectionCountOffset = 36;
constexpr std::size_t kSectionEntryBytes = 24;

std::uint32_t read_u32(const std::string& bytes, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) |
        static_cast<unsigned char>(bytes[offset + static_cast<std::size_t>(i)]);
  }
  return v;
}

void write_u32(std::string& bytes, std::size_t offset, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes[offset + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFFu);
  }
}

void write_u64(std::string& bytes, std::size_t offset, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes[offset + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFFu);
  }
}

/// Re-seal a hand-edited section table so only the *tiling* checks can
/// reject it: recompute the table CRC32C and patch the header field.
void reseal_table(std::string& bytes) {
  const std::uint32_t sections = read_u32(bytes, kSectionCountOffset);
  const std::string_view table(bytes.data() + kHeaderBytes,
                               sections * kSectionEntryBytes);
  write_u32(bytes, kTableCrcOffset, io::crc32c(table));
}

TEST(SnapshotV3Test, EncodeAndDecodeAreThreadCountInvariant) {
  // 9000 satellites x 2 element sets crosses the stripe target, so the
  // file carries multiple catalog stripes and the parallel encode/decode
  // paths genuinely run multi-section.
  const io::SnapshotData data = make_snapshot_data(9000, ParsePolicy::kStrict);
  const std::string serial = io::encode_snapshot(data, ParsePolicy::kStrict, 1);
  ASSERT_GT(read_u32(serial, kSectionCountOffset), 4u)
      << "corpus too small to produce multiple catalog stripes";
  for (const int threads : {4, 8}) {
    EXPECT_EQ(io::encode_snapshot(data, ParsePolicy::kStrict, threads), serial)
        << "encode bytes differ at " << threads << " threads";
  }
  const std::optional<io::SnapshotData> reference =
      io::decode_snapshot(serial, ParsePolicy::kStrict, 1);
  ASSERT_TRUE(reference.has_value());
  expect_same_decoded(*reference, data);
  for (const int threads : {4, 8}) {
    const std::optional<io::SnapshotData> decoded =
        io::decode_snapshot(serial, ParsePolicy::kStrict, threads);
    ASSERT_TRUE(decoded.has_value());
    expect_same_decoded(*decoded, *reference);
  }
}

TEST(SnapshotV3Test, TruncatedSectionTableRejects) {
  const io::SnapshotData data = make_snapshot_data(4, ParsePolicy::kStrict);
  std::string bytes = io::encode_snapshot(data, ParsePolicy::kStrict);
  // Chop the payload mid-table and restate the header's payload size so
  // only the section-table bounds check can catch it.
  const std::uint32_t sections = read_u32(bytes, kSectionCountOffset);
  const std::size_t half_table =
      (sections / 2) * kSectionEntryBytes;
  bytes.resize(kHeaderBytes + half_table);
  write_u64(bytes, 24, half_table);
  EXPECT_FALSE(io::decode_snapshot(bytes, ParsePolicy::kStrict).has_value());
}

TEST(SnapshotV3Test, FlippedSectionTableByteRejects) {
  const io::SnapshotData data = make_snapshot_data(4, ParsePolicy::kStrict);
  std::string bytes = io::encode_snapshot(data, ParsePolicy::kStrict);
  bytes[kHeaderBytes + 8] ^= 0x01;  // first entry's offset field
  EXPECT_FALSE(io::decode_snapshot(bytes, ParsePolicy::kStrict).has_value());
}

TEST(SnapshotV3Test, FlippedSectionBodyByteFailsThatSectionsCrc) {
  const io::SnapshotData data = make_snapshot_data(4, ParsePolicy::kStrict);
  std::string bytes = io::encode_snapshot(data, ParsePolicy::kStrict);
  // Last payload byte lives in the final (quality) section, well past the
  // table — only the per-section CRC can notice it.
  bytes[bytes.size() - 1] ^= 0x40;
  EXPECT_FALSE(io::decode_snapshot(bytes, ParsePolicy::kStrict).has_value());
}

TEST(SnapshotV3Test, OverlappingOrGappedSectionsReject) {
  const io::SnapshotData data = make_snapshot_data(4, ParsePolicy::kStrict);
  const std::string bytes = io::encode_snapshot(data, ParsePolicy::kStrict);
  const std::size_t entry1 = kHeaderBytes + kSectionEntryBytes;

  // Slide the second section's offset back onto the first (overlap) and
  // forward past it (gap); reseal the table CRC both times so the tiling
  // check itself must reject.
  std::string overlap = bytes;
  write_u64(overlap, entry1 + 8, 0);
  reseal_table(overlap);
  EXPECT_FALSE(io::decode_snapshot(overlap, ParsePolicy::kStrict).has_value());

  std::string gap = bytes;
  const std::uint64_t first_length = read_u32(bytes, kHeaderBytes + 16);
  write_u64(gap, entry1 + 8, first_length + 8);
  reseal_table(gap);
  EXPECT_FALSE(io::decode_snapshot(gap, ParsePolicy::kStrict).has_value());
}

TEST(SnapshotV3Test, OversizedSectionCountRejects) {
  const io::SnapshotData data = make_snapshot_data(4, ParsePolicy::kStrict);
  std::string bytes = io::encode_snapshot(data, ParsePolicy::kStrict);
  // A section count whose table alone would exceed the payload must be
  // rejected by the bounds check, not trusted as an allocation size.
  write_u32(bytes, kSectionCountOffset, 0x00FFFFFFu);
  EXPECT_FALSE(io::decode_snapshot(bytes, ParsePolicy::kStrict).has_value());
}

TEST(SnapshotV3Test, StaleContentHashRejects) {
  const io::SnapshotData data = make_snapshot_data(4, ParsePolicy::kStrict);
  std::string bytes = io::encode_snapshot(data, ParsePolicy::kStrict);
  // Header hash and the state section's embedded copy must agree — a
  // mismatch means the header belongs to different inputs.
  bytes[16] ^= 0x01;
  EXPECT_FALSE(io::decode_snapshot(bytes, ParsePolicy::kStrict).has_value());
}

// ---- v2 compatibility -------------------------------------------------------

TEST(SnapshotV2Compat, V2BytesDecodeIdenticallyToV3) {
  const io::SnapshotData data = make_snapshot_data(12, ParsePolicy::kTolerant);
  const std::string v2 = io::encode_snapshot_v2(data, ParsePolicy::kTolerant);
  const std::string v3 = io::encode_snapshot(data, ParsePolicy::kTolerant, 4);
  ASSERT_NE(v2, v3);
  const std::optional<io::SnapshotData> from_v2 =
      io::decode_snapshot(v2, ParsePolicy::kTolerant);
  const std::optional<io::SnapshotData> from_v3 =
      io::decode_snapshot(v3, ParsePolicy::kTolerant, 4);
  ASSERT_TRUE(from_v2.has_value());
  ASSERT_TRUE(from_v3.has_value());
  expect_same_decoded(*from_v2, *from_v3);
  expect_same_decoded(*from_v2, data);
}

TEST(SnapshotV2Compat, PipelineServesWarmAndDeltaHitsFromAV2File) {
  // A cache written by the previous release: fabricate the v2 file at the
  // exact path the pipeline will probe.
  const TestInputs inputs = write_inputs("v2_compat", tle_corpus(6));
  const std::string tle_text = io::read_file(inputs.tle_path);
  const std::string wdc_text = io::read_file(inputs.dst_path);
  diag::ParseLog log(ParsePolicy::kStrict);
  spaceweather::DstIndex dst =
      spaceweather::from_wdc(wdc_text, &log, inputs.dst_path);
  tle::TleCatalog catalog;
  catalog.add_from_text(tle_text, tle::IngestOptions{&log, 1, inputs.tle_path});
  const io::SnapshotData data{std::move(dst), std::move(catalog), log.report(),
                              io::ingest_state_of(wdc_text, tle_text), 0, 0};
  std::filesystem::create_directories(inputs.cache_dir);
  io::write_file(inputs.snapshot_path(),
                 io::encode_snapshot_v2(data, ParsePolicy::kStrict));

  // Warm hit straight off the v2 base.
  obs::Metrics warm_run;
  const RunOutput warm =
      run_pipeline(inputs, ParsePolicy::kStrict, 1, /*use_cache=*/true,
                   &warm_run);
  EXPECT_EQ(counter(warm_run, "ingest.cache_hit"), 1u);
  EXPECT_EQ(counter(warm_run, "snapshot.rejected"), 0u);
  expect_identical(warm,
                   run_pipeline(inputs, ParsePolicy::kStrict, 1,
                                /*use_cache=*/false));

  // Appending records must ride the delta path on top of the v2 base, and
  // the resulting v2+delta chain must serve the next warm hit.
  std::string tail;
  for (int i = 0; i < 3; ++i) {
    const tle::TleLines lines = tle::format_tle(make_tle(30001 + i, 10.0 + i));
    tail += lines.line1 + "\n" + lines.line2 + "\n";
  }
  io::append_file(inputs.tle_path, tail);
  obs::Metrics delta_run;
  const RunOutput delta =
      run_pipeline(inputs, ParsePolicy::kStrict, 1, /*use_cache=*/true,
                   &delta_run);
  EXPECT_EQ(counter(delta_run, "ingest.delta_hit"), 1u);
  EXPECT_EQ(counter(delta_run, "snapshot.delta_written"), 1u);
  obs::Metrics chain_run;
  const RunOutput chained =
      run_pipeline(inputs, ParsePolicy::kStrict, 1, /*use_cache=*/true,
                   &chain_run);
  EXPECT_EQ(counter(chain_run, "ingest.cache_hit"), 1u);
  const RunOutput reparsed =
      run_pipeline(inputs, ParsePolicy::kStrict, 1, /*use_cache=*/false);
  expect_identical(delta, reparsed);
  expect_identical(chained, reparsed);
}

// ---- counters and the background save ---------------------------------------

TEST(SnapshotCounters, SaveBytesAndLoadRecordsArePinned) {
  const std::string dir = ::testing::TempDir() + "cdsnap_counters";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/snapshot.cdsnap";
  const io::SnapshotData data = make_snapshot_data(8, ParsePolicy::kStrict);

  obs::Metrics metrics;
  ASSERT_TRUE(
      io::save_snapshot(path, data, ParsePolicy::kStrict, &metrics, 2));
  EXPECT_EQ(counter(metrics, "snapshot.written"), 1u);
  EXPECT_EQ(counter(metrics, "snapshot.save_bytes"),
            std::filesystem::file_size(path));

  const std::optional<io::SnapshotData> loaded =
      io::load_snapshot(path, ParsePolicy::kStrict, &metrics, 2);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(counter(metrics, "snapshot.load_records"),
            data.catalog.record_count());
  const obs::MetricsReport report = metrics.snapshot();
  const auto sections = report.scheduling.find("snapshot.load_sections");
  ASSERT_NE(sections, report.scheduling.end());
  // Small corpus = one catalog stripe: state + Dst + stripe + quality.
  EXPECT_EQ(sections->second, 4u);
}

TEST(SnapshotPipeline, BackgroundSaveCompletesOnWait) {
  const TestInputs inputs = write_inputs("bg_save", tle_corpus(6));
  core::PipelineConfig config;
  config.cache_dir = inputs.cache_dir;
  core::CosmicDance pipeline =
      core::CosmicDance::from_files(inputs.dst_path, inputs.tle_path, config);
  pipeline.wait_for_snapshot_save();
  EXPECT_TRUE(std::filesystem::exists(inputs.snapshot_path()))
      << "wait_for_snapshot_save returned before the cache was written";
  // The pending-save future must survive a move and a second wait must be
  // a no-op — both on the moved-to object and the moved-from shell.
  core::CosmicDance moved = std::move(pipeline);
  moved.wait_for_snapshot_save();
  const std::optional<io::SnapshotData> loaded = io::load_snapshot(
      inputs.snapshot_path(), ParsePolicy::kStrict);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->catalog.to_text(), moved.catalog().to_text());
}

// ---- checksum reference -----------------------------------------------------

/// Textbook reflected bit-at-a-time CRC-32 — the definition both
/// production implementations (slice-by-8 tables, SSE4.2 instruction)
/// must reproduce exactly.
std::uint32_t crc_reference(std::string_view bytes, std::uint32_t polynomial) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char byte : bytes) {
    crc ^= static_cast<unsigned char>(byte);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? polynomial ^ (crc >> 1) : crc >> 1;
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

TEST(SnapshotCrc, Crc32AndCrc32cMatchTheBitwiseReference) {
  // Known-answer vectors first ("123456789" is the standard check input).
  EXPECT_EQ(io::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(io::crc32c("123456789"), 0xE3069283u);

  // Then every length 0..129 with deterministic pseudo-random content, so
  // the 8-byte main loops and all tail paths are exercised.
  Rng rng(20240508);
  for (std::size_t length = 0; length <= 129; ++length) {
    std::string bytes(length, '\0');
    for (char& c : bytes) {
      c = static_cast<char>(rng.uniform_int(0, 255));
    }
    EXPECT_EQ(io::crc32(bytes), crc_reference(bytes, 0xEDB88320u))
        << "crc32 mismatch at length " << length;
    EXPECT_EQ(io::crc32c(bytes), crc_reference(bytes, 0x82F63B78u))
        << "crc32c mismatch at length " << length;
  }
}

}  // namespace
}  // namespace cosmicdance
