// Shared helpers for the figure benches: standard datasets at bench scale
// and paper-vs-measured printing.
//
// Scale note: the real study observes ~6,000 satellites; benches default to
// a few hundred (launch batches are shrunk, the timeline is not) so every
// binary runs in seconds.  The *shapes* under comparison are scale-free;
// absolute counts are reported next to the scale factor.
#pragma once

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "core/pipeline.hpp"
#include "exec/thread_pool.hpp"
#include "io/args.hpp"
#include "io/file.hpp"
#include "obs/obs.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"

namespace cosmicdance::bench {

/// The calibrated 2020 - May 2024 Dst series.
inline spaceweather::DstIndex paper_dst() {
  return spaceweather::DstGenerator(
             spaceweather::DstGenerator::paper_window_2020_2024())
      .generate();
}

/// Paper window extended through the May-2024 super-storm.
inline spaceweather::DstIndex superstorm_dst() {
  return spaceweather::DstGenerator(
             spaceweather::DstGenerator::with_may_2024_superstorm())
      .generate();
}

/// Standard bench-scale constellation run over the paper window.
/// `per_batch`=4 / cadence 16 days yields ~400 satellites.
inline tle::TleCatalog paper_catalog(const spaceweather::DstIndex& dst,
                                     int per_batch = 4, double cadence = 16.0) {
  auto config = simulation::scenario::paper_window(&dst, per_batch, cadence);
  return simulation::ConstellationSimulator(config).run().catalog;
}

/// Pipeline config from a bench binary's command line: every figure bench
/// accepts --threads N (0 = all hardware threads, 1 = serial; the exec
/// ordering contract makes the outputs identical either way).
inline core::PipelineConfig config_from_args(int argc, const char* const* argv) {
  const io::ArgParser args(argc, argv);
  core::PipelineConfig config;
  config.num_threads = static_cast<int>(args.nonnegative_integer_or("threads", 0));
  return config;
}

/// Print a "paper says / we measured" comparison line.
inline void expect(const std::string& what, const std::string& paper,
                   double measured, int precision = 1) {
  std::printf("  %-52s paper: %-14s measured: %.*f\n", what.c_str(),
              paper.c_str(), precision, measured);
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// Machine-readable bench telemetry record, shared by the micro benches:
///   {"bench": ..., "threads": N, "threads_resolved": W,
///    "hardware_concurrency": H, "dataset": ...,
///    "throughput": {"name": rate, ...}, "metrics": <MetricsReport JSON>}
/// `threads` is the requested knob (0 = auto); `threads_resolved` is the
/// worker count the exec subsystem actually ran, and
/// `hardware_concurrency` the machine it ran on — without both, a
/// throughput regression on an 8-core box and a healthy run on a 1-core
/// box are indistinguishable in the archived records.
/// `bench` / `dataset` / throughput keys are caller-controlled literals and
/// must not need JSON escaping.
inline void write_bench_record(const std::string& path, const std::string& bench,
                               int threads, const std::string& dataset,
                               const std::map<std::string, double>& throughput,
                               const obs::Metrics& metrics) {
  std::string json =
      "{\n  \"bench\": \"" + bench + "\",\n  \"threads\": " +
      std::to_string(threads) + ",\n  \"threads_resolved\": " +
      std::to_string(exec::resolve_thread_count(threads)) +
      ",\n  \"hardware_concurrency\": " +
      std::to_string(std::thread::hardware_concurrency()) +
      ",\n  \"dataset\": \"" + dataset + "\",\n  \"throughput\": {";
  bool first = true;
  char buffer[64];
  for (const auto& [name, value] : throughput) {
    if (!first) json += ", ";
    first = false;
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    json += "\"" + name + "\": " + buffer;
  }
  json += "},\n  \"metrics\": " + metrics.snapshot().to_json() + "\n}\n";
  io::write_file(path, json);
  std::printf("wrote bench record to %s\n", path.c_str());
}

}  // namespace cosmicdance::bench
