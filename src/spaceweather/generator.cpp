#include "spaceweather/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "spaceweather/burton.hpp"

namespace cosmicdance::spaceweather {
namespace {

constexpr double kHoursPerYear = 24.0 * 365.25;

}  // namespace

DstGenerator::DstGenerator(DstGeneratorConfig config) : config_(std::move(config)) {
  if (config_.hours <= 0) throw ValidationError("generator hours must be positive");
  if (config_.quiet_ar1 <= -1.0 || config_.quiet_ar1 >= 1.0) {
    throw ValidationError("AR(1) coefficient must be in (-1,1)");
  }
  config_.start.validate();
}

void DstGenerator::add_storm(std::vector<double>& storm_component,
                             const ScriptedStorm& storm,
                             timeutil::HourIndex series_start) const {
  // Script peaks are observed Dst; the storm component rides on the quiet
  // mean, so drive the ODE toward (peak - quiet_mean).
  const double target = storm.peak_dst_nt - config_.quiet_mean_nt;
  if (target >= 0.0) {
    throw ValidationError("scripted storm peak must be below the quiet mean");
  }
  const double tau = storm.recovery_tau_hours;
  // Window: main phase + plateau + enough recovery to decay to < 1 nT.
  const auto recovery_hours =
      static_cast<std::size_t>(std::ceil(tau * std::log(std::fabs(target)))) + 1;
  const auto main_hours = static_cast<std::size_t>(std::ceil(storm.main_phase_hours));
  const auto plateau_hours = static_cast<std::size_t>(std::ceil(storm.plateau_hours));
  const std::size_t total = main_hours + plateau_hours + recovery_hours;

  std::vector<double> injection =
      storm_injection_profile(target, storm.main_phase_hours, tau, total);
  // Holding the state constant at x requires Q = x / tau.
  for (std::size_t i = main_hours; i < main_hours + plateau_hours; ++i) {
    injection[i] = target / tau;
  }
  const std::vector<double> response = integrate_burton(injection, tau);

  const timeutil::HourIndex onset = timeutil::hour_index_from_datetime(storm.onset);
  for (std::size_t i = 0; i < response.size(); ++i) {
    const timeutil::HourIndex hour = onset + static_cast<timeutil::HourIndex>(i);
    const auto offset = hour - series_start;
    if (offset < 0 || offset >= static_cast<timeutil::HourIndex>(storm_component.size())) {
      continue;
    }
    storm_component[static_cast<std::size_t>(offset)] += response[i];
  }
}

DstIndex DstGenerator::generate() const {
  const auto n = static_cast<std::size_t>(config_.hours);
  const timeutil::HourIndex start = timeutil::hour_index_from_datetime(config_.start);

  Rng rng(config_.seed);

  // ---- quiet-time AR(1) background --------------------------------------
  std::vector<double> quiet(n);
  const double innovation_sigma =
      config_.quiet_sigma_nt * std::sqrt(1.0 - config_.quiet_ar1 * config_.quiet_ar1);
  double state = config_.quiet_mean_nt;
  for (std::size_t i = 0; i < n; ++i) {
    state = config_.quiet_mean_nt +
            config_.quiet_ar1 * (state - config_.quiet_mean_nt) +
            rng.normal(0.0, innovation_sigma);
    quiet[i] = state;
  }

  // ---- storm component ----------------------------------------------------
  std::vector<double> storm_component(n, 0.0);
  for (const ScriptedStorm& storm : config_.scripted_storms) {
    add_storm(storm_component, storm, start);
  }

  if (config_.include_random_storms) {
    Rng storm_rng = rng.split();
    const double years = static_cast<double>(config_.hours) / kHoursPerYear;

    // Solar-cycle thinning: draw onset hours uniformly, then keep each storm
    // with probability proportional to the cycle modulation at its time
    // (thinning a Poisson process modulates its rate exactly).
    const timeutil::HourIndex cycle_peak_hour =
        timeutil::hour_index_from_datetime(config_.solar_cycle_peak);
    auto cycle_keep = [&](timeutil::HourIndex hour, Rng& r) {
      if (!config_.solar_cycle_modulation) return true;
      const double phase_years = static_cast<double>(hour - cycle_peak_hour) /
                                 kHoursPerYear;
      // cos so the reference time is a maximum.
      const double factor =
          1.0 + config_.solar_cycle_amplitude *
                    std::cos(units::kTwoPi * phase_years /
                             config_.solar_cycle_period_years);
      const double peak_factor = 1.0 + config_.solar_cycle_amplitude;
      return r.bernoulli(std::max(factor, 0.0) / peak_factor);
    };

    // Peak magnitudes are exponential beyond the band threshold (most
    // storms barely cross it) and recovery taus log-normal — together these
    // reproduce the short-median / long-tail duration shapes of Fig 2.
    const double oversample =
        config_.solar_cycle_modulation ? 1.0 + config_.solar_cycle_amplitude : 1.0;
    const auto minor_count =
        storm_rng.poisson(config_.minor_storms_per_year * years * oversample);
    for (std::uint64_t k = 0; k < minor_count; ++k) {
      ScriptedStorm storm;
      const timeutil::HourIndex onset_hour =
          start + storm_rng.uniform_int(0, config_.hours - 1);
      const bool keep = cycle_keep(onset_hour, storm_rng);
      storm.onset = timeutil::datetime_from_hour_index(onset_hour);
      storm.peak_dst_nt = std::max(-52.0 - storm_rng.exponential(13.0), -98.0);
      storm.main_phase_hours = 1.0 + storm_rng.exponential(1.5);
      storm.plateau_hours = storm_rng.exponential(0.8);
      storm.recovery_tau_hours =
          std::clamp(storm_rng.lognormal(std::log(8.0), 0.65), 4.0, 32.0);
      if (keep) add_storm(storm_component, storm, start);
    }

    const auto moderate_count = storm_rng.poisson(
        config_.moderate_storms_per_year * years * oversample);
    for (std::uint64_t k = 0; k < moderate_count; ++k) {
      ScriptedStorm storm;
      const timeutil::HourIndex onset_hour =
          start + storm_rng.uniform_int(0, config_.hours - 1);
      const bool keep = cycle_keep(onset_hour, storm_rng);
      storm.onset = timeutil::datetime_from_hour_index(onset_hour);
      storm.peak_dst_nt = std::max(-102.0 - storm_rng.exponential(28.0), -195.0);
      storm.main_phase_hours = 1.5 + storm_rng.exponential(2.0);
      storm.plateau_hours = storm_rng.exponential(0.7);
      storm.recovery_tau_hours =
          std::clamp(storm_rng.lognormal(std::log(9.0), 0.7), 4.0, 30.0);
      if (keep) add_storm(storm_component, storm, start);
    }
  }

  // ---- combine ------------------------------------------------------------
  std::vector<double> dst(n);
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = std::max(quiet[i] + storm_component[i], -1900.0);
  }
  return DstIndex(start, std::move(dst));
}

DstGeneratorConfig DstGenerator::paper_window_2020_2024() {
  DstGeneratorConfig config;
  config.seed = 20200101;
  config.start = timeutil::make_datetime(2020, 1, 1);
  // Jan 1 2020 .. May 7 2024 ("1st week of May"), in hours.
  config.hours = static_cast<long>(timeutil::hours_between(
      config.start, timeutil::make_datetime(2024, 5, 7)));

  // The real events the paper anchors on (dates as reported; intensities
  // from the WDC record / the paper's text).
  // 2022-01-29: the moderate storm behind the Feb 2022 Starlink loss.
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2022, 1, 29, 10), -91.0, 3.0, 1.0, 9.0});
  // 2023-03-24: moderate storm, Fig 3's first decay-onset anchor.
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2023, 3, 24, 2), -163.0, 5.0, 1.0, 10.0});
  // 2023-04-24: the dataset's only severe storm (3 severe hours).
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2023, 4, 23, 19), -208.0, 4.0, 2.0, 6.0});
  // 2023-09-18: the -112 nT event picked for Fig 4(a).
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2023, 9, 18, 12), -112.0, 4.0, 1.0, 10.0});
  // 2024-03-03: moderate storm, Fig 3's second decay-onset anchor.
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2024, 3, 3, 6), -127.0, 4.0, 1.0, 11.0});
  return config;
}

DstGeneratorConfig DstGenerator::with_may_2024_superstorm() {
  DstGeneratorConfig config = paper_window_2020_2024();
  config.hours = static_cast<long>(timeutil::hours_between(
      config.start, timeutil::make_datetime(2024, 6, 1)));
  // The May 10-11 2024 super-storm: double-dip CME arrival, peak ~ -412 nT,
  // ~23 hours below -200 nT.
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2024, 5, 10, 17), -412.0, 4.0, 4.0, 7.0});
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2024, 5, 11, 8), -260.0, 3.0, 3.0, 9.0});
  return config;
}

DstGeneratorConfig DstGenerator::carrington_what_if() {
  DstGeneratorConfig config = paper_window_2020_2024();
  config.hours = static_cast<long>(timeutil::hours_between(
      config.start, timeutil::make_datetime(2024, 6, 1)));
  // A Carrington-scale double-dip landing on the May-2024 dates: recorded
  // 1859 estimates put the peak near -1800 nT with a day-scale main phase.
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2024, 5, 10, 17), -1800.0, 6.0, 8.0, 12.0});
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2024, 5, 11, 12), -900.0, 4.0, 6.0, 14.0});
  return config;
}

DstGeneratorConfig DstGenerator::historical_50_years() {
  DstGeneratorConfig config;
  config.seed = 19750101;
  config.start = timeutil::make_datetime(1975, 1, 1);
  config.hours = static_cast<long>(timeutil::hours_between(
      config.start, timeutil::make_datetime(2024, 6, 1)));
  // Thin the random background slightly: the long record is dominated by
  // its named super-storms in Fig 8.
  config.minor_storms_per_year = 22.0;
  config.moderate_storms_per_year = 4.0;
  // Storm density follows the ~11-year solar cycle over a 50-year record.
  config.solar_cycle_modulation = true;

  // The eight named storms of Fig 8 (date, peak Dst).
  config.scripted_storms.push_back(
      {timeutil::make_datetime(1989, 3, 13, 12), -589.0, 6.0, 4.0, 12.0});
  config.scripted_storms.push_back(
      {timeutil::make_datetime(1991, 11, 9, 0), -354.0, 5.0, 2.0, 11.0});
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2000, 4, 6, 18), -288.0, 4.0, 2.0, 10.0});
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2000, 7, 15, 14), -301.0, 4.0, 2.0, 10.0});
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2001, 4, 11, 16), -271.0, 4.0, 2.0, 10.0});
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2001, 11, 5, 20), -292.0, 4.0, 2.0, 10.0});
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2003, 10, 30, 0), -383.0, 5.0, 3.0, 11.0});
  config.scripted_storms.push_back(
      {timeutil::make_datetime(2024, 5, 10, 17), -412.0, 4.0, 6.0, 9.0});
  return config;
}

}  // namespace cosmicdance::spaceweather
