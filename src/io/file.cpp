#include "io/file.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace cosmicdance::io {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open file: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open file for writing: " + path);
  out << content;
  if (!out) throw IoError("failed writing file: " + path);
}

}  // namespace cosmicdance::io
