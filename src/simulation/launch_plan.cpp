#include "simulation/launch_plan.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cosmicdance::simulation {

std::vector<LaunchBatch> starlink_like_plan(const timeutil::DateTime& first,
                                            const timeutil::DateTime& until,
                                            double cadence_days, int count_per_batch,
                                            const SatelliteConfig& satellite) {
  if (cadence_days <= 0.0) throw ValidationError("launch cadence must be positive");
  if (count_per_batch <= 0) throw ValidationError("batch size must be positive");
  const double total_hours = timeutil::hours_between(first, until);
  if (total_hours <= 0.0) {
    throw ValidationError("launch plan end must come after its start");
  }
  std::vector<LaunchBatch> plan;
  const auto batches =
      static_cast<std::size_t>(std::floor(total_hours / (cadence_days * 24.0))) + 1;
  plan.reserve(batches);
  for (std::size_t i = 0; i < batches; ++i) {
    LaunchBatch batch;
    batch.time = timeutil::add_hours(first, static_cast<double>(i) * cadence_days * 24.0);
    batch.count = count_per_batch;
    batch.satellite = satellite;
    // Walk the planes around the equator with a large co-prime-ish stride so
    // consecutive launches do not crowd one RAAN sector.
    batch.raan_deg = std::fmod(static_cast<double>(i) * 137.5, 360.0);
    plan.push_back(batch);
  }
  return plan;
}

}  // namespace cosmicdance::simulation
