
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeutil/datetime.cpp" "src/timeutil/CMakeFiles/cd_timeutil.dir/datetime.cpp.o" "gcc" "src/timeutil/CMakeFiles/cd_timeutil.dir/datetime.cpp.o.d"
  "/root/repo/src/timeutil/hour_axis.cpp" "src/timeutil/CMakeFiles/cd_timeutil.dir/hour_axis.cpp.o" "gcc" "src/timeutil/CMakeFiles/cd_timeutil.dir/hour_axis.cpp.o.d"
  "/root/repo/src/timeutil/sidereal.cpp" "src/timeutil/CMakeFiles/cd_timeutil.dir/sidereal.cpp.o" "gcc" "src/timeutil/CMakeFiles/cd_timeutil.dir/sidereal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
