file(REMOVE_RECURSE
  "CMakeFiles/fig09_orbital_elements.dir/fig09_orbital_elements.cpp.o"
  "CMakeFiles/fig09_orbital_elements.dir/fig09_orbital_elements.cpp.o.d"
  "fig09_orbital_elements"
  "fig09_orbital_elements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_orbital_elements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
