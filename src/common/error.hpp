// Error hierarchy for the CosmicDance libraries.
//
// All recoverable failures are reported via exceptions derived from
// cosmicdance::Error (itself a std::runtime_error), so callers can catch
// either the broad base or a narrow category.  Functions that cannot fail
// are marked noexcept at their declaration sites.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace cosmicdance {

/// Base class of every exception thrown by CosmicDance libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Machine-readable classification of record-level parse failures.  The
/// cosmicdance::diag data-quality subsystem counts quarantined records by
/// category; the enum lives here (not in cd_diag) so every throw site can
/// tag its ParseError without a dependency on the diagnostics layer.
enum class ErrorCategory {
  kSyntax,     ///< malformed text: wrong width, bad quoting, stray characters
  kChecksum,   ///< TLE line checksum mismatch
  kNumeric,    ///< a numeric field failed to parse as a number
  kRange,      ///< parsed fine but semantically out of range
  kStructure,  ///< record structure: missing lines/keys, gaps, bad ordering
};

inline constexpr std::size_t kErrorCategoryCount = 5;

/// Malformed textual input (TLE lines, WDC records, CSV rows, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what,
                      ErrorCategory category = ErrorCategory::kSyntax)
      : Error("parse error: " + what), category_(category) {}

  /// What kind of malformation this is, for quarantine bookkeeping.
  [[nodiscard]] ErrorCategory category() const noexcept { return category_; }

 private:
  ErrorCategory category_;
};

/// Semantically invalid values (out-of-range dates, negative durations, ...).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what)
      : Error("validation error: " + what) {}
};

/// Orbit propagation failure (SGP4 error codes, decayed satellites, ...).
class PropagationError : public Error {
 public:
  explicit PropagationError(const std::string& what)
      : Error("propagation error: " + what) {}
};

/// Filesystem / stream failures.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

}  // namespace cosmicdance
