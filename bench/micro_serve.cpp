// Load generator for the serving daemon (DESIGN.md §15): an in-process
// serve::Server over the bench dataset, hammered by concurrent TCP clients
// with the real query mix while one reload swaps the snapshot mid-load.
//
// Every response is validated: "ok" must be true and the leading "epoch"
// must equal the trailing "epoch_end" — the wire-visible proof that the
// atomic snapshot swap never tears an in-flight response.  Any violation is
// fatal (exit 1), so the bench doubles as a concurrency regression check.
//
//   ./micro_serve [--clients N] [--requests N] [--threads N] [--bench-out F]
//
// Default output: BENCH_serve.json in the working directory, carrying
// queries_per_s + tail latency in "throughput" and the daemon's metrics
// registry (serve.requests / serve.errors / serve.reloads) in "metrics";
// tier-1 asserts on both.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "io/parse.hpp"
#include "serve/server.hpp"
#include "spaceweather/wdc.hpp"
#include "tle/catalog.hpp"

namespace {

using namespace cosmicdance;

struct BenchDataset {
  std::string dst_path;
  std::string tle_path;
};

BenchDataset write_dataset() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "cd_micro_serve").string();
  std::filesystem::create_directories(dir);
  const spaceweather::DstIndex dst = bench::paper_dst();
  const tle::TleCatalog catalog = bench::paper_catalog(dst, 2, 30.0);
  BenchDataset data{dir + "/dst.wdc", dir + "/catalog.tle"};
  spaceweather::write_wdc_file(data.dst_path, dst);
  io::write_file(data.tle_path, catalog.to_text());
  return data;
}

/// The serving query mix.  envelope_cdf triggers a full correlator-sample
/// scan, so it appears once per rotation — expensive queries should be in
/// the mix, not dominate it.
const char* query_for(std::size_t index) {
  static const char* const kQueries[] = {
      "{\"op\":\"ping\"}",
      "{\"op\":\"stats\"}",
      "{\"op\":\"sat_series\",\"max_samples\":128}",
      "{\"op\":\"storm_summary\"}",
      "{\"op\":\"ping\"}",
      "{\"op\":\"stats\"}",
      "{\"op\":\"sat_series\",\"max_samples\":128}",
      "{\"op\":\"envelope_cdf\",\"points\":16}",
  };
  return kQueries[index % (sizeof(kQueries) / sizeof(kQueries[0]))];
}

/// Extract the integer after `"key":` — the responses are builder-generated
/// so a plain scan is reliable.  Returns -1 when absent.
long field_value(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = response.find(needle);
  if (at == std::string::npos) return -1;
  const auto parsed = io::parse_leading_long(
      std::string_view(response).substr(at + needle.size()));
  return parsed.value_or(-1);
}

struct ClientStats {
  std::vector<double> latencies_us;
  std::size_t errors = 0;        ///< "ok":false responses
  std::size_t torn_epochs = 0;   ///< epoch != epoch_end — must stay zero
};

ClientStats run_client(const std::string& host, std::uint16_t port,
                       std::size_t requests, std::size_t offset) {
  ClientStats stats;
  stats.latencies_us.reserve(requests);
  serve::Client client(host, port);
  for (std::size_t i = 0; i < requests; ++i) {
    const auto begin = std::chrono::steady_clock::now();
    const std::string response = client.request(query_for(offset + i));
    const auto end = std::chrono::steady_clock::now();
    stats.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(end - begin).count());
    if (response.rfind("{\"ok\":true", 0) != 0) {
      ++stats.errors;
      continue;
    }
    const long epoch = field_value(response, "epoch");
    const long epoch_end = field_value(response, "epoch_end");
    if (epoch > 0 && epoch != epoch_end) ++stats.torn_epochs;
  }
  return stats;
}

double percentile(std::vector<double>& sorted, double p) {
  const std::size_t at = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1));
  return sorted[at];
}

}  // namespace

int main(int argc, char** argv) {
  const io::ArgParser args(argc, argv);
  const std::string bench_out = args.option_or("bench-out", "BENCH_serve.json");
  const auto clients =
      static_cast<std::size_t>(args.nonnegative_integer_or("clients", 8));
  const auto requests =
      static_cast<std::size_t>(args.nonnegative_integer_or("requests", 1000));

  const BenchDataset data = write_dataset();
  obs::Metrics metrics;
  core::PipelineConfig config;
  config.num_threads =
      static_cast<int>(args.nonnegative_integer_or("threads", 0));
  config.metrics = &metrics;
  auto rebuild = [&data, config] {
    return core::CosmicDance::from_files(data.dst_path, data.tle_path, config);
  };

  serve::Service service(rebuild(), rebuild, &metrics);
  serve::Server server(service, "127.0.0.1", 0);
  server.start();

  std::vector<ClientStats> results(clients);
  const auto begin = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        results[c] = run_client("127.0.0.1", server.port(), requests, c);
      });
    }
    // One snapshot swap in the thick of the load: clients must keep
    // getting whole-epoch responses across it.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    serve::Client reloader("127.0.0.1", server.port());
    const std::string response = reloader.request("{\"op\":\"reload\"}");
    if (response.rfind("{\"ok\":true", 0) != 0) {
      std::fprintf(stderr, "mid-load reload failed: %s\n", response.c_str());
      return 1;
    }
    for (std::thread& worker : workers) worker.join();
  }
  const auto end = std::chrono::steady_clock::now();
  server.shutdown();

  std::vector<double> latencies;
  std::size_t errors = 0, torn = 0;
  for (const ClientStats& r : results) {
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    errors += r.errors;
    torn += r.torn_epochs;
  }
  std::sort(latencies.begin(), latencies.end());
  const double elapsed_s =
      std::chrono::duration<double>(end - begin).count();
  const double qps = static_cast<double>(latencies.size()) / elapsed_s;

  std::printf("micro_serve: %zu clients x %zu requests in %.2fs = %.0f q/s\n",
              clients, requests, elapsed_s, qps);
  std::printf("  latency p50 %.0fus  p95 %.0fus  p99 %.0fus\n",
              percentile(latencies, 50), percentile(latencies, 95),
              percentile(latencies, 99));
  std::printf("  errors %zu  torn epochs %zu\n", errors, torn);
  if (errors > 0 || torn > 0) {
    std::fprintf(stderr,
                 "micro_serve: FAILED — errors or torn epochs under load\n");
    return 1;
  }

  bench::write_bench_record(
      bench_out, "micro_serve", config.num_threads, "paper",
      {{"queries_per_s", qps},
       {"latency_p50_us", percentile(latencies, 50)},
       {"latency_p95_us", percentile(latencies, 95)},
       {"latency_p99_us", percentile(latencies, 99)}},
      metrics);
  return 0;
}
