file(REMOVE_RECURSE
  "CMakeFiles/cd_common.dir/rng.cpp.o"
  "CMakeFiles/cd_common.dir/rng.cpp.o.d"
  "libcd_common.a"
  "libcd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
