// Driving the substrate directly: launch a batch, inject a storm-induced
// failure, watch the ground-truth decay, then geolocate the doomed satellite
// from its own emitted TLEs with the bundled SGP4 — the full stack below the
// measurement pipeline.
#include <cstdio>
#include <iostream>

#include "common/units.hpp"
#include "orbit/frames.hpp"
#include "sgp4/sgp4.hpp"
#include "simulation/constellation.hpp"
#include "spaceweather/generator.hpp"

using namespace cosmicdance;

int main() {
  // A quiet background with one scripted severe storm.
  spaceweather::DstGeneratorConfig dst_config;
  dst_config.start = timeutil::make_datetime(2023, 1, 1);
  dst_config.hours = 24 * 240;
  dst_config.include_random_storms = false;
  dst_config.scripted_storms.push_back(
      {timeutil::make_datetime(2023, 3, 1, 6), -220.0, 4.0, 3.0, 10.0});
  const spaceweather::DstIndex dst =
      spaceweather::DstGenerator(dst_config).generate();

  simulation::ConstellationConfig config;
  config.seed = 99;
  config.start = timeutil::make_datetime(2023, 1, 1);
  config.end = timeutil::make_datetime(2023, 9, 1);
  config.dst = &dst;
  config.record_truth = true;
  config.failures.enabled = false;  // we inject the failure ourselves

  simulation::LaunchBatch batch;
  batch.time = config.start;
  batch.count = 4;
  batch.prelaunched = true;
  config.launches.push_back(batch);

  const int victim = config.first_catalog_number;
  config.forced_failures.push_back({victim,
                                    timeutil::make_datetime(2023, 3, 1, 10),
                                    simulation::FailureKind::kPermanentDecay,
                                    0.0});

  auto result = simulation::ConstellationSimulator(config).run();
  std::printf("Launched %d satellites; %d reentered during the run.\n",
              result.launched, result.reentered);

  std::printf("\nGround-truth altitude of #%d (storm hits 2023-03-01):\n", victim);
  const auto& truth = result.truth.at(victim);
  for (std::size_t i = 0; i < truth.size(); i += 14) {
    const auto dt = timeutil::from_julian(truth[i].jd);
    std::printf("  %s  %7.1f km  [%s]\n", dt.to_string().substr(0, 10).c_str(),
                truth[i].altitude_km,
                simulation::to_string(truth[i].mode).c_str());
  }

  // Now pretend we are an outside observer with only the TLEs: initialise
  // SGP4 from the victim's records and compute sub-satellite points.
  std::printf("\nSub-satellite points from the victim's emitted TLEs:\n");
  const auto history = result.catalog.history(victim);
  int printed = 0;
  for (std::size_t i = 0; i < history.size() && printed < 8; i += 40) {
    const tle::Tle& record = history[i];
    if (record.altitude_km() > 650.0) continue;  // gross tracking error
    const sgp4::Sgp4Propagator propagator(record);
    const orbit::StateVector sv = propagator.propagate_minutes(0.0);
    const orbit::Vec3 ecef = orbit::teme_to_ecef(sv.position_km, record.epoch_jd);
    const orbit::Geodetic geo = orbit::ecef_to_geodetic(ecef);
    const auto dt = timeutil::from_julian(record.epoch_jd);
    std::printf("  %s  lat %6.1f deg  lon %7.1f deg  alt %7.1f km  B* %.2e\n",
                dt.to_string().substr(0, 10).c_str(),
                units::rad2deg(geo.latitude_rad),
                units::rad2deg(geo.longitude_rad), geo.altitude_km,
                record.bstar);
    ++printed;
  }

  std::cout << "\nNote how the TLE-derived altitude and B* track the decay the\n"
               "ground truth shows - that observability is what CosmicDance's\n"
               "measurement pipeline is built on.\n";
  return 0;
}
