#include "exec/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"

namespace cosmicdance::exec {
namespace {

// Chunks per worker: >1 so dynamic chunk-claiming balances uneven per-index
// costs, small enough that chunk bookkeeping stays negligible.
constexpr std::size_t kChunksPerThread = 8;

// Shared between the caller and its pool helpers.  The caller waits for all
// *chunks* to finish, not for the helpers themselves: a helper that the pool
// never gets around to scheduling (e.g. every worker is blocked inside a
// nested section's own wait) must not stall completion.  Such a late helper
// only ever touches this block — it sees next_chunk past the end and returns
// without calling `chunk`, so the caller's stack can safely unwind first.
struct Section {
  std::function<void(std::size_t, std::size_t)> chunk;
  std::size_t count = 0;
  std::size_t chunk_size = 0;
  std::size_t num_chunks = 0;

  std::atomic<std::size_t> next_chunk{0};
  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t done_chunks = 0;  // guarded by mutex
  std::exception_ptr first_error;

  void run_chunks() {
    for (;;) {
      // cdlint: allow(relaxed-order) ticket only claims an index; body writes are published by the section join
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(count, begin + chunk_size);
      std::exception_ptr error;
      try {
        chunk(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      const std::lock_guard<std::mutex> lock(mutex);
      if (error && !first_error) first_error = error;
      if (++done_chunks == num_chunks) all_done.notify_all();
    }
  }
};

}  // namespace

void parallel_for(std::size_t count, int num_threads,
                  const std::function<void(std::size_t, std::size_t)>& chunk,
                  obs::Metrics* metrics) {
  if (count == 0) return;
  const std::size_t threads =
      num_threads == 1 ? 1 : resolve_thread_count(num_threads);
  if (threads <= 1 || count == 1) {
    if (metrics != nullptr) {
      metrics->sched_counter("exec.sections").add();
      metrics->sched_counter("exec.chunks").add();
    }
    chunk(0, count);
    return;
  }

  const auto section = std::make_shared<Section>();
  section->chunk = chunk;
  section->count = count;
  const std::size_t target_chunks = std::min(count, threads * kChunksPerThread);
  section->chunk_size = (count + target_chunks - 1) / target_chunks;
  section->num_chunks = (count + section->chunk_size - 1) / section->chunk_size;
  if (metrics != nullptr) {
    metrics->sched_counter("exec.sections").add();
    metrics->sched_counter("exec.chunks").add(section->num_chunks);
  }

  // The calling thread is one worker; the rest come from the shared pool.
  // The caller always participates, so a saturated pool degrades to
  // caller-only execution instead of deadlocking (nested sections included).
  const std::size_t helper_count =
      std::min(threads, section->num_chunks) - 1;
  for (std::size_t i = 0; i < helper_count; ++i) {
    ThreadPool::shared().submit([section] { section->run_chunks(); });
  }
  section->run_chunks();
  {
    std::unique_lock<std::mutex> lock(section->mutex);
    section->all_done.wait(
        lock, [&] { return section->done_chunks == section->num_chunks; });
    if (section->first_error) std::rethrow_exception(section->first_error);
  }
}

}  // namespace cosmicdance::exec
