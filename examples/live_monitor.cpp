// Operational monitoring loop (paper §6): CosmicDance as a *live* tool.
//
// Replays 2023 week by week the way a deployment would run: each cycle
// ingests the week's new TLEs into the incremental on-disk store and feeds
// the week's hourly Dst samples to a storm trigger; when the trigger fires
// the monitor raises an alert (in production: kick off LEOScope network
// measurements) and, on release, runs a quick happens-closely-after damage
// assessment over the store.
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/trigger.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"
#include "stats/descriptive.hpp"
#include "tle/store.hpp"

using namespace cosmicdance;

int main() {
  // The "world": a year of Dst + a small constellation observed by TLEs.
  const auto dst = spaceweather::DstGenerator(
                       spaceweather::DstGenerator::paper_window_2020_2024())
                       .generate();
  auto scenario = simulation::scenario::paper_window(&dst, 3, 30.0);
  const auto run = simulation::ConstellationSimulator(scenario).run();

  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "cosmicdance_monitor_store")
          .string();
  std::filesystem::remove_all(store_dir);
  tle::TleStore store(store_dir);

  core::StormTriggerConfig trigger_config;
  trigger_config.onset_nt = -70.0;  // alert on the deeper storms only
  core::StormTrigger trigger(trigger_config);

  const auto start = timeutil::hour_index_from_datetime(
      timeutil::make_datetime(2023, 1, 1));
  const auto end = timeutil::hour_index_from_datetime(
      timeutil::make_datetime(2024, 1, 1));

  std::printf("monitoring 2023 week by week (store: %s)\n\n", store_dir.c_str());
  int alerts = 0;
  for (timeutil::HourIndex week = start; week < end; week += 24 * 7) {
    // 1. ingest the week's TLEs incrementally.
    tle::TleCatalog fresh;
    const double jd_lo = timeutil::julian_from_hour_index(week);
    const double jd_hi = timeutil::julian_from_hour_index(week + 24 * 7);
    for (const int id : run.catalog.satellites()) {
      for (const tle::Tle& record : run.catalog.history(id)) {
        if (record.epoch_jd >= jd_lo && record.epoch_jd < jd_hi) {
          fresh.add(record);
        }
      }
    }
    const std::size_t persisted = store.merge(fresh);

    // 2. feed the week's Dst to the trigger.
    for (timeutil::HourIndex hour = week;
         hour < week + 24 * 7 && dst.covers(hour); ++hour) {
      const auto event = trigger.feed(hour, dst.at(hour));
      if (!event.has_value()) continue;
      const auto when = timeutil::datetime_from_hour_index(event->hour);
      if (event->kind == core::TriggerEvent::Kind::kOnset) {
        ++alerts;
        std::printf("[ALERT]   %s  storm onset at %.0f nT -> trigger "
                    "measurement campaign\n",
                    when.to_string().substr(0, 16).c_str(), event->dst_nt);
      } else {
        std::printf("[RELEASE] %s  storm over (peak %.0f nT); assessing "
                    "fleet...\n",
                    when.to_string().substr(0, 16).c_str(), event->peak_dst_nt);
        // 3. quick damage assessment from the store.
        core::CosmicDance pipeline(dst, store.load());
        const auto changes = pipeline.correlator().altitude_change_samples(
            pipeline.tracks(),
            std::vector<double>{timeutil::julian_from_hour_index(event->hour)});
        if (!changes.empty()) {
          std::printf("          %zu satellites analysable; max deviation so "
                      "far %.2f km\n",
                      changes.size(), stats::max(changes));
        }
      }
    }
    (void)persisted;
  }

  std::printf("\n%d storm alerts in 2023; store now holds %zu satellites.\n",
              alerts, store.stored_satellites().size());
  std::filesystem::remove_all(store_dir);
  return 0;
}
