// Civil UTC time, Julian dates and TLE epochs.
//
// CosmicDance aligns two time-stamped data modalities (hourly Dst records
// and irregular TLE epochs), so all timestamps funnel through two canonical
// representations: a civil DateTime (for parsing/printing) and a Julian
// date in UTC (for arithmetic).  Leap seconds are ignored, matching the
// conventions of both the Dst archive and the TLE format.
#pragma once

#include <compare>
#include <string>

namespace cosmicdance::timeutil {

/// A civil UTC timestamp with fractional seconds.
///
/// Invariant-light by design (a struct per C.2): validation is explicit via
/// validate(), and the factory functions always return validated values.
struct DateTime {
  int year = 2000;
  int month = 1;   ///< 1..12
  int day = 1;     ///< 1..31 (month-appropriate)
  int hour = 0;    ///< 0..23
  int minute = 0;  ///< 0..59
  double second = 0.0;  ///< [0, 60)

  /// Throws ValidationError if any field is out of range.
  void validate() const;

  /// ISO-8601 "YYYY-MM-DDTHH:MM:SS.sss" representation.
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const DateTime&, const DateTime&) = default;
};

/// True when `year` is a Gregorian leap year.
[[nodiscard]] bool is_leap_year(int year) noexcept;

/// Days in `month` of `year`.  Throws ValidationError for month out of 1..12.
[[nodiscard]] int days_in_month(int year, int month);

/// Day-of-year (1..366) for a validated civil date.
[[nodiscard]] int day_of_year(int year, int month, int day);

/// Inverse of day_of_year: fills month/day for the given year.
void month_day_from_doy(int year, int doy, int& month, int& day);

/// Julian date (UTC) of a civil timestamp.  Valid for years 1900-2100.
[[nodiscard]] double to_julian(const DateTime& dt);

/// Civil timestamp of a Julian date (UTC).
[[nodiscard]] DateTime from_julian(double jd);

/// Julian date of the J2000.0 epoch used as the hour-axis origin
/// (2000-01-01T00:00:00 UTC).
inline constexpr double kJdEpoch2000 = 2451544.5;

/// Parse "YYYY-MM-DD" or "YYYY-MM-DDTHH:MM:SS[.sss]" (also accepts a space
/// separator).  Throws ParseError on malformed input.
[[nodiscard]] DateTime parse_datetime(const std::string& text);

/// Convenience factory for a validated civil date.
[[nodiscard]] DateTime make_datetime(int year, int month, int day, int hour = 0,
                                     int minute = 0, double second = 0.0);

/// TLE epoch representation: two-digit year plus fractional day-of-year.
/// Years 57..99 map to 1957..1999; 00..56 map to 2000..2056 (NORAD rule).
[[nodiscard]] double tle_epoch_to_julian(int two_digit_year, double day_of_year_fraction);

/// Inverse: Julian date -> (two-digit year, fractional day-of-year).
void julian_to_tle_epoch(double jd, int& two_digit_year, double& day_of_year_fraction);

/// Add a number of (possibly fractional, possibly negative) hours.
[[nodiscard]] DateTime add_hours(const DateTime& dt, double hours);

/// Signed difference `b - a` in hours.
[[nodiscard]] double hours_between(const DateTime& a, const DateTime& b);

}  // namespace cosmicdance::timeutil
