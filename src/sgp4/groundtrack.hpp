// Ground tracks: sub-satellite points over time from any propagator state.
//
// Used by the latitude-band analyses and coverage studies (paper §6): LEO
// broadband service quality is a function of where satellites are, so the
// finer-granularity storm analyses need position, not just altitude.
#pragma once

#include <vector>

#include "orbit/frames.hpp"
#include "sgp4/sgp4.hpp"

namespace cosmicdance::sgp4 {

/// One sub-satellite point.
struct GroundPoint {
  double jd = 0.0;
  double latitude_deg = 0.0;   ///< geodetic
  double longitude_deg = 0.0;  ///< [-180, 180)
  double altitude_km = 0.0;    ///< geodetic height
};

/// Sample the sub-satellite track from `jd_start` for `duration_minutes`
/// every `step_minutes`.  Throws PropagationError if the propagation fails
/// anywhere in the window.
[[nodiscard]] std::vector<GroundPoint> ground_track(
    const Sgp4Propagator& propagator, double jd_start,
    double duration_minutes, double step_minutes = 1.0);

/// Fraction of a ground track spent at or above |latitude_deg|.
[[nodiscard]] double fraction_above_latitude(const std::vector<GroundPoint>& track,
                                             double latitude_deg);

}  // namespace cosmicdance::sgp4
