#include "sgp4/batch.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/units.hpp"
#include "exec/parallel_for.hpp"
#include "obs/obs.hpp"

namespace cosmicdance::sgp4 {

namespace {

/// Shared empty block handed to near-earth rows so the kernel's deep-space
/// argument is always a valid reference.
const DeepSpaceConstants kNoDeepSpace{};

}  // namespace

std::size_t BatchResult::error_count() const noexcept {
  std::size_t count = 0;
  for (const Sgp4Status status : statuses) {
    if (status != Sgp4Status::kOk) ++count;
  }
  return count;
}

BatchPropagator BatchPropagator::from_tles(std::span<const tle::Tle> tles,
                                           const orbit::GravityModel& gravity) {
  BatchPropagator batch;
  batch.common_.reserve(tles.size());
  batch.near_.reserve(tles.size());
  batch.deep_index_.reserve(tles.size());
  for (const tle::Tle& tle : tles) {
    Sgp4Constants k;
    try {
      k = init_constants(tle, gravity);
    } catch (const Error& error) {
      batch.failures_.push_back({tle.catalog_number, error.what()});
      continue;
    }
    batch.common_.push_back(k.common);
    batch.near_.push_back(k.near_space);
    if (k.common.deep_space) {
      batch.deep_index_.push_back(static_cast<std::int32_t>(batch.deep_.size()));
      batch.deep_.push_back(k.deep);
    } else {
      batch.deep_index_.push_back(-1);
    }
  }
  return batch;
}

BatchPropagator BatchPropagator::from_catalog(const tle::TleCatalog& catalog,
                                              const orbit::GravityModel& gravity) {
  std::vector<tle::Tle> latest;
  latest.reserve(catalog.satellite_count());
  for (const int number : catalog.satellites()) {
    const auto history = catalog.history(number);
    if (!history.empty()) latest.push_back(history.back());
  }
  return from_tles(latest, gravity);
}

Sgp4Status BatchPropagator::try_propagate_row(std::size_t row,
                                              double tsince_minutes,
                                              orbit::StateVector& out)
    const noexcept {
  const std::int32_t deep = deep_index_[row];
  return propagate(common_[row], near_[row],
                   deep >= 0 ? deep_[static_cast<std::size_t>(deep)]
                             : kNoDeepSpace,
                   tsince_minutes, out);
}

template <typename TsinceForRow>
BatchResult BatchPropagator::propagate_grid(std::size_t epoch_count,
                                            const TsinceForRow& tsince,
                                            int num_threads,
                                            obs::Metrics* metrics) const {
  const obs::ScopedPhase phase(metrics, "sgp4.batch_propagate");

  BatchResult result;
  result.rows = rows();
  result.epochs = epoch_count;
  result.states.resize(result.rows * epoch_count);
  result.statuses.resize(result.rows * epoch_count, Sgp4Status::kOk);

  // Fan out by row: every (row, epoch) cell is written exactly once by the
  // worker owning that row, and each row's epoch sweep is serial with a
  // row-local resonance memo — so the grid is bit-identical at any thread
  // count (the exec ordering contract plus the exact-memo contract).
  exec::parallel_for(
      result.rows, num_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t row = begin; row < end; ++row) {
          const CommonConstants& common = common_[row];
          const NearSpaceConstants& near_space = near_[row];
          const std::int32_t deep = deep_index_[row];
          const DeepSpaceConstants& deep_space =
              deep >= 0 ? deep_[static_cast<std::size_t>(deep)] : kNoDeepSpace;
          ResonanceState resonance;
          orbit::StateVector* states = &result.states[row * epoch_count];
          Sgp4Status* statuses = &result.statuses[row * epoch_count];
          for (std::size_t e = 0; e < epoch_count; ++e) {
            statuses[e] = propagate(common, near_space, deep_space,
                                    tsince(row, e), states[e], &resonance);
            if (statuses[e] != Sgp4Status::kOk) states[e] = {};
          }
        }
      },
      metrics);

  if (metrics != nullptr) {
    obs::bump(obs::counter_or_null(metrics, "sgp4.batch_rows"), result.rows);
    obs::bump(obs::counter_or_null(metrics, "sgp4.batch_positions"),
              result.states.size());
    obs::bump(obs::counter_or_null(metrics, "sgp4.batch_errors"),
              result.error_count());
  }
  return result;
}

BatchResult BatchPropagator::propagate_jd(std::span<const double> epochs_jd,
                                          int num_threads,
                                          obs::Metrics* metrics) const {
  return propagate_grid(
      epochs_jd.size(),
      [&](std::size_t row, std::size_t e) {
        return (epochs_jd[e] - common_[row].epoch_jd) * units::kMinutesPerDay;
      },
      num_threads, metrics);
}

BatchResult BatchPropagator::propagate_minutes(
    std::span<const double> tsince_minutes, int num_threads,
    obs::Metrics* metrics) const {
  return propagate_grid(
      tsince_minutes.size(),
      [&](std::size_t, std::size_t e) { return tsince_minutes[e]; },
      num_threads, metrics);
}

}  // namespace cosmicdance::sgp4
