// cdlint corpus: raw-parse (R3) applies to tests/ too -- golden-file
// comparisons must use the checked helpers so NaN/garbage cells fail loudly.
#include <string>

double expected_cell(const std::string& text) { return std::stod(text); }
