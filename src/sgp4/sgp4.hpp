// SGP4/SDP4 orbit propagator (Vallado's reference algorithm, WGS-72).
//
// This is the standard analytical model TLEs are fitted against: the
// near-earth SGP4 theory (J2/J3/J4 secular + periodic terms and the B* drag
// model) plus the SDP4 deep-space extension (lunar/solar periodics and
// 12h/24h resonance handling) selected automatically for periods >= 225 min.
// Output states are in the TEME frame, kilometres and km/s.
//
// Layout (DESIGN.md §16): element recovery runs exactly once per TLE and
// produces three immutable constant blocks, split by which orbit class
// consumes them — the CommonConstants / NearSpaceConstants /
// DeepSpaceConstants separation of the reference C++ ports.  Propagation is
// a pure function of (constants, tsince): every per-epoch intermediate
// lives on the stack, so one constant set may be propagated from any number
// of threads concurrently.  The deep-space resonance integrator's memo is
// an explicit caller-owned ResonanceState instead of hidden mutable state;
// passing one is purely an optimisation for ascending-time sweeps and never
// changes results (exact-memoization contract, see ResonanceState).
#pragma once

#include <string>

#include "orbit/constants.hpp"
#include "orbit/state.hpp"
#include "tle/tle.hpp"

namespace cosmicdance::sgp4 {

/// Propagation failure modes, mirroring the reference implementation's
/// error codes (kKeplerNotConverged is ours: the reference silently keeps
/// the unconverged iterate).
enum class Sgp4Status {
  kOk = 0,
  kEccentricityOutOfRange = 1,  ///< mean eccentricity outside [0, 1)
  kMeanMotionNonPositive = 2,
  kPerturbedEccentricityOutOfRange = 3,
  kSemiLatusRectumNegative = 4,
  kDecayed = 6,             ///< satellite radius dropped below Earth's surface
  kKeplerNotConverged = 7,  ///< Kepler iteration still diverging at the bound
};

/// Human-readable description of a status code.
[[nodiscard]] std::string to_string(Sgp4Status status);

/// Constants every propagation consumes: mean elements at epoch, recovered
/// (un-Kozai'd) mean motion, secular rates and the first-order drag terms.
struct CommonConstants {
  orbit::GravityModel gravity{};
  double epoch_jd = 0.0;
  double epoch1950 = 0.0;  ///< days since 1949 Dec 31 00:00 UT
  int catalog_number = 0;
  bool deep_space = false;  ///< SDP4 path active (period >= 225 min)
  bool simple_drag = false; ///< isimp: higher-order drag terms dropped

  // Mean elements at epoch (radians, rad/min).
  double bstar = 0.0, ecco = 0.0, argpo = 0.0, inclo = 0.0, mo = 0.0,
         no = 0.0, nodeo = 0.0;

  // Secular rates and periodic coefficients.
  double aycof = 0.0, con41 = 0.0, cc1 = 0.0, cc4 = 0.0, cc5 = 0.0,
         delmo = 0.0, eta = 0.0, argpdot = 0.0, omgcof = 0.0, sinmao = 0.0,
         t2cof = 0.0, x1mth2 = 0.0, x7thm1 = 0.0, mdot = 0.0, nodedot = 0.0,
         xlcof = 0.0, xmcof = 0.0, nodecf = 0.0, gsto = 0.0;

  double recovered_a_earth_radii = 0.0;
};

/// Higher-order drag terms, used only when !simple_drag (perigee >= 220 km
/// and near-earth); all-zero otherwise so the struct is always safe to read.
struct NearSpaceConstants {
  double d2 = 0.0, d3 = 0.0, d4 = 0.0, t3cof = 0.0, t4cof = 0.0, t5cof = 0.0;
};

/// SDP4 lunar/solar periodic and resonance constants, used only when
/// deep_space; all-zero (irez == 0) otherwise.
struct DeepSpaceConstants {
  int irez = 0;  ///< 0 none, 1 synchronous (24h), 2 half-day (12h)
  double d2201 = 0.0, d2211 = 0.0, d3210 = 0.0, d3222 = 0.0, d4410 = 0.0,
         d4422 = 0.0, d5220 = 0.0, d5232 = 0.0, d5421 = 0.0, d5433 = 0.0,
         dedt = 0.0, del1 = 0.0, del2 = 0.0, del3 = 0.0, didt = 0.0,
         dmdt = 0.0, dnodt = 0.0, domdt = 0.0, e3 = 0.0, ee2 = 0.0,
         peo = 0.0, pgho = 0.0, pho = 0.0, pinco = 0.0, plo = 0.0,
         se2 = 0.0, se3 = 0.0, sgh2 = 0.0, sgh3 = 0.0, sgh4 = 0.0,
         sh2 = 0.0, sh3 = 0.0, si2 = 0.0, si3 = 0.0, sl2 = 0.0,
         sl3 = 0.0, sl4 = 0.0, xfact = 0.0, xgh2 = 0.0, xgh3 = 0.0,
         xgh4 = 0.0, xh2 = 0.0, xh3 = 0.0, xi2 = 0.0, xi3 = 0.0,
         xl2 = 0.0, xl3 = 0.0, xl4 = 0.0, xlamo = 0.0, zmol = 0.0,
         zmos = 0.0;
};

/// One TLE's full init-once constant set.
struct Sgp4Constants {
  CommonConstants common;
  NearSpaceConstants near_space;
  DeepSpaceConstants deep;
};

/// Resonance-integrator memo for the deep-space 12h/24h branches.
///
/// The integrator is a fixed-step (720 min) Euler-Maclaurin recurrence from
/// t = 0; a memo just skips recomputing the prefix of steps shared with the
/// previous call.  Resuming is *exact*: the recurrence is restarted from
/// scratch whenever the cached state is not a prefix of the requested time
/// (opposite sign, or |t| < |atime|), so results are bit-identical whether a
/// state is reused across calls, used fresh per call, or epochs are visited
/// in any order.  The zero state is the valid cold start.
struct ResonanceState {
  double atime = 0.0;  ///< minutes integrated so far (0 = cold)
  double xli = 0.0;
  double xni = 0.0;
};

/// Run the full sgp4init element recovery for one TLE.  Throws
/// ValidationError for bad elements and PropagationError when the element
/// set cannot be initialised (e.g. epoch elements below ground).
[[nodiscard]] Sgp4Constants init_constants(
    const tle::Tle& tle, const orbit::GravityModel& gravity = orbit::wgs72());

/// The propagation kernel: state at `tsince_minutes` minutes from the TLE
/// epoch.  Pure — safe to call concurrently on one constant set.  `resume`
/// (optional) memoises the deep-space resonance integrator across calls;
/// it never changes results (see ResonanceState) and is ignored for
/// non-resonant orbits.
[[nodiscard]] Sgp4Status propagate(const Sgp4Constants& constants,
                                   double tsince_minutes,
                                   orbit::StateVector& out,
                                   ResonanceState* resume = nullptr) noexcept;

/// Split-block variant for structure-of-arrays callers (BatchPropagator
/// stores the three blocks in separate per-kind arrays).
[[nodiscard]] Sgp4Status propagate(const CommonConstants& common,
                                   const NearSpaceConstants& near_space,
                                   const DeepSpaceConstants& deep,
                                   double tsince_minutes,
                                   orbit::StateVector& out,
                                   ResonanceState* resume = nullptr) noexcept;

namespace detail {
/// Kepler's-equation solve (Newton with the reference's 0.95-rad step clamp,
/// hard-bounded at 10 iterations).  Returns kKeplerNotConverged when the
/// final correction is still >= 1e-8 rad — near-parabolic element sets for
/// which the reference would silently emit the unconverged iterate.
/// Exposed for the regression tests.
[[nodiscard]] Sgp4Status solve_kepler(double u, double axnl, double aynl,
                                      double& eo1, double& sineo1,
                                      double& coseo1) noexcept;
}  // namespace detail

/// One initialised propagator per TLE: a thin owner of the init-once
/// constant set.  Construction runs the full sgp4init element recovery;
/// propagation is then cheap and — because the kernel is pure — thread-safe
/// even for a single instance shared across threads.
class Sgp4Propagator {
 public:
  /// Throws ValidationError for bad elements and PropagationError when the
  /// element set cannot be initialised (e.g. epoch elements below ground).
  explicit Sgp4Propagator(const tle::Tle& tle,
                          const orbit::GravityModel& gravity = orbit::wgs72());

  /// Propagate `tsince_minutes` minutes from the TLE epoch.  Throws
  /// PropagationError (with the status in the message) on failure.
  [[nodiscard]] orbit::StateVector propagate_minutes(double tsince_minutes) const;

  /// Propagate to an absolute UTC Julian date.
  [[nodiscard]] orbit::StateVector propagate_jd(double jd) const;

  /// Non-throwing variant; returns the status and fills `out` on success.
  /// `resume` optionally carries the resonance-integrator memo between
  /// ascending-time calls (never changes results).
  [[nodiscard]] Sgp4Status try_propagate_minutes(
      double tsince_minutes, orbit::StateVector& out,
      ResonanceState* resume = nullptr) const noexcept;

  [[nodiscard]] double epoch_jd() const noexcept { return k_.common.epoch_jd; }
  [[nodiscard]] int catalog_number() const noexcept {
    return k_.common.catalog_number;
  }
  /// True when the SDP4 deep-space path is active (period >= 225 min).
  [[nodiscard]] bool deep_space() const noexcept { return k_.common.deep_space; }

  /// Brouwer mean semi-major axis recovered from the Kozai mean motion at
  /// epoch (km) — the paper's altitude proxy uses exactly this recovery.
  [[nodiscard]] double recovered_semi_major_axis_km() const noexcept;
  /// recovered_semi_major_axis_km() minus Earth's equatorial radius.
  [[nodiscard]] double recovered_altitude_km() const noexcept;

  /// The init-once constant set (immutable for the propagator's lifetime).
  [[nodiscard]] const Sgp4Constants& constants() const noexcept { return k_; }

 private:
  Sgp4Constants k_;
};

}  // namespace cosmicdance::sgp4
