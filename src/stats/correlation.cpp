#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace cosmicdance::stats {
namespace {

std::vector<double> average_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double average = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = average;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw ValidationError("correlation requires equal-length samples");
  }
  if (x.size() < 2) throw ValidationError("correlation requires >= 2 samples");
  const auto n = static_cast<double>(x.size());
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= n;
  mean_y /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    throw ValidationError("correlation undefined for zero-variance sample");
  }
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw ValidationError("correlation requires equal-length samples");
  }
  const std::vector<double> rx = average_ranks(x);
  const std::vector<double> ry = average_ranks(y);
  return pearson(rx, ry);
}

}  // namespace cosmicdance::stats
