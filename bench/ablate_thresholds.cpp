// Ablation: the pre-decay threshold (paper: 5 km, "empirically set;
// configurable").  Sweeps the threshold and reports how many satellite-event
// samples survive the filter and what the post-storm altitude-change tail
// looks like — showing the trade-off between keeping genuinely affected
// satellites and contaminating the analysis with already-decaying ones.
#include <iostream>

#include "bench_common.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"

using namespace cosmicdance;

int main() {
  const spaceweather::DstIndex dst = bench::paper_dst();
  const tle::TleCatalog catalog = bench::paper_catalog(dst);

  io::print_heading(std::cout, "Ablation: pre-decay threshold sweep (Fig 5b view)");
  io::TablePrinter table({"threshold_km", "samples", "median_km", "p95_km",
                          "p99_km", "max_km"});
  for (const double threshold : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    core::PipelineConfig config;
    config.correlator.cleaning.predecay_threshold_km = threshold;
    const core::CosmicDance pipeline(dst, catalog, config);
    const double p95 = pipeline.dst_threshold_at_percentile(95.0);
    const auto changes = pipeline.altitude_changes_for_storms(p95);
    if (changes.empty()) {
      table.add_row({io::TablePrinter::num(threshold, 0), "0"});
      continue;
    }
    const auto s = stats::summarize(changes);
    table.add_row({io::TablePrinter::num(threshold, 0), std::to_string(s.count),
                   io::TablePrinter::num(s.median, 2),
                   io::TablePrinter::num(s.p95, 2),
                   io::TablePrinter::num(s.p99, 2),
                   io::TablePrinter::num(s.max, 1)});
  }
  table.print(std::cout);

  bench::note("expected: a 1-2 km threshold discards satellites whose normal");
  bench::note("manoeuvre jitter exceeds it (fewer samples); a 20-50 km one");
  bench::note("lets already-decaying satellites in, inflating the tail with");
  bench::note("shifts that predate the storm.  The paper's 5 km sits between.");
  return 0;
}
