// CSV export of analysis results — the bridge between the library and
// external plotting (the original CosmicDance plots from files; so do the
// bundled CLI and any downstream notebooks).
#pragma once

#include <span>

#include "core/analysis.hpp"
#include "core/correlator.hpp"
#include "io/csv.hpp"
#include "spaceweather/storms.hpp"
#include "stats/ecdf.hpp"

namespace cosmicdance::core {

/// ECDF as rows of (value, cdf), thinned to at most `max_points`, with a
/// header row naming the value column.
[[nodiscard]] std::vector<io::CsvRow> ecdf_csv(const stats::Ecdf& ecdf,
                                               const std::string& value_name,
                                               std::size_t max_points = 400);

/// Storm events: onset, peak time, peak nT, category, duration hours.
[[nodiscard]] std::vector<io::CsvRow> storms_csv(
    std::span<const spaceweather::StormEvent> storms);

/// Post-event envelope: one row per day with median/p95 and the
/// per-satellite deviations as additional columns.
[[nodiscard]] std::vector<io::CsvRow> envelope_csv(const PostEventEnvelope& envelope);

/// Super-storm panel (Fig 7) rows.
[[nodiscard]] std::vector<io::CsvRow> panel_csv(
    std::span<const SuperstormPanelRow> rows);

/// A satellite timeline (Fig 3 series): epoch ISO, altitude, B*.
[[nodiscard]] std::vector<io::CsvRow> timeline_csv(const TrackTimeline& timeline);

}  // namespace cosmicdance::core
