# Empty dependencies file for cd_core.
# This may be replaced when dependencies are built.
