#include "stats/rolling.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace cosmicdance::stats {
namespace {

std::pair<std::size_t, std::size_t> window_range(std::span<const TimedValue> series,
                                                 double t_lo, double t_hi) noexcept {
  const auto begin = std::lower_bound(
      series.begin(), series.end(), t_lo,
      [](const TimedValue& tv, double t) { return tv.time < t; });
  const auto end = std::lower_bound(
      begin, series.end(), t_hi,
      [](const TimedValue& tv, double t) { return tv.time < t; });
  return {static_cast<std::size_t>(begin - series.begin()),
          static_cast<std::size_t>(end - series.begin())};
}

std::vector<double> window_values(std::span<const TimedValue> series, double t_lo,
                                  double t_hi) {
  const auto [lo, hi] = window_range(series, t_lo, t_hi);
  std::vector<double> values;
  values.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) values.push_back(series[i].value);
  return values;
}

}  // namespace

double window_median(std::span<const TimedValue> series, double t_lo, double t_hi) {
  const std::vector<double> values = window_values(series, t_lo, t_hi);
  if (values.empty()) throw ValidationError("window_median over empty window");
  return median(values);
}

double window_mean(std::span<const TimedValue> series, double t_lo, double t_hi) {
  const std::vector<double> values = window_values(series, t_lo, t_hi);
  if (values.empty()) throw ValidationError("window_mean over empty window");
  return mean(values);
}

std::size_t window_count(std::span<const TimedValue> series, double t_lo,
                         double t_hi) noexcept {
  const auto [lo, hi] = window_range(series, t_lo, t_hi);
  return hi - lo;
}

const TimedValue* last_at_or_before(std::span<const TimedValue> series,
                                    double t) noexcept {
  const auto it = std::upper_bound(
      series.begin(), series.end(), t,
      [](double value, const TimedValue& tv) { return value < tv.time; });
  if (it == series.begin()) return nullptr;
  return &*(it - 1);
}

const TimedValue* first_at_or_after(std::span<const TimedValue> series,
                                    double t) noexcept {
  const auto it = std::lower_bound(
      series.begin(), series.end(), t,
      [](const TimedValue& tv, double value) { return tv.time < value; });
  if (it == series.end()) return nullptr;
  return &*it;
}

std::vector<double> rolling_median(std::span<const TimedValue> series,
                                   double half_width) {
  if (half_width < 0.0) throw ValidationError("rolling_median half_width < 0");
  std::vector<double> out;
  out.reserve(series.size());
  std::vector<double> values;
  for (const TimedValue& tv : series) {
    // The centered window is inclusive on both ends: [t - hw, t + hw].
    // An explicit upper_bound keeps the right endpoint in the window at any
    // time magnitude — a "+ epsilon" widening is absorbed at Julian-date
    // scale (~2.46e6, ulp ≈ 4.6e-10) and silently drops the endpoint.
    const double t_lo = tv.time - half_width;
    const double t_hi = tv.time + half_width;
    const auto begin = std::lower_bound(
        series.begin(), series.end(), t_lo,
        [](const TimedValue& sample, double t) { return sample.time < t; });
    const auto end = std::upper_bound(
        begin, series.end(), t_hi,
        [](double t, const TimedValue& sample) { return t < sample.time; });
    values.clear();
    for (auto it = begin; it != end; ++it) values.push_back(it->value);
    out.push_back(median(values));  // never empty: tv itself is in-window
  }
  return out;
}

}  // namespace cosmicdance::stats
