file(REMOVE_RECURSE
  "CMakeFiles/extensions4_test.dir/extensions4_test.cpp.o"
  "CMakeFiles/extensions4_test.dir/extensions4_test.cpp.o.d"
  "extensions4_test"
  "extensions4_test.pdb"
  "extensions4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
