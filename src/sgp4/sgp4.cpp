// SGP4/SDP4 implementation following Vallado, Crawford, Hujsak & Kelso,
// "Revisiting Spacetrack Report #3" (AIAA 2006-6753) and the companion
// reference code.  Variable names intentionally mirror the reference so the
// math can be checked against the report term by term.
//
// Structure: init_constants() is the reference's sgp4init (plus dscom /
// dsinit for deep-space sets), run exactly once per TLE; propagate() is the
// reference's sgp4(), a pure function of the recovered constants.  The only
// cross-call state in the reference — the deep-space resonance integrator's
// atime/xli/xni memo — is hoisted into the caller-owned ResonanceState so
// the kernel itself has no mutable storage.
#include "sgp4/sgp4.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "timeutil/sidereal.hpp"

namespace cosmicdance::sgp4 {
namespace {

using units::kPi;
using units::kTwoPi;

constexpr double kX2o3 = 2.0 / 3.0;
// Julian date of the 1950 reference epoch used by the deep-space theory.
constexpr double kJd1950 = 2433281.5;

/// Epoch lunar/solar geometry shared between dscom and dsinit during init;
/// never needed after init_constants returns.
struct DscomScratch {
  double snodm = 0.0, cnodm = 0.0, sinim = 0.0, cosim = 0.0, sinomm = 0.0,
         cosomm = 0.0, day = 0.0, emsq = 0.0, gam = 0.0, rtemsq = 0.0,
         s1 = 0.0, s2 = 0.0, s3 = 0.0, s4 = 0.0, s5 = 0.0, s6 = 0.0,
         s7 = 0.0, ss1 = 0.0, ss2 = 0.0, ss3 = 0.0, ss4 = 0.0, ss5 = 0.0,
         ss6 = 0.0, ss7 = 0.0, sz1 = 0.0, sz2 = 0.0, sz3 = 0.0,
         sz11 = 0.0, sz12 = 0.0, sz13 = 0.0, sz21 = 0.0, sz22 = 0.0,
         sz23 = 0.0, sz31 = 0.0, sz32 = 0.0, sz33 = 0.0, z1 = 0.0,
         z2 = 0.0, z3 = 0.0, z11 = 0.0, z12 = 0.0, z13 = 0.0, z21 = 0.0,
         z22 = 0.0, z23 = 0.0, z31 = 0.0, z32 = 0.0, z33 = 0.0;
};

// ---------------------------------------------------------------------------
// dscom: deep-space common terms (lunar & solar geometry at epoch).
// ---------------------------------------------------------------------------
void dscom(double epoch1950, double ep, double argpp, double tc, double inclp,
           double nodep, double np, DscomScratch& s, DeepSpaceConstants& deep) {
  constexpr double zes = 0.01675;
  constexpr double zel = 0.05490;
  constexpr double c1ss = 2.9864797e-6;
  constexpr double c1l = 4.7968065e-7;
  constexpr double zsinis = 0.39785416;
  constexpr double zcosis = 0.91744867;
  constexpr double zcosgs = 0.1945905;
  constexpr double zsings = -0.98088458;

  const double nm = np;
  const double em = ep;
  s.snodm = std::sin(nodep);
  s.cnodm = std::cos(nodep);
  s.sinomm = std::sin(argpp);
  s.cosomm = std::cos(argpp);
  s.sinim = std::sin(inclp);
  s.cosim = std::cos(inclp);
  s.emsq = em * em;
  const double betasq = 1.0 - s.emsq;
  s.rtemsq = std::sqrt(betasq);

  deep.peo = 0.0;
  deep.pinco = 0.0;
  deep.plo = 0.0;
  deep.pgho = 0.0;
  deep.pho = 0.0;
  s.day = epoch1950 + 18261.5 + tc / 1440.0;
  const double xnodce = std::fmod(4.5236020 - 9.2422029e-4 * s.day, kTwoPi);
  const double stem = std::sin(xnodce);
  const double ctem = std::cos(xnodce);
  const double zcosil = 0.91375164 - 0.03568096 * ctem;
  const double zsinil = std::sqrt(1.0 - zcosil * zcosil);
  const double zsinhl = 0.089683511 * stem / zsinil;
  const double zcoshl = std::sqrt(1.0 - zsinhl * zsinhl);
  s.gam = 5.8351514 + 0.0019443680 * s.day;
  double zx = 0.39785416 * stem / zsinil;
  const double zy = zcoshl * ctem + 0.91744867 * zsinhl * stem;
  zx = std::atan2(zx, zy);
  zx = s.gam + zx - xnodce;
  const double zcosgl = std::cos(zx);
  const double zsingl = std::sin(zx);

  // ------------------------- do solar terms -------------------------------
  double zcosg = zcosgs;
  double zsing = zsings;
  double zcosi = zcosis;
  double zsini = zsinis;
  double zcosh = s.cnodm;
  double zsinh = s.snodm;
  double cc = c1ss;
  const double xnoi = 1.0 / nm;

  for (int lsflg = 1; lsflg <= 2; ++lsflg) {
    const double a1 = zcosg * zcosh + zsing * zcosi * zsinh;
    const double a3 = -zsing * zcosh + zcosg * zcosi * zsinh;
    const double a7 = -zcosg * zsinh + zsing * zcosi * zcosh;
    const double a8 = zsing * zsini;
    const double a9 = zsing * zsinh + zcosg * zcosi * zcosh;
    const double a10 = zcosg * zsini;
    const double a2 = s.cosim * a7 + s.sinim * a8;
    const double a4 = s.cosim * a9 + s.sinim * a10;
    const double a5 = -s.sinim * a7 + s.cosim * a8;
    const double a6 = -s.sinim * a9 + s.cosim * a10;

    const double x1 = a1 * s.cosomm + a2 * s.sinomm;
    const double x2 = a3 * s.cosomm + a4 * s.sinomm;
    const double x3 = -a1 * s.sinomm + a2 * s.cosomm;
    const double x4 = -a3 * s.sinomm + a4 * s.cosomm;
    const double x5 = a5 * s.sinomm;
    const double x6 = a6 * s.sinomm;
    const double x7 = a5 * s.cosomm;
    const double x8 = a6 * s.cosomm;

    s.z31 = 12.0 * x1 * x1 - 3.0 * x3 * x3;
    s.z32 = 24.0 * x1 * x2 - 6.0 * x3 * x4;
    s.z33 = 12.0 * x2 * x2 - 3.0 * x4 * x4;
    s.z1 = 3.0 * (a1 * a1 + a2 * a2) + s.z31 * s.emsq;
    s.z2 = 6.0 * (a1 * a3 + a2 * a4) + s.z32 * s.emsq;
    s.z3 = 3.0 * (a3 * a3 + a4 * a4) + s.z33 * s.emsq;
    s.z11 = -6.0 * a1 * a5 + s.emsq * (-24.0 * x1 * x7 - 6.0 * x3 * x5);
    s.z12 = -6.0 * (a1 * a6 + a3 * a5) +
            s.emsq * (-24.0 * (x2 * x7 + x1 * x8) - 6.0 * (x3 * x6 + x4 * x5));
    s.z13 = -6.0 * a3 * a6 + s.emsq * (-24.0 * x2 * x8 - 6.0 * x4 * x6);
    s.z21 = 6.0 * a2 * a5 + s.emsq * (24.0 * x1 * x5 - 6.0 * x3 * x7);
    s.z22 = 6.0 * (a4 * a5 + a2 * a6) +
            s.emsq * (24.0 * (x2 * x5 + x1 * x6) - 6.0 * (x4 * x7 + x3 * x8));
    s.z23 = 6.0 * a4 * a6 + s.emsq * (24.0 * x2 * x6 - 6.0 * x4 * x8);
    s.z1 = s.z1 + s.z1 + betasq * s.z31;
    s.z2 = s.z2 + s.z2 + betasq * s.z32;
    s.z3 = s.z3 + s.z3 + betasq * s.z33;
    s.s3 = cc * xnoi;
    s.s2 = -0.5 * s.s3 / s.rtemsq;
    s.s4 = s.s3 * s.rtemsq;
    s.s1 = -15.0 * em * s.s4;
    s.s5 = x1 * x3 + x2 * x4;
    s.s6 = x2 * x3 + x1 * x4;
    s.s7 = x2 * x4 - x1 * x3;

    if (lsflg == 1) {
      s.ss1 = s.s1;
      s.ss2 = s.s2;
      s.ss3 = s.s3;
      s.ss4 = s.s4;
      s.ss5 = s.s5;
      s.ss6 = s.s6;
      s.ss7 = s.s7;
      s.sz1 = s.z1;
      s.sz2 = s.z2;
      s.sz3 = s.z3;
      s.sz11 = s.z11;
      s.sz12 = s.z12;
      s.sz13 = s.z13;
      s.sz21 = s.z21;
      s.sz22 = s.z22;
      s.sz23 = s.z23;
      s.sz31 = s.z31;
      s.sz32 = s.z32;
      s.sz33 = s.z33;
      zcosg = zcosgl;
      zsing = zsingl;
      zcosi = zcosil;
      zsini = zsinil;
      zcosh = zcoshl * s.cnodm + zsinhl * s.snodm;
      zsinh = s.snodm * zcoshl - s.cnodm * zsinhl;
      cc = c1l;
    }
  }

  deep.zmol = std::fmod(4.7199672 + 0.22997150 * s.day - s.gam, kTwoPi);
  deep.zmos = std::fmod(6.2565837 + 0.017201977 * s.day, kTwoPi);

  // ------------------------ do solar terms --------------------------------
  deep.se2 = 2.0 * s.ss1 * s.ss6;
  deep.se3 = 2.0 * s.ss1 * s.ss7;
  deep.si2 = 2.0 * s.ss2 * s.sz12;
  deep.si3 = 2.0 * s.ss2 * (s.sz13 - s.sz11);
  deep.sl2 = -2.0 * s.ss3 * s.sz2;
  deep.sl3 = -2.0 * s.ss3 * (s.sz3 - s.sz1);
  deep.sl4 = -2.0 * s.ss3 * (-21.0 - 9.0 * s.emsq) * zes;
  deep.sgh2 = 2.0 * s.ss4 * s.sz32;
  deep.sgh3 = 2.0 * s.ss4 * (s.sz33 - s.sz31);
  deep.sgh4 = -18.0 * s.ss4 * zes;
  deep.sh2 = -2.0 * s.ss2 * s.sz22;
  deep.sh3 = -2.0 * s.ss2 * (s.sz23 - s.sz21);

  // ------------------------ do lunar terms --------------------------------
  deep.ee2 = 2.0 * s.s1 * s.s6;
  deep.e3 = 2.0 * s.s1 * s.s7;
  deep.xi2 = 2.0 * s.s2 * s.z12;
  deep.xi3 = 2.0 * s.s2 * (s.z13 - s.z11);
  deep.xl2 = -2.0 * s.s3 * s.z2;
  deep.xl3 = -2.0 * s.s3 * (s.z3 - s.z1);
  deep.xl4 = -2.0 * s.s3 * (-21.0 - 9.0 * s.emsq) * zel;
  deep.xgh2 = 2.0 * s.s4 * s.z32;
  deep.xgh3 = 2.0 * s.s4 * (s.z33 - s.z31);
  deep.xgh4 = -18.0 * s.s4 * zel;
  deep.xh2 = -2.0 * s.s2 * s.z22;
  deep.xh3 = -2.0 * s.s2 * (s.z23 - s.z21);
}

// ---------------------------------------------------------------------------
// dpper: lunar-solar long-period periodic contributions.
// ---------------------------------------------------------------------------
void dpper(const DeepSpaceConstants& deep, double t, bool init_phase,
           double& ep, double& inclp, double& nodep, double& argpp,
           double& mp) noexcept {
  constexpr double zns = 1.19459e-5;
  constexpr double zes = 0.01675;
  constexpr double znl = 1.5835218e-4;
  constexpr double zel = 0.05490;

  // --------------- calculate time varying periodics ----------------------
  double zm = deep.zmos + zns * t;
  if (init_phase) zm = deep.zmos;
  double zf = zm + 2.0 * zes * std::sin(zm);
  double sinzf = std::sin(zf);
  double f2 = 0.5 * sinzf * sinzf - 0.25;
  double f3 = -0.5 * sinzf * std::cos(zf);
  const double ses = deep.se2 * f2 + deep.se3 * f3;
  const double sis = deep.si2 * f2 + deep.si3 * f3;
  const double sls = deep.sl2 * f2 + deep.sl3 * f3 + deep.sl4 * sinzf;
  const double sghs = deep.sgh2 * f2 + deep.sgh3 * f3 + deep.sgh4 * sinzf;
  const double shs = deep.sh2 * f2 + deep.sh3 * f3;

  zm = deep.zmol + znl * t;
  if (init_phase) zm = deep.zmol;
  zf = zm + 2.0 * zel * std::sin(zm);
  sinzf = std::sin(zf);
  f2 = 0.5 * sinzf * sinzf - 0.25;
  f3 = -0.5 * sinzf * std::cos(zf);
  const double sel = deep.ee2 * f2 + deep.e3 * f3;
  const double sil = deep.xi2 * f2 + deep.xi3 * f3;
  const double sll = deep.xl2 * f2 + deep.xl3 * f3 + deep.xl4 * sinzf;
  const double sghl = deep.xgh2 * f2 + deep.xgh3 * f3 + deep.xgh4 * sinzf;
  const double shll = deep.xh2 * f2 + deep.xh3 * f3;

  double pe = ses + sel;
  double pinc = sis + sil;
  double pl = sls + sll;
  double pgh = sghs + sghl;
  double ph = shs + shll;

  if (!init_phase) {
    pe -= deep.peo;
    pinc -= deep.pinco;
    pl -= deep.plo;
    pgh -= deep.pgho;
    ph -= deep.pho;
    inclp += pinc;
    ep += pe;
    const double sinip = std::sin(inclp);
    const double cosip = std::cos(inclp);

    if (inclp >= 0.2) {
      ph /= sinip;
      pgh -= cosip * ph;
      argpp += pgh;
      nodep += ph;
      mp += pl;
    } else {
      // ---- apply periodics with Lyddane modification (low inclination) ---
      const double sinop = std::sin(nodep);
      const double cosop = std::cos(nodep);
      double alfdp = sinip * sinop;
      double betdp = sinip * cosop;
      const double dalf = ph * cosop + pinc * cosip * sinop;
      const double dbet = -ph * sinop + pinc * cosip * cosop;
      alfdp += dalf;
      betdp += dbet;
      nodep = std::fmod(nodep, kTwoPi);
      if (nodep < 0.0) nodep += kTwoPi;
      double xls = mp + argpp + cosip * nodep;
      const double dls = pl + pgh - pinc * nodep * sinip;
      xls += dls;
      const double xnoh = nodep;
      nodep = std::atan2(alfdp, betdp);
      if (nodep < 0.0) nodep += kTwoPi;
      if (std::fabs(xnoh - nodep) > kPi) {
        if (nodep < xnoh) nodep += kTwoPi;
        else nodep -= kTwoPi;
      }
      mp += pl;
      argpp = xls - mp - cosip * nodep;
    }
  }
}

// ---------------------------------------------------------------------------
// dsinit: deep-space secular rates and resonance initialisation.
// ---------------------------------------------------------------------------
void dsinit(const DscomScratch& s, double tc, double xpidot, double eccsq,
            double inclm, CommonConstants& common, DeepSpaceConstants& deep) {
  constexpr double q22 = 1.7891679e-6;
  constexpr double q31 = 2.1460748e-6;
  constexpr double q33 = 2.2123015e-7;
  constexpr double root22 = 1.7891679e-6;
  constexpr double root44 = 7.3636953e-9;
  constexpr double root54 = 2.1765803e-9;
  constexpr double rptim = 4.37526908801129966e-3;  // earth rotation, rad/min
  constexpr double root32 = 3.7393792e-7;
  constexpr double root52 = 1.1428639e-7;
  constexpr double znl = 1.5835218e-4;
  constexpr double zns = 1.19459e-5;

  // -------------------- deep space resonance flags ------------------------
  const double nm_epoch = common.no;
  deep.irez = 0;
  if (nm_epoch < 0.0052359877 && nm_epoch > 0.0034906585) deep.irez = 1;
  if (nm_epoch >= 8.26e-3 && nm_epoch <= 9.24e-3 && common.ecco >= 0.5) {
    deep.irez = 2;
  }

  // ------------------------ do solar terms --------------------------------
  const double ses = s.ss1 * zns * s.ss5;
  const double sis = s.ss2 * zns * (s.sz11 + s.sz13);
  const double sls = -zns * s.ss3 * (s.sz1 + s.sz3 - 14.0 - 6.0 * s.emsq);
  const double sghs = s.ss4 * zns * (s.sz31 + s.sz33 - 6.0);
  double shs = -zns * s.ss2 * (s.sz21 + s.sz23);
  if (inclm < 5.2359877e-2 || inclm > kPi - 5.2359877e-2) shs = 0.0;
  if (s.sinim != 0.0) shs /= s.sinim;
  const double sgs = sghs - s.cosim * shs;

  // ------------------------- do lunar terms -------------------------------
  deep.dedt = ses + s.s1 * znl * s.s5;
  deep.didt = sis + s.s2 * znl * (s.z11 + s.z13);
  deep.dmdt = sls - znl * s.s3 * (s.z1 + s.z3 - 14.0 - 6.0 * s.emsq);
  const double sghl = s.s4 * znl * (s.z31 + s.z33 - 6.0);
  double shll = -znl * s.s2 * (s.z21 + s.z23);
  if (inclm < 5.2359877e-2 || inclm > kPi - 5.2359877e-2) shll = 0.0;
  deep.domdt = sgs + sghl;
  deep.dnodt = shs;
  if (s.sinim != 0.0) {
    deep.domdt -= s.cosim / s.sinim * shll;
    deep.dnodt += shll / s.sinim;
  }

  // At initialisation t = 0, so the secular updates (dedt*t etc.) vanish;
  // only theta is needed for the resonance phase angles below.
  const double theta = std::fmod(common.gsto + tc * rptim, kTwoPi);

  // -------------------- initialize the resonance terms --------------------
  if (deep.irez != 0) {
    const double aonv = std::pow(nm_epoch / common.gravity.xke, kX2o3);

    // ------------- geopotential resonance for 12-hour orbits --------------
    if (deep.irez == 2) {
      const double cosisq = s.cosim * s.cosim;
      // The reference swaps in the *epoch* eccentricity for the g-table
      // evaluation; with tc = 0 the "current" values are already the epoch
      // ones, so use them directly instead of the save/restore dance.
      const double em = common.ecco;
      const double emsq = eccsq;
      const double eoc = em * emsq;
      const double g201 = -0.306 - (em - 0.64) * 0.440;

      double g211, g310, g322, g410, g422, g520, g521, g532, g533;
      if (em <= 0.65) {
        g211 = 3.616 - 13.2470 * em + 16.2900 * emsq;
        g310 = -19.302 + 117.3900 * em - 228.4190 * emsq + 156.5910 * eoc;
        g322 = -18.9068 + 109.7927 * em - 214.6334 * emsq + 146.5816 * eoc;
        g410 = -41.122 + 242.6940 * em - 471.0940 * emsq + 313.9530 * eoc;
        g422 = -146.407 + 841.8800 * em - 1629.014 * emsq + 1083.4350 * eoc;
        g520 = -532.114 + 3017.977 * em - 5740.032 * emsq + 3708.2760 * eoc;
      } else {
        g211 = -72.099 + 331.819 * em - 508.738 * emsq + 266.724 * eoc;
        g310 = -346.844 + 1582.851 * em - 2415.925 * emsq + 1246.113 * eoc;
        g322 = -342.585 + 1554.908 * em - 2366.899 * emsq + 1215.972 * eoc;
        g410 = -1052.797 + 4758.686 * em - 7193.992 * emsq + 3651.957 * eoc;
        g422 = -3581.690 + 16178.110 * em - 24462.770 * emsq + 12422.520 * eoc;
        if (em > 0.715) {
          g520 = -5149.66 + 29936.92 * em - 54087.36 * emsq + 31324.56 * eoc;
        } else {
          g520 = 1464.74 - 4664.75 * em + 3763.64 * emsq;
        }
      }
      if (em < 0.7) {
        g533 = -919.22770 + 4988.6100 * em - 9064.7700 * emsq + 5542.21 * eoc;
        g521 = -822.71072 + 4568.6173 * em - 8491.4146 * emsq + 4649.04 * eoc;
        g532 = -853.66600 + 4690.2500 * em - 8624.7700 * emsq + 5341.4 * eoc;
      } else {
        g533 = -37995.780 + 161616.52 * em - 229838.20 * emsq + 109377.94 * eoc;
        g521 = -51752.104 + 218913.95 * em - 309468.16 * emsq + 146349.42 * eoc;
        g532 = -40023.880 + 170470.89 * em - 242699.48 * emsq + 115605.82 * eoc;
      }

      const double sini2 = s.sinim * s.sinim;
      const double f220 = 0.75 * (1.0 + 2.0 * s.cosim + cosisq);
      const double f221 = 1.5 * sini2;
      const double f321 =
          1.875 * s.sinim * (1.0 - 2.0 * s.cosim - 3.0 * cosisq);
      const double f322 =
          -1.875 * s.sinim * (1.0 + 2.0 * s.cosim - 3.0 * cosisq);
      const double f441 = 35.0 * sini2 * f220;
      const double f442 = 39.3750 * sini2 * sini2;
      const double f522 =
          9.84375 * s.sinim *
          (sini2 * (1.0 - 2.0 * s.cosim - 5.0 * cosisq) +
           0.33333333 * (-2.0 + 4.0 * s.cosim + 6.0 * cosisq));
      const double f523 =
          s.sinim *
          (4.92187512 * sini2 * (-2.0 - 4.0 * s.cosim + 10.0 * cosisq) +
           6.56250012 * (1.0 + 2.0 * s.cosim - 3.0 * cosisq));
      const double f542 =
          29.53125 * s.sinim *
          (2.0 - 8.0 * s.cosim +
           cosisq * (-12.0 + 8.0 * s.cosim + 10.0 * cosisq));
      const double f543 =
          29.53125 * s.sinim *
          (-2.0 - 8.0 * s.cosim +
           cosisq * (12.0 + 8.0 * s.cosim - 10.0 * cosisq));

      const double xno2 = nm_epoch * nm_epoch;
      const double ainv2 = aonv * aonv;
      double temp1 = 3.0 * xno2 * ainv2;
      double temp = temp1 * root22;
      deep.d2201 = temp * f220 * g201;
      deep.d2211 = temp * f221 * g211;
      temp1 *= aonv;
      temp = temp1 * root32;
      deep.d3210 = temp * f321 * g310;
      deep.d3222 = temp * f322 * g322;
      temp1 *= aonv;
      temp = 2.0 * temp1 * root44;
      deep.d4410 = temp * f441 * g410;
      deep.d4422 = temp * f442 * g422;
      temp1 *= aonv;
      temp = temp1 * root52;
      deep.d5220 = temp * f522 * g520;
      deep.d5232 = temp * f523 * g532;
      temp = 2.0 * temp1 * root54;
      deep.d5421 = temp * f542 * g521;
      deep.d5433 = temp * f543 * g533;
      deep.xlamo = std::fmod(
          common.mo + common.nodeo + common.nodeo - theta - theta, kTwoPi);
      deep.xfact = common.mdot + deep.dmdt +
                   2.0 * (common.nodedot + deep.dnodt - rptim) - common.no;
    }

    // -------------------- synchronous resonance terms ---------------------
    if (deep.irez == 1) {
      const double g200 = 1.0 + s.emsq * (-2.5 + 0.8125 * s.emsq);
      const double g310 = 1.0 + 2.0 * s.emsq;
      const double g300 = 1.0 + s.emsq * (-6.0 + 6.60937 * s.emsq);
      const double f220 = 0.75 * (1.0 + s.cosim) * (1.0 + s.cosim);
      const double f311 = 0.9375 * s.sinim * s.sinim * (1.0 + 3.0 * s.cosim) -
                          0.75 * (1.0 + s.cosim);
      double f330 = 1.0 + s.cosim;
      f330 = 1.875 * f330 * f330 * f330;
      deep.del1 = 3.0 * nm_epoch * nm_epoch * aonv * aonv;
      deep.del2 = 2.0 * deep.del1 * f220 * g200 * q22;
      deep.del3 = 3.0 * deep.del1 * f330 * g300 * q33 * aonv;
      deep.del1 = deep.del1 * f311 * g310 * q31 * aonv;
      deep.xlamo =
          std::fmod(common.mo + common.nodeo + common.argpo - theta, kTwoPi);
      deep.xfact = common.mdot + xpidot - rptim + deep.dmdt + deep.domdt +
                   deep.dnodt - common.no;
    }
  }
}

// ---------------------------------------------------------------------------
// dspace: deep-space secular effects and resonance integration at time t.
// ---------------------------------------------------------------------------
void dspace(const CommonConstants& common, const DeepSpaceConstants& deep,
            double t, double tc, ResonanceState& rs, double& em, double& argpm,
            double& inclm, double& mm, double& nodem, double& nm) noexcept {
  constexpr double fasx2 = 0.13130908;
  constexpr double fasx4 = 2.8843198;
  constexpr double fasx6 = 0.37448087;
  constexpr double g22 = 5.7686396;
  constexpr double g32 = 0.95240898;
  constexpr double g44 = 1.8014998;
  constexpr double g52 = 1.0508330;
  constexpr double g54 = 4.4108898;
  constexpr double rptim = 4.37526908801129966e-3;
  constexpr double stepp = 720.0;
  constexpr double stepn = -720.0;
  constexpr double step2 = 259200.0;

  // ----------- calculate deep space resonance effects -----------
  const double theta = std::fmod(common.gsto + tc * rptim, kTwoPi);
  em += deep.dedt * t;
  inclm += deep.didt * t;
  argpm += deep.domdt * t;
  nodem += deep.dnodt * t;
  mm += deep.dmdt * t;

  // - update resonances: numerical (euler-maclaurin) integration -
  double ft = 0.0;
  if (deep.irez != 0) {
    // The memo is valid only when it holds a prefix of this integration:
    // same sign and |atime| <= |t|.  Anything else — a cold state, a sign
    // crossing, or a cached time past the target — restarts from t = 0.
    // Because the recurrence below is a pure function of (atime, xli, xni)
    // and the init-once constants, resuming from a valid prefix reproduces
    // the restart-from-scratch values bit for bit; epoch visit order can
    // never leak into the output (DESIGN.md §16).
    if (rs.atime == 0.0 || t * rs.atime <= 0.0 ||
        std::fabs(t) < std::fabs(rs.atime)) {
      rs.atime = 0.0;
      rs.xni = common.no;
      rs.xli = deep.xlamo;
    }
    const double delt = (t > 0.0) ? stepp : stepn;

    double xndt = 0.0;
    double xldot = 0.0;
    double xnddt = 0.0;
    bool integrating = true;
    while (integrating) {
      // ------------------- dot terms calculated -------------
      if (deep.irez != 2) {
        // near-synchronous resonance terms
        xndt = deep.del1 * std::sin(rs.xli - fasx2) +
               deep.del2 * std::sin(2.0 * (rs.xli - fasx4)) +
               deep.del3 * std::sin(3.0 * (rs.xli - fasx6));
        xldot = rs.xni + deep.xfact;
        xnddt = deep.del1 * std::cos(rs.xli - fasx2) +
                2.0 * deep.del2 * std::cos(2.0 * (rs.xli - fasx4)) +
                3.0 * deep.del3 * std::cos(3.0 * (rs.xli - fasx6));
        xnddt *= xldot;
      } else {
        // near half-day resonance terms
        const double xomi = common.argpo + common.argpdot * rs.atime;
        const double x2omi = xomi + xomi;
        const double x2li = rs.xli + rs.xli;
        xndt = deep.d2201 * std::sin(x2omi + rs.xli - g22) +
               deep.d2211 * std::sin(rs.xli - g22) +
               deep.d3210 * std::sin(xomi + rs.xli - g32) +
               deep.d3222 * std::sin(-xomi + rs.xli - g32) +
               deep.d4410 * std::sin(x2omi + x2li - g44) +
               deep.d4422 * std::sin(x2li - g44) +
               deep.d5220 * std::sin(xomi + rs.xli - g52) +
               deep.d5232 * std::sin(-xomi + rs.xli - g52) +
               deep.d5421 * std::sin(xomi + x2li - g54) +
               deep.d5433 * std::sin(-xomi + x2li - g54);
        xldot = rs.xni + deep.xfact;
        xnddt = deep.d2201 * std::cos(x2omi + rs.xli - g22) +
                deep.d2211 * std::cos(rs.xli - g22) +
                deep.d3210 * std::cos(xomi + rs.xli - g32) +
                deep.d3222 * std::cos(-xomi + rs.xli - g32) +
                deep.d5220 * std::cos(xomi + rs.xli - g52) +
                deep.d5232 * std::cos(-xomi + rs.xli - g52) +
                2.0 * (deep.d4410 * std::cos(x2omi + x2li - g44) +
                       deep.d4422 * std::cos(x2li - g44) +
                       deep.d5421 * std::cos(xomi + x2li - g54) +
                       deep.d5433 * std::cos(-xomi + x2li - g54));
        xnddt *= xldot;
      }

      // ----------------------- integrator -------------------
      if (std::fabs(t - rs.atime) >= stepp) {
        integrating = true;
      } else {
        ft = t - rs.atime;
        integrating = false;
      }
      if (integrating) {
        rs.xli += xldot * delt + xndt * step2;
        rs.xni += xndt * delt + xnddt * step2;
        rs.atime += delt;
      }
    }

    nm = rs.xni + xndt * ft + xnddt * ft * ft * 0.5;
    const double xl = rs.xli + xldot * ft + xndt * ft * ft * 0.5;
    double dndt = 0.0;
    if (deep.irez != 1) {
      mm = xl - 2.0 * nodem + 2.0 * theta;
      dndt = nm - common.no;
    } else {
      mm = xl - nodem - argpm + theta;
      dndt = nm - common.no;
    }
    nm = common.no + dndt;
  }
}

}  // namespace

std::string to_string(Sgp4Status status) {
  switch (status) {
    case Sgp4Status::kOk:
      return "ok";
    case Sgp4Status::kEccentricityOutOfRange:
      return "mean eccentricity out of range";
    case Sgp4Status::kMeanMotionNonPositive:
      return "mean motion non-positive";
    case Sgp4Status::kPerturbedEccentricityOutOfRange:
      return "perturbed eccentricity out of range";
    case Sgp4Status::kSemiLatusRectumNegative:
      return "semi-latus rectum negative";
    case Sgp4Status::kDecayed:
      return "satellite decayed (radius below Earth surface)";
    case Sgp4Status::kKeplerNotConverged:
      return "Kepler's equation did not converge (near-parabolic elements)";
  }
  return "unknown status";
}

namespace detail {

Sgp4Status solve_kepler(double u, double axnl, double aynl, double& eo1,
                        double& sineo1, double& coseo1) noexcept {
  eo1 = u;
  double tem5 = 9999.9;
  sineo1 = 0.0;
  coseo1 = 0.0;
  // Newton iteration with the reference's 0.95-rad step clamp and 10-step
  // bound.  For every orbit the theory is valid for, it converges in a
  // handful of steps; near-parabolic elements (|(axnl,aynl)| -> 1) can
  // cycle on the clamp forever, so the bound plus the residual check below
  // turn "loop luck" into a defined status.
  int ktr = 1;
  while (std::fabs(tem5) >= 1.0e-12 && ktr <= 10) {
    sineo1 = std::sin(eo1);
    coseo1 = std::cos(eo1);
    tem5 = 1.0 - coseo1 * axnl - sineo1 * aynl;
    tem5 = (u - aynl * coseo1 + axnl * sineo1 - eo1) / tem5;
    if (std::fabs(tem5) >= 0.95) tem5 = tem5 > 0.0 ? 0.95 : -0.95;
    eo1 += tem5;
    ++ktr;
  }
  // Anything still correcting by >= 1e-8 rad after the bound is diverging,
  // not refining: report it instead of emitting a garbage state.
  if (std::fabs(tem5) >= 1.0e-8) return Sgp4Status::kKeplerNotConverged;
  return Sgp4Status::kOk;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// propagate: the propagation kernel (Vallado's sgp4()).
// ---------------------------------------------------------------------------
Sgp4Status propagate(const CommonConstants& common,
                     const NearSpaceConstants& near_space,
                     const DeepSpaceConstants& deep, double tsince_minutes,
                     orbit::StateVector& out, ResonanceState* resume) noexcept {
  const double temp4 = 1.5e-12;
  const double xke = common.gravity.xke;
  const double j2 = common.gravity.j2;
  const double j3oj2 = common.gravity.j3oj2;
  const double radiusearthkm = common.gravity.radius_earth_km;
  const double vkmpersec = radiusearthkm * xke / 60.0;

  const double t = tsince_minutes;

  // ------- update for secular gravity and atmospheric drag -----
  const double xmdf = common.mo + common.mdot * t;
  const double argpdf = common.argpo + common.argpdot * t;
  const double nodedf = common.nodeo + common.nodedot * t;
  double argpm = argpdf;
  double mm = xmdf;
  const double t2 = t * t;
  double nodem = nodedf + common.nodecf * t2;
  double tempa = 1.0 - common.cc1 * t;
  double tempe = common.bstar * common.cc4 * t;
  double templ = common.t2cof * t2;

  if (!common.simple_drag) {
    const double delomg = common.omgcof * t;
    const double delmtemp = 1.0 + common.eta * std::cos(xmdf);
    const double delm =
        common.xmcof * (delmtemp * delmtemp * delmtemp - common.delmo);
    const double temp = delomg + delm;
    mm = xmdf + temp;
    argpm = argpdf - temp;
    const double t3 = t2 * t;
    const double t4 = t3 * t;
    tempa = tempa - near_space.d2 * t2 - near_space.d3 * t3 - near_space.d4 * t4;
    tempe = tempe + common.bstar * common.cc5 * (std::sin(mm) - common.sinmao);
    templ = templ + near_space.t3cof * t3 +
            t4 * (near_space.t4cof + t * near_space.t5cof);
  }

  double nm = common.no;
  double em = common.ecco;
  double inclm = common.inclo;
  if (common.deep_space) {
    ResonanceState local;  // cold start when the caller keeps no memo
    ResonanceState& rs = resume != nullptr ? *resume : local;
    const double tc = t;
    dspace(common, deep, t, tc, rs, em, argpm, inclm, mm, nodem, nm);
  }

  if (nm <= 0.0) return Sgp4Status::kMeanMotionNonPositive;

  const double am = std::pow(xke / nm, kX2o3) * tempa * tempa;
  nm = xke / std::pow(am, 1.5);
  em -= tempe;

  if (em >= 1.0 || em < -0.001) return Sgp4Status::kEccentricityOutOfRange;
  if (em < 1.0e-6) em = 1.0e-6;

  mm += common.no * templ;
  double xlm = mm + argpm + nodem;

  nodem = std::fmod(nodem, kTwoPi);
  if (nodem < 0.0) nodem += kTwoPi;
  argpm = std::fmod(argpm, kTwoPi);
  xlm = std::fmod(xlm, kTwoPi);
  mm = std::fmod(xlm - argpm - nodem, kTwoPi);

  // ----------------- compute extra mean quantities -------------
  const double sinim = std::sin(inclm);
  const double cosim = std::cos(inclm);

  // -------------------- add lunar-solar periodics --------------
  double ep = em;
  double xincp = inclm;
  double argpp = argpm;
  double nodep = nodem;
  double mp = mm;
  double sinip = sinim;
  double cosip = cosim;
  double aycof = common.aycof;
  double xlcof = common.xlcof;
  double con41 = common.con41;
  double x1mth2 = common.x1mth2;
  double x7thm1 = common.x7thm1;

  if (common.deep_space) {
    dpper(deep, t, /*init_phase=*/false, ep, xincp, nodep, argpp, mp);
    if (xincp < 0.0) {
      xincp = -xincp;
      nodep += kPi;
      argpp -= kPi;
    }
    if (ep < 0.0 || ep > 1.0) {
      return Sgp4Status::kPerturbedEccentricityOutOfRange;
    }
    // ------------ update the long-period coefficients -----------
    sinip = std::sin(xincp);
    cosip = std::cos(xincp);
    aycof = -0.5 * j3oj2 * sinip;
    if (std::fabs(cosip + 1.0) > 1.5e-12) {
      xlcof = -0.25 * j3oj2 * sinip * (3.0 + 5.0 * cosip) / (1.0 + cosip);
    } else {
      xlcof = -0.25 * j3oj2 * sinip * (3.0 + 5.0 * cosip) / temp4;
    }
  }

  // --------------------- long period periodics -----------------
  const double axnl = ep * std::cos(argpp);
  double temp = 1.0 / (am * (1.0 - ep * ep));
  const double aynl = ep * std::sin(argpp) + temp * aycof;
  const double xl = mp + argpp + nodep + temp * xlcof * axnl;

  // ------------------------ solve kepler's equation ------------
  const double u = std::fmod(xl - nodep, kTwoPi);
  double eo1 = 0.0;
  double sineo1 = 0.0;
  double coseo1 = 0.0;
  const Sgp4Status kepler = detail::solve_kepler(u, axnl, aynl, eo1, sineo1,
                                                 coseo1);
  if (kepler != Sgp4Status::kOk) return kepler;

  // ------------- short period preliminary quantities -----------
  const double ecose = axnl * coseo1 + aynl * sineo1;
  const double esine = axnl * sineo1 - aynl * coseo1;
  const double el2 = axnl * axnl + aynl * aynl;
  const double pl = am * (1.0 - el2);
  if (pl < 0.0) return Sgp4Status::kSemiLatusRectumNegative;

  const double rl = am * (1.0 - ecose);
  const double rdotl = std::sqrt(am) * esine / rl;
  const double rvdotl = std::sqrt(pl) / rl;
  const double betal = std::sqrt(1.0 - el2);
  temp = esine / (1.0 + betal);
  const double sinu = am / rl * (sineo1 - aynl - axnl * temp);
  const double cosu = am / rl * (coseo1 - axnl + aynl * temp);
  double su = std::atan2(sinu, cosu);
  const double sin2u = (cosu + cosu) * sinu;
  const double cos2u = 1.0 - 2.0 * sinu * sinu;
  temp = 1.0 / pl;
  const double temp1 = 0.5 * j2 * temp;
  const double temp2 = temp1 * temp;

  // -------------- update for short period periodics ------------
  if (common.deep_space) {
    const double cosisq = cosip * cosip;
    con41 = 3.0 * cosisq - 1.0;
    x1mth2 = 1.0 - cosisq;
    x7thm1 = 7.0 * cosisq - 1.0;
  }
  const double mrt =
      rl * (1.0 - 1.5 * temp2 * betal * con41) + 0.5 * temp1 * x1mth2 * cos2u;
  su -= 0.25 * temp2 * x7thm1 * sin2u;
  const double xnode = nodep + 1.5 * temp2 * cosip * sin2u;
  const double xinc = xincp + 1.5 * temp2 * cosip * sinip * cos2u;
  const double mvt = rdotl - nm * temp1 * x1mth2 * sin2u / xke;
  const double rvdot =
      rvdotl + nm * temp1 * (x1mth2 * cos2u + 1.5 * con41) / xke;

  // --------------------- orientation vectors -------------------
  const double sinsu = std::sin(su);
  const double cossu = std::cos(su);
  const double snod = std::sin(xnode);
  const double cnod = std::cos(xnode);
  const double sini = std::sin(xinc);
  const double cosi = std::cos(xinc);
  const double xmx = -snod * cosi;
  const double xmy = cnod * cosi;
  const double ux = xmx * sinsu + cnod * cossu;
  const double uy = xmy * sinsu + snod * cossu;
  const double uz = sini * sinsu;
  const double vx = xmx * cossu - cnod * sinsu;
  const double vy = xmy * cossu - snod * sinsu;
  const double vz = sini * cossu;

  // ------------------- position and velocity (km, km/s) --------
  out.position_km = {mrt * ux * radiusearthkm, mrt * uy * radiusearthkm,
                     mrt * uz * radiusearthkm};
  out.velocity_kms = {(mvt * ux + rvdot * vx) * vkmpersec,
                      (mvt * uy + rvdot * vy) * vkmpersec,
                      (mvt * uz + rvdot * vz) * vkmpersec};

  if (mrt < 1.0) return Sgp4Status::kDecayed;
  return Sgp4Status::kOk;
}

Sgp4Status propagate(const Sgp4Constants& constants, double tsince_minutes,
                     orbit::StateVector& out, ResonanceState* resume) noexcept {
  return propagate(constants.common, constants.near_space, constants.deep,
                   tsince_minutes, out, resume);
}

// ---------------------------------------------------------------------------
// init_constants: the element recovery (Vallado's sgp4init).
// ---------------------------------------------------------------------------
Sgp4Constants init_constants(const tle::Tle& tle,
                             const orbit::GravityModel& gravity) {
  tle.validate();

  Sgp4Constants k;
  CommonConstants& c = k.common;
  c.gravity = gravity;
  c.catalog_number = tle.catalog_number;
  c.epoch_jd = tle.epoch_jd;
  c.epoch1950 = c.epoch_jd - kJd1950;

  c.bstar = tle.bstar;
  c.ecco = tle.eccentricity;
  c.inclo = units::deg2rad(tle.inclination_deg);
  c.nodeo = units::deg2rad(tle.raan_deg);
  c.argpo = units::deg2rad(tle.arg_perigee_deg);
  c.mo = units::deg2rad(tle.mean_anomaly_deg);
  c.no = tle.mean_motion_revday * kTwoPi / units::kMinutesPerDay;  // rad/min

  const double j2 = gravity.j2;
  const double j4 = gravity.j4;
  const double j3oj2 = gravity.j3oj2;
  const double xke = gravity.xke;
  const double radiusearthkm = gravity.radius_earth_km;
  const double temp4 = 1.5e-12;

  const double ss = 78.0 / radiusearthkm + 1.0;
  const double qzms2t = std::pow((120.0 - 78.0) / radiusearthkm, 4.0);

  // ---------------------- initl: recover original mean motion -------------
  const double eccsq = c.ecco * c.ecco;
  const double omeosq = 1.0 - eccsq;
  const double rteosq = std::sqrt(omeosq);
  const double cosio = std::cos(c.inclo);
  const double cosio2 = cosio * cosio;

  const double ak = std::pow(xke / c.no, kX2o3);
  const double d1 = 0.75 * j2 * (3.0 * cosio2 - 1.0) / (rteosq * omeosq);
  double del = d1 / (ak * ak);
  const double adel =
      ak * (1.0 - del * del - del * (1.0 / 3.0 + 134.0 * del * del / 81.0));
  del = d1 / (adel * adel);
  c.no = c.no / (1.0 + del);  // un-Kozai the mean motion

  const double ao = std::pow(xke / c.no, kX2o3);
  const double sinio = std::sin(c.inclo);
  const double po = ao * omeosq;
  const double con42 = 1.0 - 5.0 * cosio2;
  c.con41 = -con42 - cosio2 - cosio2;
  const double posq = po * po;
  const double rp = ao * (1.0 - c.ecco);
  c.gsto = timeutil::gmst_radians(c.epoch_jd);
  c.recovered_a_earth_radii = ao;

  if (rp < 1.0) {
    throw PropagationError("element set has epoch perigee below Earth surface"
                           " (catalog " + std::to_string(c.catalog_number) +
                           ")");
  }

  // ------------------------- near-earth constants -------------------------
  c.simple_drag = rp < 220.0 / radiusearthkm + 1.0;
  double sfour = ss;
  double qzms24 = qzms2t;
  const double perige = (rp - 1.0) * radiusearthkm;
  if (perige < 156.0) {
    sfour = perige - 78.0;
    if (perige < 98.0) sfour = 20.0;
    qzms24 = std::pow((120.0 - sfour) / radiusearthkm, 4.0);
    sfour = sfour / radiusearthkm + 1.0;
  }
  const double pinvsq = 1.0 / posq;

  const double tsi = 1.0 / (ao - sfour);
  c.eta = ao * c.ecco * tsi;
  const double etasq = c.eta * c.eta;
  const double eeta = c.ecco * c.eta;
  const double psisq = std::fabs(1.0 - etasq);
  const double coef = qzms24 * std::pow(tsi, 4.0);
  const double coef1 = coef / std::pow(psisq, 3.5);
  const double cc2 =
      coef1 * c.no *
      (ao * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq)) +
       0.375 * j2 * tsi / psisq * c.con41 *
           (8.0 + 3.0 * etasq * (8.0 + etasq)));
  c.cc1 = c.bstar * cc2;
  double cc3 = 0.0;
  if (c.ecco > 1.0e-4) cc3 = -2.0 * coef * tsi * j3oj2 * c.no * sinio / c.ecco;
  c.x1mth2 = 1.0 - cosio2;
  c.cc4 = 2.0 * c.no * coef1 * ao * omeosq *
          (c.eta * (2.0 + 0.5 * etasq) + c.ecco * (0.5 + 2.0 * etasq) -
           j2 * tsi / (ao * psisq) *
               (-3.0 * c.con41 * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta)) +
                0.75 * c.x1mth2 * (2.0 * etasq - eeta * (1.0 + etasq)) *
                    std::cos(2.0 * c.argpo)));
  c.cc5 = 2.0 * coef1 * ao * omeosq *
          (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);

  const double cosio4 = cosio2 * cosio2;
  const double temp1 = 1.5 * j2 * pinvsq * c.no;
  const double temp2 = 0.5 * temp1 * j2 * pinvsq;
  const double temp3 = -0.46875 * j4 * pinvsq * pinvsq * c.no;
  c.mdot = c.no + 0.5 * temp1 * rteosq * c.con41 +
           0.0625 * temp2 * rteosq * (13.0 - 78.0 * cosio2 + 137.0 * cosio4);
  c.argpdot = -0.5 * temp1 * con42 +
              0.0625 * temp2 * (7.0 - 114.0 * cosio2 + 395.0 * cosio4) +
              temp3 * (3.0 - 36.0 * cosio2 + 49.0 * cosio4);
  const double xhdot1 = -temp1 * cosio;
  c.nodedot = xhdot1 + (0.5 * temp2 * (4.0 - 19.0 * cosio2) +
                        2.0 * temp3 * (3.0 - 7.0 * cosio2)) *
                           cosio;
  const double xpidot = c.argpdot + c.nodedot;
  c.omgcof = c.bstar * cc3 * std::cos(c.argpo);
  c.xmcof = 0.0;
  if (c.ecco > 1.0e-4) c.xmcof = -kX2o3 * coef * c.bstar / eeta;
  c.nodecf = 3.5 * omeosq * xhdot1 * c.cc1;
  c.t2cof = 1.5 * c.cc1;
  if (std::fabs(cosio + 1.0) > 1.5e-12) {
    c.xlcof = -0.25 * j3oj2 * sinio * (3.0 + 5.0 * cosio) / (1.0 + cosio);
  } else {
    c.xlcof = -0.25 * j3oj2 * sinio * (3.0 + 5.0 * cosio) / temp4;
  }
  c.aycof = -0.5 * j3oj2 * sinio;
  c.delmo = std::pow(1.0 + c.eta * std::cos(c.mo), 3.0);
  c.sinmao = std::sin(c.mo);
  c.x7thm1 = 7.0 * cosio2 - 1.0;

  // --------------------- deep space initialization ------------------------
  if (kTwoPi / c.no >= 225.0) {
    c.deep_space = true;
    c.simple_drag = true;
    const double tc = 0.0;
    const double inclm = c.inclo;

    DscomScratch scratch;
    dscom(c.epoch1950, c.ecco, c.argpo, tc, c.inclo, c.nodeo, c.no, scratch,
          k.deep);
    // The init-phase dpper call applies nothing (reference behaviour); the
    // stored long-period offsets peo..pho stay zero.
    double ep = c.ecco;
    double inclp = c.inclo;
    double nodep = c.nodeo;
    double argpp = c.argpo;
    double mp = c.mo;
    dpper(k.deep, 0.0, /*init_phase=*/true, ep, inclp, nodep, argpp, mp);

    dsinit(scratch, tc, xpidot, eccsq, inclm, c, k.deep);
  }

  // ------------------------ higher-order drag terms -----------------------
  if (!c.simple_drag) {
    NearSpaceConstants& n = k.near_space;
    const double cc1sq = c.cc1 * c.cc1;
    n.d2 = 4.0 * ao * tsi * cc1sq;
    const double temp = n.d2 * tsi * c.cc1 / 3.0;
    n.d3 = (17.0 * ao + sfour) * temp;
    n.d4 = 0.5 * temp * ao * tsi * (221.0 * ao + 31.0 * sfour) * c.cc1;
    n.t3cof = n.d2 + 2.0 * cc1sq;
    n.t4cof = 0.25 * (3.0 * n.d3 + c.cc1 * (12.0 * n.d2 + 10.0 * cc1sq));
    n.t5cof = 0.2 * (3.0 * n.d4 + 12.0 * c.cc1 * n.d3 + 6.0 * n.d2 * n.d2 +
                     15.0 * cc1sq * (2.0 * n.d2 + cc1sq));
  }

  // Exercise the model once at epoch so bad element sets fail fast.
  orbit::StateVector probe;
  const Sgp4Status status = propagate(k, 0.0, probe);
  if (status != Sgp4Status::kOk) {
    throw PropagationError("sgp4 init failed for catalog " +
                           std::to_string(c.catalog_number) + ": " +
                           to_string(status));
  }
  return k;
}

// ---------------------------------------------------------------------------
// Sgp4Propagator: thin owner of one init-once constant set.
// ---------------------------------------------------------------------------
Sgp4Propagator::Sgp4Propagator(const tle::Tle& tle,
                               const orbit::GravityModel& gravity)
    : k_(init_constants(tle, gravity)) {}

double Sgp4Propagator::recovered_semi_major_axis_km() const noexcept {
  return k_.common.recovered_a_earth_radii * k_.common.gravity.radius_earth_km;
}

double Sgp4Propagator::recovered_altitude_km() const noexcept {
  return recovered_semi_major_axis_km() - k_.common.gravity.radius_earth_km;
}

orbit::StateVector Sgp4Propagator::propagate_minutes(double tsince_minutes) const {
  orbit::StateVector out;
  const Sgp4Status status = try_propagate_minutes(tsince_minutes, out);
  if (status != Sgp4Status::kOk) {
    throw PropagationError("sgp4 failed for catalog " +
                           std::to_string(k_.common.catalog_number) +
                           " at tsince " + std::to_string(tsince_minutes) +
                           " min: " + to_string(status));
  }
  return out;
}

orbit::StateVector Sgp4Propagator::propagate_jd(double jd) const {
  return propagate_minutes((jd - k_.common.epoch_jd) * units::kMinutesPerDay);
}

Sgp4Status Sgp4Propagator::try_propagate_minutes(
    double tsince_minutes, orbit::StateVector& out,
    ResonanceState* resume) const noexcept {
  return propagate(k_, tsince_minutes, out, resume);
}

}  // namespace cosmicdance::sgp4
