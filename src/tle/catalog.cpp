#include "tle/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string_view>
#include <utility>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/error.hpp"
#include "exec/parallel_for.hpp"
#include "exec/thread_pool.hpp"
#include "io/file.hpp"
#include "obs/obs.hpp"

namespace cosmicdance::tle {
namespace {

constexpr const char* kStage = "tle";

// Two records of one satellite closer than this are duplicates (~1 second).
constexpr double kDuplicateEpochDays = 1.0 / 86400.0;

bool looks_like_tle_line(std::string_view line, char number) {
  return line.size() == 69 && line[0] == number && line[1] == ' ';
}

#if defined(__SSE2__)
/// True when any of the 69 bytes at `p` is a newline.  Five overlapping
/// 16-byte compares (offsets 0/16/32/48/53) cover the range exactly; the
/// scan's fast path uses this to take a standard-width TLE line without a
/// memchr call per line.
inline bool has_newline_69(const char* p) {
  const __m128i nl = _mm_set1_epi8('\n');
  const auto load = [](const char* q) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(q));
  };
  __m128i hit = _mm_cmpeq_epi8(load(p), nl);
  hit = _mm_or_si128(hit, _mm_cmpeq_epi8(load(p + 16), nl));
  hit = _mm_or_si128(hit, _mm_cmpeq_epi8(load(p + 32), nl));
  hit = _mm_or_si128(hit, _mm_cmpeq_epi8(load(p + 48), nl));
  hit = _mm_or_si128(hit, _mm_cmpeq_epi8(load(p + 53), nl));
  return _mm_movemask_epi8(hit) != 0;
}
#endif

// A paired two-line record located in its source, plus structural rejects
// found while pairing.  The lines are views into the caller's text (a file
// mapping on the fast path) — nothing is copied until a record is rejected
// and its snippet materialised.
struct RawRecord {
  std::string_view line1;
  std::string_view line2;
  std::size_t line_number = 0;  // 1-based line number of line1
};

// A pairing failure found in pass 1.  Deferred (not reported immediately)
// so pass 3 can interleave it with parse failures in file order: strict
// mode must throw on the *first* bad record in the file, not on the first
// structural one.
struct StructuralReject {
  std::size_t line_number = 0;
  ErrorCategory category = ErrorCategory::kSyntax;
  std::string message;
  std::string snippet;
};

// Result of parsing one RawRecord: either a TLE or a categorised failure.
struct ParsedRecord {
  std::optional<Tle> tle;
  ErrorCategory category = ErrorCategory::kSyntax;
  std::string message;
};

ParsedRecord parse_record(const RawRecord& record) {
  ParsedRecord parsed;
  try {
    parsed.tle = parse_tle(record.line1, record.line2);
  } catch (const ParseError& error) {
    parsed.category = error.category();
    parsed.message = error.what();
  } catch (const ValidationError& error) {
    parsed.category = ErrorCategory::kRange;
    parsed.message = error.what();
  }
  return parsed;
}

// ---- sharded pass-1 scan ----------------------------------------------------
//
// The pairing scan is almost embarrassingly parallel: every line either
// starts a record (a line 1), completes one (a line 2), or clears the
// pairing state (anything else).  The only cross-shard coupling is the
// pending line 1 a shard may carry into its successor — and that state can
// influence the handling of exactly one line, the successor's *first*
// non-empty one.  Each shard is therefore scanned independently assuming no
// carried state, remembering how its first non-empty line was classified;
// a serial stitch afterwards replays the carried state across the shard
// edges and patches that one line's outcome.

// How a shard's first non-empty line would be handled by the serial scan —
// the only decision that depends on the pairing state carried in.
enum class FirstLine : std::uint8_t {
  kNone,        // shard has no non-empty lines: carried state passes through
  kLine1,       // a well-formed line 1: overwrites any carried pending
  kLine2,       // a well-formed line 2: pairs with a carried pending line 1
  kMalformed2,  // "2 "-lead line of the wrong length: rejects a carried pending
  kOther,       // a name line: silently clears any carried pending
};

struct ShardScan {
  std::vector<RawRecord> records;            // line numbers local to the shard
  std::vector<StructuralReject> structural;  // ditto, ascending
  std::size_t lines = 0;              // count of lines starting in this shard
  std::string_view pending_line1;     // unpaired line 1 left at shard end
  std::size_t pending_line = 0;       // its local 1-based line number
  std::string_view first_view;        // the first non-empty line
  std::size_t first_line = 0;         // its local 1-based line number
  FirstLine first = FirstLine::kNone;
};

// Scan one shard exactly like the serial pass-1 loop, with local line
// numbers and no pairing state carried in.  When the first non-empty line
// is a lone line 2 it is quarantined here (structural.front()) just as a
// from-zero scan would; the stitch converts that reject into a paired
// record when the previous shard carries a pending line 1 across the edge.
ShardScan scan_shard(std::string_view text) {
  ShardScan scan;
  scan.records.reserve(text.size() / 140 + 1);
  for (std::size_t pos = 0; pos < text.size();) {
    std::size_t eol;
#if defined(__SSE2__)
    // Standard-width fast path: a 69-char line ends exactly at pos+69, and
    // the vector check proves no earlier newline, so the general search is
    // skipped for the overwhelmingly common case.
    if (pos + 69 < text.size() && text[pos + 69] == '\n' &&
        !has_newline_69(text.data() + pos)) {
      eol = pos + 69;
    } else
#endif
    {
      eol = text.find('\n', pos);
    }
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    ++scan.lines;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    const bool is_first = scan.first == FirstLine::kNone;
    if (is_first) {
      scan.first_view = line;
      scan.first_line = scan.lines;
      scan.first = FirstLine::kOther;
    }
    if (looks_like_tle_line(line, '1')) {
      if (is_first) scan.first = FirstLine::kLine1;
      scan.pending_line1 = line;
      scan.pending_line = scan.lines;
      continue;
    }
    if (looks_like_tle_line(line, '2')) {
      if (is_first) scan.first = FirstLine::kLine2;
      if (scan.pending_line1.empty()) {
        scan.structural.push_back({scan.lines, ErrorCategory::kStructure,
                                   "TLE line 2 without preceding line 1",
                                   std::string(line)});
        continue;
      }
      scan.records.push_back(
          RawRecord{scan.pending_line1, line, scan.pending_line});
      scan.pending_line1 = {};
      continue;
    }
    // With a line 1 pending, the next line must be its line 2: a "2 "-lead
    // line of the wrong length is a truncated/corrupted record, not a
    // satellite name (name lines only precede line 1 in 3-line format).
    if (line.size() >= 2 && line[0] == '2' && line[1] == ' ') {
      if (is_first) scan.first = FirstLine::kMalformed2;
      if (!scan.pending_line1.empty()) {
        scan.structural.push_back({scan.lines, ErrorCategory::kSyntax,
                                   "malformed TLE line 2 (wrong length)",
                                   std::string(line)});
        scan.pending_line1 = {};
        continue;
      }
    }
    // Anything else is a satellite-name line (3-line format); ignore.
    scan.pending_line1 = {};
  }
  return scan;
}

// Shard byte boundaries: even splits advanced to the next line start, so
// every line lives wholly inside one shard.  Boundaries are a pure function
// of (text size, shard count), never of thread count or scheduling.
std::vector<std::size_t> shard_starts(std::string_view text,
                                      std::size_t shard_count) {
  std::vector<std::size_t> starts;
  starts.reserve(shard_count);
  starts.push_back(0);
  for (std::size_t i = 1; i < shard_count; ++i) {
    const std::size_t raw = text.size() * i / shard_count;
    const std::size_t newline = text.find('\n', raw);
    std::size_t start =
        newline == std::string_view::npos ? text.size() : newline + 1;
    if (start < starts.back()) start = starts.back();
    starts.push_back(start);
  }
  return starts;
}

std::size_t resolve_shard_count(std::string_view text,
                                const IngestOptions& options) {
  if (options.num_shards > 0) {
    return static_cast<std::size_t>(options.num_shards);
  }
  const std::size_t workers = exec::resolve_thread_count(options.num_threads);
  if (workers <= 1) return 1;
  // A few shards per worker evens out skew from uneven reject density; the
  // floor keeps tiny inputs from paying stitch overhead per few lines.
  constexpr std::size_t kMinShardBytes = 64 * 1024;
  const std::size_t by_size = text.size() / kMinShardBytes + 1;
  return std::min(workers * 4, by_size);
}

}  // namespace

bool append_boundary_clean(std::string_view text) {
  // The pairing scan's pending-line-1 state at end of input depends only
  // on the last non-empty line: every non-empty line either sets it (a
  // line 1) or clears it (a line 2, a malformed "2 "-lead line, or a name
  // line), and blank lines leave it untouched.  Walk backwards to that
  // line instead of replaying the whole scan.
  std::size_t end = text.size();
  while (end > 0) {
    const std::size_t newline = text.rfind('\n', end - 1);
    const std::size_t line_start =
        newline == std::string_view::npos ? 0 : newline + 1;
    std::string_view line = text.substr(line_start, end - line_start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) return !looks_like_tle_line(line, '1');
    if (line_start == 0) break;
    end = line_start - 1;
  }
  return true;  // empty (or all-blank) text has nothing pending
}

bool TleCatalog::insert_record(std::vector<Tle>& history, const Tle& tle) {
  // Append fast path: real feeds arrive in epoch order per satellite, so
  // almost every record lands past the end of its (sorted) history.  The
  // conditions are exactly the general path's for an end insertion — newer
  // than everything present and outside the back record's duplicate window.
  if (history.empty() ||
      (tle.epoch_jd > history.back().epoch_jd &&
       !(std::fabs(history.back().epoch_jd - tle.epoch_jd) <
         kDuplicateEpochDays))) {
    history.push_back(tle);
    ++record_count_;
    return true;
  }
  const auto insert_at = std::lower_bound(
      history.begin(), history.end(), tle.epoch_jd,
      [](const Tle& existing, double epoch) { return existing.epoch_jd < epoch; });
  if (insert_at != history.end() &&
      std::fabs(insert_at->epoch_jd - tle.epoch_jd) < kDuplicateEpochDays) {
    return false;
  }
  if (insert_at != history.begin() &&
      std::fabs((insert_at - 1)->epoch_jd - tle.epoch_jd) < kDuplicateEpochDays) {
    return false;
  }
  history.insert(insert_at, tle);
  ++record_count_;
  return true;
}

bool TleCatalog::add(const Tle& tle) {
  tle.validate();
  return insert_record(tles_[tle.catalog_number], tle);
}

void TleCatalog::adopt_history(int catalog_number, std::vector<Tle> history) {
  if (history.empty()) {
    throw ValidationError("adopt_history: empty history");
  }
  double prev_epoch = -1e18;
  for (const Tle& tle : history) {
    tle.validate();
    if (tle.catalog_number != catalog_number) {
      throw ValidationError("adopt_history: record for satellite " +
                            std::to_string(tle.catalog_number) +
                            " in history of " + std::to_string(catalog_number));
    }
    if (!(tle.epoch_jd - prev_epoch >= kDuplicateEpochDays)) {
      throw ValidationError(
          "adopt_history: history not epoch-sorted with duplicates dropped "
          "for satellite " +
          std::to_string(catalog_number));
    }
    prev_epoch = tle.epoch_jd;
  }
  const std::size_t count = history.size();
  const auto [it, inserted] =
      tles_.emplace(catalog_number, std::move(history));
  if (!inserted) {
    throw ValidationError("adopt_history: satellite " +
                          std::to_string(catalog_number) + " already present");
  }
  (void)it;
  record_count_ += count;
}

std::size_t TleCatalog::add_from_text(std::string_view text) {
  return add_from_text(text, IngestOptions{});
}

std::size_t TleCatalog::add_from_text(std::string_view text,
                                      const IngestOptions& options) {
  const obs::ScopedPhase obs_phase(options.metrics, "tle.add_from_text");
  const std::string source = options.source.empty() ? "<text>" : options.source;
  // Without a caller-supplied log, a local strict one reproduces the
  // historical throw-on-first-error behaviour (with located messages).
  diag::ParseLog fallback;
  diag::ParseLog& log = options.log != nullptr ? *options.log : fallback;

  // Pass 1 (parallel): split the text into shards at line starts, scan each
  // independently, then stitch the shard edges serially.  Shard boundaries
  // are a pure function of (text size, shard count), each shard's scan sees
  // a fixed byte range, and the stitch is serial in shard order — so the
  // paired records and structural rejects are bit-identical to one serial
  // scan at any shard or thread count (tests/ingestion_fuzz_test.cpp drives
  // the differential across both axes).
  const std::size_t shard_count = resolve_shard_count(text, options);
  const std::vector<std::size_t> starts = shard_starts(text, shard_count);
  std::vector<ShardScan> scans(shard_count);
  exec::parallel_for(
      shard_count, options.num_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t stop =
              i + 1 < shard_count ? starts[i + 1] : text.size();
          scans[i] = scan_shard(text.substr(starts[i], stop - starts[i]));
        }
      },
      options.metrics);
  if (options.metrics != nullptr) {
    // Shard count tracks the worker count, so it is a scheduling counter —
    // outside the work-counter determinism contract (DESIGN.md §11).
    options.metrics->sched_counter("tle.scan_shards").add(shard_count);
  }

  // Stitch (serial, shard order): renumber each shard's lines into global
  // coordinates and replay the carried pairing state across shard edges.
  // Only a shard's first non-empty line can be affected by carried state:
  // a carried line 1 pairs with a leading line 2 (replacing the shard's
  // local "line 2 without preceding line 1" quarantine, which is
  // structural.front() by construction), is rejected by a leading
  // malformed "2 "-lead line, or is silently dropped — exactly the serial
  // scan's behaviour at that line.
  std::vector<RawRecord> records = std::move(scans.front().records);
  std::vector<StructuralReject> structural = std::move(scans.front().structural);
  {
    std::size_t total_records = records.size();
    std::size_t total_structural = structural.size();
    for (std::size_t i = 1; i < shard_count; ++i) {
      total_records += scans[i].records.size() + 1;
      total_structural += scans[i].structural.size() + 1;
    }
    records.reserve(total_records);
    structural.reserve(total_structural);
  }
  const std::size_t base_line = options.first_line - 1;
  if (base_line != 0) {
    for (RawRecord& record : records) record.line_number += base_line;
    for (StructuralReject& reject : structural) reject.line_number += base_line;
  }
  std::string_view pending_line1 = scans.front().pending_line1;
  std::size_t pending_line_number = base_line + scans.front().pending_line;
  std::size_t line_number = base_line + scans.front().lines;
  for (std::size_t i = 1; i < shard_count; ++i) {
    ShardScan& shard = scans[i];
    std::size_t skip_structural = 0;
    if (!pending_line1.empty()) {
      switch (shard.first) {
        case FirstLine::kLine2:
          // The carried line 1 pairs with the shard's leading line 2; drop
          // the quarantine the stateless shard scan recorded for it.
          records.push_back(RawRecord{pending_line1, shard.first_view,
                                      pending_line_number});
          skip_structural = 1;
          pending_line1 = {};
          break;
        case FirstLine::kMalformed2:
          structural.push_back({line_number + shard.first_line,
                                ErrorCategory::kSyntax,
                                "malformed TLE line 2 (wrong length)",
                                std::string(shard.first_view)});
          pending_line1 = {};
          break;
        case FirstLine::kLine1:
        case FirstLine::kOther:
          // Overwritten (by the shard's own scan state below) or cleared.
          pending_line1 = {};
          break;
        case FirstLine::kNone:
          break;  // transparent shard: the carried state passes through
      }
    }
    for (const RawRecord& record : shard.records) {
      records.push_back(RawRecord{record.line1, record.line2,
                                  line_number + record.line_number});
    }
    for (std::size_t s = skip_structural; s < shard.structural.size(); ++s) {
      StructuralReject reject = std::move(shard.structural[s]);
      reject.line_number += line_number;
      structural.push_back(std::move(reject));
    }
    if (shard.first != FirstLine::kNone) {
      pending_line1 = shard.pending_line1;
      pending_line_number = line_number + shard.pending_line;
    }
    line_number += shard.lines;
  }
  if (!pending_line1.empty()) {
    structural.push_back({pending_line_number, ErrorCategory::kStructure,
                          "dangling TLE line 1 at end of input",
                          std::string(pending_line1)});
  }

  if (options.metrics != nullptr) {
    options.metrics->counter("tle.records_paired").add(records.size());
    options.metrics->counter("tle.structural_rejects").add(structural.size());
  }

  // Pass 2 (parallel): parse the paired records.  Chunk boundaries are a
  // pure function of (count, thread count), so results are deterministic.
  const std::vector<ParsedRecord> parsed = exec::ordered_map<ParsedRecord>(
      records.size(), options.num_threads,
      [&records](std::size_t i) { return parse_record(records[i]); },
      options.metrics);

  // Pass 3 (serial, file order): merge-walk the parsed records and the
  // structural rejects by line number, committing and reporting in order.
  // This keeps catalog contents, counters and quarantine order bit-identical
  // at any thread count, and makes strict mode throw on the first malformed
  // record in file order.
  std::size_t added = 0;
  std::size_t parsed_ok = 0;
  std::size_t parse_rejects = 0;
  std::size_t next_structural = 0;
  // Accepts are batched: the per-record map lookup inside ParseLog::accept
  // is measurable on the hot path, so a run of accepted records becomes one
  // accept(stage, n) call.  The batch is flushed before every reject so the
  // log's observable state (including at a strict-mode throw) is identical
  // to the historical one-call-per-record sequence.
  std::size_t pending_accepts = 0;
  const auto flush_accepts = [&] {
    if (pending_accepts > 0) {
      log.accept(kStage, pending_accepts);
      pending_accepts = 0;
    }
  };
  const auto report_structural_before = [&](std::size_t limit) {
    while (next_structural < structural.size() &&
           structural[next_structural].line_number < limit) {
      const StructuralReject& failure = structural[next_structural++];
      flush_accepts();
      log.reject(kStage, failure.category, failure.message, failure.snippet,
                 diag::RecordRef{source, failure.line_number});
    }
  };
  // Catalog feeds group records by satellite, so consecutive commits almost
  // always land in the same history; one cached bucket pointer saves the
  // per-record map lookup (map nodes are stable, so the pointer survives
  // later insertions).
  int cached_id = 0;
  std::vector<Tle>* cached_history = nullptr;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    report_structural_before(records[i].line_number);
    if (parsed[i].tle.has_value()) {
      const Tle& tle = *parsed[i].tle;
      ++pending_accepts;
      ++parsed_ok;
      if (cached_history == nullptr || tle.catalog_number != cached_id) {
        cached_history = &tles_[tle.catalog_number];
        cached_id = tle.catalog_number;
        // Catalog feeds are satellite-major, so the upcoming run of records
        // with this catalog number lower-bounds the history's final size;
        // one reserve replaces the doubling reallocations (tens of MB of
        // Tle copies over a full-catalog parse).  Short runs are left to
        // normal growth so interleaved feeds never reserve per record.
        std::size_t run = 1;
        for (std::size_t j = i + 1;
             j < parsed.size() && parsed[j].tle.has_value() &&
             parsed[j].tle->catalog_number == cached_id;
             ++j) {
          ++run;
        }
        if (run >= 16 &&
            cached_history->size() + run > cached_history->capacity()) {
          cached_history->reserve(cached_history->size() + run);
        }
      }
      if (insert_record(*cached_history, tle)) {
        ++added;
        if (options.committed != nullptr) {
          options.committed->push_back(tle);
        }
      }
    } else {
      ++parse_rejects;
      flush_accepts();
      log.reject(kStage, parsed[i].category, parsed[i].message,
                 std::string(records[i].line1),
                 diag::RecordRef{source, records[i].line_number});
    }
  }
  report_structural_before(line_number + 1);
  flush_accepts();
  if (options.metrics != nullptr) {
    // Accumulated into locals above so the serial commit loop pays no
    // atomic traffic; one add per counter here.
    options.metrics->counter("tle.records_parsed").add(parsed_ok);
    options.metrics->counter("tle.records_added").add(added);
    options.metrics->counter("tle.duplicates_dropped").add(parsed_ok - added);
    options.metrics->counter("tle.parse_rejects").add(parse_rejects);
  }
  return added;
}

std::size_t TleCatalog::add_from_file(const std::string& path) {
  const io::MappedFile mapped(path);
  return add_from_text(mapped.view());
}

std::size_t TleCatalog::add_from_file(const std::string& path,
                                      const IngestOptions& options) {
  IngestOptions located = options;
  if (located.source.empty()) located.source = path;
  const io::MappedFile mapped(path);
  if (located.metrics != nullptr && mapped.is_mapped()) {
    located.metrics->counter("ingest.bytes_mapped").add(mapped.size());
  }
  return add_from_text(mapped.view(), located);
}

std::vector<int> TleCatalog::satellites() const {
  std::vector<int> ids;
  ids.reserve(tles_.size());
  for (const auto& [id, history] : tles_) ids.push_back(id);
  return ids;
}

std::span<const Tle> TleCatalog::history(int catalog_number) const {
  const auto it = tles_.find(catalog_number);
  if (it == tles_.end()) return {};
  return it->second;
}

double TleCatalog::first_epoch_jd() const {
  if (empty()) throw ValidationError("first_epoch_jd of empty catalog");
  double first = 1e18;
  for (const auto& [id, history] : tles_) {
    first = std::min(first, history.front().epoch_jd);
  }
  return first;
}

double TleCatalog::last_epoch_jd() const {
  if (empty()) throw ValidationError("last_epoch_jd of empty catalog");
  double last = -1e18;
  for (const auto& [id, history] : tles_) {
    last = std::max(last, history.back().epoch_jd);
  }
  return last;
}

std::string TleCatalog::to_text() const {
  std::string out;
  for (const auto& [id, history] : tles_) {
    for (const Tle& tle : history) {
      const TleLines lines = format_tle(tle);
      out += lines.line1;
      out.push_back('\n');
      out += lines.line2;
      out.push_back('\n');
    }
  }
  return out;
}

std::vector<double> TleCatalog::refresh_intervals_hours() const {
  std::vector<double> intervals;
  for (const auto& [id, history] : tles_) {
    for (std::size_t i = 1; i < history.size(); ++i) {
      intervals.push_back((history[i].epoch_jd - history[i - 1].epoch_jd) * 24.0);
    }
  }
  return intervals;
}

}  // namespace cosmicdance::tle
