// Piecewise-exponential thermosphere density model.
//
// The classic engineering model (Vallado, "Fundamentals of Astrodynamics",
// Table 8-4; derived from the US Standard Atmosphere 1976 / CIRA-72): the
// atmosphere is split into altitude bands, each with a nominal base density
// and scale height, and density decays exponentially within a band.  This
// is the quiet-time baseline; storm response is layered on top by
// StormDensityModel.
#pragma once

namespace cosmicdance::atmosphere {

/// Quiet-time atmospheric density (kg/m^3) at a geodetic altitude (km).
/// Altitudes above the last band (1000 km) extrapolate with the final scale
/// height; negative altitudes clamp to sea level.  noexcept by design: the
/// model is total.
[[nodiscard]] double density_kg_m3(double altitude_km) noexcept;

/// The scale height (km) in effect at an altitude — exposed for tests and
/// for the decay-rate heuristics in the simulator.
[[nodiscard]] double scale_height_km(double altitude_km) noexcept;

}  // namespace cosmicdance::atmosphere
