#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "orbit/elements.hpp"
#include "orbit/state.hpp"
#include "sgp4/sgp4.hpp"
#include "timeutil/datetime.hpp"
#include "tle/tle.hpp"

namespace cosmicdance::sgp4 {
namespace {

using orbit::norm;

tle::Tle starlink_like(double mean_motion = 15.06, double inclination = 53.05,
                       double bstar = 2.0e-4, double ecc = 1.0e-4) {
  tle::Tle t;
  t.catalog_number = 45000;
  t.international_designator = "20001A";
  t.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1, 12));
  t.inclination_deg = inclination;
  t.raan_deg = 100.0;
  t.eccentricity = ecc;
  t.arg_perigee_deg = 90.0;
  t.mean_anomaly_deg = 270.0;
  t.mean_motion_revday = mean_motion;
  t.bstar = bstar;
  return t;
}

TEST(Sgp4InitTest, RecoversBrouwerSemiMajorAxis) {
  const Sgp4Propagator prop(starlink_like());
  // The un-Kozai'd SMA differs from the pure-Kepler value by < a few km.
  const double kepler_alt = orbit::altitude_km_from_mean_motion(15.06);
  EXPECT_NEAR(prop.recovered_altitude_km(), kepler_alt, 3.0);
  EXPECT_FALSE(prop.deep_space());
  EXPECT_EQ(prop.catalog_number(), 45000);
}

TEST(Sgp4InitTest, EpochStateOnOrbit) {
  const Sgp4Propagator prop(starlink_like());
  const orbit::StateVector sv = prop.propagate_minutes(0.0);
  const double r = norm(sv.position_km);
  const double v = norm(sv.velocity_kms);
  EXPECT_NEAR(r, 6928.0, 10.0);
  EXPECT_NEAR(v, 7.59, 0.02);
}

TEST(Sgp4InitTest, RejectsSubsurfacePerigee) {
  tle::Tle t = starlink_like();
  t.mean_motion_revday = 17.5;  // ~170 km SMA altitude
  t.eccentricity = 0.05;        // perigee far below ground
  EXPECT_THROW(Sgp4Propagator{t}, PropagationError);
}

TEST(Sgp4PropagateTest, PeriodReturnsNearStart) {
  const Sgp4Propagator prop(starlink_like(15.06, 53.05, 0.0));
  const orbit::StateVector start = prop.propagate_minutes(0.0);
  const double period = orbit::period_minutes(15.06);
  const orbit::StateVector later = prop.propagate_minutes(period);
  // One rev later the satellite is near its starting position (J2 moves the
  // node slightly; allow tens of km over one orbit).
  EXPECT_NEAR(norm(orbit::sub(later.position_km, start.position_km)), 0.0, 80.0);
}

TEST(Sgp4PropagateTest, ContinuityOverSmallSteps) {
  const Sgp4Propagator prop(starlink_like());
  const orbit::StateVector a = prop.propagate_minutes(100.0);
  const orbit::StateVector b = prop.propagate_minutes(100.0 + 1.0 / 60.0);
  const double displacement = norm(orbit::sub(b.position_km, a.position_km));
  // One second of flight ~ 7.6 km.
  EXPECT_NEAR(displacement, 7.59, 0.3);
}

TEST(Sgp4PropagateTest, NoDragCircularAltitudeStable) {
  const Sgp4Propagator prop(starlink_like(15.06, 53.05, 0.0, 1e-4));
  for (double t = 0.0; t <= 7.0 * 1440.0; t += 360.0) {
    const double r = norm(prop.propagate_minutes(t).position_km);
    EXPECT_NEAR(r, 6928.0, 15.0) << "t=" << t;
  }
}

TEST(Sgp4PropagateTest, PositiveBstarDecaysOverWeeks) {
  const Sgp4Propagator drag(starlink_like(15.06, 53.05, 5.0e-3));
  const Sgp4Propagator no_drag(starlink_like(15.06, 53.05, 0.0));
  // Average radius over one orbit after 30 days, drag vs no drag.
  auto mean_radius = [](const Sgp4Propagator& p, double t0) {
    double sum = 0.0;
    int n = 0;
    for (double t = t0; t < t0 + 96.0; t += 8.0, ++n) {
      sum += norm(p.propagate_minutes(t).position_km);
    }
    return sum / n;
  };
  const double r_drag = mean_radius(drag, 30.0 * 1440.0);
  const double r_free = mean_radius(no_drag, 30.0 * 1440.0);
  EXPECT_LT(r_drag, r_free - 1.0);
}

TEST(Sgp4PropagateTest, BackwardPropagationWorks) {
  const Sgp4Propagator prop(starlink_like());
  const orbit::StateVector sv = prop.propagate_minutes(-1440.0);
  EXPECT_NEAR(norm(sv.position_km), 6928.0, 15.0);
}

TEST(Sgp4PropagateTest, PropagateJdMatchesMinutes) {
  const Sgp4Propagator prop(starlink_like());
  const double jd = prop.epoch_jd() + 0.5;
  const orbit::StateVector a = prop.propagate_jd(jd);
  const orbit::StateVector b = prop.propagate_minutes(720.0);
  EXPECT_NEAR(norm(orbit::sub(a.position_km, b.position_km)), 0.0, 1e-6);
}

TEST(Sgp4PropagateTest, InclinationPreserved) {
  const Sgp4Propagator prop(starlink_like(15.06, 53.05, 0.0));
  for (double t = 0.0; t < 3.0 * 1440.0; t += 123.0) {
    const orbit::StateVector sv = prop.propagate_minutes(t);
    const orbit::KeplerianElements coe = orbit::elements_from_state(sv);
    EXPECT_NEAR(coe.inclination_rad, units::deg2rad(53.05), 0.01);
  }
}

TEST(Sgp4PropagateTest, RaanRegressesWestwardForPrograde) {
  // J2 regression for i < 90 deg: RAAN decreases (the Fig 9 drift).
  const Sgp4Propagator prop(starlink_like(15.06, 53.05, 0.0));
  const auto raan_at = [&](double t) {
    return orbit::elements_from_state(prop.propagate_minutes(t)).raan_rad;
  };
  const double drift =
      units::wrap_pi(raan_at(10.0 * 1440.0) - raan_at(0.0));
  // J2 regression at 550 km / 53 deg: ~ -4.5 deg/day * 10 days.
  EXPECT_NEAR(units::rad2deg(drift), -45.0, 4.5);
}

TEST(Sgp4PropagateTest, StatusDecayed) {
  // Huge B* at low altitude drives mean motion up until the radius drops
  // below Earth's surface; the propagator must report kDecayed, not crash.
  tle::Tle t = starlink_like(16.2, 53.0, 0.4, 1e-4);
  const Sgp4Propagator prop(t);
  orbit::StateVector out;
  Sgp4Status status = Sgp4Status::kOk;
  for (double days = 1.0; days < 120.0; days += 1.0) {
    status = prop.try_propagate_minutes(days * 1440.0, out);
    if (status != Sgp4Status::kOk) break;
  }
  EXPECT_NE(status, Sgp4Status::kOk);
}

TEST(Sgp4PropagateTest, ThrowingVariantCarriesStatusText) {
  tle::Tle t = starlink_like(16.2, 53.0, 0.4, 1e-4);
  const Sgp4Propagator prop(t);
  EXPECT_THROW(static_cast<void>(prop.propagate_minutes(365.0 * 1440.0)), PropagationError);
}

TEST(Sgp4StatusTest, Strings) {
  EXPECT_EQ(to_string(Sgp4Status::kOk), "ok");
  EXPECT_NE(to_string(Sgp4Status::kDecayed).find("decayed"), std::string::npos);
  EXPECT_FALSE(to_string(Sgp4Status::kEccentricityOutOfRange).empty());
}

// -------------------------- deep space (SDP4) ------------------------------

tle::Tle geo_like() {
  tle::Tle t = starlink_like(1.00273896, 0.5, 0.0, 3.0e-4);
  t.catalog_number = 19548;
  return t;
}

TEST(Sdp4Test, SelectsDeepSpaceForLongPeriods) {
  EXPECT_TRUE(Sgp4Propagator(geo_like()).deep_space());
  EXPECT_FALSE(Sgp4Propagator(starlink_like()).deep_space());
  // The 225-minute boundary: n = 6.4 rev/day is exactly 225 min.
  EXPECT_TRUE(Sgp4Propagator(starlink_like(6.3, 53.0, 0.0, 0.01)).deep_space());
  EXPECT_FALSE(Sgp4Propagator(starlink_like(6.5, 53.0, 0.0, 0.01)).deep_space());
}

TEST(Sdp4Test, GeoRadiusStableOverMonth) {
  const Sgp4Propagator prop(geo_like());
  for (double t = 0.0; t <= 30.0 * 1440.0; t += 1440.0) {
    const double r = norm(prop.propagate_minutes(t).position_km);
    EXPECT_NEAR(r, 42164.0, 80.0) << "t(days)=" << t / 1440.0;
  }
}

TEST(Sdp4Test, MolniyaOrbitPropagates) {
  // 12-hour highly-eccentric orbit at the critical inclination exercises the
  // half-day resonance branch (irez == 2).
  tle::Tle t;
  t.catalog_number = 8195;
  t.international_designator = "75081A";
  t.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2022, 6, 1));
  t.inclination_deg = 63.4;
  t.raan_deg = 45.0;
  t.eccentricity = 0.72;
  t.arg_perigee_deg = 270.0;
  t.mean_anomaly_deg = 10.0;
  t.mean_motion_revday = 2.0057;
  t.bstar = 0.0;
  const Sgp4Propagator prop(t);
  EXPECT_TRUE(prop.deep_space());
  for (double days = 0.0; days <= 30.0; days += 3.0) {
    const orbit::StateVector sv = prop.propagate_minutes(days * 1440.0);
    const double r = norm(sv.position_km);
    // Between perigee (~6900 km) and apogee (~46000 km).
    EXPECT_GT(r, 6370.0) << days;
    EXPECT_LT(r, 50000.0) << days;
  }
}

TEST(Sdp4Test, ResonanceIntegratorRestartsBackwards) {
  const Sgp4Propagator prop(geo_like());
  const orbit::StateVector forward = prop.propagate_minutes(10.0 * 1440.0);
  (void)prop.propagate_minutes(20.0 * 1440.0);
  // Jumping backwards must restart the integrator and reproduce the value.
  const orbit::StateVector again = prop.propagate_minutes(10.0 * 1440.0);
  EXPECT_NEAR(norm(orbit::sub(forward.position_km, again.position_km)), 0.0, 1e-6);
}

// Grid sweep: the propagator stays physical across LEO configurations.
class Sgp4Grid
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(Sgp4Grid, RadiusWithinElementBounds) {
  const auto [mean_motion, inclination, ecc] = GetParam();
  const Sgp4Propagator prop(starlink_like(mean_motion, inclination, 1e-5, ecc));
  const double a = orbit::sma_from_mean_motion_revday(mean_motion);
  for (double t = 0.0; t <= 2880.0; t += 97.0) {
    const double r = norm(prop.propagate_minutes(t).position_km);
    EXPECT_GT(r, a * (1.0 - ecc) - 40.0);
    EXPECT_LT(r, a * (1.0 + ecc) + 40.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Leo, Sgp4Grid,
    ::testing::Combine(::testing::Values(11.25, 13.4, 15.06, 15.7),
                       ::testing::Values(0.1, 28.5, 53.05, 97.6, 140.0),
                       ::testing::Values(1e-4, 2e-3, 0.02)));

TEST(Sgp4FromTextTest, ParsesAndPropagatesIss) {
  const tle::Tle iss = tle::parse_tle(
      "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927",
      "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537");
  const Sgp4Propagator prop(iss);
  const orbit::StateVector sv = prop.propagate_minutes(0.0);
  // ISS: radius ~6720 km, speed ~7.66 km/s.
  EXPECT_NEAR(norm(sv.position_km), 6720.0, 30.0);
  EXPECT_NEAR(norm(sv.velocity_kms), 7.66, 0.05);
}

}  // namespace
}  // namespace cosmicdance::sgp4
