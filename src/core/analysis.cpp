#include "core/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "exec/parallel_for.hpp"
#include "obs/obs.hpp"
#include "stats/descriptive.hpp"
#include "timeutil/hour_axis.hpp"

namespace cosmicdance::core {

std::vector<double> all_altitudes(std::span<const SatelliteTrack> tracks,
                                  int num_threads, obs::Metrics* metrics) {
  const obs::ScopedPhase phase(metrics, "analysis.all_altitudes");
  auto per_track = exec::ordered_map<std::vector<double>>(
      tracks.size(), num_threads,
      [&](std::size_t t) {
        std::vector<double> altitudes;
        altitudes.reserve(tracks[t].size());
        for (const TrajectorySample& sample : tracks[t].samples()) {
          altitudes.push_back(sample.altitude_km);
        }
        return altitudes;
      },
      metrics);
  auto altitudes = exec::ordered_concat(std::move(per_track));
  if (metrics != nullptr) {
    metrics->counter("analysis.altitude_samples").add(altitudes.size());
  }
  return altitudes;
}

std::vector<SuperstormPanelRow> superstorm_panel(
    std::span<const SatelliteTrack> tracks, const spaceweather::DstIndex& dst,
    double start_jd, double end_jd, int num_threads, obs::Metrics* metrics) {
  const obs::ScopedPhase phase(metrics, "analysis.superstorm_panel");
  const double first_day = std::floor(start_jd - 0.5) + 0.5;
  std::size_t day_count = 0;
  for (double day = first_day; day < end_jd; day += 1.0) ++day_count;
  if (metrics != nullptr) {
    metrics->counter("analysis.panel_days").add(day_count);
  }
  return exec::ordered_map<SuperstormPanelRow>(day_count, num_threads, [&](
                                                   std::size_t d) {
    const double day = first_day + static_cast<double>(d);
    SuperstormPanelRow row;
    row.day_jd = day;

    // Most negative Dst of the day.
    double dst_min = 0.0;
    for (int h = 0; h < 24; ++h) {
      const timeutil::HourIndex hour =
          timeutil::hour_index_from_julian(day + h / 24.0);
      if (dst.covers(hour)) dst_min = std::min(dst_min, dst.at(hour));
    }
    row.dst_min_nt = dst_min;

    std::vector<double> bstars;
    std::set<int> seen;
    for (const SatelliteTrack& track : tracks) {
      const auto window = track.between(day, day + 1.0);
      for (const TrajectorySample& sample : window) bstars.push_back(sample.bstar);
      // "Tracked" uses a trailing 3-day window: a satellite does not vanish
      // from the catalog just because its refresh interval skipped a day
      // (intervals stretch to 154 h).
      if (!window.empty() || !track.between(day - 2.0, day).empty()) {
        seen.insert(track.catalog_number());
      }
    }
    row.tracked_satellites = static_cast<long>(seen.size());
    row.tle_count = static_cast<long>(bstars.size());
    if (!bstars.empty()) {
      row.bstar_mean = stats::mean(bstars);
      row.bstar_median = stats::median(bstars);
      row.bstar_p95 = stats::percentile(bstars, 95.0);
    }
    return row;
  }, metrics);
}

std::vector<TrackTimeline> track_timelines(std::span<const SatelliteTrack> tracks,
                                           std::span<const int> catalog_numbers) {
  std::vector<TrackTimeline> timelines;
  for (const int id : catalog_numbers) {
    const auto it =
        std::find_if(tracks.begin(), tracks.end(), [id](const SatelliteTrack& t) {
          return t.catalog_number() == id;
        });
    if (it == tracks.end()) continue;
    TrackTimeline timeline;
    timeline.catalog_number = id;
    for (const TrajectorySample& sample : it->samples()) {
      timeline.epoch_jd.push_back(sample.epoch_jd);
      timeline.altitude_km.push_back(sample.altitude_km);
      timeline.bstar.push_back(sample.bstar);
    }
    timelines.push_back(std::move(timeline));
  }
  return timelines;
}

}  // namespace cosmicdance::core
