# Empty dependencies file for fig07_superstorm.
# This may be replaced when dependencies are built.
