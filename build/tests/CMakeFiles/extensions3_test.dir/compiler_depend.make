# Empty compiler generated dependencies file for extensions3_test.
# This may be replaced when dependencies are built.
