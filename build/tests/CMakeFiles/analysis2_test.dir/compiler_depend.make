# Empty compiler generated dependencies file for analysis2_test.
# This may be replaced when dependencies are built.
